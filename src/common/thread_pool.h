#ifndef RAW_COMMON_THREAD_POOL_H_
#define RAW_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/macros.h"
#include "common/status.h"

namespace raw {

/// Fixed-size worker pool behind the morsel-driven parallel scan layer.
///
/// Design notes for callers that block inside tasks: the pool is
/// work-stealing-friendly rather than work-stealing — any thread (a worker or
/// an outside caller waiting for results) can drain queued tasks through
/// TryRunPendingTask(), so nested submission (a task that submits subtasks
/// and waits for them) makes progress even when every worker is busy.
/// Exceptions thrown by a task are captured in the future returned by
/// Submit() and rethrown to whoever calls get().
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains all queued tasks, then joins the workers.
  ~ThreadPool();
  RAW_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn`; the future completes when it ran (or threw).
  std::future<void> Submit(std::function<void()> fn);

  /// Runs one queued task on the calling thread, if any is pending. Returns
  /// true when a task was run. Lets waiting callers help instead of blocking.
  bool TryRunPendingTask();

  /// Blocks until `fut` is ready, draining queued tasks meanwhile. Safe to
  /// call from inside a pool task.
  void HelpWait(std::future<void>& fut);

  /// Runs fn(0..n-1) across up to `parallelism` claimants (the calling thread
  /// participates, so this never deadlocks when invoked from inside a task).
  /// Returns the error of the smallest failing index; remaining indices are
  /// abandoned after the first observed failure.
  Status ParallelFor(int64_t n, int parallelism,
                     const std::function<Status(int64_t)>& fn);

  /// Deadline-aware ParallelFor: claimants re-check `deadline` before every
  /// index; once it expires, remaining indices are abandoned and the call
  /// returns ResourceExhausted (already-started indices still finish).
  Status ParallelFor(int64_t n, int parallelism, const Deadline& deadline,
                     const std::function<Status(int64_t)>& fn);

  /// Process-wide shared pool used by the engine's parallel operators.
  /// Sized max(hardware_concurrency, 8) so tests exercising num_threads=8
  /// get real interleaving even on small machines.
  static ThreadPool* Shared();

  /// Number of queued-but-not-started tasks (diagnostics/tests).
  int64_t queue_depth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace raw

#endif  // RAW_COMMON_THREAD_POOL_H_
