#include "common/schema.h"

#include <unordered_set>

#include "common/macros.h"
#include "common/string_util.h"

namespace raw {

int Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

StatusOr<Field> Schema::FieldByName(std::string_view name) const {
  int idx = FieldIndex(name);
  if (idx < 0) {
    return Status::NotFound("no field named '" + std::string(name) + "'");
  }
  return fields_[static_cast<size_t>(idx)];
}

Status Schema::Validate() const {
  std::unordered_set<std::string_view> seen;
  for (const Field& f : fields_) {
    if (f.name.empty()) {
      return Status::InvalidArgument("schema has field with empty name");
    }
    if (!seen.insert(f.name).second) {
      return Status::InvalidArgument("duplicate field name: " + f.name);
    }
  }
  return Status::OK();
}

Schema Schema::Select(const std::vector<int>& indices) const {
  std::vector<Field> out;
  out.reserve(indices.size());
  for (int i : indices) out.push_back(fields_[static_cast<size_t>(i)]);
  return Schema(std::move(out));
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ',';
    out += fields_[i].name;
    out += ':';
    out += DataTypeToString(fields_[i].type);
  }
  return out;
}

StatusOr<Schema> Schema::FromString(std::string_view spec) {
  Schema schema;
  if (spec.empty()) return schema;
  for (std::string_view part : SplitString(spec, ',')) {
    size_t colon = part.find(':');
    if (colon == std::string_view::npos) {
      return Status::ParseError("bad schema field spec: " + std::string(part));
    }
    RAW_ASSIGN_OR_RETURN(DataType type,
                         DataTypeFromString(part.substr(colon + 1)));
    schema.AddField(std::string(part.substr(0, colon)), type);
  }
  RAW_RETURN_NOT_OK(schema.Validate());
  return schema;
}

}  // namespace raw
