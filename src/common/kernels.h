#ifndef RAW_COMMON_KERNELS_H_
#define RAW_COMMON_KERNELS_H_

#include <atomic>
#include <cstdint>
#include <string_view>

namespace raw {

/// Dispatch tiers for the data-parallel kernel core under the hot scan/eval
/// path. `kScalar` is the byte-at-a-time / per-row reference implementation
/// every other tier must match bit for bit; `kSwar` is portable word-at-a-time
/// C++ (8 bytes per step, zero-byte trick) plus the branchless columnar
/// kernels; `kSse2`/`kAvx2` swap the tokenizer inner loop for 16-/32-byte
/// vector compares (columnar kernels are shared with kSwar). The active tier
/// is resolved once at startup from the CPU and the `RAW_KERNELS` environment
/// variable (`scalar` | `swar` | `simd`), and every plan description reports
/// it as `[kernels=...]` so benchmark runs prove which path executed.
enum class KernelTier : int { kScalar = 0, kSwar = 1, kSse2 = 2, kAvx2 = 3 };

/// Lowercase tier name: "scalar", "swar", "sse2", "avx2".
std::string_view KernelTierName(KernelTier tier);

/// The best tier this CPU supports (ignores RAW_KERNELS).
KernelTier MaxSupportedKernelTier();

/// The tier all kernel entry points currently dispatch to.
KernelTier ActiveKernelTier();

/// Forces a tier (clamped to MaxSupportedKernelTier) and rewires the
/// dispatched function pointers. Intended for tests and microbenchmarks that
/// sweep tiers inside one process; thread-safe, but concurrent queries may
/// observe either tier mid-flight (results are identical on every tier, so
/// this is benign).
void SetKernelTier(KernelTier tier);

/// Re-reads $RAW_KERNELS and the CPU and re-applies the default dispatch
/// (what startup did). Returns the tier applied.
KernelTier ResetKernelTierFromEnv();

// --- dispatched byte scanners (the tokenizer core) ---------------------------

/// Returns a pointer to the first occurrence of `a` or `b` in [p, end), or
/// `end`. This is the CSV field terminator search (delimiter-or-newline); the
/// SWAR/SIMD tiers step 8/16/32 bytes per iteration.
using ScanTwoFn = const char* (*)(const char* p, const char* end, char a,
                                  char b);
/// Same for a single needle `c` (row-end search / newline alignment).
using ScanOneFn = const char* (*)(const char* p, const char* end, char c);

namespace kernel_detail {
extern std::atomic<ScanTwoFn> scan_two;
extern std::atomic<ScanOneFn> scan_one;
}  // namespace kernel_detail

inline const char* ScanForEither(const char* p, const char* end, char a,
                                 char b) {
  return kernel_detail::scan_two.load(std::memory_order_relaxed)(p, end, a, b);
}

inline const char* ScanFor(const char* p, const char* end, char c) {
  return kernel_detail::scan_one.load(std::memory_order_relaxed)(p, end, c);
}

// --- per-tier entry points (property tests pit tiers against each other) ----

/// Returns the implementation a specific tier would dispatch to. Tiers above
/// MaxSupportedKernelTier() return nullptr (the property suite skips them).
ScanTwoFn ScanForEitherImpl(KernelTier tier);
ScanOneFn ScanForImpl(KernelTier tier);

}  // namespace raw

#endif  // RAW_COMMON_KERNELS_H_
