#ifndef RAW_COMMON_HASH_H_
#define RAW_COMMON_HASH_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace raw {

/// FNV-1a 64-bit hash. Used for JIT template-cache keys and hash tables.
inline uint64_t Fnv1a64(const void* data, size_t len,
                        uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t Fnv1a64(std::string_view s,
                        uint64_t seed = 0xcbf29ce484222325ULL) {
  return Fnv1a64(s.data(), s.size(), seed);
}

/// Mixes a 64-bit value (splitmix64 finalizer); good avalanche for join keys.
inline uint64_t MixHash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hex-encodes a 64-bit hash (16 chars), for cache file names.
std::string HashToHex(uint64_t h);

}  // namespace raw

#endif  // RAW_COMMON_HASH_H_
