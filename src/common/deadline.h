#ifndef RAW_COMMON_DEADLINE_H_
#define RAW_COMMON_DEADLINE_H_

#include <chrono>
#include <cstdint>
#include <limits>

namespace raw {

/// A point in time after which work should stop: the cooperative cancellation
/// primitive shared by the serving tier's admission queue and the morsel
/// pool's workers. Deadlines are value types on the steady clock (immune to
/// wall-clock jumps); the default-constructed Deadline never expires, so
/// plumbing one through unconditionally costs a comparison, not a branch on
/// "is there a deadline at all" at every call site.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires.
  Deadline() = default;

  /// Expires `millis` from now (<= 0: already expired).
  static Deadline AfterMillis(int64_t millis) {
    return Deadline(Clock::now() + std::chrono::milliseconds(millis));
  }

  static Deadline AfterSeconds(double seconds) {
    return Deadline(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(seconds)));
  }

  /// Already expired (fast-fail paths in tests).
  static Deadline Expired() { return Deadline(Clock::time_point::min()); }

  bool is_infinite() const { return !has_deadline_; }

  bool expired() const { return has_deadline_ && Clock::now() >= at_; }

  /// Seconds until expiry; negative once expired, +inf when infinite.
  double remaining_seconds() const {
    if (!has_deadline_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(at_ - Clock::now()).count();
  }

  /// The raw time point (Clock::time_point::max() when infinite) — for
  /// condition-variable wait_until calls.
  Clock::time_point time_point() const {
    return has_deadline_ ? at_ : Clock::time_point::max();
  }

 private:
  explicit Deadline(Clock::time_point at) : has_deadline_(true), at_(at) {}

  bool has_deadline_ = false;
  Clock::time_point at_{};
};

}  // namespace raw

#endif  // RAW_COMMON_DEADLINE_H_
