#include "common/hash.h"

namespace raw {

std::string HashToHex(uint64_t h) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[h & 0xf];
    h >>= 4;
  }
  return out;
}

}  // namespace raw
