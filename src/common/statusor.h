#ifndef RAW_COMMON_STATUSOR_H_
#define RAW_COMMON_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace raw {

/// Holds either a value of type T or a non-OK Status. The usual companion of
/// Status for functions that produce a result.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }
  /// Constructs from a value.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value or `fallback` when holding an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace raw

#endif  // RAW_COMMON_STATUSOR_H_
