#include "common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault_injector.h"

namespace raw {

namespace {
std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}
}  // namespace

StatusOr<std::unique_ptr<MmapFile>> MmapFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError(ErrnoMessage("cannot open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError(ErrnoMessage("cannot stat", path));
  }
  size_t size = static_cast<size_t>(st.st_size);

  // Fault-injection hook: every mapped open funnels through here, so arming
  // the injector perturbs any format's view of its backing file.
  FaultKind fault = FaultKind::kNone;
  int64_t fault_offset = 0;
  auto& injector = FaultInjector::Global();
  if (injector.enabled()) {
    fault = injector.Check(path, static_cast<int64_t>(size), &fault_offset);
    if (fault == FaultKind::kEio) {
      ::close(fd);
      return Status::IOError("injected EIO opening '" + path + "'");
    }
    if (fault == FaultKind::kTruncate || fault == FaultKind::kShortRead) {
      // A mapping has no partial read; both kinds present a cut-off file.
      size = static_cast<size_t>(fault_offset);
    }
  }

  const char* data = nullptr;
  if (size > 0) {
    // PROT_WRITE on a MAP_PRIVATE mapping gives the bit-flip fault a
    // copy-on-write page to scribble on without touching the real file.
    int prot = PROT_READ;
    if (fault == FaultKind::kBitFlip) prot |= PROT_WRITE;
    void* addr = ::mmap(nullptr, size, prot, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      return Status::IOError(ErrnoMessage("cannot mmap", path));
    }
    if (fault == FaultKind::kBitFlip) {
      static_cast<char*>(addr)[fault_offset] ^= 0x40;
    }
    data = static_cast<const char*>(addr);
  }
  return std::unique_ptr<MmapFile>(new MmapFile(path, data, size, fd));
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
  if (fd_ >= 0) ::close(fd_);
}

void MmapFile::AdviseSequential() {
  if (data_ != nullptr) {
    ::madvise(const_cast<char*>(data_), size_, MADV_SEQUENTIAL);
  }
}

void MmapFile::AdviseRandom() {
  if (data_ != nullptr) {
    ::madvise(const_cast<char*>(data_), size_, MADV_RANDOM);
  }
}

Status MmapFile::DropPageCache() {
  if (data_ != nullptr) {
    if (::madvise(const_cast<char*>(data_), size_, MADV_DONTNEED) != 0) {
      return Status::IOError(ErrnoMessage("madvise(DONTNEED)", path_));
    }
  }
#ifdef POSIX_FADV_DONTNEED
  if (fd_ >= 0) ::posix_fadvise(fd_, 0, 0, POSIX_FADV_DONTNEED);
#endif
  return Status::OK();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  RAW_ASSIGN_OR_RETURN(std::unique_ptr<MmapFile> file, MmapFile::Open(path));
  return std::string(file->data(), file->size());
}

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError(ErrnoMessage("cannot create", path));
  size_t written = 0;
  while (written < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      ::close(fd);
      return Status::IOError(ErrnoMessage("write failed", path));
    }
    written += static_cast<size_t>(n);
  }
  ::close(fd);
  return Status::OK();
}

StatusOr<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError(ErrnoMessage("cannot stat", path));
  }
  return static_cast<uint64_t>(st.st_size);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace raw
