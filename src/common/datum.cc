#include "common/datum.h"

#include "common/macros.h"

#include <charconv>
#include <cstdio>
#include <ostream>

namespace raw {

StatusOr<double> Datum::AsDouble() const {
  switch (type_) {
    case DataType::kInt32:
      return static_cast<double>(int32_value());
    case DataType::kInt64:
      return static_cast<double>(int64_value());
    case DataType::kFloat32:
      return static_cast<double>(float32_value());
    case DataType::kFloat64:
      return float64_value();
    case DataType::kBool:
      return bool_value() ? 1.0 : 0.0;
    case DataType::kString:
      return Status::InvalidArgument("cannot convert string datum to double");
  }
  return Status::Internal("corrupt datum type");
}

StatusOr<int64_t> Datum::AsInt64() const {
  switch (type_) {
    case DataType::kInt32:
      return static_cast<int64_t>(int32_value());
    case DataType::kInt64:
      return int64_value();
    case DataType::kFloat32:
      return static_cast<int64_t>(float32_value());
    case DataType::kFloat64:
      return static_cast<int64_t>(float64_value());
    case DataType::kBool:
      return bool_value() ? int64_t{1} : int64_t{0};
    case DataType::kString:
      return Status::InvalidArgument("cannot convert string datum to int64");
  }
  return Status::Internal("corrupt datum type");
}

StatusOr<Datum> Datum::CastTo(DataType target) const {
  if (target == type_) return *this;
  if (target == DataType::kString) return Datum::String(ToString());
  if (type_ == DataType::kString) {
    const std::string& s = string_value();
    switch (target) {
      case DataType::kInt32: {
        int32_t v = 0;
        auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
        if (ec != std::errc() || p != s.data() + s.size()) {
          return Status::ParseError("cannot parse int32: '" + s + "'");
        }
        return Datum::Int32(v);
      }
      case DataType::kInt64: {
        int64_t v = 0;
        auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
        if (ec != std::errc() || p != s.data() + s.size()) {
          return Status::ParseError("cannot parse int64: '" + s + "'");
        }
        return Datum::Int64(v);
      }
      case DataType::kFloat32:
      case DataType::kFloat64: {
        double v = 0;
        auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
        if (ec != std::errc() || p != s.data() + s.size()) {
          return Status::ParseError("cannot parse float: '" + s + "'");
        }
        return target == DataType::kFloat32
                   ? Datum::Float32(static_cast<float>(v))
                   : Datum::Float64(v);
      }
      case DataType::kBool:
        if (s == "true" || s == "1") return Datum::Bool(true);
        if (s == "false" || s == "0") return Datum::Bool(false);
        return Status::ParseError("cannot parse bool: '" + s + "'");
      default:
        break;
    }
    return Status::InvalidArgument("unsupported string cast");
  }
  // Numeric <-> numeric via double (bool included).
  RAW_ASSIGN_OR_RETURN(double d, AsDouble());
  switch (target) {
    case DataType::kBool:
      return Datum::Bool(d != 0.0);
    case DataType::kInt32:
      return Datum::Int32(static_cast<int32_t>(d));
    case DataType::kInt64:
      return Datum::Int64(static_cast<int64_t>(d));
    case DataType::kFloat32:
      return Datum::Float32(static_cast<float>(d));
    case DataType::kFloat64:
      return Datum::Float64(d);
    default:
      return Status::InvalidArgument("unsupported numeric cast");
  }
}

std::string Datum::ToString() const {
  char buf[64];
  switch (type_) {
    case DataType::kBool:
      return bool_value() ? "true" : "false";
    case DataType::kInt32:
      snprintf(buf, sizeof(buf), "%d", int32_value());
      return buf;
    case DataType::kInt64:
      snprintf(buf, sizeof(buf), "%lld",
               static_cast<long long>(int64_value()));
      return buf;
    case DataType::kFloat32:
      snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(float32_value()));
      return buf;
    case DataType::kFloat64:
      snprintf(buf, sizeof(buf), "%.17g", float64_value());
      return buf;
    case DataType::kString:
      return string_value();
  }
  return "<corrupt>";
}

std::ostream& operator<<(std::ostream& os, const Datum& d) {
  return os << d.ToString();
}

}  // namespace raw
