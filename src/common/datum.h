#ifndef RAW_COMMON_DATUM_H_
#define RAW_COMMON_DATUM_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"
#include "common/statusor.h"
#include "common/types.h"

namespace raw {

/// A single typed scalar value — the engine's "loaded data" unit. Used for
/// literals in query plans and for scalar query results.
class Datum {
 public:
  Datum() : type_(DataType::kInt32), value_(int32_t{0}) {}
  static Datum Bool(bool v) { return Datum(DataType::kBool, v); }
  static Datum Int32(int32_t v) { return Datum(DataType::kInt32, v); }
  static Datum Int64(int64_t v) { return Datum(DataType::kInt64, v); }
  static Datum Float32(float v) { return Datum(DataType::kFloat32, v); }
  static Datum Float64(double v) { return Datum(DataType::kFloat64, v); }
  static Datum String(std::string v) {
    return Datum(DataType::kString, std::move(v));
  }

  DataType type() const { return type_; }

  bool bool_value() const { return std::get<bool>(value_); }
  int32_t int32_value() const { return std::get<int32_t>(value_); }
  int64_t int64_value() const { return std::get<int64_t>(value_); }
  float float32_value() const { return std::get<float>(value_); }
  double float64_value() const { return std::get<double>(value_); }
  const std::string& string_value() const {
    return std::get<std::string>(value_);
  }

  /// Numeric value widened to double (error for strings/bools).
  StatusOr<double> AsDouble() const;

  /// Numeric value narrowed/converted to int64 (error for strings).
  StatusOr<int64_t> AsInt64() const;

  /// Returns a copy converted to `target` (numeric widening/narrowing, or
  /// string formatting/parsing).
  StatusOr<Datum> CastTo(DataType target) const;

  /// Formats for display; floats use round-trippable precision.
  std::string ToString() const;

  bool operator==(const Datum& other) const {
    return type_ == other.type_ && value_ == other.value_;
  }

 private:
  template <typename T>
  Datum(DataType type, T v) : type_(type), value_(std::move(v)) {}

  DataType type_;
  std::variant<bool, int32_t, int64_t, float, double, std::string> value_;
};

std::ostream& operator<<(std::ostream& os, const Datum& d);

}  // namespace raw

#endif  // RAW_COMMON_DATUM_H_
