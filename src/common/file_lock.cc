#include "common/file_lock.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/file.h>
#include <unistd.h>

namespace raw {

namespace {
StatusOr<int> OpenLockFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("open lock file " + path + ": " +
                           ::strerror(errno));
  }
  return fd;
}
}  // namespace

StatusOr<FileLock> FileLock::Acquire(const std::string& path) {
  RAW_ASSIGN_OR_RETURN(int fd, OpenLockFile(path));
  int rc;
  do {
    rc = ::flock(fd, LOCK_EX);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    Status st = Status::IOError("flock " + path + ": " + ::strerror(errno));
    ::close(fd);
    return st;
  }
  return FileLock(path, fd);
}

StatusOr<FileLock> FileLock::TryAcquire(const std::string& path) {
  RAW_ASSIGN_OR_RETURN(int fd, OpenLockFile(path));
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    int saved = errno;
    ::close(fd);
    if (saved == EWOULDBLOCK) {
      return Status::ResourceExhausted("lock held elsewhere: " + path);
    }
    return Status::IOError("flock " + path + ": " + ::strerror(saved));
  }
  return FileLock(path, fd);
}

FileLock::FileLock(FileLock&& other) noexcept
    : path_(std::move(other.path_)), fd_(other.fd_) {
  other.fd_ = -1;
}

FileLock& FileLock::operator=(FileLock&& other) noexcept {
  if (this != &other) {
    Release();
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

FileLock::~FileLock() { Release(); }

void FileLock::Release() {
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace raw
