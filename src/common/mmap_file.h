#ifndef RAW_COMMON_MMAP_FILE_H_
#define RAW_COMMON_MMAP_FILE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "common/macros.h"
#include "common/status.h"
#include "common/statusor.h"

namespace raw {

/// Read-only memory-mapped file. RAW memory-maps raw data files (§4.2) and
/// lets the OS page cache play the role of a buffer pool.
class MmapFile {
 public:
  /// Maps `path` read-only. Empty files map to a null region of size 0.
  static StatusOr<std::unique_ptr<MmapFile>> Open(const std::string& path);

  ~MmapFile();
  RAW_DISALLOW_COPY_AND_ASSIGN(MmapFile);

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// Advises the kernel that access will be sequential (readahead) or random.
  void AdviseSequential();
  void AdviseRandom();

  /// Best-effort drop of this file's pages from the OS page cache; used by
  /// benchmarks to simulate a cold run without root privileges.
  Status DropPageCache();

 private:
  MmapFile(std::string path, const char* data, size_t size, int fd)
      : path_(std::move(path)), data_(data), size_(size), fd_(fd) {}

  std::string path_;
  const char* data_ = nullptr;
  size_t size_ = 0;
  int fd_ = -1;
};

/// Reads an entire file into a string (small metadata files).
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes `contents` to `path`, truncating.
Status WriteStringToFile(const std::string& path, std::string_view contents);

/// Returns the size of the file at `path`.
StatusOr<uint64_t> FileSize(const std::string& path);

/// True if a regular file exists at `path`.
bool FileExists(const std::string& path);

}  // namespace raw

#endif  // RAW_COMMON_MMAP_FILE_H_
