#ifndef RAW_COMMON_FILE_LOCK_H_
#define RAW_COMMON_FILE_LOCK_H_

#include <string>

#include "common/macros.h"
#include "common/status.h"
#include "common/statusor.h"

namespace raw {

/// RAII advisory file lock (flock(2), exclusive). Serializes critical
/// sections across *processes* — e.g. concurrent benchmark binaries
/// materializing the same dataset cache directory. The lock file is created
/// if missing and left behind after release (unlinking would race with other
/// waiters holding the same inode).
class FileLock {
 public:
  /// Blocks until the exclusive lock on `path` is acquired.
  static StatusOr<FileLock> Acquire(const std::string& path);

  /// Non-blocking variant; returns ResourceExhausted when the lock is
  /// already held elsewhere.
  static StatusOr<FileLock> TryAcquire(const std::string& path);

  FileLock(FileLock&& other) noexcept;
  FileLock& operator=(FileLock&& other) noexcept;
  ~FileLock();
  RAW_DISALLOW_COPY_AND_ASSIGN(FileLock);

  const std::string& path() const { return path_; }

  /// Releases early (idempotent; the destructor is the usual path).
  void Release();

 private:
  FileLock(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_ = -1;
};

}  // namespace raw

#endif  // RAW_COMMON_FILE_LOCK_H_
