#ifndef RAW_COMMON_STATUS_H_
#define RAW_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace raw {

/// Error category carried by a Status. Mirrors the small set of failure modes
/// the engine distinguishes operationally.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kIOError = 4,
  kParseError = 5,
  kNotImplemented = 6,
  kInternal = 7,
  kResourceExhausted = 8,
  /// The bytes read from a raw file do not match what the engine's adaptive
  /// state says should be there: a shrunk file under a published positional
  /// map, a gzip member failing its CRC, a binary file whose size stopped
  /// being a multiple of the row width. Distinct from kParseError (the bytes
  /// are well-formed text that doesn't parse) and kIOError (the read itself
  /// failed).
  kDataCorruption = 9,
  /// A wire-protocol violation: a frame truncated by a mid-frame peer close,
  /// an oversized length prefix, an unknown message type.
  kProtocolError = 10,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantics error type used throughout the engine instead of
/// exceptions. An OK status carries no allocation.
class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataCorruption(std::string msg) {
    return Status(StatusCode::kDataCorruption, std::move(msg));
  }
  static Status ProtocolError(std::string msg) {
    return Status(StatusCode::kProtocolError, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  std::string_view message() const {
    return rep_ ? std::string_view(rep_->message) : std::string_view();
  }

  /// Formats as "Code: message" ("OK" when ok).
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<Rep> rep_;  // null == OK
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace raw

#endif  // RAW_COMMON_STATUS_H_
