#include "common/temp_dir.h"

#include <cstdlib>
#include <filesystem>
#include <system_error>

namespace raw {

namespace fs = std::filesystem;

StatusOr<TempDir> TempDir::Create(const std::string& prefix) {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr ? base : "/tmp") + "/" +
                     prefix + "XXXXXX";
  std::string buf = tmpl;
  if (::mkdtemp(buf.data()) == nullptr) {
    return Status::IOError("mkdtemp failed for " + tmpl);
  }
  return TempDir(buf);
}

TempDir::TempDir(TempDir&& other) noexcept
    : path_(std::move(other.path_)), owned_(other.owned_) {
  other.owned_ = false;
}

TempDir& TempDir::operator=(TempDir&& other) noexcept {
  if (this != &other) {
    if (owned_) RemoveTree(path_);
    path_ = std::move(other.path_);
    owned_ = other.owned_;
    other.owned_ = false;
  }
  return *this;
}

TempDir::~TempDir() {
  if (owned_) RemoveTree(path_);
}

std::string TempDir::FilePath(const std::string& name) const {
  return path_ + "/" + name;
}

Status RemoveTree(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) return Status::IOError("remove_all '" + path + "': " + ec.message());
  return Status::OK();
}

Status MakeDirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    return Status::IOError("create_directories '" + path + "': " + ec.message());
  }
  return Status::OK();
}

}  // namespace raw
