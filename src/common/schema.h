#ifndef RAW_COMMON_SCHEMA_H_
#define RAW_COMMON_SCHEMA_H_

#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "common/types.h"

namespace raw {

/// A named, typed column in a table schema.
struct Field {
  std::string name;
  DataType type = DataType::kInt32;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered collection of fields describing a table or a raw file's rows.
///
/// RAW supports *partial* schemas (§3 of the paper): for formats navigable by
/// attribute name (e.g. the REF event format), users may declare only the
/// fields of interest. For offset-navigated formats (CSV, binary) the schema
/// must describe every physical column.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}
  Schema(std::initializer_list<Field> fields) : fields_(fields) {}

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Appends a field. Duplicate names are rejected at Validate() time.
  void AddField(std::string name, DataType type) {
    fields_.push_back(Field{std::move(name), type});
  }

  /// Returns the index of the field named `name`, or -1 when absent.
  int FieldIndex(std::string_view name) const;

  /// Returns the field named `name` or NotFound.
  StatusOr<Field> FieldByName(std::string_view name) const;

  /// Verifies that field names are non-empty and unique.
  Status Validate() const;

  /// Returns a schema with only the fields at `indices`, in that order.
  Schema Select(const std::vector<int>& indices) const;

  /// "name:type,name:type,..." — used in catalog dumps and JIT cache keys.
  std::string ToString() const;

  /// Parses the ToString() representation.
  static StatusOr<Schema> FromString(std::string_view spec);

  bool operator==(const Schema& other) const { return fields_ == other.fields_; }

 private:
  std::vector<Field> fields_;
};

}  // namespace raw

#endif  // RAW_COMMON_SCHEMA_H_
