#include "common/status.h"

namespace raw {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDataCorruption:
      return "DataCorruption";
    case StatusCode::kProtocolError:
      return "ProtocolError";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_) rep_ = std::make_unique<Rep>(*other.rep_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }
  return *this;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += rep_->message;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace raw
