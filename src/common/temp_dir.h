#ifndef RAW_COMMON_TEMP_DIR_H_
#define RAW_COMMON_TEMP_DIR_H_

#include <string>

#include "common/macros.h"
#include "common/status.h"
#include "common/statusor.h"

namespace raw {

/// RAII temporary directory; removed recursively on destruction. Used by the
/// JIT compiler (generated sources / shared objects), tests and benchmarks.
class TempDir {
 public:
  /// Creates a fresh directory under $TMPDIR (default /tmp) named
  /// `<prefix>XXXXXX`.
  static StatusOr<TempDir> Create(const std::string& prefix = "raw_");

  TempDir(TempDir&& other) noexcept;
  TempDir& operator=(TempDir&& other) noexcept;
  ~TempDir();
  RAW_DISALLOW_COPY_AND_ASSIGN(TempDir);

  const std::string& path() const { return path_; }

  /// Returns `path()/name`.
  std::string FilePath(const std::string& name) const;

  /// Keeps the directory on destruction (debugging aid).
  void Release() { owned_ = false; }

 private:
  explicit TempDir(std::string path) : path_(std::move(path)), owned_(true) {}

  std::string path_;
  bool owned_ = false;
};

/// Recursively removes a directory tree. No-op when absent.
Status RemoveTree(const std::string& path);

/// Creates a directory (and parents). OK when it already exists.
Status MakeDirs(const std::string& path);

}  // namespace raw

#endif  // RAW_COMMON_TEMP_DIR_H_
