#ifndef RAW_COMMON_SCAN_HEALTH_H_
#define RAW_COMMON_SCAN_HEALTH_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string_view>

namespace raw {

/// What a scan does with a row whose bytes don't convert to the declared
/// schema (a non-numeric field in an INT column, a row with missing fields).
/// Raw files are user data the engine does not own; `fail` preserves the
/// strict default, the other two let a query survive hostile rows.
enum class MalformedRowPolicy {
  /// The query fails with a typed ParseError naming the offending value.
  kFail = 0,
  /// The row is dropped from the result (counted in rows_skipped).
  kSkip,
  /// Every field of the row is replaced by the column type's zero value
  /// (0 / 0.0 / false / "") and the row is kept (counted in rows_nulled).
  kNullFill,
};

inline std::string_view MalformedRowPolicyToString(MalformedRowPolicy p) {
  switch (p) {
    case MalformedRowPolicy::kFail:
      return "fail";
    case MalformedRowPolicy::kSkip:
      return "skip";
    case MalformedRowPolicy::kNullFill:
      return "null-fill";
  }
  return "fail";
}

/// Parses "fail" | "skip" | "null-fill" (also accepts "nullfill").
inline std::optional<MalformedRowPolicy> ParseMalformedRowPolicy(
    std::string_view text) {
  if (text == "fail") return MalformedRowPolicy::kFail;
  if (text == "skip") return MalformedRowPolicy::kSkip;
  if (text == "null-fill" || text == "nullfill") {
    return MalformedRowPolicy::kNullFill;
  }
  return std::nullopt;
}

/// Per-query scan-robustness counters, shared by every scan operator of one
/// physical plan (morsel workers increment concurrently; relaxed atomics —
/// the totals are read after the drain barrier).
struct ScanHealth {
  std::atomic<int64_t> rows_skipped{0};
  std::atomic<int64_t> rows_nulled{0};
  /// Read-path faults the scan layer observed and converted into typed
  /// errors (truncated-under-pmap detection, corrupt gzip members,
  /// failed REF cluster reads).
  std::atomic<int64_t> io_faults{0};
};

}  // namespace raw

#endif  // RAW_COMMON_SCAN_HEALTH_H_
