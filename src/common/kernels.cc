#include "common/kernels.h"

#include <cstdlib>
#include <cstring>

#include "common/env.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define RAW_KERNELS_X86 1
#endif

namespace raw {

namespace {

// --- scalar reference --------------------------------------------------------

const char* ScanTwoScalar(const char* p, const char* end, char a, char b) {
  while (p != end && *p != a && *p != b) ++p;
  return p;
}

const char* ScanOneScalar(const char* p, const char* end, char c) {
  while (p != end && *p != c) ++p;
  return p;
}

// --- SWAR: 8 bytes per iteration, zero-byte trick ---------------------------
//
// The zero-byte trick can mark false positives, but only in bytes *more
// significant* than a genuine zero. Taking the least-significant marked byte
// is therefore always exact — and on a little-endian host that byte is also
// the one earliest in the buffer, which is what a left-to-right scan must
// return. Big-endian hosts (where "earliest in buffer" is the *most*
// significant byte, squarely in false-positive territory) fall back to the
// scalar loop instead.

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__

constexpr uint64_t kLowBits = 0x0101010101010101ULL;
constexpr uint64_t kHighBits = 0x8080808080808080ULL;

inline uint64_t Broadcast(char c) {
  return kLowBits * static_cast<uint8_t>(c);
}

/// 0x80 in (at least) every byte of `x` that is zero; possible extra marks
/// only in bytes above the lowest zero (see the note above).
inline uint64_t ZeroBytes(uint64_t x) { return (x - kLowBits) & ~x & kHighBits; }

/// Buffer index of the first (= least significant) marked byte (mask != 0).
inline int FirstMarked(uint64_t mask) { return __builtin_ctzll(mask) >> 3; }

const char* ScanTwoSwar(const char* p, const char* end, char a, char b) {
  const uint64_t needle_a = Broadcast(a);
  const uint64_t needle_b = Broadcast(b);
  while (end - p >= 8) {
    uint64_t word;
    std::memcpy(&word, p, sizeof(word));
    uint64_t hits = ZeroBytes(word ^ needle_a) | ZeroBytes(word ^ needle_b);
    if (hits != 0) return p + FirstMarked(hits);
    p += 8;
  }
  return ScanTwoScalar(p, end, a, b);
}

const char* ScanOneSwar(const char* p, const char* end, char c) {
  const uint64_t needle = Broadcast(c);
  while (end - p >= 8) {
    uint64_t word;
    std::memcpy(&word, p, sizeof(word));
    uint64_t hits = ZeroBytes(word ^ needle);
    if (hits != 0) return p + FirstMarked(hits);
    p += 8;
  }
  return ScanOneScalar(p, end, c);
}

#else  // big-endian: scalar stands in for the SWAR tier

const char* ScanTwoSwar(const char* p, const char* end, char a, char b) {
  return ScanTwoScalar(p, end, a, b);
}

const char* ScanOneSwar(const char* p, const char* end, char c) {
  return ScanOneScalar(p, end, c);
}

#endif

// --- SSE2 / AVX2: 16 / 32 bytes per iteration -------------------------------

#ifdef RAW_KERNELS_X86

const char* ScanTwoSse2(const char* p, const char* end, char a, char b) {
  const __m128i needle_a = _mm_set1_epi8(a);
  const __m128i needle_b = _mm_set1_epi8(b);
  while (end - p >= 16) {
    __m128i chunk = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    __m128i hits = _mm_or_si128(_mm_cmpeq_epi8(chunk, needle_a),
                                _mm_cmpeq_epi8(chunk, needle_b));
    int mask = _mm_movemask_epi8(hits);
    if (mask != 0) return p + __builtin_ctz(static_cast<unsigned>(mask));
    p += 16;
  }
  return ScanTwoScalar(p, end, a, b);
}

const char* ScanOneSse2(const char* p, const char* end, char c) {
  const __m128i needle = _mm_set1_epi8(c);
  while (end - p >= 16) {
    __m128i chunk = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    int mask = _mm_movemask_epi8(_mm_cmpeq_epi8(chunk, needle));
    if (mask != 0) return p + __builtin_ctz(static_cast<unsigned>(mask));
    p += 16;
  }
  return ScanOneScalar(p, end, c);
}

__attribute__((target("avx2"))) const char* ScanTwoAvx2(const char* p,
                                                        const char* end,
                                                        char a, char b) {
  const __m256i needle_a = _mm256_set1_epi8(a);
  const __m256i needle_b = _mm256_set1_epi8(b);
  while (end - p >= 32) {
    __m256i chunk = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    __m256i hits = _mm256_or_si256(_mm256_cmpeq_epi8(chunk, needle_a),
                                   _mm256_cmpeq_epi8(chunk, needle_b));
    unsigned mask = static_cast<unsigned>(_mm256_movemask_epi8(hits));
    if (mask != 0) return p + __builtin_ctz(mask);
    p += 32;
  }
  return ScanTwoSse2(p, end, a, b);
}

__attribute__((target("avx2"))) const char* ScanOneAvx2(const char* p,
                                                        const char* end,
                                                        char c) {
  const __m256i needle = _mm256_set1_epi8(c);
  while (end - p >= 32) {
    __m256i chunk = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    unsigned mask = static_cast<unsigned>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(chunk, needle)));
    if (mask != 0) return p + __builtin_ctz(mask);
    p += 32;
  }
  return ScanOneSse2(p, end, c);
}

#endif  // RAW_KERNELS_X86

std::atomic<KernelTier> g_active_tier{KernelTier::kScalar};

KernelTier ClampToSupported(KernelTier tier) {
  KernelTier max = MaxSupportedKernelTier();
  return static_cast<int>(tier) > static_cast<int>(max) ? max : tier;
}

void ApplyTier(KernelTier tier) {
  tier = ClampToSupported(tier);
  ScanTwoFn two = ScanForEitherImpl(tier);
  ScanOneFn one = ScanForImpl(tier);
  kernel_detail::scan_two.store(two, std::memory_order_relaxed);
  kernel_detail::scan_one.store(one, std::memory_order_relaxed);
  g_active_tier.store(tier, std::memory_order_relaxed);
}

KernelTier TierFromEnv() {
  const char* env = std::getenv("RAW_KERNELS");
  if (env == nullptr || *env == '\0') return MaxSupportedKernelTier();
  std::string_view v(env);
  if (v == "scalar") return KernelTier::kScalar;
  if (v == "swar") return KernelTier::kSwar;
  if (v == "sse2") return KernelTier::kSse2;
  if (v == "avx2") return KernelTier::kAvx2;
  // "simd" means the best the CPU offers; anything else is a typo the user
  // should hear about rather than silently running the auto-selected tier.
  if (v != "simd") {
    WarnMalformedEnvOnce("RAW_KERNELS", env,
                         "one of scalar|swar|sse2|avx2|simd");
  }
  return MaxSupportedKernelTier();
}

}  // namespace

namespace kernel_detail {
// Constant-initialized (constexpr atomic ctor + function addresses), so these
// hold the scalar tier even before this TU's dynamic initializer below runs.
std::atomic<ScanTwoFn> scan_two{&ScanTwoScalar};
std::atomic<ScanOneFn> scan_one{&ScanOneScalar};
}  // namespace kernel_detail

namespace {
// Dynamic initialization runs before main(), i.e. before any query thread
// exists, so the relaxed stores in ApplyTier are safely visible.
const bool g_dispatch_initialized = [] {
  ApplyTier(TierFromEnv());
  return true;
}();
}  // namespace

std::string_view KernelTierName(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return "scalar";
    case KernelTier::kSwar:
      return "swar";
    case KernelTier::kSse2:
      return "sse2";
    case KernelTier::kAvx2:
      return "avx2";
  }
  return "?";
}

KernelTier MaxSupportedKernelTier() {
#ifdef RAW_KERNELS_X86
  if (__builtin_cpu_supports("avx2")) return KernelTier::kAvx2;
  return KernelTier::kSse2;  // baseline on x86-64
#else
  return KernelTier::kSwar;
#endif
}

KernelTier ActiveKernelTier() {
  (void)g_dispatch_initialized;
  return g_active_tier.load(std::memory_order_relaxed);
}

void SetKernelTier(KernelTier tier) { ApplyTier(tier); }

KernelTier ResetKernelTierFromEnv() {
  KernelTier tier = ClampToSupported(TierFromEnv());
  ApplyTier(tier);
  return tier;
}

ScanTwoFn ScanForEitherImpl(KernelTier tier) {
  if (static_cast<int>(tier) > static_cast<int>(MaxSupportedKernelTier())) {
    return nullptr;
  }
  switch (tier) {
    case KernelTier::kScalar:
      return &ScanTwoScalar;
    case KernelTier::kSwar:
      return &ScanTwoSwar;
#ifdef RAW_KERNELS_X86
    case KernelTier::kSse2:
      return &ScanTwoSse2;
    case KernelTier::kAvx2:
      return &ScanTwoAvx2;
#else
    default:
      return nullptr;
#endif
  }
  return nullptr;
}

ScanOneFn ScanForImpl(KernelTier tier) {
  if (static_cast<int>(tier) > static_cast<int>(MaxSupportedKernelTier())) {
    return nullptr;
  }
  switch (tier) {
    case KernelTier::kScalar:
      return &ScanOneScalar;
    case KernelTier::kSwar:
      return &ScanOneSwar;
#ifdef RAW_KERNELS_X86
    case KernelTier::kSse2:
      return &ScanOneSse2;
    case KernelTier::kAvx2:
      return &ScanOneAvx2;
#else
    default:
      return nullptr;
#endif
  }
  return nullptr;
}

}  // namespace raw
