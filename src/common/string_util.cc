#include "common/string_util.h"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace raw {

std::vector<std::string_view> SplitString(std::string_view input, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(input.substr(start));
      break;
    }
    out.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

}  // namespace raw
