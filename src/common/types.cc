#include "common/types.h"

namespace raw {

int FixedWidth(DataType type) {
  switch (type) {
    case DataType::kBool:
      return 1;
    case DataType::kInt32:
      return 4;
    case DataType::kInt64:
      return 8;
    case DataType::kFloat32:
      return 4;
    case DataType::kFloat64:
      return 8;
    case DataType::kString:
      return 0;
  }
  return 0;
}

bool IsFixedWidth(DataType type) { return type != DataType::kString; }

bool IsNumeric(DataType type) {
  switch (type) {
    case DataType::kInt32:
    case DataType::kInt64:
    case DataType::kFloat32:
    case DataType::kFloat64:
      return true;
    default:
      return false;
  }
}

std::string_view DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kBool:
      return "bool";
    case DataType::kInt32:
      return "int32";
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat32:
      return "float32";
    case DataType::kFloat64:
      return "float64";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

StatusOr<DataType> DataTypeFromString(std::string_view name) {
  if (name == "bool") return DataType::kBool;
  if (name == "int32" || name == "int") return DataType::kInt32;
  if (name == "int64" || name == "bigint") return DataType::kInt64;
  if (name == "float32" || name == "float") return DataType::kFloat32;
  if (name == "float64" || name == "double") return DataType::kFloat64;
  if (name == "string" || name == "text" || name == "varchar") {
    return DataType::kString;
  }
  return Status::InvalidArgument("unknown data type: " + std::string(name));
}

}  // namespace raw
