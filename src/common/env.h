#ifndef RAW_COMMON_ENV_H_
#define RAW_COMMON_ENV_H_

#include <cstdint>
#include <optional>
#include <string>

namespace raw {

/// Strict integer parsing for environment knobs (RAW_NUM_THREADS,
/// RAW_BENCH_*). Unlike atoi/atoll — which silently read "4abc" as 4 and
/// return 0 or garbage on overflow — these reject trailing characters and
/// out-of-range values, warn once per variable on stderr, and fall back to
/// the caller's default. A malformed knob must never silently reconfigure
/// the engine.

/// Parses the whole of `text` as a base-10 integer in [min, max]. Leading
/// '+'/'-' allowed; leading/trailing whitespace and any other trailing
/// characters are rejected, as are empty strings and values outside range.
std::optional<int64_t> ParseInt64Strict(const std::string& text, int64_t min,
                                        int64_t max);

/// Reads `$name` as an integer in [min, max]. Returns `fallback` when unset.
/// When set but malformed or out of range, warns once per variable on stderr
/// (naming the variable, the value and the accepted range) and returns
/// `fallback`.
int64_t GetEnvInt64(const char* name, int64_t fallback, int64_t min,
                    int64_t max);

/// Int-sized convenience over GetEnvInt64.
int GetEnvInt(const char* name, int fallback, int min, int max);

/// Warns once per (variable, value) about a malformed environment knob.
/// Exposed for env consumers with non-integer grammars (RAW_KERNELS).
void WarnMalformedEnvOnce(const char* name, const std::string& value,
                          const std::string& expected);

}  // namespace raw

#endif  // RAW_COMMON_ENV_H_
