#ifndef RAW_COMMON_FAULT_INJECTOR_H_
#define RAW_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <climits>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

namespace raw {

/// Failure modes the injector can impose on a file operation. Raw files are
/// hostile input: the engine does not own them, so every one of these happens
/// in production — the injector makes each reproducible in a unit test.
enum class FaultKind {
  kNone = 0,
  /// The open/read fails outright with an I/O error.
  kEio,
  /// A read returns fewer bytes than requested (pread paths); for mmap
  /// opens this behaves like kTruncate (a mapping has no partial read).
  kShortRead,
  /// The file appears cut off at `offset` bytes (default: half its size).
  kTruncate,
  /// One byte at `offset` (default: the middle byte) has a bit flipped.
  kBitFlip,
};

std::string_view FaultKindToString(FaultKind kind);

/// A single armed fault. Matching is by path substring; `nth` selects which
/// matching operation starts firing (1 = the first), `max_fires` caps how
/// many fire, and `sample` < 1 turns deterministic firing into seeded
/// pseudo-random sampling (for whole-suite chaos legs).
struct FaultSpec {
  FaultKind kind = FaultKind::kNone;
  std::string path_substr;     // empty = match every path
  int64_t offset = -1;         // kTruncate/kBitFlip position; -1 = midpoint
  int64_t nth = 1;             // first matching op that fires (1-based)
  int64_t max_fires = INT64_MAX;
  double sample = 1.0;         // firing probability once eligible
  uint64_t seed = 0;           // sampling RNG seed (deterministic)
};

/// Deterministic I/O fault-injection harness (process-wide singleton).
///
/// The engine's file paths — MmapFile::Open, ReadFileToString, the REF
/// reader's pread loop — consult the injector before touching the kernel.
/// Disarmed (the default), the hook is one relaxed atomic load; armed, each
/// matching operation counts up to the spec and fires the configured fault.
///
/// Arming: programmatic via Arm()/Disarm() (tests), or the RAW_FAULT_INJECT
/// environment variable parsed once at first use:
///
///   RAW_FAULT_INJECT="kind[:key=value[,key=value...]]"
///   kinds:  eio | short | truncate | bitflip
///   keys:   path=<substring>  offset=<bytes>  nth=<n>  max=<n>
///           sample=<0..1>  seed=<n>
///
///   RAW_FAULT_INJECT=eio:path=lineitem.csv,nth=2
///   RAW_FAULT_INJECT=truncate:path=.ref,offset=4096
///   RAW_FAULT_INJECT=eio:sample=0.01,seed=7
///
/// A malformed spec is reported to stderr once and ignored (the engine never
/// refuses to start over an observability knob).
class FaultInjector {
 public:
  /// The process-wide injector; first call parses RAW_FAULT_INJECT.
  static FaultInjector& Global();

  void Arm(FaultSpec spec);
  void Disarm();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Faults fired since process start (armed specs only).
  int64_t fired() const { return fired_.load(std::memory_order_relaxed); }

  /// Consulted by a file operation on `path`. Returns the fault to apply
  /// (kNone = proceed normally) and, for kTruncate/kBitFlip, the byte
  /// offset to apply it at given the operation spans `size` bytes.
  FaultKind Check(std::string_view path, int64_t size, int64_t* offset);

  /// Parses a RAW_FAULT_INJECT-syntax spec string into `*spec`; false (with
  /// *error set) on malformed input. Exposed for tests.
  static bool ParseSpec(std::string_view text, FaultSpec* spec,
                        std::string* error);

 private:
  FaultInjector();

  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> fired_{0};
  mutable std::mutex mu_;
  FaultSpec spec_;          // guarded by mu_
  int64_t matches_ = 0;     // matching ops seen since Arm (guarded by mu_)
  int64_t spec_fired_ = 0;  // fires charged to the current spec
  uint64_t rng_ = 0;        // sampling state (guarded by mu_)
};

}  // namespace raw

#endif  // RAW_COMMON_FAULT_INJECTOR_H_
