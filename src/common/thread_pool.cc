#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>

namespace raw {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

bool ThreadPool::TryRunPendingTask() {
  std::packaged_task<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::HelpWait(std::future<void>& fut) {
  while (fut.wait_for(std::chrono::seconds(0)) !=
         std::future_status::ready) {
    if (!TryRunPendingTask()) {
      fut.wait_for(std::chrono::milliseconds(1));
    }
  }
}

int64_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

Status ThreadPool::ParallelFor(int64_t n, int parallelism,
                               const Deadline& deadline,
                               const std::function<Status(int64_t)>& fn) {
  if (deadline.is_infinite()) return ParallelFor(n, parallelism, fn);
  return ParallelFor(n, parallelism, [&](int64_t i) -> Status {
    if (deadline.expired()) {
      return Status::ResourceExhausted("deadline exceeded in ParallelFor");
    }
    return fn(i);
  });
}

Status ThreadPool::ParallelFor(int64_t n, int parallelism,
                               const std::function<Status(int64_t)>& fn) {
  if (n <= 0) return Status::OK();
  parallelism = std::max(1, std::min<int>(parallelism,
                                          static_cast<int>(std::min<int64_t>(
                                              n, num_threads() + 1))));
  auto next = std::make_shared<std::atomic<int64_t>>(0);
  // Smallest failing index wins so the reported error is deterministic.
  auto err_index = std::make_shared<std::atomic<int64_t>>(n);
  auto err_mu = std::make_shared<std::mutex>();
  auto err = std::make_shared<Status>(Status::OK());

  auto worker = [n, next, err_index, err_mu, err, &fn] {
    while (true) {
      int64_t i = next->fetch_add(1, std::memory_order_relaxed);
      if (i >= n || err_index->load(std::memory_order_relaxed) < n) break;
      Status st = fn(i);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(*err_mu);
        if (i < err_index->load(std::memory_order_relaxed)) {
          err_index->store(i, std::memory_order_relaxed);
          *err = std::move(st);
        }
      }
    }
  };

  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(parallelism - 1));
  for (int t = 0; t < parallelism - 1; ++t) futures.push_back(Submit(worker));
  // The caller participates. Queued tasks reference `fn`, so even if it
  // throws here, every submitted task must finish before this frame unwinds.
  std::exception_ptr caller_ex;
  try {
    worker();
  } catch (...) {
    caller_ex = std::current_exception();
    err_index->store(-1, std::memory_order_relaxed);  // stop claiming
  }
  std::exception_ptr task_ex;
  for (std::future<void>& fut : futures) {
    HelpWait(fut);
    try {
      fut.get();
    } catch (...) {
      if (!task_ex) task_ex = std::current_exception();
    }
  }
  if (caller_ex) std::rethrow_exception(caller_ex);
  if (task_ex) std::rethrow_exception(task_ex);

  std::lock_guard<std::mutex> lock(*err_mu);
  return *err;
}

ThreadPool* ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(static_cast<int>(
      std::max(8u, std::thread::hardware_concurrency())));
  return pool;
}

}  // namespace raw
