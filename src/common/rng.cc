#include "common/rng.h"

namespace raw {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to seed the xoshiro state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Lemire's multiply-shift rejection-free approximation is fine here; exact
  // uniformity is not required for workload generation, determinism is.
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(Next()) * bound) >> 64);
}

int64_t Rng::NextInt64(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

int32_t Rng::NextInt32(int32_t lo, int32_t hi) {
  return static_cast<int32_t>(NextInt64(lo, hi));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + NextDouble() * (hi - lo);
}

}  // namespace raw
