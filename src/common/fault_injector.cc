#include "common/fault_injector.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "common/env.h"

namespace raw {

namespace {

bool ParseDouble(std::string_view text, double* out) {
  std::string buf(text);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || buf.empty()) return false;
  *out = v;
  return true;
}

// xorshift64* — tiny, seedable, good enough for fault sampling.
uint64_t NextRng(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545f4914f6cdd1dULL;
}

}  // namespace

std::string_view FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kEio:
      return "eio";
    case FaultKind::kShortRead:
      return "short";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kBitFlip:
      return "bitflip";
  }
  return "none";
}

bool FaultInjector::ParseSpec(std::string_view text, FaultSpec* spec,
                              std::string* error) {
  FaultSpec out;
  size_t colon = text.find(':');
  std::string_view kind = text.substr(0, colon);
  if (kind == "eio") {
    out.kind = FaultKind::kEio;
  } else if (kind == "short") {
    out.kind = FaultKind::kShortRead;
  } else if (kind == "truncate") {
    out.kind = FaultKind::kTruncate;
  } else if (kind == "bitflip") {
    out.kind = FaultKind::kBitFlip;
  } else {
    if (error) *error = "unknown fault kind '" + std::string(kind) + "'";
    return false;
  }
  if (colon != std::string_view::npos) {
    std::string_view rest = text.substr(colon + 1);
    while (!rest.empty()) {
      size_t comma = rest.find(',');
      std::string_view kv = rest.substr(0, comma);
      rest = comma == std::string_view::npos ? std::string_view()
                                             : rest.substr(comma + 1);
      size_t eq = kv.find('=');
      if (eq == std::string_view::npos) {
        if (error) *error = "expected key=value, got '" + std::string(kv) + "'";
        return false;
      }
      std::string_view key = kv.substr(0, eq);
      std::string_view val = kv.substr(eq + 1);
      const std::string val_str(val);
      if (key == "path") {
        out.path_substr = val_str;
      } else if (key == "offset") {
        auto n = ParseInt64Strict(val_str, 0, INT64_MAX);
        if (!n) {
          if (error) *error = "offset must be a non-negative integer";
          return false;
        }
        out.offset = *n;
      } else if (key == "nth") {
        auto n = ParseInt64Strict(val_str, 1, INT64_MAX);
        if (!n) {
          if (error) *error = "nth must be a positive integer";
          return false;
        }
        out.nth = *n;
      } else if (key == "max") {
        auto n = ParseInt64Strict(val_str, 0, INT64_MAX);
        if (!n) {
          if (error) *error = "max must be a non-negative integer";
          return false;
        }
        out.max_fires = *n;
      } else if (key == "seed") {
        auto n = ParseInt64Strict(val_str, 0, INT64_MAX);
        if (!n) {
          if (error) *error = "seed must be a non-negative integer";
          return false;
        }
        out.seed = static_cast<uint64_t>(*n);
      } else if (key == "sample") {
        double p = 0;
        if (!ParseDouble(val, &p) || p < 0 || p > 1) {
          if (error) *error = "sample must be in [0,1]";
          return false;
        }
        out.sample = p;
      } else {
        if (error) {
          *error = "bad fault option '" + std::string(key) + "=" + val_str + "'";
        }
        return false;
      }
    }
  }
  *spec = out;
  return true;
}

FaultInjector::FaultInjector() {
  const char* env = std::getenv("RAW_FAULT_INJECT");
  if (env == nullptr || env[0] == '\0') return;
  FaultSpec spec;
  std::string error;
  if (!ParseSpec(env, &spec, &error)) {
    std::fprintf(stderr, "raw: ignoring malformed RAW_FAULT_INJECT=%s (%s)\n",
                 env, error.c_str());
    return;
  }
  Arm(spec);
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  spec_ = std::move(spec);
  matches_ = 0;
  spec_fired_ = 0;
  rng_ = spec_.seed ? spec_.seed : 0x9e3779b97f4a7c15ULL;
  enabled_.store(spec_.kind != FaultKind::kNone, std::memory_order_relaxed);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  spec_ = FaultSpec();
}

FaultKind FaultInjector::Check(std::string_view path, int64_t size,
                               int64_t* offset) {
  if (!enabled()) return FaultKind::kNone;
  std::lock_guard<std::mutex> lock(mu_);
  if (spec_.kind == FaultKind::kNone) return FaultKind::kNone;
  if (!spec_.path_substr.empty() &&
      path.find(spec_.path_substr) == std::string_view::npos) {
    return FaultKind::kNone;
  }
  if (++matches_ < spec_.nth) return FaultKind::kNone;
  if (spec_fired_ >= spec_.max_fires) return FaultKind::kNone;
  if (spec_.sample < 1.0) {
    double draw = static_cast<double>(NextRng(&rng_) >> 11) * 0x1p-53;
    if (draw >= spec_.sample) return FaultKind::kNone;
  }
  ++spec_fired_;
  fired_.fetch_add(1, std::memory_order_relaxed);
  if (offset != nullptr) {
    int64_t off = spec_.offset >= 0 ? spec_.offset : size / 2;
    if (size > 0 && off >= size) off = size - 1;
    if (off < 0) off = 0;
    *offset = off;
  }
  return spec_.kind;
}

}  // namespace raw
