#include "common/env.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <utility>

namespace raw {

std::optional<int64_t> ParseInt64Strict(const std::string& text, int64_t min,
                                        int64_t max) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  if (begin == end) return std::nullopt;
  // from_chars accepts a leading '-' but not '+'; tolerate an explicit '+'.
  if (*begin == '+') {
    ++begin;
    if (begin == end || *begin == '-') return std::nullopt;
  }
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(begin, end, value, /*base=*/10);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  if (value < min || value > max) return std::nullopt;
  return value;
}

void WarnMalformedEnvOnce(const char* name, const std::string& value,
                          const std::string& expected) {
  static std::mutex mu;
  static std::set<std::pair<std::string, std::string>>* warned =
      new std::set<std::pair<std::string, std::string>>();
  {
    std::lock_guard<std::mutex> lock(mu);
    if (!warned->emplace(name, value).second) return;
  }
  std::fprintf(stderr,
               "raw: ignoring malformed environment variable %s=\"%s\" "
               "(expected %s)\n",
               name, value.c_str(), expected.c_str());
}

int64_t GetEnvInt64(const char* name, int64_t fallback, int64_t min,
                    int64_t max) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  std::optional<int64_t> value = ParseInt64Strict(env, min, max);
  if (!value.has_value()) {
    WarnMalformedEnvOnce(name, env,
                         "an integer in [" + std::to_string(min) + ", " +
                             std::to_string(max) + "]");
    return fallback;
  }
  return *value;
}

int GetEnvInt(const char* name, int fallback, int min, int max) {
  return static_cast<int>(GetEnvInt64(name, fallback, min, max));
}

}  // namespace raw
