#ifndef RAW_COMMON_MACROS_H_
#define RAW_COMMON_MACROS_H_

// Branch-prediction and utility macros shared across the RAW engine.

#define RAW_LIKELY(x) (__builtin_expect(!!(x), 1))
#define RAW_UNLIKELY(x) (__builtin_expect(!!(x), 0))

#define RAW_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;          \
  TypeName& operator=(const TypeName&) = delete

// Propagates a non-OK raw::Status from an expression.
#define RAW_RETURN_NOT_OK(expr)                \
  do {                                         \
    ::raw::Status _st = (expr);                \
    if (RAW_UNLIKELY(!_st.ok())) return _st;   \
  } while (0)

// Evaluates an expression returning StatusOr<T>; on success assigns the value
// to `lhs`, otherwise returns the error status.
#define RAW_CONCAT_IMPL(a, b) a##b
#define RAW_CONCAT(a, b) RAW_CONCAT_IMPL(a, b)
#define RAW_ASSIGN_OR_RETURN(lhs, expr)                             \
  auto RAW_CONCAT(_raw_sor_, __LINE__) = (expr);                    \
  if (RAW_UNLIKELY(!RAW_CONCAT(_raw_sor_, __LINE__).ok()))          \
    return RAW_CONCAT(_raw_sor_, __LINE__).status();                \
  lhs = std::move(RAW_CONCAT(_raw_sor_, __LINE__)).value()

#endif  // RAW_COMMON_MACROS_H_
