#ifndef RAW_COMMON_STRING_UTIL_H_
#define RAW_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace raw {

/// Splits `input` on `sep`; keeps empty pieces ("a,,b" -> {"a","","b"}).
std::vector<std::string_view> SplitString(std::string_view input, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Lowercases ASCII.
std::string ToLower(std::string_view input);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Human-readable byte count, e.g. "1.5 MiB".
std::string HumanBytes(uint64_t bytes);

}  // namespace raw

#endif  // RAW_COMMON_STRING_UTIL_H_
