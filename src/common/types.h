#ifndef RAW_COMMON_TYPES_H_
#define RAW_COMMON_TYPES_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/statusor.h"

namespace raw {

/// Physical data types understood by the columnar engine and the raw-file
/// access paths. STRING is variable-length; everything else is fixed-width.
enum class DataType : uint8_t {
  kBool = 0,
  kInt32 = 1,
  kInt64 = 2,
  kFloat32 = 3,
  kFloat64 = 4,
  kString = 5,
};

/// Number of distinct DataType values (for table-driven dispatch).
inline constexpr int kNumDataTypes = 6;

/// Returns the fixed on-disk / in-memory width of `type` in bytes, or 0 for
/// variable-length types (STRING).
int FixedWidth(DataType type);

/// Returns true for INT32/INT64/FLOAT32/FLOAT64/BOOL.
bool IsFixedWidth(DataType type);

/// Returns true for numeric types (ints and floats).
bool IsNumeric(DataType type);

/// Returns the lowercase SQL-ish name, e.g. "int32", "float64".
std::string_view DataTypeToString(DataType type);

/// Parses "int32", "int64", "float32", "float64", "bool", "string".
StatusOr<DataType> DataTypeFromString(std::string_view name);

/// C++ type mapping used by templated kernels.
template <DataType kType>
struct CType;
template <>
struct CType<DataType::kBool> {
  using type = bool;
};
template <>
struct CType<DataType::kInt32> {
  using type = int32_t;
};
template <>
struct CType<DataType::kInt64> {
  using type = int64_t;
};
template <>
struct CType<DataType::kFloat32> {
  using type = float;
};
template <>
struct CType<DataType::kFloat64> {
  using type = double;
};

/// Reverse mapping from a C++ type to its DataType tag.
template <typename T>
struct TypeTag;
template <>
struct TypeTag<bool> {
  static constexpr DataType value = DataType::kBool;
};
template <>
struct TypeTag<int32_t> {
  static constexpr DataType value = DataType::kInt32;
};
template <>
struct TypeTag<int64_t> {
  static constexpr DataType value = DataType::kInt64;
};
template <>
struct TypeTag<float> {
  static constexpr DataType value = DataType::kFloat32;
};
template <>
struct TypeTag<double> {
  static constexpr DataType value = DataType::kFloat64;
};
template <>
struct TypeTag<std::string> {
  static constexpr DataType value = DataType::kString;
};

}  // namespace raw

#endif  // RAW_COMMON_TYPES_H_
