#ifndef RAW_COMMON_STOPWATCH_H_
#define RAW_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace raw {

/// Monotonic wall-clock stopwatch used by benchmarks and ScanProfile.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulating timer: add intervals across many calls, read total at the
/// end. Used for the Figure-3 cost breakdown.
class AccumTimer {
 public:
  void Start() { watch_.Restart(); }
  void Stop() { total_ns_ += watch_.ElapsedNanos(); }
  void Reset() { total_ns_ = 0; }
  int64_t total_nanos() const { return total_ns_; }
  double total_seconds() const { return static_cast<double>(total_ns_) * 1e-9; }

 private:
  Stopwatch watch_;
  int64_t total_ns_ = 0;
};

}  // namespace raw

#endif  // RAW_COMMON_STOPWATCH_H_
