#ifndef RAW_COMMON_RNG_H_
#define RAW_COMMON_RNG_H_

#include <cstdint>

namespace raw {

/// Small, fast, deterministic PRNG (xoshiro256**). Data generators use this
/// so experiment inputs are reproducible across runs and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t Next();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  int64_t NextInt64(int64_t lo, int64_t hi);
  int32_t NextInt32(int32_t lo, int32_t hi);

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  bool NextBool() { return (Next() & 1) != 0; }

 private:
  uint64_t s_[4];
};

}  // namespace raw

#endif  // RAW_COMMON_RNG_H_
