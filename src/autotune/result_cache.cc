#include "autotune/result_cache.h"

#include <algorithm>
#include <functional>

namespace raw {
namespace autotune {

ResultCache::ResultCache(int64_t capacity_bytes, int num_shards)
    : capacity_bytes_(std::max<int64_t>(capacity_bytes, 0)) {
  if (num_shards < 1) num_shards = 1;
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) const {
  size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

int64_t ResultCache::EntryBytes(const std::string& key,
                                const QueryResult& result) {
  int64_t bytes = static_cast<int64_t>(key.size()) +
                  static_cast<int64_t>(result.plan_description.size()) + 128;
  for (const ColumnPtr& col : result.table.columns()) {
    if (col != nullptr) bytes += col->MemoryBytes();
  }
  bytes += static_cast<int64_t>(result.table.row_ids().size()) * 8;
  return bytes;
}

bool ResultCache::Lookup(const std::string& key, QueryResult* out) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  *out = it->second->result;  // columns are shared + immutable: cheap copy
  return true;
}

void ResultCache::Insert(const std::string& key, const QueryResult& result,
                         const std::vector<std::string>& tables) {
  const int64_t bytes = EntryBytes(key, result);
  if (capacity_bytes_ == 0 || bytes > capacity_bytes_) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Refresh in place (same key => same semantic result; timings differ).
    total_bytes_.fetch_sub(it->second->bytes, std::memory_order_relaxed);
    shard.bytes_cached -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  Entry entry;
  entry.key = key;
  entry.result = result;
  entry.tables = tables;
  entry.bytes = bytes;
  shard.lru.push_front(std::move(entry));
  shard.index[key] = shard.lru.begin();
  shard.bytes_cached += bytes;
  total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  ++shard.inserted;
  EvictOverCapacity(shard);
}

void ResultCache::EvictOverCapacity(Shard& shard) {
  while (total_bytes_.load(std::memory_order_relaxed) > capacity_bytes_ &&
         shard.lru.size() > 1) {
    Entry& victim = shard.lru.back();
    total_bytes_.fetch_sub(victim.bytes, std::memory_order_relaxed);
    shard.bytes_cached -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void ResultCache::InvalidateTable(const std::string& table) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      bool reads_table =
          std::find(it->tables.begin(), it->tables.end(), table) !=
          it->tables.end();
      if (reads_table) {
        total_bytes_.fetch_sub(it->bytes, std::memory_order_relaxed);
        shard->bytes_cached -= it->bytes;
        shard->index.erase(it->key);
        it = shard->lru.erase(it);
        ++shard->invalidated;
      } else {
        ++it;
      }
    }
  }
}

void ResultCache::Clear(bool count_invalidated) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total_bytes_.fetch_sub(shard->bytes_cached, std::memory_order_relaxed);
    if (count_invalidated) {
      shard->invalidated += static_cast<int64_t>(shard->index.size());
    }
    shard->lru.clear();
    shard->index.clear();
    shard->bytes_cached = 0;
  }
}

ResultCacheStats ResultCache::Stats() const {
  ResultCacheStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += static_cast<int64_t>(shard->index.size());
    stats.bytes += shard->bytes_cached;
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.inserted += shard->inserted;
    stats.invalidated += shard->invalidated;
    stats.evictions += shard->evictions;
  }
  return stats;
}

}  // namespace autotune
}  // namespace raw
