#include "autotune/materializer.h"

#include <algorithm>
#include <chrono>

#include "engine/cost_model.h"
#include "engine/raw_engine.h"
#include "engine/session.h"

namespace raw {
namespace autotune {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Rough per-value materialized width for byte-budget estimates.
int64_t TypeWidth(DataType type) {
  switch (type) {
    case DataType::kBool:
      return 1;
    case DataType::kInt32:
    case DataType::kFloat32:
      return 4;
    case DataType::kInt64:
    case DataType::kFloat64:
      return 8;
    case DataType::kString:
      return 24;  // pointer-ish + short payload
  }
  return 8;
}

/// Index of the most-accessed column (ties to the lowest index).
int HottestColumn(const std::vector<int64_t>& accesses) {
  int hot = 0;
  int64_t best = -1;
  for (size_t i = 0; i < accesses.size(); ++i) {
    if (accesses[i] > best) {
      best = accesses[i];
      hot = static_cast<int>(i);
    }
  }
  return hot;
}

/// `SELECT cols... FROM table` as a programmatic spec (no SQL round-trip).
QuerySpec ProjectionSpec(const std::string& table, const Schema& schema,
                         const std::vector<int>& cols) {
  QuerySpec spec;
  spec.tables.push_back(table);
  for (int c : cols) {
    ColumnRefSpec ref;
    ref.table = table;
    ref.column = schema.field(c).name;
    spec.projections.push_back(std::move(ref));
  }
  return spec;
}

}  // namespace

BackgroundMaterializer::BackgroundMaterializer(RawEngine* engine,
                                               MaterializerOptions options)
    : engine_(engine), options_(std::move(options)) {}

BackgroundMaterializer::~BackgroundMaterializer() { Stop(); }

void BackgroundMaterializer::Start() {
  if (!options_.enabled || started_) return;
  started_ = true;
  stop_.store(false, std::memory_order_release);
  worker_ = std::thread([this] { WorkerLoop(); });
}

void BackgroundMaterializer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  started_ = false;
}

void BackgroundMaterializer::Preempt() {
  preempt_.store(true, std::memory_order_release);
}

bool BackgroundMaterializer::EngineIdle() const {
  if (engine_->queries_inflight_.load(std::memory_order_acquire) != 0) {
    return false;
  }
  const AdmissionCounters& adm = engine_->admission_;
  if (adm.queued.load(std::memory_order_acquire) != 0 ||
      adm.running.load(std::memory_order_acquire) != 0) {
    return false;
  }
  int64_t last = engine_->last_activity_ns_.load(std::memory_order_acquire);
  return NowNs() - last >= options_.idle_wait_ms * 1000000;
}

bool BackgroundMaterializer::ShouldYield() const {
  return stop_.load(std::memory_order_acquire) ||
         preempt_.load(std::memory_order_acquire) ||
         engine_->queries_inflight_.load(std::memory_order_acquire) > 0 ||
         engine_->admission_.queued.load(std::memory_order_acquire) > 0 ||
         engine_->admission_.running.load(std::memory_order_acquire) > 0;
}

std::vector<BackgroundMaterializer::Action>
BackgroundMaterializer::MineActions() {
  std::vector<Action> actions;
  CostModel cost_model;
  int64_t budget_left = engine_->shreds_.capacity_bytes() -
                        engine_->shreds_.Stats().bytes;
  for (const TableStats& t : engine_->catalog_.Stats()) {
    // REF tables multiplex a shared reader with its own buffer pool;
    // speculative per-entry work does not apply.
    if (t.format == FileFormat::kRef) continue;
    if (t.scans < options_.min_table_scans) continue;
    StatusOr<TableEntry*> entry_or = engine_->catalog_.Get(t.name);
    if (!entry_or.ok()) continue;
    const Schema& schema = entry_or.value()->info.schema;
    if (schema.num_fields() == 0) continue;
    const int64_t rows =
        t.row_count >= 0
            ? t.row_count
            : std::max<int64_t>(t.file_size > 0 ? t.file_size / 32 : 1, 1);

    ShredDecisionInput in;
    in.format = t.format;
    in.table_rows = rows;
    // What one more cold query would pay to materialize a column of this
    // table — the benefit a completed build saves on every future scan.
    const double full_cost = cost_model.FullColumnCost(in);

    const bool needs_nav =
        ((t.format == FileFormat::kCsv || t.format == FileFormat::kJsonl) &&
         t.pmap_rows == 0) ||
        (t.format == FileFormat::kCsvGz && t.format_state_bytes == 0);
    if (needs_nav) {
      // Completing navigation state (positional map / block index) is the
      // cheapest, highest-leverage action: every later access path uses it.
      // One full streamed pass over the hottest column builds + publishes it
      // through the ordinary claim/publish protocol.
      Action a;
      a.kind = Action::Kind::kNavigation;
      a.table = t.name;
      a.spec = ProjectionSpec(t.name, schema,
                              {HottestColumn(t.column_accesses)});
      a.score = 2.0 * static_cast<double>(t.scans) * full_cost;
      actions.push_back(std::move(a));
      // Column mining waits until the map exists (next idle pass): late
      // scans through the map change what is worth caching.
      continue;
    }

    // Small hot table: cache *every* column (the "fully load" action),
    // subsuming per-column work.
    int64_t est_all = 0;
    std::vector<int> missing;
    for (int c = 0; c < schema.num_fields(); ++c) {
      if (engine_->shreds_.ContainsFull(t.name, c)) continue;
      missing.push_back(c);
      est_all += rows * TypeWidth(schema.field(c).type);
    }
    if (missing.empty()) continue;  // fully resident already
    if (t.file_size >= 0 && t.file_size <= options_.full_load_max_bytes) {
      if (est_all <= budget_left) {
        Action a;
        a.kind = Action::Kind::kLoadTable;
        a.table = t.name;
        a.spec = ProjectionSpec(t.name, schema, missing);
        a.score = static_cast<double>(t.scans) * full_cost *
                  static_cast<double>(missing.size());
        budget_left -= est_all;
        actions.push_back(std::move(a));
      } else {
        actions_skipped_budget_.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }

    // Large table: materialize individual hot columns.
    for (int c : missing) {
      const int64_t accesses =
          c < static_cast<int>(t.column_accesses.size())
              ? t.column_accesses[static_cast<size_t>(c)]
              : 0;
      if (accesses < options_.min_column_accesses) continue;
      const int64_t est = rows * TypeWidth(schema.field(c).type);
      if (est > budget_left) {
        actions_skipped_budget_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      Action a;
      a.kind = Action::Kind::kCacheColumn;
      a.table = t.name;
      a.spec = ProjectionSpec(t.name, schema, {c});
      a.score = static_cast<double>(accesses) * full_cost;
      budget_left -= est;
      actions.push_back(std::move(a));
    }
  }
  std::sort(actions.begin(), actions.end(),
            [](const Action& a, const Action& b) { return a.score > b.score; });
  return actions;
}

bool BackgroundMaterializer::RunAction(Session* session,
                                       const Action& action) {
  actions_started_.fetch_add(1, std::memory_order_relaxed);
  StatusOr<Cursor> cursor_or = session->ExecuteStream(action.spec);
  if (!cursor_or.ok()) {
    actions_failed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Cursor cursor = std::move(cursor_or).value();
  while (true) {
    if (options_.batch_hook) options_.batch_hook();
    if (ShouldYield()) {
      // Abandoning the cursor mid-stream is the preemption contract: its
      // Close() releases the build claims, nothing partial is published,
      // and the foreground query proceeds as if we never ran.
      actions_preempted_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    StatusOr<ColumnBatch> batch = cursor.Next();
    if (!batch.ok()) {
      actions_failed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (batch.value().empty()) break;  // full drain: side effects published
    if (options_.throttle_us_per_batch > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.throttle_us_per_batch));
    }
  }
  actions_completed_.fetch_add(1, std::memory_order_relaxed);
  switch (action.kind) {
    case Action::Kind::kNavigation:
      pmaps_built_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Action::Kind::kCacheColumn:
      columns_cached_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Action::Kind::kLoadTable:
      tables_loaded_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  return true;
}

void BackgroundMaterializer::WorkerLoop() {
  // The internal session plans single-threaded (the drain happens on this
  // thread, batch by batch — the preemption granularity) and is excluded
  // from query counters, access mining, and the result cache.
  std::unique_ptr<Session> session = engine_->OpenInternalSession();
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_ms), [this] {
        return stop_.load(std::memory_order_acquire);
      });
    }
    if (stop_.load(std::memory_order_acquire)) break;
    if (!EngineIdle()) continue;
    preempt_.store(false, std::memory_order_release);
    std::vector<Action> actions = MineActions();
    if (actions.empty()) continue;
    passes_.fetch_add(1, std::memory_order_relaxed);
    for (const Action& action : actions) {
      if (ShouldYield()) break;
      RunAction(session.get(), action);
    }
  }
}

MaterializerStats BackgroundMaterializer::Stats() const {
  MaterializerStats stats;
  stats.passes = passes_.load(std::memory_order_relaxed);
  stats.actions_started = actions_started_.load(std::memory_order_relaxed);
  stats.actions_completed =
      actions_completed_.load(std::memory_order_relaxed);
  stats.actions_preempted =
      actions_preempted_.load(std::memory_order_relaxed);
  stats.actions_failed = actions_failed_.load(std::memory_order_relaxed);
  stats.actions_skipped_budget =
      actions_skipped_budget_.load(std::memory_order_relaxed);
  stats.pmaps_built = pmaps_built_.load(std::memory_order_relaxed);
  stats.columns_cached = columns_cached_.load(std::memory_order_relaxed);
  stats.tables_loaded = tables_loaded_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace autotune
}  // namespace raw
