#ifndef RAW_AUTOTUNE_RESULT_CACHE_H_
#define RAW_AUTOTUNE_RESULT_CACHE_H_

#include <atomic>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/executor.h"

namespace raw {
namespace autotune {

/// Read-only counters describing the result cache (see RawEngine::Stats()).
struct ResultCacheStats {
  int64_t entries = 0;
  int64_t bytes = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t inserted = 0;
  int64_t invalidated = 0;
  int64_t evictions = 0;
};

/// The semantic result cache: finished query results keyed by the query's
/// structural fingerprint plus its bound parameter values, so a repeated
/// prepared-statement execution skips planning and execution entirely.
///
/// Correctness rests on invalidation, not on key luck: every entry records
/// the tables it read, and the engine purges those entries whenever a
/// table's adaptive state is reset or its backing file changes (the catalog
/// additionally folds each table's staleness version into the key, so even
/// a missed purge cannot serve stale bytes).
///
/// Thread-safety mirrors ShredCache: sharded by key hash, per-shard mutex +
/// LRU list, one global atomic byte total so the budget is cache-wide.
/// Cached results hold shared immutable columns — returned copies stay
/// valid after eviction or Clear().
class ResultCache {
 public:
  static constexpr int kDefaultNumShards = 8;

  explicit ResultCache(int64_t capacity_bytes,
                       int num_shards = kDefaultNumShards);

  /// Copies the cached result for `key` into `*out` and refreshes LRU
  /// order; false (and a miss count) when absent.
  bool Lookup(const std::string& key, QueryResult* out);

  /// Caches `result` under `key`, recording `tables` for invalidation.
  /// Results larger than the whole budget are rejected silently.
  void Insert(const std::string& key, const QueryResult& result,
              const std::vector<std::string>& tables);

  /// Drops every entry that read `table`.
  void InvalidateTable(const std::string& table);

  /// Drops everything. `count_invalidated` distinguishes semantic
  /// invalidation (ResetAdaptiveState) from test housekeeping.
  void Clear(bool count_invalidated);

  ResultCacheStats Stats() const;

  int64_t capacity_bytes() const { return capacity_bytes_; }

 private:
  struct Entry {
    std::string key;
    QueryResult result;
    std::vector<std::string> tables;
    int64_t bytes = 0;
  };

  struct Shard {
    Shard() = default;
    Shard(const Shard&) = delete;
    Shard& operator=(const Shard&) = delete;

    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::map<std::string, std::list<Entry>::iterator> index;
    int64_t bytes_cached = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t inserted = 0;
    int64_t invalidated = 0;
    int64_t evictions = 0;
  };

  Shard& ShardFor(const std::string& key) const;

  /// Caller holds `shard.mu`. Evicts from this shard's LRU tail while the
  /// cache-wide total exceeds capacity.
  void EvictOverCapacity(Shard& shard);

  static int64_t EntryBytes(const std::string& key, const QueryResult& result);

  int64_t capacity_bytes_;
  std::atomic<int64_t> total_bytes_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace autotune
}  // namespace raw

#endif  // RAW_AUTOTUNE_RESULT_CACHE_H_
