#ifndef RAW_AUTOTUNE_MATERIALIZER_H_
#define RAW_AUTOTUNE_MATERIALIZER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/logical_plan.h"

namespace raw {

class RawEngine;
class Session;

namespace autotune {

/// Knobs of the background materializer (RawEngineOptions::autotune; the
/// RAW_AUTOTUNE env knob flips `enabled` for binaries that wire it).
struct MaterializerOptions {
  /// Off by default: benches and tests that measure cold behaviour must not
  /// race a warming thread unless they asked for one.
  bool enabled = false;
  /// Quiet period (no foreground activity) before the engine counts as idle.
  int64_t idle_wait_ms = 250;
  /// Worker wake-up cadence while waiting for idle.
  int64_t poll_ms = 20;
  /// Heat thresholds: a table/column must have been touched this often
  /// before speculative work on it is worth anything.
  int64_t min_table_scans = 2;
  int64_t min_column_accesses = 2;
  /// Tables whose file is at most this big qualify for a full load (every
  /// column cached); bigger tables get per-column treatment only.
  int64_t full_load_max_bytes = 64ll << 20;
  /// Batch size for background build queries (0 = engine default). Smaller
  /// batches tighten the preemption bound.
  int64_t batch_rows = 0;
  /// Microseconds slept between batches (politeness knob; 0 = none).
  int64_t throttle_us_per_batch = 0;
  /// Test hook invoked between batches of a build, before the yield check —
  /// lets tests hold a build mid-flight deterministically.
  std::function<void()> batch_hook;
};

/// Read-only counters (EngineStats::materializer).
struct MaterializerStats {
  int64_t passes = 0;              // idle passes that mined for work
  int64_t actions_started = 0;
  int64_t actions_completed = 0;
  int64_t actions_preempted = 0;   // aborted because foreground work arrived
  int64_t actions_failed = 0;
  int64_t actions_skipped_budget = 0;  // mined but over the byte budget
  int64_t pmaps_built = 0;         // navigation state completed (pmap/index)
  int64_t columns_cached = 0;      // hot columns fully materialized
  int64_t tables_loaded = 0;       // small tables fully cached
};

/// The idle-time background worker: watches the engine for idle (no queries
/// in flight, admission queues empty, quiet for idle_wait_ms), mines the
/// per-(table, column) access counters for hot sets, and speculatively
/// completes the adaptive state future queries would otherwise pay for —
/// positional maps / format navigation state, hot column shreds, full loads
/// of small hot tables.
///
/// Every build runs as an ordinary single-threaded streamed projection
/// through an internal session, so it exercises exactly the engine's own
/// claim → scan → publish protocol (a background-built positional map is
/// bit-for-bit the map a query would have built) and is bounded by the same
/// ShredCache byte budget. The drain loop checks a preemption token between
/// batches: the instant foreground work arrives (Preempt(), wired into
/// session planning and the rawd front-end), the cursor is abandoned —
/// partial builds release their claims and publish nothing.
class BackgroundMaterializer {
 public:
  BackgroundMaterializer(RawEngine* engine, MaterializerOptions options);
  ~BackgroundMaterializer();  // Stop()s and joins

  /// Starts the worker thread (no-op unless options.enabled).
  void Start();
  /// Stops and joins the worker; idempotent.
  void Stop();

  /// Foreground activity signal: sets the preemption token the build loops
  /// poll. Cheap (two relaxed stores); called on every query admission.
  void Preempt();

  MaterializerStats Stats() const;

  /// True when the engine currently satisfies the idle predicate.
  bool EngineIdle() const;

  bool enabled() const { return options_.enabled; }

 private:
  /// One mined unit of speculative work.
  struct Action {
    enum class Kind { kNavigation, kCacheColumn, kLoadTable };
    Kind kind = Kind::kNavigation;
    std::string table;
    QuerySpec spec;       // the projection query that performs the build
    double score = 0;     // mining priority (descending)
  };

  void WorkerLoop();
  /// True when the worker must stop building *now*.
  bool ShouldYield() const;
  std::vector<Action> MineActions();
  /// Runs one build to completion; false on preemption or failure.
  bool RunAction(Session* session, const Action& action);

  RawEngine* engine_;
  MaterializerOptions options_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> preempt_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  std::thread worker_;
  bool started_ = false;

  std::atomic<int64_t> passes_{0};
  std::atomic<int64_t> actions_started_{0};
  std::atomic<int64_t> actions_completed_{0};
  std::atomic<int64_t> actions_preempted_{0};
  std::atomic<int64_t> actions_failed_{0};
  std::atomic<int64_t> actions_skipped_budget_{0};
  std::atomic<int64_t> pmaps_built_{0};
  std::atomic<int64_t> columns_cached_{0};
  std::atomic<int64_t> tables_loaded_{0};
};

}  // namespace autotune
}  // namespace raw

#endif  // RAW_AUTOTUNE_MATERIALIZER_H_
