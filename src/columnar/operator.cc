#include "columnar/operator.h"

namespace raw {

StatusOr<ColumnBatch> CollectAll(Operator* op) {
  RAW_RETURN_NOT_OK(op->Open());
  std::vector<ColumnBatch> batches;
  while (true) {
    RAW_ASSIGN_OR_RETURN(ColumnBatch batch, op->Next());
    if (batch.end_of_stream()) break;
    if (batch.empty()) continue;  // zero-row data batch, not EOF
    batches.push_back(std::move(batch));
  }
  RAW_RETURN_NOT_OK(op->Close());
  return ConcatBatches(op->output_schema(), batches);
}

StatusOr<ColumnBatch> ConcatBatches(const Schema& schema,
                                    const std::vector<ColumnBatch>& batches) {
  ColumnBatch out(schema);
  std::vector<ColumnPtr> columns;
  for (int c = 0; c < schema.num_fields(); ++c) {
    columns.push_back(std::make_shared<Column>(schema.field(c).type));
  }
  std::vector<int64_t> row_ids;
  bool any_row_ids = false;
  int64_t total_rows = 0;
  for (const ColumnBatch& batch : batches) {
    if (batch.num_columns() != schema.num_fields()) {
      return Status::Internal("ConcatBatches: column count mismatch");
    }
    for (int c = 0; c < batch.num_columns(); ++c) {
      RAW_RETURN_NOT_OK(columns[static_cast<size_t>(c)]->AppendColumn(
          *batch.column(c)));
    }
    if (batch.has_row_ids()) {
      any_row_ids = true;
      row_ids.insert(row_ids.end(), batch.row_ids().begin(),
                     batch.row_ids().end());
    }
    total_rows += batch.num_rows();
  }
  for (ColumnPtr& col : columns) out.AddColumn(std::move(col));
  out.SetNumRows(total_rows);
  if (any_row_ids) out.SetRowIds(std::move(row_ids));
  return out;
}

}  // namespace raw
