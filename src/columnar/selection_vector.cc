#include "columnar/selection_vector.h"

namespace raw {

SelectionVector SelectionVector::All(int32_t n) {
  std::vector<int32_t> v(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) v[static_cast<size_t>(i)] = i;
  return SelectionVector(std::move(v));
}

SelectionVector SelectionVector::Compose(const SelectionVector& inner) const {
  SelectionVector out;
  out.Reserve(inner.size());
  for (int64_t i = 0; i < inner.size(); ++i) {
    out.Append(indices_[static_cast<size_t>(inner[i])]);
  }
  return out;
}

}  // namespace raw
