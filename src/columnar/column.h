#ifndef RAW_COLUMNAR_COLUMN_H_
#define RAW_COLUMNAR_COLUMN_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/datum.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/types.h"

namespace raw {

/// A typed, densely packed column buffer — the engine's unit of loaded data.
///
/// Columns may be *partially loaded* (column shreds, §5 of the paper): when a
/// scan operator is pushed above a filter, only qualifying rows are fetched
/// and the rest are "marked as not loaded" (§6). A column therefore carries an
/// optional loaded-bitmap; an empty bitmap means fully loaded.
class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  /// Creates a fixed-width column with `length` zero-initialized slots.
  static Column Zeroed(DataType type, int64_t length);

  DataType type() const { return type_; }
  int64_t length() const { return length_; }

  /// Typed access to the packed buffer. T must match type().
  template <typename T>
  const T* Data() const {
    assert(TypeTag<T>::value == type_);
    return reinterpret_cast<const T*>(data_.data());
  }
  template <typename T>
  T* MutableData() {
    assert(TypeTag<T>::value == type_);
    return reinterpret_cast<T*>(data_.data());
  }

  template <typename T>
  T Value(int64_t i) const {
    return Data<T>()[i];
  }

  /// Untyped access to the fixed-width payload (JIT kernels write through
  /// this; callers guarantee the byte layout matches type()).
  uint8_t* raw_data() { return data_.data(); }
  const uint8_t* raw_data() const { return data_.data(); }

  const std::string& StringValue(int64_t i) const {
    return strings_[static_cast<size_t>(i)];
  }

  /// Appends one typed value (fixed-width types).
  template <typename T>
  void Append(T v) {
    assert(TypeTag<T>::value == type_);
    size_t old = data_.size();
    data_.resize(old + sizeof(T));
    std::memcpy(data_.data() + old, &v, sizeof(T));
    ++length_;
  }

  void AppendString(std::string v) {
    assert(type_ == DataType::kString);
    strings_.push_back(std::move(v));
    ++length_;
  }

  void AppendDatum(const Datum& d);

  /// Resizes to `length` slots (fixed-width: zero-fills growth).
  void Resize(int64_t length);

  void Reserve(int64_t capacity);

  /// Returns element `i` boxed as a Datum.
  Datum GetDatum(int64_t i) const;

  /// Returns a new column with rows at `indices` (gather).
  Column Gather(const int32_t* indices, int64_t count) const;
  Column Gather(const int64_t* indices, int64_t count) const;

  /// Appends all rows of `other` (same type) to this column.
  Status AppendColumn(const Column& other);

  // --- loaded-bitmap (shred) support ---------------------------------------

  /// True when every slot holds a loaded value.
  bool fully_loaded() const { return loaded_.empty(); }

  /// Marks all current slots as not-loaded; subsequent SetLoaded() calls
  /// flip individual rows. Allocates the bitmap.
  void MarkAllMissing();

  void SetLoaded(int64_t i) {
    if (!loaded_.empty()) {
      loaded_[static_cast<size_t>(i >> 3)] |=
          static_cast<uint8_t>(1u << (i & 7));
    }
  }

  bool IsLoaded(int64_t i) const {
    if (loaded_.empty()) return true;
    return (loaded_[static_cast<size_t>(i >> 3)] >> (i & 7)) & 1;
  }

  /// Number of loaded rows.
  int64_t CountLoaded() const;

  /// Byte footprint of the value buffer (strings: sum of sizes).
  int64_t MemoryBytes() const;

  /// Deep equality on loaded values (tests).
  bool Equals(const Column& other) const;

 private:
  DataType type_;
  int64_t length_ = 0;
  std::vector<uint8_t> data_;          // fixed-width payload
  std::vector<std::string> strings_;   // kString payload
  std::vector<uint8_t> loaded_;        // bitmap; empty == all loaded
};

using ColumnPtr = std::shared_ptr<Column>;

}  // namespace raw

#endif  // RAW_COLUMNAR_COLUMN_H_
