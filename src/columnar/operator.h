#ifndef RAW_COLUMNAR_OPERATOR_H_
#define RAW_COLUMNAR_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "columnar/batch.h"
#include "common/macros.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/statusor.h"

namespace raw {

/// Volcano-style vector-at-a-time operator (§2.1, §3): every Next() call
/// returns a batch of rows rather than a single tuple.
///
/// Contract: Open() before the first Next(); Next() returns data batches
/// until the stream is exhausted, then a ColumnBatch::EndOfStream() sentinel
/// (and keeps returning the sentinel if pulled again); Close() releases
/// resources and may be called once. A data batch may legitimately carry
/// zero rows (a fully filtered morsel, say) — consumers must detect EOF via
/// ColumnBatch::end_of_stream(), never via empty(), or a zero-row interior
/// batch silently truncates the stream.
/// Open() must be idempotent *before* the first Next() — the planner opens
/// subtrees while building plans (to materialize output schemas for
/// expression binding) and the executor opens the root again.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Schema of the batches this operator produces.
  virtual const Schema& output_schema() const = 0;

  virtual Status Open() { return Status::OK(); }
  virtual StatusOr<ColumnBatch> Next() = 0;
  virtual Status Close() { return Status::OK(); }

  /// Operator name for EXPLAIN-style output.
  virtual std::string name() const = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Drains `op` (Open/Next*/Close) and concatenates all batches into one.
StatusOr<ColumnBatch> CollectAll(Operator* op);

/// Concatenates `batches` (same schema) into a single batch.
StatusOr<ColumnBatch> ConcatBatches(const Schema& schema,
                                    const std::vector<ColumnBatch>& batches);

}  // namespace raw

#endif  // RAW_COLUMNAR_OPERATOR_H_
