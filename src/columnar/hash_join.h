#ifndef RAW_COLUMNAR_HASH_JOIN_H_
#define RAW_COLUMNAR_HASH_JOIN_H_

#include <unordered_map>
#include <vector>

#include "columnar/operator.h"

namespace raw {

/// Inner hash equi-join. The *right* child is the build side (hash table) and
/// the *left* child probes it in a pipelined fashion, preserving probe-side
/// order — exactly the structure §5.3.2 of the paper analyses.
///
/// Output schema: probe fields then build fields (duplicate names get an
/// "_r" suffix). Batch row ids carry *probe-side* provenance, so a late scan
/// above the join reads the pipelined file in near-sequential order. When
/// `emit_build_row_ids` is set, an extra trailing int64 column named
/// `kBuildRowIdColumn` carries build-side row ids — the hook for
/// pipeline-breaking late materialization (§5.3.2 "Late"/"Intermediate").
class HashJoinOperator : public Operator {
 public:
  static constexpr const char* kBuildRowIdColumn = "__build_row_id";

  HashJoinOperator(OperatorPtr probe, OperatorPtr build, int probe_key,
                   int build_key, bool emit_build_row_ids = false);

  const Schema& output_schema() const override { return output_schema_; }
  Status Open() override;
  StatusOr<ColumnBatch> Next() override;
  Status Close() override;
  std::string name() const override { return "HashJoin"; }

  /// Rows in the build hash table (after build-side drain).
  int64_t build_rows() const { return build_table_.num_rows(); }

 private:
  Status BuildHashTable();
  StatusOr<int64_t> KeyAt(const Column& col, int64_t i) const;

  OperatorPtr probe_;
  OperatorPtr build_;
  int probe_key_;
  int build_key_;
  bool emit_build_row_ids_;
  Schema output_schema_;
  bool built_ = false;

  ColumnBatch build_table_;                 // fully materialized build side
  std::vector<int64_t> build_row_ids_;      // original row ids of build rows
  std::unordered_multimap<int64_t, int64_t> table_;  // key -> build row index
};

}  // namespace raw

#endif  // RAW_COLUMNAR_HASH_JOIN_H_
