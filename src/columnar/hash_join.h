#ifndef RAW_COLUMNAR_HASH_JOIN_H_
#define RAW_COLUMNAR_HASH_JOIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/operator.h"
#include "common/thread_pool.h"

namespace raw {

/// Contiguous bucket+chain hash table over an int64 key column — the probe
/// structure of HashJoinOperator (replacing std::unordered_multimap in the
/// serial path too: one flat allocation for the chains, one for the heads,
/// keys re-read from a packed array during probe).
///
/// The build runs as per-morsel partials (the join-side analogue of
/// GroupByPartial): disjoint row ranges extract keys and bucket indices
/// straight into the packed arrays — a positional merge with one writer per
/// slot — and the final chain linking partitions *buckets by key hash*
/// across workers, so the finished layout is byte-identical for any thread
/// count.
///
/// Layout: `heads_[b]` is the first build row of bucket b (-1 = empty);
/// `next_[i]` chains to the next row of row i's bucket. Rows are linked in
/// descending order so traversal yields *ascending* build-row order —
/// deterministic probe output independent of build thread count.
class JoinHashTable {
 public:
  /// Builds from `keys` (int32/int64/bool column). With `num_threads` > 1,
  /// key conversion + hashing fan out over row-range morsels and bucket
  /// linking fans out over bucket partitions on `pool`; the resulting
  /// structure is identical to the serial build.
  Status Build(const Column& keys, ThreadPool* pool, int num_threads);

  /// Calls fn(build_row) for every row whose key equals `key`, ascending.
  template <typename Fn>
  void ForEachMatch(int64_t key, Fn&& fn) const {
    if (num_buckets_ == 0) return;
    const uint64_t b = BucketFor(key);
    for (int64_t i = heads_[b]; i >= 0; i = next_[static_cast<size_t>(i)]) {
      if (keys_[static_cast<size_t>(i)] == key) fn(i);
    }
  }

  int64_t num_rows() const { return static_cast<int64_t>(keys_.size()); }
  int64_t num_buckets() const { return static_cast<int64_t>(num_buckets_); }

  /// Longest collision chain (an O(buckets + rows) walk; used for the
  /// post-execution plan description, not the hot path).
  int64_t MaxChain() const;

  /// "rows=N buckets=B max-chain=K" — the structure proof benches look for.
  std::string DescribeStats() const;

 private:
  uint64_t BucketFor(int64_t key) const;

  std::vector<int64_t> keys_;
  std::vector<int64_t> heads_;
  std::vector<int64_t> next_;
  uint64_t num_buckets_ = 0;  // power of two; 0 until built
};

/// Inner hash equi-join. The *right* child is the build side (hash table) and
/// the *left* child probes it in a pipelined fashion, preserving probe-side
/// order — exactly the structure §5.3.2 of the paper analyses.
///
/// Output schema: probe fields then build fields (duplicate names get an
/// "_r" suffix). Batch row ids carry *probe-side* provenance, so a late scan
/// above the join reads the pipelined file in near-sequential order. When
/// `emit_build_row_ids` is set, an extra trailing int64 column named
/// `kBuildRowIdColumn` carries build-side row ids — the hook for
/// pipeline-breaking late materialization (§5.3.2 "Late"/"Intermediate").
///
/// The build phase drains the build child, then constructs a JoinHashTable;
/// SetParallel fans the construction out over the thread pool with results
/// bit-for-bit identical to the serial build (matches emit in ascending
/// build-row order either way).
class HashJoinOperator : public Operator {
 public:
  static constexpr const char* kBuildRowIdColumn = "__build_row_id";

  HashJoinOperator(OperatorPtr probe, OperatorPtr build, int probe_key,
                   int build_key, bool emit_build_row_ids = false);

  /// Enables parallel hash-table construction (num_threads <= 1 stays
  /// serial; the probe structure is identical either way).
  void SetParallel(ThreadPool* pool, int num_threads);

  const Schema& output_schema() const override { return output_schema_; }
  Status Open() override;
  StatusOr<ColumnBatch> Next() override;
  Status Close() override;
  std::string name() const override { return "HashJoin"; }

  /// Rows in the build hash table (after build-side drain).
  int64_t build_rows() const { return build_table_.num_rows(); }

  /// Build-structure stats for the plan description ("join-build rows=...
  /// buckets=... max-chain=..."); empty before the build ran.
  std::string build_stats() const;

 private:
  Status BuildHashTable();

  OperatorPtr probe_;
  OperatorPtr build_;
  int probe_key_;
  int build_key_;
  bool emit_build_row_ids_;
  Schema output_schema_;
  bool built_ = false;
  ThreadPool* pool_ = nullptr;
  int num_threads_ = 1;

  ColumnBatch build_table_;             // fully materialized build side
  std::vector<int64_t> build_row_ids_;  // original row ids of build rows
  JoinHashTable table_;                 // key -> build row chains
};

}  // namespace raw

#endif  // RAW_COLUMNAR_HASH_JOIN_H_
