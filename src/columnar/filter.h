#ifndef RAW_COLUMNAR_FILTER_H_
#define RAW_COLUMNAR_FILTER_H_

#include <memory>

#include "columnar/expression.h"
#include "columnar/operator.h"

namespace raw {

/// Filters child batches by a boolean predicate, producing compacted batches
/// (row ids compacted alongside, so late scans above see only survivors).
class FilterOperator : public Operator {
 public:
  FilterOperator(OperatorPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  Status Open() override { return child_->Open(); }
  StatusOr<ColumnBatch> Next() override;
  Status Close() override { return child_->Close(); }
  std::string name() const override { return "Filter"; }

  /// Rows examined / passed so far (selectivity accounting in benches).
  int64_t rows_in() const { return rows_in_; }
  int64_t rows_out() const { return rows_out_; }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
  SelectionVector selection_;  // reusable per-batch buffer
  int64_t rows_in_ = 0;
  int64_t rows_out_ = 0;
};

}  // namespace raw

#endif  // RAW_COLUMNAR_FILTER_H_
