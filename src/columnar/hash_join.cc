#include "columnar/hash_join.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/hash.h"

namespace raw {

namespace {

/// Join keys are widened to int64 once at build/probe time.
StatusOr<int64_t> JoinKeyAt(const Column& col, int64_t i) {
  switch (col.type()) {
    case DataType::kInt32:
      return static_cast<int64_t>(col.Value<int32_t>(i));
    case DataType::kInt64:
      return col.Value<int64_t>(i);
    case DataType::kBool:
      return col.Value<bool>(i) ? 1 : 0;
    default:
      return Status::InvalidArgument("unsupported join key type");
  }
}

uint64_t NextPowerOfTwo(uint64_t x) {
  uint64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

// =============================================================================
// JoinHashTable
// =============================================================================

uint64_t JoinHashTable::BucketFor(int64_t key) const {
  return MixHash64(static_cast<uint64_t>(key)) & (num_buckets_ - 1);
}

Status JoinHashTable::Build(const Column& keys, ThreadPool* pool,
                            int num_threads) {
  const int64_t n = keys.length();
  keys_.assign(static_cast<size_t>(n), 0);
  next_.assign(static_cast<size_t>(n), -1);
  // ~0.5 load factor keeps chains short without blowing up memory; the
  // bucket count is a pure function of n, so serial and parallel builds
  // produce the same layout.
  num_buckets_ = n > 0 ? NextPowerOfTwo(static_cast<uint64_t>(2 * n)) : 0;
  heads_.assign(static_cast<size_t>(num_buckets_), -1);
  if (n == 0) return Status::OK();

  // Phase 1 — per-morsel build partials: convert keys and compute bucket
  // indices for disjoint row ranges. Pure per-row work, so thread count
  // cannot affect the values, and each partial's slice of the shared arrays
  // has exactly one writer — the "merge" is positional, like stitching
  // GroupByPartial outputs.
  const int64_t kMinRowsPerPartial = 1024;
  const int64_t target = num_threads > 1 ? num_threads * 4 : 1;
  const int64_t chunk = std::max(kMinRowsPerPartial, (n + target - 1) / target);
  const int64_t num_partials = (n + chunk - 1) / chunk;
  std::vector<uint64_t> buckets(static_cast<size_t>(n));
  auto build_partial = [&](int64_t p) -> Status {
    const int64_t first = p * chunk;
    const int64_t count = std::min(chunk, n - first);
    for (int64_t i = first; i < first + count; ++i) {
      RAW_ASSIGN_OR_RETURN(int64_t key, JoinKeyAt(keys, i));
      keys_[static_cast<size_t>(i)] = key;
      buckets[static_cast<size_t>(i)] = BucketFor(key);
    }
    return Status::OK();
  };
  if (pool != nullptr && num_threads > 1 && num_partials > 1) {
    RAW_RETURN_NOT_OK(pool->ParallelFor(num_partials, num_threads,
                                        build_partial));
  } else {
    for (int64_t p = 0; p < num_partials; ++p) {
      RAW_RETURN_NOT_OK(build_partial(p));
    }
  }

  // Phase 2 — link the chains, partitioned by bucket range: each worker owns
  // a contiguous slice of buckets and scans every row, linking only rows
  // whose bucket falls in its slice. Every head/next slot has exactly one
  // writer, and descending insertion makes traversal ascend in build-row
  // order — so the layout is deterministic for any worker count. Workers
  // re-scan the (sequential, prefetch-friendly) buckets array W times in
  // exchange for slice-local head writes; that trade only pays off once the
  // serial link's scattered stores dominate, so small builds stay serial.
  const int64_t kMinRowsForParallelLink = 1 << 16;
  auto link_partition = [&](uint64_t bucket_begin,
                            uint64_t bucket_end) -> Status {
    for (int64_t i = n - 1; i >= 0; --i) {
      const uint64_t b = buckets[static_cast<size_t>(i)];
      if (b < bucket_begin || b >= bucket_end) continue;
      next_[static_cast<size_t>(i)] = heads_[b];
      heads_[b] = i;
    }
    return Status::OK();
  };
  if (pool != nullptr && num_threads > 1 && n >= kMinRowsForParallelLink &&
      num_buckets_ >= static_cast<uint64_t>(2 * num_threads)) {
    const uint64_t W = static_cast<uint64_t>(num_threads);
    const uint64_t per = num_buckets_ / W;
    RAW_RETURN_NOT_OK(pool->ParallelFor(
        static_cast<int64_t>(W), num_threads, [&](int64_t w) {
          const uint64_t begin = static_cast<uint64_t>(w) * per;
          const uint64_t end =
              w + 1 == static_cast<int64_t>(W) ? num_buckets_ : begin + per;
          return link_partition(begin, end);
        }));
  } else {
    RAW_RETURN_NOT_OK(link_partition(0, num_buckets_));
  }
  return Status::OK();
}

int64_t JoinHashTable::MaxChain() const {
  int64_t max_chain = 0;
  for (int64_t head : heads_) {
    int64_t len = 0;
    for (int64_t i = head; i >= 0; i = next_[static_cast<size_t>(i)]) ++len;
    max_chain = std::max(max_chain, len);
  }
  return max_chain;
}

std::string JoinHashTable::DescribeStats() const {
  std::ostringstream out;
  out << "rows=" << num_rows() << " buckets=" << num_buckets()
      << " max-chain=" << MaxChain();
  return out.str();
}

// =============================================================================
// HashJoinOperator
// =============================================================================

HashJoinOperator::HashJoinOperator(OperatorPtr probe, OperatorPtr build,
                                   int probe_key, int build_key,
                                   bool emit_build_row_ids)
    : probe_(std::move(probe)),
      build_(std::move(build)),
      probe_key_(probe_key),
      build_key_(build_key),
      emit_build_row_ids_(emit_build_row_ids) {}

void HashJoinOperator::SetParallel(ThreadPool* pool, int num_threads) {
  pool_ = pool;
  num_threads_ = num_threads;
}

Status HashJoinOperator::Open() {
  RAW_RETURN_NOT_OK(probe_->Open());
  RAW_RETURN_NOT_OK(build_->Open());
  const Schema& lhs = probe_->output_schema();
  const Schema& rhs = build_->output_schema();
  if (probe_key_ < 0 || probe_key_ >= lhs.num_fields() || build_key_ < 0 ||
      build_key_ >= rhs.num_fields()) {
    return Status::InvalidArgument("join key column out of range");
  }
  DataType lt = lhs.field(probe_key_).type;
  DataType rt = rhs.field(build_key_).type;
  if (!IsNumeric(lt) || !IsNumeric(rt) ||
      lt == DataType::kFloat32 || lt == DataType::kFloat64 ||
      rt == DataType::kFloat32 || rt == DataType::kFloat64) {
    return Status::InvalidArgument("hash join requires integer key columns");
  }
  Schema schema;
  std::unordered_set<std::string> names;
  for (const Field& f : lhs.fields()) {
    schema.AddField(f.name, f.type);
    names.insert(f.name);
  }
  for (const Field& f : rhs.fields()) {
    std::string name = f.name;
    while (names.count(name) > 0) name += "_r";
    schema.AddField(name, f.type);
    names.insert(name);
  }
  if (emit_build_row_ids_) {
    schema.AddField(kBuildRowIdColumn, DataType::kInt64);
  }
  RAW_RETURN_NOT_OK(schema.Validate());
  output_schema_ = std::move(schema);
  return Status::OK();
}

Status HashJoinOperator::BuildHashTable() {
  RAW_ASSIGN_OR_RETURN(ColumnBatch all, CollectAll(build_.get()));
  build_table_ = std::move(all);
  if (build_table_.has_row_ids()) {
    build_row_ids_ = build_table_.row_ids();
  } else {
    build_row_ids_.resize(static_cast<size_t>(build_table_.num_rows()));
    for (int64_t i = 0; i < build_table_.num_rows(); ++i) {
      build_row_ids_[static_cast<size_t>(i)] = i;
    }
  }
  if (build_table_.num_rows() == 0) return Status::OK();
  return table_.Build(*build_table_.column(build_key_), pool_, num_threads_);
}

std::string HashJoinOperator::build_stats() const {
  if (!built_) return "";
  std::ostringstream out;
  out << "[join-build " << table_.DescribeStats();
  if (pool_ != nullptr && num_threads_ > 1) out << " parallel x" << num_threads_;
  out << "] ";
  return out.str();
}

StatusOr<ColumnBatch> HashJoinOperator::Next() {
  if (!built_) {
    built_ = true;
    RAW_RETURN_NOT_OK(BuildHashTable());
  }
  const int num_probe_cols = probe_->output_schema().num_fields();
  const int num_build_cols = build_->output_schema().num_fields();

  while (true) {
    RAW_ASSIGN_OR_RETURN(ColumnBatch batch, probe_->Next());
    if (batch.end_of_stream()) return ColumnBatch::EndOfStream(output_schema_);
    if (batch.empty()) continue;

    // Gather matching (probe_row, build_row) pairs: probe order outermost,
    // build rows ascending within a probe row (the chain traversal order).
    std::vector<int32_t> probe_rows;
    std::vector<int64_t> build_rows;
    const Column& keys = *batch.column(probe_key_);
    for (int64_t i = 0; i < batch.num_rows(); ++i) {
      RAW_ASSIGN_OR_RETURN(int64_t key, JoinKeyAt(keys, i));
      table_.ForEachMatch(key, [&](int64_t build_row) {
        probe_rows.push_back(static_cast<int32_t>(i));
        build_rows.push_back(build_row);
      });
    }
    if (probe_rows.empty()) continue;

    const int64_t n = static_cast<int64_t>(probe_rows.size());
    ColumnBatch out(output_schema_);
    for (int c = 0; c < num_probe_cols; ++c) {
      out.AddColumn(std::make_shared<Column>(
          batch.column(c)->Gather(probe_rows.data(), n)));
    }
    for (int c = 0; c < num_build_cols; ++c) {
      out.AddColumn(std::make_shared<Column>(
          build_table_.column(c)->Gather(build_rows.data(), n)));
    }
    if (emit_build_row_ids_) {
      auto ids = std::make_shared<Column>(DataType::kInt64);
      ids->Reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        ids->Append<int64_t>(
            build_row_ids_[static_cast<size_t>(build_rows[static_cast<size_t>(i)])]);
      }
      out.AddColumn(std::move(ids));
    }
    out.SetNumRows(n);
    // Probe-side provenance flows through as the batch's row ids.
    if (batch.has_row_ids()) {
      std::vector<int64_t> ids;
      ids.reserve(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        ids.push_back(batch.row_ids()[static_cast<size_t>(
            probe_rows[static_cast<size_t>(i)])]);
      }
      out.SetRowIds(std::move(ids));
    }
    return out;
  }
}

Status HashJoinOperator::Close() {
  RAW_RETURN_NOT_OK(probe_->Close());
  return build_->Close();
}

}  // namespace raw
