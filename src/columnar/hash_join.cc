#include "columnar/hash_join.h"

#include <unordered_set>

namespace raw {

HashJoinOperator::HashJoinOperator(OperatorPtr probe, OperatorPtr build,
                                   int probe_key, int build_key,
                                   bool emit_build_row_ids)
    : probe_(std::move(probe)),
      build_(std::move(build)),
      probe_key_(probe_key),
      build_key_(build_key),
      emit_build_row_ids_(emit_build_row_ids) {}

Status HashJoinOperator::Open() {
  RAW_RETURN_NOT_OK(probe_->Open());
  RAW_RETURN_NOT_OK(build_->Open());
  const Schema& lhs = probe_->output_schema();
  const Schema& rhs = build_->output_schema();
  if (probe_key_ < 0 || probe_key_ >= lhs.num_fields() || build_key_ < 0 ||
      build_key_ >= rhs.num_fields()) {
    return Status::InvalidArgument("join key column out of range");
  }
  DataType lt = lhs.field(probe_key_).type;
  DataType rt = rhs.field(build_key_).type;
  if (!IsNumeric(lt) || !IsNumeric(rt) ||
      lt == DataType::kFloat32 || lt == DataType::kFloat64 ||
      rt == DataType::kFloat32 || rt == DataType::kFloat64) {
    return Status::InvalidArgument("hash join requires integer key columns");
  }
  Schema schema;
  std::unordered_set<std::string> names;
  for (const Field& f : lhs.fields()) {
    schema.AddField(f.name, f.type);
    names.insert(f.name);
  }
  for (const Field& f : rhs.fields()) {
    std::string name = f.name;
    while (names.count(name) > 0) name += "_r";
    schema.AddField(name, f.type);
    names.insert(name);
  }
  if (emit_build_row_ids_) {
    schema.AddField(kBuildRowIdColumn, DataType::kInt64);
  }
  RAW_RETURN_NOT_OK(schema.Validate());
  output_schema_ = std::move(schema);
  return Status::OK();
}

StatusOr<int64_t> HashJoinOperator::KeyAt(const Column& col,
                                          int64_t i) const {
  switch (col.type()) {
    case DataType::kInt32:
      return static_cast<int64_t>(col.Value<int32_t>(i));
    case DataType::kInt64:
      return col.Value<int64_t>(i);
    case DataType::kBool:
      return col.Value<bool>(i) ? 1 : 0;
    default:
      return Status::InvalidArgument("unsupported join key type");
  }
}

Status HashJoinOperator::BuildHashTable() {
  RAW_ASSIGN_OR_RETURN(ColumnBatch all, CollectAll(build_.get()));
  build_table_ = std::move(all);
  if (build_table_.has_row_ids()) {
    build_row_ids_ = build_table_.row_ids();
  } else {
    build_row_ids_.resize(static_cast<size_t>(build_table_.num_rows()));
    for (int64_t i = 0; i < build_table_.num_rows(); ++i) {
      build_row_ids_[static_cast<size_t>(i)] = i;
    }
  }
  table_.reserve(static_cast<size_t>(build_table_.num_rows()));
  if (build_table_.num_rows() == 0) return Status::OK();
  const Column& keys = *build_table_.column(build_key_);
  for (int64_t i = 0; i < build_table_.num_rows(); ++i) {
    RAW_ASSIGN_OR_RETURN(int64_t key, KeyAt(keys, i));
    table_.emplace(key, i);
  }
  return Status::OK();
}

StatusOr<ColumnBatch> HashJoinOperator::Next() {
  if (!built_) {
    built_ = true;
    RAW_RETURN_NOT_OK(BuildHashTable());
  }
  const int num_probe_cols = probe_->output_schema().num_fields();
  const int num_build_cols = build_->output_schema().num_fields();

  while (true) {
    RAW_ASSIGN_OR_RETURN(ColumnBatch batch, probe_->Next());
    if (batch.empty()) return ColumnBatch(output_schema_);

    // Gather matching (probe_row, build_row) pairs, probe order preserved.
    std::vector<int32_t> probe_rows;
    std::vector<int64_t> build_rows;
    const Column& keys = *batch.column(probe_key_);
    for (int64_t i = 0; i < batch.num_rows(); ++i) {
      RAW_ASSIGN_OR_RETURN(int64_t key, KeyAt(keys, i));
      auto [lo, hi] = table_.equal_range(key);
      for (auto it = lo; it != hi; ++it) {
        probe_rows.push_back(static_cast<int32_t>(i));
        build_rows.push_back(it->second);
      }
    }
    if (probe_rows.empty()) continue;

    const int64_t n = static_cast<int64_t>(probe_rows.size());
    ColumnBatch out(output_schema_);
    for (int c = 0; c < num_probe_cols; ++c) {
      out.AddColumn(std::make_shared<Column>(
          batch.column(c)->Gather(probe_rows.data(), n)));
    }
    for (int c = 0; c < num_build_cols; ++c) {
      out.AddColumn(std::make_shared<Column>(
          build_table_.column(c)->Gather(build_rows.data(), n)));
    }
    if (emit_build_row_ids_) {
      auto ids = std::make_shared<Column>(DataType::kInt64);
      ids->Reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        ids->Append<int64_t>(
            build_row_ids_[static_cast<size_t>(build_rows[static_cast<size_t>(i)])]);
      }
      out.AddColumn(std::move(ids));
    }
    out.SetNumRows(n);
    // Probe-side provenance flows through as the batch's row ids.
    if (batch.has_row_ids()) {
      std::vector<int64_t> ids;
      ids.reserve(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        ids.push_back(batch.row_ids()[static_cast<size_t>(
            probe_rows[static_cast<size_t>(i)])]);
      }
      out.SetRowIds(std::move(ids));
    }
    return out;
  }
}

Status HashJoinOperator::Close() {
  RAW_RETURN_NOT_OK(probe_->Close());
  return build_->Close();
}

}  // namespace raw
