#include "columnar/column.h"

namespace raw {

Column Column::Zeroed(DataType type, int64_t length) {
  Column col(type);
  col.Resize(length);
  return col;
}

void Column::AppendDatum(const Datum& d) {
  assert(d.type() == type_);
  switch (type_) {
    case DataType::kBool:
      Append<bool>(d.bool_value());
      break;
    case DataType::kInt32:
      Append<int32_t>(d.int32_value());
      break;
    case DataType::kInt64:
      Append<int64_t>(d.int64_value());
      break;
    case DataType::kFloat32:
      Append<float>(d.float32_value());
      break;
    case DataType::kFloat64:
      Append<double>(d.float64_value());
      break;
    case DataType::kString:
      AppendString(d.string_value());
      break;
  }
}

void Column::Resize(int64_t length) {
  if (type_ == DataType::kString) {
    strings_.resize(static_cast<size_t>(length));
  } else {
    data_.resize(static_cast<size_t>(length) *
                 static_cast<size_t>(FixedWidth(type_)));
  }
  if (!loaded_.empty()) {
    loaded_.resize(static_cast<size_t>((length + 7) / 8), 0);
  }
  length_ = length;
}

void Column::Reserve(int64_t capacity) {
  if (type_ == DataType::kString) {
    strings_.reserve(static_cast<size_t>(capacity));
  } else {
    data_.reserve(static_cast<size_t>(capacity) *
                  static_cast<size_t>(FixedWidth(type_)));
  }
}

Datum Column::GetDatum(int64_t i) const {
  switch (type_) {
    case DataType::kBool:
      return Datum::Bool(Value<bool>(i));
    case DataType::kInt32:
      return Datum::Int32(Value<int32_t>(i));
    case DataType::kInt64:
      return Datum::Int64(Value<int64_t>(i));
    case DataType::kFloat32:
      return Datum::Float32(Value<float>(i));
    case DataType::kFloat64:
      return Datum::Float64(Value<double>(i));
    case DataType::kString:
      return Datum::String(StringValue(i));
  }
  return Datum();
}

namespace {
template <typename IndexT>
Column GatherImpl(const Column& src, DataType type, const IndexT* indices,
                  int64_t count) {
  Column out(type);
  out.Reserve(count);
  if (type == DataType::kString) {
    for (int64_t i = 0; i < count; ++i) {
      out.AppendString(src.StringValue(indices[i]));
    }
    return out;
  }
  switch (type) {
    case DataType::kBool: {
      const bool* in = src.Data<bool>();
      for (int64_t i = 0; i < count; ++i) out.Append<bool>(in[indices[i]]);
      break;
    }
    case DataType::kInt32: {
      const int32_t* in = src.Data<int32_t>();
      for (int64_t i = 0; i < count; ++i) out.Append<int32_t>(in[indices[i]]);
      break;
    }
    case DataType::kInt64: {
      const int64_t* in = src.Data<int64_t>();
      for (int64_t i = 0; i < count; ++i) out.Append<int64_t>(in[indices[i]]);
      break;
    }
    case DataType::kFloat32: {
      const float* in = src.Data<float>();
      for (int64_t i = 0; i < count; ++i) out.Append<float>(in[indices[i]]);
      break;
    }
    case DataType::kFloat64: {
      const double* in = src.Data<double>();
      for (int64_t i = 0; i < count; ++i) out.Append<double>(in[indices[i]]);
      break;
    }
    default:
      break;
  }
  return out;
}
}  // namespace

Column Column::Gather(const int32_t* indices, int64_t count) const {
  return GatherImpl(*this, type_, indices, count);
}

Column Column::Gather(const int64_t* indices, int64_t count) const {
  return GatherImpl(*this, type_, indices, count);
}

Status Column::AppendColumn(const Column& other) {
  if (other.type_ != type_) {
    return Status::InvalidArgument("AppendColumn: type mismatch");
  }
  if (type_ == DataType::kString) {
    strings_.insert(strings_.end(), other.strings_.begin(),
                    other.strings_.end());
  } else {
    data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  }
  length_ += other.length_;
  return Status::OK();
}

void Column::MarkAllMissing() {
  loaded_.assign(static_cast<size_t>((length_ + 7) / 8), 0);
  if (loaded_.empty()) loaded_.push_back(0);  // length 0: keep bitmap mode
}

int64_t Column::CountLoaded() const {
  if (loaded_.empty()) return length_;
  int64_t count = 0;
  for (int64_t i = 0; i < length_; ++i) count += IsLoaded(i) ? 1 : 0;
  return count;
}

int64_t Column::MemoryBytes() const {
  if (type_ == DataType::kString) {
    int64_t total = 0;
    for (const auto& s : strings_) {
      total += static_cast<int64_t>(s.size() + sizeof(std::string));
    }
    return total;
  }
  return static_cast<int64_t>(data_.size());
}

bool Column::Equals(const Column& other) const {
  if (type_ != other.type_ || length_ != other.length_) return false;
  for (int64_t i = 0; i < length_; ++i) {
    bool a = IsLoaded(i), b = other.IsLoaded(i);
    if (a != b) return false;
    if (!a) continue;
    if (!(GetDatum(i) == other.GetDatum(i))) return false;
  }
  return true;
}

}  // namespace raw
