#ifndef RAW_COLUMNAR_BATCH_H_
#define RAW_COLUMNAR_BATCH_H_

#include <memory>
#include <string>
#include <vector>

#include "columnar/column.h"
#include "columnar/selection_vector.h"
#include "common/schema.h"

namespace raw {

/// Default number of rows per vectorized batch (tunable; see
/// bench_ablation_vector_size).
inline constexpr int64_t kDefaultBatchRows = 4096;

/// A horizontal slice of a table: one Column per schema field plus an
/// optional vector of *original row ids*.
///
/// Row ids are the glue between the columnar plan and raw files: a filter
/// compacts them alongside the data, so a column-shred scan operator placed
/// above the filter knows which raw rows (positional-map entries, binary
/// offsets, event ids) to fetch.
class ColumnBatch {
 public:
  ColumnBatch() = default;
  explicit ColumnBatch(Schema schema) : schema_(std::move(schema)) {}

  /// The stream-terminating sentinel: a zero-row batch carrying an explicit
  /// end-of-stream mark. Operators return this (once) when exhausted, so a
  /// legitimate zero-row *data* batch mid-stream (a fully filtered morsel,
  /// an empty decompressed block) is distinguishable from EOF — consumers
  /// must test end_of_stream(), never empty().
  static ColumnBatch EndOfStream(Schema schema) {
    ColumnBatch batch(std::move(schema));
    batch.end_of_stream_ = true;
    return batch;
  }

  bool end_of_stream() const { return end_of_stream_; }

  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() { return &schema_; }

  int num_columns() const { return static_cast<int>(columns_.size()); }
  int64_t num_rows() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  const ColumnPtr& column(int i) const {
    return columns_[static_cast<size_t>(i)];
  }
  const std::vector<ColumnPtr>& columns() const { return columns_; }

  /// Adds a column; all columns must agree on length.
  void AddColumn(ColumnPtr column);

  /// Replaces column `i`.
  void SetColumn(int i, ColumnPtr column) {
    columns_[static_cast<size_t>(i)] = std::move(column);
  }

  void SetNumRows(int64_t n) { num_rows_ = n; }

  bool has_row_ids() const { return !row_ids_.empty(); }
  const std::vector<int64_t>& row_ids() const { return row_ids_; }
  std::vector<int64_t>* mutable_row_ids() { return &row_ids_; }
  void SetRowIds(std::vector<int64_t> ids) { row_ids_ = std::move(ids); }

  /// Returns a batch containing only the selected rows (columns gathered,
  /// row ids compacted).
  ColumnBatch Filter(const SelectionVector& selection) const;

  /// Returns a batch with the subset of columns at `indices` (projection);
  /// row ids are preserved.
  ColumnBatch SelectColumns(const std::vector<int>& indices) const;

  /// Debug string: schema + first rows.
  std::string ToString(int64_t max_rows = 10) const;

 private:
  Schema schema_;
  std::vector<ColumnPtr> columns_;
  std::vector<int64_t> row_ids_;
  int64_t num_rows_ = 0;
  bool end_of_stream_ = false;
};

}  // namespace raw

#endif  // RAW_COLUMNAR_BATCH_H_
