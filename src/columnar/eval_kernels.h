#ifndef RAW_COLUMNAR_EVAL_KERNELS_H_
#define RAW_COLUMNAR_EVAL_KERNELS_H_

#include <cstdint>

#include "columnar/column.h"
#include "columnar/selection_vector.h"
#include "common/kernels.h"

namespace raw {

enum class CompareOp;  // expression.h
enum class ArithOp;    // expression.h

/// The branchless columnar kernel core under predicate and projection
/// evaluation (§4.1's unrolled flavour, applied to the interpreted engine).
/// Every kernel is selection-aware: pass `sel == nullptr` to run over the
/// dense row range [0, n), or a selection vector to evaluate only surviving
/// rows (conjunctions chain these instead of materializing bool columns).
/// The scalar dispatch tier (see common/kernels.h) routes to the per-row
/// reference implementations; results are bit-for-bit identical on every
/// tier.

/// Appends the indices of rows where `values[i] <op> constant` holds to
/// `out`. With `sel`, examines rows sel[0..n) and appends their original
/// indices. Non-scalar tiers run a predicated write loop
/// (`dst[k] = i; k += matches`) with the op lifted out of the loop.
template <typename T>
void SelectCompareConst(CompareOp op, const T* values, int64_t n, T constant,
                        const SelectionVector* sel, SelectionVector* out);

/// Per-row branchy reference implementation (scalar tier; also the ground
/// truth the kernel property suite compares every tier against).
template <typename T>
void SelectCompareConstScalar(CompareOp op, const T* values, int64_t n,
                              T constant, const SelectionVector* sel,
                              SelectionVector* out);

extern template void SelectCompareConst<int32_t>(CompareOp, const int32_t*,
                                                 int64_t, int32_t,
                                                 const SelectionVector*,
                                                 SelectionVector*);
extern template void SelectCompareConst<int64_t>(CompareOp, const int64_t*,
                                                 int64_t, int64_t,
                                                 const SelectionVector*,
                                                 SelectionVector*);
extern template void SelectCompareConst<float>(CompareOp, const float*, int64_t,
                                               float, const SelectionVector*,
                                               SelectionVector*);
extern template void SelectCompareConst<double>(CompareOp, const double*,
                                                int64_t, double,
                                                const SelectionVector*,
                                                SelectionVector*);
extern template void SelectCompareConstScalar<int32_t>(CompareOp,
                                                       const int32_t*, int64_t,
                                                       int32_t,
                                                       const SelectionVector*,
                                                       SelectionVector*);
extern template void SelectCompareConstScalar<int64_t>(CompareOp,
                                                       const int64_t*, int64_t,
                                                       int64_t,
                                                       const SelectionVector*,
                                                       SelectionVector*);
extern template void SelectCompareConstScalar<float>(CompareOp, const float*,
                                                     int64_t, float,
                                                     const SelectionVector*,
                                                     SelectionVector*);
extern template void SelectCompareConstScalar<double>(CompareOp, const double*,
                                                      int64_t, double,
                                                      const SelectionVector*,
                                                      SelectionVector*);

// --- arithmetic --------------------------------------------------------------

/// True for the types the widen/combine/narrow pipeline handles
/// (int32/int64/float32/float64).
bool CanWidenToDouble(DataType type);

/// Widens `col[0..n)` into `out` as doubles — exactly the per-row widening
/// the interpreted arithmetic loop performs, hoisted into one typed pass.
void WidenToDouble(const Column& col, int64_t n, double* out);

/// Appends narrow(a[i] <op> b[i]) for i in [0, n) to `out` (a kInt32/kInt64/
/// kFloat64 column): one fused pass computing in double and applying the same
/// narrowing cast the interpreted loop used per row, with the (op, out-type)
/// dispatch hoisted out of the loop.
void ArithCombineNarrow(ArithOp op, const double* a, const double* b,
                        int64_t n, Column* out);

}  // namespace raw

#endif  // RAW_COLUMNAR_EVAL_KERNELS_H_
