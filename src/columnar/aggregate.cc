#include "columnar/aggregate.h"

#include <algorithm>
#include <limits>

#include "common/kernels.h"

namespace raw {

std::string_view AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kMax:
      return "MAX";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kAvg:
      return "AVG";
  }
  return "?";
}

StatusOr<DataType> AggResultType(AggKind kind, DataType input_type) {
  switch (kind) {
    case AggKind::kCount:
      return DataType::kInt64;
    case AggKind::kAvg:
      if (!IsNumeric(input_type)) {
        return Status::InvalidArgument("AVG requires a numeric column");
      }
      return DataType::kFloat64;
    case AggKind::kSum:
      if (!IsNumeric(input_type)) {
        return Status::InvalidArgument("SUM requires a numeric column");
      }
      return (input_type == DataType::kInt32 || input_type == DataType::kInt64)
                 ? DataType::kInt64
                 : DataType::kFloat64;
    case AggKind::kMax:
    case AggKind::kMin:
      if (!IsNumeric(input_type)) {
        return Status::InvalidArgument("MIN/MAX requires a numeric column");
      }
      return input_type;
  }
  return Status::Internal("bad AggKind");
}

AggAccumulator::AggAccumulator(AggKind kind, DataType input_type)
    : kind_(kind), input_type_(input_type) {}

// The per-row entry points dispatch to the kind-hoisted templates, so one
// definition of the update rules exists (the "every tier bit-identical"
// invariant rests on it).
void AggAccumulator::UpdateNumeric(double value) {
  switch (kind_) {
    case AggKind::kCount:
      UpdateNumericT<AggKind::kCount>(value);
      break;
    case AggKind::kSum:
      UpdateNumericT<AggKind::kSum>(value);
      break;
    case AggKind::kAvg:
      UpdateNumericT<AggKind::kAvg>(value);
      break;
    case AggKind::kMax:
      UpdateNumericT<AggKind::kMax>(value);
      break;
    case AggKind::kMin:
      UpdateNumericT<AggKind::kMin>(value);
      break;
  }
}

void AggAccumulator::UpdateInt(int64_t value) {
  switch (kind_) {
    case AggKind::kCount:
      UpdateIntT<AggKind::kCount>(value);
      break;
    case AggKind::kSum:
      UpdateIntT<AggKind::kSum>(value);
      break;
    case AggKind::kAvg:
      UpdateIntT<AggKind::kAvg>(value);
      break;
    case AggKind::kMax:
      UpdateIntT<AggKind::kMax>(value);
      break;
    case AggKind::kMin:
      UpdateIntT<AggKind::kMin>(value);
      break;
  }
}

void AggAccumulator::Merge(const AggAccumulator& other) {
  count_ += other.count_;
  switch (kind_) {
    case AggKind::kCount:
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      dacc_ += other.dacc_;
      iacc_ += other.iacc_;
      break;
    case AggKind::kMax:
      if (other.initialized_) {
        if (!initialized_) {
          dacc_ = other.dacc_;
          iacc_ = other.iacc_;
        } else {
          dacc_ = std::max(dacc_, other.dacc_);
          iacc_ = std::max(iacc_, other.iacc_);
        }
        initialized_ = true;
      }
      break;
    case AggKind::kMin:
      if (other.initialized_) {
        if (!initialized_) {
          dacc_ = other.dacc_;
          iacc_ = other.iacc_;
        } else {
          dacc_ = std::min(dacc_, other.dacc_);
          iacc_ = std::min(iacc_, other.iacc_);
        }
        initialized_ = true;
      }
      break;
  }
}

namespace {

// One tight loop per (kind, type): the kind dispatch is hoisted into the
// template parameter, the type dispatch into the caller's switch.
template <AggKind K, typename T, bool kIntPath>
void AccumulateLoop(AggAccumulator* acc, const T* values, const int32_t* sel,
                    int64_t n) {
  if (sel == nullptr) {
    for (int64_t i = 0; i < n; ++i) {
      if constexpr (kIntPath) {
        acc->UpdateIntT<K>(values[i]);
      } else {
        acc->UpdateNumericT<K>(static_cast<double>(values[i]));
      }
    }
  } else {
    for (int64_t j = 0; j < n; ++j) {
      if constexpr (kIntPath) {
        acc->UpdateIntT<K>(values[sel[j]]);
      } else {
        acc->UpdateNumericT<K>(static_cast<double>(values[sel[j]]));
      }
    }
  }
}

template <AggKind K>
Status UpdateBatchForKind(AggAccumulator* acc, const Column& col,
                          const int32_t* sel, int64_t n) {
  switch (col.type()) {
    case DataType::kInt32:
      AccumulateLoop<K, int32_t, true>(acc, col.Data<int32_t>(), sel, n);
      return Status::OK();
    case DataType::kInt64:
      AccumulateLoop<K, int64_t, true>(acc, col.Data<int64_t>(), sel, n);
      return Status::OK();
    case DataType::kFloat32:
      AccumulateLoop<K, float, false>(acc, col.Data<float>(), sel, n);
      return Status::OK();
    case DataType::kFloat64:
      AccumulateLoop<K, double, false>(acc, col.Data<double>(), sel, n);
      return Status::OK();
    default:
      return Status::InvalidArgument("cannot aggregate non-numeric column");
  }
}

}  // namespace

Status AggAccumulator::UpdateBatch(const Column& col, const int32_t* sel,
                                   int64_t n) {
  // COUNT ignores the values entirely — short-circuit before the tier split
  // so every tier agrees (including on columns the typed loops would reject).
  if (kind_ == AggKind::kCount) {
    count_ += n;
    return Status::OK();
  }
  if (ActiveKernelTier() == KernelTier::kScalar) {
    // Reference path: per-row dispatch, exactly the pre-kernel loops.
    switch (col.type()) {
      case DataType::kInt32: {
        const int32_t* v = col.Data<int32_t>();
        for (int64_t i = 0; i < n; ++i) UpdateInt(v[sel ? sel[i] : i]);
        return Status::OK();
      }
      case DataType::kInt64: {
        const int64_t* v = col.Data<int64_t>();
        for (int64_t i = 0; i < n; ++i) UpdateInt(v[sel ? sel[i] : i]);
        return Status::OK();
      }
      case DataType::kFloat32: {
        const float* v = col.Data<float>();
        for (int64_t i = 0; i < n; ++i) {
          UpdateNumeric(static_cast<double>(v[sel ? sel[i] : i]));
        }
        return Status::OK();
      }
      case DataType::kFloat64: {
        const double* v = col.Data<double>();
        for (int64_t i = 0; i < n; ++i) UpdateNumeric(v[sel ? sel[i] : i]);
        return Status::OK();
      }
      default:
        return Status::InvalidArgument("cannot aggregate non-numeric column");
    }
  }
  switch (kind_) {
    case AggKind::kCount:
      return Status::OK();  // handled above
    case AggKind::kSum:
      return UpdateBatchForKind<AggKind::kSum>(this, col, sel, n);
    case AggKind::kAvg:
      return UpdateBatchForKind<AggKind::kAvg>(this, col, sel, n);
    case AggKind::kMax:
      return UpdateBatchForKind<AggKind::kMax>(this, col, sel, n);
    case AggKind::kMin:
      return UpdateBatchForKind<AggKind::kMin>(this, col, sel, n);
  }
  return Status::Internal("bad AggKind");
}

Datum AggAccumulator::Finalize() const {
  switch (kind_) {
    case AggKind::kCount:
      return Datum::Int64(count_);
    case AggKind::kAvg:
      return Datum::Float64(count_ == 0 ? 0.0
                                        : dacc_ / static_cast<double>(count_));
    case AggKind::kSum:
      if (input_type_ == DataType::kInt32 || input_type_ == DataType::kInt64) {
        return Datum::Int64(iacc_);
      }
      return Datum::Float64(dacc_);
    case AggKind::kMax:
    case AggKind::kMin: {
      switch (input_type_) {
        case DataType::kInt32:
          return Datum::Int32(static_cast<int32_t>(iacc_));
        case DataType::kInt64:
          return Datum::Int64(iacc_);
        case DataType::kFloat32:
          return Datum::Float32(static_cast<float>(dacc_));
        default:
          return Datum::Float64(dacc_);
      }
    }
  }
  return Datum();
}

AggregateOperator::AggregateOperator(OperatorPtr child,
                                     std::vector<AggSpec> specs)
    : child_(std::move(child)), specs_(std::move(specs)) {}

Status AggregateOperator::Open() {
  RAW_RETURN_NOT_OK(child_->Open());
  input_types_.clear();  // Open() may run more than once before Next()
  const Schema& in = child_->output_schema();
  Schema schema;
  for (const AggSpec& spec : specs_) {
    DataType input_type = DataType::kInt64;
    if (spec.kind != AggKind::kCount) {
      if (spec.input < 0 || spec.input >= in.num_fields()) {
        return Status::InvalidArgument("aggregate input column out of range");
      }
      input_type = in.field(spec.input).type;
    }
    input_types_.push_back(input_type);
    RAW_ASSIGN_OR_RETURN(DataType out_type,
                         AggResultType(spec.kind, input_type));
    schema.AddField(spec.output_name.empty()
                        ? std::string(AggKindToString(spec.kind))
                        : spec.output_name,
                    out_type);
  }
  output_schema_ = std::move(schema);
  return Status::OK();
}

StatusOr<ColumnBatch> AggregateOperator::Next() {
  if (done_) return ColumnBatch::EndOfStream(output_schema_);
  done_ = true;

  std::vector<AggAccumulator> accs;
  for (size_t i = 0; i < specs_.size(); ++i) {
    accs.emplace_back(specs_[i].kind, input_types_[i]);
  }

  while (true) {
    RAW_ASSIGN_OR_RETURN(ColumnBatch batch, child_->Next());
    if (batch.end_of_stream()) break;
    if (batch.empty()) continue;
    for (size_t s = 0; s < specs_.size(); ++s) {
      const AggSpec& spec = specs_[s];
      AggAccumulator& acc = accs[s];
      if (spec.kind == AggKind::kCount) {
        acc.UpdateCount(batch.num_rows());
        continue;
      }
      RAW_RETURN_NOT_OK(
          acc.UpdateBatch(*batch.column(spec.input), nullptr,
                          batch.num_rows()));
    }
  }

  ColumnBatch out(output_schema_);
  for (size_t s = 0; s < specs_.size(); ++s) {
    auto col = std::make_shared<Column>(output_schema_.field(
        static_cast<int>(s)).type);
    col->AppendDatum(accs[s].Finalize());
    out.AddColumn(std::move(col));
  }
  out.SetNumRows(1);
  return out;
}

}  // namespace raw
