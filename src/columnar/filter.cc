#include "columnar/filter.h"

namespace raw {

StatusOr<ColumnBatch> FilterOperator::Next() {
  while (true) {
    RAW_ASSIGN_OR_RETURN(ColumnBatch batch, child_->Next());
    if (batch.end_of_stream()) return batch;  // EOF
    if (batch.empty()) continue;  // zero-row data batch (e.g. drained morsel)
    rows_in_ += batch.num_rows();
    // Reuse one selection buffer across batches: Clear() keeps the
    // allocation, so steady state runs without a per-batch malloc.
    selection_.Clear();
    selection_.Reserve(batch.num_rows());
    RAW_RETURN_NOT_OK(predicate_->EvaluateSelection(batch, &selection_));
    if (selection_.empty()) continue;  // fully filtered; pull next batch
    rows_out_ += selection_.size();
    // All rows pass: forward the batch untouched (common at 100% selectivity).
    if (selection_.size() == batch.num_rows()) return batch;
    return batch.Filter(selection_);
  }
}

}  // namespace raw
