#include "columnar/filter.h"

namespace raw {

StatusOr<ColumnBatch> FilterOperator::Next() {
  while (true) {
    RAW_ASSIGN_OR_RETURN(ColumnBatch batch, child_->Next());
    if (batch.empty()) return batch;  // EOF
    rows_in_ += batch.num_rows();
    SelectionVector selection;
    selection.Reserve(batch.num_rows());
    RAW_RETURN_NOT_OK(predicate_->EvaluateSelection(batch, &selection));
    if (selection.empty()) continue;  // fully filtered; pull next batch
    rows_out_ += selection.size();
    // All rows pass: forward the batch untouched (common at 100% selectivity).
    if (selection.size() == batch.num_rows()) return batch;
    return batch.Filter(selection);
  }
}

}  // namespace raw
