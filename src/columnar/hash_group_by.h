#ifndef RAW_COLUMNAR_HASH_GROUP_BY_H_
#define RAW_COLUMNAR_HASH_GROUP_BY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "columnar/aggregate.h"
#include "columnar/operator.h"
#include "common/thread_pool.h"

namespace raw {

/// Mergeable partial-aggregation state for hash GROUP BY — the per-thread
/// half of the parallel aggregation path. Each worker absorbs its share of
/// the input into a private partial (no locking: one partial per thread),
/// then partials merge into one and groups emit in first-seen stream order.
///
/// Determinism contract: callers partition *rows by key* (hash % workers), so
/// every row of a given group is folded by the same partial in stream order.
/// Accumulation order per group therefore never depends on the worker count,
/// and results — floating-point sums included — are bitwise identical to the
/// serial path for any number of threads.
class GroupByPartial {
 public:
  GroupByPartial(std::vector<int> key_columns, std::vector<AggSpec> aggs,
                 std::vector<DataType> agg_input_types);

  /// Absorbs the rows of `batch` whose encoded key hashes into `partition`
  /// (modulo `num_partitions`; pass 0/1 to absorb every row). `seq_base` is
  /// the global stream sequence of the batch's first row — it orders group
  /// emission. `precomputed_keys` (one encoded key per row, see EncodeKeys)
  /// skips re-encoding, and `precomputed_hashes` (see HashKeys) skips
  /// re-hashing — with both, a non-owning partition worker only pays a
  /// compare per foreign row; pass nullptr to compute on the fly.
  Status Absorb(const ColumnBatch& batch, int64_t seq_base,
                const std::vector<std::string>* precomputed_keys = nullptr,
                const std::vector<uint64_t>* precomputed_hashes = nullptr,
                uint64_t partition = 0, uint64_t num_partitions = 1);

  /// Folds `other` into this partial: accumulators of matching keys merge
  /// (this partial's rows first, then `other`'s — relevant for float SUM/AVG
  /// only when key sets overlap), new keys keep their first-seen sequence.
  Status MergeFrom(const GroupByPartial& other);

  int64_t num_groups() const { return static_cast<int64_t>(groups_.size()); }

  /// Emits one column per key followed by one per aggregate, groups ordered
  /// by first-seen sequence (== serial insertion order).
  StatusOr<std::vector<ColumnPtr>> Finalize(const Schema& output_schema) const;

  /// Serializes the group key of every row of `batch` (the per-batch encode
  /// pass workers parallelize before partitioned absorption).
  static void EncodeKeys(const ColumnBatch& batch,
                         const std::vector<int>& key_columns,
                         std::vector<std::string>* out);

  /// Partition hashes for encoded keys (paired with EncodeKeys so the
  /// per-row hash is computed once, not once per partition worker).
  static void HashKeys(const std::vector<std::string>& keys,
                       std::vector<uint64_t>* out);

 private:
  struct Group {
    std::string key;  // encoded form, for MergeFrom lookups
    std::vector<Datum> key_values;
    std::vector<AggAccumulator> accs;
    int64_t first_seen = 0;
  };

  /// Phase 1 of absorption: group identity for one row (creates the group on
  /// first sight, recording `seq` as its first-seen order).
  size_t FindOrCreateGroup(const ColumnBatch& batch, int64_t row, int64_t seq,
                           const std::string& key);

  /// Phase 2: folds the rows staged in rows_/gidx_scratch_ into aggregate
  /// `s`, with the (kind, type) dispatch hoisted out of the row loop.
  Status AccumulateSpec(const ColumnBatch& batch, size_t s);
  template <AggKind K>
  void AccumulateSpecTyped(const Column& col, size_t s);

  std::vector<int> key_columns_;
  std::vector<AggSpec> aggs_;
  std::vector<DataType> agg_input_types_;
  std::unordered_map<std::string, size_t> index_;
  std::vector<Group> groups_;
  // Per-batch scratch: the rows this partial absorbed and their group index
  // (parallel arrays), reused across batches to stay allocation-light.
  std::vector<int32_t> rows_scratch_;
  std::vector<uint32_t> gidx_scratch_;
};

/// Hash-based GROUP BY over integer/string key columns. Consumes the whole
/// child stream on the first Next() and then emits one row per group. Used by
/// the Higgs query (per-event particle aggregation, §6). With SetParallel,
/// absorption fans out over the thread pool via key-partitioned
/// GroupByPartials; output is bitwise identical to the serial path.
class HashGroupByOperator : public Operator {
 public:
  HashGroupByOperator(OperatorPtr child, std::vector<int> key_columns,
                      std::vector<AggSpec> aggs);

  /// Enables parallel partial aggregation (num_threads <= 1 stays serial).
  void SetParallel(ThreadPool* pool, int num_threads);

  const Schema& output_schema() const override { return output_schema_; }
  Status Open() override;
  StatusOr<ColumnBatch> Next() override;
  Status Close() override { return child_->Close(); }
  std::string name() const override { return "HashGroupBy"; }

 private:
  Status ConsumeChild();
  Status ConsumeChildParallel();

  OperatorPtr child_;
  std::vector<int> key_columns_;
  std::vector<AggSpec> aggs_;
  std::vector<DataType> agg_input_types_;
  Schema output_schema_;
  ThreadPool* pool_ = nullptr;
  int num_threads_ = 1;
  bool consumed_ = false;
  // Result staging after ConsumeChild().
  std::vector<ColumnPtr> result_columns_;
  int64_t num_groups_ = 0;
  int64_t emit_cursor_ = 0;
};

}  // namespace raw

#endif  // RAW_COLUMNAR_HASH_GROUP_BY_H_
