#ifndef RAW_COLUMNAR_HASH_GROUP_BY_H_
#define RAW_COLUMNAR_HASH_GROUP_BY_H_

#include <vector>

#include "columnar/aggregate.h"
#include "columnar/operator.h"

namespace raw {

/// Hash-based GROUP BY over integer/string key columns. Consumes the whole
/// child stream on the first Next() and then emits one row per group. Used by
/// the Higgs query (per-event particle aggregation, §6).
class HashGroupByOperator : public Operator {
 public:
  HashGroupByOperator(OperatorPtr child, std::vector<int> key_columns,
                      std::vector<AggSpec> aggs);

  const Schema& output_schema() const override { return output_schema_; }
  Status Open() override;
  StatusOr<ColumnBatch> Next() override;
  Status Close() override { return child_->Close(); }
  std::string name() const override { return "HashGroupBy"; }

 private:
  Status ConsumeChild();

  OperatorPtr child_;
  std::vector<int> key_columns_;
  std::vector<AggSpec> aggs_;
  std::vector<DataType> agg_input_types_;
  Schema output_schema_;
  bool consumed_ = false;
  // Result staging after ConsumeChild().
  std::vector<ColumnPtr> result_columns_;
  int64_t num_groups_ = 0;
  int64_t emit_cursor_ = 0;
};

}  // namespace raw

#endif  // RAW_COLUMNAR_HASH_GROUP_BY_H_
