#ifndef RAW_COLUMNAR_SELECTION_VECTOR_H_
#define RAW_COLUMNAR_SELECTION_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace raw {

/// Indices of qualifying rows within a batch (MonetDB/X100-style selection
/// vector, referenced by the paper in §5.1). Filter operators produce these;
/// gather/late-scan operators consume them.
class SelectionVector {
 public:
  SelectionVector() = default;
  explicit SelectionVector(std::vector<int32_t> indices)
      : indices_(std::move(indices)) {}

  /// Identity selection [0, n).
  static SelectionVector All(int32_t n);

  int64_t size() const { return static_cast<int64_t>(indices_.size()); }
  bool empty() const { return indices_.empty(); }
  int32_t operator[](int64_t i) const {
    return indices_[static_cast<size_t>(i)];
  }
  const int32_t* data() const { return indices_.data(); }

  void Append(int32_t index) { indices_.push_back(index); }
  void Clear() { indices_.clear(); }
  void Reserve(int64_t n) { indices_.reserve(static_cast<size_t>(n)); }

  /// Grows by `n` scratch slots (zero-filled — vector semantics; one cheap
  /// sequential pass the kernel immediately overwrites) and returns a pointer
  /// to the first new slot — the write target for branchless selection
  /// kernels (`dst[k] = i; k += matches`), which overshoot then Truncate()
  /// back to the `size() + k` entries actually kept.
  int32_t* AppendUninitialized(int64_t n) {
    size_t old = indices_.size();
    indices_.resize(old + static_cast<size_t>(n));
    return indices_.data() + old;
  }

  /// Drops entries past `new_size` (new_size <= size()).
  void Truncate(int64_t new_size) {
    indices_.resize(static_cast<size_t>(new_size));
  }

  const std::vector<int32_t>& indices() const { return indices_; }

  /// Composes: returns selection s.t. result[i] = this[inner[i]].
  SelectionVector Compose(const SelectionVector& inner) const;

 private:
  std::vector<int32_t> indices_;
};

}  // namespace raw

#endif  // RAW_COLUMNAR_SELECTION_VECTOR_H_
