#ifndef RAW_COLUMNAR_PROJECT_H_
#define RAW_COLUMNAR_PROJECT_H_

#include <string>
#include <vector>

#include "columnar/expression.h"
#include "columnar/operator.h"

namespace raw {

/// Computes one output column per expression over each child batch. Row ids
/// are forwarded.
class ProjectOperator : public Operator {
 public:
  /// `names[i]` is the output field name of `exprs[i]`.
  ProjectOperator(OperatorPtr child, std::vector<ExprPtr> exprs,
                  std::vector<std::string> names);

  const Schema& output_schema() const override { return output_schema_; }
  Status Open() override;
  StatusOr<ColumnBatch> Next() override;
  Status Close() override { return child_->Close(); }
  std::string name() const override { return "Project"; }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  std::vector<std::string> names_;
  Schema output_schema_;
};

}  // namespace raw

#endif  // RAW_COLUMNAR_PROJECT_H_
