#include "columnar/in_memory_table.h"

namespace raw {

InMemoryTable::InMemoryTable(Schema schema) : schema_(std::move(schema)) {
  for (const Field& f : schema_.fields()) {
    columns_.push_back(std::make_shared<Column>(f.type));
  }
}

Status InMemoryTable::AppendBatch(const ColumnBatch& batch) {
  if (batch.num_columns() != schema_.num_fields()) {
    return Status::InvalidArgument("AppendBatch: column count mismatch");
  }
  for (int c = 0; c < batch.num_columns(); ++c) {
    RAW_RETURN_NOT_OK(
        columns_[static_cast<size_t>(c)]->AppendColumn(*batch.column(c)));
  }
  num_rows_ += batch.num_rows();
  return Status::OK();
}

int64_t InMemoryTable::MemoryBytes() const {
  int64_t total = 0;
  for (const ColumnPtr& col : columns_) total += col->MemoryBytes();
  return total;
}

OperatorPtr InMemoryTable::CreateScan(int64_t batch_rows,
                                      std::vector<int> columns) const {
  return std::make_unique<InMemoryScanOperator>(this, batch_rows,
                                                std::move(columns));
}

InMemoryScanOperator::InMemoryScanOperator(const InMemoryTable* table,
                                           int64_t batch_rows,
                                           std::vector<int> columns)
    : table_(table), batch_rows_(batch_rows), columns_(std::move(columns)) {
  if (columns_.empty()) {
    for (int c = 0; c < table_->schema().num_fields(); ++c) {
      columns_.push_back(c);
    }
  }
  schema_ = table_->schema().Select(columns_);
}

Status InMemoryScanOperator::Open() {
  cursor_ = 0;
  for (int c : columns_) {
    if (c < 0 || c >= table_->schema().num_fields()) {
      return Status::InvalidArgument("in-memory scan column out of range");
    }
  }
  return Status::OK();
}

StatusOr<ColumnBatch> InMemoryScanOperator::Next() {
  if (cursor_ >= table_->num_rows()) return ColumnBatch::EndOfStream(schema_);
  int64_t take = std::min(batch_rows_, table_->num_rows() - cursor_);
  if (cursor_ == 0 && take == table_->num_rows()) {
    // Whole table in one batch: share the column buffers (zero copy).
    ColumnBatch out(schema_);
    for (int c : columns_) out.AddColumn(table_->column(c));
    out.SetNumRows(take);
    std::vector<int64_t> ids(static_cast<size_t>(take));
    for (int64_t i = 0; i < take; ++i) ids[static_cast<size_t>(i)] = i;
    out.SetRowIds(std::move(ids));
    cursor_ = take;
    return out;
  }
  std::vector<int64_t> idx(static_cast<size_t>(take));
  for (int64_t i = 0; i < take; ++i) idx[static_cast<size_t>(i)] = cursor_ + i;
  ColumnBatch out(schema_);
  for (int c : columns_) {
    out.AddColumn(std::make_shared<Column>(
        table_->column(c)->Gather(idx.data(), take)));
  }
  out.SetNumRows(take);
  out.SetRowIds(std::move(idx));
  cursor_ += take;
  return out;
}

}  // namespace raw
