#ifndef RAW_COLUMNAR_EXPRESSION_H_
#define RAW_COLUMNAR_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "columnar/batch.h"
#include "columnar/selection_vector.h"
#include "common/datum.h"

namespace raw {

/// Comparison operators supported in predicates.
enum class CompareOp { kLt, kLe, kGt, kGe, kEq, kNe };

std::string_view CompareOpToString(CompareOp op);

/// Binary arithmetic operators supported in projections.
enum class ArithOp { kAdd, kSub, kMul, kDiv };

class Expression;
using ExprPtr = std::shared_ptr<Expression>;

/// Scalar expression tree evaluated vector-at-a-time over a ColumnBatch.
///
/// Predicates additionally support EvaluateSelection(), which produces a
/// SelectionVector directly (the hot path for filters); comparisons against
/// literals on int32/int64/float32/float64 columns run a branch-light
/// specialized loop.
class Expression {
 public:
  enum class Kind { kColumnRef, kLiteral, kCompare, kArith, kAnd, kOr, kNot };

  virtual ~Expression() = default;

  Kind kind() const { return kind_; }

  /// Resolves the expression's result type against `schema`.
  virtual StatusOr<DataType> ResultType(const Schema& schema) const = 0;

  /// Full materialization: computes one value per batch row.
  virtual StatusOr<Column> Evaluate(const ColumnBatch& batch) const = 0;

  /// Predicate evaluation: appends qualifying row indices to `out`.
  /// Default implementation materializes a bool column via Evaluate().
  virtual Status EvaluateSelection(const ColumnBatch& batch,
                                   SelectionVector* out) const;

  /// Selection-aware predicate evaluation: examines only the rows listed in
  /// `sel_in` and appends the surviving *original* indices to `out` — the
  /// chaining step of a short-circuit conjunction (later AND terms run over
  /// survivors instead of materializing bool columns and intersecting).
  /// Default implementation materializes a bool column via Evaluate() and
  /// tests the selected rows.
  virtual Status EvaluateSelectionFiltered(const ColumnBatch& batch,
                                           const SelectionVector& sel_in,
                                           SelectionVector* out) const;

  virtual std::string ToString() const = 0;

 protected:
  explicit Expression(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
};

/// References a column of the input batch by index.
class ColumnRefExpr : public Expression {
 public:
  explicit ColumnRefExpr(int index)
      : Expression(Kind::kColumnRef), index_(index) {}

  int index() const { return index_; }

  StatusOr<DataType> ResultType(const Schema& schema) const override;
  StatusOr<Column> Evaluate(const ColumnBatch& batch) const override;
  std::string ToString() const override;

 private:
  int index_;
};

/// A constant.
class LiteralExpr : public Expression {
 public:
  explicit LiteralExpr(Datum value)
      : Expression(Kind::kLiteral), value_(std::move(value)) {}

  const Datum& value() const { return value_; }

  StatusOr<DataType> ResultType(const Schema& schema) const override;
  StatusOr<Column> Evaluate(const ColumnBatch& batch) const override;
  std::string ToString() const override;

 private:
  Datum value_;
};

/// lhs <op> rhs, producing bool.
class CompareExpr : public Expression {
 public:
  CompareExpr(CompareOp op, ExprPtr lhs, ExprPtr rhs)
      : Expression(Kind::kCompare),
        op_(op),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  CompareOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

  StatusOr<DataType> ResultType(const Schema& schema) const override;
  StatusOr<Column> Evaluate(const ColumnBatch& batch) const override;
  Status EvaluateSelection(const ColumnBatch& batch,
                           SelectionVector* out) const override;
  Status EvaluateSelectionFiltered(const ColumnBatch& batch,
                                   const SelectionVector& sel_in,
                                   SelectionVector* out) const override;
  std::string ToString() const override;

 private:
  /// Runs the typed <column> <op> <literal> kernel when applicable; sets
  /// `*handled` and appends to `out` (sel-aware when `sel` is non-null).
  Status TryConstCompareKernel(const ColumnBatch& batch,
                               const SelectionVector* sel, SelectionVector* out,
                               bool* handled) const;

  CompareOp op_;
  ExprPtr lhs_, rhs_;
};

/// lhs <op> rhs arithmetic; result type follows standard numeric promotion
/// (int32 -> int64 -> float64).
class ArithExpr : public Expression {
 public:
  ArithExpr(ArithOp op, ExprPtr lhs, ExprPtr rhs)
      : Expression(Kind::kArith),
        op_(op),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  StatusOr<DataType> ResultType(const Schema& schema) const override;
  StatusOr<Column> Evaluate(const ColumnBatch& batch) const override;
  std::string ToString() const override;

 private:
  ArithOp op_;
  ExprPtr lhs_, rhs_;
};

/// Conjunction / disjunction over bool children.
class BoolOpExpr : public Expression {
 public:
  BoolOpExpr(Kind kind, std::vector<ExprPtr> children)
      : Expression(kind), children_(std::move(children)) {}

  const std::vector<ExprPtr>& children() const { return children_; }

  StatusOr<DataType> ResultType(const Schema& schema) const override;
  StatusOr<Column> Evaluate(const ColumnBatch& batch) const override;
  Status EvaluateSelection(const ColumnBatch& batch,
                           SelectionVector* out) const override;
  Status EvaluateSelectionFiltered(const ColumnBatch& batch,
                                   const SelectionVector& sel_in,
                                   SelectionVector* out) const override;
  std::string ToString() const override;

 private:
  std::vector<ExprPtr> children_;
};

/// Logical negation.
class NotExpr : public Expression {
 public:
  explicit NotExpr(ExprPtr child)
      : Expression(Kind::kNot), child_(std::move(child)) {}

  StatusOr<DataType> ResultType(const Schema& schema) const override;
  StatusOr<Column> Evaluate(const ColumnBatch& batch) const override;
  std::string ToString() const override;

 private:
  ExprPtr child_;
};

// Convenience constructors.
ExprPtr Col(int index);
ExprPtr Lit(Datum value);
ExprPtr Cmp(CompareOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr And(ExprPtr lhs, ExprPtr rhs);
ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
ExprPtr Not(ExprPtr child);
ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);

}  // namespace raw

#endif  // RAW_COLUMNAR_EXPRESSION_H_
