#include "columnar/batch.h"

#include <cassert>
#include <sstream>

namespace raw {

void ColumnBatch::AddColumn(ColumnPtr column) {
  assert(column != nullptr);
  if (columns_.empty()) {
    num_rows_ = column->length();
  } else {
    assert(column->length() == num_rows_ && "column length mismatch");
  }
  columns_.push_back(std::move(column));
}

ColumnBatch ColumnBatch::Filter(const SelectionVector& selection) const {
  ColumnBatch out(schema_);
  for (const ColumnPtr& col : columns_) {
    out.AddColumn(std::make_shared<Column>(
        col->Gather(selection.data(), selection.size())));
  }
  if (out.columns_.empty()) out.num_rows_ = selection.size();
  if (!row_ids_.empty()) {
    std::vector<int64_t> ids;
    ids.reserve(static_cast<size_t>(selection.size()));
    for (int64_t i = 0; i < selection.size(); ++i) {
      ids.push_back(row_ids_[static_cast<size_t>(selection[i])]);
    }
    out.row_ids_ = std::move(ids);
  }
  out.num_rows_ = selection.size();
  return out;
}

ColumnBatch ColumnBatch::SelectColumns(const std::vector<int>& indices) const {
  ColumnBatch out(schema_.Select(indices));
  for (int i : indices) out.AddColumn(columns_[static_cast<size_t>(i)]);
  out.row_ids_ = row_ids_;
  out.num_rows_ = num_rows_;
  return out;
}

std::string ColumnBatch::ToString(int64_t max_rows) const {
  std::ostringstream os;
  os << schema_.ToString() << " [" << num_rows_ << " rows]\n";
  int64_t shown = std::min(max_rows, num_rows_);
  for (int64_t r = 0; r < shown; ++r) {
    for (int c = 0; c < num_columns(); ++c) {
      if (c > 0) os << " | ";
      const ColumnPtr& col = columns_[static_cast<size_t>(c)];
      os << (col->IsLoaded(r) ? col->GetDatum(r).ToString() : "<missing>");
    }
    os << "\n";
  }
  if (shown < num_rows_) os << "... (" << (num_rows_ - shown) << " more)\n";
  return os.str();
}

}  // namespace raw
