#ifndef RAW_COLUMNAR_AGGREGATE_H_
#define RAW_COLUMNAR_AGGREGATE_H_

#include <string>
#include <vector>

#include "columnar/operator.h"

namespace raw {

/// Aggregate functions supported by the engine.
enum class AggKind { kMax, kMin, kSum, kCount, kAvg };

std::string_view AggKindToString(AggKind kind);

/// One aggregate to compute: `kind` over child column `input`; `input` is
/// ignored for COUNT(*) (pass -1).
struct AggSpec {
  AggKind kind = AggKind::kCount;
  int input = -1;
  std::string output_name;
};

/// Returns the result type of `kind` applied to a column of `input_type`.
StatusOr<DataType> AggResultType(AggKind kind, DataType input_type);

/// Streaming accumulator for one aggregate (shared by scalar and group-by
/// aggregation).
class AggAccumulator {
 public:
  AggAccumulator(AggKind kind, DataType input_type);

  /// Rehydrates an accumulator from externally-held partial state (the fused
  /// JIT pipeline kernels leave exactly these four fields per aggregate in
  /// their context arrays). The fields mirror the private members below.
  static AggAccumulator FromPartial(AggKind kind, DataType input_type,
                                    int64_t count, double dacc, int64_t iacc,
                                    bool initialized) {
    AggAccumulator acc(kind, input_type);
    acc.count_ = count;
    acc.dacc_ = dacc;
    acc.iacc_ = iacc;
    acc.initialized_ = initialized;
    return acc;
  }

  void UpdateNumeric(double value);
  /// Exact integer path (no double round-trip; int64 values above 2^53 stay
  /// precise).
  void UpdateInt(int64_t value);
  void UpdateCount(int64_t n = 1) { count_ += n; }

  /// Kind-hoisted per-row updates (K must equal the accumulator's kind):
  /// identical semantics to UpdateInt / UpdateNumeric with the kind switch
  /// lifted out, so bulk loops dispatch once and run tight (group-by
  /// absorption and the dense/selection kernels below use these).
  template <AggKind K>
  void UpdateIntT(int64_t value) {
    ++count_;
    if constexpr (K == AggKind::kSum) {
      iacc_ += value;
    } else if constexpr (K == AggKind::kAvg) {
      dacc_ += static_cast<double>(value);
    } else if constexpr (K == AggKind::kMax) {
      if (!initialized_ || value > iacc_) iacc_ = value;
      initialized_ = true;
    } else if constexpr (K == AggKind::kMin) {
      if (!initialized_ || value < iacc_) iacc_ = value;
      initialized_ = true;
    }
  }

  template <AggKind K>
  void UpdateNumericT(double value) {
    ++count_;
    if constexpr (K == AggKind::kSum || K == AggKind::kAvg) {
      dacc_ += value;
      iacc_ += static_cast<int64_t>(value);
    } else if constexpr (K == AggKind::kMax) {
      if (!initialized_ || value > dacc_) dacc_ = value;
      initialized_ = true;
    } else if constexpr (K == AggKind::kMin) {
      if (!initialized_ || value < dacc_) dacc_ = value;
      initialized_ = true;
    }
  }

  /// Bulk, selection-aware accumulation over a numeric column: rows
  /// [0, n) when `sel` is null, else rows sel[0..n). Non-scalar kernel
  /// tiers dispatch once on (kind, type) and run a tight typed loop —
  /// no per-row switch, no Datum boxing; the scalar tier replays the
  /// per-row reference updates. Accumulation order (and therefore every
  /// float bit) is identical either way.
  Status UpdateBatch(const Column& col, const int32_t* sel, int64_t n);

  /// Folds another accumulator of the same (kind, input type) into this one —
  /// the merge step combining per-thread partial aggregates. For SUM/AVG the
  /// result equals accumulating this accumulator's rows first, then
  /// `other`'s; MIN/MAX/COUNT are order-insensitive.
  void Merge(const AggAccumulator& other);

  /// Finalizes into a Datum of AggResultType(); MIN/MAX over zero rows
  /// returns the type's identity-less "no rows" encoding (count()==0 lets
  /// callers emit SQL NULL semantics; we surface it as 0 rows upstream).
  Datum Finalize() const;

  int64_t count() const { return count_; }

 private:
  AggKind kind_;
  DataType input_type_;
  int64_t count_ = 0;
  double dacc_ = 0;      // sum / running min/max for floats
  int64_t iacc_ = 0;     // running sum/min/max for ints
  bool initialized_ = false;
};

/// Computes scalar aggregates over the entire child stream; emits exactly one
/// row (the SQL no-GROUP-BY aggregate).
class AggregateOperator : public Operator {
 public:
  AggregateOperator(OperatorPtr child, std::vector<AggSpec> specs);

  const Schema& output_schema() const override { return output_schema_; }
  Status Open() override;
  StatusOr<ColumnBatch> Next() override;
  Status Close() override { return child_->Close(); }
  std::string name() const override { return "Aggregate"; }

 private:
  OperatorPtr child_;
  std::vector<AggSpec> specs_;
  Schema output_schema_;
  std::vector<DataType> input_types_;
  bool done_ = false;
};

}  // namespace raw

#endif  // RAW_COLUMNAR_AGGREGATE_H_
