#include "columnar/expression.h"

#include <cmath>

#include "common/macros.h"

namespace raw {

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
  }
  return "?";
}

Status Expression::EvaluateSelection(const ColumnBatch& batch,
                                     SelectionVector* out) const {
  RAW_ASSIGN_OR_RETURN(Column result, Evaluate(batch));
  if (result.type() != DataType::kBool) {
    return Status::InvalidArgument("predicate does not evaluate to bool");
  }
  const bool* values = result.Data<bool>();
  for (int64_t i = 0; i < result.length(); ++i) {
    if (values[i]) out->Append(static_cast<int32_t>(i));
  }
  return Status::OK();
}

// --- ColumnRefExpr ----------------------------------------------------------

StatusOr<DataType> ColumnRefExpr::ResultType(const Schema& schema) const {
  if (index_ < 0 || index_ >= schema.num_fields()) {
    return Status::InvalidArgument("column index out of range: " +
                                   std::to_string(index_));
  }
  return schema.field(index_).type;
}

StatusOr<Column> ColumnRefExpr::Evaluate(const ColumnBatch& batch) const {
  if (index_ < 0 || index_ >= batch.num_columns()) {
    return Status::InvalidArgument("column index out of range: " +
                                   std::to_string(index_));
  }
  return *batch.column(index_);
}

std::string ColumnRefExpr::ToString() const {
  return "$" + std::to_string(index_);
}

// --- LiteralExpr ------------------------------------------------------------

StatusOr<DataType> LiteralExpr::ResultType(const Schema& /*schema*/) const {
  return value_.type();
}

StatusOr<Column> LiteralExpr::Evaluate(const ColumnBatch& batch) const {
  Column out(value_.type());
  out.Reserve(batch.num_rows());
  for (int64_t i = 0; i < batch.num_rows(); ++i) out.AppendDatum(value_);
  return out;
}

std::string LiteralExpr::ToString() const { return value_.ToString(); }

// --- CompareExpr ------------------------------------------------------------

namespace {

template <typename T>
inline bool ApplyCompare(CompareOp op, T a, T b) {
  switch (op) {
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
  }
  return false;
}

// Branch-light selection loop: compare column values against a constant and
// append qualifying indices. The comparison op is a template parameter so the
// compiler emits a tight loop per op (the "unrolled" flavour general-purpose
// scans lack; see §4.1).
template <typename T, CompareOp kOp>
void SelectCompareConst(const T* values, int64_t n, T constant,
                        SelectionVector* out) {
  for (int64_t i = 0; i < n; ++i) {
    bool keep;
    if constexpr (kOp == CompareOp::kLt) {
      keep = values[i] < constant;
    } else if constexpr (kOp == CompareOp::kLe) {
      keep = values[i] <= constant;
    } else if constexpr (kOp == CompareOp::kGt) {
      keep = values[i] > constant;
    } else if constexpr (kOp == CompareOp::kGe) {
      keep = values[i] >= constant;
    } else if constexpr (kOp == CompareOp::kEq) {
      keep = values[i] == constant;
    } else {
      keep = values[i] != constant;
    }
    if (keep) out->Append(static_cast<int32_t>(i));
  }
}

template <typename T>
void SelectCompareConstDispatch(CompareOp op, const T* values, int64_t n,
                                T constant, SelectionVector* out) {
  switch (op) {
    case CompareOp::kLt:
      SelectCompareConst<T, CompareOp::kLt>(values, n, constant, out);
      break;
    case CompareOp::kLe:
      SelectCompareConst<T, CompareOp::kLe>(values, n, constant, out);
      break;
    case CompareOp::kGt:
      SelectCompareConst<T, CompareOp::kGt>(values, n, constant, out);
      break;
    case CompareOp::kGe:
      SelectCompareConst<T, CompareOp::kGe>(values, n, constant, out);
      break;
    case CompareOp::kEq:
      SelectCompareConst<T, CompareOp::kEq>(values, n, constant, out);
      break;
    case CompareOp::kNe:
      SelectCompareConst<T, CompareOp::kNe>(values, n, constant, out);
      break;
  }
}

// Widens a column's value at i to double for mixed-type comparison.
inline double WidenedValue(const Column& col, int64_t i) {
  switch (col.type()) {
    case DataType::kBool:
      return col.Value<bool>(i) ? 1.0 : 0.0;
    case DataType::kInt32:
      return static_cast<double>(col.Value<int32_t>(i));
    case DataType::kInt64:
      return static_cast<double>(col.Value<int64_t>(i));
    case DataType::kFloat32:
      return static_cast<double>(col.Value<float>(i));
    case DataType::kFloat64:
      return col.Value<double>(i);
    case DataType::kString:
      return std::nan("");
  }
  return std::nan("");
}

}  // namespace

StatusOr<DataType> CompareExpr::ResultType(const Schema& schema) const {
  RAW_ASSIGN_OR_RETURN(DataType lt, lhs_->ResultType(schema));
  RAW_ASSIGN_OR_RETURN(DataType rt, rhs_->ResultType(schema));
  if ((lt == DataType::kString) != (rt == DataType::kString)) {
    return Status::InvalidArgument("cannot compare string with non-string");
  }
  return DataType::kBool;
}

StatusOr<Column> CompareExpr::Evaluate(const ColumnBatch& batch) const {
  RAW_ASSIGN_OR_RETURN(Column left, lhs_->Evaluate(batch));
  RAW_ASSIGN_OR_RETURN(Column right, rhs_->Evaluate(batch));
  Column out(DataType::kBool);
  out.Reserve(batch.num_rows());
  if (left.type() == DataType::kString && right.type() == DataType::kString) {
    for (int64_t i = 0; i < batch.num_rows(); ++i) {
      int cmp = left.StringValue(i).compare(right.StringValue(i));
      out.Append<bool>(ApplyCompare(op_, cmp, 0));
    }
    return out;
  }
  if (left.type() == right.type() && left.type() == DataType::kInt32) {
    const int32_t* a = left.Data<int32_t>();
    const int32_t* b = right.Data<int32_t>();
    for (int64_t i = 0; i < batch.num_rows(); ++i) {
      out.Append<bool>(ApplyCompare(op_, a[i], b[i]));
    }
    return out;
  }
  for (int64_t i = 0; i < batch.num_rows(); ++i) {
    out.Append<bool>(
        ApplyCompare(op_, WidenedValue(left, i), WidenedValue(right, i)));
  }
  return out;
}

Status CompareExpr::EvaluateSelection(const ColumnBatch& batch,
                                      SelectionVector* out) const {
  // Fast path: <column> <op> <literal> on a numeric column.
  if (lhs_->kind() == Kind::kColumnRef && rhs_->kind() == Kind::kLiteral) {
    const auto* ref = static_cast<const ColumnRefExpr*>(lhs_.get());
    const auto* lit = static_cast<const LiteralExpr*>(rhs_.get());
    if (ref->index() >= 0 && ref->index() < batch.num_columns()) {
      const Column& col = *batch.column(ref->index());
      const int64_t n = batch.num_rows();
      switch (col.type()) {
        case DataType::kInt32: {
          RAW_ASSIGN_OR_RETURN(int64_t c64, lit->value().AsInt64());
          if (lit->value().type() == DataType::kInt32 ||
              (c64 >= INT32_MIN && c64 <= INT32_MAX)) {
            SelectCompareConstDispatch<int32_t>(
                op_, col.Data<int32_t>(), n, static_cast<int32_t>(c64), out);
            return Status::OK();
          }
          break;
        }
        case DataType::kInt64: {
          RAW_ASSIGN_OR_RETURN(int64_t c, lit->value().AsInt64());
          SelectCompareConstDispatch<int64_t>(op_, col.Data<int64_t>(), n, c,
                                              out);
          return Status::OK();
        }
        case DataType::kFloat32: {
          RAW_ASSIGN_OR_RETURN(double c, lit->value().AsDouble());
          SelectCompareConstDispatch<float>(op_, col.Data<float>(), n,
                                            static_cast<float>(c), out);
          return Status::OK();
        }
        case DataType::kFloat64: {
          RAW_ASSIGN_OR_RETURN(double c, lit->value().AsDouble());
          SelectCompareConstDispatch<double>(op_, col.Data<double>(), n, c,
                                             out);
          return Status::OK();
        }
        default:
          break;
      }
    }
  }
  return Expression::EvaluateSelection(batch, out);
}

std::string CompareExpr::ToString() const {
  return "(" + lhs_->ToString() + " " + std::string(CompareOpToString(op_)) +
         " " + rhs_->ToString() + ")";
}

// --- ArithExpr --------------------------------------------------------------

StatusOr<DataType> ArithExpr::ResultType(const Schema& schema) const {
  RAW_ASSIGN_OR_RETURN(DataType lt, lhs_->ResultType(schema));
  RAW_ASSIGN_OR_RETURN(DataType rt, rhs_->ResultType(schema));
  if (!IsNumeric(lt) || !IsNumeric(rt)) {
    return Status::InvalidArgument("arithmetic requires numeric operands");
  }
  if (op_ == ArithOp::kDiv) return DataType::kFloat64;
  if (lt == DataType::kFloat64 || rt == DataType::kFloat64 ||
      lt == DataType::kFloat32 || rt == DataType::kFloat32) {
    return DataType::kFloat64;
  }
  if (lt == DataType::kInt64 || rt == DataType::kInt64) {
    return DataType::kInt64;
  }
  return DataType::kInt32;
}

StatusOr<Column> ArithExpr::Evaluate(const ColumnBatch& batch) const {
  RAW_ASSIGN_OR_RETURN(Column left, lhs_->Evaluate(batch));
  RAW_ASSIGN_OR_RETURN(Column right, rhs_->Evaluate(batch));
  RAW_ASSIGN_OR_RETURN(DataType out_type, ResultType(batch.schema()));
  Column out(out_type);
  out.Reserve(batch.num_rows());
  for (int64_t i = 0; i < batch.num_rows(); ++i) {
    double a = WidenedValue(left, i);
    double b = WidenedValue(right, i);
    double r = 0;
    switch (op_) {
      case ArithOp::kAdd:
        r = a + b;
        break;
      case ArithOp::kSub:
        r = a - b;
        break;
      case ArithOp::kMul:
        r = a * b;
        break;
      case ArithOp::kDiv:
        r = a / b;
        break;
    }
    switch (out_type) {
      case DataType::kInt32:
        out.Append<int32_t>(static_cast<int32_t>(r));
        break;
      case DataType::kInt64:
        out.Append<int64_t>(static_cast<int64_t>(r));
        break;
      default:
        out.Append<double>(r);
        break;
    }
  }
  return out;
}

std::string ArithExpr::ToString() const {
  const char* names[] = {"+", "-", "*", "/"};
  return "(" + lhs_->ToString() + " " + names[static_cast<int>(op_)] + " " +
         rhs_->ToString() + ")";
}

// --- BoolOpExpr -------------------------------------------------------------

StatusOr<DataType> BoolOpExpr::ResultType(const Schema& schema) const {
  for (const ExprPtr& child : children_) {
    RAW_ASSIGN_OR_RETURN(DataType t, child->ResultType(schema));
    if (t != DataType::kBool) {
      return Status::InvalidArgument("AND/OR child is not boolean");
    }
  }
  return DataType::kBool;
}

StatusOr<Column> BoolOpExpr::Evaluate(const ColumnBatch& batch) const {
  std::vector<Column> evaluated;
  evaluated.reserve(children_.size());
  for (const ExprPtr& child : children_) {
    RAW_ASSIGN_OR_RETURN(Column c, child->Evaluate(batch));
    if (c.type() != DataType::kBool) {
      return Status::InvalidArgument("AND/OR child is not boolean");
    }
    evaluated.push_back(std::move(c));
  }
  const bool is_and = kind() == Kind::kAnd;
  Column out(DataType::kBool);
  out.Reserve(batch.num_rows());
  for (int64_t i = 0; i < batch.num_rows(); ++i) {
    bool acc = is_and;
    for (const Column& c : evaluated) {
      bool v = c.Value<bool>(i);
      acc = is_and ? (acc && v) : (acc || v);
    }
    out.Append<bool>(acc);
  }
  return out;
}

Status BoolOpExpr::EvaluateSelection(const ColumnBatch& batch,
                                     SelectionVector* out) const {
  if (kind() != Kind::kAnd || children_.empty()) {
    return Expression::EvaluateSelection(batch, out);
  }
  // AND: evaluate first child's selection, then re-filter progressively.
  // This keeps the common conjunctive-predicate path allocation-light.
  SelectionVector current;
  RAW_RETURN_NOT_OK(children_[0]->EvaluateSelection(batch, &current));
  for (size_t k = 1; k < children_.size() && current.size() > 0; ++k) {
    ColumnBatch narrowed = batch.Filter(current);
    SelectionVector next;
    RAW_RETURN_NOT_OK(children_[k]->EvaluateSelection(narrowed, &next));
    current = current.Compose(next);
  }
  for (int64_t i = 0; i < current.size(); ++i) out->Append(current[i]);
  return Status::OK();
}

std::string BoolOpExpr::ToString() const {
  std::string sep = kind() == Kind::kAnd ? " AND " : " OR ";
  std::string out = "(";
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) out += sep;
    out += children_[i]->ToString();
  }
  return out + ")";
}

// --- NotExpr ----------------------------------------------------------------

StatusOr<DataType> NotExpr::ResultType(const Schema& schema) const {
  RAW_ASSIGN_OR_RETURN(DataType t, child_->ResultType(schema));
  if (t != DataType::kBool) {
    return Status::InvalidArgument("NOT child is not boolean");
  }
  return DataType::kBool;
}

StatusOr<Column> NotExpr::Evaluate(const ColumnBatch& batch) const {
  RAW_ASSIGN_OR_RETURN(Column c, child_->Evaluate(batch));
  if (c.type() != DataType::kBool) {
    return Status::InvalidArgument("NOT child is not boolean");
  }
  Column out(DataType::kBool);
  out.Reserve(batch.num_rows());
  const bool* v = c.Data<bool>();
  for (int64_t i = 0; i < batch.num_rows(); ++i) out.Append<bool>(!v[i]);
  return out;
}

std::string NotExpr::ToString() const {
  return "NOT " + child_->ToString();
}

// --- convenience ------------------------------------------------------------

ExprPtr Col(int index) { return std::make_shared<ColumnRefExpr>(index); }
ExprPtr Lit(Datum value) {
  return std::make_shared<LiteralExpr>(std::move(value));
}
ExprPtr Cmp(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<CompareExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr And(ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<BoolOpExpr>(
      Expression::Kind::kAnd, std::vector<ExprPtr>{std::move(lhs), std::move(rhs)});
}
ExprPtr Or(ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<BoolOpExpr>(
      Expression::Kind::kOr, std::vector<ExprPtr>{std::move(lhs), std::move(rhs)});
}
ExprPtr Not(ExprPtr child) { return std::make_shared<NotExpr>(std::move(child)); }
ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<ArithExpr>(op, std::move(lhs), std::move(rhs));
}

}  // namespace raw
