#include "columnar/expression.h"

#include <algorithm>
#include <cmath>

#include "columnar/eval_kernels.h"
#include "common/macros.h"

namespace raw {

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
  }
  return "?";
}

Status Expression::EvaluateSelection(const ColumnBatch& batch,
                                     SelectionVector* out) const {
  RAW_ASSIGN_OR_RETURN(Column result, Evaluate(batch));
  if (result.type() != DataType::kBool) {
    return Status::InvalidArgument("predicate does not evaluate to bool");
  }
  const bool* values = result.Data<bool>();
  for (int64_t i = 0; i < result.length(); ++i) {
    if (values[i]) out->Append(static_cast<int32_t>(i));
  }
  return Status::OK();
}

Status Expression::EvaluateSelectionFiltered(const ColumnBatch& batch,
                                             const SelectionVector& sel_in,
                                             SelectionVector* out) const {
  // Narrow first so the expression only computes over survivors (at low
  // selectivity, evaluating the full batch would redo up to 1/selectivity
  // times the work); kernel-capable subclasses override this with a direct
  // gather instead.
  ColumnBatch narrowed = batch.Filter(sel_in);
  SelectionVector local;
  local.Reserve(sel_in.size());
  RAW_RETURN_NOT_OK(EvaluateSelection(narrowed, &local));
  for (int64_t j = 0; j < local.size(); ++j) {
    out->Append(sel_in[local[j]]);
  }
  return Status::OK();
}

// --- ColumnRefExpr ----------------------------------------------------------

StatusOr<DataType> ColumnRefExpr::ResultType(const Schema& schema) const {
  if (index_ < 0 || index_ >= schema.num_fields()) {
    return Status::InvalidArgument("column index out of range: " +
                                   std::to_string(index_));
  }
  return schema.field(index_).type;
}

StatusOr<Column> ColumnRefExpr::Evaluate(const ColumnBatch& batch) const {
  if (index_ < 0 || index_ >= batch.num_columns()) {
    return Status::InvalidArgument("column index out of range: " +
                                   std::to_string(index_));
  }
  return *batch.column(index_);
}

std::string ColumnRefExpr::ToString() const {
  std::string out = "$";
  out += std::to_string(index_);
  return out;
}

// --- LiteralExpr ------------------------------------------------------------

StatusOr<DataType> LiteralExpr::ResultType(const Schema& /*schema*/) const {
  return value_.type();
}

StatusOr<Column> LiteralExpr::Evaluate(const ColumnBatch& batch) const {
  // Typed splat: size the column once and fill it, instead of boxing the
  // Datum through AppendDatum per row.
  const int64_t n = batch.num_rows();
  Column out(value_.type());
  switch (value_.type()) {
    case DataType::kBool:
      out.Resize(n);
      std::fill_n(out.MutableData<bool>(), n, value_.bool_value());
      break;
    case DataType::kInt32:
      out.Resize(n);
      std::fill_n(out.MutableData<int32_t>(), n, value_.int32_value());
      break;
    case DataType::kInt64:
      out.Resize(n);
      std::fill_n(out.MutableData<int64_t>(), n, value_.int64_value());
      break;
    case DataType::kFloat32:
      out.Resize(n);
      std::fill_n(out.MutableData<float>(), n, value_.float32_value());
      break;
    case DataType::kFloat64:
      out.Resize(n);
      std::fill_n(out.MutableData<double>(), n, value_.float64_value());
      break;
    case DataType::kString:
      out.Reserve(n);
      for (int64_t i = 0; i < n; ++i) out.AppendString(value_.string_value());
      break;
  }
  return out;
}

std::string LiteralExpr::ToString() const { return value_.ToString(); }

// --- CompareExpr ------------------------------------------------------------

namespace {

template <typename T>
inline bool ApplyCompare(CompareOp op, T a, T b) {
  switch (op) {
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
  }
  return false;
}

// Widens a column's value at i to double for mixed-type comparison.
inline double WidenedValue(const Column& col, int64_t i) {
  switch (col.type()) {
    case DataType::kBool:
      return col.Value<bool>(i) ? 1.0 : 0.0;
    case DataType::kInt32:
      return static_cast<double>(col.Value<int32_t>(i));
    case DataType::kInt64:
      return static_cast<double>(col.Value<int64_t>(i));
    case DataType::kFloat32:
      return static_cast<double>(col.Value<float>(i));
    case DataType::kFloat64:
      return col.Value<double>(i);
    case DataType::kString:
      return std::nan("");
  }
  return std::nan("");
}

}  // namespace

StatusOr<DataType> CompareExpr::ResultType(const Schema& schema) const {
  RAW_ASSIGN_OR_RETURN(DataType lt, lhs_->ResultType(schema));
  RAW_ASSIGN_OR_RETURN(DataType rt, rhs_->ResultType(schema));
  if ((lt == DataType::kString) != (rt == DataType::kString)) {
    return Status::InvalidArgument("cannot compare string with non-string");
  }
  return DataType::kBool;
}

StatusOr<Column> CompareExpr::Evaluate(const ColumnBatch& batch) const {
  RAW_ASSIGN_OR_RETURN(Column left, lhs_->Evaluate(batch));
  RAW_ASSIGN_OR_RETURN(Column right, rhs_->Evaluate(batch));
  Column out(DataType::kBool);
  out.Reserve(batch.num_rows());
  if (left.type() == DataType::kString && right.type() == DataType::kString) {
    for (int64_t i = 0; i < batch.num_rows(); ++i) {
      int cmp = left.StringValue(i).compare(right.StringValue(i));
      out.Append<bool>(ApplyCompare(op_, cmp, 0));
    }
    return out;
  }
  if (left.type() == right.type() && left.type() == DataType::kInt32) {
    const int32_t* a = left.Data<int32_t>();
    const int32_t* b = right.Data<int32_t>();
    for (int64_t i = 0; i < batch.num_rows(); ++i) {
      out.Append<bool>(ApplyCompare(op_, a[i], b[i]));
    }
    return out;
  }
  for (int64_t i = 0; i < batch.num_rows(); ++i) {
    out.Append<bool>(
        ApplyCompare(op_, WidenedValue(left, i), WidenedValue(right, i)));
  }
  return out;
}

Status CompareExpr::TryConstCompareKernel(const ColumnBatch& batch,
                                          const SelectionVector* sel,
                                          SelectionVector* out,
                                          bool* handled) const {
  *handled = false;
  // Typed kernel path: <column> <op> <literal> on a numeric column. With a
  // selection the kernel examines only surviving rows (conjunction chaining).
  if (lhs_->kind() != Kind::kColumnRef || rhs_->kind() != Kind::kLiteral) {
    return Status::OK();
  }
  const auto* ref = static_cast<const ColumnRefExpr*>(lhs_.get());
  const auto* lit = static_cast<const LiteralExpr*>(rhs_.get());
  if (ref->index() < 0 || ref->index() >= batch.num_columns()) {
    return Status::OK();
  }
  const Column& col = *batch.column(ref->index());
  const int64_t n = sel != nullptr ? sel->size() : batch.num_rows();
  switch (col.type()) {
    case DataType::kInt32: {
      RAW_ASSIGN_OR_RETURN(int64_t c64, lit->value().AsInt64());
      if (lit->value().type() == DataType::kInt32 ||
          (c64 >= INT32_MIN && c64 <= INT32_MAX)) {
        SelectCompareConst<int32_t>(op_, col.Data<int32_t>(), n,
                                    static_cast<int32_t>(c64), sel, out);
        *handled = true;
      }
      break;
    }
    case DataType::kInt64: {
      RAW_ASSIGN_OR_RETURN(int64_t c, lit->value().AsInt64());
      SelectCompareConst<int64_t>(op_, col.Data<int64_t>(), n, c, sel, out);
      *handled = true;
      break;
    }
    case DataType::kFloat32: {
      RAW_ASSIGN_OR_RETURN(double c, lit->value().AsDouble());
      SelectCompareConst<float>(op_, col.Data<float>(), n,
                                static_cast<float>(c), sel, out);
      *handled = true;
      break;
    }
    case DataType::kFloat64: {
      RAW_ASSIGN_OR_RETURN(double c, lit->value().AsDouble());
      SelectCompareConst<double>(op_, col.Data<double>(), n, c, sel, out);
      *handled = true;
      break;
    }
    default:
      break;
  }
  return Status::OK();
}

Status CompareExpr::EvaluateSelection(const ColumnBatch& batch,
                                      SelectionVector* out) const {
  bool handled = false;
  RAW_RETURN_NOT_OK(TryConstCompareKernel(batch, nullptr, out, &handled));
  if (handled) return Status::OK();
  return Expression::EvaluateSelection(batch, out);
}

Status CompareExpr::EvaluateSelectionFiltered(const ColumnBatch& batch,
                                              const SelectionVector& sel_in,
                                              SelectionVector* out) const {
  bool handled = false;
  RAW_RETURN_NOT_OK(TryConstCompareKernel(batch, &sel_in, out, &handled));
  if (handled) return Status::OK();
  return Expression::EvaluateSelectionFiltered(batch, sel_in, out);
}

std::string CompareExpr::ToString() const {
  std::string out = "(";
  out += lhs_->ToString();
  out += " ";
  out += CompareOpToString(op_);
  out += " ";
  out += rhs_->ToString();
  out += ")";
  return out;
}

// --- ArithExpr --------------------------------------------------------------

StatusOr<DataType> ArithExpr::ResultType(const Schema& schema) const {
  RAW_ASSIGN_OR_RETURN(DataType lt, lhs_->ResultType(schema));
  RAW_ASSIGN_OR_RETURN(DataType rt, rhs_->ResultType(schema));
  if (!IsNumeric(lt) || !IsNumeric(rt)) {
    return Status::InvalidArgument("arithmetic requires numeric operands");
  }
  if (op_ == ArithOp::kDiv) return DataType::kFloat64;
  if (lt == DataType::kFloat64 || rt == DataType::kFloat64 ||
      lt == DataType::kFloat32 || rt == DataType::kFloat32) {
    return DataType::kFloat64;
  }
  if (lt == DataType::kInt64 || rt == DataType::kInt64) {
    return DataType::kInt64;
  }
  return DataType::kInt32;
}

StatusOr<Column> ArithExpr::Evaluate(const ColumnBatch& batch) const {
  RAW_ASSIGN_OR_RETURN(Column left, lhs_->Evaluate(batch));
  RAW_ASSIGN_OR_RETURN(Column right, rhs_->Evaluate(batch));
  RAW_ASSIGN_OR_RETURN(DataType out_type, ResultType(batch.schema()));
  const int64_t n = batch.num_rows();
  if (ActiveKernelTier() != KernelTier::kScalar &&
      CanWidenToDouble(left.type()) && CanWidenToDouble(right.type())) {
    // Hoisted-switch kernels: widen non-double operands once (double columns
    // feed the loop in place), then one fused combine+narrow pass — the same
    // per-row double math as the interpreted loop below, minus its per-row
    // dispatch.
    std::vector<double> scratch_a, scratch_b;
    const double* a;
    const double* b;
    if (left.type() == DataType::kFloat64) {
      a = left.Data<double>();
    } else {
      scratch_a.resize(static_cast<size_t>(n));
      WidenToDouble(left, n, scratch_a.data());
      a = scratch_a.data();
    }
    if (right.type() == DataType::kFloat64) {
      b = right.Data<double>();
    } else {
      scratch_b.resize(static_cast<size_t>(n));
      WidenToDouble(right, n, scratch_b.data());
      b = scratch_b.data();
    }
    Column out(out_type);
    ArithCombineNarrow(op_, a, b, n, &out);
    return out;
  }
  Column out(out_type);
  out.Reserve(n);
  for (int64_t i = 0; i < batch.num_rows(); ++i) {
    double a = WidenedValue(left, i);
    double b = WidenedValue(right, i);
    double r = 0;
    switch (op_) {
      case ArithOp::kAdd:
        r = a + b;
        break;
      case ArithOp::kSub:
        r = a - b;
        break;
      case ArithOp::kMul:
        r = a * b;
        break;
      case ArithOp::kDiv:
        r = a / b;
        break;
    }
    switch (out_type) {
      case DataType::kInt32:
        out.Append<int32_t>(static_cast<int32_t>(r));
        break;
      case DataType::kInt64:
        out.Append<int64_t>(static_cast<int64_t>(r));
        break;
      default:
        out.Append<double>(r);
        break;
    }
  }
  return out;
}

std::string ArithExpr::ToString() const {
  const char* names[] = {"+", "-", "*", "/"};
  std::string out = "(";
  out += lhs_->ToString();
  out += " ";
  out += names[static_cast<int>(op_)];
  out += " ";
  out += rhs_->ToString();
  out += ")";
  return out;
}

// --- BoolOpExpr -------------------------------------------------------------

StatusOr<DataType> BoolOpExpr::ResultType(const Schema& schema) const {
  for (const ExprPtr& child : children_) {
    RAW_ASSIGN_OR_RETURN(DataType t, child->ResultType(schema));
    if (t != DataType::kBool) {
      return Status::InvalidArgument("AND/OR child is not boolean");
    }
  }
  return DataType::kBool;
}

StatusOr<Column> BoolOpExpr::Evaluate(const ColumnBatch& batch) const {
  std::vector<Column> evaluated;
  evaluated.reserve(children_.size());
  for (const ExprPtr& child : children_) {
    RAW_ASSIGN_OR_RETURN(Column c, child->Evaluate(batch));
    if (c.type() != DataType::kBool) {
      return Status::InvalidArgument("AND/OR child is not boolean");
    }
    evaluated.push_back(std::move(c));
  }
  const bool is_and = kind() == Kind::kAnd;
  Column out(DataType::kBool);
  out.Reserve(batch.num_rows());
  for (int64_t i = 0; i < batch.num_rows(); ++i) {
    bool acc = is_and;
    for (const Column& c : evaluated) {
      bool v = c.Value<bool>(i);
      acc = is_and ? (acc && v) : (acc || v);
    }
    out.Append<bool>(acc);
  }
  return out;
}

Status BoolOpExpr::EvaluateSelection(const ColumnBatch& batch,
                                     SelectionVector* out) const {
  if (kind() != Kind::kAnd || children_.empty()) {
    return Expression::EvaluateSelection(batch, out);
  }
  // Short-circuit AND: the first child produces a selection, every later
  // child evaluates only over the survivors (no bool-column materialization,
  // no batch gather, no index composition).
  SelectionVector current;
  RAW_RETURN_NOT_OK(children_[0]->EvaluateSelection(batch, &current));
  for (size_t k = 1; k < children_.size() && current.size() > 0; ++k) {
    SelectionVector next;
    next.Reserve(current.size());
    RAW_RETURN_NOT_OK(
        children_[k]->EvaluateSelectionFiltered(batch, current, &next));
    current = std::move(next);
  }
  for (int64_t i = 0; i < current.size(); ++i) out->Append(current[i]);
  return Status::OK();
}

Status BoolOpExpr::EvaluateSelectionFiltered(const ColumnBatch& batch,
                                             const SelectionVector& sel_in,
                                             SelectionVector* out) const {
  if (kind() != Kind::kAnd || children_.empty()) {
    return Expression::EvaluateSelectionFiltered(batch, sel_in, out);
  }
  SelectionVector current;
  current.Reserve(sel_in.size());
  RAW_RETURN_NOT_OK(
      children_[0]->EvaluateSelectionFiltered(batch, sel_in, &current));
  for (size_t k = 1; k < children_.size() && current.size() > 0; ++k) {
    SelectionVector next;
    next.Reserve(current.size());
    RAW_RETURN_NOT_OK(
        children_[k]->EvaluateSelectionFiltered(batch, current, &next));
    current = std::move(next);
  }
  for (int64_t i = 0; i < current.size(); ++i) out->Append(current[i]);
  return Status::OK();
}

std::string BoolOpExpr::ToString() const {
  std::string sep = kind() == Kind::kAnd ? " AND " : " OR ";
  std::string out = "(";
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) out += sep;
    out += children_[i]->ToString();
  }
  return out + ")";
}

// --- NotExpr ----------------------------------------------------------------

StatusOr<DataType> NotExpr::ResultType(const Schema& schema) const {
  RAW_ASSIGN_OR_RETURN(DataType t, child_->ResultType(schema));
  if (t != DataType::kBool) {
    return Status::InvalidArgument("NOT child is not boolean");
  }
  return DataType::kBool;
}

StatusOr<Column> NotExpr::Evaluate(const ColumnBatch& batch) const {
  RAW_ASSIGN_OR_RETURN(Column c, child_->Evaluate(batch));
  if (c.type() != DataType::kBool) {
    return Status::InvalidArgument("NOT child is not boolean");
  }
  Column out(DataType::kBool);
  out.Reserve(batch.num_rows());
  const bool* v = c.Data<bool>();
  for (int64_t i = 0; i < batch.num_rows(); ++i) out.Append<bool>(!v[i]);
  return out;
}

std::string NotExpr::ToString() const {
  std::string out = "NOT ";
  out += child_->ToString();
  return out;
}

// --- convenience ------------------------------------------------------------

ExprPtr Col(int index) { return std::make_shared<ColumnRefExpr>(index); }
ExprPtr Lit(Datum value) {
  return std::make_shared<LiteralExpr>(std::move(value));
}
ExprPtr Cmp(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<CompareExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr And(ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<BoolOpExpr>(
      Expression::Kind::kAnd, std::vector<ExprPtr>{std::move(lhs), std::move(rhs)});
}
ExprPtr Or(ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<BoolOpExpr>(
      Expression::Kind::kOr, std::vector<ExprPtr>{std::move(lhs), std::move(rhs)});
}
ExprPtr Not(ExprPtr child) { return std::make_shared<NotExpr>(std::move(child)); }
ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<ArithExpr>(op, std::move(lhs), std::move(rhs));
}

}  // namespace raw
