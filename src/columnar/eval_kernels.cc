#include "columnar/eval_kernels.h"

#include "columnar/expression.h"

namespace raw {

namespace {

template <typename T, CompareOp kOp>
inline bool Keep(T value, T constant) {
  if constexpr (kOp == CompareOp::kLt) {
    return value < constant;
  } else if constexpr (kOp == CompareOp::kLe) {
    return value <= constant;
  } else if constexpr (kOp == CompareOp::kGt) {
    return value > constant;
  } else if constexpr (kOp == CompareOp::kGe) {
    return value >= constant;
  } else if constexpr (kOp == CompareOp::kEq) {
    return value == constant;
  } else {
    return value != constant;
  }
}

// Branchless selection: always write the candidate index, advance the write
// cursor only when the predicate holds. No data-dependent branch, so the
// loop's cost is independent of selectivity (and auto-vectorizes cleanly).
template <typename T, CompareOp kOp>
void SelectBranchless(const T* values, int64_t n, T constant,
                      const SelectionVector* sel, SelectionVector* out) {
  const int64_t base = out->size();
  int32_t* dst = out->AppendUninitialized(n);
  int64_t k = 0;
  if (sel == nullptr) {
    for (int64_t i = 0; i < n; ++i) {
      dst[k] = static_cast<int32_t>(i);
      k += Keep<T, kOp>(values[i], constant) ? 1 : 0;
    }
  } else {
    const int32_t* in = sel->data();
    for (int64_t j = 0; j < n; ++j) {
      const int32_t i = in[j];
      dst[k] = i;
      k += Keep<T, kOp>(values[i], constant) ? 1 : 0;
    }
  }
  out->Truncate(base + k);
}

template <typename T, CompareOp kOp>
void SelectBranchy(const T* values, int64_t n, T constant,
                   const SelectionVector* sel, SelectionVector* out) {
  if (sel == nullptr) {
    for (int64_t i = 0; i < n; ++i) {
      if (Keep<T, kOp>(values[i], constant)) {
        out->Append(static_cast<int32_t>(i));
      }
    }
  } else {
    const int32_t* in = sel->data();
    for (int64_t j = 0; j < n; ++j) {
      if (Keep<T, kOp>(values[in[j]], constant)) out->Append(in[j]);
    }
  }
}

template <typename T, template <typename, CompareOp> class Loop>
struct OpDispatch {
  static void Run(CompareOp op, const T* values, int64_t n, T constant,
                  const SelectionVector* sel, SelectionVector* out) {
    switch (op) {
      case CompareOp::kLt:
        Loop<T, CompareOp::kLt>::Run(values, n, constant, sel, out);
        break;
      case CompareOp::kLe:
        Loop<T, CompareOp::kLe>::Run(values, n, constant, sel, out);
        break;
      case CompareOp::kGt:
        Loop<T, CompareOp::kGt>::Run(values, n, constant, sel, out);
        break;
      case CompareOp::kGe:
        Loop<T, CompareOp::kGe>::Run(values, n, constant, sel, out);
        break;
      case CompareOp::kEq:
        Loop<T, CompareOp::kEq>::Run(values, n, constant, sel, out);
        break;
      case CompareOp::kNe:
        Loop<T, CompareOp::kNe>::Run(values, n, constant, sel, out);
        break;
    }
  }
};

template <typename T, CompareOp kOp>
struct BranchlessLoop {
  static void Run(const T* values, int64_t n, T constant,
                  const SelectionVector* sel, SelectionVector* out) {
    SelectBranchless<T, kOp>(values, n, constant, sel, out);
  }
};

template <typename T, CompareOp kOp>
struct BranchyLoop {
  static void Run(const T* values, int64_t n, T constant,
                  const SelectionVector* sel, SelectionVector* out) {
    SelectBranchy<T, kOp>(values, n, constant, sel, out);
  }
};

}  // namespace

template <typename T>
void SelectCompareConst(CompareOp op, const T* values, int64_t n, T constant,
                        const SelectionVector* sel, SelectionVector* out) {
  if (ActiveKernelTier() == KernelTier::kScalar) {
    OpDispatch<T, BranchyLoop>::Run(op, values, n, constant, sel, out);
  } else {
    OpDispatch<T, BranchlessLoop>::Run(op, values, n, constant, sel, out);
  }
}

template <typename T>
void SelectCompareConstScalar(CompareOp op, const T* values, int64_t n,
                              T constant, const SelectionVector* sel,
                              SelectionVector* out) {
  OpDispatch<T, BranchyLoop>::Run(op, values, n, constant, sel, out);
}

template void SelectCompareConst<int32_t>(CompareOp, const int32_t*, int64_t,
                                          int32_t, const SelectionVector*,
                                          SelectionVector*);
template void SelectCompareConst<int64_t>(CompareOp, const int64_t*, int64_t,
                                          int64_t, const SelectionVector*,
                                          SelectionVector*);
template void SelectCompareConst<float>(CompareOp, const float*, int64_t, float,
                                        const SelectionVector*,
                                        SelectionVector*);
template void SelectCompareConst<double>(CompareOp, const double*, int64_t,
                                         double, const SelectionVector*,
                                         SelectionVector*);
template void SelectCompareConstScalar<int32_t>(CompareOp, const int32_t*,
                                                int64_t, int32_t,
                                                const SelectionVector*,
                                                SelectionVector*);
template void SelectCompareConstScalar<int64_t>(CompareOp, const int64_t*,
                                                int64_t, int64_t,
                                                const SelectionVector*,
                                                SelectionVector*);
template void SelectCompareConstScalar<float>(CompareOp, const float*, int64_t,
                                              float, const SelectionVector*,
                                              SelectionVector*);
template void SelectCompareConstScalar<double>(CompareOp, const double*,
                                               int64_t, double,
                                               const SelectionVector*,
                                               SelectionVector*);

// --- arithmetic --------------------------------------------------------------

bool CanWidenToDouble(DataType type) {
  return type == DataType::kInt32 || type == DataType::kInt64 ||
         type == DataType::kFloat32 || type == DataType::kFloat64;
}

void WidenToDouble(const Column& col, int64_t n, double* out) {
  switch (col.type()) {
    case DataType::kInt32: {
      const int32_t* v = col.Data<int32_t>();
      for (int64_t i = 0; i < n; ++i) out[i] = static_cast<double>(v[i]);
      break;
    }
    case DataType::kInt64: {
      const int64_t* v = col.Data<int64_t>();
      for (int64_t i = 0; i < n; ++i) out[i] = static_cast<double>(v[i]);
      break;
    }
    case DataType::kFloat32: {
      const float* v = col.Data<float>();
      for (int64_t i = 0; i < n; ++i) out[i] = static_cast<double>(v[i]);
      break;
    }
    case DataType::kFloat64: {
      const double* v = col.Data<double>();
      for (int64_t i = 0; i < n; ++i) out[i] = v[i];
      break;
    }
    default:
      break;  // guarded by CanWidenToDouble
  }
}

namespace {

template <ArithOp kOp, typename O>
void FusedArithLoop(const double* a, const double* b, int64_t n, O* dst) {
  for (int64_t i = 0; i < n; ++i) {
    double r;
    if constexpr (kOp == ArithOp::kAdd) {
      r = a[i] + b[i];
    } else if constexpr (kOp == ArithOp::kSub) {
      r = a[i] - b[i];
    } else if constexpr (kOp == ArithOp::kMul) {
      r = a[i] * b[i];
    } else {
      r = a[i] / b[i];
    }
    dst[i] = static_cast<O>(r);
  }
}

template <typename O>
void FusedArithDispatch(ArithOp op, const double* a, const double* b,
                        int64_t n, O* dst) {
  switch (op) {
    case ArithOp::kAdd:
      FusedArithLoop<ArithOp::kAdd, O>(a, b, n, dst);
      break;
    case ArithOp::kSub:
      FusedArithLoop<ArithOp::kSub, O>(a, b, n, dst);
      break;
    case ArithOp::kMul:
      FusedArithLoop<ArithOp::kMul, O>(a, b, n, dst);
      break;
    case ArithOp::kDiv:
      FusedArithLoop<ArithOp::kDiv, O>(a, b, n, dst);
      break;
  }
}

}  // namespace

void ArithCombineNarrow(ArithOp op, const double* a, const double* b,
                        int64_t n, Column* out) {
  const int64_t base = out->length();
  out->Resize(base + n);
  switch (out->type()) {
    case DataType::kInt32:
      FusedArithDispatch<int32_t>(op, a, b, n,
                                  out->MutableData<int32_t>() + base);
      break;
    case DataType::kInt64:
      FusedArithDispatch<int64_t>(op, a, b, n,
                                  out->MutableData<int64_t>() + base);
      break;
    default:
      FusedArithDispatch<double>(op, a, b, n,
                                 out->MutableData<double>() + base);
      break;
  }
}

}  // namespace raw
