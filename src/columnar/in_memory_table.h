#ifndef RAW_COLUMNAR_IN_MEMORY_TABLE_H_
#define RAW_COLUMNAR_IN_MEMORY_TABLE_H_

#include <memory>
#include <vector>

#include "columnar/operator.h"

namespace raw {

/// A fully loaded columnar table — what a traditional column-store holds
/// after data loading (the paper's "DBMS" baseline), and the container the
/// bulk loader fills.
class InMemoryTable {
 public:
  explicit InMemoryTable(Schema schema);

  const Schema& schema() const { return schema_; }
  int64_t num_rows() const { return num_rows_; }

  const ColumnPtr& column(int i) const {
    return columns_[static_cast<size_t>(i)];
  }
  Column* mutable_column(int i) { return columns_[static_cast<size_t>(i)].get(); }

  /// Appends a batch whose schema must match.
  Status AppendBatch(const ColumnBatch& batch);

  /// Total value-buffer footprint.
  int64_t MemoryBytes() const;

  /// Creates a scan operator over [0, num_rows) producing batches of
  /// `batch_rows` with sequential row ids. The table must outlive the scan.
  /// `columns` restricts the scan to a subset (empty = all columns) — a
  /// loaded column-store never touches columns a query does not need.
  OperatorPtr CreateScan(int64_t batch_rows = kDefaultBatchRows,
                         std::vector<int> columns = {}) const;

 private:
  Schema schema_;
  std::vector<ColumnPtr> columns_;
  int64_t num_rows_ = 0;
};

/// Scan over an InMemoryTable (the "data already loaded" access path).
class InMemoryScanOperator : public Operator {
 public:
  /// `columns` empty selects all columns.
  InMemoryScanOperator(const InMemoryTable* table, int64_t batch_rows,
                       std::vector<int> columns);

  const Schema& output_schema() const override { return schema_; }
  Status Open() override;
  StatusOr<ColumnBatch> Next() override;
  std::string name() const override { return "InMemoryScan"; }

 private:
  const InMemoryTable* table_;
  int64_t batch_rows_;
  std::vector<int> columns_;
  Schema schema_;
  int64_t cursor_ = 0;
};

}  // namespace raw

#endif  // RAW_COLUMNAR_IN_MEMORY_TABLE_H_
