#include "columnar/project.h"

namespace raw {

ProjectOperator::ProjectOperator(OperatorPtr child, std::vector<ExprPtr> exprs,
                                 std::vector<std::string> names)
    : child_(std::move(child)),
      exprs_(std::move(exprs)),
      names_(std::move(names)) {}

Status ProjectOperator::Open() {
  RAW_RETURN_NOT_OK(child_->Open());
  if (exprs_.size() != names_.size()) {
    return Status::InvalidArgument("Project: exprs/names size mismatch");
  }
  Schema schema;
  for (size_t i = 0; i < exprs_.size(); ++i) {
    RAW_ASSIGN_OR_RETURN(DataType type,
                         exprs_[i]->ResultType(child_->output_schema()));
    schema.AddField(names_[i], type);
  }
  RAW_RETURN_NOT_OK(schema.Validate());
  output_schema_ = std::move(schema);
  return Status::OK();
}

StatusOr<ColumnBatch> ProjectOperator::Next() {
  ColumnBatch batch(child_->output_schema());
  while (true) {
    RAW_ASSIGN_OR_RETURN(batch, child_->Next());
    if (batch.end_of_stream()) return ColumnBatch::EndOfStream(output_schema_);
    if (!batch.empty()) break;  // skip zero-row data batches
  }
  ColumnBatch out(output_schema_);
  for (const ExprPtr& expr : exprs_) {
    RAW_ASSIGN_OR_RETURN(Column col, expr->Evaluate(batch));
    out.AddColumn(std::make_shared<Column>(std::move(col)));
  }
  out.SetNumRows(batch.num_rows());
  if (batch.has_row_ids()) out.SetRowIds(batch.row_ids());
  return out;
}

}  // namespace raw
