#include "columnar/hash_group_by.h"

#include <algorithm>
#include <numeric>

namespace raw {

HashGroupByOperator::HashGroupByOperator(OperatorPtr child,
                                         std::vector<int> key_columns,
                                         std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      key_columns_(std::move(key_columns)),
      aggs_(std::move(aggs)) {}

void HashGroupByOperator::SetParallel(ThreadPool* pool, int num_threads) {
  pool_ = pool;
  num_threads_ = std::max(num_threads, 1);
}

Status HashGroupByOperator::Open() {
  RAW_RETURN_NOT_OK(child_->Open());
  agg_input_types_.clear();  // Open() may run more than once before Next()
  const Schema& in = child_->output_schema();
  Schema schema;
  for (int k : key_columns_) {
    if (k < 0 || k >= in.num_fields()) {
      return Status::InvalidArgument("group-by key column out of range");
    }
    schema.AddField(in.field(k).name, in.field(k).type);
  }
  for (const AggSpec& spec : aggs_) {
    DataType input_type = DataType::kInt64;
    if (spec.kind != AggKind::kCount) {
      if (spec.input < 0 || spec.input >= in.num_fields()) {
        return Status::InvalidArgument("aggregate input column out of range");
      }
      input_type = in.field(spec.input).type;
    }
    agg_input_types_.push_back(input_type);
    RAW_ASSIGN_OR_RETURN(DataType out_type,
                         AggResultType(spec.kind, input_type));
    schema.AddField(spec.output_name.empty()
                        ? std::string(AggKindToString(spec.kind))
                        : spec.output_name,
                    out_type);
  }
  RAW_RETURN_NOT_OK(schema.Validate());
  output_schema_ = std::move(schema);
  return Status::OK();
}

namespace {
// Serializes the group key of row `r` into `buf` for exact group identity.
void EncodeKey(const ColumnBatch& batch, const std::vector<int>& keys,
               int64_t r, std::string* buf) {
  buf->clear();
  for (int k : keys) {
    const Column& col = *batch.column(k);
    switch (col.type()) {
      case DataType::kString: {
        const std::string& s = col.StringValue(r);
        uint32_t len = static_cast<uint32_t>(s.size());
        buf->append(reinterpret_cast<const char*>(&len), sizeof(len));
        buf->append(s);
        break;
      }
      case DataType::kBool: {
        char v = col.Value<bool>(r) ? 1 : 0;
        buf->push_back(v);
        break;
      }
      case DataType::kInt32: {
        int32_t v = col.Value<int32_t>(r);
        buf->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kInt64: {
        int64_t v = col.Value<int64_t>(r);
        buf->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kFloat32: {
        float v = col.Value<float>(r);
        buf->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kFloat64: {
        double v = col.Value<double>(r);
        buf->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
    }
  }
}
}  // namespace

// =============================================================================
// GroupByPartial
// =============================================================================

GroupByPartial::GroupByPartial(std::vector<int> key_columns,
                               std::vector<AggSpec> aggs,
                               std::vector<DataType> agg_input_types)
    : key_columns_(std::move(key_columns)),
      aggs_(std::move(aggs)),
      agg_input_types_(std::move(agg_input_types)) {}

void GroupByPartial::EncodeKeys(const ColumnBatch& batch,
                                const std::vector<int>& key_columns,
                                std::vector<std::string>* out) {
  out->resize(static_cast<size_t>(batch.num_rows()));
  for (int64_t r = 0; r < batch.num_rows(); ++r) {
    EncodeKey(batch, key_columns, r, &(*out)[static_cast<size_t>(r)]);
  }
}

size_t GroupByPartial::FindOrCreateGroup(const ColumnBatch& batch, int64_t row,
                                         int64_t seq, const std::string& key) {
  auto [it, inserted] = index_.try_emplace(key, groups_.size());
  if (inserted) {
    Group g;
    g.key = key;
    g.first_seen = seq;
    for (int k : key_columns_) {
      g.key_values.push_back(batch.column(k)->GetDatum(row));
    }
    for (size_t s = 0; s < aggs_.size(); ++s) {
      g.accs.emplace_back(aggs_[s].kind, agg_input_types_[s]);
    }
    groups_.push_back(std::move(g));
  }
  return it->second;
}

template <AggKind K>
void GroupByPartial::AccumulateSpecTyped(const Column& col, size_t s) {
  const size_t n = rows_scratch_.size();
  switch (col.type()) {
    case DataType::kInt32: {
      const int32_t* v = col.Data<int32_t>();
      for (size_t j = 0; j < n; ++j) {
        groups_[gidx_scratch_[j]].accs[s].UpdateIntT<K>(v[rows_scratch_[j]]);
      }
      break;
    }
    case DataType::kInt64: {
      const int64_t* v = col.Data<int64_t>();
      for (size_t j = 0; j < n; ++j) {
        groups_[gidx_scratch_[j]].accs[s].UpdateIntT<K>(v[rows_scratch_[j]]);
      }
      break;
    }
    case DataType::kFloat32: {
      const float* v = col.Data<float>();
      for (size_t j = 0; j < n; ++j) {
        groups_[gidx_scratch_[j]].accs[s].UpdateNumericT<K>(
            static_cast<double>(v[rows_scratch_[j]]));
      }
      break;
    }
    case DataType::kFloat64: {
      const double* v = col.Data<double>();
      for (size_t j = 0; j < n; ++j) {
        groups_[gidx_scratch_[j]].accs[s].UpdateNumericT<K>(
            v[rows_scratch_[j]]);
      }
      break;
    }
    default:
      break;  // guarded in AccumulateSpec
  }
}

Status GroupByPartial::AccumulateSpec(const ColumnBatch& batch, size_t s) {
  const AggSpec& spec = aggs_[s];
  if (spec.kind == AggKind::kCount) {
    for (size_t j = 0; j < rows_scratch_.size(); ++j) {
      groups_[gidx_scratch_[j]].accs[s].UpdateCount();
    }
    return Status::OK();
  }
  const Column& col = *batch.column(spec.input);
  if (col.type() == DataType::kBool || col.type() == DataType::kString) {
    return Status::InvalidArgument("cannot aggregate non-numeric column");
  }
  switch (spec.kind) {
    case AggKind::kSum:
      AccumulateSpecTyped<AggKind::kSum>(col, s);
      break;
    case AggKind::kAvg:
      AccumulateSpecTyped<AggKind::kAvg>(col, s);
      break;
    case AggKind::kMax:
      AccumulateSpecTyped<AggKind::kMax>(col, s);
      break;
    case AggKind::kMin:
      AccumulateSpecTyped<AggKind::kMin>(col, s);
      break;
    case AggKind::kCount:
      break;  // handled above
  }
  return Status::OK();
}

void GroupByPartial::HashKeys(const std::vector<std::string>& keys,
                              std::vector<uint64_t>* out) {
  const std::hash<std::string> hasher;
  out->resize(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    (*out)[i] = hasher(keys[i]);
  }
}

Status GroupByPartial::Absorb(const ColumnBatch& batch, int64_t seq_base,
                              const std::vector<std::string>* precomputed_keys,
                              const std::vector<uint64_t>* precomputed_hashes,
                              uint64_t partition, uint64_t num_partitions) {
  if (precomputed_keys != nullptr &&
      precomputed_keys->size() != static_cast<size_t>(batch.num_rows())) {
    return Status::InvalidArgument("precomputed keys do not match batch rows");
  }
  if (precomputed_hashes != nullptr &&
      precomputed_hashes->size() != static_cast<size_t>(batch.num_rows())) {
    return Status::InvalidArgument(
        "precomputed hashes do not match batch rows");
  }
  // Phase 1: group identity per owned row (stream order, so first-seen
  // sequences and per-group accumulation order match the serial path).
  rows_scratch_.clear();
  gidx_scratch_.clear();
  const std::hash<std::string> hasher;
  std::string scratch;
  for (int64_t r = 0; r < batch.num_rows(); ++r) {
    const std::string* key = nullptr;
    if (num_partitions > 1) {
      // Partition test first: non-owning workers skip foreign rows with a
      // single compare when hashes were precomputed.
      uint64_t hash;
      if (precomputed_hashes != nullptr) {
        hash = (*precomputed_hashes)[static_cast<size_t>(r)];
      } else if (precomputed_keys != nullptr) {
        hash = hasher((*precomputed_keys)[static_cast<size_t>(r)]);
      } else {
        EncodeKey(batch, key_columns_, r, &scratch);
        key = &scratch;
        hash = hasher(scratch);
      }
      if (hash % num_partitions != partition) continue;
    }
    if (key == nullptr) {
      if (precomputed_keys != nullptr) {
        key = &(*precomputed_keys)[static_cast<size_t>(r)];
      } else {
        EncodeKey(batch, key_columns_, r, &scratch);
        key = &scratch;
      }
    }
    size_t g = FindOrCreateGroup(batch, r, seq_base + r, *key);
    rows_scratch_.push_back(static_cast<int32_t>(r));
    gidx_scratch_.push_back(static_cast<uint32_t>(g));
  }
  if (rows_scratch_.empty()) return Status::OK();
  // Phase 2: per aggregate, one (kind, type)-hoisted pass over the staged
  // rows. Each accumulator still sees its rows in stream order, so results
  // are bit-for-bit those of the old row-at-a-time absorption.
  for (size_t s = 0; s < aggs_.size(); ++s) {
    RAW_RETURN_NOT_OK(AccumulateSpec(batch, s));
  }
  return Status::OK();
}

Status GroupByPartial::MergeFrom(const GroupByPartial& other) {
  if (other.key_columns_ != key_columns_ ||
      other.agg_input_types_ != agg_input_types_ ||
      other.aggs_.size() != aggs_.size()) {
    return Status::InvalidArgument(
        "cannot merge group-by partials with different shapes");
  }
  for (const Group& og : other.groups_) {  // insertion == first-seen order
    auto [it, inserted] = index_.try_emplace(og.key, groups_.size());
    if (inserted) {
      groups_.push_back(og);
      continue;
    }
    Group& g = groups_[it->second];
    g.first_seen = std::min(g.first_seen, og.first_seen);
    for (size_t s = 0; s < aggs_.size(); ++s) {
      g.accs[s].Merge(og.accs[s]);
    }
  }
  return Status::OK();
}

StatusOr<std::vector<ColumnPtr>> GroupByPartial::Finalize(
    const Schema& output_schema) const {
  const size_t num_keys = key_columns_.size();
  if (output_schema.num_fields() !=
      static_cast<int>(num_keys + aggs_.size())) {
    return Status::InvalidArgument("group-by output schema shape mismatch");
  }
  std::vector<size_t> order(groups_.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return groups_[a].first_seen < groups_[b].first_seen;
  });
  std::vector<ColumnPtr> columns;
  for (int c = 0; c < output_schema.num_fields(); ++c) {
    columns.push_back(std::make_shared<Column>(output_schema.field(c).type));
  }
  for (size_t idx : order) {
    const Group& g = groups_[idx];
    for (size_t k = 0; k < num_keys; ++k) {
      columns[k]->AppendDatum(g.key_values[k]);
    }
    for (size_t s = 0; s < aggs_.size(); ++s) {
      columns[num_keys + s]->AppendDatum(g.accs[s].Finalize());
    }
  }
  return columns;
}

// =============================================================================
// HashGroupByOperator
// =============================================================================

Status HashGroupByOperator::ConsumeChild() {
  GroupByPartial partial(key_columns_, aggs_, agg_input_types_);
  int64_t seq = 0;
  while (true) {
    RAW_ASSIGN_OR_RETURN(ColumnBatch batch, child_->Next());
    if (batch.end_of_stream()) break;
    if (batch.empty()) continue;
    RAW_RETURN_NOT_OK(partial.Absorb(batch, seq));
    seq += batch.num_rows();
  }
  RAW_ASSIGN_OR_RETURN(result_columns_, partial.Finalize(output_schema_));
  num_groups_ = partial.num_groups();
  return Status::OK();
}

Status HashGroupByOperator::ConsumeChildParallel() {
  const uint64_t W = static_cast<uint64_t>(num_threads_);
  std::vector<GroupByPartial> partials(
      static_cast<size_t>(W),
      GroupByPartial(key_columns_, aggs_, agg_input_types_));

  // Stream the child in bounded chunks of batches — memory stays
  // O(chunk + groups) like the serial path, not O(table). Per chunk:
  // encode + hash keys (parallel over batches), then absorb (parallel over
  // key partitions: every row of a group lands in the same partial, and the
  // chunk barrier keeps each partial's absorption in stream order — the
  // determinism contract).
  const size_t chunk_batches = std::max<size_t>(4 * W, 8);
  std::vector<ColumnBatch> chunk;
  std::vector<int64_t> seq_base;
  std::vector<std::vector<std::string>> keys;
  std::vector<std::vector<uint64_t>> hashes;
  int64_t seq = 0;

  auto flush_chunk = [&]() -> Status {
    if (chunk.empty()) return Status::OK();
    keys.assign(chunk.size(), {});
    hashes.assign(chunk.size(), {});
    RAW_RETURN_NOT_OK(pool_->ParallelFor(
        static_cast<int64_t>(chunk.size()), num_threads_, [&](int64_t b) {
          const size_t i = static_cast<size_t>(b);
          GroupByPartial::EncodeKeys(chunk[i], key_columns_, &keys[i]);
          GroupByPartial::HashKeys(keys[i], &hashes[i]);
          return Status::OK();
        }));
    RAW_RETURN_NOT_OK(pool_->ParallelFor(
        static_cast<int64_t>(W), num_threads_, [&](int64_t w) {
          for (size_t b = 0; b < chunk.size(); ++b) {
            RAW_RETURN_NOT_OK(partials[static_cast<size_t>(w)].Absorb(
                chunk[b], seq_base[b], &keys[b], &hashes[b],
                static_cast<uint64_t>(w), W));
          }
          return Status::OK();
        }));
    chunk.clear();
    seq_base.clear();
    return Status::OK();
  };

  while (true) {
    RAW_ASSIGN_OR_RETURN(ColumnBatch batch, child_->Next());
    if (batch.end_of_stream()) break;
    if (batch.empty()) continue;
    seq_base.push_back(seq);
    seq += batch.num_rows();
    chunk.push_back(std::move(batch));
    if (chunk.size() >= chunk_batches) RAW_RETURN_NOT_OK(flush_chunk());
  }
  RAW_RETURN_NOT_OK(flush_chunk());

  // Merge — key sets are disjoint across partials, so this is pure
  // concatenation; Finalize re-establishes stream order.
  GroupByPartial& final_partial = partials[0];
  for (size_t w = 1; w < partials.size(); ++w) {
    RAW_RETURN_NOT_OK(final_partial.MergeFrom(partials[w]));
  }
  RAW_ASSIGN_OR_RETURN(result_columns_, final_partial.Finalize(output_schema_));
  num_groups_ = final_partial.num_groups();
  return Status::OK();
}

StatusOr<ColumnBatch> HashGroupByOperator::Next() {
  if (!consumed_) {
    consumed_ = true;
    if (pool_ != nullptr && num_threads_ > 1) {
      RAW_RETURN_NOT_OK(ConsumeChildParallel());
    } else {
      RAW_RETURN_NOT_OK(ConsumeChild());
    }
  }
  if (emit_cursor_ >= num_groups_) {
    return ColumnBatch::EndOfStream(output_schema_);
  }
  int64_t take = std::min(kDefaultBatchRows, num_groups_ - emit_cursor_);
  ColumnBatch out(output_schema_);
  std::vector<int64_t> idx(static_cast<size_t>(take));
  for (int64_t i = 0; i < take; ++i) {
    idx[static_cast<size_t>(i)] = emit_cursor_ + i;
  }
  for (const ColumnPtr& col : result_columns_) {
    out.AddColumn(std::make_shared<Column>(col->Gather(idx.data(), take)));
  }
  out.SetNumRows(take);
  emit_cursor_ += take;
  return out;
}

}  // namespace raw
