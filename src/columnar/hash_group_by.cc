#include "columnar/hash_group_by.h"

#include <unordered_map>

#include "common/hash.h"

namespace raw {

HashGroupByOperator::HashGroupByOperator(OperatorPtr child,
                                         std::vector<int> key_columns,
                                         std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      key_columns_(std::move(key_columns)),
      aggs_(std::move(aggs)) {}

Status HashGroupByOperator::Open() {
  RAW_RETURN_NOT_OK(child_->Open());
  agg_input_types_.clear();  // Open() may run more than once before Next()
  const Schema& in = child_->output_schema();
  Schema schema;
  for (int k : key_columns_) {
    if (k < 0 || k >= in.num_fields()) {
      return Status::InvalidArgument("group-by key column out of range");
    }
    schema.AddField(in.field(k).name, in.field(k).type);
  }
  for (const AggSpec& spec : aggs_) {
    DataType input_type = DataType::kInt64;
    if (spec.kind != AggKind::kCount) {
      if (spec.input < 0 || spec.input >= in.num_fields()) {
        return Status::InvalidArgument("aggregate input column out of range");
      }
      input_type = in.field(spec.input).type;
    }
    agg_input_types_.push_back(input_type);
    RAW_ASSIGN_OR_RETURN(DataType out_type,
                         AggResultType(spec.kind, input_type));
    schema.AddField(spec.output_name.empty()
                        ? std::string(AggKindToString(spec.kind))
                        : spec.output_name,
                    out_type);
  }
  RAW_RETURN_NOT_OK(schema.Validate());
  output_schema_ = std::move(schema);
  return Status::OK();
}

namespace {
// Serializes the group key of row `r` into `buf` for exact group identity.
void EncodeKey(const ColumnBatch& batch, const std::vector<int>& keys,
               int64_t r, std::string* buf) {
  buf->clear();
  for (int k : keys) {
    const Column& col = *batch.column(k);
    switch (col.type()) {
      case DataType::kString: {
        const std::string& s = col.StringValue(r);
        uint32_t len = static_cast<uint32_t>(s.size());
        buf->append(reinterpret_cast<const char*>(&len), sizeof(len));
        buf->append(s);
        break;
      }
      case DataType::kBool: {
        char v = col.Value<bool>(r) ? 1 : 0;
        buf->push_back(v);
        break;
      }
      case DataType::kInt32: {
        int32_t v = col.Value<int32_t>(r);
        buf->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kInt64: {
        int64_t v = col.Value<int64_t>(r);
        buf->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kFloat32: {
        float v = col.Value<float>(r);
        buf->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kFloat64: {
        double v = col.Value<double>(r);
        buf->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
    }
  }
}
}  // namespace

Status HashGroupByOperator::ConsumeChild() {
  struct Group {
    std::vector<Datum> key_values;
    std::vector<AggAccumulator> accs;
  };
  std::unordered_map<std::string, size_t> index;
  std::vector<Group> groups;
  std::string key_buf;

  while (true) {
    RAW_ASSIGN_OR_RETURN(ColumnBatch batch, child_->Next());
    if (batch.empty()) break;
    for (int64_t r = 0; r < batch.num_rows(); ++r) {
      EncodeKey(batch, key_columns_, r, &key_buf);
      auto [it, inserted] = index.try_emplace(key_buf, groups.size());
      if (inserted) {
        Group g;
        for (int k : key_columns_) {
          g.key_values.push_back(batch.column(k)->GetDatum(r));
        }
        for (size_t s = 0; s < aggs_.size(); ++s) {
          g.accs.emplace_back(aggs_[s].kind, agg_input_types_[s]);
        }
        groups.push_back(std::move(g));
      }
      Group& g = groups[it->second];
      for (size_t s = 0; s < aggs_.size(); ++s) {
        const AggSpec& spec = aggs_[s];
        if (spec.kind == AggKind::kCount) {
          g.accs[s].UpdateCount();
          continue;
        }
        const Column& col = *batch.column(spec.input);
        switch (col.type()) {
          case DataType::kInt32:
            g.accs[s].UpdateInt(col.Value<int32_t>(r));
            break;
          case DataType::kInt64:
            g.accs[s].UpdateInt(col.Value<int64_t>(r));
            break;
          case DataType::kFloat32:
            g.accs[s].UpdateNumeric(static_cast<double>(col.Value<float>(r)));
            break;
          case DataType::kFloat64:
            g.accs[s].UpdateNumeric(col.Value<double>(r));
            break;
          default:
            return Status::InvalidArgument(
                "cannot aggregate non-numeric column");
        }
      }
    }
  }

  // Stage results columnar.
  for (int c = 0; c < output_schema_.num_fields(); ++c) {
    result_columns_.push_back(
        std::make_shared<Column>(output_schema_.field(c).type));
  }
  const size_t num_keys = key_columns_.size();
  for (const Group& g : groups) {
    for (size_t k = 0; k < num_keys; ++k) {
      result_columns_[k]->AppendDatum(g.key_values[k]);
    }
    for (size_t s = 0; s < aggs_.size(); ++s) {
      result_columns_[num_keys + s]->AppendDatum(g.accs[s].Finalize());
    }
  }
  num_groups_ = static_cast<int64_t>(groups.size());
  return Status::OK();
}

StatusOr<ColumnBatch> HashGroupByOperator::Next() {
  if (!consumed_) {
    consumed_ = true;
    RAW_RETURN_NOT_OK(ConsumeChild());
  }
  if (emit_cursor_ >= num_groups_) return ColumnBatch(output_schema_);
  int64_t take = std::min(kDefaultBatchRows, num_groups_ - emit_cursor_);
  ColumnBatch out(output_schema_);
  std::vector<int64_t> idx(static_cast<size_t>(take));
  for (int64_t i = 0; i < take; ++i) idx[static_cast<size_t>(i)] = emit_cursor_ + i;
  for (const ColumnPtr& col : result_columns_) {
    out.AddColumn(std::make_shared<Column>(col->Gather(idx.data(), take)));
  }
  out.SetNumRows(take);
  emit_cursor_ += take;
  return out;
}

}  // namespace raw
