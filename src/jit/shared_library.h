#ifndef RAW_JIT_SHARED_LIBRARY_H_
#define RAW_JIT_SHARED_LIBRARY_H_

#include <memory>
#include <string>

#include "common/macros.h"
#include "common/status.h"
#include "common/statusor.h"

namespace raw {

/// RAII wrapper around a dlopen()ed shared object holding a generated scan
/// kernel. The library stays mapped for the wrapper's lifetime (the template
/// cache keeps them alive across queries).
class SharedLibrary {
 public:
  static StatusOr<std::unique_ptr<SharedLibrary>> Load(
      const std::string& path);

  ~SharedLibrary();
  RAW_DISALLOW_COPY_AND_ASSIGN(SharedLibrary);

  /// Resolves `symbol` or returns NotFound.
  StatusOr<void*> Symbol(const std::string& symbol) const;

  const std::string& path() const { return path_; }

 private:
  SharedLibrary(void* handle, std::string path)
      : handle_(handle), path_(std::move(path)) {}

  void* handle_;
  std::string path_;
};

}  // namespace raw

#endif  // RAW_JIT_SHARED_LIBRARY_H_
