#include "jit/shared_library.h"

#include <dlfcn.h>

namespace raw {

StatusOr<std::unique_ptr<SharedLibrary>> SharedLibrary::Load(
    const std::string& path) {
  void* handle = ::dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    const char* err = ::dlerror();
    return Status::Internal("dlopen failed for '" + path +
                            "': " + (err != nullptr ? err : "unknown"));
  }
  return std::unique_ptr<SharedLibrary>(new SharedLibrary(handle, path));
}

SharedLibrary::~SharedLibrary() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

StatusOr<void*> SharedLibrary::Symbol(const std::string& symbol) const {
  ::dlerror();  // clear
  void* addr = ::dlsym(handle_, symbol.c_str());
  if (addr == nullptr) {
    const char* err = ::dlerror();
    return Status::NotFound("symbol '" + symbol + "' not found in '" + path_ +
                            "'" + (err != nullptr ? std::string(": ") + err : ""));
  }
  return addr;
}

}  // namespace raw
