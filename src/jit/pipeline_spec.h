#ifndef RAW_JIT_PIPELINE_SPEC_H_
#define RAW_JIT_PIPELINE_SPEC_H_

#include <string>
#include <vector>

#include "columnar/aggregate.h"
#include "columnar/column.h"
#include "columnar/expression.h"
#include "common/datum.h"
#include "common/schema.h"
#include "jit/access_path_spec.h"

namespace raw {

/// What a fused pipeline kernel emits.
enum class PipelineOutputMode : uint8_t {
  /// Filtered + projected rows (the kernel loops internally until its output
  /// buffers fill or the input is exhausted, so 0 rows produced still means
  /// end of stream).
  kProject = 0,
  /// One aggregate partial per morsel: the kernel consumes its entire input
  /// in a single invocation and leaves AggAccumulator-compatible state in
  /// the RawJitContext agg arrays.
  kAggregate = 1,
};

std::string_view PipelineOutputModeToString(PipelineOutputMode mode);

/// One column a fused kernel consumes. Dense inputs arrive through
/// ctx->in_dense (already-converted full columns from the shred cache);
/// file inputs are read by the embedded scan plug-in. The j-th non-dense
/// input corresponds to scan.outputs[j].
struct PipelineInput {
  int column = 0;  // table column index (CSV/binary) or REF branch index
  DataType type = DataType::kInt32;
  bool dense = false;
};

/// `inputs[input] op literal`, with the literal already canonicalized to the
/// column's comparison type (exactly the coercion the interpreted
/// const-compare kernel applies, so fused and interpreted filters agree bit
/// for bit).
struct PipelinePredicate {
  int input = 0;
  CompareOp op = CompareOp::kLt;
  Datum literal;
};

/// `kind` over `inputs[input]`; input == -1 for COUNT(*).
struct PipelineAgg {
  AggKind kind = AggKind::kCount;
  int input = -1;
};

/// Complete description of a fused scan→filter→project→aggregate kernel —
/// the pipeline-fusion generalization of AccessPathSpec. Everything the
/// generated loop hard-codes is captured here, so equal specs are
/// interchangeable compiled artifacts (the template-cache contract).
struct PipelineSpec {
  /// The embedded scan access path. Its outputs are exactly the non-dense
  /// inputs, in input order.
  AccessPathSpec scan;

  /// All columns the pipeline touches, ascending by `column`.
  std::vector<PipelineInput> inputs;

  /// Conjunctive filters in evaluation order: dense predicates first (they
  /// run in the vectorizable mask prepass), then file-column predicates in
  /// input order (each tested right after its column is parsed, skipping the
  /// remaining parse work for failing rows).
  std::vector<PipelinePredicate> predicates;

  PipelineOutputMode mode = PipelineOutputMode::kProject;

  /// kProject: input indices to emit, in output order.
  std::vector<int> projections;

  /// kAggregate: the aggregates to fold.
  std::vector<PipelineAgg> aggs;

  /// Stable identity for the template cache. Namespaced ("pipe1|...") so
  /// fused kernels never collide with plain scan kernels; literals are
  /// encoded with exact bit patterns.
  std::string CacheKey() const;

  std::string ToString() const { return CacheKey(); }
};

/// Number of partial-state columns each aggregate occupies in a fused
/// partial row: count (int64), dacc (float64), iacc (int64), init (int64).
inline constexpr int kFusedAggStateCols = 4;

/// Schema of the partial rows a fused aggregate kernel emits (one row per
/// morsel): kFusedAggStateCols fields per aggregate.
Schema FusedAggPartialSchema(const std::vector<PipelineAgg>& aggs);

/// Planner → driver request to build a fused pipeline over one table scan.
/// The driver embeds its scan access path, compiles through the shared
/// template cache, and returns the scan-level operator (kProject: filtered
/// projected rows; kAggregate: one partial row per morsel, in morsel order).
struct FusedPipelineRequest {
  std::vector<PipelineInput> inputs;
  /// Parallel to `inputs`: the cached full column for dense inputs, null
  /// otherwise.
  std::vector<ColumnPtr> dense_columns;
  std::vector<PipelinePredicate> predicates;
  PipelineOutputMode mode = PipelineOutputMode::kProject;
  std::vector<int> projections;
  std::vector<PipelineAgg> aggs;
  /// kProject: the qualified output schema (parallel to `projections`).
  /// kAggregate: ignored — the operator emits FusedAggPartialSchema(aggs).
  Schema output_schema;
};

}  // namespace raw

#endif  // RAW_JIT_PIPELINE_SPEC_H_
