#include "jit/pipeline_spec.h"

#include <cstring>
#include <sstream>

namespace raw {

std::string_view PipelineOutputModeToString(PipelineOutputMode mode) {
  switch (mode) {
    case PipelineOutputMode::kProject:
      return "project";
    case PipelineOutputMode::kAggregate:
      return "aggregate";
  }
  return "?";
}

namespace {

/// Exact-bit literal encoding: two float literals that print the same but
/// differ in the last ulp must not share a compiled kernel.
void AppendLiteralKey(std::ostringstream& os, const Datum& lit) {
  switch (lit.type()) {
    case DataType::kInt32:
      os << "i32:" << lit.int32_value();
      return;
    case DataType::kInt64:
      os << "i64:" << lit.int64_value();
      return;
    case DataType::kFloat32: {
      float v = lit.float32_value();
      uint32_t bits;
      std::memcpy(&bits, &v, sizeof(bits));
      os << "f32:" << std::hex << bits << std::dec;
      return;
    }
    case DataType::kFloat64: {
      double v = lit.float64_value();
      uint64_t bits;
      std::memcpy(&bits, &v, sizeof(bits));
      os << "f64:" << std::hex << bits << std::dec;
      return;
    }
    default:
      os << "?:" << lit.ToString();
      return;
  }
}

}  // namespace

std::string PipelineSpec::CacheKey() const {
  std::ostringstream os;
  os << "pipe1|" << scan.CacheKey() << "|in=";
  for (const PipelineInput& in : inputs) {
    os << in.column << ':' << DataTypeToString(in.type)
       << (in.dense ? ":d" : ":f") << ',';
  }
  os << "|pred=";
  for (const PipelinePredicate& p : predicates) {
    os << p.input << ':' << CompareOpToString(p.op) << ':';
    AppendLiteralKey(os, p.literal);
    os << ',';
  }
  os << "|mode=" << PipelineOutputModeToString(mode) << "|proj=";
  for (int p : projections) os << p << ',';
  os << "|agg=";
  for (const PipelineAgg& a : aggs) {
    os << AggKindToString(a.kind) << ':' << a.input << ',';
  }
  return os.str();
}

Schema FusedAggPartialSchema(const std::vector<PipelineAgg>& aggs) {
  Schema schema;
  for (size_t s = 0; s < aggs.size(); ++s) {
    std::string base = "agg" + std::to_string(s);
    schema.AddField(base + "_count", DataType::kInt64);
    schema.AddField(base + "_dacc", DataType::kFloat64);
    schema.AddField(base + "_iacc", DataType::kInt64);
    schema.AddField(base + "_init", DataType::kInt64);
  }
  return schema;
}

}  // namespace raw
