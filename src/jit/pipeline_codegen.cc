#include "jit/pipeline_codegen.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <sstream>

#include "format/format_driver.h"
#include "jit/codegen.h"
#include "jit/source_builder.h"

namespace raw {

using jit_internal::CTypeName;
using jit_internal::EmitCsvParseField;
using jit_internal::EmitCsvSkipFields;

namespace {

std::string_view CompareOpCpp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
  }
  return "?";
}

/// Spells a canonicalized literal as a C++ constant with the exact bit
/// pattern the interpreted compare kernel uses (hexfloat round-trips floats
/// exactly; decimal would not).
StatusOr<std::string> LiteralCpp(const Datum& lit) {
  switch (lit.type()) {
    case DataType::kInt32:
      return std::to_string(lit.int32_value());
    case DataType::kInt64: {
      int64_t v = lit.int64_value();
      if (v == INT64_MIN) return std::string("(-9223372036854775807ll - 1)");
      return std::to_string(v) + "ll";
    }
    case DataType::kFloat32: {
      std::ostringstream os;
      os << std::hexfloat << static_cast<double>(lit.float32_value()) << "f";
      return os.str();
    }
    case DataType::kFloat64: {
      std::ostringstream os;
      os << std::hexfloat << lit.float64_value();
      return os.str();
    }
    default:
      return Status::InvalidArgument(
          "fused pipelines only compare numeric literals");
  }
}

DataType ExpectedLiteralType(DataType column_type) {
  switch (column_type) {
    case DataType::kInt32:
      return DataType::kInt32;
    case DataType::kInt64:
      return DataType::kInt64;
    case DataType::kFloat32:
      return DataType::kFloat32;
    default:
      return DataType::kFloat64;
  }
}

bool IsFusableType(DataType type) {
  return type == DataType::kInt32 || type == DataType::kInt64 ||
         type == DataType::kFloat32 || type == DataType::kFloat64;
}

bool IsIntType(DataType type) {
  return type == DataType::kInt32 || type == DataType::kInt64;
}

/// Derived layout shared by every format generator.
struct PipelineLayout {
  std::vector<int> file_rank;  // per input: scan output index, or -1 (dense)
  std::vector<const PipelinePredicate*> dense_preds;
  // Per input: predicates on that (file) input, in spec order.
  std::vector<std::vector<const PipelinePredicate*>> file_preds;
  std::set<int> dense_value_inputs;  // dense inputs read in the main loop
};

Status ValidateAndLayOut(const PipelineSpec& spec, PipelineLayout* out) {
  if (spec.inputs.empty()) {
    return Status::InvalidArgument("fused pipeline needs at least one input");
  }
  out->file_rank.assign(spec.inputs.size(), -1);
  out->file_preds.assign(spec.inputs.size(), {});
  int rank = 0;
  for (size_t k = 0; k < spec.inputs.size(); ++k) {
    const PipelineInput& in = spec.inputs[k];
    if (!IsFusableType(in.type)) {
      return Status::InvalidArgument(
          "fused pipelines handle numeric fixed-width columns only");
    }
    if (!in.dense) {
      if (rank >= static_cast<int>(spec.scan.outputs.size()) ||
          spec.scan.outputs[static_cast<size_t>(rank)].column != in.column ||
          spec.scan.outputs[static_cast<size_t>(rank)].type != in.type) {
        return Status::InvalidArgument(
            "fused pipeline scan outputs must equal the non-dense inputs");
      }
      out->file_rank[k] = rank++;
    }
  }
  if (rank == 0) {
    return Status::InvalidArgument(
        "fused pipeline needs at least one file-read input");
  }
  if (rank != static_cast<int>(spec.scan.outputs.size())) {
    return Status::InvalidArgument(
        "fused pipeline scan outputs must equal the non-dense inputs");
  }
  for (const PipelinePredicate& p : spec.predicates) {
    if (p.input < 0 || p.input >= static_cast<int>(spec.inputs.size())) {
      return Status::InvalidArgument("fused predicate input out of range");
    }
    const PipelineInput& in = spec.inputs[static_cast<size_t>(p.input)];
    if (p.literal.type() != ExpectedLiteralType(in.type)) {
      return Status::InvalidArgument(
          "fused predicate literal not canonicalized to the column type");
    }
    if (in.dense) {
      out->dense_preds.push_back(&p);
    } else {
      out->file_preds[static_cast<size_t>(p.input)].push_back(&p);
    }
  }
  auto note_value_input = [&](int k) {
    if (spec.inputs[static_cast<size_t>(k)].dense) {
      out->dense_value_inputs.insert(k);
    }
  };
  switch (spec.mode) {
    case PipelineOutputMode::kProject:
      if (spec.projections.empty()) {
        return Status::InvalidArgument("fused projection list is empty");
      }
      if (!spec.aggs.empty()) {
        return Status::InvalidArgument(
            "project-mode pipeline cannot carry aggregates");
      }
      for (int m : spec.projections) {
        if (m < 0 || m >= static_cast<int>(spec.inputs.size())) {
          return Status::InvalidArgument("fused projection out of range");
        }
        note_value_input(m);
      }
      break;
    case PipelineOutputMode::kAggregate:
      if (spec.aggs.empty()) {
        return Status::InvalidArgument("fused aggregate list is empty");
      }
      for (const PipelineAgg& a : spec.aggs) {
        if (a.kind == AggKind::kCount) {
          if (a.input >= 0) note_value_input(a.input);
          continue;
        }
        if (a.input < 0 ||
            a.input >= static_cast<int>(spec.inputs.size())) {
          return Status::InvalidArgument("fused aggregate input out of range");
        }
        note_value_input(a.input);
      }
      break;
  }
  return Status::OK();
}

void EmitPrelude(SourceBuilder* src, const PipelineSpec& spec,
                 std::string_view plugin) {
  src->Line("// Generated by RAW JIT pipeline-fusion compiler (" +
            std::string(plugin) + " plug-in).");
  src->Line("// spec: " + spec.CacheKey());
  src->Line("#include <stdint.h>");
  src->Line("#include <string.h>");
  src->Line("#include <charconv>");
  src->Line("#include \"jit/jit_abi.h\"");
  src->Blank();
}

/// Emits the dense-predicate mask body once; callers wrap it in the scalar
/// and AVX2-target copies. `row_expr` maps (base, t) to the dense columns'
/// row index and may reference `ctx`.
void EmitMaskBody(SourceBuilder* src, const PipelineSpec& spec,
                  const PipelineLayout& lay, const std::string& row_expr) {
  src->Line("uint8_t* const m = ctx->sel_mask;");
  std::set<int> bound;
  for (const PipelinePredicate* p : lay.dense_preds) bound.insert(p->input);
  for (int k : bound) {
    std::string t(CTypeName(spec.inputs[static_cast<size_t>(k)].type));
    src->Line("const " + t + "* const d" + std::to_string(k) + " = (const " +
              t + "*)ctx->in_dense[" + std::to_string(k) + "];");
  }
  src->Open("for (int64_t t = 0; t < n; ++t) {");
  src->Line("const int64_t r = " + row_expr + ";");
  src->Line("uint8_t keep = 1;");
  for (const PipelinePredicate* p : lay.dense_preds) {
    std::string lit = LiteralCpp(p->literal).value();
    src->Line("keep &= (uint8_t)(d" + std::to_string(p->input) + "[r] " +
              std::string(CompareOpCpp(p->op)) + " " + lit + ");");
  }
  src->Line("m[t] = keep;");
  src->Close();
}

/// Emits the scalar + AVX2 mask functions and the runtime dispatcher. The
/// two copies share one body with exact typed compares, so whichever the CPU
/// picks produces the same mask bit for bit; RAW_KERNELS (ctx->kernel_tier)
/// can force the scalar copy.
void EmitMaskFunctions(SourceBuilder* src, const PipelineSpec& spec,
                       const PipelineLayout& lay, const std::string& row_expr) {
  src->Open(
      "static void raw_eval_mask_scalar(const RawJitContext* ctx, int64_t "
      "base, int64_t n) {");
  EmitMaskBody(src, spec, lay, row_expr);
  src->Close();
  src->Blank();
  src->Line("#if defined(__x86_64__) || defined(__i386__)");
  src->Open(
      "__attribute__((target(\"avx2\"))) static void "
      "raw_eval_mask_avx2(const RawJitContext* ctx, int64_t base, int64_t n) "
      "{");
  EmitMaskBody(src, spec, lay, row_expr);
  src->Close();
  src->Line("#endif");
  src->Blank();
  src->Line(
      "typedef void (*RawMaskFn)(const RawJitContext*, int64_t, int64_t);");
  src->Open("static RawMaskFn raw_resolve_mask(const RawJitContext* ctx) {");
  src->Line("#if defined(__x86_64__) || defined(__i386__)");
  src->Line(
      "if (ctx->kernel_tier >= 3 && __builtin_cpu_supports(\"avx2\")) return "
      "&raw_eval_mask_avx2;");
  src->Line("#endif");
  src->Line("(void)ctx;");
  src->Line("return &raw_eval_mask_scalar;");
  src->Close();
  src->Blank();
}

/// Typed bindings for dense columns the main loop reads (aggregate inputs /
/// projections living in the shred cache).
void EmitDenseValueBindings(SourceBuilder* src, const PipelineSpec& spec,
                            const PipelineLayout& lay) {
  for (int k : lay.dense_value_inputs) {
    std::string t(CTypeName(spec.inputs[static_cast<size_t>(k)].type));
    src->Line("const " + t + "* const d" + std::to_string(k) + " = (const " +
              t + "*)ctx->in_dense[" + std::to_string(k) + "];");
  }
}

void EmitAggLoads(SourceBuilder* src, const PipelineSpec& spec) {
  for (size_t s = 0; s < spec.aggs.size(); ++s) {
    std::string i = std::to_string(s);
    src->Line("int64_t acc_cnt_" + i + " = ctx->agg_count[" + i + "];");
    src->Line("double acc_d_" + i + " = ctx->agg_dacc[" + i + "];");
    src->Line("int64_t acc_i_" + i + " = ctx->agg_iacc[" + i + "];");
    src->Line("int64_t acc_b_" + i + " = (int64_t)ctx->agg_init[" + i + "];");
  }
}

void EmitAggStores(SourceBuilder* src, const PipelineSpec& spec) {
  for (size_t s = 0; s < spec.aggs.size(); ++s) {
    std::string i = std::to_string(s);
    src->Line("ctx->agg_count[" + i + "] = acc_cnt_" + i + ";");
    src->Line("ctx->agg_dacc[" + i + "] = acc_d_" + i + ";");
    src->Line("ctx->agg_iacc[" + i + "] = acc_i_" + i + ";");
    src->Line("ctx->agg_init[" + i + "] = (uint8_t)acc_b_" + i + ";");
  }
}

/// Per-row aggregate update replicating AggAccumulator::UpdateIntT /
/// UpdateNumericT exactly (including the float-SUM double+int64 double
/// write), so fused partials merge into bit-identical finals.
void EmitAggUpdate(SourceBuilder* src, const PipelineSpec& spec, size_t s,
                   const std::string& val) {
  const PipelineAgg& agg = spec.aggs[s];
  std::string i = std::to_string(s);
  if (agg.kind == AggKind::kCount) {
    src->Line("++acc_cnt_" + i + ";");
    return;
  }
  DataType in_type = spec.inputs[static_cast<size_t>(agg.input)].type;
  src->Line("++acc_cnt_" + i + ";");
  if (IsIntType(in_type)) {
    switch (agg.kind) {
      case AggKind::kSum:
        src->Line("acc_i_" + i + " += (int64_t)(" + val + ");");
        break;
      case AggKind::kAvg:
        src->Line("acc_d_" + i + " += (double)(" + val + ");");
        break;
      case AggKind::kMax:
        src->Open("{");
        src->Line("const int64_t xv = (int64_t)(" + val + ");");
        src->Line("if (!acc_b_" + i + " || xv > acc_i_" + i + ") acc_i_" + i +
                  " = xv;");
        src->Line("acc_b_" + i + " = 1;");
        src->Close();
        break;
      case AggKind::kMin:
        src->Open("{");
        src->Line("const int64_t xv = (int64_t)(" + val + ");");
        src->Line("if (!acc_b_" + i + " || xv < acc_i_" + i + ") acc_i_" + i +
                  " = xv;");
        src->Line("acc_b_" + i + " = 1;");
        src->Close();
        break;
      case AggKind::kCount:
        break;
    }
    return;
  }
  switch (agg.kind) {
    case AggKind::kSum:
    case AggKind::kAvg:
      src->Open("{");
      src->Line("const double xv = (double)(" + val + ");");
      src->Line("acc_d_" + i + " += xv;");
      src->Line("acc_i_" + i + " += (int64_t)xv;");
      src->Close();
      break;
    case AggKind::kMax:
      src->Open("{");
      src->Line("const double xv = (double)(" + val + ");");
      src->Line("if (!acc_b_" + i + " || xv > acc_d_" + i + ") acc_d_" + i +
                " = xv;");
      src->Line("acc_b_" + i + " = 1;");
      src->Close();
      break;
    case AggKind::kMin:
      src->Open("{");
      src->Line("const double xv = (double)(" + val + ");");
      src->Line("if (!acc_b_" + i + " || xv < acc_d_" + i + ") acc_d_" + i +
                " = xv;");
      src->Line("acc_b_" + i + " = 1;");
      src->Close();
      break;
    case AggKind::kCount:
      break;
  }
}

/// Typed bindings for the projection output buffers: po0..poM.
void EmitProjOutputBindings(SourceBuilder* src, const PipelineSpec& spec) {
  for (size_t m = 0; m < spec.projections.size(); ++m) {
    int k = spec.projections[m];
    std::string t(CTypeName(spec.inputs[static_cast<size_t>(k)].type));
    src->Line(t + "* const po" + std::to_string(m) + " = (" + t +
              "*)ctx->out_columns[" + std::to_string(m) + "];");
  }
}

/// The value expression for input `k` inside the row loop: a parsed local
/// for file inputs, a dense-column load for cached inputs.
std::string InputValueExpr(const PipelineSpec& spec, const PipelineLayout& lay,
                           int k, const std::string& rid_expr,
                           const std::string& block_index) {
  (void)lay;
  if (spec.inputs[static_cast<size_t>(k)].dense) {
    return "d" + std::to_string(k) + "[" + rid_expr + "]";
  }
  (void)block_index;
  return "v" + std::to_string(k);
}

/// Emits the aggregate or projection tail of one surviving row.
/// `rid_expr` is the global row id. Returns code via `src`.
void EmitRowOutputs(SourceBuilder* src, const PipelineSpec& spec,
                    const PipelineLayout& lay, const std::string& rid_expr,
                    const std::string& consumed_update) {
  if (spec.mode == PipelineOutputMode::kAggregate) {
    for (size_t s = 0; s < spec.aggs.size(); ++s) {
      const PipelineAgg& agg = spec.aggs[s];
      std::string val = agg.input >= 0
                            ? InputValueExpr(spec, lay, agg.input, rid_expr, "")
                            : "0";
      EmitAggUpdate(src, spec, s, val);
    }
    return;
  }
  for (size_t m = 0; m < spec.projections.size(); ++m) {
    std::string val =
        InputValueExpr(spec, lay, spec.projections[m], rid_expr, "");
    src->Line("po" + std::to_string(m) + "[produced] = " + val + ";");
  }
  src->Line("ctx->out_row_ids[produced] = " + rid_expr + ";");
  src->Line("++produced;");
  src->Open("if (produced == ctx->max_rows) {");
  src->Line(consumed_update);
  src->Line("ctx->rows_produced = produced;");
  src->Line("return produced;");
  src->Close();
}

StatusOr<std::string> GenerateCsvPipeline(const PipelineSpec& spec,
                                          const PipelineLayout& lay) {
  if (spec.scan.mode != ScanMode::kByPosition) {
    return Status::InvalidArgument(
        "fused CSV pipelines require a by-position (warm) scan");
  }
  for (const OutputField& f : spec.scan.outputs) {
    if (f.column < spec.scan.anchor_column) {
      return Status::InvalidArgument(
          "fused CSV pipeline cannot read left of the anchor column");
    }
  }
  // The parse/skip interleave walks the row left to right.
  for (size_t j = 1; j < spec.scan.outputs.size(); ++j) {
    if (spec.scan.outputs[j].column <= spec.scan.outputs[j - 1].column) {
      return Status::InvalidArgument(
          "fused CSV pipeline file inputs must be ascending by column");
    }
  }
  const bool agg = spec.mode == PipelineOutputMode::kAggregate;
  const bool masked = !lay.dense_preds.empty();
  SourceBuilder src;
  EmitPrelude(&src, spec, "csv");
  if (masked) {
    EmitMaskFunctions(&src, spec, lay, "ctx->in_row_ids[base + t]");
  }
  src.Open("extern \"C\" int64_t raw_jit_scan_batch(RawJitContext* ctx) {");
  src.Line("const char* const data = ctx->file_data;");
  src.Line("int64_t i = ctx->input_cursor;");
  src.Line("const int64_t i0 = i;");
  src.Line("const int64_t n_in = ctx->num_inputs;");
  if (agg) {
    EmitAggLoads(&src, spec);
  } else {
    EmitProjOutputBindings(&src, spec);
    src.Line("int64_t produced = 0;");
  }
  EmitDenseValueBindings(&src, spec, lay);
  if (masked) src.Line("const RawMaskFn mask_fn = raw_resolve_mask(ctx);");
  src.Blank();
  if (agg) {
    src.Open("while (i < n_in) {");
  } else {
    src.Open("while (i < n_in && produced < ctx->max_rows) {");
  }
  src.Line("int64_t block = n_in - i;");
  src.Line("if (block > ctx->max_rows) block = ctx->max_rows;");
  if (masked) src.Line("mask_fn(ctx, i, block);");
  src.Open("for (int64_t t = 0; t < block; ++t) {");
  if (masked) src.Line("if (!ctx->sel_mask[t]) continue;");
  src.Line("const int64_t rid = ctx->in_row_ids[i + t];");
  src.Line("const char* p = data + ctx->in_positions[i + t];");
  int cursor_col = spec.scan.anchor_column;
  int remaining_file = static_cast<int>(spec.scan.outputs.size());
  for (size_t k = 0; k < spec.inputs.size(); ++k) {
    if (spec.inputs[k].dense) continue;
    const PipelineInput& in = spec.inputs[k];
    EmitCsvSkipFields(&src, in.column - cursor_col, spec.scan.delimiter);
    cursor_col = in.column;
    src.Line("// column " + std::to_string(in.column));
    src.Line(std::string(CTypeName(in.type)) + " v" + std::to_string(k) + ";");
    EmitCsvParseField(&src, in.type, "v" + std::to_string(k),
                      spec.scan.delimiter);
    for (const PipelinePredicate* p : lay.file_preds[k]) {
      RAW_ASSIGN_OR_RETURN(std::string lit, LiteralCpp(p->literal));
      src.Line("if (!(v" + std::to_string(k) + " " +
               std::string(CompareOpCpp(p->op)) + " " + lit + ")) continue;");
    }
    if (--remaining_file > 0) {
      src.Line("++p;  // consume delimiter");
      cursor_col = in.column + 1;
    }
  }
  EmitRowOutputs(&src, spec, lay, "rid", "ctx->input_cursor = i + t + 1;");
  src.Close();  // for
  src.Line("i += block;");
  src.Close();  // while
  src.Blank();
  src.Line("ctx->input_cursor = i;");
  if (agg) {
    EmitAggStores(&src, spec);
    src.Line("ctx->rows_produced = 0;");
    src.Line("return i - i0;");
  } else {
    src.Line("ctx->rows_produced = produced;");
    src.Line("return produced;");
  }
  src.Close();
  return src.str();
}

StatusOr<std::string> GenerateBinPipeline(const PipelineSpec& spec,
                                          const PipelineLayout& lay) {
  if (spec.scan.mode != ScanMode::kSequential) {
    return Status::InvalidArgument(
        "fused binary pipelines require a sequential scan");
  }
  if (spec.scan.row_width <= 0 ||
      spec.scan.column_offsets.size() != spec.scan.outputs.size()) {
    return Status::InvalidArgument(
        "fused binary pipeline: row_width/column_offsets not set");
  }
  const bool agg = spec.mode == PipelineOutputMode::kAggregate;
  const bool masked = !lay.dense_preds.empty();
  const std::string rw = std::to_string(spec.scan.row_width);
  SourceBuilder src;
  EmitPrelude(&src, spec, "bin");
  if (masked) {
    EmitMaskFunctions(&src, spec, lay, "ctx->dense_row_base + base + t");
  }
  src.Open("extern \"C\" int64_t raw_jit_scan_batch(RawJitContext* ctx) {");
  src.Line("const char* const data = ctx->file_data;");
  src.Line("int64_t row = ctx->row_cursor;");
  src.Line("const int64_t i0 = row;");
  src.Line("const int64_t total = ctx->total_rows;");
  if (agg) {
    EmitAggLoads(&src, spec);
  } else {
    EmitProjOutputBindings(&src, spec);
    src.Line("int64_t produced = 0;");
  }
  EmitDenseValueBindings(&src, spec, lay);
  if (masked) src.Line("const RawMaskFn mask_fn = raw_resolve_mask(ctx);");
  src.Blank();
  if (agg) {
    src.Open("while (row < total) {");
  } else {
    src.Open("while (row < total && produced < ctx->max_rows) {");
  }
  src.Line("int64_t block = total - row;");
  src.Line("if (block > ctx->max_rows) block = ctx->max_rows;");
  if (masked) src.Line("mask_fn(ctx, row, block);");
  src.Open("for (int64_t t = 0; t < block; ++t) {");
  if (masked) src.Line("if (!ctx->sel_mask[t]) continue;");
  src.Line("const int64_t rid = ctx->dense_row_base + row + t;");
  for (size_t k = 0; k < spec.inputs.size(); ++k) {
    if (spec.inputs[k].dense) continue;
    const PipelineInput& in = spec.inputs[k];
    int j = lay.file_rank[k];
    std::string off =
        std::to_string(spec.scan.column_offsets[static_cast<size_t>(j)]);
    src.Line("// column " + std::to_string(in.column));
    src.Line(std::string(CTypeName(in.type)) + " v" + std::to_string(k) + ";");
    src.Line("memcpy(&v" + std::to_string(k) +
             ", data + (uint64_t)(row + t) * " + rw + "ull + " + off +
             "ull, sizeof(v" + std::to_string(k) + "));");
    for (const PipelinePredicate* p : lay.file_preds[k]) {
      RAW_ASSIGN_OR_RETURN(std::string lit, LiteralCpp(p->literal));
      src.Line("if (!(v" + std::to_string(k) + " " +
               std::string(CompareOpCpp(p->op)) + " " + lit + ")) continue;");
    }
  }
  EmitRowOutputs(&src, spec, lay, "rid", "ctx->row_cursor = row + t + 1;");
  src.Close();  // for
  src.Line("row += block;");
  src.Close();  // while
  src.Blank();
  src.Line("ctx->row_cursor = row;");
  if (agg) {
    EmitAggStores(&src, spec);
    src.Line("ctx->rows_produced = 0;");
    src.Line("return row - i0;");
  } else {
    src.Line("ctx->rows_produced = produced;");
    src.Line("return produced;");
  }
  src.Close();
  return src.str();
}

StatusOr<std::string> GenerateRefPipeline(const PipelineSpec& spec,
                                          const PipelineLayout& lay) {
  if (spec.scan.mode != ScanMode::kSequential) {
    return Status::InvalidArgument(
        "fused REF pipelines require a sequential scan");
  }
  if (spec.mode != PipelineOutputMode::kAggregate) {
    return Status::InvalidArgument(
        "fused REF pipelines support aggregation only");
  }
  const bool masked = !lay.dense_preds.empty();
  SourceBuilder src;
  EmitPrelude(&src, spec, "ref");
  if (masked) {
    EmitMaskFunctions(&src, spec, lay, "base + t");
  }
  src.Open("extern \"C\" int64_t raw_jit_scan_batch(RawJitContext* ctx) {");
  src.Line("int64_t row = ctx->row_cursor;");
  src.Line("const int64_t i0 = row;");
  src.Line("const int64_t end = ctx->total_rows;");
  EmitAggLoads(&src, spec);
  EmitDenseValueBindings(&src, spec, lay);
  if (masked) src.Line("const RawMaskFn mask_fn = raw_resolve_mask(ctx);");
  src.Blank();
  src.Open("while (row < end) {");
  src.Line("int64_t take = end - row;");
  src.Line("if (take > ctx->max_rows) take = ctx->max_rows;");
  // One bulk API call per needed branch per block, exactly like the plain
  // REF scan kernel; filtering and aggregation then run over the decoded
  // scratch buffers without ever materializing a batch.
  for (size_t k = 0; k < spec.inputs.size(); ++k) {
    if (spec.inputs[k].dense) continue;
    int j = lay.file_rank[k];
    std::string branch = std::to_string(spec.inputs[k].column);
    src.Open("if (ctx->ref.read_range(ctx->ref.reader, " + branch +
             ", row, take, ctx->out_columns[" + std::to_string(j) + "])) {");
    src.Line("ctx->error = 1;");
    src.Line("ctx->error_row = row;");
    src.Line("return -1;");
    src.Close();
  }
  for (size_t k = 0; k < spec.inputs.size(); ++k) {
    if (spec.inputs[k].dense) continue;
    std::string t(CTypeName(spec.inputs[k].type));
    src.Line("const " + t + "* const b" + std::to_string(k) + " = (const " +
             t + "*)ctx->out_columns[" +
             std::to_string(lay.file_rank[k]) + "];");
  }
  if (masked) src.Line("mask_fn(ctx, row, take);");
  src.Open("for (int64_t t = 0; t < take; ++t) {");
  if (masked) src.Line("if (!ctx->sel_mask[t]) continue;");
  src.Line("const int64_t rid = row + t;");
  for (size_t k = 0; k < spec.inputs.size(); ++k) {
    if (spec.inputs[k].dense) continue;
    for (const PipelinePredicate* p : lay.file_preds[k]) {
      RAW_ASSIGN_OR_RETURN(std::string lit, LiteralCpp(p->literal));
      src.Line("if (!(b" + std::to_string(k) + "[t] " +
               std::string(CompareOpCpp(p->op)) + " " + lit + ")) continue;");
    }
  }
  for (size_t s = 0; s < spec.aggs.size(); ++s) {
    const PipelineAgg& agg_spec = spec.aggs[s];
    std::string val = "0";
    if (agg_spec.input >= 0) {
      int k = agg_spec.input;
      val = spec.inputs[static_cast<size_t>(k)].dense
                ? "d" + std::to_string(k) + "[rid]"
                : "b" + std::to_string(k) + "[t]";
    }
    EmitAggUpdate(&src, spec, s, val);
  }
  src.Close();  // for
  src.Line("row += take;");
  src.Close();  // while
  src.Blank();
  src.Line("ctx->row_cursor = row;");
  EmitAggStores(&src, spec);
  src.Line("ctx->rows_produced = 0;");
  src.Line("return row - i0;");
  src.Close();
  return src.str();
}

}  // namespace

StatusOr<std::string> GenerateCsvPipelineSource(const PipelineSpec& spec) {
  PipelineLayout lay;
  RAW_RETURN_NOT_OK(ValidateAndLayOut(spec, &lay));
  return GenerateCsvPipeline(spec, lay);
}

StatusOr<std::string> GenerateBinPipelineSource(const PipelineSpec& spec) {
  PipelineLayout lay;
  RAW_RETURN_NOT_OK(ValidateAndLayOut(spec, &lay));
  return GenerateBinPipeline(spec, lay);
}

StatusOr<std::string> GenerateRefPipelineSource(const PipelineSpec& spec) {
  PipelineLayout lay;
  RAW_RETURN_NOT_OK(ValidateAndLayOut(spec, &lay));
  return GenerateRefPipeline(spec, lay);
}

StatusOr<std::string> GeneratePipelineSource(const PipelineSpec& spec) {
  RAW_ASSIGN_OR_RETURN(const FormatDriver* driver,
                       FormatRegistry::Global().Require(spec.scan.format));
  return driver->EmitJitPipelineSource(spec);
}

}  // namespace raw
