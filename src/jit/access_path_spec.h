#ifndef RAW_JIT_ACCESS_PATH_SPEC_H_
#define RAW_JIT_ACCESS_PATH_SPEC_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "format/format.h"

namespace raw {

/// How a generated kernel walks the file.
enum class ScanMode : uint8_t {
  /// Full forward scan producing every row (first-query path; for CSV this
  /// is where the positional map is built as a side effect).
  kSequential = 0,
  /// CSV: visit only the given rows, jumping to a byte position per row
  /// (positional-map hit on `anchor_column`, then constant-distance
  /// incremental parse to the requested columns).
  kByPosition = 1,
  /// Binary / REF: visit only the given row ids; offsets are computed (binary)
  /// or id-based API calls are issued (REF).
  kByRowIndex = 2,
};

std::string_view ScanModeToString(ScanMode mode);

/// One field a kernel must materialize.
struct OutputField {
  int column = 0;      // CSV/binary column index, or REF branch index
  DataType type = DataType::kInt32;
};

/// Complete description of a generated scan operator — the "operator
/// specification provided to the code generation plug-in" of §3. Everything
/// the kernel needs is captured here so the emitted code can hard-code it:
/// schema data types, unrolled column positions, binary offsets, tracked
/// positional-map slots.
struct AccessPathSpec {
  FileFormat format = FileFormat::kCsv;
  ScanMode mode = ScanMode::kSequential;

  /// Fields to materialize, sorted by `column`.
  std::vector<OutputField> outputs;

  // --- CSV ------------------------------------------------------------------
  char delimiter = ',';
  /// Columns whose byte positions the kernel records while scanning
  /// (kSequential only), in ascending order.
  std::vector<int> pmap_tracked;
  /// kByPosition: the column the per-row byte positions point at. Outputs to
  /// the left of the anchor are not reachable (the planner never asks).
  int anchor_column = 0;

  // --- binary -----------------------------------------------------------------
  int64_t row_width = 0;
  /// Byte offset within a row of each output (parallel to `outputs`).
  std::vector<int64_t> column_offsets;

  // --- REF --------------------------------------------------------------------
  /// For kSequential REF scans: flat-value index base per output branch is
  /// the row cursor itself (per-event branches) — particle tables pass the
  /// flat range through in_row_ids instead.

  /// Stable identity for the template cache (§3's "template cache ... reused
  /// later in case the same query is resubmitted").
  std::string CacheKey() const;

  /// Human-readable description (debugging / EXPLAIN).
  std::string ToString() const { return CacheKey(); }
};

}  // namespace raw

#endif  // RAW_JIT_ACCESS_PATH_SPEC_H_
