#ifndef RAW_JIT_TEMPLATE_CACHE_H_
#define RAW_JIT_TEMPLATE_CACHE_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>

#include <functional>

#include "jit/access_path_spec.h"
#include "jit/cc_compiler.h"
#include "jit/codegen.h"
#include "jit/pipeline_codegen.h"
#include "jit/pipeline_spec.h"

namespace raw {

/// Read-only counters describing the template cache (see RawEngine::Stats()).
struct JitCacheStats {
  int64_t entries = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t compiles = 0;  // successful external-compiler invocations
  double total_compile_seconds = 0;
  bool compiler_available = false;
};

/// The template cache of §3: generated libraries are registered under their
/// access-path specification and reused when the same access path is
/// requested again, amortizing compilation across queries.
///
/// Thread-safety: lookups take a short lock; compilation runs *outside* the
/// lock, with an in-flight set so concurrent requests for the same spec
/// compile once (later arrivals wait on the first) while requests for
/// different specs compile in parallel. Returned kernels keep their shared
/// object mapped via shared_ptr, so Clear() never unloads code in use.
class JitTemplateCache {
 public:
  explicit JitTemplateCache(CcCompilerOptions compiler_options = {});

  /// Returns the kernel for `spec`, generating + compiling on a miss.
  /// On a hit, `kernel.compile_seconds` is 0.
  StatusOr<CompiledKernel> GetOrCompile(const AccessPathSpec& spec);

  /// Same contract for fused pipelines; keyed by PipelineSpec::CacheKey()
  /// (namespaced so fused kernels never collide with plain scan kernels) and
  /// deduplicated in flight exactly like scan specs.
  StatusOr<CompiledKernel> GetOrCompile(const PipelineSpec& spec);

  /// Pre-generates without executing (used to overlap compilation with
  /// other planning work, and by tests to validate emitted source).
  StatusOr<std::string> GenerateSource(const AccessPathSpec& spec) const {
    return GenerateScanSource(spec);
  }

  bool compiler_available() const { return compiler_available_; }

  /// The resolved external-compiler configuration (diagnostics: which binary
  /// was probed when compiler_available() is false).
  const CcCompilerOptions& compiler_options() const {
    return compiler_.options();
  }

  JitCacheStats Stats() const;

  int64_t hits() const { return Stats().hits; }
  int64_t misses() const { return Stats().misses; }
  double total_compile_seconds() const {
    return Stats().total_compile_seconds;
  }
  int64_t size() const { return Stats().entries; }

  void Clear();

 private:
  /// Shared hit/in-flight/compile flow for both spec families. `emit`
  /// generates the translation unit on a miss.
  StatusOr<CompiledKernel> GetOrCompileKey(
      const std::string& key, const std::string& hint,
      const std::function<StatusOr<std::string>()>& emit);

  CcCompiler compiler_;
  bool compiler_available_;

  mutable std::mutex mutex_;
  std::condition_variable inflight_cv_;
  std::unordered_map<std::string, CompiledKernel> cache_;
  std::set<std::string> inflight_;  // specs some thread is compiling
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t compiles_ = 0;
  double total_compile_seconds_ = 0;
};

}  // namespace raw

#endif  // RAW_JIT_TEMPLATE_CACHE_H_
