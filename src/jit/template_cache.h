#ifndef RAW_JIT_TEMPLATE_CACHE_H_
#define RAW_JIT_TEMPLATE_CACHE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "jit/access_path_spec.h"
#include "jit/cc_compiler.h"
#include "jit/codegen.h"

namespace raw {

/// The template cache of §3: generated libraries are registered under their
/// access-path specification and reused when the same access path is
/// requested again, amortizing compilation across queries.
class JitTemplateCache {
 public:
  explicit JitTemplateCache(CcCompilerOptions compiler_options = {});

  /// Returns the kernel for `spec`, generating + compiling on a miss.
  /// On a hit, `kernel.compile_seconds` is 0.
  StatusOr<CompiledKernel> GetOrCompile(const AccessPathSpec& spec);

  /// Pre-generates without executing (used to overlap compilation with
  /// other planning work, and by tests to validate emitted source).
  StatusOr<std::string> GenerateSource(const AccessPathSpec& spec) const {
    return GenerateScanSource(spec);
  }

  bool compiler_available() const { return compiler_available_; }

  /// The resolved external-compiler configuration (diagnostics: which binary
  /// was probed when compiler_available() is false).
  const CcCompilerOptions& compiler_options() const {
    return compiler_.options();
  }

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  double total_compile_seconds() const { return total_compile_seconds_; }
  int64_t size() const { return static_cast<int64_t>(cache_.size()); }

  void Clear() { cache_.clear(); }

 private:
  CcCompiler compiler_;
  bool compiler_available_;
  std::unordered_map<std::string, CompiledKernel> cache_;
  std::mutex mutex_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  double total_compile_seconds_ = 0;
};

}  // namespace raw

#endif  // RAW_JIT_TEMPLATE_CACHE_H_
