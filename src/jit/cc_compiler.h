#ifndef RAW_JIT_CC_COMPILER_H_
#define RAW_JIT_CC_COMPILER_H_

#include <memory>
#include <mutex>
#include <string>

#include "common/macros.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/temp_dir.h"
#include "jit/jit_abi.h"
#include "jit/shared_library.h"

namespace raw {

/// A compiled, loaded scan kernel. Keeps its shared object mapped.
struct CompiledKernel {
  std::shared_ptr<SharedLibrary> library;
  RawJitScanFn entry = nullptr;
  double compile_seconds = 0;  // 0 when served from a cache
};

/// Options for the external-compiler driver.
struct CcCompilerOptions {
  /// Compiler binary; defaults to the compiler that built the engine
  /// (or $RAW_JIT_CXX).
  std::string cxx;
  /// Optimization and codegen flags, mirroring the paper's build
  /// (-O3 -march=native; §4.2 uses GCC with -msse4 -O3).
  std::string flags = "-std=c++20 -O3 -march=native -fPIC -shared";
  /// Include dir containing jit/jit_abi.h; defaults to the build-time path
  /// (or $RAW_JIT_INCLUDE_DIR).
  std::string include_dir;
  /// Keep generated sources on disk after loading (debugging aid).
  bool keep_sources = false;
};

/// Drives the external C++ compiler: writes a generated translation unit to
/// a scratch directory, produces a shared object, dlopens it and resolves the
/// kernel entry point. This is the paper's compilation strategy ("the
/// freshly-compiled library is dynamically loaded into RAW", §3).
class CcCompiler {
 public:
  explicit CcCompiler(CcCompilerOptions options = CcCompilerOptions());

  /// True when a working external compiler is available on this host.
  bool IsAvailable() const;

  /// Compiles `source` and loads the resulting kernel. `name_hint` becomes
  /// part of the scratch file names. Safe to call concurrently: each call
  /// gets a unique scratch file pair and the external compiler runs without
  /// holding any lock.
  StatusOr<CompiledKernel> Compile(const std::string& source,
                                   const std::string& name_hint);

  const CcCompilerOptions& options() const { return options_; }

 private:
  Status EnsureScratchDir();

  CcCompilerOptions options_;
  std::mutex mu_;  // guards scratch_ creation and counter_
  std::unique_ptr<TempDir> scratch_;
  int64_t counter_ = 0;
};

}  // namespace raw

#endif  // RAW_JIT_CC_COMPILER_H_
