#include "jit/source_builder.h"

namespace raw {

SourceBuilder& SourceBuilder::Line(std::string_view text) {
  for (int i = 0; i < indent_; ++i) out_ += "  ";
  out_ += text;
  out_ += '\n';
  return *this;
}

SourceBuilder& SourceBuilder::Blank() {
  out_ += '\n';
  return *this;
}

SourceBuilder& SourceBuilder::Open(std::string_view text) {
  Line(text);
  ++indent_;
  return *this;
}

SourceBuilder& SourceBuilder::Close(std::string_view text) {
  if (indent_ > 0) --indent_;
  Line(text);
  return *this;
}

SourceBuilder& SourceBuilder::Raw(std::string_view text) {
  out_ += text;
  return *this;
}

}  // namespace raw
