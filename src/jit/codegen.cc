#include "jit/codegen.h"

#include "format/format_driver.h"

namespace raw {

StatusOr<std::string> GenerateScanSource(const AccessPathSpec& spec) {
  // Format dispatch goes through the registry: a driver either delegates to
  // one of the plug-ins below (the built-in formats) or emits its own
  // kernels; formats without a plug-in report Unimplemented and the planner
  // keeps them on the interpreted path.
  RAW_ASSIGN_OR_RETURN(const FormatDriver* driver,
                       FormatRegistry::Global().Require(spec.format));
  return driver->EmitJitSource(spec);
}

}  // namespace raw
