#include "jit/cc_compiler.h"

#include <cstdio>
#include <cstdlib>

#include "common/mmap_file.h"
#include "common/stopwatch.h"

#ifndef RAW_JIT_CXX
#define RAW_JIT_CXX "c++"
#endif
#ifndef RAW_JIT_INCLUDE_DIR
#define RAW_JIT_INCLUDE_DIR "."
#endif

namespace raw {

namespace {

std::string DefaultCxx() {
  const char* env = std::getenv("RAW_JIT_CXX");
  return env != nullptr ? env : RAW_JIT_CXX;
}

std::string DefaultIncludeDir() {
  const char* env = std::getenv("RAW_JIT_INCLUDE_DIR");
  return env != nullptr ? env : RAW_JIT_INCLUDE_DIR;
}

/// Runs `command` capturing combined stdout/stderr; returns exit status.
int RunCommand(const std::string& command, std::string* output) {
  std::string cmd = command + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return -1;
  char buf[4096];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) *output += buf;
  return pclose(pipe);
}

}  // namespace

CcCompiler::CcCompiler(CcCompilerOptions options)
    : options_(std::move(options)) {
  if (options_.cxx.empty()) options_.cxx = DefaultCxx();
  if (options_.include_dir.empty()) options_.include_dir = DefaultIncludeDir();
}

bool CcCompiler::IsAvailable() const {
  std::string out;
  return RunCommand(options_.cxx + " --version", &out) == 0;
}

Status CcCompiler::EnsureScratchDir() {
  if (scratch_ != nullptr) return Status::OK();
  RAW_ASSIGN_OR_RETURN(TempDir dir, TempDir::Create("raw_jit_"));
  scratch_ = std::make_unique<TempDir>(std::move(dir));
  return Status::OK();
}

StatusOr<CompiledKernel> CcCompiler::Compile(const std::string& source,
                                             const std::string& name_hint) {
  Stopwatch watch;
  std::string src_path;
  std::string lib_path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    RAW_RETURN_NOT_OK(EnsureScratchDir());
    std::string base = name_hint + "_" + std::to_string(counter_++);
    src_path = scratch_->FilePath(base + ".cc");
    lib_path = scratch_->FilePath(base + ".so");
  }
  RAW_RETURN_NOT_OK(WriteStringToFile(src_path, source));

  std::string command = options_.cxx + " " + options_.flags + " -I" +
                        options_.include_dir + " -o " + lib_path + " " +
                        src_path;
  std::string output;
  int rc = RunCommand(command, &output);
  if (rc != 0) {
    return Status::Internal("JIT compilation failed (" + command +
                            "):\n" + output);
  }
  if (!options_.keep_sources) ::remove(src_path.c_str());

  RAW_ASSIGN_OR_RETURN(std::unique_ptr<SharedLibrary> library,
                       SharedLibrary::Load(lib_path));
  RAW_ASSIGN_OR_RETURN(void* sym, library->Symbol(RAW_JIT_ENTRY_SYMBOL));
  CompiledKernel kernel;
  kernel.library = std::move(library);
  kernel.entry = reinterpret_cast<RawJitScanFn>(sym);
  kernel.compile_seconds = watch.ElapsedSeconds();
  return kernel;
}

}  // namespace raw
