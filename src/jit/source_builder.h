#ifndef RAW_JIT_SOURCE_BUILDER_H_
#define RAW_JIT_SOURCE_BUILDER_H_

#include <string>
#include <string_view>

namespace raw {

/// Tiny indentation-aware C++ source emitter used by the code generators.
/// (The original system generated C++ "through a layer of C++ macros", §4.2;
/// a builder keeps the emitted code readable when dumped for debugging.)
class SourceBuilder {
 public:
  /// Appends one line at the current indentation.
  SourceBuilder& Line(std::string_view text);

  /// Appends a blank line.
  SourceBuilder& Blank();

  /// Appends a line and increases indentation (e.g. "for (...) {").
  SourceBuilder& Open(std::string_view text);

  /// Decreases indentation and appends a line (e.g. "}").
  SourceBuilder& Close(std::string_view text = "}");

  /// Appends raw text verbatim.
  SourceBuilder& Raw(std::string_view text);

  const std::string& str() const { return out_; }

 private:
  std::string out_;
  int indent_ = 0;
};

}  // namespace raw

#endif  // RAW_JIT_SOURCE_BUILDER_H_
