#include "jit/access_path_spec.h"

#include <sstream>

namespace raw {

std::string_view ScanModeToString(ScanMode mode) {
  switch (mode) {
    case ScanMode::kSequential:
      return "sequential";
    case ScanMode::kByPosition:
      return "by_position";
    case ScanMode::kByRowIndex:
      return "by_row_index";
  }
  return "?";
}

std::string AccessPathSpec::CacheKey() const {
  std::ostringstream os;
  os << FileFormatToString(format) << '|' << ScanModeToString(mode) << '|'
     << "d=" << static_cast<int>(delimiter) << "|out=";
  for (const OutputField& f : outputs) {
    os << f.column << ':' << DataTypeToString(f.type) << ',';
  }
  os << "|pmap=";
  for (int c : pmap_tracked) os << c << ',';
  os << "|anchor=" << anchor_column << "|rw=" << row_width << "|off=";
  for (int64_t o : column_offsets) os << o << ',';
  return os.str();
}

}  // namespace raw
