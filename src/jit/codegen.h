#ifndef RAW_JIT_CODEGEN_H_
#define RAW_JIT_CODEGEN_H_

#include <string>

#include "common/status.h"
#include "common/statusor.h"
#include "jit/access_path_spec.h"

namespace raw {

/// Emits the complete C++ translation unit implementing `spec` — a file-,
/// schema- and query-specific scan kernel exporting RAW_JIT_ENTRY_SYMBOL.
/// Dispatches to the per-format plug-in below.
StatusOr<std::string> GenerateScanSource(const AccessPathSpec& spec);

/// Format plug-ins (§3: "a file-format-specific plug-in is activated for
/// each scan operator specification").
StatusOr<std::string> GenerateCsvScanSource(const AccessPathSpec& spec);
StatusOr<std::string> GenerateBinScanSource(const AccessPathSpec& spec);
StatusOr<std::string> GenerateRefScanSource(const AccessPathSpec& spec);

class SourceBuilder;

namespace jit_internal {
/// C type spelling for a DataType ("int32_t", "double", ...).
std::string_view CTypeName(DataType type);

/// Shared CSV emitters (csv_codegen.cc owns the definitions; the fused
/// pipeline generator reuses them so fused and plain kernels parse fields
/// with byte-identical code).
///
/// Emits inline code parsing the field at `p` into `target`, leaving `p` at
/// the field terminator (delimiter or newline).
void EmitCsvParseField(SourceBuilder* src, DataType type,
                       const std::string& target, char delim);
/// Emits code skipping `count` fields including their trailing delimiter.
void EmitCsvSkipFields(SourceBuilder* src, int count, char delim);
}  // namespace jit_internal

}  // namespace raw

#endif  // RAW_JIT_CODEGEN_H_
