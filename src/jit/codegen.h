#ifndef RAW_JIT_CODEGEN_H_
#define RAW_JIT_CODEGEN_H_

#include <string>

#include "common/status.h"
#include "common/statusor.h"
#include "jit/access_path_spec.h"

namespace raw {

/// Emits the complete C++ translation unit implementing `spec` — a file-,
/// schema- and query-specific scan kernel exporting RAW_JIT_ENTRY_SYMBOL.
/// Dispatches to the per-format plug-in below.
StatusOr<std::string> GenerateScanSource(const AccessPathSpec& spec);

/// Format plug-ins (§3: "a file-format-specific plug-in is activated for
/// each scan operator specification").
StatusOr<std::string> GenerateCsvScanSource(const AccessPathSpec& spec);
StatusOr<std::string> GenerateBinScanSource(const AccessPathSpec& spec);
StatusOr<std::string> GenerateRefScanSource(const AccessPathSpec& spec);

namespace jit_internal {
/// C type spelling for a DataType ("int32_t", "double", ...).
std::string_view CTypeName(DataType type);
}  // namespace jit_internal

}  // namespace raw

#endif  // RAW_JIT_CODEGEN_H_
