#ifndef RAW_JIT_PIPELINE_CODEGEN_H_
#define RAW_JIT_PIPELINE_CODEGEN_H_

#include <string>

#include "common/status.h"
#include "common/statusor.h"
#include "jit/pipeline_spec.h"

namespace raw {

/// Emits the complete C++ translation unit implementing a fused
/// scan→filter→project→aggregate pipeline. Dispatches to the per-format
/// plug-in through FormatDriver::EmitJitPipelineSource, exactly like
/// GenerateScanSource; a driver without a fusion emitter reports
/// NotImplemented and the planner keeps the query interpreted.
StatusOr<std::string> GeneratePipelineSource(const PipelineSpec& spec);

/// Built-in format plug-ins. Each composes the format's scan loop with the
/// generated predicate/aggregate bodies:
///  * dense (already-cached) input predicates run in a block mask prepass
///    emitted twice — a scalar copy and an AVX2 target-attribute copy chosen
///    at runtime via __builtin_cpu_supports when ctx->kernel_tier allows —
///    with exact typed compares, so both copies agree bit for bit;
///  * file-column predicates are tested right after their field is parsed,
///    skipping the remaining parse work for failing rows;
///  * aggregate updates replicate AggAccumulator's int/numeric paths
///    exactly, leaving mergeable partial state in the context arrays.
StatusOr<std::string> GenerateCsvPipelineSource(const PipelineSpec& spec);
StatusOr<std::string> GenerateBinPipelineSource(const PipelineSpec& spec);
StatusOr<std::string> GenerateRefPipelineSource(const PipelineSpec& spec);

}  // namespace raw

#endif  // RAW_JIT_PIPELINE_CODEGEN_H_
