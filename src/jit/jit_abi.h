#ifndef RAW_JIT_JIT_ABI_H_
#define RAW_JIT_JIT_ABI_H_

// C ABI shared between the RAW host engine and JIT-generated scan kernels.
//
// This header is #included both by the engine and by every generated
// translation unit (the compiler driver passes -I pointing here), so it must
// stay C-compatible: stdint types and PODs only, no C++ standard library.

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

// Callback table for file formats accessed through a library API rather than
// raw bytes (the REF event format, standing in for ROOT I/O; see §6 of the
// paper: "the JIT access paths emit code that calls the ROOT I/O API").
typedef struct RawJitRefApi {
  void* reader;  // opaque RefReader*
  // Reads `count` packed values of `branch` starting at flat index `first`
  // into `out`. Returns 0 on success, nonzero on failure.
  int32_t (*read_range)(void* reader, int32_t branch, int64_t first,
                        int64_t count, void* out);
} RawJitRefApi;

// Execution context handed to a generated scan kernel for each batch.
// The kernel fills output buffers and advances the cursor fields.
typedef struct RawJitContext {
  // --- raw bytes (CSV / binary formats; memory-mapped by the host) ---------
  const char* file_data;
  uint64_t file_size;

  // --- sequential cursor state (kSequential kernels) ------------------------
  uint64_t byte_cursor;  // next unread byte (CSV)
  int64_t row_cursor;    // next unread row (binary / REF sequential)
  int64_t total_rows;    // total rows when known, else -1

  // --- batch control ---------------------------------------------------------
  int64_t max_rows;       // capacity of each output buffer, in rows
  int64_t rows_produced;  // set by the kernel

  // --- selective inputs (column shreds / positional access) -----------------
  // Row ids to fetch and, for CSV, the byte position of the anchor column of
  // each row (from the positional map). Both arrays have num_inputs entries;
  // the kernel consumes from input_cursor.
  const int64_t* in_row_ids;
  const uint64_t* in_positions;
  int64_t num_inputs;
  int64_t input_cursor;

  // --- outputs ---------------------------------------------------------------
  // One pointer per requested field, each an array of max_rows elements of
  // the field's C type.
  void** out_columns;
  // Original row id per produced row (capacity max_rows); always filled.
  int64_t* out_row_ids;

  // --- positional map building (CSV kSequential only) -----------------------
  uint64_t* pmap_row_starts;  // capacity max_rows
  uint64_t* pmap_positions;   // row-major [row][tracked slot]

  // --- REF callback API ------------------------------------------------------
  RawJitRefApi ref;

  // --- error reporting -------------------------------------------------------
  int32_t error;      // nonzero => kernel aborted
  int64_t error_row;  // row where the error occurred

  // --- fused pipelines (appended; zero-initialized for plain scan kernels) --
  // Dense already-cached input columns, parallel to the PipelineSpec input
  // list: in_dense[k] points at the full column's packed values for dense
  // inputs and is null for inputs the kernel reads from the file.
  const void* const* in_dense;
  // Global row id of the kernel's first row (binary window morsels index
  // dense columns as dense_row_base + local row).
  int64_t dense_row_base;
  // Aggregation state, one slot per PipelineAgg (fused aggregate kernels
  // consume their whole input in one call and leave partials here).
  int64_t* agg_count;
  double* agg_dacc;
  int64_t* agg_iacc;
  uint8_t* agg_init;
  // Scratch row mask (capacity max_rows) for the dense-predicate prepass.
  uint8_t* sel_mask;
  // Active KernelTier as an int (0=scalar..3=avx2); >=3 enables the AVX2
  // mask loop when the CPU supports it.
  int32_t kernel_tier;
} RawJitContext;

// Every generated library exports this symbol. Returns the number of rows
// produced (0 = end of stream), or -1 on error (ctx->error set).
typedef int64_t (*RawJitScanFn)(RawJitContext* ctx);

#define RAW_JIT_ENTRY_SYMBOL "raw_jit_scan_batch"

#ifdef __cplusplus
}  // extern "C"
#endif

#endif  // RAW_JIT_JIT_ABI_H_
