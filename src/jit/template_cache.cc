#include "jit/template_cache.h"

#include "common/hash.h"

namespace raw {

JitTemplateCache::JitTemplateCache(CcCompilerOptions compiler_options)
    : compiler_(std::move(compiler_options)),
      compiler_available_(compiler_.IsAvailable()) {}

StatusOr<CompiledKernel> JitTemplateCache::GetOrCompile(
    const AccessPathSpec& spec) {
  std::string key = spec.CacheKey();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    CompiledKernel kernel = it->second;
    kernel.compile_seconds = 0;  // cache hit: no compilation this time
    return kernel;
  }
  ++misses_;
  if (!compiler_available_) {
    return Status::NotImplemented(
        "no external C++ compiler available for JIT compilation");
  }
  RAW_ASSIGN_OR_RETURN(std::string source, GenerateScanSource(spec));
  std::string hint = std::string(FileFormatToString(spec.format)) + "_" +
                     HashToHex(Fnv1a64(key));
  RAW_ASSIGN_OR_RETURN(CompiledKernel kernel, compiler_.Compile(source, hint));
  total_compile_seconds_ += kernel.compile_seconds;
  cache_[key] = kernel;
  return kernel;
}

}  // namespace raw
