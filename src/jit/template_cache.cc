#include "jit/template_cache.h"

#include "common/hash.h"

namespace raw {

JitTemplateCache::JitTemplateCache(CcCompilerOptions compiler_options)
    : compiler_(std::move(compiler_options)),
      compiler_available_(compiler_.IsAvailable()) {}

StatusOr<CompiledKernel> JitTemplateCache::GetOrCompile(
    const AccessPathSpec& spec) {
  std::string key = spec.CacheKey();
  std::string hint = std::string(FileFormatToString(spec.format)) + "_" +
                     HashToHex(Fnv1a64(key));
  return GetOrCompileKey(key, hint, [&] { return GenerateScanSource(spec); });
}

StatusOr<CompiledKernel> JitTemplateCache::GetOrCompile(
    const PipelineSpec& spec) {
  std::string key = spec.CacheKey();
  std::string hint = "pipe_" +
                     std::string(FileFormatToString(spec.scan.format)) + "_" +
                     HashToHex(Fnv1a64(key));
  return GetOrCompileKey(key, hint,
                         [&] { return GeneratePipelineSource(spec); });
}

StatusOr<CompiledKernel> JitTemplateCache::GetOrCompileKey(
    const std::string& key, const std::string& hint,
    const std::function<StatusOr<std::string>()>& emit) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      auto it = cache_.find(key);
      if (it != cache_.end()) {
        ++hits_;
        CompiledKernel kernel = it->second;
        kernel.compile_seconds = 0;  // cache hit: no compilation this time
        return kernel;
      }
      if (inflight_.count(key) == 0) break;
      // Another session is compiling this very spec; wait for its result
      // instead of duplicating the external-compiler invocation.
      inflight_cv_.wait(lock);
    }
    ++misses_;
    if (!compiler_available_) {
      return Status::NotImplemented(
          "no external C++ compiler available for JIT compilation");
    }
    inflight_.insert(key);
  }

  // Generation + compilation run unlocked: distinct specs compile in
  // parallel. The in-flight marker must be cleared on every exit path.
  StatusOr<CompiledKernel> kernel = [&]() -> StatusOr<CompiledKernel> {
    RAW_ASSIGN_OR_RETURN(std::string source, emit());
    return compiler_.Compile(source, hint);
  }();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_.erase(key);
    if (kernel.ok()) {
      ++compiles_;
      total_compile_seconds_ += kernel->compile_seconds;
      cache_[key] = *kernel;
    }
  }
  inflight_cv_.notify_all();
  return kernel;
}

JitCacheStats JitTemplateCache::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JitCacheStats stats;
  stats.entries = static_cast<int64_t>(cache_.size());
  stats.hits = hits_;
  stats.misses = misses_;
  stats.compiles = compiles_;
  stats.total_compile_seconds = total_compile_seconds_;
  stats.compiler_available = compiler_available_;
  return stats;
}

void JitTemplateCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.clear();
}

}  // namespace raw
