#ifndef RAW_FORMAT_FORMAT_DRIVER_H_
#define RAW_FORMAT_FORMAT_DRIVER_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/scan_health.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/statusor.h"
#include "csv/positional_map.h"
#include "format/format.h"
#include "jit/access_path_spec.h"
#include "scan/access_path.h"

namespace raw {

class Catalog;
class InMemoryTable;
class JitTemplateCache;
struct CostParams;
struct FusedPipelineRequest;
struct PipelineSpec;
struct PlannerOptions;
struct TableEntry;

/// Opaque base for per-format adaptive runtime state a driver publishes on a
/// TableEntry as a side effect of scanning — the generalization of the CSV
/// positional map to structures only one format understands (e.g. the
/// compressed-CSV block-offset index). Published snapshots are immutable and
/// shared_ptr-pinned per query, exactly like positional maps, so
/// ResetAdaptiveState can drop the entry's reference while in-flight queries
/// keep theirs.
struct FormatAdaptiveState {
  virtual ~FormatAdaptiveState() = default;
  /// Memory footprint, reported through TableStats.
  virtual int64_t MemoryBytes() const { return 0; }
};

/// Per-format cost parameters the shared cost model charges for one value —
/// the driver-owned half of CostModel (engine/cost_model.h keeps only the
/// format-independent pieces). `base` tuning knobs come from CostParams so a
/// custom-calibrated model still reaches every driver.
struct FormatCostParams {
  /// Materialize one value during a forward scan (tokenize/convert/read).
  double read_value = 1.0;
  /// Position to one row for selective access (map jump, offset computation).
  double jump = 0.0;
  /// Incrementally parse past one intervening field after a jump.
  double skip_field = 0.0;
  /// Extra per-value cost when row ids arrive out of order (random access).
  double random_penalty = 0.0;
  /// True when adjacent columns ride along almost for free after one jump —
  /// enables the multi-column (speculative) shred policy of §5.3.1.
  bool colocated_shreds = false;
};

/// Per-(query, table) planning context threaded through every FormatDriver
/// hook: the adaptive-state snapshot taken when planning started (one
/// consistent view even while other sessions publish maps or reset the
/// engine), the planner options, and the plan-description sink. The planner
/// owns one per table; drivers update the build-claim fields when they wire
/// adaptive-state construction into a scan.
struct FormatScanContext {
  TableEntry* entry = nullptr;
  const PlannerOptions* opts = nullptr;
  JitTemplateCache* jit = nullptr;
  int num_threads = 1;           // resolved from opts once per plan
  std::ostringstream* desc = nullptr;  // plan-description sink
  /// Per-query robustness counters the driver threads into its scan specs
  /// (owned by the physical plan; may be null in tests).
  ScanHealth* health = nullptr;

  /// Complete, immutable map published by an earlier query (may be null).
  std::shared_ptr<const PositionalMap> published_pmap;
  /// Map this query is building (claim held); merged/appended during the
  /// base scan, published on full drain.
  std::shared_ptr<PositionalMap> building_pmap;
  bool pmap_build_wired = false;  // a scan of this plan already builds it

  /// Published per-format adaptive state (e.g. a block index), or null.
  std::shared_ptr<const FormatAdaptiveState> format_state;
  /// Per-format state this query is building (claim held).
  std::shared_ptr<FormatAdaptiveState> building_format_state;
  bool format_state_build_wired = false;

  std::shared_ptr<const InMemoryTable> loaded;  // resolved for kLoaded
  int64_t row_count = -1;

  bool has_complete_pmap() const {
    return published_pmap != nullptr && !published_pmap->empty();
  }
  /// The map same-query late scans should navigate: the one being built, or
  /// the published one.
  const PositionalMap* pmap_view() const {
    if (building_pmap != nullptr) return building_pmap.get();
    return published_pmap.get();
  }
  /// True while this query holds an adaptive-state build claim that no scan
  /// operator owns yet — the base scan must then run raw so the build
  /// actually happens (see Planner::BuildBaseScan).
  bool HoldsUnwiredBuildClaim() const {
    return (building_pmap != nullptr && !pmap_build_wired) ||
           (building_format_state != nullptr && !format_state_build_wired);
  }
};

/// Everything the engine needs to query one raw-file format in situ. One
/// stateless, immutable instance per format lives in the FormatRegistry;
/// every hook must be thread-safe (drivers hold no mutable state — per-table
/// state lives on TableEntry, per-query state in FormatScanContext).
///
/// The contract, hook by hook, is documented in docs/format-drivers.md
/// ("Writing a format driver"); the short version:
///  * OpenTable/RefreshEntry/PrepareShared run under the catalog's per-entry
///    open lock; they install stable handles (mmap, readers) that outlive
///    every query.
///  * BuildScan returns the complete (possibly morsel-parallel) scan
///    operator for `cols`, with outputs renamed to `qualified`; morsels come
///    from the driver's own SplitMorsels and must cover every row exactly
///    once, aligned so workers never split a row.
///  * BuildFetcher returns a re-entrant RowFetcher (Fetch may be called
///    concurrently; build private cursors per call over shared immutable
///    state).
///  * Adaptive-state hooks (EnsureLateScanNavigable, the claim fields on
///    FormatScanContext) let a driver gate late scans on navigation
///    structures and build them as scan side effects.
class FormatDriver {
 public:
  virtual ~FormatDriver() = default;

  virtual FileFormat format() const = 0;
  /// Short stable name ("csv", "jsonl", ...): printed in plan descriptions
  /// as `[format=<name>]`, parsed by ParseFileFormat, used in JIT cache keys.
  virtual std::string_view name() const = 0;

  // --- catalog hooks ---------------------------------------------------------

  /// Opens the per-table handles (runs once per entry, serialized by the
  /// entry's open lock). Handles must stay valid for the engine's lifetime.
  virtual Status OpenTable(TableEntry& entry) const = 0;

  /// Runs on every catalog lookup after the entry is open — refresh derived
  /// state that may change between queries (e.g. REF row counts served by a
  /// shared reader). Default: nothing.
  virtual void RefreshEntry(TableEntry& entry) const { (void)entry; }

  /// Resolves catalog-wide shared resources before OpenTable (e.g. one REF
  /// reader shared by all derived tables of a file). Default: nothing.
  virtual Status PrepareShared(Catalog& catalog, TableEntry& entry) const {
    (void)catalog;
    (void)entry;
    return Status::OK();
  }

  /// Fully materializes the table — the "DBMS" baseline load (§2.1).
  virtual StatusOr<std::unique_ptr<InMemoryTable>> LoadTable(
      const TableEntry& entry) const = 0;

  // --- planner hooks ---------------------------------------------------------

  /// True when late scans (selective row fetches) against the table can
  /// navigate to arbitrary rows. Drivers needing an adaptive navigation
  /// structure (CSV/JSONL positional maps) claim its build here as a side
  /// effect; returning false routes every column into the base scan.
  virtual bool EnsureLateScanNavigable(FormatScanContext& ctx) const {
    (void)ctx;
    return true;
  }

  /// Estimated fields to incrementally parse past per selective fetch —
  /// feeds ShredDecisionInput::skip_distance. Formats with computed or
  /// exactly-mapped offsets return 0.
  virtual int EstimateSkipDistance(const FormatScanContext& ctx) const {
    (void)ctx;
    return 0;
  }

  /// Splits the table into independently scannable ranges for the access
  /// path the driver would choose under `ctx` (cold scans split the raw
  /// bytes, warm scans split mapped/indexed rows). At most `target_morsels`
  /// ranges, covering all data exactly once, aligned to row boundaries.
  virtual std::vector<ScanRange> SplitMorsels(const FormatScanContext& ctx,
                                              int target_morsels) const = 0;

  /// Builds the full scan operator over `cols` (ascending table column
  /// indices), outputs renamed to `qualified`. The driver owns access-path
  /// choice (interpreted vs JIT vs positional), morsel parallelism (via
  /// SplitMorsels + ParallelTableScanOperator), and adaptive-state build
  /// wiring; generic cache glue stays in the planner.
  virtual StatusOr<OperatorPtr> BuildScan(FormatScanContext& ctx,
                                          const std::vector<int>& cols,
                                          const Schema& qualified) const = 0;

  /// Builds the late-scan row fetcher for `cols` (fields() == `qualified`).
  /// Must be re-entrant (see class comment). The planner adds the parallel
  /// and cache-aware wrappers.
  virtual StatusOr<RowFetcherPtr> BuildFetcher(FormatScanContext& ctx,
                                               const std::vector<int>& cols,
                                               const Schema& qualified)
      const = 0;

  // --- cost model ------------------------------------------------------------

  /// Per-value access costs, derived from the model's tuning knobs.
  virtual FormatCostParams cost_params(const CostParams& base) const = 0;

  // --- JIT plug-in -----------------------------------------------------------

  /// Emits the C++ translation unit for a generated scan kernel ("a
  /// file-format-specific plug-in is activated for each scan operator
  /// specification", §3). Default: no JIT support.
  virtual StatusOr<std::string> EmitJitSource(
      const AccessPathSpec& /*spec*/) const {
    return Status::NotImplemented("format '" + std::string(name()) +
                                  "' has no JIT code-generation plug-in");
  }

  /// Emits the C++ translation unit for a fused scan→filter→project→aggregate
  /// pipeline kernel (jit/pipeline_spec.h). Default: no fusion plug-in; the
  /// planner falls back to the interpreted pipeline.
  virtual StatusOr<std::string> EmitJitPipelineSource(
      const PipelineSpec& /*spec*/) const {
    return Status::NotImplemented("format '" + std::string(name()) +
                                  "' has no JIT pipeline-fusion plug-in");
  }

  /// Builds the scan-level operator executing a fused pipeline over this
  /// table (morsel-parallel when ctx.num_threads allows). kProject requests
  /// emit filtered projected rows; kAggregate requests emit one mergeable
  /// partial row per morsel, in morsel order. Default: no fusion support —
  /// NotImplemented routes the planner to the interpreted pipeline.
  virtual StatusOr<OperatorPtr> BuildFusedPipeline(
      FormatScanContext& /*ctx*/, const FusedPipelineRequest& /*request*/)
      const {
    return Status::NotImplemented("format '" + std::string(name()) +
                                  "' has no JIT pipeline-fusion plug-in");
  }
};

/// Process-wide FileFormat -> FormatDriver registry. Registration happens at
/// engine construction (see engine/formats/builtin.h) or from user code for
/// out-of-tree formats; lookups are lock-cheap and the returned drivers are
/// immortal, so planners and codegen dispatch through raw pointers.
class FormatRegistry {
 public:
  static FormatRegistry& Global();

  /// Installs a driver; AlreadyExists if the format or name is taken.
  Status Register(std::unique_ptr<FormatDriver> driver);

  /// Driver for `format`, or null when none is registered.
  const FormatDriver* Find(FileFormat format) const;

  /// Driver for `format`, or an annotated NotFound naming the format value
  /// and the registered drivers — the error surfaces at Register*/plan time
  /// instead of crashing a per-format switch.
  StatusOr<const FormatDriver*> Require(FileFormat format) const;

  /// Driver by name ("csv", "jsonl", ...), or null.
  const FormatDriver* FindByName(std::string_view name) const;

  /// All registered drivers, ordered by format value.
  std::vector<const FormatDriver*> Drivers() const;

 private:
  mutable std::shared_mutex mu_;
  std::map<FileFormat, std::unique_ptr<FormatDriver>> drivers_;
};

}  // namespace raw

#endif  // RAW_FORMAT_FORMAT_DRIVER_H_
