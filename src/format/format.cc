#include "format/format.h"

#include <mutex>
#include <utility>

#include "format/format_driver.h"

namespace raw {

FormatRegistry& FormatRegistry::Global() {
  static FormatRegistry* registry = new FormatRegistry();
  return *registry;
}

Status FormatRegistry::Register(std::unique_ptr<FormatDriver> driver) {
  if (driver == nullptr) {
    return Status::InvalidArgument("cannot register a null format driver");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = drivers_.find(driver->format());
  if (it != drivers_.end()) {
    return Status::AlreadyExists(
        "a format driver named '" + std::string(it->second->name()) +
        "' is already registered for format value " +
        std::to_string(static_cast<int>(driver->format())));
  }
  for (const auto& [format, existing] : drivers_) {
    if (existing->name() == driver->name()) {
      return Status::AlreadyExists("a format driver named '" +
                                   std::string(driver->name()) +
                                   "' is already registered");
    }
  }
  drivers_[driver->format()] = std::move(driver);
  return Status::OK();
}

const FormatDriver* FormatRegistry::Find(FileFormat format) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = drivers_.find(format);
  return it == drivers_.end() ? nullptr : it->second.get();
}

StatusOr<const FormatDriver*> FormatRegistry::Require(
    FileFormat format) const {
  const FormatDriver* driver = Find(format);
  if (driver != nullptr) return driver;
  std::string names;
  for (const FormatDriver* d : Drivers()) {
    if (!names.empty()) names += ", ";
    names += d->name();
  }
  return Status::NotFound(
      "no format driver registered for format value " +
      std::to_string(static_cast<int>(format)) + " (registered: " +
      (names.empty() ? std::string("none") : names) + ")");
}

const FormatDriver* FormatRegistry::FindByName(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& [format, driver] : drivers_) {
    if (driver->name() == name) return driver.get();
  }
  return nullptr;
}

std::vector<const FormatDriver*> FormatRegistry::Drivers() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<const FormatDriver*> out;
  out.reserve(drivers_.size());
  for (const auto& [format, driver] : drivers_) out.push_back(driver.get());
  return out;
}

std::string_view FileFormatToString(FileFormat format) {
  const FormatDriver* driver = FormatRegistry::Global().Find(format);
  return driver != nullptr ? driver->name() : "unregistered";
}

StatusOr<FileFormat> ParseFileFormat(std::string_view name) {
  const FormatDriver* driver = FormatRegistry::Global().FindByName(name);
  if (driver != nullptr) return driver->format();
  std::string names;
  for (const FormatDriver* d : FormatRegistry::Global().Drivers()) {
    if (!names.empty()) names += ", ";
    names += d->name();
  }
  return Status::NotFound("unknown format '" + std::string(name) +
                          "' (registered: " +
                          (names.empty() ? std::string("none") : names) + ")");
}

}  // namespace raw
