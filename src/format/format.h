#ifndef RAW_FORMAT_FORMAT_H_
#define RAW_FORMAT_FORMAT_H_

#include <cstdint>
#include <string_view>

#include "common/status.h"
#include "common/statusor.h"

namespace raw {

/// Raw-file formats the engine ships drivers for. The enum is the stable
/// registry key (catalog entries and JIT cache keys persist it); everything
/// else about a format — how it opens, scans, splits, fetches, costs, and
/// code-generates — lives behind the FormatDriver registered for the value
/// (see format/format_driver.h). Extending the engine with a new format
/// means adding a value here and registering a driver; no planner, executor,
/// or codegen switch needs to learn about it.
enum class FileFormat : uint8_t {
  kCsv = 0,
  kBinary = 1,
  kRef = 2,
  kJsonl = 3,  // line-delimited JSON, one flat object per line
  kCsvGz = 4,  // gzip-compressed CSV (multi-member, block-indexed)
};

/// Registry-driven name of a format ("csv", "bin", "ref", "jsonl",
/// "csv.gz"); "unregistered" for values with no driver installed.
std::string_view FileFormatToString(FileFormat format);

/// Registry-driven inverse of FileFormatToString: resolves a driver name to
/// its format, or an annotated NotFound listing the registered names.
StatusOr<FileFormat> ParseFileFormat(std::string_view name);

/// One independently scannable slice of a raw file — the unit of work
/// morsel-driven parallel scans hand to the thread pool, and the single
/// range representation every scan spec consumes (formats with computed or
/// mapped offsets count rows; textual formats count bytes).
///
/// `end` is exclusive; end < 0 means "through the end of the data". The
/// default-constructed range covers everything.
struct ScanRange {
  enum class Unit : uint8_t {
    kBytes = 0,  // begin/end are byte offsets into the (raw) file
    kRows = 1,   // begin/end are row indices
  };

  Unit unit = Unit::kRows;
  int64_t begin = 0;
  int64_t end = -1;

  static ScanRange Whole() { return ScanRange{}; }
  static ScanRange Bytes(int64_t begin, int64_t end) {
    return ScanRange{Unit::kBytes, begin, end};
  }
  static ScanRange Rows(int64_t first, int64_t count) {
    return ScanRange{Unit::kRows, first, count < 0 ? -1 : first + count};
  }

  /// True for the default "everything" range.
  bool whole() const { return begin == 0 && end < 0; }
  /// True when the range has an explicit upper bound.
  bool bounded() const { return end >= 0; }
  /// Rows/bytes covered; meaningless (negative) while unbounded.
  int64_t count() const { return end - begin; }

  bool operator==(const ScanRange& other) const {
    return unit == other.unit && begin == other.begin && end == other.end;
  }
};

}  // namespace raw

#endif  // RAW_FORMAT_FORMAT_H_
