#include "workload/higgs.h"

#include <cmath>

#include "common/macros.h"
#include "common/mmap_file.h"
#include "csv/fast_parse.h"
#include "scan/ref_scan.h"

namespace raw {

namespace {
void FillHistogram(HiggsResult* result, float leading_pt) {
  int bin = static_cast<int>(leading_pt / HiggsResult::kBinWidth);
  if (bin < 0) bin = 0;
  if (bin >= HiggsResult::kBins) bin = HiggsResult::kBins - 1;
  ++result->histogram[static_cast<size_t>(bin)];
}
}  // namespace

StatusOr<std::set<int32_t>> LoadGoodRuns(const std::string& csv_path) {
  RAW_ASSIGN_OR_RETURN(std::string text, ReadFileToString(csv_path));
  std::set<int32_t> runs;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) {
      RAW_ASSIGN_OR_RETURN(
          int32_t run,
          ParseInt32(text.data() + start, static_cast<int32_t>(end - start)));
      runs.insert(run);
    }
    start = end + 1;
  }
  return runs;
}

// --- Hand-written baseline ---------------------------------------------------

HandwrittenHiggsAnalysis::HandwrittenHiggsAnalysis(
    std::vector<std::string> ref_paths, std::string goodruns_csv,
    HiggsCuts cuts)
    : paths_(std::move(ref_paths)),
      goodruns_csv_(std::move(goodruns_csv)),
      cuts_(cuts) {}

void HandwrittenHiggsAnalysis::DropCaches() {
  for (auto& reader : readers_) {
    if (reader != nullptr) reader->ClearCache();
  }
}

StatusOr<HiggsResult> HandwrittenHiggsAnalysis::Run() {
  RAW_ASSIGN_OR_RETURN(std::set<int32_t> good_runs,
                       LoadGoodRuns(goodruns_csv_));
  if (readers_.empty()) {
    for (const std::string& path : paths_) {
      RAW_ASSIGN_OR_RETURN(std::unique_ptr<RefReader> reader,
                           RefReader::Open(path));
      readers_.push_back(std::move(reader));
    }
  }
  HiggsResult result;
  Event event;
  // The classic physicist loop: one event object at a time, nested loops
  // over its particle vectors, branch-heavy cuts.
  for (auto& reader : readers_) {
    const int64_t n = reader->num_events();
    for (int64_t i = 0; i < n; ++i) {
      RAW_RETURN_NOT_OK(reader->GetEntry(i, &event));
      ++result.events_scanned;
      if (good_runs.find(event.run_number) == good_runs.end()) continue;
      int n_muons = 0;
      float leading = 0;
      for (const Particle& mu : event.muons) {
        if (mu.pt > cuts_.min_muon_pt && std::fabs(mu.eta) < cuts_.max_abs_eta) {
          ++n_muons;
          if (mu.pt > leading) leading = mu.pt;
        }
      }
      if (n_muons < cuts_.min_muons) continue;
      int n_electrons = 0;
      for (const Particle& el : event.electrons) {
        if (el.pt > cuts_.min_electron_pt &&
            std::fabs(el.eta) < cuts_.max_abs_eta) {
          ++n_electrons;
        }
      }
      if (n_electrons < cuts_.min_electrons) continue;
      int n_jets = 0;
      for (const Particle& jet : event.jets) {
        if (jet.pt > cuts_.min_jet_pt &&
            std::fabs(jet.eta) < cuts_.max_abs_eta) {
          ++n_jets;
        }
      }
      if (n_jets < cuts_.min_jets) continue;
      ++result.candidates;
      FillHistogram(&result, leading);
    }
  }
  return result;
}

// --- RAW version -------------------------------------------------------------

RawHiggsAnalysis::RawHiggsAnalysis(std::vector<std::string> ref_paths,
                                   std::string goodruns_csv, HiggsCuts cuts)
    : paths_(std::move(ref_paths)),
      goodruns_csv_(std::move(goodruns_csv)),
      cuts_(cuts) {}

void RawHiggsAnalysis::DropCaches() {
  file_caches_.clear();
  for (auto& reader : readers_) {
    if (reader != nullptr) reader->ClearCache();
  }
}

StatusOr<RawHiggsAnalysis::FileCache> RawHiggsAnalysis::BuildFileCache(
    RefReader* reader) {
  FileCache cache;
  const int64_t n = reader->num_events();
  cache.run_number.resize(static_cast<size_t>(n));
  {
    int branch = reader->BranchIndex(ref_branches::kEventRun);
    RAW_RETURN_NOT_OK(reader->ReadRange(branch, 0, n, cache.run_number.data()));
  }
  const float min_pt[3] = {cuts_.min_muon_pt, cuts_.min_electron_pt,
                           cuts_.min_jet_pt};
  cache.leading_muon_pt.assign(static_cast<size_t>(n), 0.0f);
  for (int g = 0; g < 3; ++g) {
    cache.pass_counts[g].assign(static_cast<size_t>(n), 0);
    const int64_t total = reader->GroupTotal(g);
    if (total == 0) continue;
    std::string group(ref_branches::kGroups[g]);
    int pt_branch = reader->BranchIndex(group + "/pt");
    int eta_branch = reader->BranchIndex(group + "/eta");
    // Columnar evaluation in chunks: only pt and eta are ever read — the
    // other branches (phi, unused groups' payloads) stay untouched on disk,
    // which is exactly the JIT access path's selective behaviour.
    constexpr int64_t kChunk = 65536;
    std::vector<float> pt(static_cast<size_t>(kChunk));
    std::vector<float> eta(static_cast<size_t>(kChunk));
    int64_t event = 0;
    for (int64_t first = 0; first < total; first += kChunk) {
      int64_t take = std::min(kChunk, total - first);
      RAW_RETURN_NOT_OK(reader->ReadRange(pt_branch, first, take, pt.data()));
      RAW_RETURN_NOT_OK(reader->ReadRange(eta_branch, first, take, eta.data()));
      for (int64_t k = 0; k < take; ++k) {
        int64_t flat = first + k;
        // Advance the event cursor (offsets are sorted, amortized O(1)).
        int64_t begin, count;
        reader->GroupRange(g, event, &begin, &count);
        while (flat >= begin + count) {
          ++event;
          reader->GroupRange(g, event, &begin, &count);
        }
        bool pass = pt[static_cast<size_t>(k)] > min_pt[g] &&
                    std::fabs(eta[static_cast<size_t>(k)]) < cuts_.max_abs_eta;
        if (pass) {
          ++cache.pass_counts[g][static_cast<size_t>(event)];
          if (g == kMuon &&
              pt[static_cast<size_t>(k)] >
                  cache.leading_muon_pt[static_cast<size_t>(event)]) {
            cache.leading_muon_pt[static_cast<size_t>(event)] =
                pt[static_cast<size_t>(k)];
          }
        }
      }
      // Position the cursor at the event owning the next chunk's first value.
      if (first + take < total) {
        event = reader->EventOfFlatIndex(g, first + take);
      }
    }
  }
  return cache;
}

StatusOr<HiggsResult> RawHiggsAnalysis::Run() {
  RAW_ASSIGN_OR_RETURN(std::set<int32_t> good_runs,
                       LoadGoodRuns(goodruns_csv_));
  if (readers_.empty()) {
    for (const std::string& path : paths_) {
      RAW_ASSIGN_OR_RETURN(std::unique_ptr<RefReader> reader,
                           RefReader::Open(path));
      readers_.push_back(std::move(reader));
    }
  }
  const bool cold = file_caches_.empty();
  if (cold) {
    for (auto& reader : readers_) {
      RAW_ASSIGN_OR_RETURN(FileCache cache, BuildFileCache(reader.get()));
      file_caches_.push_back(std::move(cache));
    }
  }
  // Warm path: pure in-memory vectorized pass over the cached shreds.
  HiggsResult result;
  for (const FileCache& cache : file_caches_) {
    const int64_t n = static_cast<int64_t>(cache.run_number.size());
    result.events_scanned += n;
    for (int64_t i = 0; i < n; ++i) {
      if (cache.pass_counts[kMuon][static_cast<size_t>(i)] < cuts_.min_muons ||
          cache.pass_counts[kElectron][static_cast<size_t>(i)] <
              cuts_.min_electrons ||
          cache.pass_counts[kJet][static_cast<size_t>(i)] < cuts_.min_jets) {
        continue;
      }
      if (good_runs.find(cache.run_number[static_cast<size_t>(i)]) ==
          good_runs.end()) {
        continue;
      }
      ++result.candidates;
      FillHistogram(&result,
                    cache.leading_muon_pt[static_cast<size_t>(i)]);
    }
  }
  return result;
}

}  // namespace raw
