#ifndef RAW_WORKLOAD_HIGGS_H_
#define RAW_WORKLOAD_HIGGS_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "eventsim/ref_reader.h"

namespace raw {

/// The "Find the Higgs Boson" selection (§6): per event, count the muons,
/// electrons and jets passing kinematic cuts; an event is a candidate when
/// every multiplicity threshold is met and the event belongs to a good run.
struct HiggsCuts {
  float min_muon_pt = 22.0f;
  float min_electron_pt = 24.0f;
  float min_jet_pt = 30.0f;
  float max_abs_eta = 2.4f;
  int min_muons = 2;
  int min_electrons = 1;
  int min_jets = 2;
};

/// Query output: candidate count plus a histogram of the leading passing
/// muon's pt (the physicists' end product).
struct HiggsResult {
  int64_t events_scanned = 0;
  int64_t candidates = 0;
  static constexpr int kBins = 50;
  static constexpr float kBinWidth = 5.0f;  // 0..250 GeV
  std::vector<int64_t> histogram = std::vector<int64_t>(kBins, 0);

  bool operator==(const HiggsResult& other) const {
    return events_scanned == other.events_scanned &&
           candidates == other.candidates && histogram == other.histogram;
  }
};

/// Loads the good-runs CSV (one int per line) into a set.
StatusOr<std::set<int32_t>> LoadGoodRuns(const std::string& csv_path);

/// The hand-written C++ analysis (the paper's baseline): an object-at-a-time
/// loop using GetEntry(), branchy per-particle cuts, relying on the format's
/// buffer pool for warm-run speed. Keep the readers alive between calls to
/// model a physicist's long-running session.
class HandwrittenHiggsAnalysis {
 public:
  HandwrittenHiggsAnalysis(std::vector<std::string> ref_paths,
                           std::string goodruns_csv, HiggsCuts cuts);

  /// Runs the full analysis. The first call is "cold" (clusters decoded from
  /// disk); subsequent calls hit the buffer pool.
  StatusOr<HiggsResult> Run();

  /// Drops the buffer pools (forces the next Run() cold).
  void DropCaches();

 private:
  std::vector<std::string> paths_;
  std::string goodruns_csv_;
  HiggsCuts cuts_;
  std::vector<std::unique_ptr<RefReader>> readers_;
};

/// The RAW version: columnar, vectorized evaluation over the same files,
/// reading only the branches the cuts touch (JIT-style API access), and
/// caching the resulting column shreds — subsequent runs never touch the raw
/// files (§6: "RAW performs as if the data had been loaded in advance").
class RawHiggsAnalysis {
 public:
  RawHiggsAnalysis(std::vector<std::string> ref_paths,
                   std::string goodruns_csv, HiggsCuts cuts);

  StatusOr<HiggsResult> Run();

  /// Drops cached shreds and buffer pools (next Run() is cold).
  void DropCaches();

  bool warm() const { return !file_caches_.empty(); }

 private:
  /// Per-file cached per-event shreds: only the attributes the query needs,
  /// only the derived values (pass-counts + leading muon pt + run number).
  struct FileCache {
    std::vector<int32_t> run_number;
    std::vector<int32_t> pass_counts[3];  // per group
    std::vector<float> leading_muon_pt;
  };

  StatusOr<FileCache> BuildFileCache(RefReader* reader);

  std::vector<std::string> paths_;
  std::string goodruns_csv_;
  HiggsCuts cuts_;
  std::vector<std::unique_ptr<RefReader>> readers_;
  std::vector<FileCache> file_caches_;
};

}  // namespace raw

#endif  // RAW_WORKLOAD_HIGGS_H_
