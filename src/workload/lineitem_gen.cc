#include "workload/lineitem_gen.h"

#include "common/macros.h"
#include "common/rng.h"
#include "csv/csv_writer.h"

namespace raw {

Schema LineitemSchema() {
  return Schema{{"l_orderkey", DataType::kInt64},
                {"l_partkey", DataType::kInt64},
                {"l_suppkey", DataType::kInt64},
                {"l_linenumber", DataType::kInt32},
                {"l_quantity", DataType::kInt32},
                {"l_extendedprice", DataType::kFloat64},
                {"l_discount", DataType::kFloat64},
                {"l_tax", DataType::kFloat64},
                {"l_shipdate", DataType::kInt32}};
}

Status WriteLineitemCsv(const std::string& path,
                        const LineitemGenOptions& options) {
  Rng rng(options.seed);
  CsvWriter writer(path);
  RAW_RETURN_NOT_OK(writer.Open());
  constexpr int32_t kEpochStart = 8766;   // ~1994-01-01 in days
  constexpr int32_t kEpochSpan = 2557;    // ~7 years
  for (int64_t r = 0; r < options.rows; ++r) {
    int64_t orderkey = rng.NextInt64(1, options.num_orders);
    int64_t partkey = rng.NextInt64(1, options.num_parts);
    int64_t suppkey = rng.NextInt64(1, options.num_suppliers);
    int32_t linenumber = rng.NextInt32(1, 7);
    int32_t quantity = rng.NextInt32(1, 50);
    double price = static_cast<double>(quantity) * rng.NextDouble(900.0, 2100.0);
    double discount = rng.NextInt32(0, 10) / 100.0;
    double tax = rng.NextInt32(0, 8) / 100.0;
    int32_t shipdate = kEpochStart + rng.NextInt32(0, kEpochSpan);
    writer.AppendInt64(orderkey);
    writer.AppendInt64(partkey);
    writer.AppendInt64(suppkey);
    writer.AppendInt32(linenumber);
    writer.AppendInt32(quantity);
    writer.AppendFloat64(price);
    writer.AppendFloat64(discount);
    writer.AppendFloat64(tax);
    writer.AppendInt32(shipdate);
    writer.EndRow();
  }
  return writer.Close();
}

}  // namespace raw
