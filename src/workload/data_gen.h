#ifndef RAW_WORKLOAD_DATA_GEN_H_
#define RAW_WORKLOAD_DATA_GEN_H_

#include <string>

#include "common/status.h"
#include "workload/table_spec.h"

namespace raw {

/// Writes `spec` as a CSV file at `path`. When `permutation` is non-null it
/// reorders rows (the shuffled join copy of §5.3.2).
Status WriteCsvFile(const TableSpec& spec, const std::string& path,
                    const std::vector<int64_t>* permutation = nullptr);

/// Writes `spec` as a fixed-width binary file at `path` (same logical data
/// as the CSV flavour).
Status WriteBinaryFile(const TableSpec& spec, const std::string& path,
                       const std::vector<int64_t>* permutation = nullptr);

/// Writes `spec` as line-delimited JSON at `path` (one flat object per row,
/// keys = column names; same logical data as the CSV flavour).
Status WriteJsonlFile(const TableSpec& spec, const std::string& path,
                      const std::vector<int64_t>* permutation = nullptr);

/// Writes `spec` as a multi-member gzip-compressed CSV at `path`, cutting
/// members on row boundaries every ~`block_bytes` of uncompressed text
/// (same logical data as the CSV flavour).
Status WriteCsvGzTable(const TableSpec& spec, const std::string& path,
                       size_t block_bytes = 64 * 1024,
                       const std::vector<int64_t>* permutation = nullptr);

}  // namespace raw

#endif  // RAW_WORKLOAD_DATA_GEN_H_
