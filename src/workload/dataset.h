#ifndef RAW_WORKLOAD_DATASET_H_
#define RAW_WORKLOAD_DATASET_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "eventsim/event_generator.h"
#include "workload/table_spec.h"

namespace raw {

/// Benchmark dataset manager: materializes the experiment files once in a
/// cache directory and hands out paths. Sizes default to laptop scale and
/// can be overridden with environment variables:
///   RAW_DATA_DIR     cache directory       (default /tmp/raw_bench_data)
///   RAW_BENCH_ROWS   D30 rows              (default 1,000,000)
///   RAW_BENCH_ROWS_120  D120 rows          (default 300,000)
///   RAW_BENCH_EVENTS HIGGS events per file (default 50,000)
///   RAW_BENCH_FILES  HIGGS file count      (default 4)
class Dataset {
 public:
  /// Creates the manager (reads env overrides, creates the cache dir).
  static StatusOr<Dataset> Open();

  const std::string& dir() const { return dir_; }

  // --- D30: 30 int32 columns (paper §4.2) ------------------------------------
  TableSpec D30Spec() const;
  StatusOr<std::string> D30Csv();
  StatusOr<std::string> D30Binary();
  /// Shuffled row-order copy (file2 of the join experiments, §5.3.2).
  StatusOr<std::string> D30CsvShuffled();
  /// Same logical data as line-delimited JSON.
  StatusOr<std::string> D30Jsonl();
  /// Same logical data as multi-member gzip-compressed CSV.
  StatusOr<std::string> D30CsvGz();

  // --- D120: 120 mixed int/float columns (paper §5.2) -------------------------
  TableSpec D120Spec() const;
  StatusOr<std::string> D120Csv();
  StatusOr<std::string> D120Binary();

  // --- HIGGS: REF event files + good-runs CSV (paper §6) ----------------------
  EventGenOptions HiggsOptions(int file_index) const;
  StatusOr<std::vector<std::string>> HiggsRefFiles();
  StatusOr<std::string> GoodRunsCsv();

  int64_t d30_rows() const { return d30_rows_; }
  int64_t d120_rows() const { return d120_rows_; }
  int64_t higgs_events() const { return higgs_events_; }
  int higgs_files() const { return higgs_files_; }

 private:
  explicit Dataset(std::string dir) : dir_(std::move(dir)) {}

  StatusOr<std::string> EnsureFile(const std::string& name,
                                   const std::function<Status(const std::string&)>& make);

  std::string dir_;
  int64_t d30_rows_ = 1000000;
  int64_t d120_rows_ = 300000;
  int64_t higgs_events_ = 50000;
  int higgs_files_ = 4;
};

}  // namespace raw

#endif  // RAW_WORKLOAD_DATASET_H_
