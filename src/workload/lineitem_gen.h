#ifndef RAW_WORKLOAD_LINEITEM_GEN_H_
#define RAW_WORKLOAD_LINEITEM_GEN_H_

#include <string>

#include "common/schema.h"
#include "common/status.h"

namespace raw {

/// A TPC-H-flavoured `lineitem` CSV generator for the examples: realistic
/// mixed-type analytics data (keys, quantities, prices, discounts, dates as
/// integers) without requiring the actual dbgen tool.
struct LineitemGenOptions {
  int64_t rows = 100000;
  uint64_t seed = 1;
  int64_t num_orders = 25000;
  int64_t num_parts = 20000;
  int64_t num_suppliers = 1000;
};

/// Schema: l_orderkey:int64, l_partkey:int64, l_suppkey:int64,
/// l_linenumber:int32, l_quantity:int32, l_extendedprice:float64,
/// l_discount:float64, l_tax:float64, l_shipdate:int32 (days since epoch).
Schema LineitemSchema();

/// Writes the table as CSV at `path`.
Status WriteLineitemCsv(const std::string& path,
                        const LineitemGenOptions& options);

}  // namespace raw

#endif  // RAW_WORKLOAD_LINEITEM_GEN_H_
