#include "workload/dataset.h"

#include <cstdlib>
#include <functional>

#include "common/env.h"
#include "common/file_lock.h"
#include "common/macros.h"
#include "common/mmap_file.h"
#include "common/temp_dir.h"
#include "workload/data_gen.h"

namespace raw {

namespace {
// Strict parse: a malformed scale knob falls back to the default (with a
// one-time stderr warning) instead of silently generating a 0-row dataset.
int64_t EnvInt(const char* name, int64_t fallback) {
  return GetEnvInt64(name, fallback, /*min=*/1, /*max=*/int64_t{1} << 40);
}
}  // namespace

StatusOr<Dataset> Dataset::Open() {
  const char* env_dir = std::getenv("RAW_DATA_DIR");
  std::string dir = env_dir != nullptr ? env_dir : "/tmp/raw_bench_data";
  RAW_RETURN_NOT_OK(MakeDirs(dir));
  Dataset ds(dir);
  ds.d30_rows_ = EnvInt("RAW_BENCH_ROWS", ds.d30_rows_);
  ds.d120_rows_ = EnvInt("RAW_BENCH_ROWS_120", ds.d120_rows_);
  ds.higgs_events_ = EnvInt("RAW_BENCH_EVENTS", ds.higgs_events_);
  ds.higgs_files_ = static_cast<int>(EnvInt("RAW_BENCH_FILES",
                                            ds.higgs_files_));
  return ds;
}

StatusOr<std::string> Dataset::EnsureFile(
    const std::string& name,
    const std::function<Status(const std::string&)>& make) {
  std::string path = dir_ + "/" + name;
  if (FileExists(path)) return path;  // fast path, no lock traffic
  // Serialize generation across processes sharing one RAW_DATA_DIR: whoever
  // wins the lock generates; the rest block, then find the file present.
  RAW_ASSIGN_OR_RETURN(FileLock lock, FileLock::Acquire(path + ".lock"));
  if (!FileExists(path)) {
    // Write to a temp name then rename so interrupted runs don't leave a
    // truncated file behind that later runs would trust.
    std::string tmp = path + ".tmp";
    RAW_RETURN_NOT_OK(make(tmp));
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
      return Status::IOError("rename failed for " + path);
    }
  }
  return path;
}

TableSpec Dataset::D30Spec() const {
  return TableSpec::UniformInt32("d30", 30, d30_rows_, /*seed=*/42);
}

TableSpec Dataset::D120Spec() const {
  return TableSpec::Mixed120("d120", d120_rows_, /*seed=*/7);
}

StatusOr<std::string> Dataset::D30Csv() {
  return EnsureFile("d30_" + std::to_string(d30_rows_) + ".csv",
                    [&](const std::string& p) {
                      return WriteCsvFile(D30Spec(), p);
                    });
}

StatusOr<std::string> Dataset::D30Binary() {
  return EnsureFile("d30_" + std::to_string(d30_rows_) + ".bin",
                    [&](const std::string& p) {
                      return WriteBinaryFile(D30Spec(), p);
                    });
}

StatusOr<std::string> Dataset::D30CsvShuffled() {
  return EnsureFile("d30_" + std::to_string(d30_rows_) + "_shuffled.csv",
                    [&](const std::string& p) {
                      std::vector<int64_t> perm =
                          ShuffledPermutation(d30_rows_, /*seed=*/99);
                      return WriteCsvFile(D30Spec(), p, &perm);
                    });
}

StatusOr<std::string> Dataset::D30Jsonl() {
  return EnsureFile("d30_" + std::to_string(d30_rows_) + ".jsonl",
                    [&](const std::string& p) {
                      return WriteJsonlFile(D30Spec(), p);
                    });
}

StatusOr<std::string> Dataset::D30CsvGz() {
  return EnsureFile("d30_" + std::to_string(d30_rows_) + ".csv.gz",
                    [&](const std::string& p) {
                      return WriteCsvGzTable(D30Spec(), p);
                    });
}

StatusOr<std::string> Dataset::D120Csv() {
  return EnsureFile("d120_" + std::to_string(d120_rows_) + ".csv",
                    [&](const std::string& p) {
                      return WriteCsvFile(D120Spec(), p);
                    });
}

StatusOr<std::string> Dataset::D120Binary() {
  return EnsureFile("d120_" + std::to_string(d120_rows_) + ".bin",
                    [&](const std::string& p) {
                      return WriteBinaryFile(D120Spec(), p);
                    });
}

EventGenOptions Dataset::HiggsOptions(int file_index) const {
  EventGenOptions options;
  options.seed = 1000 + static_cast<uint64_t>(file_index);
  options.num_events = higgs_events_;
  return options;
}

StatusOr<std::vector<std::string>> Dataset::HiggsRefFiles() {
  std::vector<std::string> paths;
  for (int f = 0; f < higgs_files_; ++f) {
    EventGenOptions options = HiggsOptions(f);
    RAW_ASSIGN_OR_RETURN(
        std::string path,
        EnsureFile("higgs_" + std::to_string(higgs_events_) + "_" +
                       std::to_string(f) + ".ref",
                   [&](const std::string& p) {
                     return WriteRefFile(p, options);
                   }));
    paths.push_back(std::move(path));
  }
  return paths;
}

StatusOr<std::string> Dataset::GoodRunsCsv() {
  EventGenOptions options = HiggsOptions(0);
  return EnsureFile("good_runs.csv", [&](const std::string& p) {
    return WriteGoodRunsCsv(p, options);
  });
}

}  // namespace raw
