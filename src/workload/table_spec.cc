#include "workload/table_spec.h"

#include "common/hash.h"
#include "common/rng.h"

namespace raw {

TableSpec TableSpec::UniformInt32(std::string name, int num_columns,
                                  int64_t rows, uint64_t seed) {
  TableSpec spec;
  spec.name = std::move(name);
  spec.rows = rows;
  spec.seed = seed;
  spec.columns.assign(static_cast<size_t>(num_columns), ColumnSpec{});
  return spec;
}

TableSpec TableSpec::Mixed120(std::string name, int64_t rows, uint64_t seed) {
  TableSpec spec;
  spec.name = std::move(name);
  spec.rows = rows;
  spec.seed = seed;
  for (int c = 0; c < 120; ++c) {
    ColumnSpec col;
    // Even columns int32, odd columns float64; the paper's predicate column
    // (col 0 here) stays an integer and the aggregated column is a float.
    col.type = (c % 2 == 0) ? DataType::kInt32 : DataType::kFloat64;
    spec.columns.push_back(col);
  }
  return spec;
}

Schema TableSpec::ToSchema() const {
  Schema schema;
  for (size_t c = 0; c < columns.size(); ++c) {
    schema.AddField("col" + std::to_string(c), columns[c].type);
  }
  return schema;
}

Datum TableSpec::SelectivityLiteral(int column, double fraction) const {
  const ColumnSpec& col = columns[static_cast<size_t>(column)];
  double span = static_cast<double>(col.max_value - col.min_value);
  double x = static_cast<double>(col.min_value) + fraction * span;
  switch (col.type) {
    case DataType::kInt32:
      return Datum::Int32(static_cast<int32_t>(x));
    case DataType::kInt64:
      return Datum::Int64(static_cast<int64_t>(x));
    case DataType::kFloat32:
      return Datum::Float32(static_cast<float>(x));
    default:
      return Datum::Float64(x);
  }
}

Datum TableDataSource::Value(int64_t row, int column) const {
  const ColumnSpec& col = spec_.columns[static_cast<size_t>(column)];
  // Stateless per-cell randomness: hash (seed, row, column) into an RNG
  // stream so any cell is computable without generating its predecessors.
  uint64_t cell_seed = MixHash64(spec_.seed ^
                                 MixHash64(static_cast<uint64_t>(row) * 0x9e37u +
                                           static_cast<uint64_t>(column)));
  Rng rng(cell_seed);
  switch (col.type) {
    case DataType::kInt32:
      return Datum::Int32(rng.NextInt32(static_cast<int32_t>(col.min_value),
                                        static_cast<int32_t>(col.max_value)));
    case DataType::kInt64:
      return Datum::Int64(rng.NextInt64(col.min_value, col.max_value));
    case DataType::kFloat32:
      return Datum::Float32(static_cast<float>(
          rng.NextDouble(static_cast<double>(col.min_value),
                         static_cast<double>(col.max_value))));
    case DataType::kFloat64:
      return Datum::Float64(rng.NextDouble(
          static_cast<double>(col.min_value),
          static_cast<double>(col.max_value)));
    case DataType::kBool:
      return Datum::Bool(rng.NextBool());
    case DataType::kString:
      return Datum::String("s" + std::to_string(rng.NextBelow(1000000)));
  }
  return Datum();
}

void TableDataSource::Row(int64_t row, std::vector<Datum>* out) const {
  out->clear();
  out->reserve(spec_.columns.size());
  for (size_t c = 0; c < spec_.columns.size(); ++c) {
    out->push_back(Value(row, static_cast<int>(c)));
  }
}

std::vector<int64_t> ShuffledPermutation(int64_t rows, uint64_t seed) {
  std::vector<int64_t> perm(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) perm[static_cast<size_t>(i)] = i;
  Rng rng(seed);
  for (int64_t i = rows - 1; i > 0; --i) {
    int64_t j = static_cast<int64_t>(
        rng.NextBelow(static_cast<uint64_t>(i + 1)));
    std::swap(perm[static_cast<size_t>(i)], perm[static_cast<size_t>(j)]);
  }
  return perm;
}

}  // namespace raw
