#ifndef RAW_WORKLOAD_TABLE_SPEC_H_
#define RAW_WORKLOAD_TABLE_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/datum.h"
#include "common/schema.h"

namespace raw {

/// Value distribution of one generated column.
struct ColumnSpec {
  DataType type = DataType::kInt32;
  /// Uniform integer range [min_value, max_value] for int columns; floats
  /// draw uniformly from [min_value, max_value).
  int64_t min_value = 0;
  int64_t max_value = 999999999;  // paper: "values distributed randomly
                                  // between 0 and 10^9" (§4.2)
};

/// Deterministic description of an experiment table. Row values are a pure
/// function of (seed, row, column), so CSV and binary copies of the same
/// spec hold identical data (the paper generates both formats from one
/// dataset), and shuffled copies are cheap to produce.
struct TableSpec {
  std::string name;
  std::vector<ColumnSpec> columns;
  int64_t rows = 0;
  uint64_t seed = 42;

  /// The paper's §4.2 microbenchmark table: `num_columns` int32 columns,
  /// uniform in [0, 1e9).
  static TableSpec UniformInt32(std::string name, int num_columns,
                                int64_t rows, uint64_t seed = 42);

  /// The §5.2 wide table: 120 columns alternating int32 and float64
  /// ("more data types, including floating-point numbers").
  static TableSpec Mixed120(std::string name, int64_t rows, uint64_t seed = 7);

  /// Column names are col0, col1, ... colN-1 (paper counts from 1; we use
  /// 0-based names and note the mapping in EXPERIMENTS.md).
  Schema ToSchema() const;

  /// Predicate literal giving ~`fraction` selectivity for `col1 < X` style
  /// predicates on uniform columns.
  Datum SelectivityLiteral(int column, double fraction) const;
};

/// Random-access deterministic value source for a TableSpec.
class TableDataSource {
 public:
  explicit TableDataSource(const TableSpec& spec) : spec_(spec) {}

  /// Value of (row, column); pure function of the spec's seed.
  Datum Value(int64_t row, int column) const;

  /// Fills a full row.
  void Row(int64_t row, std::vector<Datum>* out) const;

  const TableSpec& spec() const { return spec_; }

 private:
  TableSpec spec_;
};

/// Deterministic permutation of [0, rows) (for the shuffled join copy).
std::vector<int64_t> ShuffledPermutation(int64_t rows, uint64_t seed);

}  // namespace raw

#endif  // RAW_WORKLOAD_TABLE_SPEC_H_
