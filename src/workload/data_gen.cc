#include "workload/data_gen.h"

#include <cstdio>

#include "binfmt/binary_writer.h"
#include "common/macros.h"
#include "csv/csv_writer.h"
#include "jsonl/jsonl_writer.h"
#include "zcsv/gzip_block.h"

namespace raw {

Status WriteCsvFile(const TableSpec& spec, const std::string& path,
                    const std::vector<int64_t>* permutation) {
  TableDataSource source(spec);
  CsvWriter writer(path);
  RAW_RETURN_NOT_OK(writer.Open());
  for (int64_t r = 0; r < spec.rows; ++r) {
    int64_t row = permutation != nullptr
                      ? (*permutation)[static_cast<size_t>(r)]
                      : r;
    for (size_t c = 0; c < spec.columns.size(); ++c) {
      Datum v = source.Value(row, static_cast<int>(c));
      switch (v.type()) {
        case DataType::kInt32:
          writer.AppendInt32(v.int32_value());
          break;
        case DataType::kInt64:
          writer.AppendInt64(v.int64_value());
          break;
        case DataType::kFloat32:
          writer.AppendFloat64(static_cast<double>(v.float32_value()));
          break;
        case DataType::kFloat64:
          writer.AppendFloat64(v.float64_value());
          break;
        case DataType::kBool:
          writer.AppendString(v.bool_value() ? "1" : "0");
          break;
        case DataType::kString:
          writer.AppendString(v.string_value());
          break;
      }
    }
    writer.EndRow();
  }
  return writer.Close();
}

Status WriteBinaryFile(const TableSpec& spec, const std::string& path,
                       const std::vector<int64_t>* permutation) {
  TableDataSource source(spec);
  RAW_ASSIGN_OR_RETURN(BinaryLayout layout,
                       BinaryLayout::Create(spec.ToSchema()));
  BinaryWriter writer(path, std::move(layout));
  RAW_RETURN_NOT_OK(writer.Open());
  for (int64_t r = 0; r < spec.rows; ++r) {
    int64_t row = permutation != nullptr
                      ? (*permutation)[static_cast<size_t>(r)]
                      : r;
    for (size_t c = 0; c < spec.columns.size(); ++c) {
      Datum v = source.Value(row, static_cast<int>(c));
      switch (v.type()) {
        case DataType::kInt32:
          writer.AppendInt32(v.int32_value());
          break;
        case DataType::kInt64:
          writer.AppendInt64(v.int64_value());
          break;
        case DataType::kFloat32:
          writer.AppendFloat32(v.float32_value());
          break;
        case DataType::kFloat64:
          writer.AppendFloat64(v.float64_value());
          break;
        case DataType::kBool:
          writer.AppendBool(v.bool_value());
          break;
        case DataType::kString:
          return Status::InvalidArgument("binary format cannot hold strings");
      }
    }
    writer.EndRow();
  }
  return writer.Close();
}

Status WriteJsonlFile(const TableSpec& spec, const std::string& path,
                      const std::vector<int64_t>* permutation) {
  TableDataSource source(spec);
  JsonlWriter writer(path, spec.ToSchema());
  RAW_RETURN_NOT_OK(writer.Open());
  std::vector<Datum> values(spec.columns.size());
  for (int64_t r = 0; r < spec.rows; ++r) {
    int64_t row = permutation != nullptr
                      ? (*permutation)[static_cast<size_t>(r)]
                      : r;
    for (size_t c = 0; c < spec.columns.size(); ++c) {
      values[c] = source.Value(row, static_cast<int>(c));
    }
    RAW_RETURN_NOT_OK(writer.AppendDatumRow(values));
  }
  return writer.Close();
}

Status WriteCsvGzTable(const TableSpec& spec, const std::string& path,
                       size_t block_bytes,
                       const std::vector<int64_t>* permutation) {
  // Reuse the CSV writer for byte-identical text, then gzip it in members.
  const std::string tmp = path + ".plain.tmp";
  RAW_RETURN_NOT_OK(WriteCsvFile(spec, tmp, permutation));
  std::string text;
  {
    FILE* f = fopen(tmp.c_str(), "rb");
    if (f == nullptr) return Status::IOError("cannot reopen '" + tmp + "'");
    char buf[64 * 1024];
    size_t n;
    while ((n = fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    fclose(f);
  }
  remove(tmp.c_str());
  return WriteCsvGzFile(path, text, block_bytes);
}

}  // namespace raw
