#ifndef RAW_SERVE_SERVER_H_
#define RAW_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/macros.h"
#include "common/status.h"
#include "common/statusor.h"
#include "engine/raw_engine.h"
#include "serve/admission.h"
#include "serve/wire.h"

namespace raw {
namespace serve {

struct ServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (tests).
  int port = 0;
  AdmissionOptions admission;
};

/// rawd's network front end: a poll()-based event loop accepts connections
/// and assembles length-framed requests, every query goes through the bounded
/// admission queue (priority classes, quotas, load shedding, deadlines), and
/// responses are written back from the worker that ran the query. One engine
/// Session per connection; dropping the connection releases it.
///
/// Lifecycle: Start() binds and spawns the loop; RequestDrain() stops
/// accepting, lets admitted work finish, then closes connections and stops
/// the loop (SIGTERM handling); Shutdown() is RequestDrain + join.
class RawServer {
 public:
  RawServer(RawEngine* engine, ServerOptions options);
  ~RawServer();
  RAW_DISALLOW_COPY_AND_ASSIGN(RawServer);

  /// Binds, listens and starts the event loop thread.
  Status Start();

  /// The bound port (after Start); useful with port 0.
  int port() const { return port_; }

  /// Graceful drain: stop accepting, finish in-flight and queued queries,
  /// flush responses, close connections, stop the loop. Idempotent.
  void RequestDrain();

  /// RequestDrain + join the loop thread. Idempotent; the destructor calls
  /// it too.
  void Shutdown();

  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  struct Connection {
    int fd = -1;
    FrameAssembler assembler;
    PriorityClass priority = PriorityClass::kInteractive;
    bool hello_done = false;
    bool closing = false;  // close once in-flight queries finish
    std::unique_ptr<Session> session;
    std::atomic<int64_t> inflight{0};
    /// Serializes response writes (worker threads vs the event loop).
    std::mutex write_mu;

    ~Connection();
  };

  void EventLoop();
  void AcceptPending();
  /// Reads available bytes; returns false when the peer is gone.
  bool ReadFrames(const std::shared_ptr<Connection>& conn);
  void DispatchFrame(const std::shared_ptr<Connection>& conn, Frame frame);
  void HandleQuery(const std::shared_ptr<Connection>& conn,
                   std::vector<uint8_t> payload);
  void CloseConnection(int fd);

  /// Blocking, mutex-guarded frame write (handles partial writes/EAGAIN).
  static void WriteFrame(const std::shared_ptr<Connection>& conn,
                         MessageType type,
                         const std::vector<uint8_t>& payload);

  RawEngine* engine_;
  ServerOptions options_;
  std::unique_ptr<AdmissionController> admission_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: wake poll() for shutdown
  int port_ = 0;
  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> stopped_{false};

  std::mutex conns_mu_;
  std::map<int, std::shared_ptr<Connection>> conns_;
};

}  // namespace serve
}  // namespace raw

#endif  // RAW_SERVE_SERVER_H_
