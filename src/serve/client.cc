#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace raw {
namespace serve {

namespace {
Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}
}  // namespace

RawClient::~RawClient() { Close(); }

RawClient::RawClient(RawClient&& other) noexcept
    : fd_(other.fd_),
      next_request_id_(other.next_request_id_),
      assembler_(std::move(other.assembler_)) {
  other.fd_ = -1;
}

RawClient& RawClient::operator=(RawClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    next_request_id_ = other.next_request_id_;
    assembler_ = std::move(other.assembler_);
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<std::unique_ptr<RawClient>> RawClient::Connect(
    const std::string& host, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("invalid host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Errno("connect");
    ::close(fd);
    return s;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<RawClient>(new RawClient(fd));
}

Status RawClient::Hello(PriorityClass priority) {
  PayloadWriter out;
  out.PutU8(static_cast<uint8_t>(priority));
  RAW_RETURN_NOT_OK(WriteFrame(MessageType::kHello, out.bytes()));
  RAW_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.type != MessageType::kHelloOk) {
    return Status::IOError("unexpected response to hello");
  }
  return Status::OK();
}

StatusOr<QueryResponse> RawClient::Query(const std::string& sql,
                                         uint32_t deadline_ms) {
  const uint64_t id = next_request_id_++;
  RAW_RETURN_NOT_OK(SendQuery(id, sql, deadline_ms));
  return ReadResponse();
}

Status RawClient::SendQuery(uint64_t request_id, const std::string& sql,
                            uint32_t deadline_ms) {
  if (request_id >= next_request_id_) next_request_id_ = request_id + 1;
  PayloadWriter out;
  out.PutU64(request_id);
  out.PutU32(deadline_ms);
  out.PutString(sql);
  return WriteFrame(MessageType::kQuery, out.bytes());
}

StatusOr<QueryResponse> RawClient::ReadResponse() {
  RAW_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  QueryResponse resp;
  PayloadReader reader(frame.payload);
  switch (frame.type) {
    case MessageType::kResult: {
      RAW_ASSIGN_OR_RETURN(resp.request_id, reader.U64());
      RAW_ASSIGN_OR_RETURN(resp.plan_seconds, reader.F64());
      RAW_ASSIGN_OR_RETURN(resp.execute_seconds, reader.F64());
      RAW_ASSIGN_OR_RETURN(resp.table, DeserializeTable(&reader));
      return resp;
    }
    case MessageType::kError: {
      RAW_ASSIGN_OR_RETURN(resp.request_id, reader.U64());
      RAW_ASSIGN_OR_RETURN(uint32_t code, reader.U32());
      RAW_ASSIGN_OR_RETURN(std::string message, reader.String());
      resp.status = Status(static_cast<StatusCode>(code), message);
      return resp;
    }
    case MessageType::kOverloaded: {
      RAW_ASSIGN_OR_RETURN(resp.request_id, reader.U64());
      RAW_ASSIGN_OR_RETURN(resp.overload_reason, reader.String());
      resp.overloaded = true;
      resp.status = Status::ResourceExhausted(resp.overload_reason);
      return resp;
    }
    default:
      return Status::IOError("unexpected response frame type");
  }
}

StatusOr<std::string> RawClient::Stats() {
  RAW_RETURN_NOT_OK(WriteFrame(MessageType::kStats, {}));
  RAW_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.type != MessageType::kStatsResult) {
    return Status::IOError("unexpected frame type for STATS response");
  }
  PayloadReader reader(frame.payload);
  return reader.String();
}

Status RawClient::Goodbye() {
  RAW_RETURN_NOT_OK(WriteFrame(MessageType::kGoodbye, {}));
  // Responses to still-pipelined queries may precede the goodbye ack.
  while (true) {
    RAW_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    if (frame.type == MessageType::kGoodbyeOk) break;
  }
  Close();
  return Status::OK();
}

void RawClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Status RawClient::WriteFrame(MessageType type,
                             const std::vector<uint8_t>& payload) {
  if (fd_ < 0) return Status::IOError("client not connected");
  std::vector<uint8_t> frame = EncodeFrame(type, payload);
  size_t written = 0;
  while (written < frame.size()) {
    ssize_t n = ::send(fd_, frame.data() + written, frame.size() - written,
                       MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

StatusOr<Frame> RawClient::ReadFrame() {
  if (fd_ < 0) return Status::IOError("client not connected");
  Frame frame;
  uint8_t buf[64 << 10];
  while (!assembler_.Pop(&frame)) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      RAW_RETURN_NOT_OK(assembler_.Feed(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) return Status::IOError("server closed the connection");
    if (errno == EINTR) continue;
    return Errno("recv");
  }
  return frame;
}

}  // namespace serve
}  // namespace raw
