#include "serve/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace raw {
namespace serve {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

void SetIoTimeout(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Dials host:port. With a connect timeout the socket goes non-blocking for
/// the duration of connect() and back to blocking after.
StatusOr<int> DialFd(const std::string& host, int port,
                     const RawClientOptions& options) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("invalid host address: " + host);
  }
  if (options.connect_timeout_ms > 0) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc < 0 && errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      rc = ::poll(&pfd, 1, options.connect_timeout_ms);
      if (rc == 0) {
        ::close(fd);
        return Status::IOError("connect to " + host + " timed out after " +
                               std::to_string(options.connect_timeout_ms) +
                               "ms");
      }
      int err = 0;
      socklen_t len = sizeof(err);
      if (rc < 0 ||
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
          err != 0) {
        if (err != 0) errno = err;
        Status s = Errno("connect");
        ::close(fd);
        return s;
      }
    } else if (rc < 0) {
      Status s = Errno("connect");
      ::close(fd);
      return s;
    }
    ::fcntl(fd, F_SETFL, flags);
  } else {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      Status s = Errno("connect");
      ::close(fd);
      return s;
    }
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  SetIoTimeout(fd, options.io_timeout_ms);
  return fd;
}

/// xorshift64* — deterministic jitter stream per client.
uint64_t NextRng(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545F4914F6CDD1Dull;
}

}  // namespace

RawClient::~RawClient() { Close(); }

RawClient::RawClient(RawClient&& other) noexcept
    : fd_(other.fd_),
      host_(std::move(other.host_)),
      port_(other.port_),
      options_(other.options_),
      hello_sent_(other.hello_sent_),
      priority_(other.priority_),
      jitter_state_(other.jitter_state_),
      retries_(other.retries_),
      reconnects_(other.reconnects_),
      next_request_id_(other.next_request_id_),
      assembler_(std::move(other.assembler_)) {
  other.fd_ = -1;
}

RawClient& RawClient::operator=(RawClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    host_ = std::move(other.host_);
    port_ = other.port_;
    options_ = other.options_;
    hello_sent_ = other.hello_sent_;
    priority_ = other.priority_;
    jitter_state_ = other.jitter_state_;
    retries_ = other.retries_;
    reconnects_ = other.reconnects_;
    next_request_id_ = other.next_request_id_;
    assembler_ = std::move(other.assembler_);
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<std::unique_ptr<RawClient>> RawClient::Connect(
    const std::string& host, int port, RawClientOptions options) {
  RAW_ASSIGN_OR_RETURN(int fd, DialFd(host, port, options));
  return std::unique_ptr<RawClient>(
      new RawClient(fd, host, port, options));
}

Status RawClient::Hello(PriorityClass priority) {
  priority_ = priority;
  PayloadWriter out;
  out.PutU8(static_cast<uint8_t>(priority));
  RAW_RETURN_NOT_OK(WriteFrame(MessageType::kHello, out.bytes()));
  RAW_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.type != MessageType::kHelloOk) {
    return Status::ProtocolError("unexpected response to hello");
  }
  hello_sent_ = true;
  return Status::OK();
}

bool RawClient::RetryableTransport(const Status& s) {
  return s.code() == StatusCode::kIOError ||
         s.code() == StatusCode::kProtocolError;
}

Status RawClient::Reconnect() {
  Close();
  RAW_ASSIGN_OR_RETURN(int fd, DialFd(host_, port_, options_));
  fd_ = fd;
  assembler_ = FrameAssembler();
  if (hello_sent_) {
    Status hello = Hello(priority_);
    if (!hello.ok()) {
      Close();
      return hello;
    }
  }
  ++reconnects_;
  return Status::OK();
}

void RawClient::BackoffSleep(int64_t* backoff_ms) {
  if (jitter_state_ == 0) {
    jitter_state_ = options_.jitter_seed != 0 ? options_.jitter_seed : 1;
  }
  // Sleep uniformly in [backoff/2, backoff]: desynchronizes clients that
  // failed together without ever collapsing the wait to zero.
  const int64_t base = *backoff_ms;
  const int64_t half = base / 2;
  const int64_t jitter =
      half > 0 ? static_cast<int64_t>(NextRng(&jitter_state_) %
                                      static_cast<uint64_t>(half + 1))
               : 0;
  std::this_thread::sleep_for(std::chrono::milliseconds(half + jitter));
  *backoff_ms = std::min<int64_t>(base * 2,
                                  std::max(1, options_.backoff_max_ms));
}

StatusOr<QueryResponse> RawClient::Query(const std::string& sql,
                                         uint32_t deadline_ms) {
  int64_t backoff_ms = std::max(1, options_.backoff_initial_ms);
  for (int attempt = 0;; ++attempt) {
    StatusOr<QueryResponse> resp = [&]() -> StatusOr<QueryResponse> {
      const uint64_t id = next_request_id_++;
      RAW_RETURN_NOT_OK(SendQuery(id, sql, deadline_ms));
      return ReadResponse();
    }();

    bool retry = false;
    if (!resp.ok() && RetryableTransport(resp.status())) {
      // The connection's stream position is unknown after a transport
      // fault; drop it so the retry reconnects from scratch.
      Close();
      retry = true;
    } else if (resp.ok() && resp->overloaded && options_.retry_overloaded) {
      retry = true;
    }
    if (!retry || attempt >= options_.max_retries) return resp;

    ++retries_;
    BackoffSleep(&backoff_ms);
    if (!connected()) {
      Status re = Reconnect();
      if (!re.ok() && attempt + 1 >= options_.max_retries) return re;
      // A failed reconnect consumes the attempt; the next loop iteration
      // retries the dial after another backoff.
    }
  }
}

Status RawClient::SendQuery(uint64_t request_id, const std::string& sql,
                            uint32_t deadline_ms) {
  if (request_id >= next_request_id_) next_request_id_ = request_id + 1;
  PayloadWriter out;
  out.PutU64(request_id);
  out.PutU32(deadline_ms);
  out.PutString(sql);
  return WriteFrame(MessageType::kQuery, out.bytes());
}

StatusOr<QueryResponse> RawClient::ReadResponse() {
  RAW_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  QueryResponse resp;
  PayloadReader reader(frame.payload);
  switch (frame.type) {
    case MessageType::kResult: {
      RAW_ASSIGN_OR_RETURN(resp.request_id, reader.U64());
      RAW_ASSIGN_OR_RETURN(resp.plan_seconds, reader.F64());
      RAW_ASSIGN_OR_RETURN(resp.execute_seconds, reader.F64());
      RAW_ASSIGN_OR_RETURN(resp.table, DeserializeTable(&reader));
      return resp;
    }
    case MessageType::kError: {
      RAW_ASSIGN_OR_RETURN(resp.request_id, reader.U64());
      RAW_ASSIGN_OR_RETURN(uint32_t code, reader.U32());
      RAW_ASSIGN_OR_RETURN(std::string message, reader.String());
      resp.status = Status(static_cast<StatusCode>(code), message);
      return resp;
    }
    case MessageType::kOverloaded: {
      RAW_ASSIGN_OR_RETURN(resp.request_id, reader.U64());
      RAW_ASSIGN_OR_RETURN(resp.overload_reason, reader.String());
      resp.overloaded = true;
      resp.status = Status::ResourceExhausted(resp.overload_reason);
      return resp;
    }
    default:
      return Status::ProtocolError("unexpected response frame type");
  }
}

StatusOr<std::string> RawClient::Stats() {
  RAW_RETURN_NOT_OK(WriteFrame(MessageType::kStats, {}));
  RAW_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.type != MessageType::kStatsResult) {
    return Status::ProtocolError("unexpected frame type for STATS response");
  }
  PayloadReader reader(frame.payload);
  return reader.String();
}

Status RawClient::Goodbye() {
  RAW_RETURN_NOT_OK(WriteFrame(MessageType::kGoodbye, {}));
  // Responses to still-pipelined queries may precede the goodbye ack.
  while (true) {
    RAW_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    if (frame.type == MessageType::kGoodbyeOk) break;
  }
  Close();
  return Status::OK();
}

void RawClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Status RawClient::WriteFrame(MessageType type,
                             const std::vector<uint8_t>& payload) {
  if (fd_ < 0) return Status::IOError("client not connected");
  std::vector<uint8_t> frame = EncodeFrame(type, payload);
  size_t written = 0;
  while (written < frame.size()) {
    ssize_t n = ::send(fd_, frame.data() + written, frame.size() - written,
                       MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Status::IOError("send timed out");
    }
    return Errno("send");
  }
  return Status::OK();
}

StatusOr<Frame> RawClient::ReadFrame() {
  if (fd_ < 0) return Status::IOError("client not connected");
  Frame frame;
  uint8_t buf[64 << 10];
  while (!assembler_.Pop(&frame)) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      RAW_RETURN_NOT_OK(assembler_.Feed(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) {
      // Clean EOF between frames means the server hung up; EOF with a frame
      // half-buffered means the stream was truncated mid-message.
      if (assembler_.has_partial_frame()) {
        return Status::ProtocolError(
            "server closed the connection mid-frame (truncated stream)");
      }
      return Status::IOError("server closed the connection");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::IOError("recv timed out");
    }
    return Errno("recv");
  }
  return frame;
}

}  // namespace serve
}  // namespace raw
