#ifndef RAW_SERVE_STATS_JSON_H_
#define RAW_SERVE_STATS_JSON_H_

#include <string>

#include "engine/raw_engine.h"

namespace raw {
namespace serve {

/// Renders an EngineStats snapshot as a JSON object (the STATS wire
/// command's payload): cache/admission/query counters, the autotune
/// materializer + result-cache counters, and one object per table with its
/// adaptive state and per-column access counts.
std::string EngineStatsJson(const EngineStats& stats);

}  // namespace serve
}  // namespace raw

#endif  // RAW_SERVE_STATS_JSON_H_
