#include "serve/server.h"

#include "serve/stats_json.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace raw {
namespace serve {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

RawServer::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

RawServer::RawServer(RawEngine* engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {
  admission_ = std::make_unique<AdmissionController>(
      options_.admission, &engine_->admission_counters());
}

RawServer::~RawServer() { Shutdown(); }

Status RawServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, 64) < 0) return Errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  SetNonBlocking(listen_fd_);

  if (::pipe(wake_pipe_) < 0) return Errno("pipe");
  SetNonBlocking(wake_pipe_[0]);
  SetNonBlocking(wake_pipe_[1]);

  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { EventLoop(); });
  return Status::OK();
}

void RawServer::RequestDrain() {
  if (drain_requested_.exchange(true)) return;
  admission_->BeginDrain();
  // Wake poll() so the loop observes the drain promptly.
  char b = 1;
  if (wake_pipe_[1] >= 0) {
    ssize_t ignored = ::write(wake_pipe_[1], &b, 1);
    (void)ignored;
  }
}

void RawServer::Shutdown() {
  if (stopped_.exchange(true)) return;
  RequestDrain();
  if (loop_thread_.joinable()) loop_thread_.join();
  admission_.reset();  // joins workers; all responses flushed
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  running_.store(false, std::memory_order_release);
}

void RawServer::EventLoop() {
  while (true) {
    std::vector<pollfd> fds;
    std::vector<std::shared_ptr<Connection>> polled;
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    const bool accepting = !drain_requested_.load(std::memory_order_acquire);
    if (accepting) fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto& [fd, conn] : conns_) {
        fds.push_back(pollfd{fd, POLLIN, 0});
        polled.push_back(conn);
      }
    }
    ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);

    // Drain the wake pipe.
    if (fds[0].revents & POLLIN) {
      char buf[64];
      while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (accepting && (fds[1].revents & POLLIN)) AcceptPending();

    const size_t conn_base = accepting ? 2 : 1;
    for (size_t i = 0; i < polled.size(); ++i) {
      const short revents = fds[conn_base + i].revents;
      if (revents & (POLLIN | POLLHUP | POLLERR)) {
        if (!ReadFrames(polled[i])) CloseConnection(polled[i]->fd);
      }
    }

    // Close connections that said goodbye once their queries finished.
    {
      std::vector<int> done;
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto& [fd, conn] : conns_) {
        if (conn->closing &&
            conn->inflight.load(std::memory_order_acquire) == 0) {
          done.push_back(fd);
        }
      }
      for (int fd : done) {
        auto it = conns_.find(fd);
        if (it != conns_.end()) {
          ::shutdown(it->second->fd, SHUT_RDWR);
          conns_.erase(it);
        }
      }
    }

    if (drain_requested_.load(std::memory_order_acquire)) {
      // Graceful drain: every admitted query finishes and its response is
      // written (WriteFrame is synchronous), then connections close.
      admission_->Drain();
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto& [fd, conn] : conns_) ::shutdown(fd, SHUT_RDWR);
      conns_.clear();
      return;
    }
  }
}

void RawServer::AcceptPending() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error
    SetNonBlocking(fd);
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_[fd] = std::move(conn);
  }
}

bool RawServer::ReadFrames(const std::shared_ptr<Connection>& conn) {
  uint8_t buf[64 << 10];
  while (true) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      Status fed = conn->assembler.Feed(buf, static_cast<size_t>(n));
      if (!fed.ok()) {
        // Oversized/corrupt frame: tell the peer why before dropping it —
        // a silent close is indistinguishable from a server crash.
        PayloadWriter out;
        out.PutU64(0);
        out.PutU32(static_cast<uint32_t>(StatusCode::kProtocolError));
        out.PutString(std::string(fed.message()));
        WriteFrame(conn, MessageType::kError, out.bytes());
        return false;
      }
      continue;
    }
    if (n == 0) {
      // Peer closed. A leftover partial frame means the stream was cut
      // mid-message (crash or network truncation) rather than a clean
      // hangup; either way the connection is done.
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  Frame frame;
  while (conn->assembler.Pop(&frame)) {
    DispatchFrame(conn, std::move(frame));
    if (conn->closing) break;  // no requests after goodbye
  }
  return true;
}

void RawServer::DispatchFrame(const std::shared_ptr<Connection>& conn,
                              Frame frame) {
  switch (frame.type) {
    case MessageType::kHello: {
      PayloadReader reader(frame.payload);
      StatusOr<uint8_t> priority = reader.U8();
      if (priority.ok() && *priority <= 1) {
        conn->priority = static_cast<PriorityClass>(*priority);
      }
      if (conn->session == nullptr) conn->session = engine_->OpenSession();
      conn->hello_done = true;
      WriteFrame(conn, MessageType::kHelloOk, {});
      return;
    }
    case MessageType::kQuery:
      HandleQuery(conn, std::move(frame.payload));
      return;
    case MessageType::kStats: {
      // Introspection is served inline on the event loop — reading counters
      // is cheap and must keep working while the admission queue sheds, so
      // operators can watch an overloaded server.
      PayloadWriter out;
      out.PutString(EngineStatsJson(engine_->Stats()));
      WriteFrame(conn, MessageType::kStatsResult, out.bytes());
      return;
    }
    case MessageType::kGoodbye:
      WriteFrame(conn, MessageType::kGoodbyeOk, {});
      conn->closing = true;
      return;
    default: {
      PayloadWriter out;
      out.PutU64(0);
      out.PutU32(static_cast<uint32_t>(StatusCode::kInvalidArgument));
      out.PutString("unknown message type");
      WriteFrame(conn, MessageType::kError, out.bytes());
      return;
    }
  }
}

void RawServer::HandleQuery(const std::shared_ptr<Connection>& conn,
                            std::vector<uint8_t> payload) {
  PayloadReader reader(payload);
  uint64_t request_id = 0;
  uint32_t deadline_ms = 0;
  std::string sql;
  Status parsed = [&]() -> Status {
    RAW_ASSIGN_OR_RETURN(request_id, reader.U64());
    RAW_ASSIGN_OR_RETURN(deadline_ms, reader.U32());
    RAW_ASSIGN_OR_RETURN(sql, reader.String());
    return Status::OK();
  }();
  if (!parsed.ok()) {
    PayloadWriter out;
    out.PutU64(request_id);
    out.PutU32(static_cast<uint32_t>(parsed.code()));
    out.PutString(std::string(parsed.message()));
    WriteFrame(conn, MessageType::kError, out.bytes());
    return;
  }
  if (conn->session == nullptr) conn->session = engine_->OpenSession();

  // Preempt background materialization at *admission*, not first plan: a
  // queued query must never wait behind speculative work.
  engine_->NoteForegroundActivity();

  const Deadline deadline = deadline_ms > 0
                                ? Deadline::AfterMillis(deadline_ms)
                                : Deadline();
  conn->inflight.fetch_add(1, std::memory_order_acq_rel);
  RawEngine* engine = engine_;
  auto job = [conn, engine, request_id, deadline,
              sql = std::move(sql)](const Status& admission) {
    if (!admission.ok()) {
      PayloadWriter out;
      out.PutU64(request_id);
      out.PutU32(static_cast<uint32_t>(admission.code()));
      out.PutString(std::string(admission.message()));
      WriteFrame(conn, MessageType::kError, out.bytes());
      conn->inflight.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }
    PlannerOptions options = conn->session->planner_options();
    options.deadline = deadline;
    StatusOr<QueryResult> result = conn->session->Query(sql, options);
    if (!result.ok()) {
      if (result.status().code() == StatusCode::kResourceExhausted) {
        engine->admission_counters().deadline_expired.fetch_add(
            1, std::memory_order_relaxed);
      }
      PayloadWriter out;
      out.PutU64(request_id);
      out.PutU32(static_cast<uint32_t>(result.status().code()));
      out.PutString(std::string(result.status().message()));
      WriteFrame(conn, MessageType::kError, out.bytes());
    } else {
      PayloadWriter out;
      out.PutU64(request_id);
      out.PutF64(result->plan_seconds);
      out.PutF64(result->execute_seconds);
      SerializeTable(result->table, &out);
      WriteFrame(conn, MessageType::kResult, out.bytes());
    }
    conn->inflight.fetch_sub(1, std::memory_order_acq_rel);
  };

  Status admitted =
      admission_->Submit(conn->priority,
                         static_cast<int64_t>(payload.size()), deadline,
                         std::move(job));
  if (!admitted.ok()) {
    // Shed (or draining): typed fast-fail, never queued.
    conn->inflight.fetch_sub(1, std::memory_order_acq_rel);
    if (admitted.code() == StatusCode::kResourceExhausted) {
      PayloadWriter out;
      out.PutU64(request_id);
      out.PutString(std::string(admitted.message()));
      WriteFrame(conn, MessageType::kOverloaded, out.bytes());
    } else {
      PayloadWriter out;
      out.PutU64(request_id);
      out.PutU32(static_cast<uint32_t>(admitted.code()));
      out.PutString(std::string(admitted.message()));
      WriteFrame(conn, MessageType::kError, out.bytes());
    }
  }
}

void RawServer::CloseConnection(int fd) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  // shutdown() (not close()) so in-flight workers holding the Connection
  // cannot write into a recycled descriptor; close happens when the last
  // shared_ptr drops.
  ::shutdown(it->second->fd, SHUT_RDWR);
  conns_.erase(it);
}

void RawServer::WriteFrame(const std::shared_ptr<Connection>& conn,
                           MessageType type,
                           const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame = EncodeFrame(type, payload);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  size_t written = 0;
  while (written < frame.size()) {
    ssize_t n = ::send(conn->fd, frame.data() + written,
                       frame.size() - written, MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{conn->fd, POLLOUT, 0};
      ::poll(&pfd, 1, /*timeout_ms=*/1000);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return;  // peer gone; response dropped
  }
}

}  // namespace serve
}  // namespace raw
