#include "serve/admission.h"

#include <algorithm>
#include <atomic>

#include "engine/raw_engine.h"

namespace raw {
namespace serve {

namespace {
inline int ClassIndex(PriorityClass p) { return static_cast<int>(p); }
}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options,
                                         AdmissionCounters* counters)
    : options_(std::move(options)), counters_(counters) {
  const int workers = std::max(options_.num_workers, 1);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AdmissionController::~AdmissionController() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

Status AdmissionController::Submit(PriorityClass priority, int64_t cost_bytes,
                                   Deadline deadline, Job job) {
  const int ci = ClassIndex(priority);
  const ClassLimits& limits =
      priority == PriorityClass::kInteractive ? options_.interactive
                                              : options_.batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_ || stop_) {
      return Status::InvalidArgument("server is draining");
    }
    std::deque<Request>& queue =
        priority == PriorityClass::kInteractive ? interactive_ : batch_;
    const int64_t total_queued =
        static_cast<int64_t>(interactive_.size() + batch_.size());
    if (total_queued >= options_.max_total_queued) {
      if (counters_ != nullptr) {
        counters_->shed.fetch_add(1, std::memory_order_relaxed);
      }
      return Status::ResourceExhausted("OVERLOADED: global queue full");
    }
    if (static_cast<int>(queue.size()) >= limits.max_queued) {
      if (counters_ != nullptr) {
        counters_->shed.fetch_add(1, std::memory_order_relaxed);
      }
      return Status::ResourceExhausted("OVERLOADED: class queue full");
    }
    if (queued_bytes_[ci] + cost_bytes > limits.max_queued_bytes) {
      if (counters_ != nullptr) {
        counters_->shed.fetch_add(1, std::memory_order_relaxed);
      }
      return Status::ResourceExhausted("OVERLOADED: class byte quota full");
    }
    queued_bytes_[ci] += cost_bytes;
    queue.push_back(Request{priority, cost_bytes, deadline, std::move(job)});
    if (counters_ != nullptr) {
      counters_->admitted.fetch_add(1, std::memory_order_relaxed);
      counters_->queued.fetch_add(1, std::memory_order_relaxed);
    }
  }
  work_cv_.notify_one();
  return Status::OK();
}

bool AdmissionController::PickLocked(Request* out) {
  // Interactive strictly before batch, each FIFO, respecting the per-class
  // running caps. A class at its cap does not block the other.
  for (std::deque<Request>* queue : {&interactive_, &batch_}) {
    if (queue->empty()) continue;
    const PriorityClass p = queue->front().priority;
    const ClassLimits& limits =
        p == PriorityClass::kInteractive ? options_.interactive
                                         : options_.batch;
    if (running_[ClassIndex(p)] >= limits.max_concurrent) continue;
    *out = std::move(queue->front());
    queue->pop_front();
    return true;
  }
  return false;
}

void AdmissionController::WorkerLoop() {
  while (true) {
    Request req;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stop_ ||
               (!interactive_.empty() &&
                running_[0] < options_.interactive.max_concurrent) ||
               (!batch_.empty() &&
                running_[1] < options_.batch.max_concurrent);
      });
      if (stop_ && interactive_.empty() && batch_.empty()) return;
      if (!PickLocked(&req)) continue;
      const int ci = ClassIndex(req.priority);
      queued_bytes_[ci] -= req.cost_bytes;
      ++running_[ci];
      ++total_running_;
      if (counters_ != nullptr) {
        // Mirror the queued->running transition into the engine-owned
        // gauges (the background materializer's idle predicate reads them).
        counters_->queued.fetch_sub(1, std::memory_order_relaxed);
        counters_->running.fetch_add(1, std::memory_order_relaxed);
      }
    }
    Status admission = Status::OK();
    if (req.deadline.expired()) {
      admission =
          Status::ResourceExhausted("deadline expired before execution");
      if (counters_ != nullptr) {
        counters_->deadline_expired.fetch_add(1, std::memory_order_relaxed);
      }
    }
    req.job(admission);
    if (counters_ != nullptr) {
      counters_->running.fetch_sub(1, std::memory_order_relaxed);
      if (admission.ok()) {
        counters_->executed.fetch_add(1, std::memory_order_relaxed);
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_[ClassIndex(req.priority)];
      --total_running_;
      if (total_running_ == 0 && interactive_.empty() && batch_.empty()) {
        idle_cv_.notify_all();
      }
    }
    // A freed class slot may unblock a queued peer.
    work_cv_.notify_one();
  }
}

void AdmissionController::BeginDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
}

void AdmissionController::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  idle_cv_.wait(lock, [this] {
    return total_running_ == 0 && interactive_.empty() && batch_.empty();
  });
}

int64_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(interactive_.size() + batch_.size());
}

int64_t AdmissionController::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_running_;
}

}  // namespace serve
}  // namespace raw
