#ifndef RAW_SERVE_WIRE_H_
#define RAW_SERVE_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "columnar/batch.h"
#include "common/macros.h"
#include "common/status.h"
#include "common/statusor.h"

namespace raw {
namespace serve {

/// rawd wire protocol: every message is one length-framed unit
///
///   [u32 payload_len][u8 type][payload bytes...]
///
/// with all integers little-endian and payload_len counting only the payload
/// (not the 5-byte header). Payloads are capped at kMaxPayloadBytes so a
/// corrupt or hostile peer cannot make the server buffer unboundedly.
inline constexpr uint32_t kMaxPayloadBytes = 64u << 20;  // 64 MiB

enum class MessageType : uint8_t {
  // Requests (client -> server).
  kHello = 1,     // u8 priority class; must be the first message
  kQuery = 2,     // u64 request_id, u32 deadline_ms (0 = none), u32 len, sql
  kGoodbye = 3,   // empty; server flushes and closes after kGoodbyeOk
  kStats = 4,     // empty; served inline (no admission queue)
  // Responses (server -> client).
  kHelloOk = 128,     // empty
  kResult = 129,      // u64 request_id, f64 plan_s, f64 exec_s, table
  kError = 130,       // u64 request_id, u32 status code, u32 len, message
  kOverloaded = 131,  // u64 request_id, u32 len, reason — typed fast-fail
  kGoodbyeOk = 132,   // empty
  kStatsResult = 133,  // u32 len, EngineStats snapshot as JSON text
};

/// Client priority classes; the admission controller gives kInteractive
/// strict dequeue priority and separate quota limits.
enum class PriorityClass : uint8_t {
  kInteractive = 0,
  kBatch = 1,
};

/// One decoded frame (type + raw payload).
struct Frame {
  MessageType type;
  std::vector<uint8_t> payload;
};

/// Little-endian append-only payload builder.
class PayloadWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutF64(double v) { PutRaw(&v, sizeof(v)); }
  void PutBytes(const void* data, size_t size) { PutRaw(data, size); }
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  void PutRaw(const void* data, size_t size) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }
  std::vector<uint8_t> buf_;
};

/// Bounds-checked little-endian payload reader.
class PayloadReader {
 public:
  PayloadReader(const uint8_t* data, size_t size)
      : data_(data), size_(size) {}
  explicit PayloadReader(const std::vector<uint8_t>& payload)
      : PayloadReader(payload.data(), payload.size()) {}

  StatusOr<uint8_t> U8();
  StatusOr<uint32_t> U32();
  StatusOr<uint64_t> U64();
  StatusOr<double> F64();
  StatusOr<std::string> String();  // u32 length prefix + bytes
  Status Bytes(void* out, size_t size);
  size_t remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Encodes a complete frame (header + payload) ready to write to a socket.
std::vector<uint8_t> EncodeFrame(MessageType type,
                                 const std::vector<uint8_t>& payload);

/// Serializes a materialized result table: schema, then column-major data
/// (fixed-width columns as raw buffers, strings length-prefixed per value).
void SerializeTable(const ColumnBatch& table, PayloadWriter* out);

/// Inverse of SerializeTable.
StatusOr<ColumnBatch> DeserializeTable(PayloadReader* in);

/// Incremental frame assembler for a nonblocking byte stream. Feed it
/// whatever bytes arrived; it yields complete frames and enforces the
/// payload cap.
class FrameAssembler {
 public:
  /// Appends raw bytes from the stream.
  Status Feed(const uint8_t* data, size_t size);

  /// Pops the next complete frame into `out`. Returns false when more bytes
  /// are needed.
  bool Pop(Frame* out);

  /// True while a frame is partially buffered — the peer closing now means
  /// the stream was cut mid-frame (a protocol error), not a clean EOF.
  bool has_partial_frame() const { return buf_.size() > consumed_; }

 private:
  std::vector<uint8_t> buf_;
  size_t consumed_ = 0;  // bytes of buf_ already popped
};

}  // namespace serve
}  // namespace raw

#endif  // RAW_SERVE_WIRE_H_
