#include "serve/stats_json.h"

#include <sstream>

#include "format/format.h"

namespace raw {
namespace serve {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
void AppendJsonString(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          os << "\\u00" << kHex[(c >> 4) & 0xF] << kHex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// "key":value helpers; `first` tracks comma placement per object.
struct ObjectWriter {
  std::ostringstream& os;
  bool first = true;

  explicit ObjectWriter(std::ostringstream& out) : os(out) { os << '{'; }
  void Key(const char* key) {
    if (!first) os << ',';
    first = false;
    AppendJsonString(os, key);
    os << ':';
  }
  void Int(const char* key, int64_t v) {
    Key(key);
    os << v;
  }
  void Bool(const char* key, bool v) {
    Key(key);
    os << (v ? "true" : "false");
  }
  void Str(const char* key, const std::string& v) {
    Key(key);
    AppendJsonString(os, v);
  }
  void Close() { os << '}'; }
};

void CacheJson(std::ostringstream& os, const char* name,
               const CacheStats& c, ObjectWriter& parent) {
  parent.Key(name);
  ObjectWriter o(os);
  o.Int("entries", c.entries);
  o.Int("bytes", c.bytes);
  o.Int("hits", c.hits);
  o.Int("misses", c.misses);
  o.Int("evictions", c.evictions);
  o.Close();
}

}  // namespace

std::string EngineStatsJson(const EngineStats& stats) {
  std::ostringstream os;
  ObjectWriter root(os);

  CacheJson(os, "shred_cache", stats.shred_cache, root);

  root.Key("result_cache");
  {
    ObjectWriter o(os);
    o.Int("entries", stats.result_cache.entries);
    o.Int("bytes", stats.result_cache.bytes);
    o.Int("hits", stats.result_cache.hits);
    o.Int("misses", stats.result_cache.misses);
    o.Int("inserted", stats.result_cache.inserted);
    o.Int("invalidated", stats.result_cache.invalidated);
    o.Int("evictions", stats.result_cache.evictions);
    o.Close();
  }

  root.Key("materializer");
  {
    ObjectWriter o(os);
    o.Int("passes", stats.materializer.passes);
    o.Int("actions_started", stats.materializer.actions_started);
    o.Int("actions_completed", stats.materializer.actions_completed);
    o.Int("actions_preempted", stats.materializer.actions_preempted);
    o.Int("actions_failed", stats.materializer.actions_failed);
    o.Int("actions_skipped_budget", stats.materializer.actions_skipped_budget);
    o.Int("pmaps_built", stats.materializer.pmaps_built);
    o.Int("columns_cached", stats.materializer.columns_cached);
    o.Int("tables_loaded", stats.materializer.tables_loaded);
    o.Close();
  }

  root.Key("jit_cache");
  {
    ObjectWriter o(os);
    o.Int("entries", stats.jit_cache.entries);
    o.Int("hits", stats.jit_cache.hits);
    o.Int("misses", stats.jit_cache.misses);
    o.Int("compiles", stats.jit_cache.compiles);
    o.Key("compile_seconds");
    os << stats.jit_cache.total_compile_seconds;
    o.Bool("compiler_available", stats.jit_cache.compiler_available);
    o.Close();
  }

  root.Key("planner");
  {
    ObjectWriter o(os);
    o.Int("plans_fused", stats.plans_fused);
    o.Int("plans_interpreted", stats.plans_interpreted);
    o.Close();
  }

  root.Key("robustness");
  {
    ObjectWriter o(os);
    o.Int("rows_skipped", stats.rows_skipped);
    o.Int("rows_nulled", stats.rows_nulled);
    o.Int("io_faults", stats.io_faults);
    o.Int("faults_injected", stats.faults_injected);
    o.Close();
  }

  root.Key("admission");
  {
    ObjectWriter o(os);
    o.Int("admitted", stats.admission.admitted);
    o.Int("executed", stats.admission.executed);
    o.Int("shed", stats.admission.shed);
    o.Int("deadline_expired", stats.admission.deadline_expired);
    o.Int("queued", stats.admission.queued);
    o.Int("running", stats.admission.running);
    o.Close();
  }

  root.Int("sessions_opened", stats.sessions_opened);
  root.Int("sessions_closed", stats.sessions_closed);
  root.Int("queries_parsed", stats.queries_parsed);
  root.Int("queries_planned", stats.queries_planned);
  root.Int("queries_executed", stats.queries_executed);
  root.Int("queries_inflight", stats.queries_inflight);

  root.Key("tables");
  os << '[';
  bool first_table = true;
  for (const TableStats& t : stats.tables) {
    if (!first_table) os << ',';
    first_table = false;
    ObjectWriter o(os);
    o.Str("name", t.name);
    o.Str("format", std::string(FileFormatToString(t.format)));
    o.Int("row_count", t.row_count);
    o.Int("pmap_rows", t.pmap_rows);
    o.Int("pmap_bytes", t.pmap_bytes);
    o.Int("format_state_bytes", t.format_state_bytes);
    o.Bool("loaded", t.loaded);
    o.Int("scans", t.scans);
    o.Int("version", t.version);
    o.Int("file_size", t.file_size);
    o.Int("file_mtime_ns", t.file_mtime_ns);
    o.Key("column_accesses");
    os << '[';
    for (size_t i = 0; i < t.column_accesses.size(); ++i) {
      if (i > 0) os << ',';
      os << t.column_accesses[i];
    }
    os << ']';
    o.Close();
  }
  os << ']';

  root.Close();
  return os.str();
}

}  // namespace serve
}  // namespace raw
