#ifndef RAW_SERVE_CLIENT_H_
#define RAW_SERVE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "columnar/batch.h"
#include "common/macros.h"
#include "common/status.h"
#include "common/statusor.h"
#include "serve/wire.h"

namespace raw {
namespace serve {

/// One query's outcome as seen over the wire.
struct QueryResponse {
  uint64_t request_id = 0;
  /// Server-side verdict: OK with `table` filled, or the error the engine
  /// (or the admission controller) returned. Overload sheds surface as
  /// ResourceExhausted with `overloaded` set.
  Status status = Status::OK();
  ColumnBatch table;
  /// True when the server shed the request (typed kOverloaded frame) rather
  /// than executing and failing it.
  bool overloaded = false;
  std::string overload_reason;
  double plan_seconds = 0;
  double execute_seconds = 0;
};

/// Blocking client for the rawd wire protocol. Not thread-safe; use one per
/// thread. Query() is the simple request/response path; SendQuery() /
/// ReadResponse() expose pipelining (several requests in flight on one
/// connection) for load drivers and quota tests.
class RawClient {
 public:
  ~RawClient();
  RAW_DISALLOW_COPY_AND_ASSIGN(RawClient);
  RawClient(RawClient&& other) noexcept;
  RawClient& operator=(RawClient&& other) noexcept;

  /// Connects a blocking TCP socket to `host:port`.
  static StatusOr<std::unique_ptr<RawClient>> Connect(const std::string& host,
                                                      int port);

  /// Declares the connection's priority class; must precede queries.
  Status Hello(PriorityClass priority = PriorityClass::kInteractive);

  /// One-shot: SendQuery + ReadResponse. deadline_ms 0 means no deadline.
  StatusOr<QueryResponse> Query(const std::string& sql,
                                uint32_t deadline_ms = 0);

  /// Writes a query frame without waiting; pair with ReadResponse().
  Status SendQuery(uint64_t request_id, const std::string& sql,
                   uint32_t deadline_ms = 0);

  /// Reads the next response frame (result, error, or overload shed).
  /// Responses to pipelined requests may arrive out of submission order;
  /// match on request_id.
  StatusOr<QueryResponse> ReadResponse();

  /// Fetches the server's EngineStats snapshot as JSON text (the STATS
  /// command; served inline, never queued or shed). Do not interleave with
  /// pipelined queries — responses to those would be misread here.
  StatusOr<std::string> Stats();

  /// Polite shutdown: kGoodbye, wait for kGoodbyeOk.
  Status Goodbye();

  /// Drops the socket without a goodbye (tests: abrupt disconnect).
  void Close();

  bool connected() const { return fd_ >= 0; }

 private:
  explicit RawClient(int fd) : fd_(fd) {}

  Status WriteFrame(MessageType type, const std::vector<uint8_t>& payload);
  StatusOr<Frame> ReadFrame();

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  FrameAssembler assembler_;
};

}  // namespace serve
}  // namespace raw

#endif  // RAW_SERVE_CLIENT_H_
