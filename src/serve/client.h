#ifndef RAW_SERVE_CLIENT_H_
#define RAW_SERVE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "columnar/batch.h"
#include "common/macros.h"
#include "common/status.h"
#include "common/statusor.h"
#include "serve/wire.h"

namespace raw {
namespace serve {

/// One query's outcome as seen over the wire.
struct QueryResponse {
  uint64_t request_id = 0;
  /// Server-side verdict: OK with `table` filled, or the error the engine
  /// (or the admission controller) returned. Overload sheds surface as
  /// ResourceExhausted with `overloaded` set.
  Status status = Status::OK();
  ColumnBatch table;
  /// True when the server shed the request (typed kOverloaded frame) rather
  /// than executing and failing it.
  bool overloaded = false;
  std::string overload_reason;
  double plan_seconds = 0;
  double execute_seconds = 0;
};

/// Client resilience knobs. The defaults keep the seed behaviour: blocking
/// connect, no I/O timeout, no retries.
struct RawClientOptions {
  /// Milliseconds to wait for the TCP connect (0 = OS default, blocking).
  int connect_timeout_ms = 5000;
  /// Per-recv/send timeout in milliseconds (0 = wait forever). A timeout
  /// surfaces as a retryable IOError and drops the connection — the peer's
  /// stream position is unknowable after a partial read.
  int io_timeout_ms = 0;
  /// Transport-failure retries for idempotent one-shot queries (Query()):
  /// reconnect transparently and resend. 0 = fail on the first error.
  /// Pipelined SendQuery/ReadResponse never retry — the caller owns
  /// request-id bookkeeping there.
  int max_retries = 0;
  /// Capped exponential backoff between retries, with deterministic jitter
  /// (seeded so tests reproduce sleep sequences exactly).
  int backoff_initial_ms = 50;
  int backoff_max_ms = 2000;
  uint64_t jitter_seed = 1;
  /// Also retry typed overload sheds (kOverloaded), not just transport
  /// failures. Off by default: shedding is the server asking for less load.
  bool retry_overloaded = false;
};

/// Blocking client for the rawd wire protocol. Not thread-safe; use one per
/// thread. Query() is the simple request/response path; SendQuery() /
/// ReadResponse() expose pipelining (several requests in flight on one
/// connection) for load drivers and quota tests.
///
/// With max_retries > 0, Query() survives transport faults: the socket is
/// dropped, the client backs off (capped exponential + jitter), reconnects,
/// replays the Hello handshake, and resends the query. Safe because one-shot
/// queries are idempotent reads. retries()/reconnects() expose the effort
/// for load drivers.
class RawClient {
 public:
  ~RawClient();
  RAW_DISALLOW_COPY_AND_ASSIGN(RawClient);
  RawClient(RawClient&& other) noexcept;
  RawClient& operator=(RawClient&& other) noexcept;

  /// Connects a blocking TCP socket to `host:port`.
  static StatusOr<std::unique_ptr<RawClient>> Connect(
      const std::string& host, int port,
      RawClientOptions options = RawClientOptions());

  /// Declares the connection's priority class; must precede queries.
  Status Hello(PriorityClass priority = PriorityClass::kInteractive);

  /// One-shot: SendQuery + ReadResponse, with transparent retry/reconnect
  /// when options.max_retries > 0. deadline_ms 0 means no deadline.
  StatusOr<QueryResponse> Query(const std::string& sql,
                                uint32_t deadline_ms = 0);

  /// Writes a query frame without waiting; pair with ReadResponse().
  Status SendQuery(uint64_t request_id, const std::string& sql,
                   uint32_t deadline_ms = 0);

  /// Reads the next response frame (result, error, or overload shed).
  /// Responses to pipelined requests may arrive out of submission order;
  /// match on request_id.
  StatusOr<QueryResponse> ReadResponse();

  /// Fetches the server's EngineStats snapshot as JSON text (the STATS
  /// command; served inline, never queued or shed). Do not interleave with
  /// pipelined queries — responses to those would be misread here.
  StatusOr<std::string> Stats();

  /// Polite shutdown: kGoodbye, wait for kGoodbyeOk.
  Status Goodbye();

  /// Drops the socket without a goodbye (tests: abrupt disconnect).
  void Close();

  bool connected() const { return fd_ >= 0; }

  /// Query() attempts beyond the first, across the client's lifetime.
  int64_t retries() const { return retries_; }
  /// Successful transparent reconnects.
  int64_t reconnects() const { return reconnects_; }

 private:
  RawClient(int fd, std::string host, int port, RawClientOptions options)
      : fd_(fd), host_(std::move(host)), port_(port), options_(options) {}

  Status WriteFrame(MessageType type, const std::vector<uint8_t>& payload);
  StatusOr<Frame> ReadFrame();

  /// True for failures worth a reconnect+resend: transport errors and
  /// truncated streams, but not server-side query verdicts.
  static bool RetryableTransport(const Status& s);
  /// Re-dials host_:port_, replaying Hello when one was sent. Resets the
  /// frame assembler — a partial frame from the dead connection must not
  /// prefix the new stream.
  Status Reconnect();
  /// Sleeps the current backoff (with deterministic jitter), then doubles
  /// it up to the cap.
  void BackoffSleep(int64_t* backoff_ms);

  int fd_ = -1;
  std::string host_;
  int port_ = 0;
  RawClientOptions options_;
  bool hello_sent_ = false;
  PriorityClass priority_ = PriorityClass::kInteractive;
  uint64_t jitter_state_ = 0;
  int64_t retries_ = 0;
  int64_t reconnects_ = 0;
  uint64_t next_request_id_ = 1;
  FrameAssembler assembler_;
};

}  // namespace serve
}  // namespace raw

#endif  // RAW_SERVE_CLIENT_H_
