#ifndef RAW_SERVE_ADMISSION_H_
#define RAW_SERVE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/macros.h"
#include "common/status.h"
#include "serve/wire.h"

namespace raw {

struct AdmissionCounters;

namespace serve {

/// Per-priority-class admission quotas.
struct ClassLimits {
  /// Queries of this class running at once (dedicated worker slots).
  int max_concurrent = 2;
  /// Queries of this class waiting in the queue before new ones shed.
  int max_queued = 16;
  /// Total request payload bytes this class may hold queued.
  int64_t max_queued_bytes = 16ll << 20;
};

struct AdmissionOptions {
  ClassLimits interactive;
  ClassLimits batch{/*max_concurrent=*/1, /*max_queued=*/8,
                    /*max_queued_bytes=*/64ll << 20};
  /// Worker threads draining the queue (>= 1). Bounds total concurrency
  /// together with the per-class max_concurrent caps.
  int num_workers = 2;
  /// Global queue depth across classes; beyond it everything sheds.
  int max_total_queued = 64;
};

/// Bounded admission queue in front of the engine: requests are enqueued with
/// a priority class, a deadline and a byte cost; dedicated workers drain them
/// interactive-first. Over-quota submissions fail fast (load shedding) instead
/// of queueing without bound, and requests whose deadline lapses while queued
/// are failed at dequeue without touching the engine.
///
/// The controller optionally mirrors its counters into an engine-owned
/// AdmissionCounters struct so shedding shows up in EngineStats.
class AdmissionController {
 public:
  /// Runs on a worker thread with the admission verdict: OK after a
  /// successful dequeue, ResourceExhausted when the deadline lapsed queued.
  /// Never invoked for shed requests — Submit reports those synchronously.
  using Job = std::function<void(const Status& admission)>;

  explicit AdmissionController(AdmissionOptions options,
                               AdmissionCounters* counters = nullptr);
  ~AdmissionController();
  RAW_DISALLOW_COPY_AND_ASSIGN(AdmissionController);

  /// Enqueues `job`, or sheds: ResourceExhausted("OVERLOADED: ...") when a
  /// class or global bound is hit, InvalidArgument after BeginDrain. A shed
  /// job is never run.
  Status Submit(PriorityClass priority, int64_t cost_bytes,
                Deadline deadline, Job job);

  /// Stops accepting new work; queued and running jobs still complete.
  void BeginDrain();

  /// Blocks until every admitted job has finished. Implies BeginDrain.
  void Drain();

  int64_t queued() const;
  int64_t running() const;

 private:
  struct Request {
    PriorityClass priority;
    int64_t cost_bytes;
    Deadline deadline;
    Job job;
  };

  void WorkerLoop();
  /// Picks the next runnable request (interactive first, FIFO within class)
  /// honoring per-class concurrency caps. Caller holds mu_.
  bool PickLocked(Request* out);

  AdmissionOptions options_;
  AdmissionCounters* counters_;  // nullable

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: new work / drain
  std::condition_variable idle_cv_;   // Drain(): all work finished
  std::deque<Request> interactive_;
  std::deque<Request> batch_;
  int64_t queued_bytes_[2] = {0, 0};  // indexed by PriorityClass
  int running_[2] = {0, 0};
  int64_t total_running_ = 0;
  bool draining_ = false;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace raw

#endif  // RAW_SERVE_ADMISSION_H_
