#include "serve/wire.h"

#include "common/types.h"

namespace raw {
namespace serve {

StatusOr<uint8_t> PayloadReader::U8() {
  uint8_t v;
  RAW_RETURN_NOT_OK(Bytes(&v, sizeof(v)));
  return v;
}

StatusOr<uint32_t> PayloadReader::U32() {
  uint32_t v;
  RAW_RETURN_NOT_OK(Bytes(&v, sizeof(v)));
  return v;
}

StatusOr<uint64_t> PayloadReader::U64() {
  uint64_t v;
  RAW_RETURN_NOT_OK(Bytes(&v, sizeof(v)));
  return v;
}

StatusOr<double> PayloadReader::F64() {
  double v;
  RAW_RETURN_NOT_OK(Bytes(&v, sizeof(v)));
  return v;
}

StatusOr<std::string> PayloadReader::String() {
  RAW_ASSIGN_OR_RETURN(uint32_t len, U32());
  if (len > remaining()) {
    return Status::InvalidArgument("wire: string length exceeds payload");
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

Status PayloadReader::Bytes(void* out, size_t size) {
  if (size > remaining()) {
    return Status::InvalidArgument("wire: truncated payload");
  }
  std::memcpy(out, data_ + pos_, size);
  pos_ += size;
  return Status::OK();
}

std::vector<uint8_t> EncodeFrame(MessageType type,
                                 const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  out.reserve(5 + payload.size());
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint8_t* lp = reinterpret_cast<const uint8_t*>(&len);
  out.insert(out.end(), lp, lp + 4);
  out.push_back(static_cast<uint8_t>(type));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void SerializeTable(const ColumnBatch& table, PayloadWriter* out) {
  out->PutU32(static_cast<uint32_t>(table.num_columns()));
  out->PutU64(static_cast<uint64_t>(table.num_rows()));
  for (int c = 0; c < table.num_columns(); ++c) {
    out->PutU8(static_cast<uint8_t>(table.schema().field(c).type));
    out->PutString(table.schema().field(c).name);
  }
  const int64_t rows = table.num_rows();
  for (int c = 0; c < table.num_columns(); ++c) {
    const Column& col = *table.column(c);
    if (IsFixedWidth(col.type())) {
      out->PutBytes(col.raw_data(),
                    static_cast<size_t>(rows) *
                        static_cast<size_t>(FixedWidth(col.type())));
    } else {
      for (int64_t i = 0; i < rows; ++i) out->PutString(col.StringValue(i));
    }
  }
}

StatusOr<ColumnBatch> DeserializeTable(PayloadReader* in) {
  RAW_ASSIGN_OR_RETURN(uint32_t num_cols, in->U32());
  RAW_ASSIGN_OR_RETURN(uint64_t num_rows, in->U64());
  if (num_cols > 4096) {
    return Status::InvalidArgument("wire: implausible column count");
  }
  Schema schema;
  for (uint32_t c = 0; c < num_cols; ++c) {
    RAW_ASSIGN_OR_RETURN(uint8_t type, in->U8());
    RAW_ASSIGN_OR_RETURN(std::string name, in->String());
    if (type >= kNumDataTypes) {
      return Status::InvalidArgument("wire: unknown column type");
    }
    schema.AddField(std::move(name), static_cast<DataType>(type));
  }
  ColumnBatch table(schema);
  for (uint32_t c = 0; c < num_cols; ++c) {
    const DataType type = schema.field(static_cast<int>(c)).type;
    auto col = std::make_shared<Column>(type);
    if (IsFixedWidth(type)) {
      const size_t bytes =
          static_cast<size_t>(num_rows) *
          static_cast<size_t>(FixedWidth(type));
      col->Resize(static_cast<int64_t>(num_rows));
      RAW_RETURN_NOT_OK(in->Bytes(col->raw_data(), bytes));
    } else {
      col->Reserve(static_cast<int64_t>(num_rows));
      for (uint64_t i = 0; i < num_rows; ++i) {
        RAW_ASSIGN_OR_RETURN(std::string v, in->String());
        col->AppendString(std::move(v));
      }
    }
    table.AddColumn(std::move(col));
  }
  table.SetNumRows(static_cast<int64_t>(num_rows));
  return table;
}

Status FrameAssembler::Feed(const uint8_t* data, size_t size) {
  // Compact lazily: drop fully consumed bytes before growing the buffer.
  if (consumed_ > 0 && consumed_ == buf_.size()) {
    buf_.clear();
    consumed_ = 0;
  } else if (consumed_ > (64u << 10) && consumed_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data, data + size);
  // Early length validation so an insane header fails fast. Walk every
  // header already buffered, not just the first: when a valid frame and a
  // corrupt header arrive in one batch, the corrupt length would otherwise
  // stay hidden until after the frame is popped — and with no further bytes
  // coming, no later Feed would ever re-check it (the reader would block
  // forever waiting for a 4 GiB payload).
  size_t off = consumed_;
  while (buf_.size() - off >= 4) {
    uint32_t len;
    std::memcpy(&len, buf_.data() + off, 4);
    if (len > kMaxPayloadBytes) {
      return Status::InvalidArgument("wire: frame exceeds 64 MiB cap");
    }
    if (buf_.size() - off < 5u + len) break;
    off += 5u + len;
  }
  return Status::OK();
}

bool FrameAssembler::Pop(Frame* out) {
  const size_t avail = buf_.size() - consumed_;
  if (avail < 5) return false;
  uint32_t len;
  std::memcpy(&len, buf_.data() + consumed_, 4);
  if (avail < 5u + len) return false;
  out->type = static_cast<MessageType>(buf_[consumed_ + 4]);
  out->payload.assign(buf_.begin() + static_cast<ptrdiff_t>(consumed_ + 5),
                      buf_.begin() +
                          static_cast<ptrdiff_t>(consumed_ + 5 + len));
  consumed_ += 5u + len;
  return true;
}

}  // namespace serve
}  // namespace raw
