#include "eventsim/rle_codec.h"

#include <cstring>

namespace raw {

StatusOr<std::vector<uint8_t>> RleEncode(const uint8_t* data, size_t size,
                                         int element_width) {
  if (element_width != 4 && element_width != 8) {
    return Status::InvalidArgument("RLE element width must be 4 or 8");
  }
  if (size % static_cast<size_t>(element_width) != 0) {
    return Status::InvalidArgument("RLE input not a multiple of element width");
  }
  const size_t n = size / static_cast<size_t>(element_width);
  std::vector<uint8_t> out;
  out.reserve(size / 2 + 16);
  size_t i = 0;
  while (i < n) {
    const uint8_t* value = data + i * static_cast<size_t>(element_width);
    size_t run = 1;
    while (i + run < n &&
           std::memcmp(value, data + (i + run) * static_cast<size_t>(element_width),
                       static_cast<size_t>(element_width)) == 0 &&
           run < 0xffffffffu) {
      ++run;
    }
    uint32_t count = static_cast<uint32_t>(run);
    size_t pos = out.size();
    out.resize(pos + sizeof(count) + static_cast<size_t>(element_width));
    std::memcpy(out.data() + pos, &count, sizeof(count));
    std::memcpy(out.data() + pos + sizeof(count), value,
                static_cast<size_t>(element_width));
    i += run;
  }
  return out;
}

StatusOr<std::vector<uint8_t>> RleDecode(const uint8_t* data, size_t size,
                                         int element_width,
                                         size_t expected_size) {
  if (element_width != 4 && element_width != 8) {
    return Status::InvalidArgument("RLE element width must be 4 or 8");
  }
  std::vector<uint8_t> out;
  out.reserve(expected_size);
  size_t pos = 0;
  const size_t record = sizeof(uint32_t) + static_cast<size_t>(element_width);
  while (pos + record <= size) {
    uint32_t count = 0;
    std::memcpy(&count, data + pos, sizeof(count));
    const uint8_t* value = data + pos + sizeof(count);
    for (uint32_t k = 0; k < count; ++k) {
      out.insert(out.end(), value, value + element_width);
    }
    pos += record;
  }
  if (pos != size) return Status::ParseError("truncated RLE stream");
  if (out.size() != expected_size) {
    return Status::ParseError("RLE decode size mismatch");
  }
  return out;
}

}  // namespace raw
