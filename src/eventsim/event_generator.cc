#include "eventsim/event_generator.h"

#include <cmath>
#include <cstdio>

#include "common/macros.h"
#include "eventsim/ref_writer.h"

namespace raw {

EventGenerator::EventGenerator(EventGenOptions options)
    : options_(options), rng_(options.seed) {}

int EventGenerator::SampleMultiplicity(double mean) {
  // Geometric-flavoured multiplicity: floor of an exponential with the given
  // mean; cheap, deterministic, long-ish tail like real multiplicities.
  double u = rng_.NextDouble();
  if (u <= 0) u = 1e-12;
  double x = -mean * std::log(u) * 0.7;
  int n = static_cast<int>(x);
  return n > 24 ? 24 : n;
}

Particle EventGenerator::SampleParticle() {
  Particle p;
  double u = rng_.NextDouble();
  if (u <= 0) u = 1e-12;
  p.pt = static_cast<float>(-options_.pt_scale * std::log(u));
  // Roughly central eta: average two uniforms for a triangular shape.
  double eta = (rng_.NextDouble() + rng_.NextDouble() - 1.0) * options_.eta_max;
  p.eta = static_cast<float>(eta);
  p.phi = static_cast<float>(rng_.NextDouble(-M_PI, M_PI));
  return p;
}

Event EventGenerator::Next() {
  Event e;
  e.event_id = next_index_;
  e.run_number =
      options_.first_run +
      static_cast<int32_t>(rng_.NextBelow(static_cast<uint64_t>(
          options_.num_runs)));
  int n_mu = SampleMultiplicity(options_.mean_muons);
  int n_el = SampleMultiplicity(options_.mean_electrons);
  int n_jet = SampleMultiplicity(options_.mean_jets);
  e.muons.reserve(static_cast<size_t>(n_mu));
  for (int i = 0; i < n_mu; ++i) e.muons.push_back(SampleParticle());
  e.electrons.reserve(static_cast<size_t>(n_el));
  for (int i = 0; i < n_el; ++i) e.electrons.push_back(SampleParticle());
  e.jets.reserve(static_cast<size_t>(n_jet));
  for (int i = 0; i < n_jet; ++i) e.jets.push_back(SampleParticle());
  ++next_index_;
  return e;
}

std::vector<int32_t> EventGenerator::GoodRuns(const EventGenOptions& options) {
  // Deterministic subset: a run r is good when a hash-free criterion holds;
  // use a dedicated RNG so the subset is independent of event sampling.
  Rng rng(options.seed ^ 0x600d0072u);
  std::vector<int32_t> good;
  for (int32_t r = 0; r < options.num_runs; ++r) {
    if (rng.NextDouble() < options.good_run_fraction) {
      good.push_back(options.first_run + r);
    }
  }
  if (good.empty()) good.push_back(options.first_run);  // never fully empty
  return good;
}

Status WriteRefFile(const std::string& path, const EventGenOptions& options,
                    int32_t cluster_events) {
  EventGenerator gen(options);
  RefWriter writer(path, cluster_events);
  RAW_RETURN_NOT_OK(writer.Open());
  for (int64_t i = 0; i < options.num_events; ++i) {
    RAW_RETURN_NOT_OK(writer.AppendEvent(gen.Next()));
  }
  return writer.Close();
}

Status WriteGoodRunsCsv(const std::string& path,
                        const EventGenOptions& options) {
  std::vector<int32_t> good = EventGenerator::GoodRuns(options);
  FILE* f = fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot create good-runs CSV '" + path + "'");
  }
  for (int32_t r : good) fprintf(f, "%d\n", r);
  if (fclose(f) != 0) return Status::IOError("close failed for '" + path + "'");
  return Status::OK();
}

}  // namespace raw
