#ifndef RAW_EVENTSIM_EVENT_MODEL_H_
#define RAW_EVENTSIM_EVENT_MODEL_H_

#include <cstdint>
#include <vector>

namespace raw {

/// In-memory event model mirroring the paper's Figure 13: an Event owns
/// variable-length lists of muons, electrons and jets, each with transverse
/// momentum (pt), pseudorapidity (eta) and azimuth (phi).
struct Particle {
  float pt = 0;
  float eta = 0;
  float phi = 0;
};

struct Event {
  int64_t event_id = 0;
  int32_t run_number = 0;
  std::vector<Particle> muons;
  std::vector<Particle> electrons;
  std::vector<Particle> jets;

  const std::vector<Particle>& particles(int group) const {
    switch (group) {
      case 0:
        return muons;
      case 1:
        return electrons;
      default:
        return jets;
    }
  }
  std::vector<Particle>* mutable_particles(int group) {
    switch (group) {
      case 0:
        return &muons;
      case 1:
        return &electrons;
      default:
        return &jets;
    }
  }
};

/// Particle group indices (match ref_branches::kGroups order).
inline constexpr int kMuon = 0;
inline constexpr int kElectron = 1;
inline constexpr int kJet = 2;

}  // namespace raw

#endif  // RAW_EVENTSIM_EVENT_MODEL_H_
