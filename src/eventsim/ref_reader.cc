#include "eventsim/ref_reader.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/fault_injector.h"

namespace raw {

namespace {
Status PReadRaw(int fd, void* buf, size_t count, int64_t offset,
                const std::string& path) {
  size_t done = 0;
  while (done < count) {
    ssize_t n = ::pread(fd, static_cast<char*>(buf) + done, count - done,
                        offset + static_cast<int64_t>(done));
    if (n < 0) {
      return Status::IOError("pread '" + path + "': " + std::strerror(errno));
    }
    if (n == 0) {
      // The file ended before the bytes its own directory promised: the
      // file shrank (or the directory lies) — corruption, not an I/O error.
      return Status::DataCorruption("unexpected EOF in '" + path + "'");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status PRead(int fd, void* buf, size_t count, int64_t offset,
             const std::string& path) {
  // Fault-injection hook for the pread path (REF is the one format that
  // reads through file descriptors instead of a mapping).
  auto& injector = FaultInjector::Global();
  if (injector.enabled()) {
    int64_t fault_offset = 0;
    switch (injector.Check(path, static_cast<int64_t>(count), &fault_offset)) {
      case FaultKind::kEio:
        return Status::IOError("injected EIO reading '" + path + "'");
      case FaultKind::kShortRead:
      case FaultKind::kTruncate: {
        // Deliver only the first `fault_offset` bytes, then report the EOF
        // a really-shrunk file would produce.
        Status st = PReadRaw(fd, buf, static_cast<size_t>(fault_offset),
                             offset, path);
        if (!st.ok()) return st;
        return Status::DataCorruption("unexpected EOF in '" + path +
                                      "' (short read)");
      }
      case FaultKind::kBitFlip: {
        Status st = PReadRaw(fd, buf, count, offset, path);
        if (!st.ok()) return st;
        if (count > 0) {
          static_cast<char*>(buf)[static_cast<size_t>(fault_offset)] ^= 0x40;
        }
        return Status::OK();
      }
      case FaultKind::kNone:
        break;
    }
  }
  return PReadRaw(fd, buf, count, offset, path);
}
}  // namespace

StatusOr<std::unique_ptr<RefReader>> RefReader::Open(
    const std::string& path, int64_t pool_capacity_bytes) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open REF file '" + path +
                           "': " + std::strerror(errno));
  }
  uint8_t header_bytes[RefHeader::kSerializedSize];
  Status st = PRead(fd, header_bytes, sizeof(header_bytes), 0, path);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  auto header_or = RefHeader::Deserialize(header_bytes, sizeof(header_bytes));
  if (!header_or.ok()) {
    ::close(fd);
    return header_or.status();
  }
  RefHeader header = header_or.value();
  int64_t end = ::lseek(fd, 0, SEEK_END);
  if (end < header.directory_offset) {
    ::close(fd);
    return Status::DataCorruption(
        "REF directory offset " + std::to_string(header.directory_offset) +
        " lies beyond the file's " + std::to_string(end) + " bytes in '" +
        path + "'");
  }
  std::vector<uint8_t> dir_bytes(
      static_cast<size_t>(end - header.directory_offset));
  st = PRead(fd, dir_bytes.data(), dir_bytes.size(), header.directory_offset,
             path);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  auto branches_or = DeserializeDirectory(dir_bytes.data(), dir_bytes.size(),
                                          header.num_branches);
  if (!branches_or.ok()) {
    ::close(fd);
    return branches_or.status();
  }
  // Extent validation at open: every cluster the directory advertises must
  // lie inside the file as it exists right now, so a truncated file fails
  // here with a typed error instead of at some later pread mid-query.
  for (const RefBranch& b : branches_or.value()) {
    for (const RefCluster& c : b.clusters) {
      if (c.file_offset < 0 || c.stored_bytes < 0 ||
          c.file_offset + c.stored_bytes > end) {
        ::close(fd);
        return Status::DataCorruption(
            "REF cluster of branch '" + b.name + "' spans bytes [" +
            std::to_string(c.file_offset) + ", " +
            std::to_string(c.file_offset + c.stored_bytes) +
            ") but '" + path + "' holds only " + std::to_string(end) +
            " bytes (file truncated?)");
      }
    }
  }
  std::unique_ptr<RefReader> reader(new RefReader(
      fd, path, header, std::move(branches_or).value(), pool_capacity_bytes));
  RAW_RETURN_NOT_OK(reader->BuildGroupOffsets());
  return reader;
}

RefReader::RefReader(int fd, std::string path, RefHeader header,
                     std::vector<RefBranch> branches,
                     int64_t pool_capacity_bytes)
    : fd_(fd),
      path_(std::move(path)),
      header_(header),
      branches_(std::move(branches)),
      pool_(std::make_unique<ClusterBufferPool>(pool_capacity_bytes)) {
  id_branch_ = BranchIndex(ref_branches::kEventId);
  run_branch_ = BranchIndex(ref_branches::kEventRun);
  static const char* kFields[] = {"/n", "/pt", "/eta", "/phi"};
  for (int g = 0; g < ref_branches::kNumGroups; ++g) {
    for (int f = 0; f < 4; ++f) {
      group_branch_[g][f] =
          BranchIndex(std::string(ref_branches::kGroups[g]) + kFields[f]);
    }
  }
}

RefReader::~RefReader() {
  if (fd_ >= 0) ::close(fd_);
}

int RefReader::BranchIndex(std::string_view name) const {
  for (size_t i = 0; i < branches_.size(); ++i) {
    if (branches_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

StatusOr<ClusterDataPtr> RefReader::FetchCluster(int branch,
                                                 int cluster_idx) {
  uint64_t key = ClusterBufferPool::MakeKey(branch, cluster_idx);
  if (ClusterDataPtr cached = pool_->Get(key)) return cached;
  const RefBranch& b = branches_[static_cast<size_t>(branch)];
  const RefCluster& c = b.clusters[static_cast<size_t>(cluster_idx)];
  std::vector<uint8_t> stored(static_cast<size_t>(c.stored_bytes));
  RAW_RETURN_NOT_OK(
      PRead(fd_, stored.data(), stored.size(), c.file_offset, path_));
  const int width = FixedWidth(b.type);
  std::vector<uint8_t> decoded;
  if (b.codec == RefCodec::kRle) {
    RAW_ASSIGN_OR_RETURN(
        decoded,
        RleDecode(stored.data(), stored.size(), width,
                  static_cast<size_t>(c.num_values) *
                      static_cast<size_t>(width)));
  } else {
    decoded = std::move(stored);
    if (decoded.size() != static_cast<size_t>(c.num_values) *
                              static_cast<size_t>(width)) {
      return Status::ParseError("cluster size mismatch in '" + path_ + "'");
    }
  }
  return pool_->Put(key, std::move(decoded));
}

Status RefReader::ReadRange(int branch, int64_t first, int64_t count,
                            void* out) {
  if (branch < 0 || branch >= num_branches()) {
    return Status::InvalidArgument("bad branch index");
  }
  const RefBranch& b = branches_[static_cast<size_t>(branch)];
  const int width = FixedWidth(b.type);
  if (first < 0 || count < 0 || first + count > b.num_values()) {
    return Status::InvalidArgument("ReadRange out of bounds for branch " +
                                   b.name);
  }
  char* dst = static_cast<char*>(out);
  int64_t remaining = count;
  int64_t cursor = first;
  while (remaining > 0) {
    int ci = b.ClusterFor(cursor);
    if (ci < 0) return Status::Internal("cluster lookup failed");
    const RefCluster& c = b.clusters[static_cast<size_t>(ci)];
    // The handle pins the decoded bytes through the memcpy below even if a
    // concurrent insert evicts the cluster or ClearCache() runs mid-read.
    RAW_ASSIGN_OR_RETURN(ClusterDataPtr data, FetchCluster(branch, ci));
    int64_t in_cluster_offset = cursor - c.first_value;
    int64_t available = c.num_values - in_cluster_offset;
    int64_t take = std::min(available, remaining);
    std::memcpy(dst,
                data->data() + static_cast<size_t>(in_cluster_offset) *
                                   static_cast<size_t>(width),
                static_cast<size_t>(take) * static_cast<size_t>(width));
    dst += take * width;
    cursor += take;
    remaining -= take;
  }
  return Status::OK();
}

StatusOr<int64_t> RefReader::ReadInt64(int branch, int64_t index) {
  int64_t v = 0;
  RAW_RETURN_NOT_OK(ReadRange(branch, index, 1, &v));
  return v;
}

StatusOr<int32_t> RefReader::ReadInt32(int branch, int64_t index) {
  int32_t v = 0;
  RAW_RETURN_NOT_OK(ReadRange(branch, index, 1, &v));
  return v;
}

StatusOr<float> RefReader::ReadFloat(int branch, int64_t index) {
  float v = 0;
  RAW_RETURN_NOT_OK(ReadRange(branch, index, 1, &v));
  return v;
}

Status RefReader::BuildGroupOffsets() {
  group_offsets_.assign(ref_branches::kNumGroups, {});
  const int64_t n = header_.num_events;
  for (int g = 0; g < ref_branches::kNumGroups; ++g) {
    std::vector<int32_t> counts(static_cast<size_t>(n));
    if (n > 0) {
      RAW_RETURN_NOT_OK(ReadRange(group_branch_[g][0], 0, n, counts.data()));
    }
    std::vector<int64_t>& offsets = group_offsets_[static_cast<size_t>(g)];
    offsets.resize(static_cast<size_t>(n) + 1);
    int64_t acc = 0;
    for (int64_t e = 0; e < n; ++e) {
      offsets[static_cast<size_t>(e)] = acc;
      acc += counts[static_cast<size_t>(e)];
    }
    offsets[static_cast<size_t>(n)] = acc;
  }
  return Status::OK();
}

void RefReader::GroupRange(int group, int64_t event, int64_t* begin,
                           int64_t* count) const {
  const std::vector<int64_t>& offsets =
      group_offsets_[static_cast<size_t>(group)];
  *begin = offsets[static_cast<size_t>(event)];
  *count = offsets[static_cast<size_t>(event) + 1] - *begin;
}

const RefBranch* RefReader::RowBranch(int group) const {
  int branch = group < 0 ? id_branch_ : group_branch_[group][1];
  if (branch < 0) return nullptr;
  return &branches_[static_cast<size_t>(branch)];
}

int64_t RefReader::EventOfFlatIndex(int group, int64_t flat_index) const {
  const std::vector<int64_t>& offsets =
      group_offsets_[static_cast<size_t>(group)];
  auto it = std::upper_bound(offsets.begin(), offsets.end(), flat_index);
  return static_cast<int64_t>(it - offsets.begin()) - 1;
}

Status RefReader::GetEntry(int64_t i, Event* out) {
  if (i < 0 || i >= num_events()) {
    return Status::InvalidArgument("GetEntry: event index out of range");
  }
  RAW_ASSIGN_OR_RETURN(out->event_id, ReadInt64(id_branch_, i));
  RAW_ASSIGN_OR_RETURN(out->run_number, ReadInt32(run_branch_, i));
  for (int g = 0; g < ref_branches::kNumGroups; ++g) {
    int64_t begin = 0, count = 0;
    GroupRange(g, i, &begin, &count);
    std::vector<Particle>* ps = out->mutable_particles(g);
    ps->resize(static_cast<size_t>(count));
    if (count == 0) continue;
    std::vector<float> tmp(static_cast<size_t>(count));
    RAW_RETURN_NOT_OK(
        ReadRange(group_branch_[g][1], begin, count, tmp.data()));
    for (int64_t k = 0; k < count; ++k) (*ps)[static_cast<size_t>(k)].pt = tmp[static_cast<size_t>(k)];
    RAW_RETURN_NOT_OK(
        ReadRange(group_branch_[g][2], begin, count, tmp.data()));
    for (int64_t k = 0; k < count; ++k) (*ps)[static_cast<size_t>(k)].eta = tmp[static_cast<size_t>(k)];
    RAW_RETURN_NOT_OK(
        ReadRange(group_branch_[g][3], begin, count, tmp.data()));
    for (int64_t k = 0; k < count; ++k) (*ps)[static_cast<size_t>(k)].phi = tmp[static_cast<size_t>(k)];
  }
  return Status::OK();
}

}  // namespace raw
