#ifndef RAW_EVENTSIM_RLE_CODEC_H_
#define RAW_EVENTSIM_RLE_CODEC_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

namespace raw {

/// Cluster compression codecs for REF branch data. ROOT compresses baskets
/// with zlib; the measured access-path behaviour only requires *a* decode
/// step on cold cluster reads, so REF ships a simple run-length codec for
/// fixed-width elements (effective on count branches and run numbers).
enum class RefCodec : uint8_t {
  kNone = 0,
  kRle = 1,
};

/// Run-length encodes `data` interpreted as elements of `element_width`
/// bytes (4 or 8). Output layout: repeated [count:uint32][element bytes].
StatusOr<std::vector<uint8_t>> RleEncode(const uint8_t* data, size_t size,
                                         int element_width);

/// Decodes an RleEncode() buffer; `expected_size` is the decoded byte count
/// (element_width * element count) and is validated.
StatusOr<std::vector<uint8_t>> RleDecode(const uint8_t* data, size_t size,
                                         int element_width,
                                         size_t expected_size);

}  // namespace raw

#endif  // RAW_EVENTSIM_RLE_CODEC_H_
