#ifndef RAW_EVENTSIM_BUFFER_POOL_H_
#define RAW_EVENTSIM_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/macros.h"

namespace raw {

/// LRU cache of decoded branch clusters — REF's equivalent of ROOT's
/// in-memory "buffer pool of commonly-accessed objects" (§6). The warm-run
/// behaviour of the hand-written Higgs analysis comes from this cache.
class ClusterBufferPool {
 public:
  /// `capacity_bytes` bounds the decoded bytes held; 0 disables caching
  /// (every access decodes from disk — fully cold behaviour).
  explicit ClusterBufferPool(int64_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}
  RAW_DISALLOW_COPY_AND_ASSIGN(ClusterBufferPool);

  /// Key identifying a cluster: (branch index << 32) | cluster index.
  static uint64_t MakeKey(int branch, int cluster) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(branch)) << 32) |
           static_cast<uint32_t>(cluster);
  }

  /// Returns the cached cluster or nullptr (counts a hit/miss).
  const std::vector<uint8_t>* Get(uint64_t key);

  /// Inserts a decoded cluster, evicting LRU entries over capacity. Returns
  /// a stable pointer to the cached bytes (valid until eviction).
  const std::vector<uint8_t>* Put(uint64_t key, std::vector<uint8_t> data);

  void Clear();

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t bytes_cached() const { return bytes_cached_; }
  int64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    uint64_t key;
    std::vector<uint8_t> data;
  };

  int64_t capacity_bytes_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t bytes_cached_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace raw

#endif  // RAW_EVENTSIM_BUFFER_POOL_H_
