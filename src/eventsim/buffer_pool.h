#ifndef RAW_EVENTSIM_BUFFER_POOL_H_
#define RAW_EVENTSIM_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/macros.h"

namespace raw {

/// A decoded cluster pinned by whoever holds the handle. The pool only drops
/// its own reference on eviction/Clear, so readers mid-copy never observe a
/// freed buffer — the pinning rule that makes concurrent REF readers safe.
using ClusterDataPtr = std::shared_ptr<const std::vector<uint8_t>>;

/// Read-only counter snapshot of the pool (see RawEngine::Stats()).
struct ClusterPoolStats {
  int64_t entries = 0;
  int64_t bytes = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
};

/// LRU cache of decoded branch clusters — REF's equivalent of ROOT's
/// in-memory "buffer pool of commonly-accessed objects" (§6). The warm-run
/// behaviour of the hand-written Higgs analysis comes from this cache.
///
/// Thread-safety: the pool is *sharded* by cluster key hash (mirroring
/// ShredCache); each shard has its own mutex and LRU list, so concurrent
/// sessions decoding different clusters never contend on one lock. The byte
/// budget stays *global* (an atomic total): an insert evicts from its own
/// shard's LRU tail only while the whole pool is over capacity, so key skew
/// cannot evict warm clusters while most of the budget sits unused.
///
/// Pinning rule: Get/Put return shared handles. Eviction and Clear() only
/// drop the pool's reference; the bytes stay alive until the last reader
/// releases its handle. Callers must therefore hold the ClusterDataPtr for
/// as long as they read through it (never stash the raw data() pointer).
class ClusterBufferPool {
 public:
  static constexpr int kDefaultNumShards = 16;

  /// `capacity_bytes` bounds the decoded bytes held; 0 disables caching
  /// (every access decodes from disk — fully cold behaviour; Get/Put then
  /// short-circuit without touching any shard mutex).
  explicit ClusterBufferPool(int64_t capacity_bytes,
                             int num_shards = kDefaultNumShards);
  RAW_DISALLOW_COPY_AND_ASSIGN(ClusterBufferPool);

  /// Key identifying a cluster: (branch index << 32) | cluster index.
  static uint64_t MakeKey(int branch, int cluster) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(branch)) << 32) |
           static_cast<uint32_t>(cluster);
  }

  /// Returns the cached cluster or nullptr (counts a hit/miss).
  ClusterDataPtr Get(uint64_t key);

  /// Inserts a decoded cluster, evicting LRU entries while the pool is over
  /// its global capacity. Returns a pinned handle to the cached bytes (or,
  /// when another thread raced the same key in first, to *its* bytes, so all
  /// readers agree). With capacity 0 the data is handed straight back,
  /// pinned only by the caller.
  ClusterDataPtr Put(uint64_t key, std::vector<uint8_t> data);

  void Clear();

  /// Consistent-enough counter snapshot (shards summed one at a time).
  ClusterPoolStats Stats() const;

  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  int64_t bytes_cached() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    uint64_t key;
    ClusterDataPtr data;
  };

  struct Shard {
    Shard() = default;
    Shard(const Shard&) = delete;
    Shard& operator=(const Shard&) = delete;

    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index;
  };

  Shard& ShardFor(uint64_t key) const;

  int64_t capacity_bytes_;
  std::atomic<int64_t> total_bytes_{0};
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace raw

#endif  // RAW_EVENTSIM_BUFFER_POOL_H_
