#ifndef RAW_EVENTSIM_REF_WRITER_H_
#define RAW_EVENTSIM_REF_WRITER_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "eventsim/event_model.h"
#include "eventsim/ref_format.h"

namespace raw {

/// Writes REF event files. Events accumulate in per-branch buffers; every
/// `cluster_events` events each branch's buffered values are flushed as one
/// cluster. Count branches (`<group>/n`) and the run-number branch are
/// RLE-compressed; value branches are stored raw.
class RefWriter {
 public:
  RefWriter(std::string path, int32_t cluster_events = 1024);
  ~RefWriter();
  RAW_DISALLOW_COPY_AND_ASSIGN(RefWriter);

  Status Open();

  /// Appends one event (all branches).
  Status AppendEvent(const Event& event);

  /// Flushes pending clusters, writes the directory, patches the header.
  Status Close();

  int64_t events_written() const { return events_written_; }

 private:
  // Branch indices (fixed model): 0 event/id, 1 event/run, then per group g:
  // 2+4g+0 n, +1 pt, +2 eta, +3 phi.
  static constexpr int kNumBranches = 2 + 4 * ref_branches::kNumGroups;

  Status FlushClusters();
  Status WriteBuffer(int branch, const std::vector<uint8_t>& raw_bytes,
                     int64_t num_values);

  std::string path_;
  int32_t cluster_events_;
  FILE* file_ = nullptr;
  std::vector<RefBranch> branches_;
  std::vector<std::vector<uint8_t>> buffers_;   // raw value bytes per branch
  std::vector<int64_t> buffer_values_;          // value counts per branch
  std::vector<int64_t> total_values_;           // flat indices assigned so far
  int64_t events_written_ = 0;
  int64_t events_in_cluster_ = 0;
  int64_t file_offset_ = 0;
};

}  // namespace raw

#endif  // RAW_EVENTSIM_REF_WRITER_H_
