#ifndef RAW_EVENTSIM_REF_FORMAT_H_
#define RAW_EVENTSIM_REF_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "common/types.h"
#include "eventsim/rle_codec.h"

namespace raw {

/// REF ("Raw Event Format") — the repository's stand-in for CERN's ROOT
/// format (§6 of the paper). Shared layout definitions for writer and reader.
///
/// An REF file stores a sequence of *events*; each event owns variable-length
/// lists of particles (muons, electrons, jets). Data is laid out columnar per
/// *branch*, chunked into *clusters* (ROOT's "baskets"), optionally
/// compressed. A directory at the end of the file records every branch and
/// cluster, enabling direct, id-based access without scanning — the property
/// the paper's JIT access paths exploit via the ROOT I/O API.
///
/// File layout:
///   [RefHeader][cluster data ...][directory]
///
/// Directory (at RefHeader::directory_offset):
///   for each branch: name, type, codec, per-event flag, clusters
///   cluster: {file_offset, stored_bytes, first_value, num_values}

inline constexpr uint32_t kRefMagic = 0x52454631;  // "REF1"
inline constexpr uint32_t kRefVersion = 1;

/// Fixed-size file header (at offset 0, little-endian, packed manually).
struct RefHeader {
  uint32_t magic = kRefMagic;
  uint32_t version = kRefVersion;
  int64_t directory_offset = 0;
  int64_t num_events = 0;
  int32_t cluster_events = 0;  // events per cluster (writer policy)
  int32_t num_branches = 0;

  static constexpr size_t kSerializedSize = 4 + 4 + 8 + 8 + 4 + 4;

  void SerializeTo(std::string* out) const;
  static StatusOr<RefHeader> Deserialize(const uint8_t* data, size_t size);
};

/// One stored chunk of a branch.
struct RefCluster {
  int64_t file_offset = 0;  // where the (possibly compressed) bytes live
  int64_t stored_bytes = 0;
  int64_t first_value = 0;  // flat index of the first value in this cluster
  int64_t num_values = 0;
};

/// Branch metadata.
struct RefBranch {
  std::string name;
  DataType type = DataType::kFloat32;
  RefCodec codec = RefCodec::kNone;
  /// True for branches with exactly one value per event (event/id, muon/n);
  /// false for flattened particle branches (muon/pt, ...).
  bool per_event = true;
  std::vector<RefCluster> clusters;

  int64_t num_values() const {
    return clusters.empty()
               ? 0
               : clusters.back().first_value + clusters.back().num_values;
  }

  /// Index of the cluster containing flat value `index` (binary search);
  /// -1 when out of range.
  int ClusterFor(int64_t index) const;
};

/// Serializes the branch directory.
void SerializeDirectory(const std::vector<RefBranch>& branches,
                        std::string* out);

/// Parses the branch directory (`num_branches` entries).
StatusOr<std::vector<RefBranch>> DeserializeDirectory(const uint8_t* data,
                                                      size_t size,
                                                      int32_t num_branches);

/// Canonical branch names for the event model.
namespace ref_branches {
inline constexpr const char* kEventId = "event/id";
inline constexpr const char* kEventRun = "event/run";
/// Particle groups, each with branches "<group>/n", "<group>/pt",
/// "<group>/eta", "<group>/phi".
inline constexpr const char* kGroups[] = {"muon", "electron", "jet"};
inline constexpr int kNumGroups = 3;
}  // namespace ref_branches

}  // namespace raw

#endif  // RAW_EVENTSIM_REF_FORMAT_H_
