#include "eventsim/ref_writer.h"

#include <cstring>

namespace raw {

namespace {

template <typename T>
void AppendValue(std::vector<uint8_t>* buf, T v) {
  size_t pos = buf->size();
  buf->resize(pos + sizeof(T));
  std::memcpy(buf->data() + pos, &v, sizeof(T));
}

}  // namespace

RefWriter::RefWriter(std::string path, int32_t cluster_events)
    : path_(std::move(path)), cluster_events_(cluster_events) {
  auto add_branch = [&](std::string name, DataType type, RefCodec codec,
                        bool per_event) {
    RefBranch b;
    b.name = std::move(name);
    b.type = type;
    b.codec = codec;
    b.per_event = per_event;
    branches_.push_back(std::move(b));
  };
  add_branch(ref_branches::kEventId, DataType::kInt64, RefCodec::kNone, true);
  add_branch(ref_branches::kEventRun, DataType::kInt32, RefCodec::kRle, true);
  for (const char* group : ref_branches::kGroups) {
    std::string g(group);
    add_branch(g + "/n", DataType::kInt32, RefCodec::kRle, true);
    add_branch(g + "/pt", DataType::kFloat32, RefCodec::kNone, false);
    add_branch(g + "/eta", DataType::kFloat32, RefCodec::kNone, false);
    add_branch(g + "/phi", DataType::kFloat32, RefCodec::kNone, false);
  }
  buffers_.resize(kNumBranches);
  buffer_values_.assign(kNumBranches, 0);
  total_values_.assign(kNumBranches, 0);
}

RefWriter::~RefWriter() {
  if (file_ != nullptr) fclose(file_);
}

Status RefWriter::Open() {
  file_ = fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IOError("cannot create REF file '" + path_ + "'");
  }
  // Reserve header space; patched in Close().
  std::string header(RefHeader::kSerializedSize, '\0');
  if (fwrite(header.data(), 1, header.size(), file_) != header.size()) {
    return Status::IOError("short write (header) to '" + path_ + "'");
  }
  file_offset_ = static_cast<int64_t>(RefHeader::kSerializedSize);
  return Status::OK();
}

Status RefWriter::AppendEvent(const Event& event) {
  if (file_ == nullptr) return Status::Internal("RefWriter not open");
  AppendValue(&buffers_[0], event.event_id);
  ++buffer_values_[0];
  AppendValue(&buffers_[1], event.run_number);
  ++buffer_values_[1];
  for (int g = 0; g < ref_branches::kNumGroups; ++g) {
    const std::vector<Particle>& ps = event.particles(g);
    int base = 2 + 4 * g;
    AppendValue(&buffers_[static_cast<size_t>(base)],
                static_cast<int32_t>(ps.size()));
    ++buffer_values_[static_cast<size_t>(base)];
    for (const Particle& p : ps) {
      AppendValue(&buffers_[static_cast<size_t>(base + 1)], p.pt);
      AppendValue(&buffers_[static_cast<size_t>(base + 2)], p.eta);
      AppendValue(&buffers_[static_cast<size_t>(base + 3)], p.phi);
    }
    buffer_values_[static_cast<size_t>(base + 1)] +=
        static_cast<int64_t>(ps.size());
    buffer_values_[static_cast<size_t>(base + 2)] +=
        static_cast<int64_t>(ps.size());
    buffer_values_[static_cast<size_t>(base + 3)] +=
        static_cast<int64_t>(ps.size());
  }
  ++events_written_;
  if (++events_in_cluster_ >= cluster_events_) {
    RAW_RETURN_NOT_OK(FlushClusters());
  }
  return Status::OK();
}

Status RefWriter::WriteBuffer(int branch, const std::vector<uint8_t>& raw_bytes,
                              int64_t num_values) {
  RefBranch& b = branches_[static_cast<size_t>(branch)];
  const std::vector<uint8_t>* out = &raw_bytes;
  std::vector<uint8_t> encoded;
  if (b.codec == RefCodec::kRle) {
    RAW_ASSIGN_OR_RETURN(encoded, RleEncode(raw_bytes.data(), raw_bytes.size(),
                                            FixedWidth(b.type)));
    out = &encoded;
  }
  RefCluster cluster;
  cluster.file_offset = file_offset_;
  cluster.stored_bytes = static_cast<int64_t>(out->size());
  cluster.first_value = total_values_[static_cast<size_t>(branch)];
  cluster.num_values = num_values;
  // out->data() is null for an empty buffer; fwrite's first argument is
  // declared nonnull, so skip the zero-byte write entirely.
  if (!out->empty() &&
      fwrite(out->data(), 1, out->size(), file_) != out->size()) {
    return Status::IOError("short write (cluster) to '" + path_ + "'");
  }
  file_offset_ += cluster.stored_bytes;
  total_values_[static_cast<size_t>(branch)] += num_values;
  b.clusters.push_back(cluster);
  return Status::OK();
}

Status RefWriter::FlushClusters() {
  if (events_in_cluster_ == 0) return Status::OK();
  for (int br = 0; br < kNumBranches; ++br) {
    RAW_RETURN_NOT_OK(WriteBuffer(br, buffers_[static_cast<size_t>(br)],
                                  buffer_values_[static_cast<size_t>(br)]));
    buffers_[static_cast<size_t>(br)].clear();
    buffer_values_[static_cast<size_t>(br)] = 0;
  }
  events_in_cluster_ = 0;
  return Status::OK();
}

Status RefWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  RAW_RETURN_NOT_OK(FlushClusters());
  std::string directory;
  SerializeDirectory(branches_, &directory);
  if (fwrite(directory.data(), 1, directory.size(), file_) !=
      directory.size()) {
    return Status::IOError("short write (directory) to '" + path_ + "'");
  }
  RefHeader header;
  header.directory_offset = file_offset_;
  header.num_events = events_written_;
  header.cluster_events = cluster_events_;
  header.num_branches = kNumBranches;
  std::string bytes;
  header.SerializeTo(&bytes);
  if (fseek(file_, 0, SEEK_SET) != 0 ||
      fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return Status::IOError("cannot patch REF header in '" + path_ + "'");
  }
  if (fclose(file_) != 0) {
    file_ = nullptr;
    return Status::IOError("close failed for '" + path_ + "'");
  }
  file_ = nullptr;
  return Status::OK();
}

}  // namespace raw
