#include "eventsim/ref_format.h"

#include <algorithm>
#include <cstring>

namespace raw {

namespace {

template <typename T>
void AppendPod(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(const uint8_t* data, size_t size, size_t* pos, T* v) {
  if (*pos + sizeof(T) > size) return false;
  std::memcpy(v, data + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

void RefHeader::SerializeTo(std::string* out) const {
  AppendPod(out, magic);
  AppendPod(out, version);
  AppendPod(out, directory_offset);
  AppendPod(out, num_events);
  AppendPod(out, cluster_events);
  AppendPod(out, num_branches);
}

StatusOr<RefHeader> RefHeader::Deserialize(const uint8_t* data, size_t size) {
  RefHeader h;
  size_t pos = 0;
  if (!ReadPod(data, size, &pos, &h.magic) ||
      !ReadPod(data, size, &pos, &h.version) ||
      !ReadPod(data, size, &pos, &h.directory_offset) ||
      !ReadPod(data, size, &pos, &h.num_events) ||
      !ReadPod(data, size, &pos, &h.cluster_events) ||
      !ReadPod(data, size, &pos, &h.num_branches)) {
    return Status::ParseError("REF header truncated");
  }
  if (h.magic != kRefMagic) return Status::ParseError("not an REF file");
  if (h.version != kRefVersion) {
    return Status::ParseError("unsupported REF version " +
                              std::to_string(h.version));
  }
  return h;
}

int RefBranch::ClusterFor(int64_t index) const {
  if (index < 0 || index >= num_values()) return -1;
  auto it = std::upper_bound(
      clusters.begin(), clusters.end(), index,
      [](int64_t v, const RefCluster& c) { return v < c.first_value; });
  return static_cast<int>(it - clusters.begin()) - 1;
}

void SerializeDirectory(const std::vector<RefBranch>& branches,
                        std::string* out) {
  for (const RefBranch& b : branches) {
    uint32_t name_len = static_cast<uint32_t>(b.name.size());
    AppendPod(out, name_len);
    out->append(b.name);
    AppendPod(out, static_cast<uint8_t>(b.type));
    AppendPod(out, static_cast<uint8_t>(b.codec));
    AppendPod(out, static_cast<uint8_t>(b.per_event ? 1 : 0));
    AppendPod(out, static_cast<int32_t>(b.clusters.size()));
    for (const RefCluster& c : b.clusters) {
      AppendPod(out, c.file_offset);
      AppendPod(out, c.stored_bytes);
      AppendPod(out, c.first_value);
      AppendPod(out, c.num_values);
    }
  }
}

StatusOr<std::vector<RefBranch>> DeserializeDirectory(const uint8_t* data,
                                                      size_t size,
                                                      int32_t num_branches) {
  std::vector<RefBranch> branches;
  size_t pos = 0;
  for (int32_t i = 0; i < num_branches; ++i) {
    RefBranch b;
    uint32_t name_len = 0;
    if (!ReadPod(data, size, &pos, &name_len) || pos + name_len > size) {
      return Status::ParseError("REF directory truncated (branch name)");
    }
    b.name.assign(reinterpret_cast<const char*>(data + pos), name_len);
    pos += name_len;
    uint8_t type = 0, codec = 0, per_event = 0;
    int32_t num_clusters = 0;
    if (!ReadPod(data, size, &pos, &type) ||
        !ReadPod(data, size, &pos, &codec) ||
        !ReadPod(data, size, &pos, &per_event) ||
        !ReadPod(data, size, &pos, &num_clusters)) {
      return Status::ParseError("REF directory truncated (branch meta)");
    }
    b.type = static_cast<DataType>(type);
    b.codec = static_cast<RefCodec>(codec);
    b.per_event = per_event != 0;
    for (int32_t c = 0; c < num_clusters; ++c) {
      RefCluster cl;
      if (!ReadPod(data, size, &pos, &cl.file_offset) ||
          !ReadPod(data, size, &pos, &cl.stored_bytes) ||
          !ReadPod(data, size, &pos, &cl.first_value) ||
          !ReadPod(data, size, &pos, &cl.num_values)) {
        return Status::ParseError("REF directory truncated (cluster)");
      }
      b.clusters.push_back(cl);
    }
    branches.push_back(std::move(b));
  }
  return branches;
}

}  // namespace raw
