#ifndef RAW_EVENTSIM_REF_READER_H_
#define RAW_EVENTSIM_REF_READER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "common/statusor.h"
#include "eventsim/buffer_pool.h"
#include "eventsim/event_model.h"
#include "eventsim/ref_format.h"

namespace raw {

/// Reads REF event files through a cluster buffer pool — the analogue of the
/// ROOT I/O API the paper's generated code calls (§6): `GetEntry(i)` for
/// object-at-a-time access and `ReadField*(branch, id)` for id-based access
/// that "pushes some filtering downwards, avoiding full scans".
///
/// Thread-safety: all read methods are safe to call from any number of
/// threads concurrently. File access uses pread on a shared descriptor,
/// branch/group metadata is immutable after Open, and decoded clusters flow
/// through the sharded ClusterBufferPool whose handles pin the bytes for the
/// duration of each read (see the pool's pinning rule). Racing decoders of
/// the same cold cluster may decode it twice; the pool keeps one copy.
class RefReader {
 public:
  /// Opens `path`; `pool_capacity_bytes` bounds the decoded-cluster cache
  /// (default 256 MiB, roomy enough to keep a warm working set).
  static StatusOr<std::unique_ptr<RefReader>> Open(
      const std::string& path, int64_t pool_capacity_bytes = 256ll << 20);

  ~RefReader();
  RAW_DISALLOW_COPY_AND_ASSIGN(RefReader);

  int64_t num_events() const { return header_.num_events; }
  int num_branches() const { return static_cast<int>(branches_.size()); }
  const RefBranch& branch(int i) const {
    return branches_[static_cast<size_t>(i)];
  }

  /// Index of the branch named `name`, or -1.
  int BranchIndex(std::string_view name) const;

  /// Object-at-a-time access: materializes event `i` with all its particle
  /// lists (the hand-written C++ analysis path).
  Status GetEntry(int64_t i, Event* out);

  // Id-based field access (the JIT access-path API).
  StatusOr<int64_t> ReadInt64(int branch, int64_t index);
  StatusOr<int32_t> ReadInt32(int branch, int64_t index);
  StatusOr<float> ReadFloat(int branch, int64_t index);

  /// Bulk read of `count` values [first, first+count) into `out` (packed,
  /// branch element width). Spans clusters transparently. This is the
  /// columnar fast path RAW's generated scan operators use.
  Status ReadRange(int branch, int64_t first, int64_t count, void* out);

  /// Flat-index range of `group`'s particles for `event`:
  /// [begin, begin + count).
  void GroupRange(int group, int64_t event, int64_t* begin,
                  int64_t* count) const;

  /// Total flattened particles in `group` across the file.
  int64_t GroupTotal(int group) const {
    return group_offsets_[static_cast<size_t>(group)].back();
  }

  /// For a flat particle index of `group`, the owning event id (by binary
  /// search over the per-event offsets).
  int64_t EventOfFlatIndex(int group, int64_t flat_index) const;

  /// The branch whose clusters define the row layout of a derived table:
  /// event/id for the event table (`group` < 0), the group's pt branch for a
  /// particle table. Morsel splitters align REF row ranges to its cluster
  /// boundaries so parallel workers never share a decode. Null when the
  /// branch is missing.
  const RefBranch* RowBranch(int group) const;

  ClusterBufferPool* pool() { return pool_.get(); }

  /// Drops all cached clusters (simulates a cold ROOT session).
  void ClearCache() { pool_->Clear(); }

 private:
  RefReader(int fd, std::string path, RefHeader header,
            std::vector<RefBranch> branches, int64_t pool_capacity_bytes);

  /// Returns the decoded bytes of `cluster_idx` of `branch` via the pool,
  /// pinned for the caller (safe against concurrent eviction/Clear).
  StatusOr<ClusterDataPtr> FetchCluster(int branch, int cluster_idx);

  Status BuildGroupOffsets();

  int fd_;
  std::string path_;
  RefHeader header_;
  std::vector<RefBranch> branches_;
  std::unique_ptr<ClusterBufferPool> pool_;
  // group_offsets_[g][e] = flat index of event e's first particle;
  // group_offsets_[g][num_events] = total.
  std::vector<std::vector<int64_t>> group_offsets_;
  // Cached branch indices for the fixed event model.
  int id_branch_ = -1;
  int run_branch_ = -1;
  int group_branch_[ref_branches::kNumGroups][4];  // n, pt, eta, phi
};

}  // namespace raw

#endif  // RAW_EVENTSIM_REF_READER_H_
