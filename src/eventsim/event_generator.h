#ifndef RAW_EVENTSIM_EVENT_GENERATOR_H_
#define RAW_EVENTSIM_EVENT_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "eventsim/event_model.h"

namespace raw {

/// Parameters of the synthetic collision-event workload. The distributions
/// are physics-free but shaped so the Higgs-style cuts (§6) have realistic,
/// tunable selectivities: particle multiplicities are geometric-ish, pt falls
/// off steeply, eta is roughly central, and a controllable fraction of events
/// belongs to "good runs".
struct EventGenOptions {
  uint64_t seed = 42;
  int64_t num_events = 50000;
  /// Run numbers cycle through [first_run, first_run + num_runs).
  int32_t first_run = 2000;
  int32_t num_runs = 40;
  /// Fraction of runs recorded in the good-runs list.
  double good_run_fraction = 0.8;
  /// Mean particle multiplicities per event.
  double mean_muons = 2.2;
  double mean_electrons = 2.0;
  double mean_jets = 4.5;
  /// pt scale (GeV); pt ~ scale * exponential decay.
  double pt_scale = 28.0;
  /// |eta| bound.
  double eta_max = 5.0;
};

/// Deterministic generator of synthetic events.
class EventGenerator {
 public:
  explicit EventGenerator(EventGenOptions options);

  /// Generates the `index`-th event (reproducible for a fixed seed —
  /// generation is streamed, call with increasing indices).
  Event Next();

  int64_t events_generated() const { return next_index_; }
  const EventGenOptions& options() const { return options_; }

  /// The run numbers in the good-runs list for these options.
  static std::vector<int32_t> GoodRuns(const EventGenOptions& options);

 private:
  int SampleMultiplicity(double mean);
  Particle SampleParticle();

  EventGenOptions options_;
  Rng rng_;
  int64_t next_index_ = 0;
};

/// Writes `options.num_events` events to an REF file at `path`.
Status WriteRefFile(const std::string& path, const EventGenOptions& options,
                    int32_t cluster_events = 1024);

/// Writes the good-runs CSV (single int32 column "run") at `path`.
Status WriteGoodRunsCsv(const std::string& path,
                        const EventGenOptions& options);

}  // namespace raw

#endif  // RAW_EVENTSIM_EVENT_GENERATOR_H_
