#include "eventsim/buffer_pool.h"

#include <algorithm>

#include "common/hash.h"

namespace raw {

ClusterBufferPool::ClusterBufferPool(int64_t capacity_bytes, int num_shards)
    : capacity_bytes_(capacity_bytes) {
  num_shards = std::max(num_shards, 1);
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ClusterBufferPool::Shard& ClusterBufferPool::ShardFor(uint64_t key) const {
  return *shards_[MixHash64(key) % shards_.size()];
}

ClusterDataPtr ClusterBufferPool::Get(uint64_t key) {
  if (capacity_bytes_ <= 0) {
    // Caching disabled: every access is a miss, no shard mutex touched.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // to front
  return it->second->data;
}

ClusterDataPtr ClusterBufferPool::Put(uint64_t key,
                                      std::vector<uint8_t> data) {
  auto owned =
      std::make_shared<const std::vector<uint8_t>>(std::move(data));
  if (capacity_bytes_ <= 0) return owned;  // uncached; pinned by caller only
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Concurrent decoders raced this cluster: keep the first copy so every
    // reader shares one buffer, and drop the duplicate bytes.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->data;
  }
  total_bytes_.fetch_add(static_cast<int64_t>(owned->size()),
                         std::memory_order_relaxed);
  shard.lru.push_front(Entry{key, owned});
  shard.index[key] = shard.lru.begin();
  // The budget is pool-wide; an over-budget insert sheds its own shard's LRU
  // tail (down to one surviving entry — the oversized-entry guard the
  // single-LRU always had). Other shards shed their own tails on their own
  // next inserts, so the total converges onto the budget without cross-shard
  // locking. Evicted buffers stay alive while any reader still pins them.
  while (total_bytes_.load(std::memory_order_relaxed) > capacity_bytes_ &&
         shard.lru.size() > 1) {
    Entry& victim = shard.lru.back();
    total_bytes_.fetch_sub(static_cast<int64_t>(victim.data->size()),
                           std::memory_order_relaxed);
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return owned;
}

void ClusterBufferPool::Clear() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const Entry& e : shard->lru) {
      total_bytes_.fetch_sub(static_cast<int64_t>(e.data->size()),
                             std::memory_order_relaxed);
    }
    shard->lru.clear();
    shard->index.clear();
  }
}

ClusterPoolStats ClusterBufferPool::Stats() const {
  ClusterPoolStats stats;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += static_cast<int64_t>(shard->lru.size());
  }
  stats.bytes = bytes_cached();
  stats.hits = hits();
  stats.misses = misses();
  stats.evictions = evictions();
  return stats;
}

}  // namespace raw
