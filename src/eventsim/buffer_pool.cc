#include "eventsim/buffer_pool.h"

namespace raw {

const std::vector<uint8_t>* ClusterBufferPool::Get(uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  return &it->second->data;
}

const std::vector<uint8_t>* ClusterBufferPool::Put(uint64_t key,
                                                   std::vector<uint8_t> data) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->data;
  }
  bytes_cached_ += static_cast<int64_t>(data.size());
  lru_.push_front(Entry{key, std::move(data)});
  index_[key] = lru_.begin();
  while (bytes_cached_ > capacity_bytes_ && lru_.size() > 1) {
    Entry& victim = lru_.back();
    bytes_cached_ -= static_cast<int64_t>(victim.data.size());
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
  return &lru_.front().data;
}

void ClusterBufferPool::Clear() {
  lru_.clear();
  index_.clear();
  bytes_cached_ = 0;
}

}  // namespace raw
