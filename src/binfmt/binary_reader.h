#ifndef RAW_BINFMT_BINARY_READER_H_
#define RAW_BINFMT_BINARY_READER_H_

#include <cstring>
#include <memory>
#include <string>

#include "binfmt/binary_layout.h"
#include "common/mmap_file.h"

namespace raw {

/// Memory-mapped reader for the fixed-width binary format. Provides the
/// plug-in methods the paper describes for this format (§4.2): read a typed
/// value at a deterministic offset, or skip a binary offset — no conversion.
class BinaryReader {
 public:
  static StatusOr<std::unique_ptr<BinaryReader>> Open(const std::string& path,
                                                      BinaryLayout layout);

  const BinaryLayout& layout() const { return layout_; }
  int64_t num_rows() const { return num_rows_; }
  const char* data() const { return file_->data(); }
  MmapFile* file() { return file_.get(); }

  /// Typed point reads; no bounds checks on the hot path beyond debug
  /// asserts — callers iterate within [0, num_rows).
  template <typename T>
  T Value(int64_t row, int column) const {
    T v;
    std::memcpy(&v, file_->data() + layout_.Offset(row, column), sizeof(T));
    return v;
  }

 private:
  BinaryReader(std::unique_ptr<MmapFile> file, BinaryLayout layout,
               int64_t num_rows)
      : file_(std::move(file)), layout_(std::move(layout)), num_rows_(num_rows) {}

  std::unique_ptr<MmapFile> file_;
  BinaryLayout layout_;
  int64_t num_rows_;
};

}  // namespace raw

#endif  // RAW_BINFMT_BINARY_READER_H_
