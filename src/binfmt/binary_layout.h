#ifndef RAW_BINFMT_BINARY_LAYOUT_H_
#define RAW_BINFMT_BINARY_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/statusor.h"

namespace raw {

/// Row-major fixed-width binary layout: every field is serialized from its C
/// representation at a deterministic offset (§4.2's "custom binary format").
///
/// This is the format where positional maps are pure overhead: the byte
/// position of (row, column) is `row * row_width + column_offset[column]`,
/// a formula JIT access paths constant-fold into generated code (§4.1).
class BinaryLayout {
 public:
  /// Builds the layout for `schema`. Fails on variable-length fields.
  static StatusOr<BinaryLayout> Create(const Schema& schema);

  int num_columns() const { return static_cast<int>(offsets_.size()); }
  int64_t row_width() const { return row_width_; }

  /// Byte offset of `column` within a row.
  int64_t ColumnOffset(int column) const {
    return offsets_[static_cast<size_t>(column)];
  }

  /// Absolute byte offset of (row, column).
  int64_t Offset(int64_t row, int column) const {
    return row * row_width_ + offsets_[static_cast<size_t>(column)];
  }

  /// Number of complete rows in a file of `file_size` bytes.
  int64_t NumRows(int64_t file_size) const {
    return row_width_ == 0 ? 0 : file_size / row_width_;
  }

  const Schema& schema() const { return schema_; }

 private:
  BinaryLayout(Schema schema, std::vector<int64_t> offsets, int64_t row_width)
      : schema_(std::move(schema)),
        offsets_(std::move(offsets)),
        row_width_(row_width) {}

  Schema schema_;
  std::vector<int64_t> offsets_;
  int64_t row_width_ = 0;
};

}  // namespace raw

#endif  // RAW_BINFMT_BINARY_LAYOUT_H_
