#include "binfmt/binary_writer.h"

namespace raw {

namespace {
constexpr size_t kFlushThreshold = 1 << 20;
}

BinaryWriter::BinaryWriter(std::string path, BinaryLayout layout)
    : path_(std::move(path)), layout_(std::move(layout)) {}

BinaryWriter::~BinaryWriter() {
  if (file_ != nullptr) {
    if (!buffer_.empty()) fwrite(buffer_.data(), 1, buffer_.size(), file_);
    fclose(file_);
  }
}

Status BinaryWriter::Open() {
  file_ = fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IOError("cannot create binary file '" + path_ + "'");
  }
  buffer_.reserve(kFlushThreshold + (1 << 16));
  return Status::OK();
}

void BinaryWriter::AppendRawValue(const void* data, size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

void BinaryWriter::MaybeFlush() {
  if (buffer_.size() >= kFlushThreshold) {
    fwrite(buffer_.data(), 1, buffer_.size(), file_);
    buffer_.clear();
  }
}

Status BinaryWriter::AppendDatumRow(const std::vector<Datum>& values) {
  const Schema& schema = layout_.schema();
  if (static_cast<int>(values.size()) != schema.num_fields()) {
    return Status::InvalidArgument("AppendDatumRow: field count mismatch");
  }
  for (int i = 0; i < schema.num_fields(); ++i) {
    const Datum& d = values[static_cast<size_t>(i)];
    if (d.type() != schema.field(i).type) {
      return Status::InvalidArgument("AppendDatumRow: type mismatch at field " +
                                     std::to_string(i));
    }
    switch (d.type()) {
      case DataType::kInt32:
        AppendInt32(d.int32_value());
        break;
      case DataType::kInt64:
        AppendInt64(d.int64_value());
        break;
      case DataType::kFloat32:
        AppendFloat32(d.float32_value());
        break;
      case DataType::kFloat64:
        AppendFloat64(d.float64_value());
        break;
      case DataType::kBool:
        AppendBool(d.bool_value());
        break;
      case DataType::kString:
        return Status::InvalidArgument("binary format cannot store strings");
    }
  }
  EndRow();
  return Status::OK();
}

Status BinaryWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  if (!buffer_.empty()) {
    if (fwrite(buffer_.data(), 1, buffer_.size(), file_) != buffer_.size()) {
      fclose(file_);
      file_ = nullptr;
      return Status::IOError("short write to '" + path_ + "'");
    }
    buffer_.clear();
  }
  if (fclose(file_) != 0) {
    file_ = nullptr;
    return Status::IOError("close failed for '" + path_ + "'");
  }
  file_ = nullptr;
  return Status::OK();
}

}  // namespace raw
