#ifndef RAW_BINFMT_BINARY_WRITER_H_
#define RAW_BINFMT_BINARY_WRITER_H_

#include <cstdio>
#include <string>
#include <vector>

#include "binfmt/binary_layout.h"
#include "common/datum.h"
#include "common/macros.h"

namespace raw {

/// Writes rows in the fixed-width binary layout (little-endian host order,
/// matching the paper's "attributes serialized from their C representation").
class BinaryWriter {
 public:
  BinaryWriter(std::string path, BinaryLayout layout);
  ~BinaryWriter();
  RAW_DISALLOW_COPY_AND_ASSIGN(BinaryWriter);

  Status Open();

  // Streaming per-field appenders; fields must be appended in schema order.
  void AppendInt32(int32_t v) { AppendRawValue(&v, sizeof(v)); }
  void AppendInt64(int64_t v) { AppendRawValue(&v, sizeof(v)); }
  void AppendFloat32(float v) { AppendRawValue(&v, sizeof(v)); }
  void AppendFloat64(double v) { AppendRawValue(&v, sizeof(v)); }
  void AppendBool(bool v) {
    char c = v ? 1 : 0;
    AppendRawValue(&c, 1);
  }
  void EndRow() { ++rows_written_; MaybeFlush(); }

  /// Appends one typed row; types must match the layout's schema.
  Status AppendDatumRow(const std::vector<Datum>& values);

  Status Close();

  int64_t rows_written() const { return rows_written_; }

 private:
  void AppendRawValue(const void* data, size_t size);
  void MaybeFlush();

  std::string path_;
  BinaryLayout layout_;
  FILE* file_ = nullptr;
  std::string buffer_;
  int64_t rows_written_ = 0;
};

}  // namespace raw

#endif  // RAW_BINFMT_BINARY_WRITER_H_
