#include "binfmt/binary_reader.h"

namespace raw {

StatusOr<std::unique_ptr<BinaryReader>> BinaryReader::Open(
    const std::string& path, BinaryLayout layout) {
  RAW_ASSIGN_OR_RETURN(std::unique_ptr<MmapFile> file, MmapFile::Open(path));
  if (layout.row_width() > 0 &&
      static_cast<int64_t>(file->size()) % layout.row_width() != 0) {
    return Status::ParseError(
        "binary file size is not a multiple of the row width: " + path);
  }
  int64_t rows = layout.NumRows(static_cast<int64_t>(file->size()));
  return std::unique_ptr<BinaryReader>(
      new BinaryReader(std::move(file), std::move(layout), rows));
}

}  // namespace raw
