#include "binfmt/binary_reader.h"

namespace raw {

StatusOr<std::unique_ptr<BinaryReader>> BinaryReader::Open(
    const std::string& path, BinaryLayout layout) {
  RAW_ASSIGN_OR_RETURN(std::unique_ptr<MmapFile> file, MmapFile::Open(path));
  if (layout.row_width() > 0 &&
      static_cast<int64_t>(file->size()) % layout.row_width() != 0) {
    // A fixed-layout file that isn't a whole number of rows was truncated or
    // written by a different schema — either way the trailing bytes are not
    // trustworthy, so refuse the whole file with a typed error.
    return Status::DataCorruption(
        "binary file '" + path + "' holds " + std::to_string(file->size()) +
        " bytes, not a multiple of the " +
        std::to_string(layout.row_width()) + "-byte row width");
  }
  int64_t rows = layout.NumRows(static_cast<int64_t>(file->size()));
  return std::unique_ptr<BinaryReader>(
      new BinaryReader(std::move(file), std::move(layout), rows));
}

}  // namespace raw
