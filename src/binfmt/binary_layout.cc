#include "binfmt/binary_layout.h"

namespace raw {

StatusOr<BinaryLayout> BinaryLayout::Create(const Schema& schema) {
  RAW_RETURN_NOT_OK(schema.Validate());
  std::vector<int64_t> offsets;
  offsets.reserve(static_cast<size_t>(schema.num_fields()));
  int64_t offset = 0;
  for (const Field& f : schema.fields()) {
    int width = FixedWidth(f.type);
    if (width == 0) {
      return Status::InvalidArgument(
          "binary layout requires fixed-width fields; '" + f.name +
          "' is variable-length");
    }
    offsets.push_back(offset);
    offset += width;
  }
  return BinaryLayout(schema, std::move(offsets), offset);
}

}  // namespace raw
