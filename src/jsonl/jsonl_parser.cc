#include "jsonl/jsonl_parser.h"

#include "common/macros.h"

#include <cstring>

#include "common/kernels.h"

namespace raw {
namespace {

inline const char* SkipSpace(const char* p, const char* end) {
  while (p != end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
  return p;
}

// Malformed raw data is a parse error (the CSV taxonomy); InvalidArgument
// stays reserved for caller API misuse (bad scan specs, out-of-range ids).
Status Malformed(const char* what) {
  return Status::ParseError(std::string("malformed JSONL row: ") + what);
}

void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

StatusOr<uint32_t> ParseHex4(const char* p, const char* end) {
  if (end - p < 4) return Malformed("truncated \\u escape");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    char c = p[i];
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<uint32_t>(c - 'A' + 10);
    } else {
      return Malformed("invalid \\u escape digit");
    }
  }
  return v;
}

/// Scans a JSON string starting *after* the opening quote; returns the span
/// of its content and leaves `*pp` one past the closing quote. Rides the
/// dispatched SWAR/SIMD byte scanners: each step jumps to the next quote or
/// backslash instead of inspecting every character.
Status ScanJsonString(const char** pp, const char* end, const char** content,
                      int32_t* size, bool* escaped) {
  const char* start = *pp;
  const char* p = start;
  *escaped = false;
  while (true) {
    p = ScanForEither(p, end, '"', '\\');
    if (p == end) return Malformed("unterminated string");
    if (*p == '"') break;
    // Backslash: skip the escape introducer and the escaped character.
    *escaped = true;
    p += 2;
    if (p > end) return Malformed("unterminated escape");
  }
  *content = start;
  *size = static_cast<int32_t>(p - start);
  *pp = p + 1;  // past the closing quote
  return Status::OK();
}

}  // namespace

Status UnescapeJsonString(const char* data, int32_t size, std::string* out) {
  out->clear();
  out->reserve(static_cast<size_t>(size));
  const char* p = data;
  const char* end = data + size;
  while (p != end) {
    if (*p != '\\') {
      const char* next = ScanFor(p, end, '\\');
      out->append(p, static_cast<size_t>(next - p));
      p = next;
      continue;
    }
    if (++p == end) return Malformed("dangling backslash");
    switch (*p) {
      case '"': out->push_back('"'); ++p; break;
      case '\\': out->push_back('\\'); ++p; break;
      case '/': out->push_back('/'); ++p; break;
      case 'b': out->push_back('\b'); ++p; break;
      case 'f': out->push_back('\f'); ++p; break;
      case 'n': out->push_back('\n'); ++p; break;
      case 'r': out->push_back('\r'); ++p; break;
      case 't': out->push_back('\t'); ++p; break;
      case 'u': {
        ++p;
        RAW_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4(p, end));
        p += 4;
        if (cp >= 0xD800 && cp <= 0xDBFF) {
          // High surrogate: only valid immediately followed by a low
          // surrogate escape; together they name one astral code point.
          if (end - p < 6 || p[0] != '\\' || p[1] != 'u') {
            return Malformed("unpaired high surrogate in \\u escape");
          }
          RAW_ASSIGN_OR_RETURN(uint32_t low, ParseHex4(p + 2, end));
          if (low < 0xDC00 || low > 0xDFFF) {
            return Malformed("unpaired high surrogate in \\u escape");
          }
          cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          p += 6;
        } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
          return Malformed("unpaired low surrogate in \\u escape");
        }
        AppendUtf8(cp, out);
        break;
      }
      default:
        return Malformed("unknown escape character");
    }
  }
  return Status::OK();
}

Status ParseJsonValue(const char** pp, const char* end, JsonlField* out) {
  const char* p = *pp;
  if (p == end) return Malformed("missing value");
  out->quoted = false;
  out->escaped = false;
  if (*p == '"') {
    out->quoted = true;
    ++p;
    RAW_RETURN_NOT_OK(
        ScanJsonString(&p, end, &out->data, &out->size, &out->escaped));
    *pp = p;
    return Status::OK();
  }
  if (*p == '{' || *p == '[') {
    return Malformed("nested objects/arrays are not supported");
  }
  // Number / true / false / null: literal text up to a structural character.
  const char* start = p;
  while (p != end && *p != ',' && *p != '}' && *p != ' ' && *p != '\t' &&
         *p != '\r' && *p != '\n') {
    ++p;
  }
  if (p == start) return Malformed("empty value");
  out->data = start;
  out->size = static_cast<int32_t>(p - start);
  *pp = p;
  return Status::OK();
}

JsonlRowParser::JsonlRowParser(const Schema& schema)
    : num_fields_(schema.num_fields()) {
  for (int c = 0; c < schema.num_fields(); ++c) {
    index_.emplace(schema.field(c).name, c);
  }
}

Status JsonlRowParser::ParseRow(const char** pp, const char* end,
                                const char* base, JsonlField* fields) const {
  for (int c = 0; c < num_fields_; ++c) fields[c] = JsonlField{};
  const char* p = SkipSpace(*pp, end);
  if (p == end || *p != '{') return Malformed("expected '{'");
  p = SkipSpace(p + 1, end);
  if (p != end && *p == '}') {
    ++p;
  } else {
    while (true) {
      if (p == end || *p != '"') return Malformed("expected key string");
      const char* key = nullptr;
      int32_t key_size = 0;
      bool key_escaped = false;
      ++p;
      RAW_RETURN_NOT_OK(ScanJsonString(&p, end, &key, &key_size, &key_escaped));
      if (key_escaped) return Malformed("escaped keys are not supported");
      p = SkipSpace(p, end);
      if (p == end || *p != ':') return Malformed("expected ':'");
      p = SkipSpace(p + 1, end);
      JsonlField value;
      // The offset map records the value *including* a string's opening
      // quote, so a positional jump can re-detect the value kind in place.
      value.offset = static_cast<uint64_t>(p - base);
      RAW_RETURN_NOT_OK(ParseJsonValue(&p, end, &value));
      value.present = true;
      auto it = index_.find(std::string_view(key, static_cast<size_t>(key_size)));
      if (it != index_.end()) fields[it->second] = value;
      p = SkipSpace(p, end);
      if (p == end) return Malformed("unterminated object");
      if (*p == ',') {
        p = SkipSpace(p + 1, end);
        continue;
      }
      if (*p == '}') {
        ++p;
        break;
      }
      return Malformed("expected ',' or '}'");
    }
  }
  p = SkipSpace(p, end);
  if (p != end && *p != '\n') return Malformed("trailing data after object");
  if (p != end) ++p;  // past '\n'
  *pp = p;
  for (int c = 0; c < num_fields_; ++c) {
    if (!fields[c].present) {
      return Status::ParseError("JSONL row is missing key");
    }
  }
  return Status::OK();
}

int64_t CountJsonlRows(const char* begin, const char* end) {
  int64_t rows = 0;
  const char* p = begin;
  while (p < end) {
    const char* line_end = ScanFor(p, end, '\n');
    const char* q = SkipSpace(p, line_end);
    if (q != line_end) ++rows;
    p = (line_end == end) ? end : line_end + 1;
  }
  return rows;
}

}  // namespace raw
