#ifndef RAW_JSONL_JSONL_PARSER_H_
#define RAW_JSONL_JSONL_PARSER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/statusor.h"

namespace raw {

/// A view into one JSON value inside a mapped JSONL file. For string values
/// the view covers the *content* between the quotes (escapes left in place —
/// see `escaped`); for numbers / booleans it covers the literal text.
struct JsonlField {
  const char* data = nullptr;
  int32_t size = 0;
  bool present = false;  // the row contained this schema key
  bool quoted = false;   // the value was a JSON string
  bool escaped = false;  // content contains backslash escapes
  /// Byte offset of the value's first byte (strings: the opening quote),
  /// relative to the parse base — the JSONL field-offset map entry for this
  /// value, the generalization of the CSV positional map (§2.3): keys may
  /// appear in any order, so per-value offsets replace per-column positions.
  uint64_t offset = 0;
};

/// Decodes a JSON string span (content between the quotes) into `out`,
/// resolving \" \\ \/ \b \f \n \r \t and \uXXXX escapes. A high/low
/// surrogate escape pair (😀) combines into the astral-plane code
/// point's UTF-8 sequence; an unpaired surrogate is rejected with
/// InvalidArgument rather than smuggled through as invalid UTF-8.
Status UnescapeJsonString(const char* data, int32_t size, std::string* out);

/// Parses the single scalar JSON value starting at `*pp` (no leading
/// whitespace): a string, number, true, false or null. Advances `*pp` one
/// past the value. Nested objects and arrays are rejected — RAW's JSONL
/// driver handles flat objects, mirroring the paper's tabular raw files.
Status ParseJsonValue(const char** pp, const char* end, JsonlField* out);

/// Reusable parser for the rows of one JSONL file: each line is a flat JSON
/// object whose keys are matched against a fixed schema. Unknown keys are
/// skipped; schema keys may appear in any order but must all be present
/// (RAW columns have no null representation).
///
/// The parser is immutable after construction and safe to share across
/// threads (morsel-parallel scans parse disjoint line ranges concurrently).
class JsonlRowParser {
 public:
  explicit JsonlRowParser(const Schema& schema);

  /// Parses the object on the line starting at `*pp` (leading spaces/tabs
  /// tolerated) and fills `fields[0..num_fields)` indexed by schema column.
  /// Offsets are recorded relative to `base`. Advances `*pp` one past the
  /// row's terminating '\n' (or to `end`). `fields` is reset first.
  Status ParseRow(const char** pp, const char* end, const char* base,
                  JsonlField* fields) const;

  int num_fields() const { return num_fields_; }

 private:
  // Heterogeneous lookup (string_view key probe without allocating).
  std::map<std::string, int, std::less<>> index_;
  int num_fields_;
};

/// Counts data rows (non-empty lines) in the buffer.
int64_t CountJsonlRows(const char* begin, const char* end);

}  // namespace raw

#endif  // RAW_JSONL_JSONL_PARSER_H_
