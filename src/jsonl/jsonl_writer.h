#ifndef RAW_JSONL_JSONL_WRITER_H_
#define RAW_JSONL_JSONL_WRITER_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/datum.h"
#include "common/macros.h"
#include "common/schema.h"
#include "common/status.h"

namespace raw {

/// Buffered line-delimited JSON writer used by tests and the workload
/// generators: one flat object per line, keys in schema order.
class JsonlWriter {
 public:
  JsonlWriter(std::string path, Schema schema);
  ~JsonlWriter();
  RAW_DISALLOW_COPY_AND_ASSIGN(JsonlWriter);

  /// Opens the file (truncating).
  Status Open();

  /// Appends one row of typed values (one per schema field, matching types).
  Status AppendDatumRow(const std::vector<Datum>& values);

  /// Flushes and closes. Returns any deferred I/O error.
  Status Close();

  int64_t rows_written() const { return rows_written_; }

 private:
  void Put(std::string_view s);
  void PutEscaped(std::string_view s);

  std::string path_;
  Schema schema_;
  FILE* file_ = nullptr;
  int64_t rows_written_ = 0;
  std::string buffer_;
};

/// Serializes one string as a JSON string literal (quotes included) into
/// `out` — shared by the writer and the tests' expected-value fixtures.
void AppendJsonString(std::string_view s, std::string* out);

}  // namespace raw

#endif  // RAW_JSONL_JSONL_WRITER_H_
