#include "jsonl/jsonl_scan.h"

#include <algorithm>
#include <cstring>

#include "csv/fast_parse.h"

namespace raw {
namespace {

inline const char* SkipBlank(const char* p, const char* end) {
  while (p != end &&
         (*p == ' ' || *p == '\t' || *p == '\r' || *p == '\n')) {
    ++p;
  }
  return p;
}

}  // namespace

JsonlScanOperator::JsonlScanOperator(const MmapFile* file, JsonlScanSpec spec)
    : JsonlScanOperator(file->data(), file->size(), std::move(spec)) {}

JsonlScanOperator::JsonlScanOperator(const char* data, size_t size,
                                     JsonlScanSpec spec)
    : data_(data), size_(size), spec_(std::move(spec)),
      parser_(spec_.file_schema) {
  output_schema_ = SchemaForColumns(spec_.file_schema, spec_.outputs);
}

Status JsonlScanOperator::Open() {
  pos_ = data_;
  end_ = data_ + size_;
  if (!spec_.range.whole()) {
    if (spec_.range.unit != ScanRange::Unit::kBytes) {
      return Status::InvalidArgument("JSONL scan range must be byte-addressed");
    }
    const int64_t size = static_cast<int64_t>(size_);
    const int64_t range_end = spec_.range.bounded() ? spec_.range.end : size;
    if (spec_.range.begin < 0 || range_end > size ||
        spec_.range.begin > range_end) {
      return Status::InvalidArgument("JSONL scan byte range out of bounds");
    }
    pos_ = data_ + spec_.range.begin;
    end_ = data_ + range_end;
  }
  row_ = 0;
  input_cursor_ = 0;
  if (spec_.outputs.empty()) {
    return Status::InvalidArgument("JSONL scan needs at least one output");
  }
  if (!std::is_sorted(spec_.outputs.begin(), spec_.outputs.end())) {
    return Status::InvalidArgument("JSONL scan outputs must be ascending");
  }
  for (int c : spec_.outputs) {
    if (c < 0 || c >= spec_.file_schema.num_fields()) {
      return Status::InvalidArgument("JSONL scan output column out of range");
    }
  }
  row_fields_.assign(static_cast<size_t>(spec_.file_schema.num_fields()), {});
  refs_.assign(spec_.outputs.size(), {});
  if (spec_.use_pmap != nullptr) {
    needs_full_row_ = false;
    slot_for_output_.clear();
    for (int c : spec_.outputs) {
      int slot = spec_.use_pmap->SlotFor(c);
      slot_for_output_.push_back(slot);
      if (slot < 0) needs_full_row_ = true;
    }
  }
  return Status::OK();
}

namespace {

// True when the field's bytes convert cleanly to `type` (including the
// string unescape path — a broken \u escape is malformed data too).
bool JsonlFieldConverts(DataType type, const JsonlField& f,
                        std::string* scratch) {
  if (f.data == nullptr) return false;  // absent / null-filled placeholder
  switch (type) {
    case DataType::kInt32:
      return ParseInt32(f.data, f.size).ok();
    case DataType::kInt64:
      return ParseInt64(f.data, f.size).ok();
    case DataType::kFloat32:
      return ParseFloat32(f.data, f.size).ok();
    case DataType::kFloat64:
      return ParseFloat64(f.data, f.size).ok();
    case DataType::kBool:
      return ParseBool(f.data, f.size).ok();
    case DataType::kString:
      if (f.escaped) return UnescapeJsonString(f.data, f.size, scratch).ok();
      return true;
  }
  return true;
}

// Appends the column type's zero value (the null-fill substitute).
void AppendJsonlZeroValue(DataType type, Column* col) {
  switch (type) {
    case DataType::kInt32:
      col->Append<int32_t>(0);
      break;
    case DataType::kInt64:
      col->Append<int64_t>(0);
      break;
    case DataType::kFloat32:
      col->Append<float>(0.0f);
      break;
    case DataType::kFloat64:
      col->Append<double>(0.0);
      break;
    case DataType::kBool:
      col->Append<bool>(false);
      break;
    case DataType::kString:
      col->AppendString(std::string());
      break;
  }
}

}  // namespace

Status JsonlScanOperator::ConvertAndBuild(int64_t rows, ColumnBatch* out,
                                          std::vector<int64_t>* row_ids) {
  if (spec_.profile) spec_.profile->conversion.Start();

  // Tolerant policies pre-validate row-wise so a malformed row is dropped or
  // null-filled coherently across every output column.
  std::vector<uint8_t> bad;
  int64_t bad_rows = 0;
  if (spec_.policy != MalformedRowPolicy::kFail && rows > 0) {
    bad.assign(static_cast<size_t>(rows), 0);
    for (size_t j = 0; j < spec_.outputs.size(); ++j) {
      DataType type = spec_.file_schema.field(spec_.outputs[j]).type;
      const std::vector<JsonlField>& fr = refs_[j];
      for (int64_t i = 0; i < rows; ++i) {
        if (!bad[static_cast<size_t>(i)] &&
            !JsonlFieldConverts(type, fr[static_cast<size_t>(i)],
                                &unescape_scratch_)) {
          bad[static_cast<size_t>(i)] = 1;
          ++bad_rows;
        }
      }
    }
  }
  const bool skip = spec_.policy == MalformedRowPolicy::kSkip && bad_rows > 0;
  const bool null_fill =
      spec_.policy == MalformedRowPolicy::kNullFill && bad_rows > 0;
  const int64_t out_rows = skip ? rows - bad_rows : rows;

  std::vector<ColumnPtr> columns;
  columns.reserve(refs_.size());
  for (size_t j = 0; j < spec_.outputs.size(); ++j) {
    DataType type = spec_.file_schema.field(spec_.outputs[j]).type;
    auto col = std::make_shared<Column>(type);
    col->Reserve(out_rows);
    const std::vector<JsonlField>& fr = refs_[j];
    for (int64_t i = 0; i < rows; ++i) {
      if (!bad.empty() && bad[static_cast<size_t>(i)]) {
        if (skip) continue;
        if (null_fill) {
          AppendJsonlZeroValue(type, col.get());
          continue;
        }
      }
      const JsonlField& f = fr[static_cast<size_t>(i)];
      switch (type) {
        case DataType::kInt32: {
          RAW_ASSIGN_OR_RETURN(int32_t v, ParseInt32(f.data, f.size));
          col->Append<int32_t>(v);
          break;
        }
        case DataType::kInt64: {
          RAW_ASSIGN_OR_RETURN(int64_t v, ParseInt64(f.data, f.size));
          col->Append<int64_t>(v);
          break;
        }
        case DataType::kFloat32: {
          RAW_ASSIGN_OR_RETURN(float v, ParseFloat32(f.data, f.size));
          col->Append<float>(v);
          break;
        }
        case DataType::kFloat64: {
          RAW_ASSIGN_OR_RETURN(double v, ParseFloat64(f.data, f.size));
          col->Append<double>(v);
          break;
        }
        case DataType::kBool: {
          RAW_ASSIGN_OR_RETURN(bool v, ParseBool(f.data, f.size));
          col->Append<bool>(v);
          break;
        }
        case DataType::kString:
          if (f.escaped) {
            RAW_RETURN_NOT_OK(
                UnescapeJsonString(f.data, f.size, &unescape_scratch_));
            col->AppendString(unescape_scratch_);
          } else {
            col->AppendString(
                std::string(f.data, static_cast<size_t>(f.size)));
          }
          break;
      }
    }
    columns.push_back(std::move(col));
  }

  if (skip && row_ids != nullptr) {
    size_t kept = 0;
    for (int64_t i = 0; i < rows; ++i) {
      if (!bad[static_cast<size_t>(i)]) {
        (*row_ids)[kept++] = (*row_ids)[static_cast<size_t>(i)];
      }
    }
    row_ids->resize(kept);
  }
  if (spec_.health != nullptr) {
    if (skip) {
      spec_.health->rows_skipped.fetch_add(bad_rows, std::memory_order_relaxed);
    } else if (null_fill) {
      spec_.health->rows_nulled.fetch_add(bad_rows, std::memory_order_relaxed);
    }
  }

  if (spec_.profile) {
    spec_.profile->conversion.Stop();
    spec_.profile->build_columns.Start();
  }
  for (ColumnPtr& col : columns) out->AddColumn(std::move(col));
  out->SetNumRows(out_rows);
  if (spec_.profile) spec_.profile->build_columns.Stop();
  return Status::OK();
}

StatusOr<ColumnBatch> JsonlScanOperator::NextSequential() {
  ColumnBatch out(output_schema_);
  pos_ = SkipBlank(pos_, end_);
  if (pos_ >= end_) return ColumnBatch::EndOfStream(output_schema_);
  if (spec_.profile) spec_.profile->parsing.Start();

  PositionalMap* pmap = spec_.build_pmap;
  const int num_slots = pmap != nullptr ? pmap->num_tracked() : 0;
  std::vector<uint64_t> slot_positions(
      static_cast<size_t>(std::max(num_slots, 1)));

  for (auto& v : refs_) v.clear();
  row_id_scratch_.clear();

  int64_t rows = 0;
  while (rows < spec_.batch_rows) {
    pos_ = SkipBlank(pos_, end_);
    if (pos_ >= end_) break;
    const uint64_t row_start = static_cast<uint64_t>(pos_ - data_);
    Status parsed = parser_.ParseRow(&pos_, end_, data_, row_fields_.data());
    if (!parsed.ok()) {
      // A line that isn't valid JSON at all. Tolerant policies step over it
      // to the next newline (skip drops it; null-fill emits a zero row);
      // map building is incompatible with either (the map can't index what
      // didn't tokenize), so the strict error stands when a map is due.
      if (spec_.policy == MalformedRowPolicy::kFail || pmap != nullptr) {
        return parsed;
      }
      const char* line_start = data_ + row_start;
      const void* nl = std::memchr(line_start, '\n',
                                   static_cast<size_t>(end_ - line_start));
      pos_ = nl != nullptr ? static_cast<const char*>(nl) + 1 : end_;
      if (spec_.policy == MalformedRowPolicy::kSkip) {
        if (spec_.health != nullptr) {
          spec_.health->rows_skipped.fetch_add(1, std::memory_order_relaxed);
        }
        ++row_;
        continue;
      }
      // Null-fill: a row of empty fields; ConvertAndBuild sees every field
      // as non-converting and zero-fills the whole row.
      row_fields_.assign(row_fields_.size(), {});
    }
    for (size_t j = 0; j < spec_.outputs.size(); ++j) {
      refs_[j].push_back(
          row_fields_[static_cast<size_t>(spec_.outputs[j])]);
    }
    if (pmap != nullptr) {
      const auto& tracked = pmap->tracked_columns();
      for (int s = 0; s < num_slots; ++s) {
        slot_positions[static_cast<size_t>(s)] =
            row_fields_[static_cast<size_t>(tracked[static_cast<size_t>(s)])]
                .offset;
      }
      pmap->AppendRow(row_start, slot_positions.data());
    }
    row_id_scratch_.push_back(row_);
    ++row_;
    ++rows;
  }
  if (spec_.profile) spec_.profile->parsing.Stop();

  RAW_RETURN_NOT_OK(ConvertAndBuild(rows, &out, &row_id_scratch_));
  out.SetRowIds(row_id_scratch_);
  if (spec_.profile) spec_.profile->rows += rows;
  return out;
}

StatusOr<ColumnBatch> JsonlScanOperator::NextPositional() {
  ColumnBatch out(output_schema_);
  const PositionalMap& pmap = *spec_.use_pmap;
  const int64_t total = spec_.row_set.has_value() ? spec_.row_set->size()
                                                  : pmap.num_rows();
  if (input_cursor_ >= total) return ColumnBatch::EndOfStream(output_schema_);
  if (spec_.profile) spec_.profile->parsing.Start();

  const char* file_end = data_ + size_;
  for (auto& v : refs_) v.clear();
  row_id_scratch_.clear();

  int64_t rows = 0;
  while (rows < spec_.batch_rows && input_cursor_ < total) {
    int64_t row_id = spec_.row_set.has_value()
                         ? spec_.row_set->ids[static_cast<size_t>(input_cursor_)]
                         : input_cursor_;
    if (row_id < 0 || row_id >= pmap.num_rows()) {
      return Status::InvalidArgument("JSONL row id outside the offset map");
    }
    if (needs_full_row_) {
      // Some output column is untracked: jump to the row start and parse the
      // whole object once; every output rides along.
      const uint64_t row_start = pmap.RowStart(row_id);
      if (row_start >= size_) {
        if (spec_.health != nullptr) {
          spec_.health->io_faults.fetch_add(1, std::memory_order_relaxed);
        }
        if (spec_.profile) spec_.profile->parsing.Stop();
        return Status::DataCorruption(
            "field-offset map row start " + std::to_string(row_start) +
            " for row " + std::to_string(row_id) + " lies beyond the file's " +
            std::to_string(size_) +
            " bytes (file truncated since the map was built?)");
      }
      const char* p = data_ + row_start;
      Status parsed = parser_.ParseRow(&p, file_end, data_, row_fields_.data());
      if (!parsed.ok()) {
        if (spec_.policy == MalformedRowPolicy::kFail) return parsed;
        if (spec_.policy == MalformedRowPolicy::kSkip) {
          if (spec_.health != nullptr) {
            spec_.health->rows_skipped.fetch_add(1, std::memory_order_relaxed);
          }
          ++input_cursor_;
          continue;
        }
        row_fields_.assign(row_fields_.size(), {});
      }
      for (size_t j = 0; j < spec_.outputs.size(); ++j) {
        refs_[j].push_back(
            row_fields_[static_cast<size_t>(spec_.outputs[j])]);
      }
    } else {
      // Every output is tracked: jump straight to each value's mapped byte
      // offset — no tokenizing past other fields at all.
      bool row_dropped = false;
      for (size_t j = 0; j < spec_.outputs.size(); ++j) {
        const uint64_t position = pmap.Position(row_id, slot_for_output_[j]);
        if (position >= size_) {
          if (spec_.health != nullptr) {
            spec_.health->io_faults.fetch_add(1, std::memory_order_relaxed);
          }
          if (spec_.profile) spec_.profile->parsing.Stop();
          return Status::DataCorruption(
              "field-offset map offset " + std::to_string(position) +
              " for row " + std::to_string(row_id) +
              " lies beyond the file's " + std::to_string(size_) +
              " bytes (file truncated since the map was built?)");
        }
        const char* p = data_ + position;
        JsonlField value;
        Status parsed = ParseJsonValue(&p, file_end, &value);
        if (!parsed.ok()) {
          if (spec_.policy == MalformedRowPolicy::kFail) return parsed;
          if (spec_.policy == MalformedRowPolicy::kSkip) {
            // Drop the whole row: rewind the columns already collected.
            for (size_t k = 0; k < j; ++k) refs_[k].pop_back();
            if (spec_.health != nullptr) {
              spec_.health->rows_skipped.fetch_add(1,
                                                   std::memory_order_relaxed);
            }
            row_dropped = true;
            break;
          }
          value = JsonlField{};  // null-fill: non-converting empty field
        }
        value.present = true;
        refs_[j].push_back(value);
      }
      if (row_dropped) {
        ++input_cursor_;
        continue;
      }
    }
    row_id_scratch_.push_back(row_id);
    ++input_cursor_;
    ++rows;
  }
  if (spec_.profile) spec_.profile->parsing.Stop();

  RAW_RETURN_NOT_OK(ConvertAndBuild(rows, &out, &row_id_scratch_));
  out.SetRowIds(row_id_scratch_);
  if (spec_.profile) spec_.profile->rows += rows;
  return out;
}

StatusOr<ColumnBatch> JsonlScanOperator::Next() {
  if (spec_.use_pmap != nullptr) return NextPositional();
  return NextSequential();
}

JsonlRowFetcher::JsonlRowFetcher(const MmapFile* file, JsonlScanSpec spec)
    : file_(file), spec_(std::move(spec)) {
  schema_ = SchemaForColumns(spec_.file_schema, spec_.outputs);
}

StatusOr<std::vector<ColumnPtr>> JsonlRowFetcher::Fetch(const RowSet& rows) {
  JsonlScanSpec spec = spec_;
  spec.row_set = rows;
  spec.batch_rows = std::max<int64_t>(rows.size(), 1);
  JsonlScanOperator op(file_, std::move(spec));
  RAW_RETURN_NOT_OK(op.Open());
  std::vector<ColumnPtr> out;
  if (rows.empty()) {
    for (const Field& f : schema_.fields()) {
      out.push_back(std::make_shared<Column>(f.type));
    }
    return out;
  }
  RAW_ASSIGN_OR_RETURN(ColumnBatch batch, op.Next());
  for (int c = 0; c < batch.num_columns(); ++c) out.push_back(batch.column(c));
  return out;
}

}  // namespace raw
