#ifndef RAW_JSONL_JSONL_SCAN_H_
#define RAW_JSONL_JSONL_SCAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/mmap_file.h"
#include "common/scan_health.h"
#include "csv/positional_map.h"
#include "format/format.h"
#include "jsonl/jsonl_parser.h"
#include "scan/access_path.h"
#include "scan/scan_profile.h"

namespace raw {

/// Configuration of an in-situ scan over line-delimited JSON (one flat
/// object per line). One spec describes either:
///  * a sequential scan of a newline-aligned byte range (optionally building
///    the field-offset map — a PositionalMap whose tracked positions are the
///    byte offsets of tracked columns' *values*, wherever their keys appear
///    in each row), or
///  * a positional scan that jumps straight to mapped value offsets (tracked
///    columns) or to the row start (untracked columns) for a set of rows.
struct JsonlScanSpec {
  Schema file_schema;        // full object schema (all keys)
  std::vector<int> outputs;  // columns to materialize, ascending
  int64_t batch_rows = kDefaultBatchRows;

  /// Sequential mode: byte-addressed morsel (default: whole file). Must cut
  /// on line boundaries (see SplitJsonlByteRanges). Emitted row ids are
  /// range-local; the parallel scan driver rebases them.
  ScanRange range;

  /// Sequential mode: build this field-offset map while scanning (may be
  /// null). Offsets are file-global even for sub-range scans.
  PositionalMap* build_pmap = nullptr;

  /// Positional mode: jump with this map (null => sequential mode). Unlike
  /// CSV there is no anchor column — JSON keys carry no positional order, so
  /// untracked columns re-parse from the row start instead of incrementally
  /// parsing from a preceding field.
  const PositionalMap* use_pmap = nullptr;

  /// Positional mode: explicit rows (column shreds). Only `ids` are used;
  /// positions resolve through the map. When absent, all mapped rows.
  std::optional<RowSet> row_set;

  /// What to do with rows whose bytes don't convert to the schema (or lines
  /// that aren't valid JSON at all). Tolerant policies must not be combined
  /// with `build_pmap`: a map can't index rows the scan couldn't tokenize
  /// (the planner never requests both).
  MalformedRowPolicy policy = MalformedRowPolicy::kFail;
  /// Per-query robustness counters (may be null); shared across morsels.
  ScanHealth* health = nullptr;

  ScanProfile* profile = nullptr;  // optional instrumentation
};

/// The interpreted JSONL scan operator — the JSON twin of
/// InsituCsvScanOperator, demonstrating that the engine's adaptive
/// machinery (positional maps, shreds, morsel parallelism) is
/// format-agnostic once value offsets replace column positions.
class JsonlScanOperator : public Operator {
 public:
  /// `file` must outlive the operator.
  JsonlScanOperator(const MmapFile* file, JsonlScanSpec spec);
  /// In-memory flavour (decompressed buffers, tests). `data` must outlive
  /// the operator.
  JsonlScanOperator(const char* data, size_t size, JsonlScanSpec spec);

  const Schema& output_schema() const override { return output_schema_; }
  Status Open() override;
  StatusOr<ColumnBatch> Next() override;
  std::string name() const override { return "JsonlScan"; }

 private:
  StatusOr<ColumnBatch> NextSequential();
  StatusOr<ColumnBatch> NextPositional();
  /// Converts collected field views into typed columns; compacts `row_ids`
  /// in place when the skip policy drops rows (callers SetRowIds after).
  Status ConvertAndBuild(int64_t rows, ColumnBatch* out,
                         std::vector<int64_t>* row_ids);

  const char* data_;
  size_t size_;
  JsonlScanSpec spec_;
  Schema output_schema_;
  JsonlRowParser parser_;
  // Sequential cursor state.
  const char* pos_ = nullptr;
  const char* end_ = nullptr;
  int64_t row_ = 0;
  // Positional cursor state.
  int64_t input_cursor_ = 0;
  bool needs_full_row_ = false;        // some output column is untracked
  std::vector<int> slot_for_output_;   // tracked slot per output, -1 untracked
  // Scratch.
  std::vector<JsonlField> row_fields_;             // one per schema field
  std::vector<std::vector<JsonlField>> refs_;      // [output][batch row]
  std::vector<int64_t> row_id_scratch_;
  std::string unescape_scratch_;
};

/// RowFetcher for JSONL late scans: each Fetch runs a private positional
/// JsonlScanOperator over the shared map — re-entrant, so the parallel
/// fetch decorator can chunk row sets across threads.
class JsonlRowFetcher : public RowFetcher {
 public:
  /// `spec.use_pmap` must be set; its row_set is supplied per Fetch call.
  JsonlRowFetcher(const MmapFile* file, JsonlScanSpec spec);

  /// Overrides the published field schema (e.g. qualified names).
  void set_fields(Schema fields) { schema_ = std::move(fields); }

  const Schema& fields() const override { return schema_; }
  StatusOr<std::vector<ColumnPtr>> Fetch(const RowSet& rows) override;

 private:
  const MmapFile* file_;
  JsonlScanSpec spec_;
  Schema schema_;
};

}  // namespace raw

#endif  // RAW_JSONL_JSONL_SCAN_H_
