#include "jsonl/jsonl_writer.h"

#include <cinttypes>
#include <cstdio>

namespace raw {

namespace {
constexpr size_t kFlushThreshold = 1 << 20;  // 1 MiB write buffer
}

void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char tmp[8];
          snprintf(tmp, sizeof(tmp), "\\u%04x", c);
          out->append(tmp);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

JsonlWriter::JsonlWriter(std::string path, Schema schema)
    : path_(std::move(path)), schema_(std::move(schema)) {}

JsonlWriter::~JsonlWriter() {
  if (file_ != nullptr) {
    // Best effort; callers that care about errors call Close().
    if (!buffer_.empty()) fwrite(buffer_.data(), 1, buffer_.size(), file_);
    fclose(file_);
  }
}

Status JsonlWriter::Open() {
  file_ = fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IOError("cannot create JSONL file '" + path_ + "'");
  }
  buffer_.reserve(kFlushThreshold + (1 << 16));
  return Status::OK();
}

void JsonlWriter::Put(std::string_view s) { buffer_.append(s); }

void JsonlWriter::PutEscaped(std::string_view s) {
  AppendJsonString(s, &buffer_);
}

Status JsonlWriter::AppendDatumRow(const std::vector<Datum>& values) {
  if (static_cast<int>(values.size()) != schema_.num_fields()) {
    return Status::InvalidArgument("JSONL row width does not match schema");
  }
  buffer_.push_back('{');
  for (int i = 0; i < schema_.num_fields(); ++i) {
    if (i > 0) buffer_.push_back(',');
    PutEscaped(schema_.field(i).name);
    buffer_.push_back(':');
    const Datum& d = values[static_cast<size_t>(i)];
    char tmp[32];
    int n;
    switch (d.type()) {
      case DataType::kInt32:
        n = snprintf(tmp, sizeof(tmp), "%d", d.int32_value());
        buffer_.append(tmp, static_cast<size_t>(n));
        break;
      case DataType::kInt64:
        n = snprintf(tmp, sizeof(tmp), "%" PRId64, d.int64_value());
        buffer_.append(tmp, static_cast<size_t>(n));
        break;
      case DataType::kFloat32:
        n = snprintf(tmp, sizeof(tmp), "%.9g",
                     static_cast<double>(d.float32_value()));
        buffer_.append(tmp, static_cast<size_t>(n));
        break;
      case DataType::kFloat64:
        n = snprintf(tmp, sizeof(tmp), "%.17g", d.float64_value());
        buffer_.append(tmp, static_cast<size_t>(n));
        break;
      case DataType::kBool:
        Put(d.bool_value() ? "true" : "false");
        break;
      case DataType::kString:
        PutEscaped(d.string_value());
        break;
    }
  }
  buffer_.append("}\n");
  ++rows_written_;
  if (buffer_.size() >= kFlushThreshold) {
    fwrite(buffer_.data(), 1, buffer_.size(), file_);
    buffer_.clear();
  }
  return Status::OK();
}

Status JsonlWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  if (!buffer_.empty()) {
    if (fwrite(buffer_.data(), 1, buffer_.size(), file_) != buffer_.size()) {
      fclose(file_);
      file_ = nullptr;
      return Status::IOError("short write to '" + path_ + "'");
    }
    buffer_.clear();
  }
  if (fclose(file_) != 0) {
    file_ = nullptr;
    return Status::IOError("close failed for '" + path_ + "'");
  }
  file_ = nullptr;
  return Status::OK();
}

}  // namespace raw
