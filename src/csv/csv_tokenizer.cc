#include "csv/csv_tokenizer.h"

#include <cstring>

namespace raw {

CsvRowCursor::CsvRowCursor(const char* begin, const char* end,
                           CsvOptions options)
    : begin_(begin), end_(end), pos_(begin), options_(options) {}

Status CsvRowCursor::NextRow(std::vector<FieldRef>* fields) {
  fields->clear();
  if (AtEnd()) return Status::Internal("NextRow called at EOF");
  const char* p = pos_;
  const char delim = options_.delimiter;
  while (true) {
    if (p != end_ && *p == options_.quote) {
      // Quoted field: scan to the closing quote ("" escapes a quote).
      const char* field_start = ++p;
      while (p != end_) {
        if (*p == options_.quote) {
          if (p + 1 != end_ && p[1] == options_.quote) {
            p += 2;
            continue;
          }
          break;
        }
        ++p;
      }
      if (p == end_) return Status::ParseError("unterminated quoted field");
      fields->push_back(
          FieldRef{field_start, static_cast<int32_t>(p - field_start)});
      ++p;  // closing quote
    } else {
      const char* field_start = p;
      while (p != end_ && *p != delim && *p != '\n' && *p != '\r') ++p;
      fields->push_back(
          FieldRef{field_start, static_cast<int32_t>(p - field_start)});
    }
    if (p == end_) {
      pos_ = p;
      return Status::OK();
    }
    if (*p == delim) {
      ++p;
      continue;
    }
    pos_ = SkipRowEnd(p, end_);
    return Status::OK();
  }
}

void CsvRowCursor::SkipRow() {
  const char* p = RowEnd(pos_, end_);
  pos_ = (p == end_) ? end_ : p + 1;
}

int64_t CountRows(const char* begin, const char* end,
                  const CsvOptions& options) {
  const char* p = begin + DataStartOffset(begin, end, options);
  int64_t rows = 0;
  while (p < end) {
    const char* nl = RowEnd(p, end);
    ++rows;
    if (nl == end) break;
    p = nl + 1;
    if (p == end) break;  // trailing newline: no extra row
  }
  return rows;
}

uint64_t DataStartOffset(const char* begin, const char* end,
                         const CsvOptions& options) {
  if (!options.has_header) return 0;
  const char* nl = RowEnd(begin, end);
  if (nl == end) return static_cast<uint64_t>(end - begin);
  return static_cast<uint64_t>(nl + 1 - begin);
}

}  // namespace raw
