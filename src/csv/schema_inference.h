#ifndef RAW_CSV_SCHEMA_INFERENCE_H_
#define RAW_CSV_SCHEMA_INFERENCE_H_

#include <string>

#include "common/schema.h"
#include "common/status.h"
#include "common/statusor.h"
#include "csv/csv_options.h"

namespace raw {

/// Infers a CSV file's schema by sampling its leading rows — letting the
/// engine adapt to files nobody described. Column names come from the header
/// row when `options.has_header`, otherwise they are col0..colN-1.
///
/// Types are the narrowest that fit every sampled value, promoted along
///   bool -> int32 -> int64 -> float64 -> string
/// (an empty field promotes straight to string: CSV has no other null
/// representation this engine understands).
StatusOr<Schema> InferCsvSchema(const std::string& path,
                                const CsvOptions& options = CsvOptions(),
                                int64_t sample_rows = 1000);

/// The promotion lattice used above, exposed for tests: the least common
/// type of two observed field types.
DataType PromoteTypes(DataType a, DataType b);

/// Classifies a single raw field into the narrowest lattice type.
DataType ClassifyField(const char* data, int32_t size);

}  // namespace raw

#endif  // RAW_CSV_SCHEMA_INFERENCE_H_
