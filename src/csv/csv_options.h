#ifndef RAW_CSV_CSV_OPTIONS_H_
#define RAW_CSV_CSV_OPTIONS_H_

namespace raw {

/// Dialect options for CSV files. RAW defaults to plain comma-separated
/// values with no header (the paper's microbenchmark files).
struct CsvOptions {
  char delimiter = ',';
  bool has_header = false;
  /// Quote character for string fields containing delimiters/newlines.
  char quote = '"';
};

}  // namespace raw

#endif  // RAW_CSV_CSV_OPTIONS_H_
