#ifndef RAW_CSV_CSV_TOKENIZER_H_
#define RAW_CSV_CSV_TOKENIZER_H_

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "common/kernels.h"
#include "common/status.h"
#include "common/statusor.h"
#include "csv/csv_options.h"

namespace raw {

/// A view into one CSV field inside the mapped raw file.
struct FieldRef {
  const char* data = nullptr;
  int32_t size = 0;

  std::string_view view() const {
    return std::string_view(data, static_cast<size_t>(size));
  }
};

/// Low-level field navigation primitives. These are the building blocks both
/// the interpreted (NoDB-style) scan and the JIT-generated scan use; the
/// difference is that generated code calls them in an unrolled, schema-aware
/// sequence with no per-field switch (§4.1).

/// Returns a pointer one past the end of the field starting at `p`
/// (i.e. at the delimiter / newline / `end`). Dispatches to the active
/// kernel tier: SWAR walks 8 bytes per iteration via the zero-byte trick,
/// SSE2/AVX2 compare 16/32 bytes at a time (see common/kernels.h).
inline const char* FieldEnd(const char* p, const char* end, char delim) {
  return ScanForEither(p, end, delim, '\n');
}

/// Returns a pointer to the first row terminator ('\n') at or after `p`, or
/// `end` — the newline search used by row skipping, row counting and morsel
/// boundary alignment; rides the same dispatched kernel core as FieldEnd.
inline const char* RowEnd(const char* p, const char* end) {
  return ScanFor(p, end, '\n');
}

/// Advances past the field *and* its trailing delimiter.
inline const char* SkipField(const char* p, const char* end, char delim) {
  p = FieldEnd(p, end, delim);
  if (p != end && *p == delim) ++p;
  return p;
}

/// Advances past the row terminator ('\n'; tolerates "\r\n").
inline const char* SkipRowEnd(const char* p, const char* end) {
  if (p != end && *p == '\r') ++p;
  if (p != end && *p == '\n') ++p;
  return p;
}

/// True when the buffer contains the quote character at all. Quote-free files
/// (the paper's numeric workloads) take the branch-light tokenization paths;
/// files with quotes route through the quote-aware variants below, so
/// inference, scans and positional jumps all agree on field boundaries.
inline bool BufferContainsQuote(const char* begin, const char* end,
                                char quote) {
  return std::memchr(begin, quote,
                     static_cast<size_t>(end - begin)) != nullptr;
}

/// Quote-aware single-field step: reads the field starting at `*pp` and
/// returns its *content* view — outer quotes stripped, `""` escapes left
/// in place, exactly like CsvRowCursor::NextRow — leaving `*pp` at the
/// delimiter / row terminator / `end`.
inline FieldRef NextFieldQuoted(const char** pp, const char* end, char delim,
                                char quote) {
  const char* p = *pp;
  if (p != end && *p == quote) {
    const char* start = ++p;
    while (p != end) {
      if (*p == quote) {
        if (p + 1 != end && p[1] == quote) {
          p += 2;
          continue;
        }
        break;
      }
      ++p;
    }
    FieldRef field{start, static_cast<int32_t>(p - start)};
    if (p != end) ++p;  // past the closing quote
    *pp = p;
    return field;
  }
  const char* start = p;
  while (p != end && *p != delim && *p != '\n' && *p != '\r') ++p;
  *pp = p;
  return FieldRef{start, static_cast<int32_t>(p - start)};
}

/// Quote-aware SkipField: advances past the field and its trailing delimiter.
inline const char* SkipFieldQuoted(const char* p, const char* end, char delim,
                                   char quote) {
  FieldRef ignored = NextFieldQuoted(&p, end, delim, quote);
  (void)ignored;
  if (p != end && *p == delim) ++p;
  return p;
}

/// Zero-allocation cursor over the rows of an in-memory CSV buffer.
///
/// Handles quoted fields (RFC-4180 style) on a slow path; the hot path for
/// the paper's numeric workloads never sees a quote.
class CsvRowCursor {
 public:
  CsvRowCursor(const char* begin, const char* end, CsvOptions options);

  /// True once all rows are consumed.
  bool AtEnd() const { return pos_ >= end_; }

  /// Byte offset of the row the cursor currently points at.
  uint64_t CurrentOffset() const {
    return static_cast<uint64_t>(pos_ - begin_);
  }

  /// Tokenizes the current row into `fields` (views into the buffer) and
  /// advances to the next row. `fields` is cleared first.
  Status NextRow(std::vector<FieldRef>* fields);

  /// Skips the current row without tokenizing (fast line scan).
  void SkipRow();

  /// Repositions the cursor at an absolute byte offset (positional-map jump).
  void SeekTo(uint64_t offset) { pos_ = begin_ + offset; }

  const char* position() const { return pos_; }
  const char* end() const { return end_; }

 private:
  const char* begin_;
  const char* end_;
  const char* pos_;
  CsvOptions options_;
};

/// Counts data rows in the buffer (excluding a header row when configured).
int64_t CountRows(const char* begin, const char* end, const CsvOptions& options);

/// Returns the offset of the first data row (skips the header when present).
uint64_t DataStartOffset(const char* begin, const char* end,
                         const CsvOptions& options);

}  // namespace raw

#endif  // RAW_CSV_CSV_TOKENIZER_H_
