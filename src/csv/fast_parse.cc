#include "csv/fast_parse.h"

#include <charconv>
#include <string>

namespace raw {

namespace {
inline bool IsDigit(char c) { return c >= '0' && c <= '9'; }

template <typename T>
StatusOr<T> ParseIntImpl(const char* data, int32_t size) {
  if (size <= 0) return Status::ParseError("empty integer field");
  const char* p = data;
  const char* end = data + size;
  bool negative = false;
  if (*p == '-' || *p == '+') {
    negative = (*p == '-');
    ++p;
    if (p == end) return Status::ParseError("sign-only integer field");
  }
  T value = 0;
  for (; p != end; ++p) {
    if (!IsDigit(*p)) {
      return Status::ParseError("bad integer field: " +
                                std::string(data, static_cast<size_t>(size)));
    }
    value = static_cast<T>(value * 10 + (*p - '0'));
  }
  return negative ? static_cast<T>(-value) : value;
}
}  // namespace

StatusOr<int32_t> ParseInt32(const char* data, int32_t size) {
  return ParseIntImpl<int32_t>(data, size);
}

StatusOr<int64_t> ParseInt64(const char* data, int32_t size) {
  return ParseIntImpl<int64_t>(data, size);
}

StatusOr<float> ParseFloat32(const char* data, int32_t size) {
  float v = 0;
  auto [p, ec] = std::from_chars(data, data + size, v);
  if (ec != std::errc() || p != data + size) {
    return Status::ParseError("bad float field: " +
                              std::string(data, static_cast<size_t>(size)));
  }
  return v;
}

StatusOr<double> ParseFloat64(const char* data, int32_t size) {
  double v = 0;
  auto [p, ec] = std::from_chars(data, data + size, v);
  if (ec != std::errc() || p != data + size) {
    return Status::ParseError("bad double field: " +
                              std::string(data, static_cast<size_t>(size)));
  }
  return v;
}

StatusOr<bool> ParseBool(const char* data, int32_t size) {
  std::string_view s(data, static_cast<size_t>(size));
  if (s == "1" || s == "true" || s == "t") return true;
  if (s == "0" || s == "false" || s == "f") return false;
  return Status::ParseError("bad bool field: " + std::string(s));
}

int32_t ParseInt32Unchecked(const char* data, int32_t size) {
  const char* p = data;
  bool negative = (*p == '-');
  if (negative) ++p;
  int32_t value = 0;
  for (const char* end = data + size; p != end; ++p) {
    value = value * 10 + (*p - '0');
  }
  return negative ? -value : value;
}

int64_t ParseInt64Unchecked(const char* data, int32_t size) {
  const char* p = data;
  bool negative = (*p == '-');
  if (negative) ++p;
  int64_t value = 0;
  for (const char* end = data + size; p != end; ++p) {
    value = value * 10 + (*p - '0');
  }
  return negative ? -value : value;
}

double ParseFloat64Unchecked(const char* data, int32_t size) {
  double v = 0;
  std::from_chars(data, data + size, v);
  return v;
}

}  // namespace raw
