#include "csv/schema_inference.h"

#include <charconv>

#include "common/macros.h"
#include "common/mmap_file.h"
#include "csv/csv_tokenizer.h"

namespace raw {

namespace {

int LatticeRank(DataType type) {
  switch (type) {
    case DataType::kBool:
      return 0;
    case DataType::kInt32:
      return 1;
    case DataType::kInt64:
      return 2;
    case DataType::kFloat64:
      return 3;
    default:
      return 4;  // string (and anything else) tops the lattice
  }
}

}  // namespace

DataType PromoteTypes(DataType a, DataType b) {
  if (a == b) return a;
  // bool ("true"/"false") does not parse as a number: mixing it with any
  // numeric type can only be represented as string.
  if ((a == DataType::kBool && IsNumeric(b)) ||
      (b == DataType::kBool && IsNumeric(a))) {
    return DataType::kString;
  }
  static constexpr DataType kByRank[] = {DataType::kBool, DataType::kInt32,
                                         DataType::kInt64, DataType::kFloat64,
                                         DataType::kString};
  return kByRank[std::max(LatticeRank(a), LatticeRank(b))];
}

DataType ClassifyField(const char* data, int32_t size) {
  if (size == 0) return DataType::kString;  // empty: no narrower encoding
  std::string_view s(data, static_cast<size_t>(size));
  if (s == "0" || s == "1" || s == "true" || s == "false") {
    // 0/1 stay integers (bool is rarely what a numeric column means);
    // only the words classify as bool.
    if (s == "true" || s == "false") return DataType::kBool;
  }
  // Integer?
  {
    int64_t v = 0;
    auto [p, ec] = std::from_chars(data, data + size, v);
    if (ec == std::errc() && p == data + size) {
      return (v >= INT32_MIN && v <= INT32_MAX) ? DataType::kInt32
                                                : DataType::kInt64;
    }
  }
  // Float?
  {
    double v = 0;
    auto [p, ec] = std::from_chars(data, data + size, v);
    if (ec == std::errc() && p == data + size) return DataType::kFloat64;
  }
  return DataType::kString;
}

StatusOr<Schema> InferCsvSchema(const std::string& path,
                                const CsvOptions& options,
                                int64_t sample_rows) {
  RAW_ASSIGN_OR_RETURN(std::unique_ptr<MmapFile> file, MmapFile::Open(path));
  const char* begin = file->data();
  const char* end = begin + file->size();

  std::vector<std::string> names;
  CsvRowCursor cursor(begin, end, options);
  std::vector<FieldRef> fields;
  if (options.has_header) {
    if (cursor.AtEnd()) return Status::ParseError("empty CSV file: " + path);
    RAW_RETURN_NOT_OK(cursor.NextRow(&fields));
    for (const FieldRef& f : fields) names.emplace_back(f.view());
  }

  std::vector<DataType> types;
  int64_t sampled = 0;
  bool first_row = true;
  while (!cursor.AtEnd() && sampled < sample_rows) {
    RAW_RETURN_NOT_OK(cursor.NextRow(&fields));
    if (first_row) {
      first_row = false;
      types.resize(fields.size());
      for (size_t c = 0; c < fields.size(); ++c) {
        types[c] = ClassifyField(fields[c].data, fields[c].size);
      }
      if (names.empty()) {
        for (size_t c = 0; c < fields.size(); ++c) {
          names.push_back("col" + std::to_string(c));
        }
      }
      ++sampled;
      continue;
    }
    if (fields.size() != types.size()) {
      return Status::ParseError(
          "row " + std::to_string(sampled) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(types.size()) + " (" + path + ")");
    }
    for (size_t c = 0; c < fields.size(); ++c) {
      types[c] = PromoteTypes(types[c],
                              ClassifyField(fields[c].data, fields[c].size));
    }
    ++sampled;
  }
  if (types.empty()) {
    return Status::ParseError("CSV file has no data rows: " + path);
  }
  if (names.size() != types.size()) {
    return Status::ParseError("header width differs from data width: " + path);
  }
  Schema schema;
  for (size_t c = 0; c < types.size(); ++c) {
    schema.AddField(names[c], types[c]);
  }
  RAW_RETURN_NOT_OK(schema.Validate());
  return schema;
}

}  // namespace raw
