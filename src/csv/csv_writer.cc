#include "csv/csv_writer.h"

#include <cinttypes>

namespace raw {

namespace {
constexpr size_t kFlushThreshold = 1 << 20;  // 1 MiB write buffer
}

CsvWriter::CsvWriter(std::string path, CsvOptions options)
    : path_(std::move(path)), options_(options) {}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) {
    // Best effort; callers that care about errors call Close().
    if (!buffer_.empty()) fwrite(buffer_.data(), 1, buffer_.size(), file_);
    fclose(file_);
  }
}

Status CsvWriter::Open(const Schema* header_schema) {
  file_ = fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IOError("cannot create CSV file '" + path_ + "'");
  }
  buffer_.reserve(kFlushThreshold + (1 << 16));
  if (options_.has_header) {
    if (header_schema == nullptr) {
      return Status::InvalidArgument(
          "has_header set but no header schema provided");
    }
    for (int i = 0; i < header_schema->num_fields(); ++i) {
      if (i > 0) buffer_.push_back(options_.delimiter);
      buffer_ += header_schema->field(i).name;
    }
    buffer_.push_back('\n');
  }
  return Status::OK();
}

void CsvWriter::MaybeDelimit() {
  if (row_started_) {
    buffer_.push_back(options_.delimiter);
  } else {
    row_started_ = true;
  }
}

void CsvWriter::Put(std::string_view s) { buffer_.append(s); }

void CsvWriter::AppendInt32(int32_t v) {
  MaybeDelimit();
  char tmp[16];
  int n = snprintf(tmp, sizeof(tmp), "%d", v);
  buffer_.append(tmp, static_cast<size_t>(n));
}

void CsvWriter::AppendInt64(int64_t v) {
  MaybeDelimit();
  char tmp[24];
  int n = snprintf(tmp, sizeof(tmp), "%" PRId64, v);
  buffer_.append(tmp, static_cast<size_t>(n));
}

void CsvWriter::AppendFloat64(double v) {
  MaybeDelimit();
  char tmp[32];
  int n = snprintf(tmp, sizeof(tmp), "%.17g", v);
  buffer_.append(tmp, static_cast<size_t>(n));
}

void CsvWriter::AppendString(std::string_view v) {
  MaybeDelimit();
  bool needs_quote =
      v.find(options_.delimiter) != std::string_view::npos ||
      v.find('\n') != std::string_view::npos ||
      v.find(options_.quote) != std::string_view::npos;
  if (!needs_quote) {
    Put(v);
    return;
  }
  buffer_.push_back(options_.quote);
  for (char c : v) {
    if (c == options_.quote) buffer_.push_back(options_.quote);
    buffer_.push_back(c);
  }
  buffer_.push_back(options_.quote);
}

void CsvWriter::EndRow() {
  buffer_.push_back('\n');
  row_started_ = false;
  ++rows_written_;
  if (buffer_.size() >= kFlushThreshold) {
    fwrite(buffer_.data(), 1, buffer_.size(), file_);
    buffer_.clear();
  }
}

Status CsvWriter::AppendRow(const std::vector<std::string>& fields) {
  for (const std::string& f : fields) AppendString(f);
  EndRow();
  return Status::OK();
}

Status CsvWriter::AppendDatumRow(const std::vector<Datum>& values) {
  for (const Datum& d : values) {
    switch (d.type()) {
      case DataType::kInt32:
        AppendInt32(d.int32_value());
        break;
      case DataType::kInt64:
        AppendInt64(d.int64_value());
        break;
      case DataType::kFloat32:
        AppendFloat64(static_cast<double>(d.float32_value()));
        break;
      case DataType::kFloat64:
        AppendFloat64(d.float64_value());
        break;
      case DataType::kBool:
        AppendString(d.bool_value() ? "1" : "0");
        break;
      case DataType::kString:
        AppendString(d.string_value());
        break;
    }
  }
  EndRow();
  return Status::OK();
}

Status CsvWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  if (!buffer_.empty()) {
    if (fwrite(buffer_.data(), 1, buffer_.size(), file_) != buffer_.size()) {
      fclose(file_);
      file_ = nullptr;
      return Status::IOError("short write to '" + path_ + "'");
    }
    buffer_.clear();
  }
  if (fclose(file_) != 0) {
    file_ = nullptr;
    return Status::IOError("close failed for '" + path_ + "'");
  }
  file_ = nullptr;
  return Status::OK();
}

}  // namespace raw
