#ifndef RAW_CSV_POSITIONAL_MAP_H_
#define RAW_CSV_POSITIONAL_MAP_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

namespace raw {

/// Positional map (§2.3): an index over the *structure* of a textual raw
/// file. For each row it stores the byte offsets of a configurable subset of
/// columns, so later queries can jump (or almost jump) to a field instead of
/// re-tokenizing from the start of the row.
///
/// Tracking policy trade-off (studied in bench_ablation_pmap_stride and, in
/// the paper, via the "Column 7" variants): tracking more columns costs more
/// memory and more bookkeeping during the building scan but shortens the
/// incremental parse distance for future queries.
class PositionalMap {
 public:
  /// Tracks columns {0, stride, 2*stride, ...} of a `num_columns`-wide file.
  /// The paper's heuristics "every 10 columns" / "every 7 columns" map to
  /// stride 10 / 7 (columns are 0-based here; the paper counts from 1).
  static PositionalMap WithStride(int num_columns, int stride);

  /// Tracks an explicit, sorted set of columns.
  static PositionalMap TrackingColumns(int num_columns,
                                       std::vector<int> columns);

  int num_columns() const { return num_columns_; }
  int num_tracked() const { return static_cast<int>(tracked_.size()); }
  const std::vector<int>& tracked_columns() const { return tracked_; }
  int64_t num_rows() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// True when `column` is tracked exactly.
  bool Tracks(int column) const { return SlotFor(column) >= 0; }

  /// Slot index of `column` among the tracked columns, or -1.
  int SlotFor(int column) const;

  /// Largest tracked column <= `column`, or -1 when none (parse from row
  /// start). This is the "navigate to a nearby position, then incrementally
  /// parse" entry point (§2.3).
  int NearestTrackedAtOrBefore(int column) const;

  /// Appends the tracked positions of one row. `positions[s]` is the byte
  /// offset of tracked column s; `row_start` is the offset of column 0.
  void AppendRow(uint64_t row_start, const uint64_t* positions);

  /// Appends all rows of `other` (a per-morsel partial map built over a later
  /// slice of the same file). Both maps must track the same columns.
  Status AppendFrom(const PositionalMap& other);

  /// Byte offset of row `row`'s column 0.
  uint64_t RowStart(int64_t row) const {
    return row_starts_[static_cast<size_t>(row)];
  }

  /// Byte offset of tracked slot `slot` in `row`.
  uint64_t Position(int64_t row, int slot) const {
    return positions_[static_cast<size_t>(row) *
                          static_cast<size_t>(tracked_.size()) +
                      static_cast<size_t>(slot)];
  }

  /// Memory footprint in bytes.
  int64_t MemoryBytes() const;

  void Reserve(int64_t rows);

  /// Validates internal consistency (row-major layout fully populated).
  Status CheckConsistency() const;

 private:
  PositionalMap(int num_columns, std::vector<int> tracked)
      : num_columns_(num_columns), tracked_(std::move(tracked)) {}

  int num_columns_;
  std::vector<int> tracked_;        // sorted tracked column indices
  std::vector<uint64_t> row_starts_;
  std::vector<uint64_t> positions_;  // row-major [row][slot]
  int64_t num_rows_ = 0;
};

}  // namespace raw

#endif  // RAW_CSV_POSITIONAL_MAP_H_
