#ifndef RAW_CSV_FAST_PARSE_H_
#define RAW_CSV_FAST_PARSE_H_

#include <cstdint>

#include "common/status.h"
#include "common/statusor.h"

namespace raw {

/// Length-aware numeric parsers — the "custom version of atoi" the paper
/// uses once the positional map knows field extents (§4.2). They avoid the
/// locale machinery and per-character bound checks of the libc converters.
/// All parsers accept an optional leading '-' and reject garbage.

StatusOr<int32_t> ParseInt32(const char* data, int32_t size);
StatusOr<int64_t> ParseInt64(const char* data, int32_t size);
StatusOr<float> ParseFloat32(const char* data, int32_t size);
StatusOr<double> ParseFloat64(const char* data, int32_t size);
StatusOr<bool> ParseBool(const char* data, int32_t size);

/// Unchecked variants for the hot scan loops: no validation, the caller
/// guarantees a well-formed field (generated code does; see jit/).
int32_t ParseInt32Unchecked(const char* data, int32_t size);
int64_t ParseInt64Unchecked(const char* data, int32_t size);
double ParseFloat64Unchecked(const char* data, int32_t size);

}  // namespace raw

#endif  // RAW_CSV_FAST_PARSE_H_
