#include "csv/positional_map.h"

#include <algorithm>

namespace raw {

PositionalMap PositionalMap::WithStride(int num_columns, int stride) {
  std::vector<int> tracked;
  if (stride < 1) stride = 1;
  for (int c = 0; c < num_columns; c += stride) tracked.push_back(c);
  return PositionalMap(num_columns, std::move(tracked));
}

PositionalMap PositionalMap::TrackingColumns(int num_columns,
                                             std::vector<int> columns) {
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());
  return PositionalMap(num_columns, std::move(columns));
}

int PositionalMap::SlotFor(int column) const {
  auto it = std::lower_bound(tracked_.begin(), tracked_.end(), column);
  if (it == tracked_.end() || *it != column) return -1;
  return static_cast<int>(it - tracked_.begin());
}

int PositionalMap::NearestTrackedAtOrBefore(int column) const {
  auto it = std::upper_bound(tracked_.begin(), tracked_.end(), column);
  if (it == tracked_.begin()) return -1;
  return static_cast<int>(it - tracked_.begin()) - 1;
}

void PositionalMap::AppendRow(uint64_t row_start, const uint64_t* positions) {
  row_starts_.push_back(row_start);
  positions_.insert(positions_.end(), positions, positions + tracked_.size());
  ++num_rows_;
}

Status PositionalMap::AppendFrom(const PositionalMap& other) {
  if (other.num_columns_ != num_columns_ || other.tracked_ != tracked_) {
    return Status::InvalidArgument(
        "cannot append positional map with different tracking configuration");
  }
  row_starts_.insert(row_starts_.end(), other.row_starts_.begin(),
                     other.row_starts_.end());
  positions_.insert(positions_.end(), other.positions_.begin(),
                    other.positions_.end());
  num_rows_ += other.num_rows_;
  return Status::OK();
}

int64_t PositionalMap::MemoryBytes() const {
  return static_cast<int64_t>((row_starts_.size() + positions_.size()) *
                              sizeof(uint64_t));
}

void PositionalMap::Reserve(int64_t rows) {
  row_starts_.reserve(static_cast<size_t>(rows));
  positions_.reserve(static_cast<size_t>(rows) * tracked_.size());
}

Status PositionalMap::CheckConsistency() const {
  if (row_starts_.size() != static_cast<size_t>(num_rows_)) {
    return Status::Internal("positional map row_starts size mismatch");
  }
  if (positions_.size() != static_cast<size_t>(num_rows_) * tracked_.size()) {
    return Status::Internal("positional map positions size mismatch");
  }
  for (size_t i = 1; i < tracked_.size(); ++i) {
    if (tracked_[i] <= tracked_[i - 1]) {
      return Status::Internal("positional map tracked columns not sorted");
    }
  }
  return Status::OK();
}

}  // namespace raw
