#ifndef RAW_CSV_CSV_WRITER_H_
#define RAW_CSV_CSV_WRITER_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/datum.h"
#include "common/macros.h"
#include "common/schema.h"
#include "common/status.h"
#include "csv/csv_options.h"

namespace raw {

/// Buffered CSV file writer used by the workload generators and tests.
class CsvWriter {
 public:
  CsvWriter(std::string path, CsvOptions options = CsvOptions());
  ~CsvWriter();
  RAW_DISALLOW_COPY_AND_ASSIGN(CsvWriter);

  /// Opens the file (truncating) and writes the header when configured.
  Status Open(const Schema* header_schema = nullptr);

  /// Appends one row of raw (pre-formatted) fields.
  Status AppendRow(const std::vector<std::string>& fields);

  /// Appends one row of typed values formatted canonically.
  Status AppendDatumRow(const std::vector<Datum>& values);

  // Typed streaming interface (fastest path for the generators):
  // call Append* for each field in order, then EndRow().
  void AppendInt32(int32_t v);
  void AppendInt64(int64_t v);
  void AppendFloat64(double v);
  void AppendString(std::string_view v);
  void EndRow();

  /// Flushes and closes. Returns any deferred I/O error.
  Status Close();

  int64_t rows_written() const { return rows_written_; }

 private:
  void MaybeDelimit();
  void Put(std::string_view s);

  std::string path_;
  CsvOptions options_;
  FILE* file_ = nullptr;
  bool row_started_ = false;
  int64_t rows_written_ = 0;
  std::string buffer_;
};

}  // namespace raw

#endif  // RAW_CSV_CSV_WRITER_H_
