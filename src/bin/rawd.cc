// rawd: the RAW engine behind a TCP front end.
//
//   rawd [--port N] [--csv NAME=PATH]... [--demo[=ROWS]]
//        [--interactive-concurrent N] [--batch-concurrent N]
//        [--max-queued N] [--workers N]
//        [--autotune=0|1] [--result-cache-mb N]
//        [--malformed-rows=fail|skip|null-fill]
//
// Registered files are queried in place per the RAW in-situ model; --demo
// generates and registers a small synthetic CSV table named `demo`
// (id INT32, grp STRING, value FLOAT64) so the daemon is testable without
// any data files. SIGTERM/SIGINT trigger a graceful drain: stop accepting,
// finish in-flight queries, flush responses, exit 0.

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/scan_health.h"
#include "common/temp_dir.h"
#include "csv/csv_writer.h"
#include "engine/raw_engine.h"
#include "serve/server.h"

namespace {

int Usage(const char* argv0) {
  fprintf(stderr,
          "usage: %s [--port N] [--csv NAME=PATH]... [--demo[=ROWS]]\n"
          "          [--interactive-concurrent N] [--batch-concurrent N]\n"
          "          [--max-queued N] [--workers N]\n"
          "          [--autotune=0|1] [--result-cache-mb N]\n"
          "          [--malformed-rows=fail|skip|null-fill]\n",
          argv0);
  return 2;
}

bool ParseIntFlag(const char* arg, const char* name, int* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  auto v = raw::ParseInt64Strict(arg + len + 1, 1, 1 << 20);
  if (!v.has_value()) {
    fprintf(stderr, "rawd: bad value for %s\n", name);
    exit(2);
  }
  *out = static_cast<int>(*v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  raw::serve::ServerOptions options;
  options.port = 4300;
  int64_t demo_rows = 0;
  // Serving daemons default to the full self-tuning tier: the background
  // materializer warms hot tables during idle gaps and the result cache
  // short-circuits repeated queries. RAW_AUTOTUNE / RAW_RESULT_CACHE_BYTES
  // still win over these flags (applied inside the engine constructor).
  int autotune = 1;
  int result_cache_mb = 64;
  raw::MalformedRowPolicy malformed_rows = raw::MalformedRowPolicy::kFail;
  std::vector<std::pair<std::string, std::string>> csvs;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (ParseIntFlag(arg, "--port", &options.port)) continue;
    if (std::strncmp(arg, "--autotune=", 11) == 0) {
      auto v = raw::ParseInt64Strict(arg + 11, 0, 1);
      if (!v.has_value()) return Usage(argv[0]);
      autotune = static_cast<int>(*v);
      continue;
    }
    if (std::strncmp(arg, "--result-cache-mb=", 18) == 0) {
      auto v = raw::ParseInt64Strict(arg + 18, 0, 1 << 20);
      if (!v.has_value()) return Usage(argv[0]);
      result_cache_mb = static_cast<int>(*v);
      continue;
    }
    if (std::strncmp(arg, "--malformed-rows=", 17) == 0) {
      auto p = raw::ParseMalformedRowPolicy(arg + 17);
      if (!p.has_value()) return Usage(argv[0]);
      malformed_rows = *p;
      continue;
    }
    if (ParseIntFlag(arg, "--interactive-concurrent",
                     &options.admission.interactive.max_concurrent)) {
      continue;
    }
    if (ParseIntFlag(arg, "--batch-concurrent",
                     &options.admission.batch.max_concurrent)) {
      continue;
    }
    if (ParseIntFlag(arg, "--max-queued",
                     &options.admission.max_total_queued)) {
      continue;
    }
    if (ParseIntFlag(arg, "--workers", &options.admission.num_workers)) {
      continue;
    }
    if (std::strcmp(arg, "--demo") == 0) {
      demo_rows = 10000;
      continue;
    }
    if (std::strncmp(arg, "--demo=", 7) == 0) {
      auto v = raw::ParseInt64Strict(arg + 7, 1, int64_t{1} << 40);
      if (!v.has_value()) return Usage(argv[0]);
      demo_rows = *v;
      continue;
    }
    if (std::strncmp(arg, "--csv", 5) == 0 && arg[5] == '=') {
      const char* spec = arg + 6;
      const char* eq = std::strchr(spec, '=');
      if (eq == nullptr) return Usage(argv[0]);
      csvs.emplace_back(std::string(spec, eq), std::string(eq + 1));
      continue;
    }
    return Usage(argv[0]);
  }

  raw::RawEngineOptions engine_options;
  engine_options.autotune.enabled = autotune != 0;
  engine_options.result_cache_bytes =
      static_cast<int64_t>(result_cache_mb) << 20;
  engine_options.planner.malformed_row_policy = malformed_rows;
  raw::RawEngine engine(engine_options);

  std::optional<raw::TempDir> demo_dir;
  if (demo_rows > 0) {
    auto dir = raw::TempDir::Create("rawd_demo_");
    if (!dir.ok()) {
      fprintf(stderr, "rawd: %s\n", dir.status().ToString().c_str());
      return 1;
    }
    demo_dir.emplace(std::move(*dir));
    const std::string path = demo_dir->FilePath("demo.csv");
    raw::CsvWriter writer(path);
    if (!writer.Open().ok()) {
      fprintf(stderr, "rawd: cannot write demo data\n");
      return 1;
    }
    static const char* kGroups[] = {"alpha", "beta", "gamma", "delta"};
    for (int64_t i = 0; i < demo_rows; ++i) {
      writer.AppendInt32(static_cast<int32_t>(i));
      writer.AppendString(kGroups[i % 4]);
      writer.AppendFloat64(static_cast<double>(i % 997) * 0.5);
      writer.EndRow();
    }
    if (!writer.Close().ok()) {
      fprintf(stderr, "rawd: cannot write demo data\n");
      return 1;
    }
    raw::Schema schema{{"id", raw::DataType::kInt32},
                       {"grp", raw::DataType::kString},
                       {"value", raw::DataType::kFloat64}};
    if (auto st = engine.RegisterCsv("demo", path, schema); !st.ok()) {
      fprintf(stderr, "rawd: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  for (const auto& [name, path] : csvs) {
    if (auto st = engine.RegisterCsvInferred(name, path); !st.ok()) {
      fprintf(stderr, "rawd: register %s: %s\n", name.c_str(),
              st.ToString().c_str());
      return 1;
    }
  }

  // Block SIGTERM/SIGINT before starting any threads so every thread
  // inherits the mask and sigwait below is the only consumer.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  raw::serve::RawServer server(&engine, options);
  if (auto st = server.Start(); !st.ok()) {
    fprintf(stderr, "rawd: %s\n", st.ToString().c_str());
    return 1;
  }
  printf("rawd: listening on 127.0.0.1:%d\n", server.port());
  fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);
  printf("rawd: signal %d, draining\n", sig);
  fflush(stdout);

  server.Shutdown();
  const raw::EngineStats stats = engine.Stats();
  printf("rawd: drained; executed=%lld shed=%lld deadline_expired=%lld\n",
         static_cast<long long>(stats.admission.executed),
         static_cast<long long>(stats.admission.shed),
         static_cast<long long>(stats.admission.deadline_expired));
  printf("rawd: autotune passes=%lld completed=%lld preempted=%lld "
         "result_cache hits=%lld misses=%lld\n",
         static_cast<long long>(stats.materializer.passes),
         static_cast<long long>(stats.materializer.actions_completed),
         static_cast<long long>(stats.materializer.actions_preempted),
         static_cast<long long>(stats.result_cache.hits),
         static_cast<long long>(stats.result_cache.misses));
  return 0;
}
