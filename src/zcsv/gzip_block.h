#ifndef RAW_ZCSV_GZIP_BLOCK_H_
#define RAW_ZCSV_GZIP_BLOCK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "format/format_driver.h"

namespace raw {

/// One gzip member of a multi-member .csv.gz file, cut on a row boundary.
/// A compressed-CSV file is a plain concatenation of members (valid gzip);
/// each member decompresses independently, which is what makes warm scans
/// morsel-parallel: a morsel is a contiguous range of blocks.
struct GzipBlock {
  uint64_t comp_offset = 0;  // byte offset of the member in the file
  uint64_t comp_size = 0;    // compressed size of the member
  uint64_t uncomp_size = 0;  // decompressed size
  int64_t first_row = 0;     // global row id of the member's first row
  int64_t num_rows = 0;      // data rows in the member
};

/// The compressed-CSV block-offset index: the format's adaptive state,
/// built as a side effect of the first (cold) scan and published through the
/// generic FormatAdaptiveState claim/publish protocol — the gzip analogue of
/// a positional map, at member rather than field granularity.
class GzipBlockIndex final : public FormatAdaptiveState {
 public:
  void AppendBlock(const GzipBlock& block);

  int num_blocks() const { return static_cast<int>(blocks_.size()); }
  const GzipBlock& block(int i) const {
    return blocks_[static_cast<size_t>(i)];
  }
  int64_t total_rows() const { return total_rows_; }

  /// Any block's decompressed text contains the quote character: positional
  /// reads must use the quote-aware tokenizer.
  bool quoted() const { return quoted_; }
  void set_quoted(bool quoted) { quoted_ = quoted; }

  /// Index of the block containing global row `row`, or -1 if out of range.
  int FindBlockForRow(int64_t row) const;

  int64_t MemoryBytes() const override {
    return static_cast<int64_t>(blocks_.capacity() * sizeof(GzipBlock));
  }

  /// Blocks must tile the file: contiguous compressed offsets and row ids.
  Status CheckConsistency() const;

 private:
  std::vector<GzipBlock> blocks_;
  int64_t total_rows_ = 0;
  bool quoted_ = false;
};

/// Decompresses the single gzip member starting at `data` (`size` bytes
/// available, possibly spanning further members). Appends the decompressed
/// bytes to `*out` (not cleared) and sets `*consumed` to the member's
/// compressed size.
Status GunzipMember(const char* data, size_t size, std::string* out,
                    size_t* consumed);

/// Compresses `data` as one complete gzip member appended to `*out`.
Status GzipCompressMember(std::string_view data, std::string* out);

inline constexpr size_t kDefaultGzipBlockBytes = 256 * 1024;

/// Writes `csv_text` to `path` as a multi-member gzip file, cutting members
/// on row boundaries every ~`block_bytes` of uncompressed text. Test and
/// example helper — real files come from `gzip --rsyncable`-style tools or
/// log rotation, which produce the same member-per-chunk shape.
Status WriteCsvGzFile(const std::string& path, std::string_view csv_text,
                      size_t block_bytes = kDefaultGzipBlockBytes);

}  // namespace raw

#endif  // RAW_ZCSV_GZIP_BLOCK_H_
