#ifndef RAW_ZCSV_ZCSV_SCAN_H_
#define RAW_ZCSV_ZCSV_SCAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/mmap_file.h"
#include "csv/csv_options.h"
#include "format/format.h"
#include "scan/access_path.h"
#include "scan/insitu_csv_scan.h"
#include "scan/scan_profile.h"
#include "zcsv/gzip_block.h"

namespace raw {

/// Configuration of a scan over multi-member gzip-compressed CSV. One spec
/// describes either:
///  * a cold scan: serial, member-by-member streaming decompress of the
///    whole file, optionally building the block-offset index en route
///    (each member's entry is appended *before* its rows are emitted, so
///    late scans in the same pipeline can already navigate them), or
///  * a warm scan: decompress only an assigned contiguous range of blocks —
///    what makes warm compressed scans morsel-parallel.
struct ZcsvScanSpec {
  Schema file_schema;        // decompressed-CSV schema
  std::vector<int> outputs;  // columns to materialize, ascending
  CsvOptions options;
  int64_t batch_rows = kDefaultBatchRows;

  /// Warm mode: contiguous *block ordinal* range (unit kRows over block
  /// indices, default all blocks). Cold mode: must be whole (serial).
  ScanRange range;

  /// Warm mode: decompress per assigned block through this index (null =>
  /// cold mode). Row ids come out file-global (block.first_row + local).
  const GzipBlockIndex* index = nullptr;

  /// Cold mode: append one entry per decompressed member (may be null).
  GzipBlockIndex* build_index = nullptr;

  /// Inherited by the inner per-block CSV scan (see CsvScanSpec::policy).
  MalformedRowPolicy policy = MalformedRowPolicy::kFail;
  /// Per-query robustness counters (may be null); shared across morsels.
  ScanHealth* health = nullptr;

  ScanProfile* profile = nullptr;  // optional instrumentation
};

/// Compressed-CSV scan operator: decompresses one gzip member at a time into
/// a reused buffer and drains an inner in-situ CSV scan over it, rebasing
/// the inner scan's buffer-local row ids to file-global ids.
class ZcsvScanOperator : public Operator {
 public:
  /// `file` must outlive the operator.
  ZcsvScanOperator(const MmapFile* file, ZcsvScanSpec spec);

  const Schema& output_schema() const override { return output_schema_; }
  Status Open() override;
  StatusOr<ColumnBatch> Next() override;
  std::string name() const override { return "ZcsvScan"; }

 private:
  /// Decompresses the next member and opens an inner CSV scan over it.
  /// Sets `*done` when no members remain in the assigned range.
  Status AdvanceBlock(bool* done);

  const MmapFile* file_;
  ZcsvScanSpec spec_;
  Schema output_schema_;
  // Cold cursor state.
  size_t comp_cursor_ = 0;    // next member's compressed offset
  int64_t rows_seen_ = 0;     // global row counter across members
  int block_ordinal_ = 0;     // member index (block 0 owns the header)
  // Warm cursor state.
  int block_cursor_ = 0;      // next block ordinal in the assigned range
  int block_end_ = 0;
  // Current block.
  int64_t row_base_ = 0;      // global row id of the block's first row
  std::string buffer_;        // decompressed member text
  std::unique_ptr<InsituCsvScanOperator> inner_;
  std::vector<int64_t> rebase_scratch_;
};

/// RowFetcher for compressed-CSV late scans: rows are grouped by block
/// through the index; each needed block is decompressed into call-local
/// scratch (re-entrant, so the parallel fetch decorator can chunk row sets
/// across threads), line starts are rebuilt, and the needed fields are
/// tokenized per row.
class ZcsvRowFetcher : public RowFetcher {
 public:
  /// `file` and `index` must outlive the fetcher. `outputs` ascending.
  ZcsvRowFetcher(const MmapFile* file, const GzipBlockIndex* index,
                 Schema file_schema, std::vector<int> outputs,
                 CsvOptions options);

  /// Overrides the published field schema (e.g. qualified names).
  void set_fields(Schema fields) { schema_ = std::move(fields); }

  const Schema& fields() const override { return schema_; }
  StatusOr<std::vector<ColumnPtr>> Fetch(const RowSet& rows) override;

 private:
  const MmapFile* file_;
  const GzipBlockIndex* index_;
  Schema file_schema_;
  std::vector<int> outputs_;
  CsvOptions options_;
  Schema schema_;
};

}  // namespace raw

#endif  // RAW_ZCSV_ZCSV_SCAN_H_
