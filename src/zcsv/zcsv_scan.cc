#include "zcsv/zcsv_scan.h"

#include <algorithm>
#include <utility>

#include "csv/csv_tokenizer.h"
#include "csv/fast_parse.h"

namespace raw {
namespace {

/// CountRows twin that respects quoted newlines (CountRows counts raw '\n'
/// terminators, which overcounts when quoted fields embed newlines).
int64_t CountBlockRows(const char* begin, const char* end,
                       const CsvOptions& options, bool quoted) {
  if (!quoted) return CountRows(begin, end, options);
  const char* p = begin + DataStartOffset(begin, end, options);
  int64_t rows = 0;
  bool in_quotes = false;
  bool pending = false;
  for (; p < end; ++p) {
    const char c = *p;
    if (c == options.quote) {
      in_quotes = !in_quotes;
      pending = true;
    } else if (c == '\n' && !in_quotes) {
      ++rows;
      pending = false;
    } else if (c != '\r') {
      pending = true;
    }
  }
  if (pending) ++rows;  // last row without a trailing newline
  return rows;
}

/// Data-row start offsets within a decompressed block.
void BuildLineStarts(const std::string& buf, const CsvOptions& options,
                     bool quoted, std::vector<size_t>* starts) {
  starts->clear();
  const char* begin = buf.data();
  const char* end = begin + buf.size();
  const char* p = begin + DataStartOffset(begin, end, options);
  if (!quoted) {
    while (p < end) {
      starts->push_back(static_cast<size_t>(p - begin));
      const char* nl = RowEnd(p, end);
      p = (nl == end) ? end : nl + 1;
    }
    return;
  }
  while (p < end) {
    starts->push_back(static_cast<size_t>(p - begin));
    bool in_quotes = false;
    while (p < end) {
      const char c = *p++;
      if (c == options.quote) {
        in_quotes = !in_quotes;
      } else if (c == '\n' && !in_quotes) {
        break;
      }
    }
  }
}

Status AppendField(DataType type, const FieldRef& field, Column* col) {
  switch (type) {
    case DataType::kInt32: {
      RAW_ASSIGN_OR_RETURN(int32_t v, ParseInt32(field.data, field.size));
      col->Append<int32_t>(v);
      break;
    }
    case DataType::kInt64: {
      RAW_ASSIGN_OR_RETURN(int64_t v, ParseInt64(field.data, field.size));
      col->Append<int64_t>(v);
      break;
    }
    case DataType::kFloat32: {
      RAW_ASSIGN_OR_RETURN(float v, ParseFloat32(field.data, field.size));
      col->Append<float>(v);
      break;
    }
    case DataType::kFloat64: {
      RAW_ASSIGN_OR_RETURN(double v, ParseFloat64(field.data, field.size));
      col->Append<double>(v);
      break;
    }
    case DataType::kBool: {
      RAW_ASSIGN_OR_RETURN(bool v, ParseBool(field.data, field.size));
      col->Append<bool>(v);
      break;
    }
    case DataType::kString:
      col->AppendString(std::string(field.view()));
      break;
  }
  return Status::OK();
}

}  // namespace

ZcsvScanOperator::ZcsvScanOperator(const MmapFile* file, ZcsvScanSpec spec)
    : file_(file), spec_(std::move(spec)) {
  output_schema_ = SchemaForColumns(spec_.file_schema, spec_.outputs);
}

Status ZcsvScanOperator::Open() {
  comp_cursor_ = 0;
  rows_seen_ = 0;
  block_ordinal_ = 0;
  block_cursor_ = 0;
  block_end_ = 0;
  row_base_ = 0;
  inner_.reset();
  if (spec_.outputs.empty()) {
    return Status::InvalidArgument(
        "compressed-CSV scan needs at least one output");
  }
  if (spec_.index != nullptr) {
    // Warm mode: the range addresses block ordinals.
    block_end_ = spec_.index->num_blocks();
    if (!spec_.range.whole()) {
      if (spec_.range.unit != ScanRange::Unit::kRows) {
        return Status::InvalidArgument(
            "compressed-CSV block range must be row-unit block ordinals");
      }
      const int64_t range_end =
          spec_.range.bounded() ? spec_.range.end : block_end_;
      if (spec_.range.begin < 0 || range_end > block_end_ ||
          spec_.range.begin > range_end) {
        return Status::InvalidArgument(
            "compressed-CSV block range out of bounds");
      }
      block_cursor_ = static_cast<int>(spec_.range.begin);
      block_end_ = static_cast<int>(range_end);
    }
  } else if (!spec_.range.whole()) {
    // Members are discovered sequentially (a member's compressed size is
    // unknown until it is decompressed), so cold scans are whole-file.
    return Status::InvalidArgument(
        "cold compressed-CSV scans are serial (no block index yet)");
  }
  return Status::OK();
}

Status ZcsvScanOperator::AdvanceBlock(bool* done) {
  *done = false;
  const char* base = file_->data();
  const size_t file_size = file_->size();

  CsvOptions block_options = spec_.options;
  bool quoted = false;
  if (spec_.index != nullptr) {
    if (block_cursor_ >= block_end_) {
      *done = true;
      return Status::OK();
    }
    const GzipBlock& block = spec_.index->block(block_cursor_);
    if (block.comp_offset >= file_size ||
        block.comp_size > file_size - block.comp_offset) {
      // The published block index outlived the bytes it indexes.
      if (spec_.health != nullptr) {
        spec_.health->io_faults.fetch_add(1, std::memory_order_relaxed);
      }
      return Status::DataCorruption(
          "gzip block " + std::to_string(block_cursor_) + " spans bytes [" +
          std::to_string(block.comp_offset) + ", " +
          std::to_string(block.comp_offset + block.comp_size) +
          ") but the file holds only " + std::to_string(file_size) +
          " bytes (file truncated since the index was built?)");
    }
    buffer_.clear();
    size_t consumed = 0;
    Status gunzip = GunzipMember(base + block.comp_offset,
                                 file_size - block.comp_offset, &buffer_,
                                 &consumed);
    if (!gunzip.ok()) {
      if (spec_.health != nullptr) {
        spec_.health->io_faults.fetch_add(1, std::memory_order_relaxed);
      }
      return Status(gunzip.code(),
                    "gzip block " + std::to_string(block_cursor_) +
                        " at offset " + std::to_string(block.comp_offset) +
                        ": " + std::string(gunzip.message()));
    }
    block_options.has_header = spec_.options.has_header && block_cursor_ == 0;
    quoted = spec_.index->quoted();
    row_base_ = block.first_row;
    ++block_cursor_;
  } else {
    if (comp_cursor_ >= file_size) {
      *done = true;
      return Status::OK();
    }
    buffer_.clear();
    size_t consumed = 0;
    Status gunzip = GunzipMember(base + comp_cursor_, file_size - comp_cursor_,
                                 &buffer_, &consumed);
    if (!gunzip.ok()) {
      if (spec_.health != nullptr) {
        spec_.health->io_faults.fetch_add(1, std::memory_order_relaxed);
      }
      return Status(gunzip.code(),
                    "gzip member at offset " + std::to_string(comp_cursor_) +
                        ": " + std::string(gunzip.message()));
    }
    block_options.has_header = spec_.options.has_header && block_ordinal_ == 0;
    quoted = BufferContainsQuote(buffer_.data(),
                                 buffer_.data() + buffer_.size(),
                                 spec_.options.quote);
    const int64_t rows = CountBlockRows(
        buffer_.data(), buffer_.data() + buffer_.size(), block_options, quoted);
    if (spec_.build_index != nullptr) {
      // Append the entry *before* emitting the block's rows: a late scan in
      // the same pipeline can then navigate every row already produced.
      GzipBlock block;
      block.comp_offset = comp_cursor_;
      block.comp_size = consumed;
      block.uncomp_size = buffer_.size();
      block.first_row = rows_seen_;
      block.num_rows = rows;
      spec_.build_index->AppendBlock(block);
      if (quoted) spec_.build_index->set_quoted(true);
    }
    row_base_ = rows_seen_;
    rows_seen_ += rows;
    comp_cursor_ += consumed;
    ++block_ordinal_;
  }

  CsvScanSpec inner_spec;
  inner_spec.file_schema = spec_.file_schema;
  inner_spec.outputs = spec_.outputs;
  inner_spec.options = block_options;
  inner_spec.quoted = quoted;
  inner_spec.batch_rows = spec_.batch_rows;
  inner_spec.policy = spec_.policy;
  inner_spec.health = spec_.health;
  inner_spec.profile = spec_.profile;
  inner_ = std::make_unique<InsituCsvScanOperator>(
      buffer_.data(), buffer_.size(), std::move(inner_spec));
  return inner_->Open();
}

StatusOr<ColumnBatch> ZcsvScanOperator::Next() {
  while (true) {
    if (inner_ == nullptr) {
      bool done = false;
      RAW_RETURN_NOT_OK(AdvanceBlock(&done));
      if (done) return ColumnBatch::EndOfStream(output_schema_);
    }
    RAW_ASSIGN_OR_RETURN(ColumnBatch batch, inner_->Next());
    if (batch.end_of_stream()) {
      RAW_RETURN_NOT_OK(inner_->Close());
      inner_.reset();
      continue;
    }
    if (row_base_ != 0 && batch.has_row_ids()) {
      // Inner ids are buffer-local; rebase to file-global row ids.
      rebase_scratch_ = batch.row_ids();
      for (int64_t& id : rebase_scratch_) id += row_base_;
      batch.SetRowIds(rebase_scratch_);
    }
    return batch;
  }
}

ZcsvRowFetcher::ZcsvRowFetcher(const MmapFile* file,
                               const GzipBlockIndex* index, Schema file_schema,
                               std::vector<int> outputs, CsvOptions options)
    : file_(file),
      index_(index),
      file_schema_(std::move(file_schema)),
      outputs_(std::move(outputs)),
      options_(std::move(options)) {
  schema_ = SchemaForColumns(file_schema_, outputs_);
}

StatusOr<std::vector<ColumnPtr>> ZcsvRowFetcher::Fetch(const RowSet& rows) {
  std::vector<ColumnPtr> out;
  out.reserve(outputs_.size());
  std::vector<DataType> types;
  for (int c : outputs_) {
    types.push_back(file_schema_.field(c).type);
    out.push_back(std::make_shared<Column>(types.back()));
    out.back()->Reserve(static_cast<int64_t>(rows.size()));
  }
  if (rows.empty()) return out;

  const char delim = options_.delimiter;
  const char quote = options_.quote;
  const bool quoted = index_->quoted();

  // Call-local block cache: shreds arrive row-sorted, so consecutive ids
  // usually share a block and each needed block decompresses once.
  int cached_block = -1;
  std::string buffer;
  std::vector<size_t> line_starts;
  int64_t block_first_row = 0;

  for (size_t i = 0; i < rows.ids.size(); ++i) {
    const int64_t row_id = rows.ids[i];
    const int bi = index_->FindBlockForRow(row_id);
    if (bi < 0) {
      return Status::InvalidArgument(
          "compressed-CSV row id outside the block index");
    }
    if (bi != cached_block) {
      const GzipBlock& block = index_->block(bi);
      if (block.comp_offset >= file_->size() ||
          block.comp_size > file_->size() - block.comp_offset) {
        return Status::DataCorruption(
            "gzip block " + std::to_string(bi) + " spans bytes [" +
            std::to_string(block.comp_offset) + ", " +
            std::to_string(block.comp_offset + block.comp_size) +
            ") but the file holds only " + std::to_string(file_->size()) +
            " bytes (file truncated since the index was built?)");
      }
      buffer.clear();
      size_t consumed = 0;
      RAW_RETURN_NOT_OK(GunzipMember(file_->data() + block.comp_offset,
                                     file_->size() - block.comp_offset,
                                     &buffer, &consumed));
      CsvOptions block_options = options_;
      block_options.has_header = options_.has_header && bi == 0;
      BuildLineStarts(buffer, block_options, quoted, &line_starts);
      block_first_row = block.first_row;
      cached_block = bi;
    }
    const int64_t local = row_id - block_first_row;
    if (local < 0 || local >= static_cast<int64_t>(line_starts.size())) {
      return Status::Internal("gzip block index row count mismatch");
    }
    const char* p = buffer.data() + line_starts[static_cast<size_t>(local)];
    const char* end = buffer.data() + buffer.size();
    int col = 0;
    for (size_t j = 0; j < outputs_.size(); ++j) {
      const int target = outputs_[j];
      while (col < target) {
        p = quoted ? SkipFieldQuoted(p, end, delim, quote)
                   : SkipField(p, end, delim);
        ++col;
      }
      FieldRef field;
      const char* next = p;
      if (quoted) {
        field = NextFieldQuoted(&next, end, delim, quote);
      } else {
        const char* field_end = FieldEnd(p, end, delim);
        field = FieldRef{p, static_cast<int32_t>(field_end - p)};
        next = field_end;
      }
      RAW_RETURN_NOT_OK(AppendField(types[j], field, out[j].get()));
      if (j + 1 < outputs_.size()) {
        p = next;
        if (p < end && *p == delim) ++p;
        ++col;
      }
    }
  }
  return out;
}

}  // namespace raw
