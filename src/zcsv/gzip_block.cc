#include "zcsv/gzip_block.h"

#include <zlib.h>

#include <cstdio>
#include <cstring>

namespace raw {

void GzipBlockIndex::AppendBlock(const GzipBlock& block) {
  blocks_.push_back(block);
  total_rows_ += block.num_rows;
}

int GzipBlockIndex::FindBlockForRow(int64_t row) const {
  if (row < 0 || row >= total_rows_ || blocks_.empty()) return -1;
  // Binary search the last block with first_row <= row.
  int lo = 0;
  int hi = num_blocks() - 1;
  while (lo < hi) {
    const int mid = lo + (hi - lo + 1) / 2;
    if (blocks_[static_cast<size_t>(mid)].first_row <= row) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  const GzipBlock& b = blocks_[static_cast<size_t>(lo)];
  if (row < b.first_row || row >= b.first_row + b.num_rows) return -1;
  return lo;
}

Status GzipBlockIndex::CheckConsistency() const {
  uint64_t comp_cursor = 0;
  int64_t row_cursor = 0;
  for (const GzipBlock& b : blocks_) {
    if (b.comp_offset != comp_cursor) {
      return Status::Internal("gzip block index has a compressed-offset gap");
    }
    if (b.first_row != row_cursor) {
      return Status::Internal("gzip block index has a row-id gap");
    }
    if (b.comp_size == 0) {
      return Status::Internal("gzip block index has an empty member");
    }
    comp_cursor += b.comp_size;
    row_cursor += b.num_rows;
  }
  if (row_cursor != total_rows_) {
    return Status::Internal("gzip block index row total mismatch");
  }
  return Status::OK();
}

Status GunzipMember(const char* data, size_t size, std::string* out,
                    size_t* consumed) {
  if (size == 0) return Status::InvalidArgument("empty gzip member");
  z_stream zs;
  std::memset(&zs, 0, sizeof(zs));
  // 16 + MAX_WBITS: gzip wrapper (not raw deflate / zlib). inflate() stops
  // at the member's end marker, which is how we find the next member of a
  // multi-member file.
  if (inflateInit2(&zs, 16 + MAX_WBITS) != Z_OK) {
    return Status::Internal("inflateInit2 failed");
  }
  zs.next_in =
      reinterpret_cast<Bytef*>(const_cast<char*>(data));
  zs.avail_in = static_cast<uInt>(size);

  char buffer[64 * 1024];
  int rc = Z_OK;
  while (rc != Z_STREAM_END) {
    zs.next_out = reinterpret_cast<Bytef*>(buffer);
    zs.avail_out = static_cast<uInt>(sizeof(buffer));
    rc = inflate(&zs, Z_NO_FLUSH);
    if (rc != Z_OK && rc != Z_STREAM_END) {
      inflateEnd(&zs);
      // Z_DATA_ERROR covers both a corrupt deflate stream and a member whose
      // trailer CRC32/ISIZE doesn't match the decompressed bytes (zlib
      // verifies both before returning Z_STREAM_END).
      return Status::DataCorruption(
          std::string("corrupt gzip member: ") +
          (zs.msg != nullptr ? zs.msg : "inflate error"));
    }
    out->append(buffer, sizeof(buffer) - zs.avail_out);
    if (rc == Z_OK && zs.avail_in == 0 && zs.avail_out != 0) {
      inflateEnd(&zs);
      return Status::DataCorruption(
          "truncated gzip member (input ended mid-stream)");
    }
  }
  *consumed = size - zs.avail_in;
  inflateEnd(&zs);
  return Status::OK();
}

Status GzipCompressMember(std::string_view data, std::string* out) {
  z_stream zs;
  std::memset(&zs, 0, sizeof(zs));
  if (deflateInit2(&zs, Z_DEFAULT_COMPRESSION, Z_DEFLATED, 16 + MAX_WBITS, 8,
                   Z_DEFAULT_STRATEGY) != Z_OK) {
    return Status::Internal("deflateInit2 failed");
  }
  zs.next_in = reinterpret_cast<Bytef*>(const_cast<char*>(data.data()));
  zs.avail_in = static_cast<uInt>(data.size());

  char buffer[64 * 1024];
  int rc = Z_OK;
  while (rc != Z_STREAM_END) {
    zs.next_out = reinterpret_cast<Bytef*>(buffer);
    zs.avail_out = static_cast<uInt>(sizeof(buffer));
    rc = deflate(&zs, Z_FINISH);
    if (rc != Z_OK && rc != Z_STREAM_END) {
      deflateEnd(&zs);
      return Status::Internal("deflate failed");
    }
    out->append(buffer, sizeof(buffer) - zs.avail_out);
  }
  deflateEnd(&zs);
  return Status::OK();
}

Status WriteCsvGzFile(const std::string& path, std::string_view csv_text,
                      size_t block_bytes) {
  if (block_bytes == 0) block_bytes = kDefaultGzipBlockBytes;
  std::string compressed;
  size_t begin = 0;
  while (begin < csv_text.size()) {
    // Extend past block_bytes to the next row terminator so members hold
    // whole rows. The walk tracks quote parity: a '\n' inside a quoted field
    // is not a row boundary.
    size_t cut = csv_text.size();
    bool in_quotes = false;
    for (size_t i = begin; i < csv_text.size(); ++i) {
      const char c = csv_text[i];
      if (c == '"') {
        in_quotes = !in_quotes;
      } else if (c == '\n' && !in_quotes && i + 1 - begin >= block_bytes) {
        cut = i + 1;
        break;
      }
    }
    RAW_RETURN_NOT_OK(
        GzipCompressMember(csv_text.substr(begin, cut - begin), &compressed));
    begin = cut;
  }
  if (csv_text.empty()) {
    // An empty table is still a valid (single empty member) gzip file.
    RAW_RETURN_NOT_OK(GzipCompressMember(csv_text, &compressed));
  }
  FILE* f = fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot create gzip file '" + path + "'");
  }
  const size_t written = fwrite(compressed.data(), 1, compressed.size(), f);
  if (fclose(f) != 0 || written != compressed.size()) {
    return Status::IOError("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace raw
