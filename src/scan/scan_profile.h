#ifndef RAW_SCAN_SCAN_PROFILE_H_
#define RAW_SCAN_SCAN_PROFILE_H_

#include <string>

#include "common/stopwatch.h"

namespace raw {

/// Phase-level cost breakdown of a raw-data scan, mirroring the categories
/// of the paper's Figure 3 (VTune profile): main-loop bookkeeping, tokenizing
/// /parsing, data-type conversion, and populating columnar structures.
///
/// Interpreted scans attribute time to all four phases. JIT scans execute a
/// fused kernel: parsing + conversion + loop run inside generated code and
/// are reported under `kernel`; column allocation/wrapping stays host-side
/// under `build_columns`.
struct ScanProfile {
  AccumTimer main_loop;
  AccumTimer parsing;
  AccumTimer conversion;
  AccumTimer build_columns;
  AccumTimer kernel;  // fused JIT time
  int64_t rows = 0;

  void Reset() {
    main_loop.Reset();
    parsing.Reset();
    conversion.Reset();
    build_columns.Reset();
    kernel.Reset();
    rows = 0;
  }

  double total_seconds() const {
    return main_loop.total_seconds() + parsing.total_seconds() +
           conversion.total_seconds() + build_columns.total_seconds() +
           kernel.total_seconds();
  }

  /// Multi-line human-readable report.
  std::string ToString() const;
};

}  // namespace raw

#endif  // RAW_SCAN_SCAN_PROFILE_H_
