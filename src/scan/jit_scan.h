#ifndef RAW_SCAN_JIT_SCAN_H_
#define RAW_SCAN_JIT_SCAN_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/mmap_file.h"
#include "csv/positional_map.h"
#include "eventsim/ref_reader.h"
#include "jit/jit_abi.h"
#include "jit/template_cache.h"
#include "scan/access_path.h"
#include "scan/scan_profile.h"

namespace raw {

/// Everything a JIT scan operator instance needs beyond its AccessPathSpec:
/// the concrete file, optional selective inputs, and optional positional-map
/// building. The spec describes *what code to generate*; these args describe
/// *what data to run it over*.
struct JitScanArgs {
  AccessPathSpec spec;
  /// Output field names, parallel to spec.outputs.
  Schema output_schema;

  /// CSV / binary: the memory-mapped raw file.
  const MmapFile* file = nullptr;
  /// Binary / REF sequential scans: total row count. CSV sequential passes
  /// -1 (rows are discovered while parsing).
  int64_t total_rows = -1;

  /// REF: the reader whose I/O API the generated code calls.
  RefReader* ref_reader = nullptr;

  /// Selective input for kByPosition / kByRowIndex kernels. For CSV the
  /// positions must be filled (FillPositions) before Open().
  std::optional<RowSet> row_set;

  /// Morsel window for sequential kernels: restricts the scan to bytes
  /// [window_begin, window_end) of the file (window_end == 0 => whole file).
  /// The kernel sees the window as its entire file, so its row ids are
  /// window-local: `row_id_offset` rebases them when the per-window row count
  /// is known up front (binary), and the parallel scan driver rebases CSV
  /// morsels by prefix sums. Positional-map offsets recorded by windowed
  /// kernels are rebased to absolute file offsets before AppendRow.
  uint64_t window_begin = 0;
  uint64_t window_end = 0;
  /// Added to every emitted row id (see window_begin).
  int64_t row_id_offset = 0;

  /// REF sequential morsels: the kernel's row cursor starts here instead of
  /// 0, so a morsel covers rows [first_row, total_rows) — set total_rows to
  /// the morsel's end row. REF kernels address branches by global flat index
  /// and emit global row ids, so no window/rebase is involved.
  int64_t first_row = 0;

  /// CSV sequential: positional map populated as a side effect of the scan.
  /// Must be configured with exactly spec.pmap_tracked columns.
  PositionalMap* build_pmap = nullptr;

  int64_t batch_rows = kDefaultBatchRows;
  ScanProfile* profile = nullptr;
};

/// Volcano operator wrapping a generated scan kernel: compiles (or fetches
/// from the template cache) at Open(), then drives the kernel batch by batch,
/// wrapping its output buffers into ColumnBatches. The "freshly-compiled
/// library ... linked with the remaining query plan using the Volcano model"
/// of §3.
class JitScanOperator : public Operator {
 public:
  JitScanOperator(JitTemplateCache* cache, JitScanArgs args);

  const Schema& output_schema() const override { return args_.output_schema; }
  Status Open() override;
  StatusOr<ColumnBatch> Next() override;
  std::string name() const override { return "JitScan"; }

  /// Compilation time incurred by this operator's Open() (0 on cache hit).
  double compile_seconds() const { return compile_seconds_; }

 private:
  static int32_t RefReadRangeTrampoline(void* reader, int32_t branch,
                                        int64_t first, int64_t count,
                                        void* out);

  JitTemplateCache* cache_;
  JitScanArgs args_;
  CompiledKernel kernel_;
  RawJitContext ctx_ = {};
  double compile_seconds_ = 0;
  bool eof_ = false;
  // pmap scratch buffers (batch-sized).
  std::vector<uint64_t> pmap_rows_scratch_;
  std::vector<uint64_t> pmap_pos_scratch_;
  std::vector<int64_t> row_id_scratch_;
  std::vector<void*> out_ptr_scratch_;
};

}  // namespace raw

#endif  // RAW_SCAN_JIT_SCAN_H_
