#include "scan/jit_scan.h"

#include <cstring>

namespace raw {

JitScanOperator::JitScanOperator(JitTemplateCache* cache, JitScanArgs args)
    : cache_(cache), args_(std::move(args)) {}

int32_t JitScanOperator::RefReadRangeTrampoline(void* reader, int32_t branch,
                                                int64_t first, int64_t count,
                                                void* out) {
  Status st = static_cast<RefReader*>(reader)->ReadRange(branch, first, count,
                                                         out);
  return st.ok() ? 0 : 1;
}

Status JitScanOperator::Open() {
  if (static_cast<int>(args_.spec.outputs.size()) !=
      args_.output_schema.num_fields()) {
    return Status::InvalidArgument(
        "JIT scan: output schema does not match spec outputs");
  }
  RAW_ASSIGN_OR_RETURN(kernel_, cache_->GetOrCompile(args_.spec));
  compile_seconds_ = kernel_.compile_seconds;

  std::memset(&ctx_, 0, sizeof(ctx_));
  if (args_.file != nullptr) {
    ctx_.file_data = args_.file->data();
    ctx_.file_size = args_.file->size();
    if (args_.window_end > 0) {
      if (args_.window_end > args_.file->size() ||
          args_.window_begin > args_.window_end) {
        return Status::InvalidArgument("JIT scan window out of bounds");
      }
      ctx_.file_data += args_.window_begin;
      ctx_.file_size = args_.window_end - args_.window_begin;
    }
    if (args_.spec.format == FileFormat::kCsv && ctx_.file_size > 0 &&
        ctx_.file_data[ctx_.file_size - 1] != '\n') {
      // Generated CSV kernels elide bounds checks inside fields; they rely
      // on a terminating newline. Files missing it take the interpreted path.
      return Status::InvalidArgument(
          "JIT CSV kernels require a trailing newline; use the in-situ scan");
    }
  }
  ctx_.total_rows = args_.total_rows;
  ctx_.max_rows = args_.batch_rows;
  if (args_.first_row < 0) {
    return Status::InvalidArgument("JIT scan first_row out of range");
  }
  ctx_.row_cursor = args_.first_row;
  if (args_.row_set.has_value()) {
    const RowSet& rows = *args_.row_set;
    if (args_.spec.mode == ScanMode::kByPosition &&
        rows.positions.size() != rows.ids.size()) {
      return Status::InvalidArgument(
          "JIT by-position scan: positions not filled");
    }
    ctx_.in_row_ids = rows.ids.data();
    ctx_.in_positions = rows.positions.empty() ? nullptr : rows.positions.data();
    ctx_.num_inputs = rows.size();
  } else if (args_.spec.mode != ScanMode::kSequential) {
    return Status::InvalidArgument("selective JIT scan requires a row set");
  }
  if (args_.ref_reader != nullptr) {
    ctx_.ref.reader = args_.ref_reader;
    ctx_.ref.read_range = &RefReadRangeTrampoline;
    if (ctx_.total_rows < 0) ctx_.total_rows = args_.ref_reader->num_events();
  }
  if (args_.spec.format == FileFormat::kBinary && ctx_.total_rows < 0) {
    ctx_.total_rows = args_.spec.row_width > 0
                          ? static_cast<int64_t>(ctx_.file_size) /
                                args_.spec.row_width
                          : 0;
  }
  if (args_.build_pmap != nullptr) {
    if (args_.build_pmap->tracked_columns() != args_.spec.pmap_tracked) {
      return Status::InvalidArgument(
          "positional map tracked columns do not match the kernel spec");
    }
    pmap_rows_scratch_.resize(static_cast<size_t>(args_.batch_rows));
    pmap_pos_scratch_.resize(static_cast<size_t>(args_.batch_rows) *
                             args_.spec.pmap_tracked.size());
    ctx_.pmap_row_starts = pmap_rows_scratch_.data();
    ctx_.pmap_positions = pmap_pos_scratch_.data();
  }
  row_id_scratch_.resize(static_cast<size_t>(args_.batch_rows));
  ctx_.out_row_ids = row_id_scratch_.data();
  out_ptr_scratch_.resize(args_.spec.outputs.size());
  eof_ = false;
  return Status::OK();
}

StatusOr<ColumnBatch> JitScanOperator::Next() {
  ColumnBatch out(args_.output_schema);
  if (eof_) return ColumnBatch::EndOfStream(args_.output_schema);

  if (args_.profile) args_.profile->build_columns.Start();
  // Allocate output buffers for this batch; the kernel fills them in place
  // (this allocation *is* the irreducible "build columns" cost of §5).
  std::vector<ColumnPtr> columns;
  columns.reserve(args_.spec.outputs.size());
  for (size_t j = 0; j < args_.spec.outputs.size(); ++j) {
    auto col = std::make_shared<Column>(
        Column::Zeroed(args_.spec.outputs[j].type, args_.batch_rows));
    out_ptr_scratch_[j] = col->raw_data();
    columns.push_back(std::move(col));
  }
  ctx_.out_columns = out_ptr_scratch_.data();
  if (args_.profile) args_.profile->build_columns.Stop();

  if (args_.profile) args_.profile->kernel.Start();
  int64_t produced = kernel_.entry(&ctx_);
  if (args_.profile) args_.profile->kernel.Stop();

  if (produced < 0 || ctx_.error != 0) {
    return Status::Internal("JIT kernel failed at row " +
                            std::to_string(ctx_.error_row));
  }
  if (produced == 0) {
    eof_ = true;
    return ColumnBatch::EndOfStream(args_.output_schema);
  }

  if (args_.profile) args_.profile->build_columns.Start();
  for (ColumnPtr& col : columns) {
    col->Resize(produced);
    out.AddColumn(std::move(col));
  }
  out.SetNumRows(produced);
  std::vector<int64_t> ids(row_id_scratch_.begin(),
                           row_id_scratch_.begin() + produced);
  if (args_.row_id_offset != 0) {
    for (int64_t& id : ids) id += args_.row_id_offset;
  }
  out.SetRowIds(std::move(ids));
  if (args_.build_pmap != nullptr) {
    PositionalMap* pmap = args_.build_pmap;
    const size_t slots = args_.spec.pmap_tracked.size();
    const uint64_t rebase = args_.window_begin;
    for (int64_t r = 0; r < produced; ++r) {
      uint64_t* positions =
          pmap_pos_scratch_.data() + static_cast<size_t>(r) * slots;
      if (rebase != 0) {
        for (size_t s = 0; s < slots; ++s) positions[s] += rebase;
      }
      pmap->AppendRow(pmap_rows_scratch_[static_cast<size_t>(r)] + rebase,
                      positions);
    }
  }
  if (args_.profile) {
    args_.profile->build_columns.Stop();
    args_.profile->rows += produced;
  }
  return out;
}

}  // namespace raw
