#ifndef RAW_SCAN_INSITU_CSV_SCAN_H_
#define RAW_SCAN_INSITU_CSV_SCAN_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/mmap_file.h"
#include "common/scan_health.h"
#include "csv/csv_options.h"
#include "csv/csv_tokenizer.h"
#include "csv/positional_map.h"
#include "format/format.h"
#include "scan/access_path.h"
#include "scan/scan_profile.h"

namespace raw {

/// Configuration of a general-purpose in-situ CSV scan (the NoDB-style
/// baseline of §2.3/§4.2). One spec describes either:
///  * a sequential scan of the whole file (optionally building a positional
///    map as a side effect), or
///  * a positional scan that jumps to `anchor_column` via `use_pmap` for a
///    set of rows (all rows, or an explicit RowSet for column shreds) and
///    incrementally parses to the requested columns.
struct CsvScanSpec {
  Schema file_schema;         // full file schema (all physical columns)
  std::vector<int> outputs;   // columns to materialize, ascending
  CsvOptions options;
  /// The file contains `options.quote` somewhere: fields step through the
  /// quote-aware tokenizer (outer quotes stripped, embedded delimiters and
  /// newlines respected) so scans agree with schema inference. Detected once
  /// at catalog open; quote-free files keep the branch-light fast path.
  bool quoted = false;
  int64_t batch_rows = kDefaultBatchRows;

  /// Sequential mode: restrict the scan to a byte-addressed morsel of the
  /// file (default: the whole file). `range.begin` must point at the start
  /// of a data row and `range.end` one past a row terminator (or the file
  /// size); see SplitCsvByteRanges. Emitted row ids are local to the range
  /// (the parallel scan driver rebases them by morsel prefix sums).
  ScanRange range;

  /// Sequential mode: build this map while scanning (may be null).
  PositionalMap* build_pmap = nullptr;

  /// Positional mode: jump with this map (null => sequential mode).
  const PositionalMap* use_pmap = nullptr;
  /// Positional mode: tracked column the jumps land on. Must be tracked by
  /// `use_pmap` and <= the first output column.
  int anchor_column = -1;

  /// Positional mode: explicit rows (column shreds). Empty positions are
  /// filled from the map. When absent, all mapped rows are visited.
  std::optional<RowSet> row_set;

  /// What to do with rows whose bytes don't convert to the schema.
  MalformedRowPolicy policy = MalformedRowPolicy::kFail;
  /// Per-query robustness counters (may be null); shared across morsels.
  ScanHealth* health = nullptr;

  ScanProfile* profile = nullptr;  // optional instrumentation
};

/// The interpreted scan operator: per-column loop with branch conditions and
/// catalog-type switches in the critical path — deliberately general-purpose,
/// this is precisely the overhead JIT access paths remove (§4.1).
class InsituCsvScanOperator : public Operator {
 public:
  /// `file` must outlive the operator.
  InsituCsvScanOperator(const MmapFile* file, CsvScanSpec spec);
  /// In-memory flavour (decompressed gzip blocks, tests). `data` must
  /// outlive the operator.
  InsituCsvScanOperator(const char* data, size_t size, CsvScanSpec spec);

  const Schema& output_schema() const override { return output_schema_; }
  Status Open() override;
  StatusOr<ColumnBatch> Next() override;
  std::string name() const override { return "InsituCsvScan"; }

 private:
  StatusOr<ColumnBatch> NextSequential();
  StatusOr<ColumnBatch> NextSequentialQuoted();
  StatusOr<ColumnBatch> NextPositional();
  /// Converts the collected field views into typed columns. `row_ids` (the
  /// per-batch id scratch) is compacted in place when the skip policy drops
  /// rows, so callers must SetRowIds() only after this returns.
  Status ConvertAndBuild(const std::vector<std::vector<FieldRef>>& refs,
                         int64_t rows, ColumnBatch* out,
                         std::vector<int64_t>* row_ids);

  const char* data_;
  size_t size_;
  CsvScanSpec spec_;
  Schema output_schema_;
  // Sequential cursor state.
  const char* pos_ = nullptr;
  const char* end_ = nullptr;
  int64_t row_ = 0;
  // Positional cursor state.
  int64_t input_cursor_ = 0;
  int anchor_slot_ = -1;
  // Scratch: field views per output column for the current batch.
  std::vector<std::vector<FieldRef>> refs_;
  std::vector<int64_t> row_id_scratch_;
  // Sequential mode: tracked-slot index per column (-1 untracked).
  std::vector<int> slot_lookup_;
};

}  // namespace raw

#endif  // RAW_SCAN_INSITU_CSV_SCAN_H_
