#ifndef RAW_SCAN_LOADER_H_
#define RAW_SCAN_LOADER_H_

#include <memory>
#include <vector>

#include "binfmt/binary_reader.h"
#include "columnar/in_memory_table.h"
#include "common/mmap_file.h"
#include "csv/csv_options.h"
#include "eventsim/ref_reader.h"

namespace raw {

/// Bulk loaders implementing the traditional "DBMS" path (§2.1): convert the
/// raw file into fully materialized in-memory columns before the first query
/// can run. Loading cost is what the first-query experiments charge to the
/// DBMS baseline (Fig. 1a, Table 2).

/// Loads `columns` of a CSV file (pass all columns for the full DBMS load).
/// `quoted` routes the scan through the quote-aware tokenizer (see
/// CsvScanSpec::quoted).
StatusOr<std::unique_ptr<InMemoryTable>> LoadCsvTable(
    const MmapFile* file, const Schema& file_schema,
    const std::vector<int>& columns, const CsvOptions& options = CsvOptions(),
    bool quoted = false);

/// Loads `columns` of a fixed-width binary file.
StatusOr<std::unique_ptr<InMemoryTable>> LoadBinaryTable(
    const BinaryReader* reader, const std::vector<int>& columns);

/// Loads an REF *event* table: eventID + runNumber.
StatusOr<std::unique_ptr<InMemoryTable>> LoadRefEventTable(RefReader* reader);

/// Loads an REF *particle* table for `group`: eventID, pt, eta, phi.
StatusOr<std::unique_ptr<InMemoryTable>> LoadRefParticleTable(RefReader* reader,
                                                              int group);

}  // namespace raw

#endif  // RAW_SCAN_LOADER_H_
