#ifndef RAW_SCAN_MORSEL_H_
#define RAW_SCAN_MORSEL_H_

#include <cstdint>
#include <vector>

#include "csv/csv_options.h"
#include "csv/positional_map.h"
#include "eventsim/ref_format.h"
#include "format/format.h"

namespace raw {

/// Morsels are the unit of work the parallel scan drivers hand to the thread
/// pool (morsel-driven parallelism à la Leis et al.); results are re-emitted
/// in morsel order so parallel plans stay deterministic. Every splitter
/// returns the engine-wide ScanRange representation (format/format.h): byte
/// ranges for textual formats, row ranges for formats with computed or
/// mapped offsets. FormatDriver::SplitMorsels is the uniform entry point;
/// the helpers below are the building blocks drivers share.

/// Minimum work per morsel; below these, splitting overhead dominates.
inline constexpr uint64_t kMinMorselBytes = 4096;
inline constexpr int64_t kMinMorselRows = 256;

/// Partitions the data region of an in-memory CSV buffer (after any header)
/// into up to `target_morsels` newline-aligned byte ranges of at least
/// `min_bytes` each. Quote-aware: when the buffer contains the configured
/// quote character, fields may hide newlines, so boundaries found by newline
/// search cannot be trusted — the whole region is returned as one morsel.
/// An empty data region yields no morsels.
std::vector<ScanRange> SplitCsvByteRanges(
    const char* data, size_t size, const CsvOptions& options,
    int target_morsels, uint64_t min_bytes = kMinMorselBytes);

/// Partitions [0, total_rows) into up to `target_morsels` contiguous row
/// ranges of at least `min_rows` each. Zero rows yields no morsels.
std::vector<ScanRange> SplitRowRanges(int64_t total_rows, int target_morsels,
                                      int64_t min_rows = kMinMorselRows);

/// Row ranges over the rows a positional map has indexed — the splitter for
/// warm (positional) scans of mapped textual formats, where jumping makes
/// byte alignment moot.
std::vector<ScanRange> SplitPmapRowRanges(const PositionalMap& pmap,
                                          int target_morsels,
                                          int64_t min_rows = kMinMorselRows);

/// Row (event / flat-particle) ranges over an REF table, aligned to the
/// cluster boundaries of `row_branch` (the branch defining the table's row
/// layout, see RefReader::RowBranch). Cluster alignment means parallel
/// workers decode disjoint cluster sets — no duplicated decode work and no
/// contended pool entries on a cold scan. Morsels cover every value exactly
/// once; a branch stored as a single cluster yields one morsel.
std::vector<ScanRange> SplitRefRowRanges(const RefBranch& row_branch,
                                         int target_morsels,
                                         int64_t min_rows = kMinMorselRows);

/// Partitions the line-delimited data region of a JSONL buffer into up to
/// `target_morsels` newline-aligned byte ranges. JSON forbids raw control
/// characters inside strings (newlines appear only as the two-byte escape
/// \n), so — unlike CSV — newline cuts are always safe and there is no
/// quote bail-out to a single morsel.
std::vector<ScanRange> SplitJsonlByteRanges(
    const char* data, size_t size, int target_morsels,
    uint64_t min_bytes = kMinMorselBytes);

}  // namespace raw

#endif  // RAW_SCAN_MORSEL_H_
