#ifndef RAW_SCAN_MORSEL_H_
#define RAW_SCAN_MORSEL_H_

#include <cstdint>
#include <vector>

#include "csv/csv_options.h"
#include "csv/positional_map.h"
#include "eventsim/ref_format.h"

namespace raw {

/// A morsel is one independently scannable slice of a raw file: a byte range
/// for textual formats, a row range for formats with computed or mapped
/// offsets. Morsels are the unit of work the parallel scan drivers hand to
/// the thread pool (morsel-driven parallelism à la Leis et al.); results are
/// re-emitted in morsel order so parallel plans stay deterministic.
struct ByteMorsel {
  uint64_t begin = 0;  // inclusive, start of a row
  uint64_t end = 0;    // exclusive, one past a row terminator (or file end)
};

struct RowMorsel {
  int64_t first = 0;
  int64_t count = 0;
};

/// Minimum work per morsel; below these, splitting overhead dominates.
inline constexpr uint64_t kMinMorselBytes = 4096;
inline constexpr int64_t kMinMorselRows = 256;

/// Partitions the data region of an in-memory CSV buffer (after any header)
/// into up to `target_morsels` newline-aligned byte ranges of at least
/// `min_bytes` each. Quote-aware: when the buffer contains the configured
/// quote character, fields may hide newlines, so boundaries found by newline
/// search cannot be trusted — the whole region is returned as one morsel.
/// An empty data region yields no morsels.
std::vector<ByteMorsel> SplitCsvByteRanges(const char* data, size_t size,
                                           const CsvOptions& options,
                                           int target_morsels,
                                           uint64_t min_bytes = kMinMorselBytes);

/// Partitions [0, total_rows) into up to `target_morsels` contiguous row
/// ranges of at least `min_rows` each. Zero rows yields no morsels.
std::vector<RowMorsel> SplitRowRanges(int64_t total_rows, int target_morsels,
                                      int64_t min_rows = kMinMorselRows);

/// Row ranges over the rows a positional map has indexed — the splitter for
/// warm (positional) CSV scans, where jumping makes byte alignment moot.
std::vector<RowMorsel> SplitPmapRowRanges(const PositionalMap& pmap,
                                          int target_morsels,
                                          int64_t min_rows = kMinMorselRows);

/// Row (event / flat-particle) ranges over an REF table, aligned to the
/// cluster boundaries of `row_branch` (the branch defining the table's row
/// layout, see RefReader::RowBranch). Cluster alignment means parallel
/// workers decode disjoint cluster sets — no duplicated decode work and no
/// contended pool entries on a cold scan. Morsels cover every value exactly
/// once; a branch stored as a single cluster yields one morsel.
std::vector<RowMorsel> SplitRefRowRanges(const RefBranch& row_branch,
                                         int target_morsels,
                                         int64_t min_rows = kMinMorselRows);

}  // namespace raw

#endif  // RAW_SCAN_MORSEL_H_
