#include "scan/loader.h"

#include "scan/insitu_bin_scan.h"
#include "scan/insitu_csv_scan.h"
#include "scan/ref_scan.h"

namespace raw {

namespace {
StatusOr<std::unique_ptr<InMemoryTable>> Drain(Operator* scan) {
  // Open first: some scans (REF) resolve their output schema at Open().
  RAW_RETURN_NOT_OK(scan->Open());
  auto table = std::make_unique<InMemoryTable>(scan->output_schema());
  while (true) {
    RAW_ASSIGN_OR_RETURN(ColumnBatch batch, scan->Next());
    if (batch.end_of_stream()) break;
    if (batch.empty()) continue;
    RAW_RETURN_NOT_OK(table->AppendBatch(batch));
  }
  RAW_RETURN_NOT_OK(scan->Close());
  return table;
}
}  // namespace

StatusOr<std::unique_ptr<InMemoryTable>> LoadCsvTable(
    const MmapFile* file, const Schema& file_schema,
    const std::vector<int>& columns, const CsvOptions& options, bool quoted) {
  CsvScanSpec spec;
  spec.file_schema = file_schema;
  spec.outputs = columns;
  spec.options = options;
  spec.quoted = quoted;
  InsituCsvScanOperator scan(file, std::move(spec));
  return Drain(&scan);
}

StatusOr<std::unique_ptr<InMemoryTable>> LoadBinaryTable(
    const BinaryReader* reader, const std::vector<int>& columns) {
  BinScanSpec spec;
  spec.outputs = columns;
  InsituBinScanOperator scan(reader, std::move(spec));
  return Drain(&scan);
}

StatusOr<std::unique_ptr<InMemoryTable>> LoadRefEventTable(RefReader* reader) {
  RefScanSpec spec;
  spec.group = -1;
  RefTableScanOperator scan(reader, std::move(spec));
  return Drain(&scan);
}

StatusOr<std::unique_ptr<InMemoryTable>> LoadRefParticleTable(RefReader* reader,
                                                              int group) {
  RefScanSpec spec;
  spec.group = group;
  RefTableScanOperator scan(reader, std::move(spec));
  return Drain(&scan);
}

}  // namespace raw
