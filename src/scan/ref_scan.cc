#include "scan/ref_scan.h"

#include <algorithm>

namespace raw {

StatusOr<int> RefBranchFor(const RefReader& reader, int group,
                           const std::string& field) {
  std::string name;
  if (group < 0) {
    if (field == "eventID") {
      name = ref_branches::kEventId;
    } else if (field == "runNumber") {
      name = ref_branches::kEventRun;
    } else {
      return Status::NotFound("event table has no field '" + field + "'");
    }
  } else {
    if (group >= ref_branches::kNumGroups) {
      return Status::InvalidArgument("bad particle group");
    }
    if (field != "pt" && field != "eta" && field != "phi" && field != "n") {
      return Status::NotFound("particle table has no field '" + field + "'");
    }
    name = std::string(ref_branches::kGroups[group]) + "/" + field;
  }
  int idx = reader.BranchIndex(name);
  if (idx < 0) return Status::NotFound("branch '" + name + "' missing");
  return idx;
}

RefTableScanOperator::RefTableScanOperator(RefReader* reader, RefScanSpec spec)
    : reader_(reader), spec_(std::move(spec)) {}

Status RefTableScanOperator::Open() {
  cursor_ = 0;
  if (spec_.fields.empty()) {
    spec_.fields = spec_.group < 0
                       ? std::vector<std::string>{"eventID", "runNumber"}
                       : std::vector<std::string>{"eventID", "pt", "eta", "phi"};
  }
  Schema schema;
  for (const std::string& f : spec_.fields) {
    if (f == "eventID") {
      schema.AddField("eventID", DataType::kInt64);
      continue;
    }
    if (spec_.group < 0 && f == "runNumber") {
      schema.AddField("runNumber", DataType::kInt32);
      continue;
    }
    RAW_ASSIGN_OR_RETURN(int branch, RefBranchFor(*reader_, spec_.group, f));
    schema.AddField(f, reader_->branch(branch).type);
  }
  RAW_RETURN_NOT_OK(schema.Validate());
  output_schema_ = std::move(schema);
  const int64_t table_rows = spec_.group < 0
                                 ? reader_->num_events()
                                 : reader_->GroupTotal(spec_.group);
  if (spec_.row_set.has_value()) {
    total_rows_ = spec_.row_set->size();
  } else {
    if (spec_.range.unit != ScanRange::Unit::kRows) {
      return Status::InvalidArgument("REF scan range must be row-addressed");
    }
    if (spec_.range.begin < 0 || spec_.range.begin > table_rows) {
      return Status::InvalidArgument("REF scan range start out of bounds");
    }
    total_rows_ =
        spec_.range.bounded()
            ? std::min(spec_.range.count(), table_rows - spec_.range.begin)
            : table_rows - spec_.range.begin;
  }
  return Status::OK();
}

StatusOr<ColumnPtr> RefTableScanOperator::ReadFieldColumn(
    const std::string& field, int64_t first, int64_t count,
    const std::vector<int64_t>* explicit_rows) {
  // eventID of a particle table is derived from the nesting structure, not
  // stored — resolve through the group offsets.
  if (field == "eventID" && spec_.group >= 0) {
    auto col = std::make_shared<Column>(DataType::kInt64);
    col->Reserve(count);
    for (int64_t i = 0; i < count; ++i) {
      int64_t flat = explicit_rows != nullptr
                         ? (*explicit_rows)[static_cast<size_t>(first + i)]
                         : first + i;
      col->Append<int64_t>(reader_->EventOfFlatIndex(spec_.group, flat));
    }
    return col;
  }
  std::string lookup = field;
  if (field == "eventID") lookup = "eventID";  // event table: stored branch
  RAW_ASSIGN_OR_RETURN(int branch, RefBranchFor(*reader_, spec_.group, lookup));
  DataType type = reader_->branch(branch).type;
  auto col = std::make_shared<Column>(Column::Zeroed(type, count));
  if (explicit_rows == nullptr) {
    RAW_RETURN_NOT_OK(reader_->ReadRange(branch, first, count, col->raw_data()));
  } else {
    const int width = FixedWidth(type);
    for (int64_t i = 0; i < count; ++i) {
      int64_t idx = (*explicit_rows)[static_cast<size_t>(first + i)];
      RAW_RETURN_NOT_OK(reader_->ReadRange(
          branch, idx, 1,
          col->raw_data() + static_cast<size_t>(i) * static_cast<size_t>(width)));
    }
  }
  return col;
}

StatusOr<ColumnBatch> RefTableScanOperator::Next() {
  ColumnBatch out(output_schema_);
  if (cursor_ >= total_rows_) return ColumnBatch::EndOfStream(output_schema_);
  const int64_t take = std::min(spec_.batch_rows, total_rows_ - cursor_);
  const std::vector<int64_t>* explicit_rows =
      spec_.row_set.has_value() ? &spec_.row_set->ids : nullptr;
  // Row-set scans index into the set; sequential scans read at the global
  // offset (range.begin shifts the morsel window, ids stay file-global).
  const int64_t first =
      explicit_rows != nullptr ? cursor_ : spec_.range.begin + cursor_;

  for (const std::string& f : spec_.fields) {
    RAW_ASSIGN_OR_RETURN(ColumnPtr col,
                         ReadFieldColumn(f, first, take, explicit_rows));
    out.AddColumn(std::move(col));
  }
  out.SetNumRows(take);
  std::vector<int64_t> ids(static_cast<size_t>(take));
  for (int64_t i = 0; i < take; ++i) {
    ids[static_cast<size_t>(i)] =
        explicit_rows != nullptr
            ? (*explicit_rows)[static_cast<size_t>(cursor_ + i)]
            : first + i;
  }
  out.SetRowIds(std::move(ids));
  cursor_ += take;
  return out;
}

}  // namespace raw
