#ifndef RAW_SCAN_INSITU_BIN_SCAN_H_
#define RAW_SCAN_INSITU_BIN_SCAN_H_

#include <optional>
#include <vector>

#include "binfmt/binary_reader.h"
#include "format/format.h"
#include "scan/access_path.h"
#include "scan/scan_profile.h"

namespace raw {

/// General-purpose interpreted scan over the fixed-width binary format: the
/// offset of every data element is *computed during query execution* through
/// the layout object and a per-field type switch (§4.2 "In Situ" binary
/// baseline) — versus the JIT path that hard-codes the offsets.
struct BinScanSpec {
  std::vector<int> outputs;  // column indices, ascending
  int64_t batch_rows = kDefaultBatchRows;
  /// Explicit rows (column shreds); absent => all rows.
  std::optional<RowSet> row_set;
  /// Row-addressed morsel when `row_set` is absent (default: all rows).
  /// Emitted row ids stay global, so parallel morsels concatenate into the
  /// full-table id space.
  ScanRange range;
  ScanProfile* profile = nullptr;
};

class InsituBinScanOperator : public Operator {
 public:
  /// `reader` must outlive the operator.
  InsituBinScanOperator(const BinaryReader* reader, BinScanSpec spec);

  const Schema& output_schema() const override { return output_schema_; }
  Status Open() override;
  StatusOr<ColumnBatch> Next() override;
  std::string name() const override { return "InsituBinScan"; }

 private:
  const BinaryReader* reader_;
  BinScanSpec spec_;
  Schema output_schema_;
  int64_t cursor_ = 0;
};

}  // namespace raw

#endif  // RAW_SCAN_INSITU_BIN_SCAN_H_
