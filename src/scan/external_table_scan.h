#ifndef RAW_SCAN_EXTERNAL_TABLE_SCAN_H_
#define RAW_SCAN_EXTERNAL_TABLE_SCAN_H_

#include <vector>

#include "common/mmap_file.h"
#include "csv/csv_options.h"
#include "csv/csv_tokenizer.h"
#include "scan/access_path.h"

namespace raw {

/// MySQL-CSV-storage-engine-style external table scan (§2.2): every query
/// re-reads the file from scratch, tokenizes every line, parses and converts
/// *every* field to the engine's types to form a full tuple — then hands the
/// requested columns upstream. No positional map, no caching, costs incurred
/// repeatedly. The paper's slowest baseline.
class ExternalTableScanOperator : public Operator {
 public:
  ExternalTableScanOperator(const MmapFile* file, Schema file_schema,
                            std::vector<int> outputs,
                            CsvOptions options = CsvOptions(),
                            int64_t batch_rows = kDefaultBatchRows);

  const Schema& output_schema() const override { return output_schema_; }
  Status Open() override;
  StatusOr<ColumnBatch> Next() override;
  std::string name() const override { return "ExternalTableScan"; }

 private:
  const MmapFile* file_;
  Schema file_schema_;
  std::vector<int> outputs_;
  CsvOptions options_;
  int64_t batch_rows_;
  Schema output_schema_;
  const char* pos_ = nullptr;
  const char* end_ = nullptr;
  int64_t row_ = 0;
  std::vector<FieldRef> field_scratch_;
};

}  // namespace raw

#endif  // RAW_SCAN_EXTERNAL_TABLE_SCAN_H_
