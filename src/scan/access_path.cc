#include "scan/access_path.h"

namespace raw {

std::string_view AccessPathKindToString(AccessPathKind kind) {
  switch (kind) {
    case AccessPathKind::kExternalTable:
      return "external_table";
    case AccessPathKind::kInSitu:
      return "in_situ";
    case AccessPathKind::kJit:
      return "jit";
    case AccessPathKind::kLoaded:
      return "loaded";
  }
  return "?";
}

Status FillPositions(const PositionalMap& pmap, int slot, RowSet* out) {
  if (slot < 0 || slot >= pmap.num_tracked()) {
    return Status::InvalidArgument("positional-map slot out of range");
  }
  out->positions.resize(out->ids.size());
  for (size_t i = 0; i < out->ids.size(); ++i) {
    int64_t row = out->ids[i];
    if (row < 0 || row >= pmap.num_rows()) {
      return Status::InvalidArgument("row id outside positional map");
    }
    out->positions[i] = pmap.Position(row, slot);
  }
  return Status::OK();
}

Schema SchemaForColumns(const Schema& file_schema,
                        const std::vector<int>& columns) {
  Schema out;
  for (int c : columns) {
    // Out-of-range columns are skipped here; operators reject them with a
    // proper Status at Open() (constructors must not fail).
    if (c < 0 || c >= file_schema.num_fields()) continue;
    out.AddField(file_schema.field(c).name, file_schema.field(c).type);
  }
  return out;
}

}  // namespace raw
