#include "scan/fused_pipeline.h"

#include <cstring>

#include "common/kernels.h"

namespace raw {

FusedPipelineOperator::FusedPipelineOperator(JitTemplateCache* cache,
                                             FusedPipelineArgs args)
    : cache_(cache), args_(std::move(args)) {}

int32_t FusedPipelineOperator::RefReadRangeTrampoline(void* reader,
                                                      int32_t branch,
                                                      int64_t first,
                                                      int64_t count,
                                                      void* out) {
  Status st =
      static_cast<RefReader*>(reader)->ReadRange(branch, first, count, out);
  return st.ok() ? 0 : 1;
}

Status FusedPipelineOperator::Open() {
  const PipelineSpec& spec = args_.spec;
  const bool agg_mode = spec.mode == PipelineOutputMode::kAggregate;
  if (agg_mode) {
    if (args_.output_schema.num_fields() !=
        static_cast<int>(spec.aggs.size()) * kFusedAggStateCols) {
      return Status::InvalidArgument(
          "fused pipeline: output schema does not match the agg partial "
          "layout");
    }
  } else if (args_.output_schema.num_fields() !=
             static_cast<int>(spec.projections.size())) {
    return Status::InvalidArgument(
        "fused pipeline: output schema does not match the projection list");
  }
  if (args_.dense_columns.size() != spec.inputs.size()) {
    return Status::InvalidArgument(
        "fused pipeline: dense_columns must parallel spec.inputs");
  }
  RAW_ASSIGN_OR_RETURN(kernel_, cache_->GetOrCompile(spec));
  compile_seconds_ = kernel_.compile_seconds;

  std::memset(&ctx_, 0, sizeof(ctx_));
  if (args_.file != nullptr) {
    ctx_.file_data = args_.file->data();
    ctx_.file_size = args_.file->size();
    if (args_.window_end > 0) {
      if (args_.window_end > args_.file->size() ||
          args_.window_begin > args_.window_end) {
        return Status::InvalidArgument("fused pipeline window out of bounds");
      }
      ctx_.file_data += args_.window_begin;
      ctx_.file_size = args_.window_end - args_.window_begin;
    }
    if (spec.scan.format == FileFormat::kCsv && ctx_.file_size > 0 &&
        ctx_.file_data[ctx_.file_size - 1] != '\n') {
      // Same contract as the plain CSV JIT kernels: fields are parsed
      // without bounds checks, relying on a terminating newline.
      return Status::InvalidArgument(
          "JIT CSV kernels require a trailing newline; use the in-situ scan");
    }
  }
  ctx_.total_rows = args_.total_rows;
  ctx_.max_rows = args_.batch_rows;
  if (args_.first_row < 0) {
    return Status::InvalidArgument("fused pipeline first_row out of range");
  }
  ctx_.row_cursor = args_.first_row;
  if (args_.row_set.has_value()) {
    const RowSet& rows = *args_.row_set;
    if (spec.scan.mode == ScanMode::kByPosition &&
        rows.positions.size() != rows.ids.size()) {
      return Status::InvalidArgument(
          "fused by-position pipeline: positions not filled");
    }
    ctx_.in_row_ids = rows.ids.data();
    ctx_.in_positions =
        rows.positions.empty() ? nullptr : rows.positions.data();
    ctx_.num_inputs = rows.size();
  } else if (spec.scan.mode != ScanMode::kSequential) {
    return Status::InvalidArgument("selective fused pipeline needs a row set");
  }
  if (args_.ref_reader != nullptr) {
    ctx_.ref.reader = args_.ref_reader;
    ctx_.ref.read_range = &RefReadRangeTrampoline;
    if (ctx_.total_rows < 0) ctx_.total_rows = args_.ref_reader->num_events();
  }
  if (spec.scan.format == FileFormat::kBinary && ctx_.total_rows < 0) {
    ctx_.total_rows = spec.scan.row_width > 0
                          ? static_cast<int64_t>(ctx_.file_size) /
                                spec.scan.row_width
                          : 0;
  }

  // Dense (cached full-column) inputs, indexed by global row id in-kernel.
  dense_ptr_scratch_.assign(spec.inputs.size(), nullptr);
  bool any_dense_pred = false;
  for (const PipelinePredicate& p : spec.predicates) {
    if (spec.inputs[static_cast<size_t>(p.input)].dense) any_dense_pred = true;
  }
  for (size_t k = 0; k < spec.inputs.size(); ++k) {
    if (!spec.inputs[k].dense) continue;
    const ColumnPtr& col = args_.dense_columns[k];
    if (col == nullptr || col->type() != spec.inputs[k].type) {
      return Status::InvalidArgument(
          "fused pipeline: dense input has no matching cached column");
    }
    dense_ptr_scratch_[k] = col->raw_data();
  }
  ctx_.in_dense = dense_ptr_scratch_.data();
  ctx_.dense_row_base = args_.dense_row_base;
  if (any_dense_pred) {
    sel_mask_scratch_.assign(static_cast<size_t>(args_.batch_rows), 0);
    ctx_.sel_mask = sel_mask_scratch_.data();
  }
  ctx_.kernel_tier = static_cast<int32_t>(ActiveKernelTier());

  if (agg_mode) {
    agg_count_.assign(spec.aggs.size(), 0);
    agg_dacc_.assign(spec.aggs.size(), 0.0);
    agg_iacc_.assign(spec.aggs.size(), 0);
    agg_init_.assign(spec.aggs.size(), 0);
    ctx_.agg_count = agg_count_.data();
    ctx_.agg_dacc = agg_dacc_.data();
    ctx_.agg_iacc = agg_iacc_.data();
    ctx_.agg_init = agg_init_.data();
    if (spec.scan.format == FileFormat::kRef) {
      // REF kernels bulk-decode each branch range into host scratch.
      ref_decode_scratch_.clear();
      out_ptr_scratch_.resize(spec.scan.outputs.size());
      for (size_t j = 0; j < spec.scan.outputs.size(); ++j) {
        auto col = std::make_shared<Column>(
            Column::Zeroed(spec.scan.outputs[j].type, args_.batch_rows));
        out_ptr_scratch_[j] = col->raw_data();
        ref_decode_scratch_.push_back(std::move(col));
      }
      ctx_.out_columns = out_ptr_scratch_.data();
    }
  } else {
    row_id_scratch_.resize(static_cast<size_t>(args_.batch_rows));
    ctx_.out_row_ids = row_id_scratch_.data();
    out_ptr_scratch_.resize(spec.projections.size());
  }
  eof_ = false;
  return Status::OK();
}

StatusOr<ColumnBatch> FusedPipelineOperator::Next() {
  if (eof_) return ColumnBatch::EndOfStream(args_.output_schema);
  return args_.spec.mode == PipelineOutputMode::kAggregate ? NextAggregate()
                                                           : NextProject();
}

StatusOr<ColumnBatch> FusedPipelineOperator::NextProject() {
  if (args_.profile) args_.profile->build_columns.Start();
  std::vector<ColumnPtr> columns;
  columns.reserve(args_.spec.projections.size());
  for (size_t m = 0; m < args_.spec.projections.size(); ++m) {
    int k = args_.spec.projections[m];
    auto col = std::make_shared<Column>(Column::Zeroed(
        args_.spec.inputs[static_cast<size_t>(k)].type, args_.batch_rows));
    out_ptr_scratch_[m] = col->raw_data();
    columns.push_back(std::move(col));
  }
  ctx_.out_columns = out_ptr_scratch_.data();
  if (args_.profile) args_.profile->build_columns.Stop();

  if (args_.profile) args_.profile->kernel.Start();
  int64_t produced = kernel_.entry(&ctx_);
  if (args_.profile) args_.profile->kernel.Stop();

  if (produced < 0 || ctx_.error != 0) {
    return Status::Internal("fused pipeline kernel failed at row " +
                            std::to_string(ctx_.error_row));
  }
  if (produced == 0) {
    eof_ = true;
    return ColumnBatch::EndOfStream(args_.output_schema);
  }

  ColumnBatch out(args_.output_schema);
  for (ColumnPtr& col : columns) {
    col->Resize(produced);
    out.AddColumn(std::move(col));
  }
  out.SetNumRows(produced);
  // Fused kernels emit global row ids directly (dense columns are indexed by
  // global id in-kernel), so no rebase here.
  out.SetRowIds(std::vector<int64_t>(row_id_scratch_.begin(),
                                     row_id_scratch_.begin() + produced));
  if (args_.profile) args_.profile->rows += produced;
  return out;
}

StatusOr<ColumnBatch> FusedPipelineOperator::NextAggregate() {
  // One invocation folds the whole morsel into the context agg arrays.
  if (args_.profile) args_.profile->kernel.Start();
  int64_t consumed = kernel_.entry(&ctx_);
  if (args_.profile) args_.profile->kernel.Stop();
  if (consumed < 0 || ctx_.error != 0) {
    return Status::Internal("fused pipeline kernel failed at row " +
                            std::to_string(ctx_.error_row));
  }
  eof_ = true;

  ColumnBatch out(args_.output_schema);
  for (size_t s = 0; s < args_.spec.aggs.size(); ++s) {
    auto count_col = std::make_shared<Column>(DataType::kInt64);
    count_col->Append<int64_t>(agg_count_[s]);
    out.AddColumn(std::move(count_col));
    auto dacc_col = std::make_shared<Column>(DataType::kFloat64);
    dacc_col->Append<double>(agg_dacc_[s]);
    out.AddColumn(std::move(dacc_col));
    auto iacc_col = std::make_shared<Column>(DataType::kInt64);
    iacc_col->Append<int64_t>(agg_iacc_[s]);
    out.AddColumn(std::move(iacc_col));
    auto init_col = std::make_shared<Column>(DataType::kInt64);
    init_col->Append<int64_t>(agg_init_[s] != 0 ? 1 : 0);
    out.AddColumn(std::move(init_col));
  }
  out.SetNumRows(1);
  if (args_.profile) args_.profile->rows += consumed;
  return out;
}

FusedAggFinalizeOperator::FusedAggFinalizeOperator(
    OperatorPtr child, std::vector<AggSpec> specs,
    std::vector<DataType> input_types)
    : child_(std::move(child)),
      specs_(std::move(specs)),
      input_types_(std::move(input_types)) {}

Status FusedAggFinalizeOperator::Open() {
  RAW_RETURN_NOT_OK(child_->Open());
  if (input_types_.size() != specs_.size()) {
    return Status::InvalidArgument(
        "fused agg finalize: input_types must parallel specs");
  }
  if (child_->output_schema().num_fields() !=
      static_cast<int>(specs_.size()) * kFusedAggStateCols) {
    return Status::InvalidArgument(
        "fused agg finalize: child schema does not match the partial layout");
  }
  Schema schema;
  for (size_t s = 0; s < specs_.size(); ++s) {
    RAW_ASSIGN_OR_RETURN(DataType out_type,
                         AggResultType(specs_[s].kind, input_types_[s]));
    schema.AddField(specs_[s].output_name.empty()
                        ? std::string(AggKindToString(specs_[s].kind))
                        : specs_[s].output_name,
                    out_type);
  }
  output_schema_ = std::move(schema);
  done_ = false;
  return Status::OK();
}

StatusOr<ColumnBatch> FusedAggFinalizeOperator::Next() {
  if (done_) return ColumnBatch::EndOfStream(output_schema_);
  done_ = true;

  // Fresh accumulators merged left-to-right in morsel order: identical to
  // the serial fold AggregateOperator performs, so the final row is
  // bit-identical at any thread count (for the mergeable aggregate kinds the
  // planner admits to parallel fusion).
  std::vector<AggAccumulator> accs;
  for (size_t s = 0; s < specs_.size(); ++s) {
    accs.emplace_back(specs_[s].kind, input_types_[s]);
  }
  while (true) {
    RAW_ASSIGN_OR_RETURN(ColumnBatch batch, child_->Next());
    if (batch.end_of_stream()) break;
    for (int64_t r = 0; r < batch.num_rows(); ++r) {
      for (size_t s = 0; s < specs_.size(); ++s) {
        const int base = static_cast<int>(s) * kFusedAggStateCols;
        accs[s].Merge(AggAccumulator::FromPartial(
            specs_[s].kind, input_types_[s],
            batch.column(base)->Value<int64_t>(r),
            batch.column(base + 1)->Value<double>(r),
            batch.column(base + 2)->Value<int64_t>(r),
            batch.column(base + 3)->Value<int64_t>(r) != 0));
      }
    }
  }

  ColumnBatch out(output_schema_);
  for (size_t s = 0; s < specs_.size(); ++s) {
    auto col = std::make_shared<Column>(
        output_schema_.field(static_cast<int>(s)).type);
    col->AppendDatum(accs[s].Finalize());
    out.AddColumn(std::move(col));
  }
  out.SetNumRows(1);
  return out;
}

}  // namespace raw
