#include "scan/scan_profile.h"

#include <cstdio>

namespace raw {

std::string ScanProfile::ToString() const {
  char buf[512];
  snprintf(buf, sizeof(buf),
           "rows=%lld main_loop=%.3fs parsing=%.3fs conversion=%.3fs "
           "build_columns=%.3fs kernel=%.3fs total=%.3fs",
           static_cast<long long>(rows), main_loop.total_seconds(),
           parsing.total_seconds(), conversion.total_seconds(),
           build_columns.total_seconds(), kernel.total_seconds(),
           total_seconds());
  return buf;
}

}  // namespace raw
