#include "scan/shred_scan.h"

#include <algorithm>

namespace raw {

// --- LateScanOperator --------------------------------------------------------

LateScanOperator::LateScanOperator(OperatorPtr child, RowFetcherPtr fetcher,
                                   std::string row_id_column)
    : child_(std::move(child)),
      fetcher_(std::move(fetcher)),
      row_id_column_(std::move(row_id_column)) {}

Status LateScanOperator::Open() {
  RAW_RETURN_NOT_OK(child_->Open());
  const Schema& in = child_->output_schema();
  kept_columns_.clear();
  row_id_index_ = -1;
  Schema schema;
  for (int c = 0; c < in.num_fields(); ++c) {
    if (!row_id_column_.empty() && in.field(c).name == row_id_column_) {
      row_id_index_ = c;
      continue;  // consumed, not forwarded
    }
    kept_columns_.push_back(c);
    schema.AddField(in.field(c).name, in.field(c).type);
  }
  if (!row_id_column_.empty() && row_id_index_ < 0) {
    return Status::InvalidArgument("late scan: row-id column '" +
                                   row_id_column_ + "' not found");
  }
  for (const Field& f : fetcher_->fields().fields()) {
    schema.AddField(f.name, f.type);
  }
  RAW_RETURN_NOT_OK(schema.Validate());
  output_schema_ = std::move(schema);
  return Status::OK();
}

StatusOr<ColumnBatch> LateScanOperator::Next() {
  ColumnBatch batch(child_->output_schema());
  while (true) {
    RAW_ASSIGN_OR_RETURN(batch, child_->Next());
    if (batch.end_of_stream()) return ColumnBatch::EndOfStream(output_schema_);
    if (!batch.empty()) break;  // skip zero-row data batches
  }

  RowSet rows;
  if (row_id_index_ >= 0) {
    const Column& ids = *batch.column(row_id_index_);
    rows.ids.reserve(static_cast<size_t>(batch.num_rows()));
    for (int64_t i = 0; i < batch.num_rows(); ++i) {
      rows.ids.push_back(ids.Value<int64_t>(i));
    }
  } else {
    if (!batch.has_row_ids()) {
      return Status::InvalidArgument(
          "late scan: child batch carries no row ids");
    }
    rows.ids = batch.row_ids();
  }

  RAW_ASSIGN_OR_RETURN(std::vector<ColumnPtr> fetched, fetcher_->Fetch(rows));
  values_fetched_ +=
      batch.num_rows() * static_cast<int64_t>(fetched.size());

  ColumnBatch out(output_schema_);
  for (int c : kept_columns_) out.AddColumn(batch.column(c));
  for (ColumnPtr& col : fetched) out.AddColumn(std::move(col));
  out.SetNumRows(batch.num_rows());
  if (batch.has_row_ids()) out.SetRowIds(batch.row_ids());
  return out;
}

// --- JitRowFetcher -----------------------------------------------------------

JitRowFetcher::JitRowFetcher(JitTemplateCache* cache, JitScanArgs args,
                             const PositionalMap* pmap)
    : cache_(cache), args_(std::move(args)), pmap_(pmap) {
  if (pmap_ != nullptr) {
    anchor_slot_ = pmap_->SlotFor(args_.spec.anchor_column);
  }
}

StatusOr<std::vector<ColumnPtr>> JitRowFetcher::Fetch(const RowSet& rows) {
  std::vector<ColumnPtr> out;
  if (rows.empty()) {
    for (const OutputField& f : args_.spec.outputs) {
      out.push_back(std::make_shared<Column>(f.type));
    }
    return out;
  }
  JitScanArgs args = args_;
  args.row_set = rows;
  if (args_.spec.mode == ScanMode::kByPosition &&
      args.row_set->positions.empty()) {
    if (pmap_ == nullptr || anchor_slot_ < 0) {
      return Status::InvalidArgument(
          "CSV JIT fetch requires a positional map with the anchor tracked");
    }
    RAW_RETURN_NOT_OK(FillPositions(*pmap_, anchor_slot_, &*args.row_set));
  }
  args.batch_rows = rows.size();
  JitScanOperator op(cache_, std::move(args));
  RAW_RETURN_NOT_OK(op.Open());
  RAW_ASSIGN_OR_RETURN(ColumnBatch batch, op.Next());
  if (batch.num_rows() != rows.size()) {
    return Status::Internal("JIT fetch produced wrong row count");
  }
  for (int c = 0; c < batch.num_columns(); ++c) out.push_back(batch.column(c));
  return out;
}

// --- InsituRowFetcher --------------------------------------------------------

InsituRowFetcher::InsituRowFetcher(const MmapFile* file, CsvScanSpec spec)
    : csv_file_(file), csv_spec_(std::move(spec)), is_csv_(true) {
  schema_ = SchemaForColumns(csv_spec_.file_schema, csv_spec_.outputs);
}

InsituRowFetcher::InsituRowFetcher(const BinaryReader* reader, BinScanSpec spec)
    : bin_reader_(reader), bin_spec_(std::move(spec)), is_csv_(false) {
  schema_ = SchemaForColumns(bin_reader_->layout().schema(), bin_spec_.outputs);
}

StatusOr<std::vector<ColumnPtr>> InsituRowFetcher::Fetch(const RowSet& rows) {
  std::vector<ColumnPtr> out;
  if (rows.empty()) {
    for (const Field& f : schema_.fields()) {
      out.push_back(std::make_shared<Column>(f.type));
    }
    return out;
  }
  OperatorPtr op;
  if (is_csv_) {
    CsvScanSpec spec = csv_spec_;
    spec.row_set = rows;
    spec.batch_rows = std::max<int64_t>(rows.size(), 1);
    op = std::make_unique<InsituCsvScanOperator>(csv_file_, std::move(spec));
  } else {
    BinScanSpec spec = bin_spec_;
    spec.row_set = rows;
    spec.batch_rows = std::max<int64_t>(rows.size(), 1);
    op = std::make_unique<InsituBinScanOperator>(bin_reader_, std::move(spec));
  }
  RAW_RETURN_NOT_OK(op->Open());
  RAW_ASSIGN_OR_RETURN(ColumnBatch batch, op->Next());
  if (batch.num_rows() != rows.size()) {
    return Status::Internal("in-situ fetch produced wrong row count");
  }
  for (int c = 0; c < batch.num_columns(); ++c) out.push_back(batch.column(c));
  return out;
}

// --- ParallelRowFetcher ------------------------------------------------------

ParallelRowFetcher::ParallelRowFetcher(RowFetcherPtr inner, ThreadPool* pool,
                                       int num_threads,
                                       int64_t min_chunk_rows)
    : inner_(std::move(inner)),
      pool_(pool),
      num_threads_(num_threads),
      min_chunk_rows_(std::max<int64_t>(min_chunk_rows, 1)) {}

StatusOr<std::vector<ColumnPtr>> ParallelRowFetcher::Fetch(
    const RowSet& rows) {
  const int64_t n = rows.size();
  if (pool_ == nullptr || num_threads_ <= 1 || n < 2 * min_chunk_rows_) {
    return inner_->Fetch(rows);
  }
  const int64_t target = static_cast<int64_t>(num_threads_) * 2;
  const int64_t chunk = std::max(min_chunk_rows_, (n + target - 1) / target);
  const int64_t num_chunks = (n + chunk - 1) / chunk;

  std::vector<std::vector<ColumnPtr>> partials(
      static_cast<size_t>(num_chunks));
  const bool has_positions = !rows.positions.empty();
  Status status = pool_->ParallelFor(
      num_chunks, num_threads_, [&](int64_t c) -> Status {
        const int64_t first = c * chunk;
        const int64_t count = std::min(chunk, n - first);
        RowSet slice;
        slice.ids.assign(rows.ids.begin() + first,
                         rows.ids.begin() + first + count);
        if (has_positions) {
          slice.positions.assign(rows.positions.begin() + first,
                                 rows.positions.begin() + first + count);
        }
        RAW_ASSIGN_OR_RETURN(partials[static_cast<size_t>(c)],
                             inner_->Fetch(slice));
        return Status::OK();
      });
  RAW_RETURN_NOT_OK(status);

  // Order-preserving reassembly: chunks are contiguous slices, so appending
  // per-chunk columns in chunk order rebuilds exactly the serial result.
  std::vector<ColumnPtr> out;
  const Schema& schema = fields();
  for (int f = 0; f < schema.num_fields(); ++f) {
    auto col = std::make_shared<Column>(schema.field(f).type);
    col->Reserve(n);
    for (const std::vector<ColumnPtr>& part : partials) {
      if (f >= static_cast<int>(part.size())) {
        return Status::Internal("parallel fetch chunk shape mismatch");
      }
      RAW_RETURN_NOT_OK(col->AppendColumn(*part[static_cast<size_t>(f)]));
    }
    out.push_back(std::move(col));
  }
  return out;
}

// --- CachedColumnFetcher -----------------------------------------------------

CachedColumnFetcher::CachedColumnFetcher(Schema fields,
                                         std::vector<ColumnPtr> columns)
    : schema_(std::move(fields)), columns_(std::move(columns)) {}

StatusOr<std::vector<ColumnPtr>> CachedColumnFetcher::Fetch(
    const RowSet& rows) {
  std::vector<ColumnPtr> out;
  out.reserve(columns_.size());
  for (const ColumnPtr& col : columns_) {
    out.push_back(std::make_shared<Column>(
        col->Gather(rows.ids.data(), rows.size())));
  }
  return out;
}

}  // namespace raw
