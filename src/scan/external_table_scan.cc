#include "scan/external_table_scan.h"

#include "common/datum.h"
#include "csv/fast_parse.h"

namespace raw {

ExternalTableScanOperator::ExternalTableScanOperator(
    const MmapFile* file, Schema file_schema, std::vector<int> outputs,
    CsvOptions options, int64_t batch_rows)
    : file_(file),
      file_schema_(std::move(file_schema)),
      outputs_(std::move(outputs)),
      options_(options),
      batch_rows_(batch_rows) {
  output_schema_ = SchemaForColumns(file_schema_, outputs_);
}

Status ExternalTableScanOperator::Open() {
  const char* begin = file_->data();
  end_ = begin + file_->size();
  pos_ = begin + DataStartOffset(begin, end_, options_);
  row_ = 0;
  return Status::OK();
}

StatusOr<ColumnBatch> ExternalTableScanOperator::Next() {
  ColumnBatch out(output_schema_);
  if (pos_ >= end_) return ColumnBatch::EndOfStream(output_schema_);

  const int num_fields = file_schema_.num_fields();
  std::vector<ColumnPtr> columns;
  for (int c : outputs_) {
    auto col = std::make_shared<Column>(file_schema_.field(c).type);
    col->Reserve(batch_rows_);
    columns.push_back(std::move(col));
  }
  std::vector<int64_t> row_ids;
  // Scratch tuple: the external table materializes the *entire* row as typed
  // values, whether or not the query needs them.
  std::vector<Datum> tuple(static_cast<size_t>(num_fields));

  CsvRowCursor cursor(pos_, end_, options_);
  int64_t rows = 0;
  while (rows < batch_rows_ && !cursor.AtEnd()) {
    RAW_RETURN_NOT_OK(cursor.NextRow(&field_scratch_));
    if (static_cast<int>(field_scratch_.size()) < num_fields) {
      return Status::ParseError("row " + std::to_string(row_) + " has " +
                                std::to_string(field_scratch_.size()) +
                                " fields, expected " +
                                std::to_string(num_fields));
    }
    for (int c = 0; c < num_fields; ++c) {
      const FieldRef& f = field_scratch_[static_cast<size_t>(c)];
      switch (file_schema_.field(c).type) {
        case DataType::kInt32: {
          RAW_ASSIGN_OR_RETURN(int32_t v, ParseInt32(f.data, f.size));
          tuple[static_cast<size_t>(c)] = Datum::Int32(v);
          break;
        }
        case DataType::kInt64: {
          RAW_ASSIGN_OR_RETURN(int64_t v, ParseInt64(f.data, f.size));
          tuple[static_cast<size_t>(c)] = Datum::Int64(v);
          break;
        }
        case DataType::kFloat32: {
          RAW_ASSIGN_OR_RETURN(float v, ParseFloat32(f.data, f.size));
          tuple[static_cast<size_t>(c)] = Datum::Float32(v);
          break;
        }
        case DataType::kFloat64: {
          RAW_ASSIGN_OR_RETURN(double v, ParseFloat64(f.data, f.size));
          tuple[static_cast<size_t>(c)] = Datum::Float64(v);
          break;
        }
        case DataType::kBool: {
          RAW_ASSIGN_OR_RETURN(bool v, ParseBool(f.data, f.size));
          tuple[static_cast<size_t>(c)] = Datum::Bool(v);
          break;
        }
        case DataType::kString:
          tuple[static_cast<size_t>(c)] = Datum::String(std::string(f.view()));
          break;
      }
    }
    for (size_t j = 0; j < outputs_.size(); ++j) {
      columns[j]->AppendDatum(tuple[static_cast<size_t>(outputs_[j])]);
    }
    row_ids.push_back(row_);
    ++row_;
    ++rows;
  }
  pos_ = cursor.position();

  for (ColumnPtr& col : columns) out.AddColumn(std::move(col));
  out.SetNumRows(rows);
  out.SetRowIds(std::move(row_ids));
  return out;
}

}  // namespace raw
