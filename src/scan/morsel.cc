#include "scan/morsel.h"

#include <algorithm>
#include <cstring>

#include "csv/csv_tokenizer.h"

namespace raw {

namespace {

/// Newline-aligned byte ranges over [start, size) of `data`.
std::vector<ScanRange> SplitByteSpan(const char* data, size_t size,
                                     uint64_t start, int target_morsels,
                                     uint64_t min_bytes) {
  std::vector<ScanRange> morsels;
  if (start >= size) return morsels;
  const uint64_t span = size - start;
  target_morsels = std::max(target_morsels, 1);
  uint64_t chunk = std::max<uint64_t>(
      min_bytes, span / static_cast<uint64_t>(target_morsels));
  if (chunk >= span) {
    morsels.push_back(ScanRange::Bytes(static_cast<int64_t>(start),
                                       static_cast<int64_t>(size)));
    return morsels;
  }
  uint64_t begin = start;
  while (begin < size) {
    uint64_t probe = begin + chunk;
    uint64_t end;
    if (probe >= size) {
      end = size;
    } else {
      // Align the cut to the next row boundary: one past the next newline
      // (RowEnd rides the SWAR/SIMD kernel core, see common/kernels.h).
      const char* nl = RowEnd(data + probe, data + size);
      end = nl != data + size ? static_cast<uint64_t>(nl - data) + 1 : size;
    }
    morsels.push_back(ScanRange::Bytes(static_cast<int64_t>(begin),
                                       static_cast<int64_t>(end)));
    begin = end;
  }
  return morsels;
}

}  // namespace

std::vector<ScanRange> SplitCsvByteRanges(const char* data, size_t size,
                                          const CsvOptions& options,
                                          int target_morsels,
                                          uint64_t min_bytes) {
  const uint64_t start = DataStartOffset(data, data + size, options);
  if (start >= size) return {};  // empty file / header only

  // One serial memchr pass over the region. Deliberate trade-off: it runs at
  // memory bandwidth (an order of magnitude faster than parsing the same
  // bytes, which the scan does next anyway), and a missed quote would split
  // inside a quoted row — a correctness risk no speedup justifies.
  const bool has_quotes =
      std::memchr(data + start, options.quote, size - start) != nullptr;
  if (has_quotes) {
    return {ScanRange::Bytes(static_cast<int64_t>(start),
                             static_cast<int64_t>(size))};
  }
  return SplitByteSpan(data, size, start, target_morsels, min_bytes);
}

std::vector<ScanRange> SplitJsonlByteRanges(const char* data, size_t size,
                                            int target_morsels,
                                            uint64_t min_bytes) {
  return SplitByteSpan(data, size, 0, target_morsels, min_bytes);
}

std::vector<ScanRange> SplitRowRanges(int64_t total_rows, int target_morsels,
                                      int64_t min_rows) {
  std::vector<ScanRange> morsels;
  if (total_rows <= 0) return morsels;
  target_morsels = std::max(target_morsels, 1);
  const int64_t chunk =
      std::max(min_rows, (total_rows + target_morsels - 1) / target_morsels);
  for (int64_t first = 0; first < total_rows; first += chunk) {
    morsels.push_back(
        ScanRange::Rows(first, std::min(chunk, total_rows - first)));
  }
  return morsels;
}

std::vector<ScanRange> SplitPmapRowRanges(const PositionalMap& pmap,
                                          int target_morsels,
                                          int64_t min_rows) {
  return SplitRowRanges(pmap.num_rows(), target_morsels, min_rows);
}

std::vector<ScanRange> SplitRefRowRanges(const RefBranch& row_branch,
                                         int target_morsels,
                                         int64_t min_rows) {
  std::vector<ScanRange> morsels;
  const int64_t total = row_branch.num_values();
  if (total <= 0) return morsels;
  target_morsels = std::max(target_morsels, 1);
  const int64_t chunk =
      std::max(min_rows, (total + target_morsels - 1) / target_morsels);
  int64_t begin = 0;
  for (const RefCluster& c : row_branch.clusters) {
    const int64_t cluster_end = c.first_value + c.num_values;
    // Cut at the first cluster boundary at or past the chunk target.
    if (cluster_end - begin >= chunk || cluster_end == total) {
      morsels.push_back(ScanRange::Rows(begin, cluster_end - begin));
      begin = cluster_end;
    }
  }
  if (begin < total) {  // defensive: trailing values not covered by clusters
    morsels.push_back(ScanRange::Rows(begin, total - begin));
  }
  return morsels;
}

}  // namespace raw
