#ifndef RAW_SCAN_SHRED_SCAN_H_
#define RAW_SCAN_SHRED_SCAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "scan/access_path.h"
#include "scan/insitu_bin_scan.h"
#include "scan/insitu_csv_scan.h"
#include "scan/jit_scan.h"

namespace raw {

/// The "placeholder" operator of §3 realized: a scan operator pushed *up* the
/// query plan. For every child batch it fetches additional raw-file fields,
/// but only for the rows that survived the operators below — producing
/// column *shreds* instead of full columns (§5.1, Figure 4).
///
/// Row provenance comes either from the batch's row ids (the pipelined side
/// of a join, or a plain filtered scan) or from an explicit int64 column
/// (HashJoinOperator::kBuildRowIdColumn — the pipeline-breaking side).
class LateScanOperator : public Operator {
 public:
  /// `row_id_column` empty => use batch row ids. When set, the named column
  /// provides row ids and is dropped from the output.
  LateScanOperator(OperatorPtr child, RowFetcherPtr fetcher,
                   std::string row_id_column = "");

  const Schema& output_schema() const override { return output_schema_; }
  Status Open() override;
  StatusOr<ColumnBatch> Next() override;
  Status Close() override { return child_->Close(); }
  std::string name() const override { return "LateScan"; }

  /// Total raw-file values fetched (the number that shreds keep small).
  int64_t values_fetched() const { return values_fetched_; }

 private:
  OperatorPtr child_;
  RowFetcherPtr fetcher_;
  std::string row_id_column_;
  int row_id_index_ = -1;
  Schema output_schema_;
  std::vector<int> kept_columns_;
  int64_t values_fetched_ = 0;
};

/// RowFetcher running a JIT kernel per Fetch() call (CSV by-position, binary
/// / REF by-row-index). For CSV, byte positions are resolved through the
/// given positional map at fetch time.
class JitRowFetcher : public RowFetcher {
 public:
  /// `args` must describe a selective-mode spec; its row_set is ignored
  /// (supplied per Fetch call). For CSV, `pmap` + the spec's anchor column
  /// resolve positions.
  JitRowFetcher(JitTemplateCache* cache, JitScanArgs args,
                const PositionalMap* pmap = nullptr);

  const Schema& fields() const override { return args_.output_schema; }
  StatusOr<std::vector<ColumnPtr>> Fetch(const RowSet& rows) override;

 private:
  JitTemplateCache* cache_;
  JitScanArgs args_;
  const PositionalMap* pmap_;
  int anchor_slot_ = -1;
};

/// RowFetcher using the interpreted access paths (the in-situ baseline for
/// shred experiments).
class InsituRowFetcher : public RowFetcher {
 public:
  /// CSV flavour: by-position via `pmap` from `anchor_column`.
  InsituRowFetcher(const MmapFile* file, CsvScanSpec spec);
  /// Binary flavour: by row index.
  InsituRowFetcher(const BinaryReader* reader, BinScanSpec spec);

  /// Overrides the published field schema (e.g. qualified names); must have
  /// one field per fetched column, matching types.
  void set_fields(Schema fields) { schema_ = std::move(fields); }

  const Schema& fields() const override { return schema_; }
  StatusOr<std::vector<ColumnPtr>> Fetch(const RowSet& rows) override;

 private:
  const MmapFile* csv_file_ = nullptr;
  CsvScanSpec csv_spec_;
  const BinaryReader* bin_reader_ = nullptr;
  BinScanSpec bin_spec_;
  Schema schema_;
  bool is_csv_ = false;
};

/// RowFetcher decorator that chunks big row sets across the thread pool and
/// reassembles the fetched columns in chunk order — the parallel late-scan
/// path. Chunks are contiguous slices of the request, so concatenating the
/// per-chunk results in chunk order reproduces the serial output bit for
/// bit. Small requests (under ~2 chunks) skip the pool entirely.
///
/// The inner fetcher's Fetch must be re-entrant: every fetcher in this
/// module is (each call builds a private scan operator over shared immutable
/// state), which is what makes this decorator safe.
class ParallelRowFetcher : public RowFetcher {
 public:
  static constexpr int64_t kDefaultMinChunkRows = 2048;

  ParallelRowFetcher(RowFetcherPtr inner, ThreadPool* pool, int num_threads,
                     int64_t min_chunk_rows = kDefaultMinChunkRows);

  const Schema& fields() const override { return inner_->fields(); }
  StatusOr<std::vector<ColumnPtr>> Fetch(const RowSet& rows) override;

 private:
  RowFetcherPtr inner_;
  ThreadPool* pool_;
  int num_threads_;
  int64_t min_chunk_rows_;
};

/// RowFetcher gathering from already-materialized full columns (cache hits:
/// the shred pool or a loaded table). `columns` must be full-length.
class CachedColumnFetcher : public RowFetcher {
 public:
  CachedColumnFetcher(Schema fields, std::vector<ColumnPtr> columns);

  const Schema& fields() const override { return schema_; }
  StatusOr<std::vector<ColumnPtr>> Fetch(const RowSet& rows) override;

 private:
  Schema schema_;
  std::vector<ColumnPtr> columns_;
};

}  // namespace raw

#endif  // RAW_SCAN_SHRED_SCAN_H_
