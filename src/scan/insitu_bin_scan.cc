#include "scan/insitu_bin_scan.h"

#include <algorithm>

namespace raw {

InsituBinScanOperator::InsituBinScanOperator(const BinaryReader* reader,
                                             BinScanSpec spec)
    : reader_(reader), spec_(std::move(spec)) {
  output_schema_ = SchemaForColumns(reader_->layout().schema(), spec_.outputs);
}

Status InsituBinScanOperator::Open() {
  cursor_ = 0;
  if (spec_.outputs.empty()) {
    return Status::InvalidArgument("binary scan needs at least one output");
  }
  if (spec_.range.unit != ScanRange::Unit::kRows) {
    return Status::InvalidArgument("binary scan range must be row-addressed");
  }
  if (spec_.range.begin < 0 || spec_.range.begin > reader_->num_rows()) {
    return Status::InvalidArgument("binary scan range start out of bounds");
  }
  for (int c : spec_.outputs) {
    if (c < 0 || c >= reader_->layout().num_columns()) {
      return Status::InvalidArgument("binary scan output column out of range");
    }
  }
  return Status::OK();
}

StatusOr<ColumnBatch> InsituBinScanOperator::Next() {
  ColumnBatch out(output_schema_);
  int64_t total;
  if (spec_.row_set.has_value()) {
    total = spec_.row_set->size();
  } else {
    total = reader_->num_rows() - spec_.range.begin;
    if (spec_.range.bounded()) total = std::min(total, spec_.range.count());
  }
  if (cursor_ >= total) return ColumnBatch::EndOfStream(output_schema_);
  if (spec_.profile) spec_.profile->main_loop.Start();

  const int64_t take = std::min(spec_.batch_rows, total - cursor_);
  const BinaryLayout& layout = reader_->layout();

  std::vector<ColumnPtr> columns;
  std::vector<int64_t> row_ids;
  row_ids.reserve(static_cast<size_t>(take));
  for (int64_t i = 0; i < take; ++i) {
    int64_t row = spec_.row_set.has_value()
                      ? spec_.row_set->ids[static_cast<size_t>(cursor_ + i)]
                      : spec_.range.begin + cursor_ + i;
    row_ids.push_back(row);
  }
  if (spec_.profile) {
    spec_.profile->main_loop.Stop();
    spec_.profile->conversion.Start();
  }
  // Per-field interpreted load: layout consulted and type switched per value.
  for (int c : spec_.outputs) {
    DataType type = layout.schema().field(c).type;
    auto col = std::make_shared<Column>(type);
    col->Reserve(take);
    for (int64_t i = 0; i < take; ++i) {
      int64_t row = row_ids[static_cast<size_t>(i)];
      switch (type) {
        case DataType::kInt32:
          col->Append<int32_t>(reader_->Value<int32_t>(row, c));
          break;
        case DataType::kInt64:
          col->Append<int64_t>(reader_->Value<int64_t>(row, c));
          break;
        case DataType::kFloat32:
          col->Append<float>(reader_->Value<float>(row, c));
          break;
        case DataType::kFloat64:
          col->Append<double>(reader_->Value<double>(row, c));
          break;
        case DataType::kBool:
          col->Append<bool>(reader_->Value<char>(row, c) != 0);
          break;
        case DataType::kString:
          return Status::Internal("binary format has no string columns");
      }
    }
    columns.push_back(std::move(col));
  }
  if (spec_.profile) {
    spec_.profile->conversion.Stop();
    spec_.profile->build_columns.Start();
  }
  for (ColumnPtr& col : columns) out.AddColumn(std::move(col));
  out.SetNumRows(take);
  out.SetRowIds(std::move(row_ids));
  cursor_ += take;
  if (spec_.profile) {
    spec_.profile->build_columns.Stop();
    spec_.profile->rows += take;
  }
  return out;
}

}  // namespace raw
