#ifndef RAW_SCAN_REF_SCAN_H_
#define RAW_SCAN_REF_SCAN_H_

#include <optional>
#include <string>
#include <vector>

#include "eventsim/ref_reader.h"
#include "format/format.h"
#include "scan/access_path.h"

namespace raw {

/// Relational views over an REF event file (the paper's Figure 13 mapping):
///  * the event table   (eventID int64, runNumber int32), one row per event;
///  * a particle table  (eventID int64, pt/eta/phi float32) per group, one
///    row per particle, eventID derived from the nesting structure.
struct RefScanSpec {
  /// -1 => event table; otherwise kMuon / kElectron / kJet particle table.
  int group = -1;
  /// Field subset. Event table: {"eventID","runNumber"}; particle tables:
  /// any of {"eventID","pt","eta","phi"}. Empty => all fields.
  std::vector<std::string> fields;
  int64_t batch_rows = kDefaultBatchRows;
  /// Row-addressed morsel window for sequential scans (rows are event
  /// indices, or flat particle indices; default: the whole table). Emitted
  /// row ids stay file-global, so the parallel driver needs no rebasing.
  /// Ignored when `row_set` is present.
  ScanRange range;
  /// Explicit rows (event indices, or flat particle indices); id-based
  /// access instead of a full scan.
  std::optional<RowSet> row_set;
};

/// Interpreted sequential/id-based scan reading branches in bulk through the
/// REF reader API (the in-situ baseline for REF; the JIT variant generates
/// code making the same API calls, see jit/ref_codegen.cc).
class RefTableScanOperator : public Operator {
 public:
  RefTableScanOperator(RefReader* reader, RefScanSpec spec);

  const Schema& output_schema() const override { return output_schema_; }
  Status Open() override;
  StatusOr<ColumnBatch> Next() override;
  std::string name() const override { return "RefTableScan"; }

 private:
  StatusOr<ColumnPtr> ReadFieldColumn(const std::string& field, int64_t first,
                                      int64_t count,
                                      const std::vector<int64_t>* explicit_rows);

  RefReader* reader_;
  RefScanSpec spec_;
  Schema output_schema_;
  int64_t cursor_ = 0;
  int64_t total_rows_ = 0;
};

/// Resolves the REF branch index for a (group, field) pair; group -1 selects
/// the event branches ("eventID" -> event/id, "runNumber" -> event/run).
StatusOr<int> RefBranchFor(const RefReader& reader, int group,
                           const std::string& field);

}  // namespace raw

#endif  // RAW_SCAN_REF_SCAN_H_
