#ifndef RAW_SCAN_FUSED_PIPELINE_H_
#define RAW_SCAN_FUSED_PIPELINE_H_

#include <memory>
#include <optional>
#include <vector>

#include "columnar/aggregate.h"
#include "common/mmap_file.h"
#include "eventsim/ref_reader.h"
#include "jit/jit_abi.h"
#include "jit/template_cache.h"
#include "scan/access_path.h"
#include "scan/scan_profile.h"

namespace raw {

/// Everything a fused-pipeline operator instance needs beyond its
/// PipelineSpec — the fused counterpart of JitScanArgs. The spec describes
/// *what code to generate*; these args describe *what data to run it over*.
struct FusedPipelineArgs {
  PipelineSpec spec;
  /// kProject: qualified output field names, parallel to spec.projections.
  /// kAggregate: must equal FusedAggPartialSchema(spec.aggs).
  Schema output_schema;

  /// CSV / binary: the memory-mapped raw file.
  const MmapFile* file = nullptr;
  /// Binary / REF: total (morsel-end) row count; -1 derives it from the
  /// window size (binary) or the reader (REF).
  int64_t total_rows = -1;

  /// REF: the reader whose I/O API the generated code calls.
  RefReader* ref_reader = nullptr;

  /// CSV by-position input (positions filled before Open()).
  std::optional<RowSet> row_set;

  /// Binary morsel window: restricts the scan to bytes
  /// [window_begin, window_end) of the file (window_end == 0 => whole file).
  uint64_t window_begin = 0;
  uint64_t window_end = 0;

  /// Global row id of the window's first row. Fused kernels emit global row
  /// ids themselves (dense columns are indexed by global id inside the
  /// kernel), so the parallel driver must NOT rebase them again.
  int64_t dense_row_base = 0;

  /// REF morsels: scan rows [first_row, total_rows).
  int64_t first_row = 0;

  /// Parallel to spec.inputs: the cached full column for dense inputs
  /// (shred-cache hits), null for file inputs.
  std::vector<ColumnPtr> dense_columns;

  int64_t batch_rows = kDefaultBatchRows;
  ScanProfile* profile = nullptr;
};

/// Volcano operator driving one fused scan→filter→project→aggregate kernel
/// over one morsel. Compiles (or fetches from the template cache) at Open().
///
/// kProject: emits filtered, projected rows batch by batch; the kernel loops
/// internally, so a 0-row return means end of stream.
/// kAggregate: one kernel invocation folds the whole morsel into the context
/// agg arrays; the operator then emits exactly one partial-state row
/// (FusedAggPartialSchema) that FusedAggFinalizeOperator merges downstream.
class FusedPipelineOperator : public Operator {
 public:
  FusedPipelineOperator(JitTemplateCache* cache, FusedPipelineArgs args);

  const Schema& output_schema() const override { return args_.output_schema; }
  Status Open() override;
  StatusOr<ColumnBatch> Next() override;
  std::string name() const override { return "FusedPipeline"; }

  /// Compilation time incurred by this operator's Open() (0 on cache hit).
  double compile_seconds() const { return compile_seconds_; }

 private:
  static int32_t RefReadRangeTrampoline(void* reader, int32_t branch,
                                        int64_t first, int64_t count,
                                        void* out);

  StatusOr<ColumnBatch> NextProject();
  StatusOr<ColumnBatch> NextAggregate();

  JitTemplateCache* cache_;
  FusedPipelineArgs args_;
  CompiledKernel kernel_;
  RawJitContext ctx_ = {};
  double compile_seconds_ = 0;
  bool eof_ = false;
  std::vector<const void*> dense_ptr_scratch_;
  std::vector<int64_t> agg_count_;
  std::vector<double> agg_dacc_;
  std::vector<int64_t> agg_iacc_;
  std::vector<uint8_t> agg_init_;
  std::vector<uint8_t> sel_mask_scratch_;
  std::vector<int64_t> row_id_scratch_;
  std::vector<void*> out_ptr_scratch_;
  /// REF aggregate kernels decode branch ranges into these host-owned
  /// buffers (exposed through ctx.out_columns).
  std::vector<ColumnPtr> ref_decode_scratch_;
};

/// Merges the per-morsel partial rows a fused aggregate pipeline emits into
/// the single final row, with the schema and bit-exact values
/// AggregateOperator would have produced: a fresh accumulator per aggregate,
/// folded left-to-right in morsel order via AggAccumulator::Merge.
class FusedAggFinalizeOperator : public Operator {
 public:
  /// `input_types` is parallel to `specs`: the aggregated column's type
  /// (kInt64 for COUNT(*)), exactly what AggregateOperator derives from its
  /// child schema.
  FusedAggFinalizeOperator(OperatorPtr child, std::vector<AggSpec> specs,
                           std::vector<DataType> input_types);

  const Schema& output_schema() const override { return output_schema_; }
  Status Open() override;
  StatusOr<ColumnBatch> Next() override;
  Status Close() override { return child_->Close(); }
  std::string name() const override { return "FusedAggFinalize"; }

 private:
  OperatorPtr child_;
  std::vector<AggSpec> specs_;
  std::vector<DataType> input_types_;
  Schema output_schema_;
  bool done_ = false;
};

}  // namespace raw

#endif  // RAW_SCAN_FUSED_PIPELINE_H_
