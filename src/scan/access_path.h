#ifndef RAW_SCAN_ACCESS_PATH_H_
#define RAW_SCAN_ACCESS_PATH_H_

#include <memory>
#include <string>
#include <vector>

#include "columnar/column.h"
#include "columnar/operator.h"
#include "common/schema.h"
#include "csv/positional_map.h"

namespace raw {

/// The access-path families the engine (and the paper's experiments) compare.
enum class AccessPathKind {
  kExternalTable,  // re-parse + convert everything, every query (§2.2)
  kInSitu,         // general-purpose interpreted scan + positional map (§2.3)
  kJit,            // generated, file/query-specific scan (§4)
  kLoaded,         // pre-loaded columnar table ("DBMS", §2.1)
};

std::string_view AccessPathKindToString(AccessPathKind kind);

/// An explicit set of rows for selective (column-shred) access: original row
/// ids plus, for CSV, the byte position of the anchor column of each row.
struct RowSet {
  std::vector<int64_t> ids;
  std::vector<uint64_t> positions;  // empty for formats with computed offsets

  int64_t size() const { return static_cast<int64_t>(ids.size()); }
  bool empty() const { return ids.empty(); }
};

/// Fills `out->positions` from a positional map: for each row id, the byte
/// position of tracked slot `slot`.
Status FillPositions(const PositionalMap& pmap, int slot, RowSet* out);

/// Fetches the values of a fixed set of fields for explicit row lists —
/// the engine-facing face of a pushed-up (late) scan operator. Implemented
/// by the per-format access paths in this module.
class RowFetcher {
 public:
  virtual ~RowFetcher() = default;

  /// Output schema of the fetched fields (one column each).
  virtual const Schema& fields() const = 0;

  /// Materializes the fields for `rows`, in order. For CSV, `rows.positions`
  /// must be pre-filled (see FillPositions).
  virtual StatusOr<std::vector<ColumnPtr>> Fetch(const RowSet& rows) = 0;
};

using RowFetcherPtr = std::unique_ptr<RowFetcher>;

/// Builds an output schema for a subset of a file schema, one field per
/// requested column index.
Schema SchemaForColumns(const Schema& file_schema,
                        const std::vector<int>& columns);

}  // namespace raw

#endif  // RAW_SCAN_ACCESS_PATH_H_
