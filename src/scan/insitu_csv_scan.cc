#include "scan/insitu_csv_scan.h"

#include <algorithm>
#include <cstring>

#include "csv/fast_parse.h"

namespace raw {

InsituCsvScanOperator::InsituCsvScanOperator(const MmapFile* file,
                                             CsvScanSpec spec)
    : InsituCsvScanOperator(file->data(), file->size(), std::move(spec)) {}

InsituCsvScanOperator::InsituCsvScanOperator(const char* data, size_t size,
                                             CsvScanSpec spec)
    : data_(data), size_(size), spec_(std::move(spec)) {
  output_schema_ = SchemaForColumns(spec_.file_schema, spec_.outputs);
}

Status InsituCsvScanOperator::Open() {
  const char* begin = data_;
  end_ = begin + size_;
  pos_ = begin + DataStartOffset(begin, end_, spec_.options);
  if (!spec_.range.whole()) {
    if (spec_.range.unit != ScanRange::Unit::kBytes) {
      return Status::InvalidArgument("CSV scan range must be byte-addressed");
    }
    const int64_t size = static_cast<int64_t>(size_);
    const int64_t range_end = spec_.range.bounded() ? spec_.range.end : size;
    if (spec_.range.begin < 0 || range_end > size ||
        spec_.range.begin > range_end) {
      return Status::InvalidArgument("CSV scan byte range out of bounds");
    }
    pos_ = begin + spec_.range.begin;
    end_ = begin + range_end;
  }
  row_ = 0;
  input_cursor_ = 0;
  if (spec_.outputs.empty()) {
    return Status::InvalidArgument("CSV scan needs at least one output");
  }
  if (!std::is_sorted(spec_.outputs.begin(), spec_.outputs.end())) {
    return Status::InvalidArgument("CSV scan outputs must be ascending");
  }
  for (int c : spec_.outputs) {
    if (c < 0 || c >= spec_.file_schema.num_fields()) {
      return Status::InvalidArgument("CSV scan output column out of range");
    }
  }
  refs_.assign(spec_.outputs.size(), {});
  slot_lookup_.assign(static_cast<size_t>(spec_.file_schema.num_fields()), -1);
  if (spec_.build_pmap != nullptr) {
    for (int c = 0; c < spec_.file_schema.num_fields(); ++c) {
      slot_lookup_[static_cast<size_t>(c)] = spec_.build_pmap->SlotFor(c);
    }
  }
  if (spec_.use_pmap != nullptr) {
    anchor_slot_ = spec_.use_pmap->SlotFor(spec_.anchor_column);
    if (anchor_slot_ < 0) {
      return Status::InvalidArgument(
          "anchor column is not tracked by the positional map");
    }
    if (spec_.anchor_column > spec_.outputs.front()) {
      return Status::InvalidArgument(
          "anchor column must not exceed the first output column");
    }
    if (spec_.row_set.has_value() && spec_.row_set->positions.empty()) {
      RAW_RETURN_NOT_OK(
          FillPositions(*spec_.use_pmap, anchor_slot_, &*spec_.row_set));
    }
  }
  return Status::OK();
}

namespace {

// True when the field's bytes convert cleanly to `type`.
bool FieldConverts(DataType type, const FieldRef& f) {
  switch (type) {
    case DataType::kInt32:
      return ParseInt32(f.data, f.size).ok();
    case DataType::kInt64:
      return ParseInt64(f.data, f.size).ok();
    case DataType::kFloat32:
      return ParseFloat32(f.data, f.size).ok();
    case DataType::kFloat64:
      return ParseFloat64(f.data, f.size).ok();
    case DataType::kBool:
      return ParseBool(f.data, f.size).ok();
    case DataType::kString:
      return true;
  }
  return true;
}

// Appends the column type's zero value (the null-fill substitute).
void AppendZeroValue(DataType type, Column* col) {
  switch (type) {
    case DataType::kInt32:
      col->Append<int32_t>(0);
      break;
    case DataType::kInt64:
      col->Append<int64_t>(0);
      break;
    case DataType::kFloat32:
      col->Append<float>(0.0f);
      break;
    case DataType::kFloat64:
      col->Append<double>(0.0);
      break;
    case DataType::kBool:
      col->Append<bool>(false);
      break;
    case DataType::kString:
      col->AppendString(std::string());
      break;
  }
}

}  // namespace

Status InsituCsvScanOperator::ConvertAndBuild(
    const std::vector<std::vector<FieldRef>>& refs, int64_t rows,
    ColumnBatch* out, std::vector<int64_t>* row_ids) {
  // Data-type conversion: the general-purpose scan consults the catalog type
  // of every field and dispatches through a switch — the exact pattern the
  // paper's pseudo-code shows for interpreted scans (§4.1).
  if (spec_.profile) spec_.profile->conversion.Start();

  // Tolerant policies pre-validate row-wise so a malformed row is dropped or
  // null-filled coherently across every output column (a row, not a cell, is
  // the unit of damage in a hostile file). The strict default skips this
  // pass entirely.
  std::vector<uint8_t> bad;
  int64_t bad_rows = 0;
  if (spec_.policy != MalformedRowPolicy::kFail && rows > 0) {
    bad.assign(static_cast<size_t>(rows), 0);
    for (size_t j = 0; j < spec_.outputs.size(); ++j) {
      DataType type = spec_.file_schema.field(spec_.outputs[j]).type;
      if (type == DataType::kString) continue;
      const std::vector<FieldRef>& fr = refs[j];
      for (int64_t i = 0; i < rows; ++i) {
        if (!bad[static_cast<size_t>(i)] &&
            !FieldConverts(type, fr[static_cast<size_t>(i)])) {
          bad[static_cast<size_t>(i)] = 1;
          ++bad_rows;
        }
      }
    }
  }

  const bool skip = spec_.policy == MalformedRowPolicy::kSkip && bad_rows > 0;
  const bool null_fill =
      spec_.policy == MalformedRowPolicy::kNullFill && bad_rows > 0;
  const int64_t out_rows = skip ? rows - bad_rows : rows;

  std::vector<ColumnPtr> columns;
  columns.reserve(refs.size());
  for (size_t j = 0; j < spec_.outputs.size(); ++j) {
    DataType type =
        spec_.file_schema.field(spec_.outputs[j]).type;
    auto col = std::make_shared<Column>(type);
    col->Reserve(out_rows);
    const std::vector<FieldRef>& fr = refs[j];
    for (int64_t i = 0; i < rows; ++i) {
      if (!bad.empty() && bad[static_cast<size_t>(i)]) {
        if (skip) continue;
        if (null_fill) {
          AppendZeroValue(type, col.get());
          continue;
        }
      }
      const FieldRef& f = fr[static_cast<size_t>(i)];
      switch (type) {
        case DataType::kInt32: {
          RAW_ASSIGN_OR_RETURN(int32_t v, ParseInt32(f.data, f.size));
          col->Append<int32_t>(v);
          break;
        }
        case DataType::kInt64: {
          RAW_ASSIGN_OR_RETURN(int64_t v, ParseInt64(f.data, f.size));
          col->Append<int64_t>(v);
          break;
        }
        case DataType::kFloat32: {
          RAW_ASSIGN_OR_RETURN(float v, ParseFloat32(f.data, f.size));
          col->Append<float>(v);
          break;
        }
        case DataType::kFloat64: {
          RAW_ASSIGN_OR_RETURN(double v, ParseFloat64(f.data, f.size));
          col->Append<double>(v);
          break;
        }
        case DataType::kBool: {
          RAW_ASSIGN_OR_RETURN(bool v, ParseBool(f.data, f.size));
          col->Append<bool>(v);
          break;
        }
        case DataType::kString:
          col->AppendString(std::string(f.view()));
          break;
      }
    }
    columns.push_back(std::move(col));
  }

  if (skip && row_ids != nullptr) {
    size_t kept = 0;
    for (int64_t i = 0; i < rows; ++i) {
      if (!bad[static_cast<size_t>(i)]) {
        (*row_ids)[kept++] = (*row_ids)[static_cast<size_t>(i)];
      }
    }
    row_ids->resize(kept);
  }
  if (spec_.health != nullptr) {
    if (skip) {
      spec_.health->rows_skipped.fetch_add(bad_rows, std::memory_order_relaxed);
    } else if (null_fill) {
      spec_.health->rows_nulled.fetch_add(bad_rows, std::memory_order_relaxed);
    }
  }

  if (spec_.profile) {
    spec_.profile->conversion.Stop();
    spec_.profile->build_columns.Start();
  }
  for (ColumnPtr& col : columns) out->AddColumn(std::move(col));
  out->SetNumRows(out_rows);
  if (spec_.profile) spec_.profile->build_columns.Stop();
  return Status::OK();
}

StatusOr<ColumnBatch> InsituCsvScanOperator::NextSequentialQuoted() {
  // Quoted files: fields may hide delimiters and newlines, so the row walk
  // steps through every field with the quote-aware tokenizer instead of
  // stopping at the last needed column and memchr-ing for '\n'.
  ColumnBatch out(output_schema_);
  if (pos_ >= end_) return ColumnBatch::EndOfStream(output_schema_);
  if (spec_.profile) spec_.profile->parsing.Start();

  const char delim = spec_.options.delimiter;
  const char quote = spec_.options.quote;
  const int num_outputs = static_cast<int>(spec_.outputs.size());
  for (auto& v : refs_) v.clear();
  row_id_scratch_.clear();

  PositionalMap* pmap = spec_.build_pmap;
  const int num_slots = pmap != nullptr ? pmap->num_tracked() : 0;
  std::vector<uint64_t> slot_positions(
      static_cast<size_t>(std::max(num_slots, 1)));
  const int num_fields = spec_.file_schema.num_fields();

  int64_t rows = 0;
  const char* base = data_;
  while (rows < spec_.batch_rows && pos_ < end_) {
    const char* p = pos_;
    const uint64_t row_start = static_cast<uint64_t>(p - base);
    int out_idx = 0;
    int col = 0;
    while (true) {
      if (col < num_fields) {
        int slot = slot_lookup_[static_cast<size_t>(col)];
        if (slot >= 0) {
          slot_positions[static_cast<size_t>(slot)] =
              static_cast<uint64_t>(p - base);
        }
      }
      FieldRef field = NextFieldQuoted(&p, end_, delim, quote);
      if (out_idx < num_outputs &&
          spec_.outputs[static_cast<size_t>(out_idx)] == col) {
        refs_[static_cast<size_t>(out_idx)].push_back(field);
        ++out_idx;
      }
      if (p < end_ && *p == delim) {
        ++p;
        ++col;
        continue;
      }
      break;  // row terminator or EOF
    }
    // A row cut off by EOF (truncated file) ends before the columns past the
    // cut; pad them as empty fields so ConvertAndBuild sees a rectangular
    // batch (empty fields fail conversion → the malformed-row policy rules).
    while (out_idx < num_outputs) {
      refs_[static_cast<size_t>(out_idx++)].push_back(FieldRef{"", 0});
    }
    pos_ = SkipRowEnd(p, end_);
    if (pmap != nullptr) pmap->AppendRow(row_start, slot_positions.data());
    row_id_scratch_.push_back(row_);
    ++row_;
    ++rows;
  }
  if (spec_.profile) spec_.profile->parsing.Stop();

  RAW_RETURN_NOT_OK(ConvertAndBuild(refs_, rows, &out, &row_id_scratch_));
  out.SetRowIds(row_id_scratch_);
  if (spec_.profile) spec_.profile->rows += rows;
  return out;
}

StatusOr<ColumnBatch> InsituCsvScanOperator::NextSequential() {
  if (spec_.quoted) return NextSequentialQuoted();
  ColumnBatch out(output_schema_);
  if (pos_ >= end_) return ColumnBatch::EndOfStream(output_schema_);
  if (spec_.profile) spec_.profile->main_loop.Start();

  const char delim = spec_.options.delimiter;
  const int num_outputs = static_cast<int>(spec_.outputs.size());
  for (auto& v : refs_) v.clear();
  row_id_scratch_.clear();

  PositionalMap* pmap = spec_.build_pmap;
  const int num_slots = pmap != nullptr ? pmap->num_tracked() : 0;
  std::vector<uint64_t> slot_positions(static_cast<size_t>(
      std::max(num_slots, 1)));

  int last_needed = spec_.outputs.back();
  if (pmap != nullptr && !pmap->tracked_columns().empty()) {
    last_needed = std::max(last_needed, pmap->tracked_columns().back());
  }

  if (spec_.profile) {
    spec_.profile->main_loop.Stop();
    spec_.profile->parsing.Start();
  }
  int64_t rows = 0;
  const char* base = data_;
  while (rows < spec_.batch_rows && pos_ < end_) {
    const char* p = pos_;
    const uint64_t row_start = static_cast<uint64_t>(p - base);
    int out_idx = 0;
    // The tell-tale general-purpose column loop: iterate every column up to
    // the last one needed, testing per column whether to track / read it.
    for (int col = 0; col <= last_needed && p < end_; ++col) {
      int slot = slot_lookup_[static_cast<size_t>(col)];
      if (slot >= 0) {
        slot_positions[static_cast<size_t>(slot)] =
            static_cast<uint64_t>(p - base);
      }
      const char* field_end = FieldEnd(p, end_, delim);
      if (out_idx < num_outputs && spec_.outputs[static_cast<size_t>(out_idx)] == col) {
        refs_[static_cast<size_t>(out_idx)].push_back(
            FieldRef{p, static_cast<int32_t>(field_end - p)});
        ++out_idx;
      }
      p = field_end;
      if (p < end_ && *p == delim) ++p;
    }
    // Truncated tail row: pad outputs past the EOF cut (see the quoted walk).
    while (out_idx < num_outputs) {
      refs_[static_cast<size_t>(out_idx++)].push_back(FieldRef{"", 0});
    }
    // Skip the remainder of the row.
    const char* nl = RowEnd(p, end_);
    pos_ = (nl != end_) ? nl + 1 : end_;
    if (pmap != nullptr) pmap->AppendRow(row_start, slot_positions.data());
    row_id_scratch_.push_back(row_);
    ++row_;
    ++rows;
  }
  if (spec_.profile) spec_.profile->parsing.Stop();

  RAW_RETURN_NOT_OK(ConvertAndBuild(refs_, rows, &out, &row_id_scratch_));
  out.SetRowIds(row_id_scratch_);
  if (spec_.profile) spec_.profile->rows += rows;
  return out;
}

StatusOr<ColumnBatch> InsituCsvScanOperator::NextPositional() {
  ColumnBatch out(output_schema_);
  const PositionalMap& pmap = *spec_.use_pmap;
  const int64_t total = spec_.row_set.has_value()
                            ? spec_.row_set->size()
                            : pmap.num_rows();
  if (input_cursor_ >= total) return ColumnBatch::EndOfStream(output_schema_);
  if (spec_.profile) spec_.profile->parsing.Start();

  const char delim = spec_.options.delimiter;
  const char quote = spec_.options.quote;
  const bool quoted = spec_.quoted;
  const char* base = data_;
  for (auto& v : refs_) v.clear();
  row_id_scratch_.clear();

  int64_t rows = 0;
  while (rows < spec_.batch_rows && input_cursor_ < total) {
    int64_t row_id;
    uint64_t position;
    if (spec_.row_set.has_value()) {
      row_id = spec_.row_set->ids[static_cast<size_t>(input_cursor_)];
      position = spec_.row_set->positions[static_cast<size_t>(input_cursor_)];
    } else {
      row_id = input_cursor_;
      position = pmap.Position(input_cursor_, anchor_slot_);
    }
    if (position >= size_) {
      // The published map outlived the bytes it indexes: the file shrank
      // after the map was built. A typed error, never an out-of-range read.
      if (spec_.health != nullptr) {
        spec_.health->io_faults.fetch_add(1, std::memory_order_relaxed);
      }
      if (spec_.profile) spec_.profile->parsing.Stop();
      return Status::DataCorruption(
          "positional map offset " + std::to_string(position) +
          " for row " + std::to_string(row_id) +
          " lies beyond the file's " + std::to_string(size_) +
          " bytes (file truncated since the map was built?)");
    }
    const char* p = base + position;
    int col_cursor = spec_.anchor_column;
    for (size_t j = 0; j < spec_.outputs.size(); ++j) {
      const int target = spec_.outputs[j];
      // Incremental parse from the nearest known position (§2.3): skip
      // (target - cursor) fields, generic loop, branch per character.
      while (col_cursor < target) {
        p = quoted ? SkipFieldQuoted(p, end_, delim, quote)
                   : SkipField(p, end_, delim);
        ++col_cursor;
      }
      const char* next = p;
      FieldRef field;
      if (quoted) {
        field = NextFieldQuoted(&next, end_, delim, quote);
      } else {
        const char* field_end = FieldEnd(p, end_, delim);
        field = FieldRef{p, static_cast<int32_t>(field_end - p)};
        next = field_end;
      }
      refs_[j].push_back(field);
      if (j + 1 < spec_.outputs.size()) {
        p = next;
        if (p < end_ && *p == delim) ++p;
        ++col_cursor;
      }
    }
    row_id_scratch_.push_back(row_id);
    ++input_cursor_;
    ++rows;
  }
  if (spec_.profile) spec_.profile->parsing.Stop();

  RAW_RETURN_NOT_OK(ConvertAndBuild(refs_, rows, &out, &row_id_scratch_));
  out.SetRowIds(row_id_scratch_);
  if (spec_.profile) spec_.profile->rows += rows;
  return out;
}

StatusOr<ColumnBatch> InsituCsvScanOperator::Next() {
  if (spec_.use_pmap != nullptr) return NextPositional();
  return NextSequential();
}

}  // namespace raw
