#include "engine/sql/lexer.h"

#include <cctype>
#include <set>

#include "common/string_util.h"

namespace raw::sql {

namespace {
const std::set<std::string>& Keywords() {
  static const auto* kKeywords = new std::set<std::string>{
      "SELECT", "FROM", "WHERE",  "AND",   "JOIN",  "ON",  "GROUP",
      "BY",     "LIMIT", "AS",    "MAX",   "MIN",   "SUM", "COUNT",
      "AVG",    "INNER", "ORDER", "ASC",   "DESC",  "EXPLAIN"};
  return *kKeywords;
}
}  // namespace

StatusOr<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      std::string word = input.substr(start, i - start);
      std::string upper = word;
      for (char& ch : upper) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      if (Keywords().count(upper) > 0) {
        token.type = TokenType::kKeyword;
        token.text = upper;
      } else {
        token.type = TokenType::kIdentifier;
        token.text = word;
      }
      tokens.push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])) &&
         (tokens.empty() || tokens.back().type == TokenType::kSymbol ||
          tokens.back().type == TokenType::kKeyword))) {
      size_t start = i;
      if (c == '-') ++i;
      bool is_float = false;
      while (i < n) {
        char d = input[i];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++i;
        } else if (d == '.' && !is_float) {
          is_float = true;
          ++i;
        } else if ((d == 'e' || d == 'E') && i + 1 < n) {
          is_float = true;
          ++i;
          if (input[i] == '+' || input[i] == '-') ++i;
        } else {
          break;
        }
      }
      token.type = is_float ? TokenType::kFloat : TokenType::kInteger;
      token.text = input.substr(start, i - start);
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '\'') {
      size_t start = ++i;
      std::string value;
      while (i < n && input[i] != '\'') {
        value += input[i];
        ++i;
      }
      if (i >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start - 1));
      }
      ++i;  // closing quote
      token.type = TokenType::kString;
      token.text = std::move(value);
      tokens.push_back(std::move(token));
      continue;
    }
    // Multi-char operators first.
    if (i + 1 < n) {
      std::string two = input.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "!=" || two == "<>") {
        token.type = TokenType::kSymbol;
        token.text = two == "<>" ? "!=" : two;
        tokens.push_back(std::move(token));
        i += 2;
        continue;
      }
    }
    if (std::string("(),.*=<>;?").find(c) != std::string::npos) {
      token.type = TokenType::kSymbol;
      token.text = std::string(1, c);
      tokens.push_back(std::move(token));
      ++i;
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(i));
  }
  tokens.push_back(Token{TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace raw::sql
