#ifndef RAW_ENGINE_SQL_PARSER_H_
#define RAW_ENGINE_SQL_PARSER_H_

#include <string>

#include "engine/logical_plan.h"

namespace raw::sql {

/// Parses the supported SQL subset into a QuerySpec:
///
///   SELECT <item> [, <item>]*
///   FROM <table> [JOIN <table> ON <ref> = <ref>]
///   [WHERE <ref> <op> <literal> [AND ...]]
///   [GROUP BY <ref> [, <ref>]*]
///   [LIMIT <n>]
///
/// where <item> is a column reference or MAX/MIN/SUM/AVG/COUNT over one
/// column (COUNT(*) allowed), optionally aliased with AS.
StatusOr<QuerySpec> Parse(const std::string& sql);

}  // namespace raw::sql

#endif  // RAW_ENGINE_SQL_PARSER_H_
