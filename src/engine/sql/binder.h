#ifndef RAW_ENGINE_SQL_BINDER_H_
#define RAW_ENGINE_SQL_BINDER_H_

#include "engine/catalog.h"
#include "engine/logical_plan.h"

namespace raw::sql {

/// Semantic checks + name qualification against the catalog: verifies every
/// referenced table exists, qualifies unqualified column references, coerces
/// predicate literals to the column's type (so the planner's typed fast
/// paths apply), and validates aggregate input types.
Status Bind(Catalog* catalog, QuerySpec* spec);

}  // namespace raw::sql

#endif  // RAW_ENGINE_SQL_BINDER_H_
