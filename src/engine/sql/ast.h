#ifndef RAW_ENGINE_SQL_AST_H_
#define RAW_ENGINE_SQL_AST_H_

// The SQL front end reuses QuerySpec as its AST: the supported subset
// (single table or one equi-join, conjunctive column-vs-literal predicates,
// aggregates, GROUP BY, LIMIT) maps 1:1 onto the logical plan.

#include "engine/logical_plan.h"

#endif  // RAW_ENGINE_SQL_AST_H_
