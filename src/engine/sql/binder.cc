#include "engine/sql/binder.h"

namespace raw::sql {

namespace {

Status QualifyRef(const std::vector<TableEntry*>& tables, ColumnRefSpec* ref,
                  DataType* type_out) {
  TableEntry* found = nullptr;
  DataType type = DataType::kInt32;
  for (TableEntry* entry : tables) {
    if (!ref->table.empty() && entry->info.name != ref->table) continue;
    int idx = entry->info.schema.FieldIndex(ref->column);
    if (idx < 0) continue;
    if (found != nullptr) {
      return Status::InvalidArgument("ambiguous column '" + ref->column + "'");
    }
    found = entry;
    type = entry->info.schema.field(idx).type;
  }
  if (found == nullptr) {
    return Status::NotFound("column '" + ref->ToString() + "' not found");
  }
  ref->table = found->info.name;
  if (type_out != nullptr) *type_out = type;
  return Status::OK();
}

}  // namespace

Status Bind(Catalog* catalog, QuerySpec* spec) {
  RAW_RETURN_NOT_OK(spec->Validate());
  std::vector<TableEntry*> tables;
  for (const std::string& t : spec->tables) {
    RAW_ASSIGN_OR_RETURN(TableEntry * entry, catalog->Get(t));
    tables.push_back(entry);
  }
  if (spec->is_join()) {
    DataType lt, rt;
    RAW_RETURN_NOT_OK(QualifyRef(tables, &spec->join_left, &lt));
    RAW_RETURN_NOT_OK(QualifyRef(tables, &spec->join_right, &rt));
    if (!IsNumeric(lt) || !IsNumeric(rt)) {
      return Status::InvalidArgument("join keys must be numeric");
    }
  }
  for (PredicateSpec& pred : spec->predicates) {
    DataType col_type;
    RAW_RETURN_NOT_OK(QualifyRef(tables, &pred.column, &col_type));
    if (pred.is_parameter()) {
      // `?` placeholder: remember the column type so values bound later
      // coerce exactly like inline literals would have.
      pred.param_type = col_type;
      continue;
    }
    // Coerce the literal to the column type so typed comparison fast paths
    // apply (string literals only compare against string columns, etc.).
    RAW_ASSIGN_OR_RETURN(pred.literal, pred.literal.CastTo(col_type));
  }
  for (AggItemSpec& agg : spec->aggregates) {
    if (agg.count_star) continue;
    DataType type;
    RAW_RETURN_NOT_OK(QualifyRef(tables, &agg.column, &type));
    RAW_RETURN_NOT_OK(AggResultType(agg.kind, type).status());
  }
  for (ColumnRefSpec& p : spec->projections) {
    RAW_RETURN_NOT_OK(QualifyRef(tables, &p, nullptr));
  }
  for (ColumnRefSpec& g : spec->group_by) {
    RAW_RETURN_NOT_OK(QualifyRef(tables, &g, nullptr));
  }
  return Status::OK();
}

}  // namespace raw::sql
