#include "engine/sql/parser.h"

#include <charconv>
#include <limits>
#include <optional>

#include "common/env.h"
#include "engine/sql/lexer.h"

namespace raw::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<QuerySpec> ParseQuery();

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool AcceptKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptSymbol(std::string_view sym) {
    if (Peek().IsSymbol(sym)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!AcceptKeyword(kw)) {
      return Status::ParseError("expected " + std::string(kw) + " near '" +
                                Peek().text + "'");
    }
    return Status::OK();
  }
  Status ExpectSymbol(std::string_view sym) {
    if (!AcceptSymbol(sym)) {
      return Status::ParseError("expected '" + std::string(sym) + "' near '" +
                                Peek().text + "'");
    }
    return Status::OK();
  }

  StatusOr<std::string> ParseIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::ParseError("expected identifier near '" + Peek().text +
                                "'");
    }
    return Advance().text;
  }

  StatusOr<ColumnRefSpec> ParseColumnRef() {
    ColumnRefSpec ref;
    RAW_ASSIGN_OR_RETURN(std::string first, ParseIdentifier());
    if (AcceptSymbol(".")) {
      RAW_ASSIGN_OR_RETURN(std::string second, ParseIdentifier());
      ref.table = std::move(first);
      ref.column = std::move(second);
    } else {
      ref.column = std::move(first);
    }
    return ref;
  }

  StatusOr<Datum> ParseLiteral() {
    const Token& tok = Peek();
    if (tok.type == TokenType::kInteger) {
      Advance();
      int64_t v = 0;
      auto [p, ec] =
          std::from_chars(tok.text.data(), tok.text.data() + tok.text.size(), v);
      if (ec != std::errc() || p != tok.text.data() + tok.text.size()) {
        return Status::ParseError("bad integer literal '" + tok.text + "'");
      }
      return Datum::Int64(v);
    }
    if (tok.type == TokenType::kFloat) {
      Advance();
      double v = 0;
      auto [p, ec] =
          std::from_chars(tok.text.data(), tok.text.data() + tok.text.size(), v);
      if (ec != std::errc() || p != tok.text.data() + tok.text.size()) {
        return Status::ParseError("bad float literal '" + tok.text + "'");
      }
      return Datum::Float64(v);
    }
    if (tok.type == TokenType::kString) {
      Advance();
      return Datum::String(tok.text);
    }
    return Status::ParseError("expected literal near '" + tok.text + "'");
  }

  StatusOr<CompareOp> ParseCompareOp() {
    const Token& tok = Peek();
    if (tok.type != TokenType::kSymbol) {
      return Status::ParseError("expected comparison operator near '" +
                                tok.text + "'");
    }
    CompareOp op;
    if (tok.text == "<") {
      op = CompareOp::kLt;
    } else if (tok.text == "<=") {
      op = CompareOp::kLe;
    } else if (tok.text == ">") {
      op = CompareOp::kGt;
    } else if (tok.text == ">=") {
      op = CompareOp::kGe;
    } else if (tok.text == "=") {
      op = CompareOp::kEq;
    } else if (tok.text == "!=") {
      op = CompareOp::kNe;
    } else {
      return Status::ParseError("expected comparison operator near '" +
                                tok.text + "'");
    }
    Advance();
    return op;
  }

  StatusOr<AggKind> KeywordToAgg(const std::string& kw) {
    if (kw == "MAX") return AggKind::kMax;
    if (kw == "MIN") return AggKind::kMin;
    if (kw == "SUM") return AggKind::kSum;
    if (kw == "AVG") return AggKind::kAvg;
    if (kw == "COUNT") return AggKind::kCount;
    return Status::ParseError("unknown aggregate " + kw);
  }

  Status ParseSelectItem(QuerySpec* spec) {
    const Token& tok = Peek();
    if (tok.type == TokenType::kKeyword &&
        (tok.text == "MAX" || tok.text == "MIN" || tok.text == "SUM" ||
         tok.text == "AVG" || tok.text == "COUNT")) {
      Advance();
      AggItemSpec item;
      RAW_ASSIGN_OR_RETURN(item.kind, KeywordToAgg(tok.text));
      RAW_RETURN_NOT_OK(ExpectSymbol("("));
      if (AcceptSymbol("*")) {
        if (item.kind != AggKind::kCount) {
          return Status::ParseError("'*' argument is only valid for COUNT");
        }
        item.count_star = true;
      } else {
        RAW_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
      }
      RAW_RETURN_NOT_OK(ExpectSymbol(")"));
      if (AcceptKeyword("AS")) {
        RAW_ASSIGN_OR_RETURN(item.output_name, ParseIdentifier());
      }
      spec->aggregates.push_back(std::move(item));
      return Status::OK();
    }
    RAW_ASSIGN_OR_RETURN(ColumnRefSpec ref, ParseColumnRef());
    if (AcceptKeyword("AS")) {
      // Plain projections keep their own name; alias folds into column name
      // at output time — not stored separately in this subset.
      RAW_RETURN_NOT_OK(ParseIdentifier().status());
    }
    spec->projections.push_back(std::move(ref));
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

StatusOr<QuerySpec> Parser::ParseQuery() {
  QuerySpec spec;
  spec.explain = AcceptKeyword("EXPLAIN");
  RAW_RETURN_NOT_OK(ExpectKeyword("SELECT"));
  RAW_RETURN_NOT_OK(ParseSelectItem(&spec));
  while (AcceptSymbol(",")) {
    RAW_RETURN_NOT_OK(ParseSelectItem(&spec));
  }
  RAW_RETURN_NOT_OK(ExpectKeyword("FROM"));
  RAW_ASSIGN_OR_RETURN(std::string t0, ParseIdentifier());
  spec.tables.push_back(std::move(t0));
  if (AcceptKeyword("INNER")) {
    RAW_RETURN_NOT_OK(ExpectKeyword("JOIN"));
    RAW_ASSIGN_OR_RETURN(std::string t1, ParseIdentifier());
    spec.tables.push_back(std::move(t1));
    RAW_RETURN_NOT_OK(ExpectKeyword("ON"));
    RAW_ASSIGN_OR_RETURN(spec.join_left, ParseColumnRef());
    RAW_RETURN_NOT_OK(ExpectSymbol("="));
    RAW_ASSIGN_OR_RETURN(spec.join_right, ParseColumnRef());
  } else if (AcceptKeyword("JOIN")) {
    RAW_ASSIGN_OR_RETURN(std::string t1, ParseIdentifier());
    spec.tables.push_back(std::move(t1));
    RAW_RETURN_NOT_OK(ExpectKeyword("ON"));
    RAW_ASSIGN_OR_RETURN(spec.join_left, ParseColumnRef());
    RAW_RETURN_NOT_OK(ExpectSymbol("="));
    RAW_ASSIGN_OR_RETURN(spec.join_right, ParseColumnRef());
  }
  if (AcceptKeyword("WHERE")) {
    do {
      PredicateSpec pred;
      RAW_ASSIGN_OR_RETURN(pred.column, ParseColumnRef());
      RAW_ASSIGN_OR_RETURN(pred.op, ParseCompareOp());
      if (AcceptSymbol("?")) {
        // Positional parameter, bound per execution via Session::Prepare.
        pred.param_index = spec.num_params++;
      } else {
        RAW_ASSIGN_OR_RETURN(pred.literal, ParseLiteral());
      }
      spec.predicates.push_back(std::move(pred));
    } while (AcceptKeyword("AND"));
  }
  if (AcceptKeyword("GROUP")) {
    RAW_RETURN_NOT_OK(ExpectKeyword("BY"));
    do {
      RAW_ASSIGN_OR_RETURN(ColumnRefSpec ref, ParseColumnRef());
      spec.group_by.push_back(std::move(ref));
    } while (AcceptSymbol(","));
  }
  if (AcceptKeyword("LIMIT")) {
    const Token& tok = Peek();
    if (tok.type != TokenType::kInteger) {
      return Status::ParseError("expected integer after LIMIT");
    }
    Advance();
    // Strict conversion: an out-of-range literal (e.g. 99999999999999999999)
    // must be a parse error, not an uncaught std::out_of_range.
    std::optional<int64_t> limit =
        ParseInt64Strict(tok.text, 0, std::numeric_limits<int64_t>::max());
    if (!limit.has_value()) {
      return Status::ParseError("LIMIT value '" + tok.text +
                                "' is not a valid non-negative integer");
    }
    spec.limit = *limit;
  }
  AcceptSymbol(";");
  if (Peek().type != TokenType::kEnd) {
    return Status::ParseError("unexpected trailing input near '" +
                              Peek().text + "'");
  }
  RAW_RETURN_NOT_OK(spec.Validate());
  return spec;
}

}  // namespace

StatusOr<QuerySpec> Parse(const std::string& sql) {
  RAW_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

}  // namespace raw::sql
