#ifndef RAW_ENGINE_SQL_LEXER_H_
#define RAW_ENGINE_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

namespace raw::sql {

enum class TokenType {
  kIdentifier,  // foo, "quoted id" not supported
  kKeyword,     // SELECT, FROM, ... (uppercased)
  kInteger,
  kFloat,
  kString,      // 'literal'
  kSymbol,      // ( ) , . * = < > <= >= != <> ? ;
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // keywords uppercased; others verbatim
  size_t offset = 0;

  bool IsKeyword(std::string_view kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(std::string_view sym) const {
    return type == TokenType::kSymbol && text == sym;
  }
};

/// Tokenizes `input`. Keywords are recognized case-insensitively and
/// normalized to uppercase; everything alphabetic that is not a keyword is
/// an identifier.
StatusOr<std::vector<Token>> Lex(const std::string& input);

}  // namespace raw::sql

#endif  // RAW_ENGINE_SQL_LEXER_H_
