#include "engine/cost_model.h"

#include <algorithm>

namespace raw {

double CostModel::PerValueFetchCost(const ShredDecisionInput& in) const {
  switch (in.format) {
    case FileFormat::kCsv: {
      double cost = params_.csv_jump +
                    params_.csv_skip_field * in.skip_distance +
                    params_.csv_parse_field + params_.build_value;
      if (in.random_order) cost += params_.bin_random_penalty * 4;
      return cost;
    }
    case FileFormat::kBinary: {
      double cost = params_.bin_read_value + params_.build_value;
      if (in.random_order) cost += params_.bin_random_penalty;
      return cost;
    }
    case FileFormat::kRef:
      return params_.ref_api_value + params_.build_value;
  }
  return 1.0;
}

double CostModel::FullColumnCost(const ShredDecisionInput& in) const {
  // Sequential materialization of every row. No jump cost, and no skip cost
  // either: the bottom scan's forward pass tokenizes through intermediate
  // fields regardless of whether this column rides along.
  double per_value = 0;
  switch (in.format) {
    case FileFormat::kCsv:
      per_value = params_.csv_parse_field + params_.build_value;
      break;
    case FileFormat::kBinary:
      per_value = params_.bin_read_value + params_.build_value;
      break;
    case FileFormat::kRef:
      per_value = params_.ref_api_value + params_.build_value;
      break;
  }
  return static_cast<double>(in.table_rows) * per_value;
}

double CostModel::ShredCost(const ShredDecisionInput& in) const {
  return static_cast<double>(in.table_rows) * in.selectivity *
         PerValueFetchCost(in);
}

double CostModel::MultiColumnShredCost(const ShredDecisionInput& in) const {
  // One jump per row, then parse through the colocated span: the extra
  // columns ride along for (roughly) one parse each instead of paying a
  // fresh jump + skip chain per column.
  ShredDecisionInput one = in;
  one.colocated_columns = 1;
  double first = ShredCost(one);
  double extra_per_column = static_cast<double>(in.table_rows) *
                            in.selectivity *
                            (params_.csv_parse_field + params_.build_value);
  return first + extra_per_column * (in.colocated_columns - 1);
}

double CostModel::ShredCrossover(const ShredDecisionInput& in) const {
  double per_fetch = PerValueFetchCost(in);
  if (per_fetch <= 0) return 1.0;
  ShredDecisionInput full = in;
  double per_full = FullColumnCost(full) /
                    std::max<double>(1.0, static_cast<double>(in.table_rows));
  return std::clamp(per_full / per_fetch, 0.0, 1.0);
}

ShredPolicy CostModel::ChoosePolicy(const ShredDecisionInput& in) const {
  double full = FullColumnCost(in);
  if (in.colocated_columns > 1 && in.format == FileFormat::kCsv) {
    double multi = MultiColumnShredCost(in);
    double single =
        ShredCost(in) * in.colocated_columns;  // one late scan per column
    if (multi <= full && multi <= single) {
      return ShredPolicy::kMultiColumnShreds;
    }
    if (single <= full) return ShredPolicy::kShreds;
    return ShredPolicy::kFullColumns;
  }
  return ShredCost(in) <= full ? ShredPolicy::kShreds
                               : ShredPolicy::kFullColumns;
}

}  // namespace raw
