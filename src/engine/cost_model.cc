#include "engine/cost_model.h"

#include <algorithm>

#include "engine/formats/builtin.h"
#include "format/format_driver.h"

namespace raw {
namespace {

/// Per-format access-primitive costs come from the format driver — the cost
/// model itself is format-agnostic and only combines them. Unregistered
/// formats fall back to the (pessimistic) defaults.
FormatCostParams ResolveFormatParams(const CostParams& base,
                                     FileFormat format) {
  EnsureBuiltinFormatDriversRegistered();
  const FormatDriver* driver = FormatRegistry::Global().Find(format);
  if (driver != nullptr) return driver->cost_params(base);
  return FormatCostParams{};
}

}  // namespace

double CostModel::PerValueFetchCost(const ShredDecisionInput& in) const {
  FormatCostParams p = ResolveFormatParams(params_, in.format);
  double cost = p.jump + p.skip_field * in.skip_distance + p.read_value +
                params_.build_value;
  if (in.random_order) cost += p.random_penalty;
  return cost;
}

double CostModel::FullColumnCost(const ShredDecisionInput& in) const {
  // Sequential materialization of every row. No jump cost, and no skip cost
  // either: the bottom scan's forward pass tokenizes through intermediate
  // fields regardless of whether this column rides along.
  FormatCostParams p = ResolveFormatParams(params_, in.format);
  return static_cast<double>(in.table_rows) *
         (p.read_value + params_.build_value);
}

double CostModel::ShredCost(const ShredDecisionInput& in) const {
  return static_cast<double>(in.table_rows) * in.selectivity *
         PerValueFetchCost(in);
}

double CostModel::MultiColumnShredCost(const ShredDecisionInput& in) const {
  // One jump per row, then parse through the colocated span: the extra
  // columns ride along for (roughly) one parse each instead of paying a
  // fresh jump + skip chain per column.
  FormatCostParams p = ResolveFormatParams(params_, in.format);
  ShredDecisionInput one = in;
  one.colocated_columns = 1;
  double first = ShredCost(one);
  double extra_per_column = static_cast<double>(in.table_rows) *
                            in.selectivity *
                            (p.read_value + params_.build_value);
  return first + extra_per_column * (in.colocated_columns - 1);
}

double CostModel::ShredCrossover(const ShredDecisionInput& in) const {
  double per_fetch = PerValueFetchCost(in);
  if (per_fetch <= 0) return 1.0;
  ShredDecisionInput full = in;
  double per_full = FullColumnCost(full) /
                    std::max<double>(1.0, static_cast<double>(in.table_rows));
  return std::clamp(per_full / per_fetch, 0.0, 1.0);
}

ShredPolicy CostModel::ChoosePolicy(const ShredDecisionInput& in) const {
  FormatCostParams p = ResolveFormatParams(params_, in.format);
  double full = FullColumnCost(in);
  if (in.colocated_columns > 1 && p.colocated_shreds) {
    double multi = MultiColumnShredCost(in);
    double single =
        ShredCost(in) * in.colocated_columns;  // one late scan per column
    if (multi <= full && multi <= single) {
      return ShredPolicy::kMultiColumnShreds;
    }
    if (single <= full) return ShredPolicy::kShreds;
    return ShredPolicy::kFullColumns;
  }
  return ShredCost(in) <= full ? ShredPolicy::kShreds
                               : ShredPolicy::kFullColumns;
}

}  // namespace raw
