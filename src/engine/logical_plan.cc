#include "engine/logical_plan.h"

#include <sstream>

namespace raw {

std::string PredicateSpec::ToString() const {
  return column.ToString() + " " + std::string(CompareOpToString(op)) + " " +
         (is_parameter() ? "?" + std::to_string(param_index + 1)
                         : literal.ToString());
}

std::string QuerySpec::ToString() const {
  std::ostringstream os;
  os << "SELECT ";
  if (is_aggregate()) {
    for (size_t i = 0; i < aggregates.size(); ++i) {
      if (i > 0) os << ", ";
      const AggItemSpec& a = aggregates[i];
      os << AggKindToString(a.kind) << "("
         << (a.count_star ? "*" : a.column.ToString()) << ")";
    }
  } else {
    for (size_t i = 0; i < projections.size(); ++i) {
      if (i > 0) os << ", ";
      os << projections[i].ToString();
    }
  }
  os << " FROM " << tables[0];
  if (is_join()) {
    os << " JOIN " << tables[1] << " ON " << join_left.ToString() << " = "
       << join_right.ToString();
  }
  if (!predicates.empty()) {
    os << " WHERE ";
    for (size_t i = 0; i < predicates.size(); ++i) {
      if (i > 0) os << " AND ";
      os << predicates[i].ToString();
    }
  }
  if (!group_by.empty()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << group_by[i].ToString();
    }
  }
  if (limit >= 0) os << " LIMIT " << limit;
  return os.str();
}

namespace {

/// Length-prefixed string: "5:muons" — unambiguous under concatenation.
void PutStr(std::ostringstream& os, const std::string& s) {
  os << s.size() << ':' << s;
}

void PutRef(std::ostringstream& os, const ColumnRefSpec& ref) {
  PutStr(os, ref.table);
  PutStr(os, ref.column);
}

void PutDatum(std::ostringstream& os, const Datum& d) {
  os << static_cast<int>(d.type()) << '=';
  PutStr(os, d.ToString());  // round-trippable precision for floats
}

}  // namespace

std::string QuerySpec::Fingerprint() const {
  std::ostringstream os;
  os << "v1|T";
  for (const std::string& t : tables) PutStr(os, t);
  if (is_join()) {
    os << "|J";
    PutRef(os, join_left);
    PutRef(os, join_right);
  }
  os << "|P" << predicates.size();
  for (const PredicateSpec& p : predicates) {
    PutRef(os, p.column);
    os << static_cast<int>(p.op) << ';';
    if (p.is_parameter()) {
      os << '?' << p.param_index << '/' << static_cast<int>(p.param_type);
    } else {
      PutDatum(os, p.literal);
    }
  }
  os << "|A" << aggregates.size();
  for (const AggItemSpec& a : aggregates) {
    os << static_cast<int>(a.kind) << (a.count_star ? '*' : '.');
    PutRef(os, a.column);
    PutStr(os, a.output_name);
  }
  os << "|C" << projections.size();
  for (const ColumnRefSpec& c : projections) PutRef(os, c);
  os << "|G" << group_by.size();
  for (const ColumnRefSpec& g : group_by) PutRef(os, g);
  os << "|L" << limit << "|N" << num_params;
  return os.str();
}

Status QuerySpec::Validate() const {
  if (tables.empty() || tables.size() > 2) {
    return Status::InvalidArgument("query must reference one or two tables");
  }
  if (is_join()) {
    if (join_left.column.empty() || join_right.column.empty()) {
      return Status::InvalidArgument("join requires an ON equality condition");
    }
  }
  if (aggregates.empty() && projections.empty()) {
    return Status::InvalidArgument("empty SELECT list");
  }
  if (!aggregates.empty() && !projections.empty() && group_by.empty()) {
    return Status::InvalidArgument(
        "mixing aggregates and plain columns requires GROUP BY");
  }
  for (const ColumnRefSpec& g : group_by) {
    if (g.column.empty()) {
      return Status::InvalidArgument("empty GROUP BY column");
    }
  }
  return Status::OK();
}

}  // namespace raw
