#include "engine/logical_plan.h"

#include <sstream>

namespace raw {

std::string PredicateSpec::ToString() const {
  return column.ToString() + " " + std::string(CompareOpToString(op)) + " " +
         (is_parameter() ? "?" + std::to_string(param_index + 1)
                         : literal.ToString());
}

std::string QuerySpec::ToString() const {
  std::ostringstream os;
  os << "SELECT ";
  if (is_aggregate()) {
    for (size_t i = 0; i < aggregates.size(); ++i) {
      if (i > 0) os << ", ";
      const AggItemSpec& a = aggregates[i];
      os << AggKindToString(a.kind) << "("
         << (a.count_star ? "*" : a.column.ToString()) << ")";
    }
  } else {
    for (size_t i = 0; i < projections.size(); ++i) {
      if (i > 0) os << ", ";
      os << projections[i].ToString();
    }
  }
  os << " FROM " << tables[0];
  if (is_join()) {
    os << " JOIN " << tables[1] << " ON " << join_left.ToString() << " = "
       << join_right.ToString();
  }
  if (!predicates.empty()) {
    os << " WHERE ";
    for (size_t i = 0; i < predicates.size(); ++i) {
      if (i > 0) os << " AND ";
      os << predicates[i].ToString();
    }
  }
  if (!group_by.empty()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << group_by[i].ToString();
    }
  }
  if (limit >= 0) os << " LIMIT " << limit;
  return os.str();
}

Status QuerySpec::Validate() const {
  if (tables.empty() || tables.size() > 2) {
    return Status::InvalidArgument("query must reference one or two tables");
  }
  if (is_join()) {
    if (join_left.column.empty() || join_right.column.empty()) {
      return Status::InvalidArgument("join requires an ON equality condition");
    }
  }
  if (aggregates.empty() && projections.empty()) {
    return Status::InvalidArgument("empty SELECT list");
  }
  if (!aggregates.empty() && !projections.empty() && group_by.empty()) {
    return Status::InvalidArgument(
        "mixing aggregates and plain columns requires GROUP BY");
  }
  for (const ColumnRefSpec& g : group_by) {
    if (g.column.empty()) {
      return Status::InvalidArgument("empty GROUP BY column");
    }
  }
  return Status::OK();
}

}  // namespace raw
