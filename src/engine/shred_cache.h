#ifndef RAW_ENGINE_SHRED_CACHE_H_
#define RAW_ENGINE_SHRED_CACHE_H_

#include <atomic>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "columnar/column.h"
#include "common/status.h"
#include "common/statusor.h"

namespace raw {

/// Read-only counters describing one cache (see RawEngine::Stats()).
struct CacheStats {
  int64_t entries = 0;
  int64_t bytes = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
};

/// The pool of column shreds populated as a side effect of query execution
/// (§3, §5.1): per (table, column) it keeps the rows already converted from
/// the raw file. "A shred is used by an upcoming query if the values it
/// contains subsume the values requested. The replacement policy ... is LRU."
///
/// An entry is either a *full column* (row_ids empty, covers every row) or a
/// shred: sorted row ids plus the parallel values. On insert, an existing
/// entry for the same (table, column) is replaced only when the new one
/// covers at least as many rows (cheap subsumption-by-size policy; merging
/// arbitrary shreds is bookkeeping the paper also points out can become
/// costly, §5.1).
///
/// Thread-safety: the cache is *sharded* by (table, column) key hash; each
/// shard has its own mutex and LRU list, so concurrent sessions touching
/// different columns never contend on one lock. The byte budget stays
/// *global* (an atomic total): an insert evicts from its own shard's LRU
/// tail only while the whole cache is over capacity, so key skew cannot
/// evict warm columns while most of the budget sits unused. Returned
/// columns are shared, immutable snapshots — safe to read after eviction
/// or Clear().
class ShredCache {
 public:
  static constexpr int kDefaultNumShards = 16;

  /// `num_shards` mainly exists for tests that want the classic single-LRU
  /// behaviour; the capacity is a cache-wide budget regardless.
  explicit ShredCache(int64_t capacity_bytes = 1ll << 30,
                      int num_shards = kDefaultNumShards);

  /// Inserts values for `row_ids` (nullptr => full column starting at row 0).
  /// `row_ids` must be strictly increasing when present.
  Status Insert(const std::string& table, int column, const int64_t* row_ids,
                const Column& values);

  /// Returns the cached values for exactly `rows` (in order), or nullopt if
  /// no entry subsumes the request. A hit refreshes LRU order.
  StatusOr<ColumnPtr> Lookup(const std::string& table, int column,
                             const std::vector<int64_t>& rows);

  /// True when an entry subsumes `rows` without materializing the result.
  bool Covers(const std::string& table, int column,
              const std::vector<int64_t>& rows);

  /// Full-column fast path: the complete cached column when the entry is
  /// full-length, else NotFound.
  StatusOr<ColumnPtr> LookupFull(const std::string& table, int column);

  /// Side-effect-free introspection: true when a *full* column is cached for
  /// (table, column). Unlike LookupFull this neither refreshes LRU order nor
  /// counts a hit/miss — it exists for stats surfaces and tests.
  bool ContainsFull(const std::string& table, int column) const;

  void Clear();

  /// Drops every entry belonging to `table` (all columns, full or shredded) —
  /// the invalidation path when the table's backing file changed.
  void EraseTable(const std::string& table);

  int64_t capacity_bytes() const { return capacity_bytes_; }

  /// Aggregated counters across all shards (a consistent-enough snapshot for
  /// introspection; shards are summed one lock at a time).
  CacheStats Stats() const;

  int64_t bytes_cached() const { return Stats().bytes; }
  int64_t hits() const { return Stats().hits; }
  int64_t misses() const { return Stats().misses; }
  int64_t evictions() const { return Stats().evictions; }
  int64_t num_entries() const { return Stats().entries; }

 private:
  struct Entry {
    std::string key;
    std::vector<int64_t> row_ids;  // empty => full column
    ColumnPtr values;
    int64_t bytes = 0;

    bool full() const { return row_ids.empty(); }
  };

  struct Shard {
    Shard() = default;
    Shard(const Shard&) = delete;
    Shard& operator=(const Shard&) = delete;

    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::map<std::string, std::list<Entry>::iterator> index;
    int64_t bytes_cached = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
  };

  static std::string MakeKey(const std::string& table, int column) {
    return table + "#" + std::to_string(column);
  }

  Shard& ShardFor(const std::string& key) const;

  /// Caller holds `shard.mu`.
  static Entry* Find(Shard& shard, const std::string& key, bool refresh_lru);
  void EvictOverCapacity(Shard& shard);

  int64_t capacity_bytes_;
  std::atomic<int64_t> total_bytes_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace raw

#endif  // RAW_ENGINE_SHRED_CACHE_H_
