#ifndef RAW_ENGINE_SHRED_CACHE_H_
#define RAW_ENGINE_SHRED_CACHE_H_

#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "columnar/column.h"
#include "common/status.h"
#include "common/statusor.h"

namespace raw {

/// The pool of column shreds populated as a side effect of query execution
/// (§3, §5.1): per (table, column) it keeps the rows already converted from
/// the raw file. "A shred is used by an upcoming query if the values it
/// contains subsume the values requested. The replacement policy ... is LRU."
///
/// An entry is either a *full column* (row_ids empty, covers every row) or a
/// shred: sorted row ids plus the parallel values. On insert, an existing
/// entry for the same (table, column) is replaced only when the new one
/// covers at least as many rows (cheap subsumption-by-size policy; merging
/// arbitrary shreds is bookkeeping the paper also points out can become
/// costly, §5.1).
class ShredCache {
 public:
  explicit ShredCache(int64_t capacity_bytes = 1ll << 30)
      : capacity_bytes_(capacity_bytes) {}

  /// Inserts values for `row_ids` (nullptr => full column starting at row 0).
  /// `row_ids` must be strictly increasing when present.
  Status Insert(const std::string& table, int column, const int64_t* row_ids,
                const Column& values);

  /// Returns the cached values for exactly `rows` (in order), or nullopt if
  /// no entry subsumes the request. A hit refreshes LRU order.
  StatusOr<ColumnPtr> Lookup(const std::string& table, int column,
                             const std::vector<int64_t>& rows);

  /// True when an entry subsumes `rows` without materializing the result.
  bool Covers(const std::string& table, int column,
              const std::vector<int64_t>& rows);

  /// Full-column fast path: the complete cached column when the entry is
  /// full-length, else NotFound.
  StatusOr<ColumnPtr> LookupFull(const std::string& table, int column);

  void Clear();

  int64_t bytes_cached() const { return bytes_cached_; }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t evictions() const { return evictions_; }
  int64_t num_entries() const { return static_cast<int64_t>(index_.size()); }

 private:
  struct Entry {
    std::string key;
    std::vector<int64_t> row_ids;  // empty => full column
    ColumnPtr values;
    int64_t bytes = 0;

    bool full() const { return row_ids.empty(); }
  };

  static std::string MakeKey(const std::string& table, int column) {
    return table + "#" + std::to_string(column);
  }

  Entry* Find(const std::string& key, bool refresh_lru);
  void EvictOverCapacity();

  int64_t capacity_bytes_;
  std::list<Entry> lru_;  // front = most recent
  std::map<std::string, std::list<Entry>::iterator> index_;
  int64_t bytes_cached_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace raw

#endif  // RAW_ENGINE_SHRED_CACHE_H_
