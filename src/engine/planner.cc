#include "engine/planner.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "common/kernels.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "engine/cost_model.h"
#include "engine/executor.h"

#include "columnar/filter.h"
#include "columnar/hash_group_by.h"
#include "columnar/hash_join.h"
#include "columnar/project.h"
#include "scan/external_table_scan.h"
#include "scan/insitu_bin_scan.h"
#include "scan/insitu_csv_scan.h"
#include "scan/jit_scan.h"
#include "scan/loader.h"
#include "scan/morsel.h"
#include "scan/ref_scan.h"
#include "scan/shred_scan.h"

namespace raw {

std::string QualifiedName(const std::string& table,
                          const std::string& column) {
  return table + "." + column;
}

namespace {

// =============================================================================
// Small plan-glue operators
// =============================================================================

/// Zero-copy column subset + rename.
class SelectColumnsOperator : public Operator {
 public:
  SelectColumnsOperator(OperatorPtr child, std::vector<int> indices,
                        std::vector<std::string> names)
      : child_(std::move(child)),
        indices_(std::move(indices)),
        names_(std::move(names)) {}

  const Schema& output_schema() const override { return schema_; }
  Status Open() override {
    RAW_RETURN_NOT_OK(child_->Open());
    Schema schema;
    const Schema& in = child_->output_schema();
    for (size_t i = 0; i < indices_.size(); ++i) {
      schema.AddField(names_[i], in.field(indices_[i]).type);
    }
    RAW_RETURN_NOT_OK(schema.Validate());
    schema_ = std::move(schema);
    return Status::OK();
  }
  StatusOr<ColumnBatch> Next() override {
    RAW_ASSIGN_OR_RETURN(ColumnBatch batch, child_->Next());
    ColumnBatch out(schema_);
    if (batch.empty()) return out;  // EOF
    for (int idx : indices_) out.AddColumn(batch.column(idx));
    out.SetNumRows(batch.num_rows());
    if (batch.has_row_ids()) out.SetRowIds(batch.row_ids());
    return out;
  }
  Status Close() override { return child_->Close(); }
  std::string name() const override { return "SelectColumns"; }

 private:
  OperatorPtr child_;
  std::vector<int> indices_;
  std::vector<std::string> names_;
  Schema schema_;
};

/// LIMIT n.
class LimitOperator : public Operator {
 public:
  LimitOperator(OperatorPtr child, int64_t limit)
      : child_(std::move(child)), limit_(limit) {}

  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  Status Open() override {
    emitted_ = 0;
    return child_->Open();
  }
  StatusOr<ColumnBatch> Next() override {
    if (emitted_ >= limit_) return ColumnBatch(child_->output_schema());
    RAW_ASSIGN_OR_RETURN(ColumnBatch batch, child_->Next());
    if (batch.empty()) return batch;
    if (emitted_ + batch.num_rows() > limit_) {
      SelectionVector head;
      for (int64_t i = 0; i < limit_ - emitted_; ++i) {
        head.Append(static_cast<int32_t>(i));
      }
      batch = batch.Filter(head);
    }
    emitted_ += batch.num_rows();
    return batch;
  }
  Status Close() override { return child_->Close(); }
  std::string name() const override { return "Limit"; }

 private:
  OperatorPtr child_;
  int64_t limit_;
  int64_t emitted_ = 0;
};

/// Emits a set of full, already-materialized columns (cache hits) as one
/// zero-copy batch with sequential row ids.
class CachedColumnsScanOperator : public Operator {
 public:
  CachedColumnsScanOperator(Schema schema, std::vector<ColumnPtr> columns)
      : schema_(std::move(schema)), columns_(std::move(columns)) {}

  const Schema& output_schema() const override { return schema_; }
  Status Open() override {
    done_ = false;
    return Status::OK();
  }
  StatusOr<ColumnBatch> Next() override {
    ColumnBatch out(schema_);
    if (done_) return out;
    done_ = true;
    for (const ColumnPtr& col : columns_) out.AddColumn(col);
    int64_t rows = columns_.empty() ? 0 : columns_[0]->length();
    out.SetNumRows(rows);
    std::vector<int64_t> ids(static_cast<size_t>(rows));
    for (int64_t i = 0; i < rows; ++i) ids[static_cast<size_t>(i)] = i;
    out.SetRowIds(std::move(ids));
    return out;
  }
  std::string name() const override { return "CachedColumnsScan"; }

 private:
  Schema schema_;
  std::vector<ColumnPtr> columns_;
  bool done_ = false;
};

/// Owns the positional map a cold CSV scan is building for this query and
/// publishes it to the table entry once the scan drains completely. The map
/// stays private to the query until then, so concurrent sessions never
/// observe a half-built map; a partial scan (LIMIT, error, dropped cursor)
/// abandons the build claim instead, letting a later query rebuild.
class PmapPublishOperator : public Operator {
 public:
  PmapPublishOperator(OperatorPtr child, std::shared_ptr<PositionalMap> map,
                      TableEntry* entry)
      : child_(std::move(child)), map_(std::move(map)), entry_(entry) {}

  ~PmapPublishOperator() override { Finish(/*publish=*/false); }

  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  Status Open() override { return child_->Open(); }
  StatusOr<ColumnBatch> Next() override {
    RAW_ASSIGN_OR_RETURN(ColumnBatch batch, child_->Next());
    if (batch.empty()) drained_ = true;
    return batch;
  }
  Status Close() override {
    Status status = child_->Close();
    Finish(/*publish=*/drained_ && status.ok());
    return status;
  }
  std::string name() const override { return "PmapPublish"; }

 private:
  void Finish(bool publish) {
    if (finished_) return;
    finished_ = true;
    if (publish && map_ != nullptr && map_->CheckConsistency().ok()) {
      entry_->PublishPmap(std::move(map_));
    } else {
      entry_->AbandonPmapBuild();
    }
  }

  OperatorPtr child_;
  std::shared_ptr<PositionalMap> map_;
  TableEntry* entry_;
  bool drained_ = false;
  bool finished_ = false;
};

/// Accumulates the values flowing out of a raw scan and registers them in the
/// shred cache at Close() — "RAW preserves a pool of column shreds populated
/// as a side-effect of previous queries" (§3). Also discovers the table's
/// row count on full scans.
class CacheInsertOperator : public Operator {
 public:
  struct Mapping {
    int output_index;  // column in the child's output
    int table_column;  // column in the table's schema
  };

  CacheInsertOperator(OperatorPtr child, ShredCache* cache, std::string table,
                      std::vector<Mapping> mappings, bool full_scan,
                      TableEntry* row_count_sink)
      : child_(std::move(child)),
        cache_(cache),
        table_(std::move(table)),
        mappings_(std::move(mappings)),
        full_scan_(full_scan),
        row_count_sink_(row_count_sink) {}

  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  Status Open() override {
    RAW_RETURN_NOT_OK(child_->Open());
    accumulators_.clear();
    for (const Mapping& m : mappings_) {
      accumulators_.push_back(std::make_shared<Column>(
          child_->output_schema().field(m.output_index).type));
    }
    row_ids_.clear();
    drained_ = false;
    return Status::OK();
  }
  StatusOr<ColumnBatch> Next() override {
    RAW_ASSIGN_OR_RETURN(ColumnBatch batch, child_->Next());
    if (batch.empty()) {
      drained_ = true;
      return batch;
    }
    if (batch.has_row_ids()) {
      row_ids_.insert(row_ids_.end(), batch.row_ids().begin(),
                      batch.row_ids().end());
      for (size_t i = 0; i < mappings_.size(); ++i) {
        RAW_RETURN_NOT_OK(accumulators_[i]->AppendColumn(
            *batch.column(mappings_[i].output_index)));
      }
    }
    return batch;
  }
  Status Close() override {
    if (drained_ && !row_ids_.empty()) {
      bool contiguous = true;
      for (size_t i = 0; i < row_ids_.size(); ++i) {
        if (row_ids_[i] != static_cast<int64_t>(i)) {
          contiguous = false;
          break;
        }
      }
      for (size_t i = 0; i < mappings_.size(); ++i) {
        RAW_RETURN_NOT_OK(cache_->Insert(
            table_, mappings_[i].table_column,
            (contiguous && full_scan_) ? nullptr : row_ids_.data(),
            *accumulators_[i]));
      }
      if (full_scan_ && contiguous && row_count_sink_ != nullptr) {
        row_count_sink_->SetRowCountIfUnknown(
            static_cast<int64_t>(row_ids_.size()));
      }
    }
    accumulators_.clear();
    row_ids_.clear();
    return child_->Close();
  }
  std::string name() const override { return "CacheInsert"; }

 private:
  OperatorPtr child_;
  ShredCache* cache_;
  std::string table_;
  std::vector<Mapping> mappings_;
  bool full_scan_;
  TableEntry* row_count_sink_;
  std::vector<ColumnPtr> accumulators_;
  std::vector<int64_t> row_ids_;
  bool drained_ = false;
};

/// RowFetcher that consults the shred cache first and falls back to a raw
/// fetcher on a subsumption miss (all-or-nothing per fetch).
class CacheAwareFetcher : public RowFetcher {
 public:
  CacheAwareFetcher(ShredCache* cache, std::string table,
                    std::vector<int> table_columns, RowFetcherPtr inner)
      : cache_(cache),
        table_(std::move(table)),
        table_columns_(std::move(table_columns)),
        inner_(std::move(inner)) {}

  const Schema& fields() const override { return inner_->fields(); }

  StatusOr<std::vector<ColumnPtr>> Fetch(const RowSet& rows) override {
    if (cache_ != nullptr) {
      std::vector<ColumnPtr> cached;
      bool all_hit = true;
      for (int col : table_columns_) {
        auto hit = cache_->Lookup(table_, col, rows.ids);
        if (!hit.ok()) {
          all_hit = false;
          break;
        }
        cached.push_back(std::move(hit).value());
      }
      if (all_hit) return cached;
    }
    return inner_->Fetch(rows);
  }

 private:
  ShredCache* cache_;
  std::string table_;
  std::vector<int> table_columns_;
  RowFetcherPtr inner_;
};

/// Interpreted REF fetcher (handles derived eventID on particle tables).
class RefRowFetcher : public RowFetcher {
 public:
  RefRowFetcher(RefReader* reader, int group, std::vector<std::string> fields,
                Schema qualified_schema)
      : reader_(reader),
        group_(group),
        field_names_(std::move(fields)),
        schema_(std::move(qualified_schema)) {}

  const Schema& fields() const override { return schema_; }

  StatusOr<std::vector<ColumnPtr>> Fetch(const RowSet& rows) override {
    RefScanSpec spec;
    spec.group = group_;
    spec.fields = field_names_;
    spec.row_set = rows;
    spec.batch_rows = std::max<int64_t>(rows.size(), 1);
    RefTableScanOperator op(reader_, std::move(spec));
    RAW_RETURN_NOT_OK(op.Open());
    std::vector<ColumnPtr> out;
    if (rows.empty()) {
      for (const Field& f : schema_.fields()) {
        out.push_back(std::make_shared<Column>(f.type));
      }
      return out;
    }
    RAW_ASSIGN_OR_RETURN(ColumnBatch batch, op.Next());
    for (int c = 0; c < batch.num_columns(); ++c) {
      out.push_back(batch.column(c));
    }
    return out;
  }

 private:
  RefReader* reader_;
  int group_;
  std::vector<std::string> field_names_;
  Schema schema_;
};

// =============================================================================
// Planning context and helpers
// =============================================================================

/// Per-query snapshot of one table's adaptive state. Taken once when planning
/// starts, so the whole plan sees one consistent view even while other
/// sessions publish maps, load copies, or reset the engine.
struct TableCtx {
  TableEntry* entry = nullptr;

  /// Complete, immutable map published by an earlier query (may be null).
  std::shared_ptr<const PositionalMap> published_pmap;
  /// Map this query is building (claim held); merged/appended during the
  /// base scan, published by PmapPublishOperator on full drain.
  std::shared_ptr<PositionalMap> building_pmap;
  bool build_wired = false;  // a scan of this plan already builds the map

  std::shared_ptr<const InMemoryTable> loaded;  // resolved for kLoaded
  int64_t row_count = -1;

  bool has_complete_pmap() const {
    return published_pmap != nullptr && !published_pmap->empty();
  }
  /// The map same-query late scans should navigate: the one being built, or
  /// the published one.
  const PositionalMap* pmap_view() const {
    if (building_pmap != nullptr) return building_pmap.get();
    return published_pmap.get();
  }
};

struct BuildCtx {
  Catalog* catalog;
  JitTemplateCache* jit;
  ShredCache* shreds;
  const PlannerOptions* opts;
  double* compile_seconds;
  std::ostringstream* desc;
  int num_threads = 1;  // resolved from opts->num_threads once per plan
  std::map<TableEntry*, TableCtx>* tables = nullptr;

  TableCtx& Ctx(TableEntry* entry) {
    TableCtx& tc = (*tables)[entry];
    if (tc.entry == nullptr) {
      tc.entry = entry;
      tc.published_pmap = entry->pmap();
      tc.row_count = entry->row_count();
    }
    return tc;
  }
};

std::vector<int> SortedUnique(std::vector<int> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

/// True when any of `cols` is variable-length. CSV JIT kernels only
/// materialize fixed-width values; string columns take the interpreted path.
bool AnyStringColumn(const Schema& schema, const std::vector<int>& cols) {
  for (int c : cols) {
    if (schema.field(c).type == DataType::kString) return true;
  }
  return false;
}

/// CSV JIT kernels tokenize with the branch-light unquoted fast path; quoted
/// files fall back to the interpreted, quote-aware scan.
bool CsvJitEligible(const TableEntry& entry, const std::vector<int>& cols) {
  return !AnyStringColumn(entry.info.schema, cols) && !entry.csv_quoted();
}

/// Qualified output schema for table columns.
Schema QualifiedSchema(const TableEntry& entry, const std::vector<int>& cols) {
  Schema out;
  for (int c : cols) {
    out.AddField(QualifiedName(entry.info.name, entry.info.schema.field(c).name),
                 entry.info.schema.field(c).type);
  }
  return out;
}

/// True when late scans against `tc`'s table can work: non-CSV formats
/// fetch by row index, CSV needs a positional map — one already published,
/// or one this query can (and, as a side effect here, does) claim the right
/// to build. Returns false for the CSV baselines that never build maps and
/// for cold CSV tables whose build claim another in-flight session holds;
/// callers must then route columns into base scans instead of late scans.
bool LateScanFeasible(BuildCtx& ctx, TableCtx& tc) {
  if (tc.entry->info.format != FileFormat::kCsv) return true;
  const PlannerOptions& opts = *ctx.opts;
  if (tc.has_complete_pmap()) return true;
  if (opts.access_path == AccessPathKind::kLoaded ||
      opts.access_path == AccessPathKind::kExternalTable ||
      !opts.build_positional_map) {
    return false;
  }
  if (tc.building_pmap != nullptr) return true;
  if (!tc.entry->TryClaimPmapBuild()) return false;
  // Claim taken here so the planning decision is binding; the base scan
  // wires this map in (BuildBaseScan guarantees the sequential scan runs
  // while the claim is unwired).
  tc.building_pmap = std::make_shared<PositionalMap>(PositionalMap::WithStride(
      tc.entry->info.schema.num_fields(), tc.entry->info.pmap_stride));
  return true;
}

/// Ensures the DBMS baseline copy exists (loads every column once, shared
/// across sessions) and snapshots it into the table context.
Status EnsureLoaded(BuildCtx& ctx, TableCtx& tc) {
  if (tc.loaded != nullptr) return Status::OK();
  double load_seconds = 0;
  RAW_ASSIGN_OR_RETURN(tc.loaded, tc.entry->EnsureLoaded(&load_seconds));
  tc.row_count = tc.loaded->num_rows();
  if (load_seconds > 0) {
    (*ctx.desc) << "[load " << tc.entry->info.name << " " << load_seconds
                << "s] ";
  }
  return Status::OK();
}

/// Zero-copy rename of a scan's outputs to their qualified names.
OperatorPtr WrapQualified(OperatorPtr op, const Schema& qualified) {
  std::vector<int> idx(static_cast<size_t>(qualified.num_fields()));
  std::vector<std::string> names;
  for (int i = 0; i < qualified.num_fields(); ++i) {
    idx[static_cast<size_t>(i)] = i;
    names.push_back(qualified.field(i).name);
  }
  return std::make_unique<SelectColumnsOperator>(std::move(op), std::move(idx),
                                                 std::move(names));
}

/// First-contact CSV scan: sequential, building the positional map en route.
/// With num_threads > 1 the file splits into newline-aligned byte morsels
/// scanned concurrently; each morsel builds a private partial map that the
/// parallel driver stitches together in file order at end of stream.
///
/// The map is built into query-private storage under the table's build claim
/// (at most one query builds at a time; losers just scan) and published to
/// the shared entry only on a complete drain.
StatusOr<OperatorPtr> BuildCsvSequentialScan(BuildCtx& ctx, TableCtx& tc,
                                             const std::vector<int>& cols,
                                             const Schema& qualified) {
  TableEntry* entry = tc.entry;
  const TableInfo& info = entry->info;
  const PlannerOptions& opts = *ctx.opts;
  PositionalMap* build = nullptr;
  if (opts.build_positional_map && !tc.has_complete_pmap() &&
      !tc.build_wired &&
      (tc.building_pmap != nullptr || entry->TryClaimPmapBuild())) {
    if (tc.building_pmap == nullptr) {
      tc.building_pmap = std::make_shared<PositionalMap>(
          PositionalMap::WithStride(info.schema.num_fields(),
                                    info.pmap_stride));
    }
    tc.build_wired = true;
    build = tc.building_pmap.get();
  }
  (*ctx.desc) << "[seq-scan " << info.name << "] ";
  const bool use_jit = opts.access_path == AccessPathKind::kJit &&
                       CsvJitEligible(*entry, cols);

  auto make_jit_spec = [&] {
    AccessPathSpec spec;
    spec.format = FileFormat::kCsv;
    spec.mode = ScanMode::kSequential;
    spec.delimiter = info.csv_options.delimiter;
    for (int c : cols) {
      spec.outputs.push_back(OutputField{c, info.schema.field(c).type});
    }
    if (build != nullptr) spec.pmap_tracked = build->tracked_columns();
    return spec;
  };
  auto make_insitu_spec = [&] {
    CsvScanSpec spec;
    spec.file_schema = info.schema;
    spec.outputs = cols;
    spec.options = info.csv_options;
    spec.quoted = entry->csv_quoted();
    spec.batch_rows = opts.batch_rows;
    return spec;
  };
  auto wrap_publish = [&](OperatorPtr op) -> OperatorPtr {
    if (build == nullptr) return op;
    return std::make_unique<PmapPublishOperator>(std::move(op),
                                                 tc.building_pmap, entry);
  };

  std::vector<ByteMorsel> morsels;
  if (ctx.num_threads > 1) {
    morsels = SplitCsvByteRanges(entry->mmap()->data(), entry->mmap()->size(),
                                 info.csv_options, ctx.num_threads * 4);
  }
  if (morsels.size() > 1) {
    ParallelTableScanOperator::Options popts;
    popts.num_threads = ctx.num_threads;
    popts.rebase_row_ids = true;  // morsel children emit range-local ids
    popts.merge_pmap_into = build;
    std::vector<OperatorPtr> children;
    for (const ByteMorsel& m : morsels) {
      PositionalMap* child_pmap = nullptr;
      if (build != nullptr) {
        popts.partial_pmaps.push_back(
            std::make_unique<PositionalMap>(PositionalMap::WithStride(
                info.schema.num_fields(), info.pmap_stride)));
        child_pmap = popts.partial_pmaps.back().get();
      }
      if (use_jit) {
        JitScanArgs args;
        args.spec = make_jit_spec();
        args.output_schema = qualified;
        args.file = entry->mmap();
        args.build_pmap = child_pmap;
        args.window_begin = m.begin;
        args.window_end = m.end;
        args.batch_rows = opts.batch_rows;
        children.push_back(
            std::make_unique<JitScanOperator>(ctx.jit, std::move(args)));
      } else {
        CsvScanSpec spec = make_insitu_spec();
        spec.build_pmap = child_pmap;
        spec.range_begin = m.begin;
        spec.range_end = m.end;
        children.push_back(WrapQualified(
            std::make_unique<InsituCsvScanOperator>(entry->mmap(),
                                                    std::move(spec)),
            qualified));
      }
    }
    (*ctx.desc) << "[parallel x" << ctx.num_threads << " morsels="
                << morsels.size() << "] ";
    return wrap_publish(std::make_unique<ParallelTableScanOperator>(
        qualified, std::move(children), std::move(popts)));
  }

  if (use_jit) {
    JitScanArgs args;
    args.spec = make_jit_spec();
    args.output_schema = qualified;
    args.file = entry->mmap();
    args.build_pmap = build;
    args.batch_rows = opts.batch_rows;
    return wrap_publish(
        std::make_unique<JitScanOperator>(ctx.jit, std::move(args)));
  }
  CsvScanSpec spec = make_insitu_spec();
  spec.build_pmap = build;
  return wrap_publish(WrapQualified(std::make_unique<InsituCsvScanOperator>(
                                        entry->mmap(), std::move(spec)),
                                    qualified));
}

/// Warm CSV scan: jump to every mapped row via the positional map. With
/// num_threads > 1 the mapped rows split into row-range morsels; ids are
/// already file-global, so no rebasing is needed.
StatusOr<OperatorPtr> BuildCsvPositionalScan(BuildCtx& ctx, TableCtx& tc,
                                             const std::vector<int>& cols,
                                             const Schema& qualified) {
  TableEntry* entry = tc.entry;
  const TableInfo& info = entry->info;
  const PlannerOptions& opts = *ctx.opts;
  const PositionalMap& pmap = *tc.published_pmap;
  int anchor = pmap.tracked_columns().front();
  for (int t : pmap.tracked_columns()) {
    if (t <= cols.front()) anchor = t;
  }
  (*ctx.desc) << "[pmap-scan " << info.name << " anchor=" << anchor << "] ";
  const bool use_jit = opts.access_path == AccessPathKind::kJit &&
                       CsvJitEligible(*entry, cols);

  auto make_jit_args = [&](RowSet rows) -> StatusOr<JitScanArgs> {
    RAW_RETURN_NOT_OK(FillPositions(pmap, pmap.SlotFor(anchor), &rows));
    AccessPathSpec spec;
    spec.format = FileFormat::kCsv;
    spec.mode = ScanMode::kByPosition;
    spec.delimiter = info.csv_options.delimiter;
    spec.anchor_column = anchor;
    for (int c : cols) {
      spec.outputs.push_back(OutputField{c, info.schema.field(c).type});
    }
    JitScanArgs args;
    args.spec = std::move(spec);
    args.output_schema = qualified;
    args.file = entry->mmap();
    args.row_set = std::move(rows);
    args.batch_rows = opts.batch_rows;
    return args;
  };
  auto make_insitu = [&](std::optional<RowSet> rows) {
    CsvScanSpec spec;
    spec.file_schema = info.schema;
    spec.outputs = cols;
    spec.options = info.csv_options;
    spec.quoted = entry->csv_quoted();
    spec.batch_rows = opts.batch_rows;
    spec.use_pmap = &pmap;
    spec.anchor_column = anchor;
    spec.row_set = std::move(rows);
    return WrapQualified(std::make_unique<InsituCsvScanOperator>(
                             entry->mmap(), std::move(spec)),
                         qualified);
  };
  auto iota_rows = [](int64_t first, int64_t count) {
    RowSet rows;
    rows.ids.resize(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
      rows.ids[static_cast<size_t>(i)] = first + i;
    }
    return rows;
  };

  std::vector<RowMorsel> morsels;
  if (ctx.num_threads > 1) {
    morsels = SplitPmapRowRanges(pmap, ctx.num_threads * 4);
  }
  if (morsels.size() > 1) {
    ParallelTableScanOperator::Options popts;
    popts.num_threads = ctx.num_threads;
    std::vector<OperatorPtr> children;
    for (const RowMorsel& m : morsels) {
      if (use_jit) {
        RAW_ASSIGN_OR_RETURN(JitScanArgs args,
                             make_jit_args(iota_rows(m.first, m.count)));
        children.push_back(
            std::make_unique<JitScanOperator>(ctx.jit, std::move(args)));
      } else {
        children.push_back(make_insitu(iota_rows(m.first, m.count)));
      }
    }
    (*ctx.desc) << "[parallel x" << ctx.num_threads << " morsels="
                << morsels.size() << "] ";
    return OperatorPtr(std::make_unique<ParallelTableScanOperator>(
        qualified, std::move(children), std::move(popts)));
  }

  if (use_jit) {
    RAW_ASSIGN_OR_RETURN(JitScanArgs args,
                         make_jit_args(iota_rows(0, pmap.num_rows())));
    return OperatorPtr(
        std::make_unique<JitScanOperator>(ctx.jit, std::move(args)));
  }
  return make_insitu(std::nullopt);
}

/// Full binary scan; with num_threads > 1, row-range morsels. Binary morsels
/// know their first row up front, so ids stay global (JIT kernels emit
/// window-local ids that JitScanOperator rebases by row_id_offset).
StatusOr<OperatorPtr> BuildBinSequentialScan(BuildCtx& ctx, TableCtx& tc,
                                             const std::vector<int>& cols,
                                             const Schema& qualified) {
  TableEntry* entry = tc.entry;
  const TableInfo& info = entry->info;
  const PlannerOptions& opts = *ctx.opts;
  (*ctx.desc) << "[bin-scan " << info.name << "] ";

  if (opts.access_path == AccessPathKind::kJit) {
    RAW_ASSIGN_OR_RETURN(BinaryLayout layout, BinaryLayout::Create(info.schema));
    auto make_jit_args = [&](int64_t first, int64_t count) {
      AccessPathSpec spec;
      spec.format = FileFormat::kBinary;
      spec.mode = ScanMode::kSequential;
      spec.row_width = layout.row_width();
      for (int c : cols) {
        spec.outputs.push_back(OutputField{c, info.schema.field(c).type});
        spec.column_offsets.push_back(layout.ColumnOffset(c));
      }
      JitScanArgs args;
      args.spec = std::move(spec);
      args.output_schema = qualified;
      args.file = entry->mmap();
      args.total_rows = count;
      args.batch_rows = opts.batch_rows;
      if (first > 0 || count < entry->bin_reader()->num_rows()) {
        const uint64_t width = static_cast<uint64_t>(layout.row_width());
        args.window_begin = static_cast<uint64_t>(first) * width;
        args.window_end = static_cast<uint64_t>(first + count) * width;
        args.row_id_offset = first;
      }
      return args;
    };
    std::vector<RowMorsel> morsels;
    if (ctx.num_threads > 1) {
      morsels = SplitRowRanges(entry->bin_reader()->num_rows(),
                               ctx.num_threads * 4);
    }
    if (morsels.size() > 1) {
      ParallelTableScanOperator::Options popts;
      popts.num_threads = ctx.num_threads;
      std::vector<OperatorPtr> children;
      for (const RowMorsel& m : morsels) {
        children.push_back(std::make_unique<JitScanOperator>(
            ctx.jit, make_jit_args(m.first, m.count)));
      }
      (*ctx.desc) << "[parallel x" << ctx.num_threads << " morsels="
                  << morsels.size() << "] ";
      return OperatorPtr(std::make_unique<ParallelTableScanOperator>(
          qualified, std::move(children), std::move(popts)));
    }
    return OperatorPtr(std::make_unique<JitScanOperator>(
        ctx.jit, make_jit_args(0, entry->bin_reader()->num_rows())));
  }

  auto make_insitu = [&](int64_t first, int64_t count) {
    BinScanSpec spec;
    spec.outputs = cols;
    spec.batch_rows = opts.batch_rows;
    spec.first_row = first;
    spec.num_rows = count;
    return WrapQualified(std::make_unique<InsituBinScanOperator>(
                             entry->bin_reader(), std::move(spec)),
                         qualified);
  };
  std::vector<RowMorsel> morsels;
  if (ctx.num_threads > 1) {
    morsels = SplitRowRanges(entry->bin_reader()->num_rows(),
                             ctx.num_threads * 4);
  }
  if (morsels.size() > 1) {
    ParallelTableScanOperator::Options popts;
    popts.num_threads = ctx.num_threads;
    std::vector<OperatorPtr> children;
    for (const RowMorsel& m : morsels) {
      children.push_back(make_insitu(m.first, m.count));
    }
    (*ctx.desc) << "[parallel x" << ctx.num_threads << " morsels="
                << morsels.size() << "] ";
    return OperatorPtr(std::make_unique<ParallelTableScanOperator>(
        qualified, std::move(children), std::move(popts)));
  }
  return make_insitu(0, entry->bin_reader()->num_rows());
}

/// Builds the raw-file scan for `cols` of `entry` (no cache involvement).
StatusOr<OperatorPtr> BuildRawScan(BuildCtx& ctx, TableCtx& tc,
                                   const std::vector<int>& cols,
                                   bool* full_scan) {
  TableEntry* entry = tc.entry;
  const TableInfo& info = entry->info;
  const PlannerOptions& opts = *ctx.opts;
  *full_scan = true;
  Schema qualified = QualifiedSchema(*entry, cols);

  switch (info.format) {
    case FileFormat::kCsv: {
      if (opts.access_path == AccessPathKind::kExternalTable) {
        // The "external tables" baseline re-parses everything per query by
        // design; it stays serial (it is a comparison system, not a target).
        auto ext = std::make_unique<ExternalTableScanOperator>(
            entry->mmap(), info.schema, cols, info.csv_options,
            opts.batch_rows);
        return WrapQualified(std::move(ext), qualified);
      }
      if (!tc.has_complete_pmap()) {
        return BuildCsvSequentialScan(ctx, tc, cols, qualified);
      }
      return BuildCsvPositionalScan(ctx, tc, cols, qualified);
    }
    case FileFormat::kBinary:
      return BuildBinSequentialScan(ctx, tc, cols, qualified);
    case FileFormat::kRef: {
      (*ctx.desc) << "[ref-scan " << info.name << "] ";
      std::vector<std::string> field_names;
      bool needs_event_id_derivation = false;
      for (int c : cols) {
        const std::string& f = info.schema.field(c).name;
        field_names.push_back(f);
        if (f == "eventID" && info.ref_group >= 0) {
          needs_event_id_derivation = true;
        }
      }
      const bool use_jit = opts.access_path == AccessPathKind::kJit &&
                           !needs_event_id_derivation;

      auto make_jit_args = [&](int64_t first,
                               int64_t count) -> StatusOr<JitScanArgs> {
        AccessPathSpec spec;
        spec.format = FileFormat::kRef;
        spec.mode = ScanMode::kSequential;
        for (size_t i = 0; i < cols.size(); ++i) {
          RAW_ASSIGN_OR_RETURN(
              int branch, RefBranchFor(*entry->ref_reader(), info.ref_group,
                                       field_names[i]));
          spec.outputs.push_back(OutputField{
              branch, info.schema.field(cols[i]).type});
        }
        JitScanArgs args;
        args.spec = std::move(spec);
        args.output_schema = qualified;
        args.ref_reader = entry->ref_reader();
        args.first_row = first;
        args.total_rows = first + count;  // REF kernels scan [cursor, total)
        args.batch_rows = opts.batch_rows;
        return args;
      };
      auto make_insitu = [&](int64_t first, int64_t count) -> OperatorPtr {
        RefScanSpec spec;
        spec.group = info.ref_group;
        spec.fields = field_names;
        spec.batch_rows = opts.batch_rows;
        spec.first_row = first;
        spec.num_rows = count;
        auto op = std::make_unique<RefTableScanOperator>(entry->ref_reader(),
                                                         std::move(spec));
        std::vector<int> idx(cols.size());
        std::vector<std::string> names;
        for (size_t i = 0; i < cols.size(); ++i) {
          idx[i] = static_cast<int>(i);
          names.push_back(qualified.field(static_cast<int>(i)).name);
        }
        return std::make_unique<SelectColumnsOperator>(
            std::move(op), std::move(idx), std::move(names));
      };

      // Morsels split on cluster boundaries of the table's row branch, so
      // parallel workers decode disjoint cluster sets. Emitted row ids are
      // file-global already; the driver only re-orders batches.
      std::vector<RowMorsel> morsels;
      if (ctx.num_threads > 1) {
        const RefBranch* row_branch =
            entry->ref_reader()->RowBranch(info.ref_group);
        if (row_branch != nullptr) {
          morsels = SplitRefRowRanges(*row_branch, ctx.num_threads * 4);
        }
      }
      if (morsels.size() > 1) {
        ParallelTableScanOperator::Options popts;
        popts.num_threads = ctx.num_threads;
        std::vector<OperatorPtr> children;
        for (const RowMorsel& m : morsels) {
          if (use_jit) {
            RAW_ASSIGN_OR_RETURN(JitScanArgs args,
                                 make_jit_args(m.first, m.count));
            children.push_back(
                std::make_unique<JitScanOperator>(ctx.jit, std::move(args)));
          } else {
            children.push_back(make_insitu(m.first, m.count));
          }
        }
        (*ctx.desc) << "[parallel x" << ctx.num_threads << " morsels="
                    << morsels.size() << "] ";
        return OperatorPtr(std::make_unique<ParallelTableScanOperator>(
            qualified, std::move(children), std::move(popts)));
      }

      if (use_jit) {
        RAW_ASSIGN_OR_RETURN(JitScanArgs args,
                             make_jit_args(0, tc.row_count));
        return OperatorPtr(
            std::make_unique<JitScanOperator>(ctx.jit, std::move(args)));
      }
      return make_insitu(0, -1);
    }
  }
  return Status::Internal("bad format");
}

/// Builds the bottom-of-plan scan for `cols`, consulting the shred cache and
/// the DBMS-loaded copy, and wiring cache population.
StatusOr<OperatorPtr> BuildBaseScan(BuildCtx& ctx, TableCtx& tc,
                                    std::vector<int> cols) {
  cols = SortedUnique(std::move(cols));
  TableEntry* entry = tc.entry;
  const TableInfo& info = entry->info;
  const PlannerOptions& opts = *ctx.opts;

  if (opts.access_path == AccessPathKind::kLoaded) {
    RAW_RETURN_NOT_OK(EnsureLoaded(ctx, tc));
    // Scan only the needed columns of the loaded table, renamed to their
    // qualified form (the scan output is already in `cols` order).
    OperatorPtr scan = tc.loaded->CreateScan(opts.batch_rows, cols);
    std::vector<int> identity(cols.size());
    std::vector<std::string> names;
    for (size_t i = 0; i < cols.size(); ++i) {
      identity[i] = static_cast<int>(i);
      names.push_back(
          QualifiedName(info.name, info.schema.field(cols[i]).name));
    }
    return OperatorPtr(std::make_unique<SelectColumnsOperator>(
        std::move(scan), std::move(identity), std::move(names)));
  }

  // Partition into cache-served full columns and raw columns. When this
  // query holds the (not yet wired) positional-map build claim, skip the
  // cache so the sequential scan — and with it the map build the late scans
  // of this very plan rely on — is guaranteed to run.
  std::vector<int> cached_cols, raw_cols;
  std::vector<ColumnPtr> cached_values;
  const bool must_run_raw_scan =
      tc.building_pmap != nullptr && !tc.build_wired;
  if (opts.use_shred_cache && !must_run_raw_scan) {
    for (int c : cols) {
      auto hit = ctx.shreds->LookupFull(info.name, c);
      if (hit.ok()) {
        cached_cols.push_back(c);
        cached_values.push_back(std::move(hit).value());
      } else {
        raw_cols.push_back(c);
      }
    }
  } else {
    raw_cols = cols;
  }

  if (raw_cols.empty() && !cached_cols.empty()) {
    (*ctx.desc) << "[cache-scan " << info.name << "] ";
    return OperatorPtr(std::make_unique<CachedColumnsScanOperator>(
        QualifiedSchema(*entry, cached_cols), std::move(cached_values)));
  }

  bool full_scan = true;
  RAW_ASSIGN_OR_RETURN(OperatorPtr op,
                       BuildRawScan(ctx, tc, raw_cols, &full_scan));

  if (opts.populate_shred_cache) {
    std::vector<CacheInsertOperator::Mapping> mappings;
    for (size_t i = 0; i < raw_cols.size(); ++i) {
      mappings.push_back(
          CacheInsertOperator::Mapping{static_cast<int>(i), raw_cols[i]});
    }
    op = std::make_unique<CacheInsertOperator>(std::move(op), ctx.shreds,
                                               info.name, std::move(mappings),
                                               full_scan, entry);
  }

  if (!cached_cols.empty()) {
    (*ctx.desc) << "[cache-attach " << info.name << "] ";
    auto fetcher = std::make_unique<CachedColumnFetcher>(
        QualifiedSchema(*entry, cached_cols), std::move(cached_values));
    op = std::make_unique<LateScanOperator>(std::move(op), std::move(fetcher));
  }
  return op;
}

/// Builds a cache-aware late-scan fetcher for `cols` of `entry`.
StatusOr<RowFetcherPtr> BuildFetcher(BuildCtx& ctx, TableCtx& tc,
                                     std::vector<int> cols) {
  cols = SortedUnique(std::move(cols));
  TableEntry* entry = tc.entry;
  const TableInfo& info = entry->info;
  const PlannerOptions& opts = *ctx.opts;
  Schema qualified = QualifiedSchema(*entry, cols);
  RowFetcherPtr inner;

  switch (info.format) {
    case FileFormat::kCsv: {
      const PositionalMap* pmap = tc.pmap_view();
      if (pmap == nullptr) {
        return Status::Internal(
            "CSV late scan requires a positional map (none configured)");
      }
      int anchor = pmap->tracked_columns().front();
      for (int t : pmap->tracked_columns()) {
        if (t <= cols.front()) anchor = t;
      }
      if (opts.access_path == AccessPathKind::kJit &&
          CsvJitEligible(*entry, cols)) {
        AccessPathSpec spec;
        spec.format = FileFormat::kCsv;
        spec.mode = ScanMode::kByPosition;
        spec.delimiter = info.csv_options.delimiter;
        spec.anchor_column = anchor;
        for (int c : cols) {
          spec.outputs.push_back(OutputField{c, info.schema.field(c).type});
        }
        JitScanArgs args;
        args.spec = std::move(spec);
        args.output_schema = qualified;
        args.file = entry->mmap();
        inner = std::make_unique<JitRowFetcher>(ctx.jit, std::move(args),
                                                pmap);
      } else {
        CsvScanSpec spec;
        spec.file_schema = info.schema;
        spec.outputs = cols;
        spec.options = info.csv_options;
        spec.quoted = entry->csv_quoted();
        spec.use_pmap = pmap;
        spec.anchor_column = anchor;
        auto fetcher = std::make_unique<InsituRowFetcher>(entry->mmap(),
                                                          std::move(spec));
        fetcher->set_fields(qualified);
        inner = std::move(fetcher);
      }
      break;
    }
    case FileFormat::kBinary: {
      if (opts.access_path == AccessPathKind::kJit) {
        RAW_ASSIGN_OR_RETURN(BinaryLayout layout,
                             BinaryLayout::Create(info.schema));
        AccessPathSpec spec;
        spec.format = FileFormat::kBinary;
        spec.mode = ScanMode::kByRowIndex;
        spec.row_width = layout.row_width();
        for (int c : cols) {
          spec.outputs.push_back(OutputField{c, info.schema.field(c).type});
          spec.column_offsets.push_back(layout.ColumnOffset(c));
        }
        JitScanArgs args;
        args.spec = std::move(spec);
        args.output_schema = qualified;
        args.file = entry->mmap();
        inner = std::make_unique<JitRowFetcher>(ctx.jit, std::move(args));
      } else {
        BinScanSpec spec;
        spec.outputs = cols;
        auto fetcher = std::make_unique<InsituRowFetcher>(
            entry->bin_reader(), std::move(spec));
        fetcher->set_fields(qualified);
        inner = std::move(fetcher);
      }
      break;
    }
    case FileFormat::kRef: {
      std::vector<std::string> field_names;
      bool derived_event_id = false;
      for (int c : cols) {
        field_names.push_back(info.schema.field(c).name);
        if (field_names.back() == "eventID" && info.ref_group >= 0) {
          derived_event_id = true;
        }
      }
      if (opts.access_path == AccessPathKind::kJit && !derived_event_id) {
        AccessPathSpec spec;
        spec.format = FileFormat::kRef;
        spec.mode = ScanMode::kByRowIndex;
        for (size_t i = 0; i < cols.size(); ++i) {
          RAW_ASSIGN_OR_RETURN(
              int branch, RefBranchFor(*entry->ref_reader(), info.ref_group,
                                       field_names[i]));
          spec.outputs.push_back(
              OutputField{branch, info.schema.field(cols[i]).type});
        }
        JitScanArgs args;
        args.spec = std::move(spec);
        args.output_schema = qualified;
        args.ref_reader = entry->ref_reader();
        inner = std::make_unique<JitRowFetcher>(ctx.jit, std::move(args));
      } else {
        inner = std::make_unique<RefRowFetcher>(entry->ref_reader(),
                                                info.ref_group, field_names,
                                                qualified);
      }
      break;
    }
  }
  // Big row sets fan out over the pool (order-preserving chunks); the cache
  // wrapper sits outside so a subsuming shred still answers in one lookup.
  if (ctx.num_threads > 1) {
    inner = std::make_unique<ParallelRowFetcher>(
        std::move(inner), ThreadPool::Shared(), ctx.num_threads);
    (*ctx.desc) << "[parallel-fetch x" << ctx.num_threads << "] ";
  }
  if (!opts.use_shred_cache) return inner;
  return RowFetcherPtr(std::make_unique<CacheAwareFetcher>(
      ctx.shreds, info.name, cols, std::move(inner)));
}

// =============================================================================
// Spec resolution helpers
// =============================================================================

/// Resolves a (possibly unqualified) column reference to a table + column
/// index among the query's tables.
Status ResolveRef(const std::vector<TableEntry*>& tables, ColumnRefSpec* ref,
                  TableEntry** out_entry, int* out_column) {
  TableEntry* found = nullptr;
  int column = -1;
  for (TableEntry* entry : tables) {
    if (!ref->table.empty() && entry->info.name != ref->table) continue;
    int idx = entry->info.schema.FieldIndex(ref->column);
    if (idx < 0) continue;
    if (found != nullptr) {
      return Status::InvalidArgument("ambiguous column reference '" +
                                     ref->column + "'");
    }
    found = entry;
    column = idx;
  }
  if (found == nullptr) {
    return Status::NotFound("column '" + ref->ToString() +
                            "' not found in query tables");
  }
  ref->table = found->info.name;
  *out_entry = found;
  *out_column = column;
  return Status::OK();
}

/// Finds the index of "<table>.<column>" in `schema` or returns an error.
StatusOr<int> QualifiedIndex(const Schema& schema, const ColumnRefSpec& ref) {
  int idx = schema.FieldIndex(QualifiedName(ref.table, ref.column));
  if (idx < 0) {
    return Status::Internal("planner lost track of column " + ref.ToString());
  }
  return idx;
}

/// Builds the bound filter expression for a predicate against `schema`.
StatusOr<ExprPtr> BindPredicate(const Schema& schema,
                                const PredicateSpec& pred) {
  RAW_ASSIGN_OR_RETURN(int idx, QualifiedIndex(schema, pred.column));
  return Cmp(pred.op, Col(idx), Lit(pred.literal));
}

// Per-side planning state for the cascade builder.
struct SidePlan {
  TableEntry* entry = nullptr;
  std::vector<PredicateSpec> predicates;  // bound to this table, query order
  std::vector<int> predicate_cols;        // parallel column indices
  std::vector<int> force_base;            // columns forced into the base scan
  std::vector<int> needed_after;          // columns fetched after filters
  /// Concrete policy for this side (kAdaptive already resolved).
  ShredPolicy policy = ShredPolicy::kShreds;
};

/// Estimates the fraction of `entry`'s rows passing `pred` using the shred
/// cache (exact when the full predicate column is cached), or nullopt.
std::optional<double> EstimateSelectivity(ShredCache* shreds,
                                          const TableEntry& entry,
                                          const PredicateSpec& pred, int col) {
  auto cached = shreds->LookupFull(entry.info.name, col);
  if (!cached.ok()) return std::nullopt;
  const Column& values = **cached;
  if (values.length() == 0) return 1.0;
  ColumnBatch batch;
  batch.AddColumn(*cached);
  SelectionVector passing;
  ExprPtr expr = Cmp(pred.op, Col(0), Lit(pred.literal));
  if (!expr->EvaluateSelection(batch, &passing).ok()) return std::nullopt;
  return static_cast<double>(passing.size()) /
         static_cast<double>(values.length());
}

/// Resolves kAdaptive to a concrete policy for one table side using the
/// cost model: estimate the combined selectivity below each late-fetch
/// point, then compare full-column vs shred vs multi-column costs.
ShredPolicy ResolveAdaptivePolicy(BuildCtx& ctx, const SidePlan& side) {
  const TableEntry& entry = *side.entry;
  const TableCtx& tc = ctx.Ctx(side.entry);
  if (tc.row_count < 0) {
    // First contact with the file: row count unknown, predicate columns not
    // cached. Shreds are never worse than full columns for the bottom
    // predicate and strictly cheaper when anything is filtered.
    (*ctx.desc) << "[adaptive: no stats -> shreds] ";
    return ShredPolicy::kShreds;
  }
  double selectivity = 1.0;
  bool any_estimate = false;
  for (size_t i = 0; i < side.predicates.size(); ++i) {
    std::optional<double> est = EstimateSelectivity(
        ctx.shreds, entry, side.predicates[i], side.predicate_cols[i]);
    if (est.has_value()) {
      selectivity *= *est;
      any_estimate = true;
    } else {
      selectivity *= 0.5;  // agnostic default for unseen predicates
    }
  }
  ShredDecisionInput in;
  in.format = entry.info.format;
  in.table_rows = tc.row_count;
  in.selectivity = selectivity;
  // Columns a late scan would fetch: predicates beyond the first + upstream.
  int fetch_cols = static_cast<int>(side.needed_after.size());
  if (side.predicates.size() > 1) {
    fetch_cols += static_cast<int>(side.predicates.size()) - 1;
  }
  in.colocated_columns = std::max(fetch_cols, 1);
  if (entry.info.format == FileFormat::kCsv && tc.has_complete_pmap()) {
    // Typical skip distance: half the tracking stride.
    const auto& tracked = tc.published_pmap->tracked_columns();
    int stride = tracked.size() > 1 ? tracked[1] - tracked[0]
                                    : entry.info.schema.num_fields();
    in.skip_distance = stride / 2;
  }
  CostModel model;
  ShredPolicy policy = model.ChoosePolicy(in);
  (*ctx.desc) << "[adaptive: sel=" << selectivity
              << (any_estimate ? " (cache-estimated)" : " (default)")
              << " -> " << ShredPolicyToString(policy) << "] ";
  return policy;
}

/// Wraps `op` (a LateScanOperator output) so the freshly fetched columns are
/// registered in the shred pool at Close() — "creating only subsets (shreds)
/// of columns ... preserved in a pool" (§3/§5.1). Only used below filter
/// cascades, where row ids are strictly increasing (post-join order is not).
OperatorPtr WrapLateScanCacheInsert(BuildCtx& ctx, OperatorPtr op,
                                    TableEntry* entry, int base_fields,
                                    const std::vector<int>& fetch_cols) {
  if (!ctx.opts->populate_shred_cache) return op;
  std::vector<CacheInsertOperator::Mapping> mappings;
  for (size_t j = 0; j < fetch_cols.size(); ++j) {
    mappings.push_back(CacheInsertOperator::Mapping{
        base_fields + static_cast<int>(j), fetch_cols[j]});
  }
  return std::make_unique<CacheInsertOperator>(
      std::move(op), ctx.shreds, entry->info.name, std::move(mappings),
      /*full_scan=*/false, /*row_count_sink=*/nullptr);
}

/// Builds scan -> [late scan, filter]* -> [late scan] for one table.
StatusOr<OperatorPtr> BuildTableSubplan(BuildCtx& ctx, SidePlan& side) {
  const PlannerOptions& opts = *ctx.opts;
  TableCtx& tc = ctx.Ctx(side.entry);
  const std::string& table = side.entry->info.name;

  // A CSV table without any positional map in reach (published, or built by
  // this very query) cannot serve late scans: force every column into the
  // base scan instead. This covers build_positional_map=false and the case
  // where another in-flight session holds the build claim.
  bool csv_can_late_scan = true;
  if (side.entry->info.format == FileFormat::kCsv &&
      opts.access_path != AccessPathKind::kLoaded &&
      opts.access_path != AccessPathKind::kExternalTable &&
      !tc.has_complete_pmap()) {
    csv_can_late_scan = LateScanFeasible(ctx, tc);
    if (!csv_can_late_scan) {
      (*ctx.desc) << "[no-pmap: full columns " << table << "] ";
    }
  }

  const bool full_columns =
      side.policy == ShredPolicy::kFullColumns ||
      opts.access_path == AccessPathKind::kLoaded ||
      opts.access_path == AccessPathKind::kExternalTable ||
      !csv_can_late_scan;

  std::vector<int> base_cols = side.force_base;
  std::set<int> have;
  if (full_columns) {
    for (int c : side.predicate_cols) base_cols.push_back(c);
    for (int c : side.needed_after) base_cols.push_back(c);
  } else if (!side.predicate_cols.empty()) {
    base_cols.push_back(side.predicate_cols.front());
  } else {
    for (int c : side.needed_after) base_cols.push_back(c);
  }
  if (base_cols.empty()) {
    // Degenerate: no predicates, nothing needed below — still scan something
    // to drive row ids (first schema column).
    base_cols.push_back(0);
  }
  base_cols = SortedUnique(std::move(base_cols));
  for (int c : base_cols) have.insert(c);

  RAW_ASSIGN_OR_RETURN(OperatorPtr op, BuildBaseScan(ctx, tc, base_cols));

  for (size_t i = 0; i < side.predicates.size(); ++i) {
    int col = side.predicate_cols[i];
    if (have.count(col) == 0) {
      std::vector<int> fetch_cols = {col};
      if (side.policy == ShredPolicy::kMultiColumnShreds) {
        // Speculatively fetch nearby columns needed later in the same pass
        // (§5.3.1: "it may be comparatively cheap to read nearby fields").
        for (size_t k = i + 1; k < side.predicates.size(); ++k) {
          int other = side.predicate_cols[k];
          if (have.count(other) == 0 &&
              std::abs(other - col) <= opts.speculation_window) {
            fetch_cols.push_back(other);
          }
        }
        for (int other : side.needed_after) {
          if (have.count(other) == 0 &&
              std::abs(other - col) <= opts.speculation_window) {
            fetch_cols.push_back(other);
          }
        }
      }
      fetch_cols = SortedUnique(std::move(fetch_cols));
      RAW_ASSIGN_OR_RETURN(RowFetcherPtr fetcher,
                           BuildFetcher(ctx, tc, fetch_cols));
      (*ctx.desc) << "[late-scan " << table << ":";
      for (int c : fetch_cols) (*ctx.desc) << c << ",";
      (*ctx.desc) << "] ";
      RAW_RETURN_NOT_OK(op->Open());  // idempotent; exposes the field count
      int base_fields = op->output_schema().num_fields();
      op = std::make_unique<LateScanOperator>(std::move(op),
                                              std::move(fetcher));
      op = WrapLateScanCacheInsert(ctx, std::move(op), side.entry, base_fields,
                                   fetch_cols);
      for (int c : fetch_cols) have.insert(c);
    }
    // Operator Open() is idempotent before the first Next(); opening here
    // materializes the subtree's output schema so the predicate can bind.
    RAW_RETURN_NOT_OK(op->Open());
    RAW_ASSIGN_OR_RETURN(
        ExprPtr pred, BindPredicate(op->output_schema(), side.predicates[i]));
    op = std::make_unique<FilterOperator>(std::move(op), std::move(pred));
    (*ctx.desc) << "[filter " << side.predicates[i].ToString() << "] ";
  }

  std::vector<int> missing;
  for (int c : side.needed_after) {
    if (have.count(c) == 0) missing.push_back(c);
  }
  if (!missing.empty()) {
    missing = SortedUnique(std::move(missing));
    RAW_ASSIGN_OR_RETURN(RowFetcherPtr fetcher,
                         BuildFetcher(ctx, tc, missing));
    (*ctx.desc) << "[late-scan " << table << ":";
    for (int c : missing) (*ctx.desc) << c << ",";
    (*ctx.desc) << "] ";
    RAW_RETURN_NOT_OK(op->Open());
    int base_fields = op->output_schema().num_fields();
    op = std::make_unique<LateScanOperator>(std::move(op), std::move(fetcher));
    op = WrapLateScanCacheInsert(ctx, std::move(op), side.entry, base_fields,
                                 missing);
  }
  return op;
}

}  // namespace

// =============================================================================
// Planner::Plan
// =============================================================================

StatusOr<PhysicalPlan> Planner::Plan(const QuerySpec& query,
                                     const PlannerOptions& options) {
  RAW_RETURN_NOT_OK(query.Validate());
  for (const PredicateSpec& pred : query.predicates) {
    if (pred.is_parameter()) {
      return Status::InvalidArgument(
          "query has unbound '?' parameters; execute it through "
          "Session::Prepare");
    }
  }

  PhysicalPlan plan;
  std::ostringstream desc;
  // Which kernel dispatch tier the hot scan/eval loops will run on — benches
  // assert on this so recorded numbers prove which path executed.
  desc << "[kernels=" << KernelTierName(ActiveKernelTier()) << "] ";
  double compile_seconds = 0;
  std::map<TableEntry*, TableCtx> table_ctxs;
  BuildCtx ctx{catalog_,         jit_,  shreds_,
               &options,         &compile_seconds,
               &desc,            ResolveNumThreads(options.num_threads),
               &table_ctxs};

  // Resolve tables.
  std::vector<TableEntry*> entries;
  for (const std::string& t : query.tables) {
    RAW_ASSIGN_OR_RETURN(TableEntry * entry, catalog_->Get(t));
    entries.push_back(entry);
    ctx.Ctx(entry);  // snapshot adaptive state once per query
  }

  // If planning fails after a table context claimed a pmap build without
  // wiring it into an operator (which would own the claim), release it.
  struct ClaimGuard {
    std::map<TableEntry*, TableCtx>* tables;
    bool disarm = false;
    ~ClaimGuard() {
      if (disarm) return;
      for (auto& [entry, tc] : *tables) {
        if (tc.building_pmap != nullptr && !tc.build_wired) {
          entry->AbandonPmapBuild();
        }
      }
    }
  } claim_guard{&table_ctxs};

  // Resolve all column references (mutating copies of the spec items).
  QuerySpec q = query;
  auto resolve = [&](ColumnRefSpec* ref, TableEntry** entry,
                     int* column) -> Status {
    return ResolveRef(entries, ref, entry, column);
  };

  std::vector<TableEntry*> pred_entry(q.predicates.size());
  std::vector<int> pred_col(q.predicates.size());
  for (size_t i = 0; i < q.predicates.size(); ++i) {
    RAW_RETURN_NOT_OK(
        resolve(&q.predicates[i].column, &pred_entry[i], &pred_col[i]));
  }
  struct OutCol {
    TableEntry* entry;
    int column;
  };
  std::vector<OutCol> agg_cols(q.aggregates.size());
  for (size_t i = 0; i < q.aggregates.size(); ++i) {
    if (q.aggregates[i].count_star) {
      agg_cols[i] = {nullptr, -1};
      continue;
    }
    RAW_RETURN_NOT_OK(resolve(&q.aggregates[i].column, &agg_cols[i].entry,
                              &agg_cols[i].column));
  }
  std::vector<OutCol> proj_cols(q.projections.size());
  for (size_t i = 0; i < q.projections.size(); ++i) {
    RAW_RETURN_NOT_OK(
        resolve(&q.projections[i], &proj_cols[i].entry, &proj_cols[i].column));
  }
  std::vector<OutCol> group_cols(q.group_by.size());
  for (size_t i = 0; i < q.group_by.size(); ++i) {
    RAW_RETURN_NOT_OK(
        resolve(&q.group_by[i], &group_cols[i].entry, &group_cols[i].column));
  }

  OperatorPtr op;

  if (!q.is_join()) {
    SidePlan side;
    side.entry = entries[0];
    for (size_t i = 0; i < q.predicates.size(); ++i) {
      side.predicates.push_back(q.predicates[i]);
      side.predicate_cols.push_back(pred_col[i]);
    }
    for (const OutCol& c : agg_cols) {
      if (c.entry != nullptr) side.needed_after.push_back(c.column);
    }
    for (const OutCol& c : proj_cols) side.needed_after.push_back(c.column);
    for (const OutCol& c : group_cols) side.needed_after.push_back(c.column);
    side.policy = options.shred_policy;
    if (side.policy == ShredPolicy::kAdaptive) {
      side.policy = ResolveAdaptivePolicy(ctx, side);
    }
    RAW_ASSIGN_OR_RETURN(op, BuildTableSubplan(ctx, side));
  } else {
    TableEntry* probe_entry = entries[0];
    TableEntry* build_entry = entries[1];

    // Resolve join keys.
    TableEntry* jl_entry;
    int jl_col;
    TableEntry* jr_entry;
    int jr_col;
    RAW_RETURN_NOT_OK(resolve(&q.join_left, &jl_entry, &jl_col));
    RAW_RETURN_NOT_OK(resolve(&q.join_right, &jr_entry, &jr_col));
    if (jl_entry == build_entry && jr_entry == probe_entry) {
      std::swap(jl_entry, jr_entry);
      std::swap(jl_col, jr_col);
      std::swap(q.join_left, q.join_right);
    }
    if (jl_entry != probe_entry || jr_entry != build_entry) {
      return Status::InvalidArgument(
          "join condition must reference both tables");
    }

    SidePlan probe, build;
    probe.entry = probe_entry;
    build.entry = build_entry;
    probe.needed_after.push_back(jl_col);
    build.needed_after.push_back(jr_col);
    for (size_t i = 0; i < q.predicates.size(); ++i) {
      SidePlan& side = pred_entry[i] == probe_entry ? probe : build;
      side.predicates.push_back(q.predicates[i]);
      side.predicate_cols.push_back(pred_col[i]);
    }

    // Projected / aggregated columns: placement decides which side structure
    // receives them (early -> base scan, intermediate -> after side filters,
    // late -> after the join). Post-join late scans need a navigable
    // positional map for CSV sides; when none is in reach (baseline access
    // paths, build_positional_map off, or another session holds the build
    // claim) the columns demote to intermediate placement instead of
    // failing at fetch time.
    const bool probe_late_ok = LateScanFeasible(ctx, ctx.Ctx(probe_entry));
    const bool build_late_ok = LateScanFeasible(ctx, ctx.Ctx(build_entry));
    std::vector<OutCol> late_probe, late_build;
    auto place = [&](const OutCol& c) {
      if (c.entry == nullptr) return;
      SidePlan& side = c.entry == probe_entry ? probe : build;
      JoinProjectionPlacement placement = options.join_placement;
      if (placement == JoinProjectionPlacement::kLate &&
          !(c.entry == probe_entry ? probe_late_ok : build_late_ok)) {
        placement = JoinProjectionPlacement::kIntermediate;
        (*ctx.desc) << "[no-pmap: late->intermediate "
                    << c.entry->info.name << "] ";
      }
      switch (placement) {
        case JoinProjectionPlacement::kEarly:
          side.force_base.push_back(c.column);
          break;
        case JoinProjectionPlacement::kIntermediate:
          side.needed_after.push_back(c.column);
          break;
        case JoinProjectionPlacement::kLate:
          if (c.entry == probe_entry) {
            late_probe.push_back(c);
          } else {
            late_build.push_back(c);
          }
          break;
      }
    };
    for (const OutCol& c : agg_cols) {
      // Join keys and group keys must exist at the join; only non-key
      // payload columns are placement-sensitive.
      place(c);
    }
    for (const OutCol& c : proj_cols) place(c);
    for (const OutCol& c : group_cols) {
      // Group keys are needed at the group-by; treat as intermediate to be
      // safe (available right after the join).
      SidePlan& side = c.entry == probe_entry ? probe : build;
      side.needed_after.push_back(c.column);
    }

    probe.policy = options.shred_policy;
    build.policy = options.shred_policy;
    if (probe.policy == ShredPolicy::kAdaptive) {
      probe.policy = ResolveAdaptivePolicy(ctx, probe);
    }
    if (build.policy == ShredPolicy::kAdaptive) {
      build.policy = ResolveAdaptivePolicy(ctx, build);
    }

    RAW_ASSIGN_OR_RETURN(OperatorPtr probe_op, BuildTableSubplan(ctx, probe));
    RAW_ASSIGN_OR_RETURN(OperatorPtr build_op, BuildTableSubplan(ctx, build));

    const bool emit_build_ids = !late_build.empty();
    // Open the (idempotent) subplans so their qualified output schemas exist
    // for join-key resolution.
    RAW_RETURN_NOT_OK(probe_op->Open());
    RAW_RETURN_NOT_OK(build_op->Open());
    RAW_ASSIGN_OR_RETURN(int probe_key,
                         QualifiedIndex(probe_op->output_schema(), q.join_left));
    RAW_ASSIGN_OR_RETURN(int build_key, QualifiedIndex(build_op->output_schema(),
                                                       q.join_right));
    (*ctx.desc) << "[hash-join " << q.join_left.ToString() << "="
                << q.join_right.ToString() << " placement="
                << JoinProjectionPlacementToString(options.join_placement)
                << "] ";
    auto join = std::make_unique<HashJoinOperator>(
        std::move(probe_op), std::move(build_op), probe_key, build_key,
        emit_build_ids);
    if (ctx.num_threads > 1) {
      join->SetParallel(ThreadPool::Shared(), ctx.num_threads);
      (*ctx.desc) << "[parallel join-build x" << ctx.num_threads << "] ";
    }
    // Build structure stats (rows/buckets/max-chain) only exist after the
    // drain; report them through the post-execution describers.
    HashJoinOperator* join_ptr = join.get();
    plan.runtime_describers.push_back(
        [join_ptr] { return join_ptr->build_stats(); });
    op = std::move(join);

    if (!late_probe.empty()) {
      std::vector<int> cols;
      for (const OutCol& c : late_probe) cols.push_back(c.column);
      RAW_ASSIGN_OR_RETURN(RowFetcherPtr fetcher,
                           BuildFetcher(ctx, ctx.Ctx(probe_entry), cols));
      (*ctx.desc) << "[late-scan(post-join,pipelined) " << probe_entry->info.name
                  << "] ";
      op = std::make_unique<LateScanOperator>(std::move(op),
                                              std::move(fetcher));
    }
    if (!late_build.empty()) {
      std::vector<int> cols;
      for (const OutCol& c : late_build) cols.push_back(c.column);
      RAW_ASSIGN_OR_RETURN(RowFetcherPtr fetcher,
                           BuildFetcher(ctx, ctx.Ctx(build_entry), cols));
      (*ctx.desc) << "[late-scan(post-join,breaking) " << build_entry->info.name
                  << "] ";
      op = std::make_unique<LateScanOperator>(
          std::move(op), std::move(fetcher),
          HashJoinOperator::kBuildRowIdColumn);
    }
  }

  // Aggregation / grouping / projection.
  if (q.is_aggregate()) {
    RAW_RETURN_NOT_OK(op->Open());
    const Schema& in = op->output_schema();
    std::vector<AggSpec> specs;
    for (size_t i = 0; i < q.aggregates.size(); ++i) {
      AggSpec spec;
      spec.kind = q.aggregates[i].kind;
      if (q.aggregates[i].count_star) {
        spec.input = -1;
      } else {
        RAW_ASSIGN_OR_RETURN(spec.input,
                             QualifiedIndex(in, q.aggregates[i].column));
      }
      spec.output_name =
          !q.aggregates[i].output_name.empty()
              ? q.aggregates[i].output_name
              : std::string(AggKindToString(q.aggregates[i].kind)) + "(" +
                    (q.aggregates[i].count_star
                         ? "*"
                         : q.aggregates[i].column.ToString()) +
                    ")";
      specs.push_back(std::move(spec));
    }
    if (q.group_by.empty()) {
      op = std::make_unique<AggregateOperator>(std::move(op), std::move(specs));
      (*ctx.desc) << "[aggregate] ";
    } else {
      std::vector<int> keys;
      for (const ColumnRefSpec& g : q.group_by) {
        RAW_ASSIGN_OR_RETURN(int idx, QualifiedIndex(in, g));
        keys.push_back(idx);
      }
      auto group_by = std::make_unique<HashGroupByOperator>(
          std::move(op), std::move(keys), std::move(specs));
      if (ctx.num_threads > 1) {
        group_by->SetParallel(ThreadPool::Shared(), ctx.num_threads);
        (*ctx.desc) << "[group-by x" << ctx.num_threads << "] ";
      } else {
        (*ctx.desc) << "[group-by] ";
      }
      op = std::move(group_by);
    }
  } else {
    RAW_RETURN_NOT_OK(op->Open());
    const Schema& in = op->output_schema();
    std::vector<int> indices;
    std::vector<std::string> names;
    std::set<std::string> used;
    for (const ColumnRefSpec& p : q.projections) {
      RAW_ASSIGN_OR_RETURN(int idx, QualifiedIndex(in, p));
      indices.push_back(idx);
      std::string name = p.column;
      if (!used.insert(name).second) name = QualifiedName(p.table, p.column);
      names.push_back(name);
    }
    op = std::make_unique<SelectColumnsOperator>(std::move(op),
                                                 std::move(indices),
                                                 std::move(names));
    (*ctx.desc) << "[project] ";
  }

  if (q.limit >= 0) {
    op = std::make_unique<LimitOperator>(std::move(op), q.limit);
    (*ctx.desc) << "[limit " << q.limit << "] ";
  }

  // Pin the per-query snapshots for the plan's lifetime: operators reference
  // them by raw pointer, and streaming cursors may outlive engine-side state.
  for (auto& [entry, tc] : table_ctxs) {
    if (tc.published_pmap != nullptr) plan.resources.push_back(tc.published_pmap);
    if (tc.building_pmap != nullptr) plan.resources.push_back(tc.building_pmap);
    if (tc.loaded != nullptr) plan.resources.push_back(tc.loaded);
  }
  claim_guard.disarm = true;  // wired claims are owned by PmapPublishOperator

  plan.root = std::move(op);
  plan.description = desc.str();
  plan.compile_seconds = compile_seconds;
  return plan;
}

}  // namespace raw
