#include "engine/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "common/kernels.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "engine/cost_model.h"
#include "engine/executor.h"
#include "engine/formats/driver_util.h"

#include "columnar/filter.h"
#include "columnar/hash_group_by.h"
#include "columnar/hash_join.h"
#include "columnar/project.h"
#include "jit/pipeline_spec.h"
#include "scan/fused_pipeline.h"
#include "scan/shred_scan.h"

namespace raw {

std::string QualifiedName(const std::string& table,
                          const std::string& column) {
  return table + "." + column;
}

namespace {

// =============================================================================
// Small plan-glue operators
// =============================================================================
// Format-specific plan glue (scan construction, fetchers, publish operators)
// lives with the format drivers (engine/formats/); what remains here is the
// format-agnostic part: limits, cache wiring, and subplan assembly.

/// LIMIT n.
class LimitOperator : public Operator {
 public:
  LimitOperator(OperatorPtr child, int64_t limit)
      : child_(std::move(child)), limit_(limit) {}

  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  Status Open() override {
    emitted_ = 0;
    return child_->Open();
  }
  StatusOr<ColumnBatch> Next() override {
    if (emitted_ >= limit_) {
      return ColumnBatch::EndOfStream(child_->output_schema());
    }
    RAW_ASSIGN_OR_RETURN(ColumnBatch batch, child_->Next());
    if (batch.end_of_stream() || batch.empty()) return batch;
    if (emitted_ + batch.num_rows() > limit_) {
      SelectionVector head;
      for (int64_t i = 0; i < limit_ - emitted_; ++i) {
        head.Append(static_cast<int32_t>(i));
      }
      batch = batch.Filter(head);
    }
    emitted_ += batch.num_rows();
    return batch;
  }
  Status Close() override { return child_->Close(); }
  std::string name() const override { return "Limit"; }

 private:
  OperatorPtr child_;
  int64_t limit_;
  int64_t emitted_ = 0;
};

/// Emits a set of full, already-materialized columns (cache hits) as one
/// zero-copy batch with sequential row ids.
class CachedColumnsScanOperator : public Operator {
 public:
  CachedColumnsScanOperator(Schema schema, std::vector<ColumnPtr> columns)
      : schema_(std::move(schema)), columns_(std::move(columns)) {}

  const Schema& output_schema() const override { return schema_; }
  Status Open() override {
    done_ = false;
    return Status::OK();
  }
  StatusOr<ColumnBatch> Next() override {
    if (done_) return ColumnBatch::EndOfStream(schema_);
    ColumnBatch out(schema_);
    done_ = true;
    for (const ColumnPtr& col : columns_) out.AddColumn(col);
    int64_t rows = columns_.empty() ? 0 : columns_[0]->length();
    out.SetNumRows(rows);
    std::vector<int64_t> ids(static_cast<size_t>(rows));
    for (int64_t i = 0; i < rows; ++i) ids[static_cast<size_t>(i)] = i;
    out.SetRowIds(std::move(ids));
    return out;
  }
  std::string name() const override { return "CachedColumnsScan"; }

 private:
  Schema schema_;
  std::vector<ColumnPtr> columns_;
  bool done_ = false;
};

/// Accumulates the values flowing out of a raw scan and registers them in the
/// shred cache at Close() — "RAW preserves a pool of column shreds populated
/// as a side-effect of previous queries" (§3). Also discovers the table's
/// row count on full scans.
class CacheInsertOperator : public Operator {
 public:
  struct Mapping {
    int output_index;  // column in the child's output
    int table_column;  // column in the table's schema
  };

  CacheInsertOperator(OperatorPtr child, ShredCache* cache, std::string table,
                      std::vector<Mapping> mappings, bool full_scan,
                      TableEntry* row_count_sink)
      : child_(std::move(child)),
        cache_(cache),
        table_(std::move(table)),
        mappings_(std::move(mappings)),
        full_scan_(full_scan),
        row_count_sink_(row_count_sink) {}

  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  Status Open() override {
    RAW_RETURN_NOT_OK(child_->Open());
    accumulators_.clear();
    for (const Mapping& m : mappings_) {
      accumulators_.push_back(std::make_shared<Column>(
          child_->output_schema().field(m.output_index).type));
    }
    row_ids_.clear();
    drained_ = false;
    return Status::OK();
  }
  StatusOr<ColumnBatch> Next() override {
    RAW_ASSIGN_OR_RETURN(ColumnBatch batch, child_->Next());
    if (batch.end_of_stream()) {
      drained_ = true;
      return batch;
    }
    if (batch.has_row_ids()) {
      row_ids_.insert(row_ids_.end(), batch.row_ids().begin(),
                      batch.row_ids().end());
      for (size_t i = 0; i < mappings_.size(); ++i) {
        RAW_RETURN_NOT_OK(accumulators_[i]->AppendColumn(
            *batch.column(mappings_[i].output_index)));
      }
    }
    return batch;
  }
  Status Close() override {
    if (drained_ && !row_ids_.empty()) {
      bool contiguous = true;
      for (size_t i = 0; i < row_ids_.size(); ++i) {
        if (row_ids_[i] != static_cast<int64_t>(i)) {
          contiguous = false;
          break;
        }
      }
      for (size_t i = 0; i < mappings_.size(); ++i) {
        RAW_RETURN_NOT_OK(cache_->Insert(
            table_, mappings_[i].table_column,
            (contiguous && full_scan_) ? nullptr : row_ids_.data(),
            *accumulators_[i]));
      }
      if (full_scan_ && contiguous && row_count_sink_ != nullptr) {
        row_count_sink_->SetRowCountIfUnknown(
            static_cast<int64_t>(row_ids_.size()));
      }
    }
    accumulators_.clear();
    row_ids_.clear();
    return child_->Close();
  }
  std::string name() const override { return "CacheInsert"; }

 private:
  OperatorPtr child_;
  ShredCache* cache_;
  std::string table_;
  std::vector<Mapping> mappings_;
  bool full_scan_;
  TableEntry* row_count_sink_;
  std::vector<ColumnPtr> accumulators_;
  std::vector<int64_t> row_ids_;
  bool drained_ = false;
};

/// RowFetcher that consults the shred cache first and falls back to a raw
/// fetcher on a subsumption miss (all-or-nothing per fetch).
class CacheAwareFetcher : public RowFetcher {
 public:
  CacheAwareFetcher(ShredCache* cache, std::string table,
                    std::vector<int> table_columns, RowFetcherPtr inner)
      : cache_(cache),
        table_(std::move(table)),
        table_columns_(std::move(table_columns)),
        inner_(std::move(inner)) {}

  const Schema& fields() const override { return inner_->fields(); }

  StatusOr<std::vector<ColumnPtr>> Fetch(const RowSet& rows) override {
    if (cache_ != nullptr) {
      std::vector<ColumnPtr> cached;
      bool all_hit = true;
      for (int col : table_columns_) {
        auto hit = cache_->Lookup(table_, col, rows.ids);
        if (!hit.ok()) {
          all_hit = false;
          break;
        }
        cached.push_back(std::move(hit).value());
      }
      if (all_hit) return cached;
    }
    return inner_->Fetch(rows);
  }

 private:
  ShredCache* cache_;
  std::string table_;
  std::vector<int> table_columns_;
  RowFetcherPtr inner_;
};

// =============================================================================
// Planning context and helpers
// =============================================================================

/// Per-query planning state: tables map to their FormatScanContext — the
/// per-(query, table) snapshot threaded through every FormatDriver hook.
struct BuildCtx {
  Catalog* catalog;
  JitTemplateCache* jit;
  ShredCache* shreds;
  const PlannerOptions* opts;
  double* compile_seconds;
  std::ostringstream* desc;
  int num_threads = 1;  // resolved from opts->num_threads once per plan
  std::map<TableEntry*, FormatScanContext>* tables = nullptr;
  ScanHealth* health = nullptr;  // owned by the PhysicalPlan under build

  FormatScanContext& Ctx(TableEntry* entry) {
    FormatScanContext& tc = (*tables)[entry];
    if (tc.entry == nullptr) {
      tc.entry = entry;
      tc.opts = opts;
      tc.jit = jit;
      tc.num_threads = num_threads;
      tc.desc = desc;
      tc.health = health;
      // Snapshot the adaptive state once when planning starts, so the whole
      // plan sees one consistent view even while other sessions publish
      // maps, load copies, or reset the engine.
      tc.published_pmap = entry->pmap();
      tc.format_state = entry->format_state();
      tc.row_count = entry->row_count();
      // First touch in this query: one scan tick per (query, table).
      if (opts->count_accesses) entry->NoteScan();
    }
    return tc;
  }
};

/// Registered driver for the entry's format (annotated NotFound otherwise —
/// normally unreachable past Catalog::Register, which validates this).
StatusOr<const FormatDriver*> DriverFor(const TableEntry& entry) {
  return FormatRegistry::Global().Require(entry.info.format);
}

std::vector<int> SortedUnique(std::vector<int> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

/// Ensures the DBMS baseline copy exists (loads every column once, shared
/// across sessions) and snapshots it into the table context.
Status EnsureLoaded(BuildCtx& ctx, FormatScanContext& tc) {
  if (tc.loaded != nullptr) return Status::OK();
  double load_seconds = 0;
  RAW_ASSIGN_OR_RETURN(tc.loaded, tc.entry->EnsureLoaded(&load_seconds));
  tc.row_count = tc.loaded->num_rows();
  if (load_seconds > 0) {
    (*ctx.desc) << "[load " << tc.entry->info.name << " " << load_seconds
                << "s] ";
  }
  return Status::OK();
}

/// Builds the raw-file scan for `cols` of the context's table by dispatching
/// to its format driver (no cache involvement). Every driver's BuildScan is
/// a full scan today; the out-param stays for cache bookkeeping.
StatusOr<OperatorPtr> BuildRawScan(BuildCtx& ctx, FormatScanContext& tc,
                                   const std::vector<int>& cols,
                                   bool* full_scan) {
  *full_scan = true;
  RAW_ASSIGN_OR_RETURN(const FormatDriver* driver, DriverFor(*tc.entry));
  (*ctx.desc) << "[format=" << driver->name() << "] ";
  Schema qualified = QualifiedSchema(*tc.entry, cols);
  return driver->BuildScan(tc, cols, qualified);
}

/// Builds the bottom-of-plan scan for `cols`, consulting the shred cache and
/// the DBMS-loaded copy, and wiring cache population.
StatusOr<OperatorPtr> BuildBaseScan(BuildCtx& ctx, FormatScanContext& tc,
                                    std::vector<int> cols) {
  cols = SortedUnique(std::move(cols));
  TableEntry* entry = tc.entry;
  const TableInfo& info = entry->info;
  const PlannerOptions& opts = *ctx.opts;
  if (opts.count_accesses) entry->NoteColumnAccesses(cols);

  if (opts.access_path == AccessPathKind::kLoaded) {
    RAW_RETURN_NOT_OK(EnsureLoaded(ctx, tc));
    // Scan only the needed columns of the loaded table, renamed to their
    // qualified form (the scan output is already in `cols` order).
    OperatorPtr scan = tc.loaded->CreateScan(opts.batch_rows, cols);
    std::vector<int> identity(cols.size());
    std::vector<std::string> names;
    for (size_t i = 0; i < cols.size(); ++i) {
      identity[i] = static_cast<int>(i);
      names.push_back(
          QualifiedName(info.name, info.schema.field(cols[i]).name));
    }
    return OperatorPtr(std::make_unique<SelectColumnsOperator>(
        std::move(scan), std::move(identity), std::move(names)));
  }

  // Partition into cache-served full columns and raw columns. When this
  // query holds a (not yet wired) adaptive-state build claim, skip the
  // cache so the raw scan — and with it the build the late scans of this
  // very plan rely on — is guaranteed to run.
  std::vector<int> cached_cols, raw_cols;
  std::vector<ColumnPtr> cached_values;
  const bool must_run_raw_scan = tc.HoldsUnwiredBuildClaim();
  if (opts.use_shred_cache && !must_run_raw_scan) {
    for (int c : cols) {
      auto hit = ctx.shreds->LookupFull(info.name, c);
      if (hit.ok()) {
        cached_cols.push_back(c);
        cached_values.push_back(std::move(hit).value());
      } else {
        raw_cols.push_back(c);
      }
    }
  } else {
    raw_cols = cols;
  }

  if (raw_cols.empty() && !cached_cols.empty()) {
    (*ctx.desc) << "[cache-scan " << info.name << "] ";
    return OperatorPtr(std::make_unique<CachedColumnsScanOperator>(
        QualifiedSchema(*entry, cached_cols), std::move(cached_values)));
  }

  bool full_scan = true;
  RAW_ASSIGN_OR_RETURN(OperatorPtr op,
                       BuildRawScan(ctx, tc, raw_cols, &full_scan));

  if (opts.populate_shred_cache) {
    std::vector<CacheInsertOperator::Mapping> mappings;
    for (size_t i = 0; i < raw_cols.size(); ++i) {
      mappings.push_back(
          CacheInsertOperator::Mapping{static_cast<int>(i), raw_cols[i]});
    }
    op = std::make_unique<CacheInsertOperator>(std::move(op), ctx.shreds,
                                               info.name, std::move(mappings),
                                               full_scan, entry);
  }

  if (!cached_cols.empty()) {
    (*ctx.desc) << "[cache-attach " << info.name << "] ";
    auto fetcher = std::make_unique<CachedColumnFetcher>(
        QualifiedSchema(*entry, cached_cols), std::move(cached_values));
    op = std::make_unique<LateScanOperator>(std::move(op), std::move(fetcher));
  }
  return op;
}

/// Builds a cache-aware late-scan fetcher for `cols` of the context's table:
/// the format driver supplies the raw fetcher, the planner adds the generic
/// parallel and cache-aware wrappers.
StatusOr<RowFetcherPtr> BuildFetcher(BuildCtx& ctx, FormatScanContext& tc,
                                     std::vector<int> cols) {
  cols = SortedUnique(std::move(cols));
  const PlannerOptions& opts = *ctx.opts;
  if (opts.count_accesses) tc.entry->NoteColumnAccesses(cols);
  Schema qualified = QualifiedSchema(*tc.entry, cols);
  RAW_ASSIGN_OR_RETURN(const FormatDriver* driver, DriverFor(*tc.entry));
  RAW_ASSIGN_OR_RETURN(RowFetcherPtr inner,
                       driver->BuildFetcher(tc, cols, qualified));
  // Big row sets fan out over the pool (order-preserving chunks); the cache
  // wrapper sits outside so a subsuming shred still answers in one lookup.
  if (ctx.num_threads > 1) {
    inner = std::make_unique<ParallelRowFetcher>(
        std::move(inner), ThreadPool::Shared(), ctx.num_threads);
    (*ctx.desc) << "[parallel-fetch x" << ctx.num_threads << "] ";
  }
  if (!opts.use_shred_cache) return inner;
  return RowFetcherPtr(std::make_unique<CacheAwareFetcher>(
      ctx.shreds, tc.entry->info.name, cols, std::move(inner)));
}

// =============================================================================
// Pipeline fusion
// =============================================================================

/// Column types a fused pipeline kernel can read and compare.
bool FusableColumnType(DataType type) {
  return type == DataType::kInt32 || type == DataType::kInt64 ||
         type == DataType::kFloat32 || type == DataType::kFloat64;
}

/// Canonicalizes a predicate literal to the column's comparison type with
/// exactly the coercion CompareExpr::TryConstCompareKernel applies, so the
/// generated compare is bit-identical to the interpreted typed kernel.
/// Returns false when that kernel would not handle the predicate (the
/// interpreted path would widen to double instead) — such predicates keep
/// the whole pipeline interpreted.
bool CanonicalizeFusedLiteral(DataType col_type, const Datum& lit,
                              Datum* out) {
  switch (col_type) {
    case DataType::kInt32: {
      auto v = lit.AsInt64();
      if (!v.ok()) return false;
      if (lit.type() != DataType::kInt32 &&
          (v.value() < INT32_MIN || v.value() > INT32_MAX)) {
        return false;
      }
      *out = Datum::Int32(static_cast<int32_t>(v.value()));
      return true;
    }
    case DataType::kInt64: {
      auto v = lit.AsInt64();
      if (!v.ok()) return false;
      *out = Datum::Int64(v.value());
      return true;
    }
    case DataType::kFloat32: {
      auto v = lit.AsDouble();
      if (!v.ok()) return false;
      const float f = static_cast<float>(v.value());
      // Generated source spells float literals in hexfloat, which cannot
      // represent inf/nan.
      if (!std::isfinite(f)) return false;
      *out = Datum::Float32(f);
      return true;
    }
    case DataType::kFloat64: {
      auto v = lit.AsDouble();
      if (!v.ok()) return false;
      if (!std::isfinite(v.value())) return false;
      *out = Datum::Float64(v.value());
      return true;
    }
    default:
      return false;
  }
}

/// Whether partials of `kind` merge order-insensitively. COUNT/MIN/MAX and
/// integer SUM are exact under any morsel split; float SUM and AVG depend on
/// addition order, so they only fuse single-threaded (where one morsel folds
/// in file order, bit-identical to the interpreted operator).
bool FusedAggMergeable(AggKind kind, DataType input_type) {
  switch (kind) {
    case AggKind::kCount:
    case AggKind::kMin:
    case AggKind::kMax:
      return true;
    case AggKind::kSum:
      return input_type == DataType::kInt32 || input_type == DataType::kInt64;
    case AggKind::kAvg:
      return false;
  }
  return false;
}

/// Attempts to plan the (single-table, non-grouped) query as one fused
/// scan→filter→project/aggregate JIT pipeline. Returns a null operator when
/// any eligibility gate fails or the table's format driver has no fusion
/// plug-in for its current state — the caller then builds the interpreted
/// subplan. On success the returned tree replaces the scan, filter, and
/// project/aggregate stages (LIMIT still applies on top).
StatusOr<OperatorPtr> TryPlanFusedPipeline(BuildCtx& ctx, const QuerySpec& q,
                                           TableEntry* entry,
                                           const std::vector<int>& pred_cols,
                                           const std::vector<int>& agg_inputs,
                                           const std::vector<int>& proj_inputs) {
  const PlannerOptions& opts = *ctx.opts;
  if (opts.jit_fusion == JitFusion::kOff) return OperatorPtr();
  // Fused kernels fail hard on the first malformed value; only the
  // interpreted scan path can honor skip / null-fill row policies.
  if (opts.malformed_row_policy != MalformedRowPolicy::kFail) {
    return OperatorPtr();
  }
  if (opts.access_path != AccessPathKind::kJit) return OperatorPtr();
  if (ctx.jit == nullptr || !ctx.jit->compiler_available()) {
    return OperatorPtr();
  }
  if (!q.group_by.empty()) return OperatorPtr();
  const bool aggregate = q.is_aggregate();
  if (!aggregate && q.projections.empty()) return OperatorPtr();
  const Schema& schema = entry->info.schema;

  // Union of touched table columns, ascending — the PipelineSpec input
  // order. COUNT(*)-only queries touch no column and stay interpreted (a
  // fused kernel needs at least one input to drive its loop).
  std::vector<int> cols = pred_cols;
  for (int c : agg_inputs) {
    if (c >= 0) cols.push_back(c);
  }
  if (!aggregate) {
    for (int c : proj_inputs) cols.push_back(c);
  }
  cols = SortedUnique(std::move(cols));
  if (cols.empty()) return OperatorPtr();
  for (int c : cols) {
    if (!FusableColumnType(schema.field(c).type)) return OperatorPtr();
  }
  auto input_of = [&](int col) {
    return static_cast<int>(std::lower_bound(cols.begin(), cols.end(), col) -
                            cols.begin());
  };

  std::vector<PipelinePredicate> preds;
  for (size_t i = 0; i < q.predicates.size(); ++i) {
    PipelinePredicate p;
    p.input = input_of(pred_cols[i]);
    p.op = q.predicates[i].op;
    if (!CanonicalizeFusedLiteral(schema.field(pred_cols[i]).type,
                                  q.predicates[i].literal, &p.literal)) {
      return OperatorPtr();
    }
    preds.push_back(std::move(p));
  }

  std::vector<PipelineAgg> aggs;
  if (aggregate) {
    for (size_t i = 0; i < q.aggregates.size(); ++i) {
      PipelineAgg a;
      a.kind = q.aggregates[i].kind;
      a.input = agg_inputs[i] >= 0 ? input_of(agg_inputs[i]) : -1;
      if (ctx.num_threads > 1) {
        const DataType in_type = agg_inputs[i] >= 0
                                     ? schema.field(agg_inputs[i]).type
                                     : DataType::kInt64;
        if (!FusedAggMergeable(a.kind, in_type)) return OperatorPtr();
      }
      aggs.push_back(a);
    }
  }

  // Shred-cache full-column hits feed the kernel directly (ctx->in_dense);
  // at least one input must still come from the file, else the interpreted
  // cache scan already answers without touching the raw data.
  FormatScanContext& tc = ctx.Ctx(entry);
  FusedPipelineRequest req;
  int file_inputs = 0;
  for (int c : cols) {
    PipelineInput in;
    in.column = c;
    in.type = schema.field(c).type;
    ColumnPtr dense;
    if (opts.use_shred_cache && !tc.HoldsUnwiredBuildClaim()) {
      auto hit = ctx.shreds->LookupFull(entry->info.name, c);
      if (hit.ok()) dense = std::move(hit).value();
    }
    in.dense = dense != nullptr;
    if (!in.dense) ++file_inputs;
    req.inputs.push_back(in);
    req.dense_columns.push_back(std::move(dense));
  }
  if (file_inputs == 0) return OperatorPtr();

  req.predicates = std::move(preds);
  if (aggregate) {
    req.mode = PipelineOutputMode::kAggregate;
    req.aggs = std::move(aggs);
  } else {
    req.mode = PipelineOutputMode::kProject;
    // Output names exactly as the interpreted SelectColumnsOperator emits
    // them: the bare column name, qualified on duplicates.
    Schema out;
    std::set<std::string> used;
    for (size_t i = 0; i < q.projections.size(); ++i) {
      req.projections.push_back(input_of(proj_inputs[i]));
      std::string name = q.projections[i].column;
      if (!used.insert(name).second) {
        name = QualifiedName(q.projections[i].table, q.projections[i].column);
      }
      out.AddField(std::move(name), schema.field(proj_inputs[i]).type);
    }
    req.output_schema = std::move(out);
  }

  RAW_ASSIGN_OR_RETURN(const FormatDriver* driver, DriverFor(*entry));
  auto built = driver->BuildFusedPipeline(tc, req);
  if (!built.ok()) {
    if (built.status().code() == StatusCode::kNotImplemented) {
      // No fusion plug-in for this format / table state (cold CSV without a
      // positional map, quoted files, REF projections, ...): interpreted.
      return OperatorPtr();
    }
    return built.status();
  }
  if (opts.count_accesses) entry->NoteColumnAccesses(cols);
  OperatorPtr op = std::move(built).value();

  if (aggregate) {
    // Merge the per-morsel partials with the schema and bit-exact values
    // AggregateOperator would have produced.
    std::vector<AggSpec> specs;
    std::vector<DataType> input_types;
    for (size_t i = 0; i < q.aggregates.size(); ++i) {
      AggSpec spec;
      spec.kind = q.aggregates[i].kind;
      spec.input = -1;  // partial-state columns are positional, not indexed
      spec.output_name =
          !q.aggregates[i].output_name.empty()
              ? q.aggregates[i].output_name
              : std::string(AggKindToString(q.aggregates[i].kind)) + "(" +
                    (q.aggregates[i].count_star
                         ? "*"
                         : q.aggregates[i].column.ToString()) +
                    ")";
      input_types.push_back(q.aggregates[i].kind != AggKind::kCount
                                ? schema.field(agg_inputs[i]).type
                                : DataType::kInt64);
      specs.push_back(std::move(spec));
    }
    op = std::make_unique<FusedAggFinalizeOperator>(
        std::move(op), std::move(specs), std::move(input_types));
    (*ctx.desc) << "[aggregate] ";
  } else {
    (*ctx.desc) << "[project] ";
  }
  (*ctx.desc) << "[jit-fused] ";
  return op;
}

/// True when late scans (selective row fetches) against `tc`'s table can
/// navigate to arbitrary rows — delegated to the format driver, which may
/// claim an adaptive-state build (positional map, block index) as a side
/// effect. Returns false for baselines that never build navigation state and
/// for cold tables whose build claim another in-flight session holds;
/// callers must then route columns into base scans instead of late scans.
StatusOr<bool> LateScanFeasible(FormatScanContext& tc) {
  RAW_ASSIGN_OR_RETURN(const FormatDriver* driver, DriverFor(*tc.entry));
  return driver->EnsureLateScanNavigable(tc);
}

// =============================================================================
// Spec resolution helpers
// =============================================================================

/// Resolves a (possibly unqualified) column reference to a table + column
/// index among the query's tables.
Status ResolveRef(const std::vector<TableEntry*>& tables, ColumnRefSpec* ref,
                  TableEntry** out_entry, int* out_column) {
  TableEntry* found = nullptr;
  int column = -1;
  for (TableEntry* entry : tables) {
    if (!ref->table.empty() && entry->info.name != ref->table) continue;
    int idx = entry->info.schema.FieldIndex(ref->column);
    if (idx < 0) continue;
    if (found != nullptr) {
      return Status::InvalidArgument("ambiguous column reference '" +
                                     ref->column + "'");
    }
    found = entry;
    column = idx;
  }
  if (found == nullptr) {
    return Status::NotFound("column '" + ref->ToString() +
                            "' not found in query tables");
  }
  ref->table = found->info.name;
  *out_entry = found;
  *out_column = column;
  return Status::OK();
}

/// Finds the index of "<table>.<column>" in `schema` or returns an error.
StatusOr<int> QualifiedIndex(const Schema& schema, const ColumnRefSpec& ref) {
  int idx = schema.FieldIndex(QualifiedName(ref.table, ref.column));
  if (idx < 0) {
    return Status::Internal("planner lost track of column " + ref.ToString());
  }
  return idx;
}

/// Builds the bound filter expression for a predicate against `schema`.
StatusOr<ExprPtr> BindPredicate(const Schema& schema,
                                const PredicateSpec& pred) {
  RAW_ASSIGN_OR_RETURN(int idx, QualifiedIndex(schema, pred.column));
  return Cmp(pred.op, Col(idx), Lit(pred.literal));
}

// Per-side planning state for the cascade builder.
struct SidePlan {
  TableEntry* entry = nullptr;
  std::vector<PredicateSpec> predicates;  // bound to this table, query order
  std::vector<int> predicate_cols;        // parallel column indices
  std::vector<int> force_base;            // columns forced into the base scan
  std::vector<int> needed_after;          // columns fetched after filters
  /// Concrete policy for this side (kAdaptive already resolved).
  ShredPolicy policy = ShredPolicy::kShreds;
};

/// Estimates the fraction of `entry`'s rows passing `pred` using the shred
/// cache (exact when the full predicate column is cached), or nullopt.
std::optional<double> EstimateSelectivity(ShredCache* shreds,
                                          const TableEntry& entry,
                                          const PredicateSpec& pred, int col) {
  auto cached = shreds->LookupFull(entry.info.name, col);
  if (!cached.ok()) return std::nullopt;
  const Column& values = **cached;
  if (values.length() == 0) return 1.0;
  ColumnBatch batch;
  batch.AddColumn(*cached);
  SelectionVector passing;
  ExprPtr expr = Cmp(pred.op, Col(0), Lit(pred.literal));
  if (!expr->EvaluateSelection(batch, &passing).ok()) return std::nullopt;
  return static_cast<double>(passing.size()) /
         static_cast<double>(values.length());
}

/// Resolves kAdaptive to a concrete policy for one table side using the
/// cost model: estimate the combined selectivity below each late-fetch
/// point, then compare full-column vs shred vs multi-column costs. The
/// per-format cost constants come from the table's format driver.
ShredPolicy ResolveAdaptivePolicy(BuildCtx& ctx, const SidePlan& side) {
  const TableEntry& entry = *side.entry;
  const FormatScanContext& tc = ctx.Ctx(side.entry);
  if (tc.row_count < 0) {
    // First contact with the file: row count unknown, predicate columns not
    // cached. Shreds are never worse than full columns for the bottom
    // predicate and strictly cheaper when anything is filtered.
    (*ctx.desc) << "[adaptive: no stats -> shreds] ";
    return ShredPolicy::kShreds;
  }
  double selectivity = 1.0;
  bool any_estimate = false;
  for (size_t i = 0; i < side.predicates.size(); ++i) {
    std::optional<double> est = EstimateSelectivity(
        ctx.shreds, entry, side.predicates[i], side.predicate_cols[i]);
    if (est.has_value()) {
      selectivity *= *est;
      any_estimate = true;
    } else {
      selectivity *= 0.5;  // agnostic default for unseen predicates
    }
  }
  ShredDecisionInput in;
  in.format = entry.info.format;
  in.table_rows = tc.row_count;
  in.selectivity = selectivity;
  // Columns a late scan would fetch: predicates beyond the first + upstream.
  int fetch_cols = static_cast<int>(side.needed_after.size());
  if (side.predicates.size() > 1) {
    fetch_cols += static_cast<int>(side.predicates.size()) - 1;
  }
  in.colocated_columns = std::max(fetch_cols, 1);
  const FormatDriver* driver = FormatRegistry::Global().Find(entry.info.format);
  if (driver != nullptr) in.skip_distance = driver->EstimateSkipDistance(tc);
  CostModel model;
  ShredPolicy policy = model.ChoosePolicy(in);
  (*ctx.desc) << "[adaptive: sel=" << selectivity
              << (any_estimate ? " (cache-estimated)" : " (default)")
              << " -> " << ShredPolicyToString(policy) << "] ";
  return policy;
}

/// Wraps `op` (a LateScanOperator output) so the freshly fetched columns are
/// registered in the shred pool at Close() — "creating only subsets (shreds)
/// of columns ... preserved in a pool" (§3/§5.1). Only used below filter
/// cascades, where row ids are strictly increasing (post-join order is not).
OperatorPtr WrapLateScanCacheInsert(BuildCtx& ctx, OperatorPtr op,
                                    TableEntry* entry, int base_fields,
                                    const std::vector<int>& fetch_cols) {
  if (!ctx.opts->populate_shred_cache) return op;
  std::vector<CacheInsertOperator::Mapping> mappings;
  for (size_t j = 0; j < fetch_cols.size(); ++j) {
    mappings.push_back(CacheInsertOperator::Mapping{
        base_fields + static_cast<int>(j), fetch_cols[j]});
  }
  return std::make_unique<CacheInsertOperator>(
      std::move(op), ctx.shreds, entry->info.name, std::move(mappings),
      /*full_scan=*/false, /*row_count_sink=*/nullptr);
}

/// Builds scan -> [late scan, filter]* -> [late scan] for one table.
StatusOr<OperatorPtr> BuildTableSubplan(BuildCtx& ctx, SidePlan& side) {
  const PlannerOptions& opts = *ctx.opts;
  FormatScanContext& tc = ctx.Ctx(side.entry);
  const std::string& table = side.entry->info.name;

  // A table without navigable late-scan access in reach (e.g. a cold CSV
  // file whose positional-map build claim another in-flight session holds,
  // or build_positional_map=false) cannot serve late scans: force every
  // column into the base scan instead. The format driver owns the decision.
  bool can_late_scan = true;
  if (opts.access_path != AccessPathKind::kLoaded &&
      opts.access_path != AccessPathKind::kExternalTable) {
    RAW_ASSIGN_OR_RETURN(can_late_scan, LateScanFeasible(tc));
    if (!can_late_scan) {
      (*ctx.desc) << "[no-pmap: full columns " << table << "] ";
    }
  }

  const bool full_columns =
      side.policy == ShredPolicy::kFullColumns ||
      opts.access_path == AccessPathKind::kLoaded ||
      opts.access_path == AccessPathKind::kExternalTable ||
      !can_late_scan;

  std::vector<int> base_cols = side.force_base;
  std::set<int> have;
  if (full_columns) {
    for (int c : side.predicate_cols) base_cols.push_back(c);
    for (int c : side.needed_after) base_cols.push_back(c);
  } else if (!side.predicate_cols.empty()) {
    base_cols.push_back(side.predicate_cols.front());
  } else {
    for (int c : side.needed_after) base_cols.push_back(c);
  }
  if (base_cols.empty()) {
    // Degenerate: no predicates, nothing needed below — still scan something
    // to drive row ids (first schema column).
    base_cols.push_back(0);
  }
  base_cols = SortedUnique(std::move(base_cols));
  for (int c : base_cols) have.insert(c);

  RAW_ASSIGN_OR_RETURN(OperatorPtr op, BuildBaseScan(ctx, tc, base_cols));

  for (size_t i = 0; i < side.predicates.size(); ++i) {
    int col = side.predicate_cols[i];
    if (have.count(col) == 0) {
      std::vector<int> fetch_cols = {col};
      if (side.policy == ShredPolicy::kMultiColumnShreds) {
        // Speculatively fetch nearby columns needed later in the same pass
        // (§5.3.1: "it may be comparatively cheap to read nearby fields").
        for (size_t k = i + 1; k < side.predicates.size(); ++k) {
          int other = side.predicate_cols[k];
          if (have.count(other) == 0 &&
              std::abs(other - col) <= opts.speculation_window) {
            fetch_cols.push_back(other);
          }
        }
        for (int other : side.needed_after) {
          if (have.count(other) == 0 &&
              std::abs(other - col) <= opts.speculation_window) {
            fetch_cols.push_back(other);
          }
        }
      }
      fetch_cols = SortedUnique(std::move(fetch_cols));
      RAW_ASSIGN_OR_RETURN(RowFetcherPtr fetcher,
                           BuildFetcher(ctx, tc, fetch_cols));
      (*ctx.desc) << "[late-scan " << table << ":";
      for (int c : fetch_cols) (*ctx.desc) << c << ",";
      (*ctx.desc) << "] ";
      RAW_RETURN_NOT_OK(op->Open());  // idempotent; exposes the field count
      int base_fields = op->output_schema().num_fields();
      op = std::make_unique<LateScanOperator>(std::move(op),
                                              std::move(fetcher));
      op = WrapLateScanCacheInsert(ctx, std::move(op), side.entry, base_fields,
                                   fetch_cols);
      for (int c : fetch_cols) have.insert(c);
    }
    // Operator Open() is idempotent before the first Next(); opening here
    // materializes the subtree's output schema so the predicate can bind.
    RAW_RETURN_NOT_OK(op->Open());
    RAW_ASSIGN_OR_RETURN(
        ExprPtr pred, BindPredicate(op->output_schema(), side.predicates[i]));
    op = std::make_unique<FilterOperator>(std::move(op), std::move(pred));
    (*ctx.desc) << "[filter " << side.predicates[i].ToString() << "] ";
  }

  std::vector<int> missing;
  for (int c : side.needed_after) {
    if (have.count(c) == 0) missing.push_back(c);
  }
  if (!missing.empty()) {
    missing = SortedUnique(std::move(missing));
    RAW_ASSIGN_OR_RETURN(RowFetcherPtr fetcher,
                         BuildFetcher(ctx, tc, missing));
    (*ctx.desc) << "[late-scan " << table << ":";
    for (int c : missing) (*ctx.desc) << c << ",";
    (*ctx.desc) << "] ";
    RAW_RETURN_NOT_OK(op->Open());
    int base_fields = op->output_schema().num_fields();
    op = std::make_unique<LateScanOperator>(std::move(op), std::move(fetcher));
    op = WrapLateScanCacheInsert(ctx, std::move(op), side.entry, base_fields,
                                 missing);
  }
  return op;
}

}  // namespace

// =============================================================================
// Planner::Plan
// =============================================================================

StatusOr<PhysicalPlan> Planner::Plan(const QuerySpec& query,
                                     const PlannerOptions& options) {
  RAW_RETURN_NOT_OK(query.Validate());
  for (const PredicateSpec& pred : query.predicates) {
    if (pred.is_parameter()) {
      return Status::InvalidArgument(
          "query has unbound '?' parameters; execute it through "
          "Session::Prepare");
    }
  }

  PhysicalPlan plan;
  plan.deadline = options.deadline;
  plan.health = std::make_shared<ScanHealth>();
  std::ostringstream desc;
  // Which kernel dispatch tier the hot scan/eval loops will run on — benches
  // assert on this so recorded numbers prove which path executed.
  desc << "[kernels=" << KernelTierName(ActiveKernelTier()) << "] ";

  // Tolerant malformed-row policies compact or rewrite row ids inside the
  // scan, so everything keyed by raw row id must be disabled for the query:
  // positional-map builds, shred-cache reads and writes, late scans (full
  // columns instead), and JIT access paths / fused pipelines (generated
  // kernels fail hard on the first malformed value).
  PlannerOptions effective = options;
  if (effective.malformed_row_policy != MalformedRowPolicy::kFail &&
      effective.access_path != AccessPathKind::kLoaded) {
    effective.shred_policy = ShredPolicy::kFullColumns;
    effective.use_shred_cache = false;
    effective.populate_shred_cache = false;
    effective.build_positional_map = false;
    effective.jit_fusion = JitFusion::kOff;
    if (effective.access_path == AccessPathKind::kJit) {
      effective.access_path = AccessPathKind::kInSitu;
    }
    desc << "[malformed-rows="
         << MalformedRowPolicyToString(effective.malformed_row_policy)
         << "] ";
  }

  double compile_seconds = 0;
  std::map<TableEntry*, FormatScanContext> table_ctxs;
  BuildCtx ctx{catalog_,         jit_,  shreds_,
               &effective,       &compile_seconds,
               &desc,            ResolveNumThreads(effective.num_threads),
               &table_ctxs,      plan.health.get()};

  // Resolve tables.
  std::vector<TableEntry*> entries;
  for (const std::string& t : query.tables) {
    RAW_ASSIGN_OR_RETURN(TableEntry * entry, catalog_->Get(t));
    entries.push_back(entry);
    ctx.Ctx(entry);  // snapshot adaptive state once per query
  }

  // If planning fails after a table context claimed an adaptive-state build
  // without wiring it into an operator (which would own the claim), release
  // it.
  struct ClaimGuard {
    std::map<TableEntry*, FormatScanContext>* tables;
    bool disarm = false;
    ~ClaimGuard() {
      if (disarm) return;
      for (auto& [entry, tc] : *tables) {
        if (tc.building_pmap != nullptr && !tc.pmap_build_wired) {
          entry->AbandonPmapBuild();
        }
        if (tc.building_format_state != nullptr &&
            !tc.format_state_build_wired) {
          entry->AbandonFormatStateBuild();
        }
      }
    }
  } claim_guard{&table_ctxs};

  // Resolve all column references (mutating copies of the spec items).
  QuerySpec q = query;
  auto resolve = [&](ColumnRefSpec* ref, TableEntry** entry,
                     int* column) -> Status {
    return ResolveRef(entries, ref, entry, column);
  };

  std::vector<TableEntry*> pred_entry(q.predicates.size());
  std::vector<int> pred_col(q.predicates.size());
  for (size_t i = 0; i < q.predicates.size(); ++i) {
    RAW_RETURN_NOT_OK(
        resolve(&q.predicates[i].column, &pred_entry[i], &pred_col[i]));
  }
  struct OutCol {
    TableEntry* entry;
    int column;
  };
  std::vector<OutCol> agg_cols(q.aggregates.size());
  for (size_t i = 0; i < q.aggregates.size(); ++i) {
    if (q.aggregates[i].count_star) {
      agg_cols[i] = {nullptr, -1};
      continue;
    }
    RAW_RETURN_NOT_OK(resolve(&q.aggregates[i].column, &agg_cols[i].entry,
                              &agg_cols[i].column));
  }
  std::vector<OutCol> proj_cols(q.projections.size());
  for (size_t i = 0; i < q.projections.size(); ++i) {
    RAW_RETURN_NOT_OK(
        resolve(&q.projections[i], &proj_cols[i].entry, &proj_cols[i].column));
  }
  std::vector<OutCol> group_cols(q.group_by.size());
  for (size_t i = 0; i < q.group_by.size(); ++i) {
    RAW_RETURN_NOT_OK(
        resolve(&q.group_by[i], &group_cols[i].entry, &group_cols[i].column));
  }

  OperatorPtr op;
  bool fused = false;

  if (!q.is_join()) {
    // Pipeline fusion first: eligible scan→filter→project/aggregate shapes
    // compile into one generated loop, replacing the whole interpreted
    // subplan below (a null return means "not eligible, plan as usual").
    std::vector<int> agg_inputs, proj_inputs;
    for (const OutCol& c : agg_cols) {
      agg_inputs.push_back(c.entry != nullptr ? c.column : -1);
    }
    for (const OutCol& c : proj_cols) proj_inputs.push_back(c.column);
    RAW_ASSIGN_OR_RETURN(
        op, TryPlanFusedPipeline(ctx, q, entries[0], pred_col, agg_inputs,
                                 proj_inputs));
    fused = op != nullptr;
    if (!fused) {
      SidePlan side;
      side.entry = entries[0];
      for (size_t i = 0; i < q.predicates.size(); ++i) {
        side.predicates.push_back(q.predicates[i]);
        side.predicate_cols.push_back(pred_col[i]);
      }
      for (const OutCol& c : agg_cols) {
        if (c.entry != nullptr) side.needed_after.push_back(c.column);
      }
      for (const OutCol& c : proj_cols) side.needed_after.push_back(c.column);
      for (const OutCol& c : group_cols) side.needed_after.push_back(c.column);
      side.policy = effective.shred_policy;
      if (side.policy == ShredPolicy::kAdaptive) {
        side.policy = ResolveAdaptivePolicy(ctx, side);
      }
      RAW_ASSIGN_OR_RETURN(op, BuildTableSubplan(ctx, side));
    }
  } else {
    TableEntry* probe_entry = entries[0];
    TableEntry* build_entry = entries[1];

    // Resolve join keys.
    TableEntry* jl_entry;
    int jl_col;
    TableEntry* jr_entry;
    int jr_col;
    RAW_RETURN_NOT_OK(resolve(&q.join_left, &jl_entry, &jl_col));
    RAW_RETURN_NOT_OK(resolve(&q.join_right, &jr_entry, &jr_col));
    if (jl_entry == build_entry && jr_entry == probe_entry) {
      std::swap(jl_entry, jr_entry);
      std::swap(jl_col, jr_col);
      std::swap(q.join_left, q.join_right);
    }
    if (jl_entry != probe_entry || jr_entry != build_entry) {
      return Status::InvalidArgument(
          "join condition must reference both tables");
    }

    SidePlan probe, build;
    probe.entry = probe_entry;
    build.entry = build_entry;
    probe.needed_after.push_back(jl_col);
    build.needed_after.push_back(jr_col);
    for (size_t i = 0; i < q.predicates.size(); ++i) {
      SidePlan& side = pred_entry[i] == probe_entry ? probe : build;
      side.predicates.push_back(q.predicates[i]);
      side.predicate_cols.push_back(pred_col[i]);
    }

    // Projected / aggregated columns: placement decides which side structure
    // receives them (early -> base scan, intermediate -> after side filters,
    // late -> after the join). Post-join late scans need navigable row
    // access on their side; when none is in reach (baseline access paths,
    // build_positional_map off, or another session holds the build claim)
    // the columns demote to intermediate placement instead of failing at
    // fetch time.
    RAW_ASSIGN_OR_RETURN(const bool probe_late_ok,
                         LateScanFeasible(ctx.Ctx(probe_entry)));
    RAW_ASSIGN_OR_RETURN(const bool build_late_ok,
                         LateScanFeasible(ctx.Ctx(build_entry)));
    std::vector<OutCol> late_probe, late_build;
    auto place = [&](const OutCol& c) {
      if (c.entry == nullptr) return;
      SidePlan& side = c.entry == probe_entry ? probe : build;
      JoinProjectionPlacement placement = effective.join_placement;
      if (placement == JoinProjectionPlacement::kLate &&
          !(c.entry == probe_entry ? probe_late_ok : build_late_ok)) {
        placement = JoinProjectionPlacement::kIntermediate;
        (*ctx.desc) << "[no-pmap: late->intermediate "
                    << c.entry->info.name << "] ";
      }
      switch (placement) {
        case JoinProjectionPlacement::kEarly:
          side.force_base.push_back(c.column);
          break;
        case JoinProjectionPlacement::kIntermediate:
          side.needed_after.push_back(c.column);
          break;
        case JoinProjectionPlacement::kLate:
          if (c.entry == probe_entry) {
            late_probe.push_back(c);
          } else {
            late_build.push_back(c);
          }
          break;
      }
    };
    for (const OutCol& c : agg_cols) {
      // Join keys and group keys must exist at the join; only non-key
      // payload columns are placement-sensitive.
      place(c);
    }
    for (const OutCol& c : proj_cols) place(c);
    for (const OutCol& c : group_cols) {
      // Group keys are needed at the group-by; treat as intermediate to be
      // safe (available right after the join).
      SidePlan& side = c.entry == probe_entry ? probe : build;
      side.needed_after.push_back(c.column);
    }

    probe.policy = effective.shred_policy;
    build.policy = effective.shred_policy;
    if (probe.policy == ShredPolicy::kAdaptive) {
      probe.policy = ResolveAdaptivePolicy(ctx, probe);
    }
    if (build.policy == ShredPolicy::kAdaptive) {
      build.policy = ResolveAdaptivePolicy(ctx, build);
    }

    RAW_ASSIGN_OR_RETURN(OperatorPtr probe_op, BuildTableSubplan(ctx, probe));
    RAW_ASSIGN_OR_RETURN(OperatorPtr build_op, BuildTableSubplan(ctx, build));

    const bool emit_build_ids = !late_build.empty();
    // Open the (idempotent) subplans so their qualified output schemas exist
    // for join-key resolution.
    RAW_RETURN_NOT_OK(probe_op->Open());
    RAW_RETURN_NOT_OK(build_op->Open());
    RAW_ASSIGN_OR_RETURN(int probe_key,
                         QualifiedIndex(probe_op->output_schema(), q.join_left));
    RAW_ASSIGN_OR_RETURN(int build_key, QualifiedIndex(build_op->output_schema(),
                                                       q.join_right));
    (*ctx.desc) << "[hash-join " << q.join_left.ToString() << "="
                << q.join_right.ToString() << " placement="
                << JoinProjectionPlacementToString(effective.join_placement)
                << "] ";
    auto join = std::make_unique<HashJoinOperator>(
        std::move(probe_op), std::move(build_op), probe_key, build_key,
        emit_build_ids);
    if (ctx.num_threads > 1) {
      join->SetParallel(ThreadPool::Shared(), ctx.num_threads);
      (*ctx.desc) << "[parallel join-build x" << ctx.num_threads << "] ";
    }
    // Build structure stats (rows/buckets/max-chain) only exist after the
    // drain; report them through the post-execution describers.
    HashJoinOperator* join_ptr = join.get();
    plan.runtime_describers.push_back(
        [join_ptr] { return join_ptr->build_stats(); });
    op = std::move(join);

    if (!late_probe.empty()) {
      std::vector<int> cols;
      for (const OutCol& c : late_probe) cols.push_back(c.column);
      RAW_ASSIGN_OR_RETURN(RowFetcherPtr fetcher,
                           BuildFetcher(ctx, ctx.Ctx(probe_entry), cols));
      (*ctx.desc) << "[late-scan(post-join,pipelined) " << probe_entry->info.name
                  << "] ";
      op = std::make_unique<LateScanOperator>(std::move(op),
                                              std::move(fetcher));
    }
    if (!late_build.empty()) {
      std::vector<int> cols;
      for (const OutCol& c : late_build) cols.push_back(c.column);
      RAW_ASSIGN_OR_RETURN(RowFetcherPtr fetcher,
                           BuildFetcher(ctx, ctx.Ctx(build_entry), cols));
      (*ctx.desc) << "[late-scan(post-join,breaking) " << build_entry->info.name
                  << "] ";
      op = std::make_unique<LateScanOperator>(
          std::move(op), std::move(fetcher),
          HashJoinOperator::kBuildRowIdColumn);
    }
  }

  // Aggregation / grouping / projection. Fused plans already filtered,
  // projected, and (via FusedAggFinalizeOperator) aggregated inside the
  // generated loop; opening the tree here compiles the kernel so its cost is
  // charged to compile time, exactly like interpreted JIT scans.
  if (fused) {
    RAW_RETURN_NOT_OK(op->Open());
  } else if (q.is_aggregate()) {
    RAW_RETURN_NOT_OK(op->Open());
    const Schema& in = op->output_schema();
    std::vector<AggSpec> specs;
    for (size_t i = 0; i < q.aggregates.size(); ++i) {
      AggSpec spec;
      spec.kind = q.aggregates[i].kind;
      if (q.aggregates[i].count_star) {
        spec.input = -1;
      } else {
        RAW_ASSIGN_OR_RETURN(spec.input,
                             QualifiedIndex(in, q.aggregates[i].column));
      }
      spec.output_name =
          !q.aggregates[i].output_name.empty()
              ? q.aggregates[i].output_name
              : std::string(AggKindToString(q.aggregates[i].kind)) + "(" +
                    (q.aggregates[i].count_star
                         ? "*"
                         : q.aggregates[i].column.ToString()) +
                    ")";
      specs.push_back(std::move(spec));
    }
    if (q.group_by.empty()) {
      op = std::make_unique<AggregateOperator>(std::move(op), std::move(specs));
      (*ctx.desc) << "[aggregate] ";
    } else {
      std::vector<int> keys;
      for (const ColumnRefSpec& g : q.group_by) {
        RAW_ASSIGN_OR_RETURN(int idx, QualifiedIndex(in, g));
        keys.push_back(idx);
      }
      auto group_by = std::make_unique<HashGroupByOperator>(
          std::move(op), std::move(keys), std::move(specs));
      if (ctx.num_threads > 1) {
        group_by->SetParallel(ThreadPool::Shared(), ctx.num_threads);
        (*ctx.desc) << "[group-by x" << ctx.num_threads << "] ";
      } else {
        (*ctx.desc) << "[group-by] ";
      }
      op = std::move(group_by);
    }
  } else {
    RAW_RETURN_NOT_OK(op->Open());
    const Schema& in = op->output_schema();
    std::vector<int> indices;
    std::vector<std::string> names;
    std::set<std::string> used;
    for (const ColumnRefSpec& p : q.projections) {
      RAW_ASSIGN_OR_RETURN(int idx, QualifiedIndex(in, p));
      indices.push_back(idx);
      std::string name = p.column;
      if (!used.insert(name).second) name = QualifiedName(p.table, p.column);
      names.push_back(name);
    }
    op = std::make_unique<SelectColumnsOperator>(std::move(op),
                                                 std::move(indices),
                                                 std::move(names));
    (*ctx.desc) << "[project] ";
  }

  if (q.limit >= 0) {
    op = std::make_unique<LimitOperator>(std::move(op), q.limit);
    (*ctx.desc) << "[limit " << q.limit << "] ";
  }

  // Pin the per-query snapshots for the plan's lifetime: operators reference
  // them by raw pointer, and streaming cursors may outlive engine-side state.
  for (auto& [entry, tc] : table_ctxs) {
    if (tc.published_pmap != nullptr) plan.resources.push_back(tc.published_pmap);
    if (tc.building_pmap != nullptr) plan.resources.push_back(tc.building_pmap);
    if (tc.format_state != nullptr) plan.resources.push_back(tc.format_state);
    if (tc.building_format_state != nullptr) {
      plan.resources.push_back(tc.building_format_state);
    }
    if (tc.loaded != nullptr) plan.resources.push_back(tc.loaded);
  }
  claim_guard.disarm = true;  // wired claims are owned by publish operators

  if (fused) {
    plans_fused_.fetch_add(1, std::memory_order_relaxed);
  } else {
    plans_interpreted_.fetch_add(1, std::memory_order_relaxed);
  }

  plan.root = std::move(op);
  plan.description = desc.str();
  plan.compile_seconds = compile_seconds;
  return plan;
}

}  // namespace raw
