#include "engine/shred_cache.h"

#include <algorithm>

#include "common/hash.h"

namespace raw {

ShredCache::ShredCache(int64_t capacity_bytes, int num_shards)
    : capacity_bytes_(std::max<int64_t>(capacity_bytes, 1)) {
  num_shards = std::max(num_shards, 1);
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ShredCache::Shard& ShredCache::ShardFor(const std::string& key) const {
  return *shards_[static_cast<size_t>(
      Fnv1a64(key) % static_cast<uint64_t>(shards_.size()))];
}

ShredCache::Entry* ShredCache::Find(Shard& shard, const std::string& key,
                                    bool refresh_lru) {
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return nullptr;
  if (refresh_lru) shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return &*it->second;
}

Status ShredCache::Insert(const std::string& table, int column,
                          const int64_t* row_ids, const Column& values) {
  std::string key = MakeKey(table, column);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* existing = Find(shard, key, /*refresh_lru=*/false);
  const int64_t new_rows = values.length();
  if (existing != nullptr) {
    int64_t old_rows = existing->full()
                           ? existing->values->length()
                           : static_cast<int64_t>(existing->row_ids.size());
    if (existing->full() || old_rows >= new_rows) {
      return Status::OK();  // keep the (at least as large) existing entry
    }
    shard.bytes_cached -= existing->bytes;
    total_bytes_.fetch_sub(existing->bytes, std::memory_order_relaxed);
    shard.lru.erase(shard.index[key]);
    shard.index.erase(key);
  }
  Entry entry;
  entry.key = key;
  entry.values = std::make_shared<Column>(values);
  if (row_ids != nullptr) {
    entry.row_ids.assign(row_ids, row_ids + new_rows);
    for (int64_t i = 1; i < new_rows; ++i) {
      if (entry.row_ids[static_cast<size_t>(i)] <=
          entry.row_ids[static_cast<size_t>(i - 1)]) {
        return Status::InvalidArgument(
            "shred cache insert: row ids must be strictly increasing");
      }
    }
  }
  entry.bytes = entry.values->MemoryBytes() +
                static_cast<int64_t>(entry.row_ids.size() * sizeof(int64_t));
  shard.bytes_cached += entry.bytes;
  total_bytes_.fetch_add(entry.bytes, std::memory_order_relaxed);
  shard.lru.push_front(std::move(entry));
  shard.index[key] = shard.lru.begin();
  EvictOverCapacity(shard);
  return Status::OK();
}

void ShredCache::EvictOverCapacity(Shard& shard) {
  // The budget is cache-wide; an over-budget insert evicts from its own
  // shard's LRU tail (down to one surviving entry — the same oversized-entry
  // guard the single-LRU always had). Other shards shed their own tails on
  // their own next inserts, so the total converges onto the budget without
  // any cross-shard locking.
  while (total_bytes_.load(std::memory_order_relaxed) > capacity_bytes_ &&
         shard.lru.size() > 1) {
    Entry& victim = shard.lru.back();
    shard.bytes_cached -= victim.bytes;
    total_bytes_.fetch_sub(victim.bytes, std::memory_order_relaxed);
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

bool ShredCache::Covers(const std::string& table, int column,
                        const std::vector<int64_t>& rows) {
  std::string key = MakeKey(table, column);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* entry = Find(shard, key, /*refresh_lru=*/false);
  if (entry == nullptr) return false;
  if (entry->full()) {
    for (int64_t r : rows) {
      if (r < 0 || r >= entry->values->length()) return false;
    }
    return true;
  }
  const auto& ids = entry->row_ids;
  for (int64_t r : rows) {
    if (!std::binary_search(ids.begin(), ids.end(), r)) return false;
  }
  return true;
}

StatusOr<ColumnPtr> ShredCache::Lookup(const std::string& table, int column,
                                       const std::vector<int64_t>& rows) {
  std::string key = MakeKey(table, column);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* entry = Find(shard, key, /*refresh_lru=*/true);
  if (entry == nullptr) {
    ++shard.misses;
    return Status::NotFound("no cached shred");
  }
  auto out = std::make_shared<Column>(entry->values->type());
  out->Reserve(static_cast<int64_t>(rows.size()));
  if (entry->full()) {
    for (int64_t r : rows) {
      if (r < 0 || r >= entry->values->length()) {
        ++shard.misses;
        return Status::NotFound("row outside cached column");
      }
    }
    ++shard.hits;
    return std::make_shared<Column>(entry->values->Gather(
        rows.data(), static_cast<int64_t>(rows.size())));
  }
  const auto& ids = entry->row_ids;
  std::vector<int64_t> indices;
  indices.reserve(rows.size());
  for (int64_t r : rows) {
    auto it = std::lower_bound(ids.begin(), ids.end(), r);
    if (it == ids.end() || *it != r) {
      ++shard.misses;
      return Status::NotFound("requested row not in cached shred");
    }
    indices.push_back(static_cast<int64_t>(it - ids.begin()));
  }
  ++shard.hits;
  return std::make_shared<Column>(entry->values->Gather(
      indices.data(), static_cast<int64_t>(indices.size())));
}

StatusOr<ColumnPtr> ShredCache::LookupFull(const std::string& table,
                                           int column) {
  std::string key = MakeKey(table, column);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* entry = Find(shard, key, /*refresh_lru=*/true);
  if (entry == nullptr || !entry->full()) {
    ++shard.misses;
    return Status::NotFound("no cached full column");
  }
  ++shard.hits;
  return entry->values;
}

bool ShredCache::ContainsFull(const std::string& table, int column) const {
  std::string key = MakeKey(table, column);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  return it != shard.index.end() && it->second->full();
}

void ShredCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total_bytes_.fetch_sub(shard->bytes_cached, std::memory_order_relaxed);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes_cached = 0;
  }
}

void ShredCache::EraseTable(const std::string& table) {
  const std::string prefix = table + "#";
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->index.begin(); it != shard->index.end();) {
      if (it->first.compare(0, prefix.size(), prefix) == 0) {
        total_bytes_.fetch_sub(it->second->bytes, std::memory_order_relaxed);
        shard->bytes_cached -= it->second->bytes;
        shard->lru.erase(it->second);
        it = shard->index.erase(it);
      } else {
        ++it;
      }
    }
  }
}

CacheStats ShredCache::Stats() const {
  CacheStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += static_cast<int64_t>(shard->index.size());
    stats.bytes += shard->bytes_cached;
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
  }
  return stats;
}

}  // namespace raw
