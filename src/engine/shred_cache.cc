#include "engine/shred_cache.h"

#include <algorithm>

namespace raw {

ShredCache::Entry* ShredCache::Find(const std::string& key, bool refresh_lru) {
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  if (refresh_lru) lru_.splice(lru_.begin(), lru_, it->second);
  return &*it->second;
}

Status ShredCache::Insert(const std::string& table, int column,
                          const int64_t* row_ids, const Column& values) {
  std::string key = MakeKey(table, column);
  Entry* existing = Find(key, /*refresh_lru=*/false);
  const int64_t new_rows = values.length();
  if (existing != nullptr) {
    int64_t old_rows = existing->full()
                           ? existing->values->length()
                           : static_cast<int64_t>(existing->row_ids.size());
    if (existing->full() || old_rows >= new_rows) {
      return Status::OK();  // keep the (at least as large) existing entry
    }
    bytes_cached_ -= existing->bytes;
    lru_.erase(index_[key]);
    index_.erase(key);
  }
  Entry entry;
  entry.key = key;
  entry.values = std::make_shared<Column>(values);
  if (row_ids != nullptr) {
    entry.row_ids.assign(row_ids, row_ids + new_rows);
    for (int64_t i = 1; i < new_rows; ++i) {
      if (entry.row_ids[static_cast<size_t>(i)] <=
          entry.row_ids[static_cast<size_t>(i - 1)]) {
        return Status::InvalidArgument(
            "shred cache insert: row ids must be strictly increasing");
      }
    }
  }
  entry.bytes = entry.values->MemoryBytes() +
                static_cast<int64_t>(entry.row_ids.size() * sizeof(int64_t));
  bytes_cached_ += entry.bytes;
  lru_.push_front(std::move(entry));
  index_[key] = lru_.begin();
  EvictOverCapacity();
  return Status::OK();
}

void ShredCache::EvictOverCapacity() {
  while (bytes_cached_ > capacity_bytes_ && lru_.size() > 1) {
    Entry& victim = lru_.back();
    bytes_cached_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

bool ShredCache::Covers(const std::string& table, int column,
                        const std::vector<int64_t>& rows) {
  Entry* entry = Find(MakeKey(table, column), /*refresh_lru=*/false);
  if (entry == nullptr) return false;
  if (entry->full()) {
    for (int64_t r : rows) {
      if (r < 0 || r >= entry->values->length()) return false;
    }
    return true;
  }
  const auto& ids = entry->row_ids;
  for (int64_t r : rows) {
    if (!std::binary_search(ids.begin(), ids.end(), r)) return false;
  }
  return true;
}

StatusOr<ColumnPtr> ShredCache::Lookup(const std::string& table, int column,
                                       const std::vector<int64_t>& rows) {
  Entry* entry = Find(MakeKey(table, column), /*refresh_lru=*/true);
  if (entry == nullptr) {
    ++misses_;
    return Status::NotFound("no cached shred");
  }
  auto out = std::make_shared<Column>(entry->values->type());
  out->Reserve(static_cast<int64_t>(rows.size()));
  if (entry->full()) {
    for (int64_t r : rows) {
      if (r < 0 || r >= entry->values->length()) {
        ++misses_;
        return Status::NotFound("row outside cached column");
      }
    }
    ++hits_;
    return std::make_shared<Column>(entry->values->Gather(
        rows.data(), static_cast<int64_t>(rows.size())));
  }
  const auto& ids = entry->row_ids;
  std::vector<int64_t> indices;
  indices.reserve(rows.size());
  for (int64_t r : rows) {
    auto it = std::lower_bound(ids.begin(), ids.end(), r);
    if (it == ids.end() || *it != r) {
      ++misses_;
      return Status::NotFound("requested row not in cached shred");
    }
    indices.push_back(static_cast<int64_t>(it - ids.begin()));
  }
  ++hits_;
  return std::make_shared<Column>(entry->values->Gather(
      indices.data(), static_cast<int64_t>(indices.size())));
}

StatusOr<ColumnPtr> ShredCache::LookupFull(const std::string& table,
                                           int column) {
  Entry* entry = Find(MakeKey(table, column), /*refresh_lru=*/true);
  if (entry == nullptr || !entry->full()) {
    ++misses_;
    return Status::NotFound("no cached full column");
  }
  ++hits_;
  return entry->values;
}

void ShredCache::Clear() {
  lru_.clear();
  index_.clear();
  bytes_cached_ = 0;
}

}  // namespace raw
