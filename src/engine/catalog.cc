#include "engine/catalog.h"

#include "common/stopwatch.h"
#include "csv/csv_tokenizer.h"
#include "scan/loader.h"

namespace raw {

Status TableEntry::EnsureOpen() {
  std::lock_guard<std::mutex> lock(mu_);
  if (opened_) {
    // REF row counts refresh on every lookup (the shared reader may serve
    // several derived tables).
    if (info.format == FileFormat::kRef && ref_reader_ != nullptr) {
      row_count_.store(info.ref_group < 0
                           ? ref_reader_->num_events()
                           : ref_reader_->GroupTotal(info.ref_group),
                       std::memory_order_release);
    }
    return Status::OK();
  }
  switch (info.format) {
    case FileFormat::kCsv: {
      if (mmap_ == nullptr) {
        RAW_ASSIGN_OR_RETURN(mmap_, MmapFile::Open(info.path));
        // One memchr pass over the file decides the tokenizer for every
        // future scan (quote handling must be known up front — a quote
        // appearing late would invalidate earlier row boundaries). The
        // pass also warms the page cache the first scan reads right after,
        // so on files that fit in memory the extra disk I/O is ~zero.
        csv_quoted_ = BufferContainsQuote(mmap_->data(),
                                          mmap_->data() + mmap_->size(),
                                          info.csv_options.quote);
      }
      break;
    }
    case FileFormat::kBinary: {
      if (mmap_ == nullptr) {
        RAW_ASSIGN_OR_RETURN(mmap_, MmapFile::Open(info.path));
      }
      if (bin_reader_ == nullptr) {
        RAW_ASSIGN_OR_RETURN(BinaryLayout layout,
                             BinaryLayout::Create(info.schema));
        RAW_ASSIGN_OR_RETURN(bin_reader_,
                             BinaryReader::Open(info.path, std::move(layout)));
        row_count_.store(bin_reader_->num_rows(), std::memory_order_release);
      }
      break;
    }
    case FileFormat::kRef:
      // The shared reader is attached by Catalog::Get.
      if (ref_reader_ == nullptr) {
        return Status::Internal("REF reader not attached for table " +
                                info.name);
      }
      row_count_.store(info.ref_group < 0
                           ? ref_reader_->num_events()
                           : ref_reader_->GroupTotal(info.ref_group),
                       std::memory_order_release);
      break;
  }
  opened_ = true;
  return Status::OK();
}

Status TableEntry::DropPageCache() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (mmap_ == nullptr) return Status::OK();
  return mmap_->DropPageCache();
}

std::shared_ptr<const PositionalMap> TableEntry::pmap() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pmap_;
}

bool TableEntry::TryClaimPmapBuild() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pmap_ != nullptr) return false;
  }
  bool expected = false;
  return pmap_building_.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel);
}

void TableEntry::AbandonPmapBuild() {
  pmap_building_.store(false, std::memory_order_release);
}

void TableEntry::PublishPmap(std::shared_ptr<const PositionalMap> map) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pmap_ == nullptr && map != nullptr && !map->empty()) {
      pmap_ = std::move(map);
      SetRowCountIfUnknown(pmap_->num_rows());
    }
  }
  pmap_building_.store(false, std::memory_order_release);
}

StatusOr<std::shared_ptr<const InMemoryTable>> TableEntry::EnsureLoaded(
    double* load_seconds) {
  if (load_seconds != nullptr) *load_seconds = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (loaded_ != nullptr) return loaded_;
  }
  // Duplicate loaders serialize on load_mu_ (the work happens once), but
  // `mu_` stays free so concurrent readers of the entry's other state are
  // not stalled behind a multi-second load. The file handles read below are
  // stable after EnsureOpen, which every caller has been through.
  std::lock_guard<std::mutex> load_lock(load_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (loaded_ != nullptr) return loaded_;  // lost the race; share it
  }
  Stopwatch watch;
  std::vector<int> all;
  for (int c = 0; c < info.schema.num_fields(); ++c) all.push_back(c);
  std::unique_ptr<InMemoryTable> table;
  switch (info.format) {
    case FileFormat::kCsv: {
      RAW_ASSIGN_OR_RETURN(
          table, LoadCsvTable(mmap_.get(), info.schema, all, info.csv_options,
                              csv_quoted_));
      break;
    }
    case FileFormat::kBinary: {
      RAW_ASSIGN_OR_RETURN(table, LoadBinaryTable(bin_reader_.get(), all));
      break;
    }
    case FileFormat::kRef: {
      if (info.ref_group < 0) {
        RAW_ASSIGN_OR_RETURN(table, LoadRefEventTable(ref_reader_.get()));
      } else {
        RAW_ASSIGN_OR_RETURN(
            table, LoadRefParticleTable(ref_reader_.get(), info.ref_group));
      }
      break;
    }
  }
  std::shared_ptr<const InMemoryTable> loaded(std::move(table));
  row_count_.store(loaded->num_rows(), std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    load_seconds_ = watch.ElapsedSeconds();
    if (load_seconds != nullptr) *load_seconds = load_seconds_;
    loaded_ = loaded;
  }
  return loaded;
}

std::shared_ptr<const InMemoryTable> TableEntry::loaded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return loaded_;
}

void TableEntry::ResetAdaptiveState() {
  std::lock_guard<std::mutex> lock(mu_);
  pmap_.reset();
  loaded_.reset();
}

TableStats TableEntry::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  TableStats stats;
  stats.name = info.name;
  stats.format = info.format;
  stats.row_count = row_count_.load(std::memory_order_acquire);
  if (pmap_ != nullptr) {
    stats.pmap_rows = pmap_->num_rows();
    stats.pmap_bytes = pmap_->MemoryBytes();
  }
  stats.loaded = loaded_ != nullptr;
  return stats;
}

void TableEntry::AttachRefReader(std::shared_ptr<RefReader> reader) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ref_reader_ == nullptr) ref_reader_ = std::move(reader);
}

Catalog::Catalog(CatalogOptions options) : options_(options) {}

Status Catalog::Register(TableInfo info) {
  RAW_RETURN_NOT_OK(info.schema.Validate());
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (tables_.count(info.name) > 0) {
    return Status::AlreadyExists("table '" + info.name +
                                 "' is already registered");
  }
  auto entry = std::make_unique<TableEntry>();
  entry->info = std::move(info);
  tables_[entry->info.name] = std::move(entry);
  return Status::OK();
}

Status Catalog::RegisterCsv(const std::string& name, const std::string& path,
                            Schema schema, CsvOptions options,
                            int pmap_stride) {
  TableInfo info;
  info.name = name;
  info.path = path;
  info.format = FileFormat::kCsv;
  info.schema = std::move(schema);
  info.csv_options = options;
  info.pmap_stride = pmap_stride;
  return Register(std::move(info));
}

Status Catalog::RegisterBinary(const std::string& name,
                               const std::string& path, Schema schema) {
  TableInfo info;
  info.name = name;
  info.path = path;
  info.format = FileFormat::kBinary;
  info.schema = std::move(schema);
  return Register(std::move(info));
}

Status Catalog::RegisterRef(const std::string& prefix,
                            const std::string& path) {
  TableInfo events;
  events.name = prefix + "_events";
  events.path = path;
  events.format = FileFormat::kRef;
  events.ref_group = -1;
  events.schema = Schema{{"eventID", DataType::kInt64},
                         {"runNumber", DataType::kInt32}};
  RAW_RETURN_NOT_OK(Register(std::move(events)));
  static const char* kSuffix[] = {"_muons", "_electrons", "_jets"};
  for (int g = 0; g < ref_branches::kNumGroups; ++g) {
    TableInfo particles;
    particles.name = prefix + kSuffix[g];
    particles.path = path;
    particles.format = FileFormat::kRef;
    particles.ref_group = g;
    particles.schema = Schema{{"eventID", DataType::kInt64},
                              {"pt", DataType::kFloat32},
                              {"eta", DataType::kFloat32},
                              {"phi", DataType::kFloat32}};
    RAW_RETURN_NOT_OK(Register(std::move(particles)));
  }
  return Status::OK();
}

StatusOr<TableEntry*> Catalog::Get(const std::string& name) {
  TableEntry* entry = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = tables_.find(name);
    if (it == tables_.end()) {
      return Status::NotFound("unknown table '" + name + "'");
    }
    entry = it->second.get();
  }
  if (entry->info.format == FileFormat::kRef && !entry->HasRefReader()) {
    // First lookup of this REF table: resolve/share the file's reader under
    // the (cold-path-only) global lock. Racing lookups both enter; the
    // attach is idempotent.
    std::lock_guard<std::mutex> lock(ref_mu_);
    auto rit = ref_readers_.find(entry->info.path);
    if (rit == ref_readers_.end()) {
      RAW_ASSIGN_OR_RETURN(
          std::unique_ptr<RefReader> reader,
          RefReader::Open(entry->info.path, options_.ref_pool_bytes));
      rit = ref_readers_
                .emplace(entry->info.path,
                         std::shared_ptr<RefReader>(std::move(reader)))
                .first;
    }
    entry->AttachRefReader(rit->second);
  }
  RAW_RETURN_NOT_OK(entry->EnsureOpen());
  return entry;
}

bool Catalog::Contains(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return tables_.count(name) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  return names;
}

void Catalog::ResetAdaptiveState() {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const auto& [name, entry] : tables_) entry->ResetAdaptiveState();
  }
  // Decoded-cluster caches are adaptive state too: drop them so REF queries
  // revert to cold behaviour. In-flight reads keep their pinned handles.
  std::lock_guard<std::mutex> lock(ref_mu_);
  for (const auto& [path, reader] : ref_readers_) reader->ClearCache();
}

ClusterPoolStats Catalog::RefPoolStats() const {
  ClusterPoolStats total;
  std::lock_guard<std::mutex> lock(ref_mu_);
  for (const auto& [path, reader] : ref_readers_) {
    ClusterPoolStats s = reader->pool()->Stats();
    total.entries += s.entries;
    total.bytes += s.bytes;
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
  }
  return total;
}

std::vector<TableStats> Catalog::Stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<TableStats> stats;
  stats.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) stats.push_back(entry->Stats());
  return stats;
}

}  // namespace raw
