#include "engine/catalog.h"

namespace raw {

Status TableEntry::EnsureOpen() {
  switch (info.format) {
    case FileFormat::kCsv: {
      if (mmap == nullptr) {
        RAW_ASSIGN_OR_RETURN(mmap, MmapFile::Open(info.path));
      }
      return Status::OK();
    }
    case FileFormat::kBinary: {
      if (mmap == nullptr) {
        RAW_ASSIGN_OR_RETURN(mmap, MmapFile::Open(info.path));
      }
      if (bin_reader == nullptr) {
        RAW_ASSIGN_OR_RETURN(BinaryLayout layout,
                             BinaryLayout::Create(info.schema));
        RAW_ASSIGN_OR_RETURN(bin_reader,
                             BinaryReader::Open(info.path, std::move(layout)));
        row_count = bin_reader->num_rows();
      }
      return Status::OK();
    }
    case FileFormat::kRef:
      // The shared reader is attached by Catalog::Get.
      if (ref_reader == nullptr) {
        return Status::Internal("REF reader not attached for table " +
                                info.name);
      }
      row_count = info.ref_group < 0 ? ref_reader->num_events()
                                     : ref_reader->GroupTotal(info.ref_group);
      return Status::OK();
  }
  return Status::Internal("bad file format");
}

Catalog::Catalog(CatalogOptions options) : options_(options) {}

Status Catalog::Register(TableInfo info) {
  if (tables_.count(info.name) > 0) {
    return Status::AlreadyExists("table '" + info.name +
                                 "' is already registered");
  }
  RAW_RETURN_NOT_OK(info.schema.Validate());
  auto entry = std::make_unique<TableEntry>();
  entry->info = std::move(info);
  tables_[entry->info.name] = std::move(entry);
  return Status::OK();
}

Status Catalog::RegisterCsv(const std::string& name, const std::string& path,
                            Schema schema, CsvOptions options,
                            int pmap_stride) {
  TableInfo info;
  info.name = name;
  info.path = path;
  info.format = FileFormat::kCsv;
  info.schema = std::move(schema);
  info.csv_options = options;
  info.pmap_stride = pmap_stride;
  return Register(std::move(info));
}

Status Catalog::RegisterBinary(const std::string& name,
                               const std::string& path, Schema schema) {
  TableInfo info;
  info.name = name;
  info.path = path;
  info.format = FileFormat::kBinary;
  info.schema = std::move(schema);
  return Register(std::move(info));
}

Status Catalog::RegisterRef(const std::string& prefix,
                            const std::string& path) {
  TableInfo events;
  events.name = prefix + "_events";
  events.path = path;
  events.format = FileFormat::kRef;
  events.ref_group = -1;
  events.schema = Schema{{"eventID", DataType::kInt64},
                         {"runNumber", DataType::kInt32}};
  RAW_RETURN_NOT_OK(Register(std::move(events)));
  static const char* kSuffix[] = {"_muons", "_electrons", "_jets"};
  for (int g = 0; g < ref_branches::kNumGroups; ++g) {
    TableInfo particles;
    particles.name = prefix + kSuffix[g];
    particles.path = path;
    particles.format = FileFormat::kRef;
    particles.ref_group = g;
    particles.schema = Schema{{"eventID", DataType::kInt64},
                              {"pt", DataType::kFloat32},
                              {"eta", DataType::kFloat32},
                              {"phi", DataType::kFloat32}};
    RAW_RETURN_NOT_OK(Register(std::move(particles)));
  }
  return Status::OK();
}

StatusOr<TableEntry*> Catalog::Get(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("unknown table '" + name + "'");
  }
  TableEntry* entry = it->second.get();
  if (entry->info.format == FileFormat::kRef && entry->ref_reader == nullptr) {
    auto rit = ref_readers_.find(entry->info.path);
    if (rit == ref_readers_.end()) {
      RAW_ASSIGN_OR_RETURN(
          std::unique_ptr<RefReader> reader,
          RefReader::Open(entry->info.path, options_.ref_pool_bytes));
      rit = ref_readers_
                .emplace(entry->info.path,
                         std::shared_ptr<RefReader>(std::move(reader)))
                .first;
    }
    entry->ref_reader = rit->second;
  }
  RAW_RETURN_NOT_OK(entry->EnsureOpen());
  return entry;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  return names;
}

}  // namespace raw
