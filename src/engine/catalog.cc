#include "engine/catalog.h"

#include <sys/stat.h>

#include "common/stopwatch.h"
#include "engine/formats/builtin.h"

namespace raw {

namespace {

/// Stats `path` into a (mtime_ns, size) signature; false on failure.
bool FileSignature(const std::string& path, int64_t* mtime_ns, int64_t* size) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return false;
  *mtime_ns = static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
              static_cast<int64_t>(st.st_mtim.tv_nsec);
  *size = static_cast<int64_t>(st.st_size);
  return true;
}

}  // namespace

Status TableEntry::EnsureOpen() {
  RAW_ASSIGN_OR_RETURN(const FormatDriver* driver,
                       FormatRegistry::Global().Require(info.format));
  {
    std::lock_guard<std::mutex> lock(open_mu_);
    if (!opened_) {
      RAW_RETURN_NOT_OK(driver->OpenTable(*this));
      opened_ = true;
      RecordFileSignature();
    }
  }
  // Derived state may change between queries (e.g. REF row counts served by
  // a shared reader) — refresh on every lookup.
  driver->RefreshEntry(*this);
  return Status::OK();
}

void TableEntry::InitAccessCounters(int num_columns) {
  if (column_accesses_ != nullptr || num_columns <= 0) return;
  column_accesses_ =
      std::make_unique<std::atomic<int64_t>[]>(static_cast<size_t>(num_columns));
  for (int i = 0; i < num_columns; ++i) column_accesses_[i].store(0);
  num_access_columns_ = num_columns;
}

void TableEntry::NoteColumnAccesses(const std::vector<int>& cols) {
  if (column_accesses_ == nullptr) return;
  for (int c : cols) {
    if (c >= 0 && c < num_access_columns_) {
      column_accesses_[c].fetch_add(1, std::memory_order_relaxed);
    }
  }
}

std::vector<int64_t> TableEntry::ColumnAccessSnapshot() const {
  std::vector<int64_t> out(static_cast<size_t>(num_access_columns_), 0);
  for (int i = 0; i < num_access_columns_; ++i) {
    out[static_cast<size_t>(i)] =
        column_accesses_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void TableEntry::RecordFileSignature() {
  int64_t mtime_ns = 0;
  int64_t size = -1;
  if (!FileSignature(info.path, &mtime_ns, &size)) return;
  std::lock_guard<std::mutex> lock(mu_);
  file_mtime_ns_ = mtime_ns;
  file_size_ = size;
}

bool TableEntry::CheckStale() {
  // Shared-reader tables (REF) multiplex one file across entries and their
  // reader cannot be swapped per entry; skip them.
  if (info.format == FileFormat::kRef) return false;
  int64_t mtime_ns = 0;
  int64_t size = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (file_size_ < 0) return false;  // never opened: nothing to invalidate
    if (!FileSignature(info.path, &mtime_ns, &size)) return false;
    if (mtime_ns == file_mtime_ns_ && size == file_size_) return false;
  }
  // The file changed underneath us. Retire the open handles (in-flight
  // queries hold raw pointers into them), drop derived state, and force the
  // next EnsureOpen to remap the new contents.
  std::lock_guard<std::mutex> open_lock(open_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (mmap_ != nullptr) retired_mmaps_.push_back(std::move(mmap_));
    if (bin_reader_ != nullptr) {
      retired_bin_readers_.push_back(std::move(bin_reader_));
    }
    pmap_.reset();
    format_state_.reset();
    loaded_.reset();
    row_count_.store(-1, std::memory_order_release);
    file_mtime_ns_ = mtime_ns;
    file_size_ = size;
  }
  version_.fetch_add(1, std::memory_order_acq_rel);
  opened_ = false;  // guarded by open_mu_
  return true;
}

StatusOr<const MmapFile*> TableEntry::EnsureMmap() {
  std::lock_guard<std::mutex> lock(mu_);
  if (mmap_ == nullptr) {
    RAW_ASSIGN_OR_RETURN(mmap_, MmapFile::Open(info.path));
  }
  return mmap_.get();
}

void TableEntry::SetCsvQuoted(bool quoted) {
  std::lock_guard<std::mutex> lock(mu_);
  csv_quoted_ = quoted;
}

Status TableEntry::EnsureBinReader() {
  std::lock_guard<std::mutex> lock(mu_);
  if (bin_reader_ == nullptr) {
    RAW_ASSIGN_OR_RETURN(BinaryLayout layout, BinaryLayout::Create(info.schema));
    RAW_ASSIGN_OR_RETURN(bin_reader_,
                         BinaryReader::Open(info.path, std::move(layout)));
    StoreRowCount(bin_reader_->num_rows());
  }
  return Status::OK();
}

void TableEntry::AttachRefReader(std::shared_ptr<RefReader> reader) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ref_reader_ == nullptr) ref_reader_ = std::move(reader);
}

bool TableEntry::HasRefReader() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ref_reader_ != nullptr;
}

Status TableEntry::DropPageCache() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (mmap_ == nullptr) return Status::OK();
  return mmap_->DropPageCache();
}

std::shared_ptr<const PositionalMap> TableEntry::pmap() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pmap_;
}

bool TableEntry::TryClaimPmapBuild() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pmap_ != nullptr) return false;
  }
  bool expected = false;
  if (!pmap_building_.compare_exchange_strong(expected, true,
                                              std::memory_order_acq_rel)) {
    return false;
  }
  pmap_claim_version_.store(version(), std::memory_order_release);
  return true;
}

void TableEntry::AbandonPmapBuild() {
  pmap_building_.store(false, std::memory_order_release);
}

void TableEntry::PublishPmap(std::shared_ptr<const PositionalMap> map) {
  // A map built against bytes that changed mid-scan (CheckStale bumped the
  // epoch since the claim) indexes the old file; publishing it would hand
  // later queries offsets into unrelated data. Drop it silently — the next
  // query re-claims and rebuilds against the fresh mapping.
  const bool fresh =
      pmap_claim_version_.load(std::memory_order_acquire) == version();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fresh && pmap_ == nullptr && map != nullptr && !map->empty()) {
      pmap_ = std::move(map);
      SetRowCountIfUnknown(pmap_->num_rows());
    }
  }
  pmap_building_.store(false, std::memory_order_release);
}

std::shared_ptr<const FormatAdaptiveState> TableEntry::format_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return format_state_;
}

bool TableEntry::TryClaimFormatStateBuild() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (format_state_ != nullptr) return false;
  }
  bool expected = false;
  if (!format_state_building_.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    return false;
  }
  format_state_claim_version_.store(version(), std::memory_order_release);
  return true;
}

void TableEntry::AbandonFormatStateBuild() {
  format_state_building_.store(false, std::memory_order_release);
}

void TableEntry::PublishFormatState(
    std::shared_ptr<const FormatAdaptiveState> state) {
  // Same mutate-under-claim guard as PublishPmap: an index of the old bytes
  // must never describe the remapped file.
  const bool fresh = format_state_claim_version_.load(
                         std::memory_order_acquire) == version();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fresh && format_state_ == nullptr && state != nullptr) {
      format_state_ = std::move(state);
    }
  }
  format_state_building_.store(false, std::memory_order_release);
}

StatusOr<std::shared_ptr<const InMemoryTable>> TableEntry::EnsureLoaded(
    double* load_seconds) {
  if (load_seconds != nullptr) *load_seconds = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (loaded_ != nullptr) return loaded_;
  }
  // Duplicate loaders serialize on load_mu_ (the work happens once), but
  // `mu_` stays free so concurrent readers of the entry's other state are
  // not stalled behind a multi-second load. The file handles the driver
  // reads below are stable after EnsureOpen, which every caller has been
  // through.
  std::lock_guard<std::mutex> load_lock(load_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (loaded_ != nullptr) return loaded_;  // lost the race; share it
  }
  RAW_ASSIGN_OR_RETURN(const FormatDriver* driver,
                       FormatRegistry::Global().Require(info.format));
  Stopwatch watch;
  RAW_ASSIGN_OR_RETURN(std::unique_ptr<InMemoryTable> table,
                       driver->LoadTable(*this));
  std::shared_ptr<const InMemoryTable> loaded(std::move(table));
  row_count_.store(loaded->num_rows(), std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    load_seconds_ = watch.ElapsedSeconds();
    if (load_seconds != nullptr) *load_seconds = load_seconds_;
    loaded_ = loaded;
  }
  return loaded;
}

std::shared_ptr<const InMemoryTable> TableEntry::loaded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return loaded_;
}

void TableEntry::ResetAdaptiveState() {
  std::lock_guard<std::mutex> lock(mu_);
  pmap_.reset();
  format_state_.reset();
  loaded_.reset();
}

TableStats TableEntry::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  TableStats stats;
  stats.name = info.name;
  stats.format = info.format;
  stats.row_count = row_count_.load(std::memory_order_acquire);
  if (pmap_ != nullptr) {
    stats.pmap_rows = pmap_->num_rows();
    stats.pmap_bytes = pmap_->MemoryBytes();
  }
  if (format_state_ != nullptr) {
    stats.format_state_bytes = format_state_->MemoryBytes();
  }
  stats.loaded = loaded_ != nullptr;
  stats.version = version_.load(std::memory_order_acquire);
  stats.file_size = file_size_;
  stats.file_mtime_ns = file_mtime_ns_;
  stats.scans = scan_count_.load(std::memory_order_relaxed);
  stats.column_accesses = ColumnAccessSnapshot();
  return stats;
}

Catalog::Catalog(CatalogOptions options) : options_(options) {
  EnsureBuiltinFormatDriversRegistered();
}

Status Catalog::Register(TableInfo info) {
  RAW_RETURN_NOT_OK(info.schema.Validate());
  // Unknown formats fail here — with the registry's annotated error naming
  // the registered drivers — instead of deep inside a later plan.
  RAW_ASSIGN_OR_RETURN(const FormatDriver* driver,
                       FormatRegistry::Global().Require(info.format));
  (void)driver;
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (tables_.count(info.name) > 0) {
    return Status::AlreadyExists("table '" + info.name +
                                 "' is already registered");
  }
  auto entry = std::make_unique<TableEntry>();
  entry->info = std::move(info);
  entry->InitAccessCounters(entry->info.schema.num_fields());
  tables_[entry->info.name] = std::move(entry);
  return Status::OK();
}

Status Catalog::RegisterCsv(const std::string& name, const std::string& path,
                            Schema schema, CsvOptions options,
                            int pmap_stride) {
  TableInfo info;
  info.name = name;
  info.path = path;
  info.format = FileFormat::kCsv;
  info.schema = std::move(schema);
  info.csv_options = options;
  info.pmap_stride = pmap_stride;
  return Register(std::move(info));
}

Status Catalog::RegisterBinary(const std::string& name,
                               const std::string& path, Schema schema) {
  TableInfo info;
  info.name = name;
  info.path = path;
  info.format = FileFormat::kBinary;
  info.schema = std::move(schema);
  return Register(std::move(info));
}

Status Catalog::RegisterRef(const std::string& prefix,
                            const std::string& path) {
  TableInfo events;
  events.name = prefix + "_events";
  events.path = path;
  events.format = FileFormat::kRef;
  events.ref_group = -1;
  events.schema = Schema{{"eventID", DataType::kInt64},
                         {"runNumber", DataType::kInt32}};
  RAW_RETURN_NOT_OK(Register(std::move(events)));
  static const char* kSuffix[] = {"_muons", "_electrons", "_jets"};
  for (int g = 0; g < ref_branches::kNumGroups; ++g) {
    TableInfo particles;
    particles.name = prefix + kSuffix[g];
    particles.path = path;
    particles.format = FileFormat::kRef;
    particles.ref_group = g;
    particles.schema = Schema{{"eventID", DataType::kInt64},
                              {"pt", DataType::kFloat32},
                              {"eta", DataType::kFloat32},
                              {"phi", DataType::kFloat32}};
    RAW_RETURN_NOT_OK(Register(std::move(particles)));
  }
  return Status::OK();
}

Status Catalog::RegisterJsonl(const std::string& name, const std::string& path,
                              Schema schema, int pmap_stride) {
  TableInfo info;
  info.name = name;
  info.path = path;
  info.format = FileFormat::kJsonl;
  info.schema = std::move(schema);
  info.pmap_stride = pmap_stride;
  return Register(std::move(info));
}

Status Catalog::RegisterCsvGz(const std::string& name, const std::string& path,
                              Schema schema, CsvOptions options) {
  TableInfo info;
  info.name = name;
  info.path = path;
  info.format = FileFormat::kCsvGz;
  info.schema = std::move(schema);
  info.csv_options = options;
  return Register(std::move(info));
}

StatusOr<TableEntry*> Catalog::Get(const std::string& name) {
  TableEntry* entry = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = tables_.find(name);
    if (it == tables_.end()) {
      return Status::NotFound("unknown table '" + name + "'");
    }
    entry = it->second.get();
  }
  RAW_ASSIGN_OR_RETURN(const FormatDriver* driver,
                       FormatRegistry::Global().Require(entry->info.format));
  RAW_RETURN_NOT_OK(driver->PrepareShared(*this, *entry));
  // Re-validate the backing file before (re)opening: a changed signature
  // drops the entry's adaptive state and lets the engine purge caches.
  if (entry->CheckStale() && on_invalidated_) on_invalidated_(name);
  RAW_RETURN_NOT_OK(entry->EnsureOpen());
  return entry;
}

bool Catalog::Contains(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return tables_.count(name) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  return names;
}

StatusOr<std::shared_ptr<RefReader>> Catalog::SharedRefReader(
    const std::string& path) {
  // Cold-path-only global lock; racing lookups both enter, the map makes the
  // open happen once per path.
  std::lock_guard<std::mutex> lock(ref_mu_);
  auto it = ref_readers_.find(path);
  if (it == ref_readers_.end()) {
    RAW_ASSIGN_OR_RETURN(std::unique_ptr<RefReader> reader,
                         RefReader::Open(path, options_.ref_pool_bytes));
    it = ref_readers_
             .emplace(path, std::shared_ptr<RefReader>(std::move(reader)))
             .first;
  }
  return it->second;
}

void Catalog::ResetAdaptiveState() {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const auto& [name, entry] : tables_) entry->ResetAdaptiveState();
  }
  // Decoded-cluster caches are adaptive state too: drop them so REF queries
  // revert to cold behaviour. In-flight reads keep their pinned handles.
  std::lock_guard<std::mutex> lock(ref_mu_);
  for (const auto& [path, reader] : ref_readers_) reader->ClearCache();
}

ClusterPoolStats Catalog::RefPoolStats() const {
  ClusterPoolStats total;
  std::lock_guard<std::mutex> lock(ref_mu_);
  for (const auto& [path, reader] : ref_readers_) {
    ClusterPoolStats s = reader->pool()->Stats();
    total.entries += s.entries;
    total.bytes += s.bytes;
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
  }
  return total;
}

std::vector<TableStats> Catalog::Stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<TableStats> stats;
  stats.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) stats.push_back(entry->Stats());
  return stats;
}

}  // namespace raw
