#include "engine/executor.h"

#include <algorithm>
#include <chrono>

#include "common/stopwatch.h"

namespace raw {

StatusOr<Datum> QueryResult::ValueAt(int64_t row, int column) const {
  if (row < 0 || row >= table.num_rows() || column < 0 ||
      column >= table.num_columns()) {
    return Status::InvalidArgument("result index out of range");
  }
  return table.column(column)->GetDatum(row);
}

StatusOr<Datum> QueryResult::Scalar() const {
  if (table.num_rows() != 1 || table.num_columns() != 1) {
    return Status::InvalidArgument(
        "Scalar() requires a 1x1 result, got " +
        std::to_string(table.num_rows()) + "x" +
        std::to_string(table.num_columns()));
  }
  return ValueAt(0, 0);
}

StatusOr<QueryResult> Executor::Run(PhysicalPlan plan) {
  // Fast-fail before draining: a deadline that lapsed during planning (or
  // while queued in a server's admission queue) must not start execution.
  if (plan.deadline.expired()) {
    return Status::ResourceExhausted("query deadline exceeded");
  }
  QueryResult result;
  result.compile_seconds = plan.compile_seconds;
  Stopwatch watch;
  RAW_ASSIGN_OR_RETURN(result.table, CollectAll(plan.root.get()));
  result.execute_seconds = watch.ElapsedSeconds();
  // Execution-time facts (join-build structure stats, ...) append once the
  // drain is done.
  result.plan_description = plan.description + plan.RuntimeDescription();
  if (plan.health != nullptr) {
    result.rows_skipped =
        plan.health->rows_skipped.load(std::memory_order_relaxed);
    result.rows_nulled =
        plan.health->rows_nulled.load(std::memory_order_relaxed);
    result.io_faults = plan.health->io_faults.load(std::memory_order_relaxed);
  }
  return result;
}

// =============================================================================
// ParallelTableScanOperator
// =============================================================================

ParallelTableScanOperator::ParallelTableScanOperator(
    Schema output_schema, std::vector<OperatorPtr> children, Options options)
    : output_schema_(std::move(output_schema)),
      children_(std::move(children)),
      options_(std::move(options)) {
  if (options_.pool == nullptr) options_.pool = ThreadPool::Shared();
}

ParallelTableScanOperator::~ParallelTableScanOperator() { JoinWorkers(); }

Status ParallelTableScanOperator::Open() {
  if (started_) return Status::OK();  // Open is idempotent before first Next
  // Children open serially: JIT children compile (or hit the template cache)
  // here, so workers only ever run Next() concurrently.
  for (OperatorPtr& child : children_) {
    RAW_RETURN_NOT_OK(child->Open());
  }
  results_.assign(children_.size(), MorselResult{});
  emit_morsel_ = 0;
  emit_batch_ = 0;
  rows_emitted_ = 0;
  morsel_base_rows_ = 0;
  eof_ = false;
  return Status::OK();
}

void ParallelTableScanOperator::StartWorkers() {
  started_ = true;
  merge_enabled_ = options_.merge_pmap_into != nullptr &&
                   options_.merge_pmap_into->empty();
  merged_pmaps_ = 0;
  emit_progress_ = 0;
  const int workers = std::min<int>(std::max(options_.num_threads, 1),
                                    static_cast<int>(children_.size()));
  inflight_window_ = options_.max_inflight_morsels > 0
                         ? options_.max_inflight_morsels
                         : std::max<int64_t>(2 * workers, 4);
  workers_.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workers_.push_back(options_.pool->Submit([this] { WorkerLoop(); }));
  }
}

void ParallelTableScanOperator::WorkerLoop() {
  while (!cancel_.load(std::memory_order_relaxed)) {
    const int64_t i = next_morsel_.fetch_add(1, std::memory_order_relaxed);
    if (i >= static_cast<int64_t>(children_.size())) return;
    {
      // Backpressure: don't run further ahead of the consumer than the
      // in-flight window. The morsel the consumer waits on is always within
      // the window (claims are monotonic), so this cannot deadlock.
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this, i] {
        return cancel_.load(std::memory_order_relaxed) ||
               i < emit_progress_ + inflight_window_;
      });
    }
    if (cancel_.load(std::memory_order_relaxed)) return;
    MorselResult result;
    if (options_.deadline.expired()) {
      result.status = Status::ResourceExhausted("query deadline exceeded");
      std::lock_guard<std::mutex> lock(mu_);
      result.done = true;
      results_[static_cast<size_t>(i)] = std::move(result);
      cv_.notify_all();
      continue;
    }
    // `done` must be set on EVERY exit path — an unmarked morsel would park
    // the consumer's cv_.wait forever — so exceptions fold into the status.
    try {
      while (true) {
        StatusOr<ColumnBatch> batch =
            children_[static_cast<size_t>(i)]->Next();
        if (!batch.ok()) {
          result.status = batch.status();
          break;
        }
        if (batch->end_of_stream()) break;
        if (batch->empty()) continue;  // drop zero-row interior batches
        result.batches.push_back(std::move(batch).value());
      }
    } catch (const std::exception& e) {
      result.status =
          Status::Internal(std::string("parallel scan worker: ") + e.what());
      result.batches.clear();
    } catch (...) {
      result.status = Status::Internal("parallel scan worker threw");
      result.batches.clear();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      result.done = true;
      results_[static_cast<size_t>(i)] = std::move(result);
    }
    cv_.notify_all();
  }
}

StatusOr<ColumnBatch> ParallelTableScanOperator::Next() {
  if (eof_) return ColumnBatch::EndOfStream(output_schema_);
  if (!started_) StartWorkers();

  while (emit_morsel_ < children_.size()) {
    // Wait for the next morsel in file order. Never run queued pool tasks
    // inline here: a task of this very scan would block on the in-flight
    // window that only this consumer advances — a self-deadlock. Worker
    // tasks run on real pool threads and always notify cv_ when done.
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return results_[emit_morsel_].done; });
    }
    MorselResult& result = results_[emit_morsel_];
    RAW_RETURN_NOT_OK(result.status);
    while (merge_enabled_ && merged_pmaps_ <= emit_morsel_) {
      RAW_RETURN_NOT_OK(options_.merge_pmap_into->AppendFrom(
          *options_.partial_pmaps[merged_pmaps_]));
      ++merged_pmaps_;
    }
    if (emit_batch_ < result.batches.size()) {
      ColumnBatch batch = std::move(result.batches[emit_batch_]);
      ++emit_batch_;
      if (options_.rebase_row_ids && batch.has_row_ids()) {
        // Morsel-local ids (0-based, consecutive across the morsel's batches)
        // shift by the total row count of the preceding morsels.
        std::vector<int64_t> ids = batch.row_ids();
        for (int64_t& id : ids) id += morsel_base_rows_;
        batch.SetRowIds(std::move(ids));
      }
      rows_emitted_ += batch.num_rows();
      return batch;
    }
    morsel_base_rows_ = rows_emitted_;
    ++emit_morsel_;
    emit_batch_ = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      emit_progress_ = static_cast<int64_t>(emit_morsel_);
    }
    cv_.notify_all();  // widen the in-flight window
  }

  eof_ = true;
  return ColumnBatch::EndOfStream(output_schema_);
}

void ParallelTableScanOperator::JoinWorkers() {
  cancel_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);  // wake backpressure waiters
  }
  cv_.notify_all();
  for (std::future<void>& fut : workers_) {
    options_.pool->HelpWait(fut);
    fut.get();
  }
  workers_.clear();
  cancel_.store(false, std::memory_order_relaxed);
}

Status ParallelTableScanOperator::Close() {
  JoinWorkers();
  Status status = Status::OK();
  for (OperatorPtr& child : children_) {
    Status st = child->Close();
    if (status.ok()) status = std::move(st);
  }
  return status;
}

}  // namespace raw
