#include "engine/executor.h"

#include "common/stopwatch.h"

namespace raw {

StatusOr<Datum> QueryResult::ValueAt(int64_t row, int column) const {
  if (row < 0 || row >= table.num_rows() || column < 0 ||
      column >= table.num_columns()) {
    return Status::InvalidArgument("result index out of range");
  }
  return table.column(column)->GetDatum(row);
}

StatusOr<Datum> QueryResult::Scalar() const {
  if (table.num_rows() != 1 || table.num_columns() != 1) {
    return Status::InvalidArgument(
        "Scalar() requires a 1x1 result, got " +
        std::to_string(table.num_rows()) + "x" +
        std::to_string(table.num_columns()));
  }
  return ValueAt(0, 0);
}

StatusOr<QueryResult> Executor::Run(PhysicalPlan plan) {
  QueryResult result;
  result.plan_description = plan.description;
  result.compile_seconds = plan.compile_seconds;
  Stopwatch watch;
  RAW_ASSIGN_OR_RETURN(result.table, CollectAll(plan.root.get()));
  result.execute_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace raw
