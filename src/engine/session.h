#ifndef RAW_ENGINE_SESSION_H_
#define RAW_ENGINE_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/logical_plan.h"
#include "engine/physical_plan.h"

namespace raw {

class RawEngine;
class Session;

/// A streaming query result: RecordBatch-at-a-time access to a running plan
/// instead of one materialized table. Obtained from Session::Stream /
/// ExecuteStream / PreparedQuery::ExecuteStream.
///
///   auto cursor = session->Stream("SELECT ... FROM t");
///   while (true) {
///     RAW_ASSIGN_OR_RETURN(ColumnBatch batch, cursor->Next());
///     if (batch.empty()) break;   // end of stream
///     ...consume batch...
///   }
///
/// The cursor pins every snapshot its plan references (positional maps,
/// loaded tables, cached columns), so it keeps streaming correct results
/// even if RawEngine::ResetAdaptiveState() runs mid-stream. Abandoning a
/// cursor early is safe: Close() runs on destruction, releasing any
/// adaptive-state build claims the plan holds.
///
/// A Cursor is single-consumer and not thread-safe; the engine underneath is.
class Cursor {
 public:
  Cursor() = default;
  Cursor(Cursor&&) = default;
  Cursor& operator=(Cursor&&) = default;
  Cursor(const Cursor&) = delete;
  Cursor& operator=(const Cursor&) = delete;
  ~Cursor();

  /// Schema of the batches this cursor yields.
  const Schema& schema() const;

  /// The next batch; an empty batch signals end of stream. The first call
  /// starts execution.
  StatusOr<ColumnBatch> Next();

  /// Drains the remaining stream into a materialized QueryResult (the
  /// entire result when called first).
  StatusOr<QueryResult> Consume();

  /// Releases plan resources; idempotent, also runs on destruction.
  Status Close();

  bool done() const { return eof_; }
  const std::string& plan_description() const { return plan_.description; }
  double plan_seconds() const { return plan_seconds_; }
  double compile_seconds() const { return compile_seconds_; }
  /// Execution time accumulated inside Next() so far.
  double execute_seconds() const { return execute_seconds_; }

 private:
  friend class Session;

  Cursor(PhysicalPlan plan, double plan_seconds, double compile_seconds)
      : plan_(std::move(plan)),
        plan_seconds_(plan_seconds),
        compile_seconds_(compile_seconds) {}

  /// Opens the plan root (idempotent); called at creation so schema() is
  /// valid immediately and open-time errors surface from Stream(), not from
  /// the first Next().
  Status EnsureOpen();

  /// Pre-materialized single-batch cursor (EXPLAIN).
  static Cursor FromBatch(ColumnBatch batch, std::string description,
                          double plan_seconds, double compile_seconds);

  PhysicalPlan plan_;
  Schema empty_schema_;
  std::unique_ptr<ColumnBatch> pending_;  // pre-materialized first batch
  bool opened_ = false;
  bool eof_ = false;
  bool closed_ = false;
  double plan_seconds_ = 0;
  double compile_seconds_ = 0;
  double execute_seconds_ = 0;
};

/// A SQL statement parsed and bound once, re-executable with fresh `?`
/// parameter values. Re-execution skips the parse and bind phases entirely
/// (observable via EngineStats::queries_parsed) and reuses the planner's
/// adaptive state — the JIT template cache makes repeated plans cheap.
///
/// Holds a pointer to its Session; the session must outlive it.
class PreparedQuery {
 public:
  const QuerySpec& spec() const { return spec_; }
  int num_params() const { return spec_.num_params; }

  /// Executes with `params` bound positionally to the `?` placeholders
  /// (params.size() must equal num_params()).
  StatusOr<QueryResult> Execute(const std::vector<Datum>& params = {});

  /// Streaming flavour of Execute.
  StatusOr<Cursor> ExecuteStream(const std::vector<Datum>& params = {});

 private:
  friend class Session;

  PreparedQuery(Session* session, QuerySpec spec)
      : session_(session), spec_(std::move(spec)) {}

  /// Substitutes + type-coerces `params` into a directly executable spec.
  StatusOr<QuerySpec> BindParams(const std::vector<Datum>& params) const;

  Session* session_;
  QuerySpec spec_;
};

/// A per-client handle onto a shared RawEngine. Sessions carry the client's
/// planner options and prepared statements; the engine underneath owns the
/// catalog and all adaptive caches behind proper synchronization, so any
/// number of sessions can run queries concurrently — sharing warm positional
/// maps, column shreds and JIT'd kernels — with results identical to serial
/// execution.
///
/// A Session itself is a lightweight, externally synchronized handle: use
/// one per client thread (they are cheap), or guard a shared one yourself.
class Session {
 public:
  /// Notifies the engine (sessions_closed counter) — servers rely on this to
  /// verify that disconnects release their sessions.
  ~Session();

  const PlannerOptions& planner_options() const { return options_; }
  void set_planner_options(const PlannerOptions& options) {
    options_ = options;
  }

  /// Parses + binds `sql` without executing (EXPLAIN-style tooling, tests).
  StatusOr<QuerySpec> Parse(const std::string& sql);

  /// Parses + binds once; the result re-executes with new parameters.
  StatusOr<PreparedQuery> Prepare(const std::string& sql);

  /// One-shot SQL execution with the session's planner options (or an
  /// explicit override), materializing the full result.
  StatusOr<QueryResult> Query(const std::string& sql);
  StatusOr<QueryResult> Query(const std::string& sql,
                              const PlannerOptions& options);

  /// Executes a programmatic logical query.
  StatusOr<QueryResult> Execute(const QuerySpec& spec);
  StatusOr<QueryResult> Execute(const QuerySpec& spec,
                                const PlannerOptions& options);

  /// Streaming flavours: batches are produced incrementally as the cursor
  /// is pulled, instead of materializing the whole result.
  StatusOr<Cursor> Stream(const std::string& sql);
  StatusOr<Cursor> Stream(const std::string& sql,
                          const PlannerOptions& options);
  StatusOr<Cursor> ExecuteStream(const QuerySpec& spec);
  StatusOr<Cursor> ExecuteStream(const QuerySpec& spec,
                                 const PlannerOptions& options);

  RawEngine* engine() const { return engine_; }
  int64_t id() const { return id_; }

 private:
  friend class RawEngine;
  friend class PreparedQuery;

  Session(RawEngine* engine, PlannerOptions options, int64_t id)
      : engine_(engine), options_(std::move(options)), id_(id) {}

  /// Plans `spec`, returning the plan plus timing metadata.
  StatusOr<PhysicalPlan> PlanSpec(const QuerySpec& spec,
                                  const PlannerOptions& options,
                                  double* plan_seconds,
                                  double* compile_seconds);

  RawEngine* engine_;
  PlannerOptions options_;
  int64_t id_;
  /// Engine-internal session (the background materializer's): excluded from
  /// session/query counters, the foreground-activity signal, access-counter
  /// mining and the result cache — background work must never look like
  /// foreground traffic or reinforce its own heat signals.
  bool internal_ = false;
};

}  // namespace raw

#endif  // RAW_ENGINE_SESSION_H_
