#ifndef RAW_ENGINE_LOGICAL_PLAN_H_
#define RAW_ENGINE_LOGICAL_PLAN_H_

#include <string>
#include <vector>

#include "columnar/aggregate.h"
#include "columnar/expression.h"
#include "common/datum.h"

namespace raw {

/// A column reference resolved to a table. `table` may be empty before
/// binding (unqualified SQL names).
struct ColumnRefSpec {
  std::string table;
  std::string column;

  std::string ToString() const {
    return table.empty() ? column : table + "." + column;
  }
};

/// A conjunct of the WHERE clause restricted to the form the paper's
/// workloads use: <column> <op> <literal>. The literal may be a `?`
/// placeholder (param_index >= 0) to be bound per execution through a
/// PreparedQuery; the binder records the column's type in `param_type` so
/// bound values coerce exactly like inline literals.
struct PredicateSpec {
  ColumnRefSpec column;
  CompareOp op = CompareOp::kLt;
  Datum literal;
  int param_index = -1;  // >= 0: literal comes from parameter binding
  DataType param_type = DataType::kInt64;  // set by the binder for params

  bool is_parameter() const { return param_index >= 0; }

  std::string ToString() const;
};

/// One SELECT-list aggregate, e.g. MAX(col11).
struct AggItemSpec {
  AggKind kind = AggKind::kMax;
  ColumnRefSpec column;  // ignored for COUNT(*)
  bool count_star = false;
  std::string output_name;
};

/// The logical query: a file-agnostic description (§3 "the logical plan of an
/// incoming query is file-agnostic") covering the query shapes of the
/// paper's evaluation — single-table selection/aggregation and two-table
/// equi-joins, optionally grouped.
struct QuerySpec {
  std::vector<std::string> tables;  // 1 or 2 entries (FROM [JOIN])

  // Join condition (tables.size() == 2): tables[0] is the probe (pipelined)
  // side, tables[1] the build side, per the engine's hash-join convention.
  ColumnRefSpec join_left;
  ColumnRefSpec join_right;

  std::vector<PredicateSpec> predicates;  // ANDed

  std::vector<AggItemSpec> aggregates;    // aggregate query when non-empty
  std::vector<ColumnRefSpec> projections; // plain SELECT list otherwise
  std::vector<ColumnRefSpec> group_by;

  int64_t limit = -1;  // -1 = no limit

  /// Number of `?` placeholders (all in predicate literal position). A spec
  /// with parameters can only be executed through Session::Prepare, which
  /// substitutes bound values per execution.
  int num_params = 0;

  /// EXPLAIN <query>: plan (including access-path selection and JIT
  /// compilation) but do not execute; the result is the plan description.
  bool explain = false;

  bool is_join() const { return tables.size() == 2; }
  bool is_aggregate() const { return !aggregates.empty(); }

  std::string ToString() const;

  /// Canonical structural serialization for cache keys: every field that
  /// affects the result is encoded with a type tag and length-prefixed
  /// strings, so two specs collide iff they describe the same query.
  /// Parameter placeholders encode as their index — the semantic result
  /// cache appends the bound values separately per execution.
  std::string Fingerprint() const;

  /// Structural sanity checks (tables present, join condition set iff two
  /// tables, aggregate/projection exclusivity).
  Status Validate() const;
};

}  // namespace raw

#endif  // RAW_ENGINE_LOGICAL_PLAN_H_
