#ifndef RAW_ENGINE_CATALOG_H_
#define RAW_ENGINE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "binfmt/binary_reader.h"
#include "columnar/in_memory_table.h"
#include "common/mmap_file.h"
#include "common/schema.h"
#include "csv/csv_options.h"
#include "csv/positional_map.h"
#include "eventsim/ref_reader.h"
#include "jit/access_path_spec.h"

namespace raw {

/// Static description of a registered raw file ("each file exposed to RAW is
/// given a name ... RAW maintains a catalog with the original filename, the
/// schema and the file format", §3).
struct TableInfo {
  std::string name;
  std::string path;
  FileFormat format = FileFormat::kCsv;
  /// CSV/binary: the file's full physical schema. REF: the derived table
  /// schema (partial schemas are natural here — only queried fields).
  Schema schema;
  CsvOptions csv_options;
  /// REF: particle group of this table (-1 = event table).
  int ref_group = -1;
  /// CSV: positional-map tracking stride used when the map is first built.
  int pmap_stride = 10;
};

/// Per-table runtime state accumulated across queries: open file handles,
/// the positional map, discovered row counts, and (for the DBMS baseline) a
/// fully loaded copy.
struct TableEntry {
  TableInfo info;

  std::unique_ptr<MmapFile> mmap;           // CSV / binary bytes
  std::unique_ptr<BinaryReader> bin_reader;  // binary layout view
  std::shared_ptr<RefReader> ref_reader;     // shared across one file's tables

  std::unique_ptr<PositionalMap> pmap;  // CSV, built by the first raw scan
  int64_t row_count = -1;               // -1 until discovered

  std::unique_ptr<InMemoryTable> loaded;  // DBMS baseline storage
  double load_seconds = 0;

  /// Opens file handles appropriate for the format (idempotent).
  Status EnsureOpen();
};

/// Options controlling catalog-wide runtime behaviour.
struct CatalogOptions {
  /// REF cluster-cache capacity per open file.
  int64_t ref_pool_bytes = 256ll << 20;
};

/// Name -> table registry plus shared readers.
class Catalog {
 public:
  explicit Catalog(CatalogOptions options = CatalogOptions());

  Status RegisterCsv(const std::string& name, const std::string& path,
                     Schema schema, CsvOptions options = CsvOptions(),
                     int pmap_stride = 10);
  Status RegisterBinary(const std::string& name, const std::string& path,
                        Schema schema);

  /// Registers the four relational views of an REF file:
  /// `<prefix>_events`, `<prefix>_muons`, `<prefix>_electrons`,
  /// `<prefix>_jets` (Figure 13).
  Status RegisterRef(const std::string& prefix, const std::string& path);

  /// Looks up a table; the entry is owned by the catalog and stable.
  StatusOr<TableEntry*> Get(const std::string& name);

  bool Contains(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  std::vector<std::string> TableNames() const;

 private:
  Status Register(TableInfo info);

  CatalogOptions options_;
  std::map<std::string, std::unique_ptr<TableEntry>> tables_;
  std::map<std::string, std::shared_ptr<RefReader>> ref_readers_;  // by path
};

}  // namespace raw

#endif  // RAW_ENGINE_CATALOG_H_
