#ifndef RAW_ENGINE_CATALOG_H_
#define RAW_ENGINE_CATALOG_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "binfmt/binary_reader.h"
#include "columnar/in_memory_table.h"
#include "common/mmap_file.h"
#include "common/schema.h"
#include "csv/csv_options.h"
#include "csv/positional_map.h"
#include "eventsim/ref_reader.h"
#include "format/format_driver.h"

namespace raw {

/// Static description of a registered raw file ("each file exposed to RAW is
/// given a name ... RAW maintains a catalog with the original filename, the
/// schema and the file format", §3).
struct TableInfo {
  std::string name;
  std::string path;
  FileFormat format = FileFormat::kCsv;
  /// CSV/binary/JSONL: the file's full physical schema. REF: the derived
  /// table schema (partial schemas are natural here — only queried fields).
  Schema schema;
  CsvOptions csv_options;
  /// REF: particle group of this table (-1 = event table).
  int ref_group = -1;
  /// Textual formats: positional-map tracking stride used when the map is
  /// first built (CSV field positions, JSONL field offsets).
  int pmap_stride = 10;
};

/// Read-only snapshot of one table's runtime state (see RawEngine::Stats()).
struct TableStats {
  std::string name;
  FileFormat format = FileFormat::kCsv;
  int64_t row_count = -1;   // -1 until discovered
  int64_t pmap_rows = 0;    // 0 when no positional map is published
  int64_t pmap_bytes = 0;
  /// Footprint of the driver's published adaptive state (e.g. the
  /// compressed-CSV block index); 0 when none.
  int64_t format_state_bytes = 0;
  bool loaded = false;      // DBMS-baseline copy resident
  /// Queries that planned a scan over this table (one per query, not per
  /// operator) — the background materializer's table-level heat signal.
  int64_t scans = 0;
  /// Per-schema-column access counts, incremented at scan/fetcher
  /// construction. Indexed like info.schema; empty until first access.
  std::vector<int64_t> column_accesses;
  /// Bumped whenever the table's backing file is detected stale (mtime or
  /// size changed) — cache keys derived from the table include it, so stale
  /// results can never be served.
  int64_t version = 0;
  /// File signature recorded at open (-1 / 0 before the first open).
  int64_t file_size = -1;
  int64_t file_mtime_ns = 0;
};

/// Per-table runtime state accumulated across queries: open file handles,
/// the positional map, format-specific adaptive state, discovered row
/// counts, and (for the DBMS baseline) a fully loaded copy.
///
/// Thread-safety: `info` is immutable after registration. File handles are
/// opened once (EnsureOpen dispatches to the format driver, idempotent under
/// the entry's open lock) and never reset, so their raw pointers stay valid
/// for the engine's lifetime. Adaptive state — the positional map, the
/// driver's format state, and the loaded copy — is published as immutable
/// shared_ptr snapshots: planners take a snapshot per query, so
/// ResetAdaptiveState() can drop the entry's reference while in-flight
/// queries keep theirs.
struct TableEntry {
  TableInfo info;

  /// Opens the table through its format driver (idempotent, thread-safe):
  /// dispatches FormatDriver::OpenTable once, then RefreshEntry on every
  /// call so drivers can refresh derived state between queries.
  Status EnsureOpen();

  // --- stable handles (valid after a successful EnsureOpen) ------------------
  const MmapFile* mmap() const { return mmap_.get(); }
  const BinaryReader* bin_reader() const { return bin_reader_.get(); }
  RefReader* ref_reader() const { return ref_reader_.get(); }
  bool csv_quoted() const { return csv_quoted_; }

  // --- driver-facing open hooks ----------------------------------------------
  // Called from FormatDriver catalog hooks (OpenTable/PrepareShared); each is
  // idempotent and takes the entry mutex internally.

  /// Maps the table's file read-only; returns the stable handle.
  StatusOr<const MmapFile*> EnsureMmap();
  /// Records whether the (CSV-family) file uses quoting.
  void SetCsvQuoted(bool quoted);
  /// Opens the fixed-layout binary reader for `info.schema` and discovers
  /// the row count.
  Status EnsureBinReader();
  /// Adopts a shared REF reader (first attach wins; later calls no-op).
  void AttachRefReader(std::shared_ptr<RefReader> reader);
  bool HasRefReader() const;

  /// Best-effort OS page-cache drop for cold-run benchmarks.
  Status DropPageCache() const;

  // --- discovered row count --------------------------------------------------
  int64_t row_count() const {
    return row_count_.load(std::memory_order_acquire);
  }
  void SetRowCountIfUnknown(int64_t rows) {
    int64_t expected = -1;
    row_count_.compare_exchange_strong(expected, rows,
                                       std::memory_order_acq_rel);
  }
  /// Unconditional store, for drivers whose backing store reports exact
  /// counts that may grow between queries (REF shared readers).
  void StoreRowCount(int64_t rows) {
    row_count_.store(rows, std::memory_order_release);
  }

  // --- positional map --------------------------------------------------------
  /// The published (complete, immutable) map, or null.
  std::shared_ptr<const PositionalMap> pmap() const;

  /// Claims the right to build this table's positional map. At most one
  /// in-flight query holds the claim; concurrent cold scans simply run
  /// without building. The claim ends with PublishPmap (successful full
  /// drain) or AbandonPmapBuild (partial scan, error, plan dropped).
  bool TryClaimPmapBuild();
  void AbandonPmapBuild();
  void PublishPmap(std::shared_ptr<const PositionalMap> map);

  // --- per-format adaptive state ---------------------------------------------
  // Same publication protocol as the positional map, for structures only the
  // format driver understands (e.g. the compressed-CSV block-offset index).

  /// The published (complete, immutable) driver state, or null.
  std::shared_ptr<const FormatAdaptiveState> format_state() const;

  bool TryClaimFormatStateBuild();
  void AbandonFormatStateBuild();
  void PublishFormatState(std::shared_ptr<const FormatAdaptiveState> state);

  // --- DBMS-baseline loaded copy ---------------------------------------------
  /// Loads the full table once through the format driver (thread-safe;
  /// concurrent callers share the result). `load_seconds` (optional)
  /// receives the one-off load time when this call performed the load,
  /// else 0.
  StatusOr<std::shared_ptr<const InMemoryTable>> EnsureLoaded(
      double* load_seconds);
  std::shared_ptr<const InMemoryTable> loaded() const;

  // --- workload access counters ----------------------------------------------
  /// Sizes the per-column counters to the schema width (called once at
  /// registration; later calls are no-ops).
  void InitAccessCounters(int num_columns);
  /// Records that a query's scan or late-scan fetcher was constructed over
  /// `cols` (relaxed atomics; out-of-range columns are ignored).
  void NoteColumnAccesses(const std::vector<int>& cols);
  /// Records one query planning a scan over this table.
  void NoteScan() { scan_count_.fetch_add(1, std::memory_order_relaxed); }
  int64_t scan_count() const {
    return scan_count_.load(std::memory_order_relaxed);
  }
  std::vector<int64_t> ColumnAccessSnapshot() const;

  // --- file identity / staleness ---------------------------------------------
  /// Stats the backing file and records its (mtime, size) signature; called
  /// after every successful driver open so a reopened table re-anchors.
  void RecordFileSignature();
  /// Re-stats the backing file. When the signature changed since the last
  /// open: bumps the version, drops adaptive state, retires the open file
  /// handles (kept alive for in-flight raw-pointer readers) and arranges for
  /// the next EnsureOpen to remap, then returns true. Never true before the
  /// first open, on stat failure, or for shared-reader (REF) tables.
  bool CheckStale();
  /// Monotonic staleness epoch; part of every cache key over this table.
  int64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Drops the positional map, the driver state, and the loaded copy
  /// (snapshots held by in-flight queries stay alive).
  void ResetAdaptiveState();

  TableStats Stats() const;

 private:
  mutable std::mutex mu_;
  /// Serializes the one-off driver OpenTable without holding `mu_` (driver
  /// hooks like EnsureMmap take `mu_` themselves).
  std::mutex open_mu_;
  /// Serializes duplicate DBMS-baseline loads without holding `mu_` for the
  /// load's duration (readers of other entry state must not stall behind a
  /// multi-second load).
  std::mutex load_mu_;
  bool opened_ = false;  // guarded by open_mu_
  std::unique_ptr<MmapFile> mmap_;           // raw file bytes
  std::unique_ptr<BinaryReader> bin_reader_;  // binary layout view
  std::shared_ptr<RefReader> ref_reader_;     // shared across one file's tables
  bool csv_quoted_ = false;
  /// Handles displaced by a stale-file reopen. In-flight queries hold raw
  /// pointers into them (the "stable handles" contract), so they retire here
  /// instead of being destroyed; file replacement is rare, so the set stays
  /// tiny.
  std::vector<std::unique_ptr<MmapFile>> retired_mmaps_;
  std::vector<std::unique_ptr<BinaryReader>> retired_bin_readers_;

  /// Recorded file signature (guarded by mu_; -1 size = not yet recorded).
  int64_t file_size_ = -1;
  int64_t file_mtime_ns_ = 0;
  std::atomic<int64_t> version_{0};

  std::atomic<int64_t> scan_count_{0};
  /// Fixed-size once InitAccessCounters runs (never resized, so concurrent
  /// relaxed increments need no lock).
  std::unique_ptr<std::atomic<int64_t>[]> column_accesses_;
  int num_access_columns_ = 0;

  std::atomic<int64_t> row_count_{-1};  // -1 until discovered

  std::shared_ptr<const PositionalMap> pmap_;   // published map (complete)
  std::atomic<bool> pmap_building_{false};
  /// Staleness epoch recorded when the build claim was granted; Publish*
  /// refuses the result if the file changed in between (the map indexes
  /// bytes that no longer exist).
  std::atomic<int64_t> pmap_claim_version_{-1};

  std::shared_ptr<const FormatAdaptiveState> format_state_;  // published
  std::atomic<bool> format_state_building_{false};
  std::atomic<int64_t> format_state_claim_version_{-1};

  std::shared_ptr<const InMemoryTable> loaded_;  // DBMS baseline storage
  double load_seconds_ = 0;
};

/// Options controlling catalog-wide runtime behaviour.
struct CatalogOptions {
  /// REF cluster-cache capacity per open file.
  int64_t ref_pool_bytes = 256ll << 20;
};

/// Name -> table registry plus shared readers. Registration takes the writer
/// lock; lookups are shared, so concurrent sessions resolve tables without
/// serializing on each other (entries are stable once registered).
///
/// Constructing a catalog registers the built-in format drivers (CSV,
/// binary, REF, JSONL, compressed CSV) in the global FormatRegistry; every
/// Register* call validates that a driver exists for the table's format, so
/// unknown formats fail at registration instead of plan time.
class Catalog {
 public:
  explicit Catalog(CatalogOptions options = CatalogOptions());

  Status RegisterCsv(const std::string& name, const std::string& path,
                     Schema schema, CsvOptions options = CsvOptions(),
                     int pmap_stride = 10);
  Status RegisterBinary(const std::string& name, const std::string& path,
                        Schema schema);

  /// Registers the four relational views of an REF file:
  /// `<prefix>_events`, `<prefix>_muons`, `<prefix>_electrons`,
  /// `<prefix>_jets` (Figure 13).
  Status RegisterRef(const std::string& prefix, const std::string& path);

  /// Registers a line-delimited JSON file (one flat object per line).
  Status RegisterJsonl(const std::string& name, const std::string& path,
                       Schema schema, int pmap_stride = 10);

  /// Registers a gzip-compressed CSV file (single- or multi-member).
  Status RegisterCsvGz(const std::string& name, const std::string& path,
                       Schema schema, CsvOptions options = CsvOptions());

  /// Looks up a table; the entry is owned by the catalog and stable. Every
  /// lookup re-validates the backing file's (mtime, size) signature; a stale
  /// file drops the entry's adaptive state, bumps its version and fires the
  /// invalidation callback before the (re)open.
  StatusOr<TableEntry*> Get(const std::string& name);

  /// Invoked (outside catalog locks) with a table's name whenever its
  /// backing file was detected stale. The engine hooks this to purge the
  /// shred cache and the semantic result cache for that table. Set once at
  /// engine construction, before any concurrent Get.
  void SetInvalidationCallback(std::function<void(const std::string&)> cb) {
    on_invalidated_ = std::move(cb);
  }

  bool Contains(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  /// One shared REF reader per file path, opened on first use (drivers call
  /// this from PrepareShared so every derived table of a file shares one
  /// cluster cache).
  StatusOr<std::shared_ptr<RefReader>> SharedRefReader(const std::string& path);

  /// Drops every table's adaptive state (see TableEntry::ResetAdaptiveState)
  /// and every REF file's decoded-cluster cache (safe against in-flight
  /// readers: their pinned cluster handles stay alive).
  void ResetAdaptiveState();

  std::vector<TableStats> Stats() const;

  /// Aggregated cluster-buffer-pool counters across every open REF file
  /// (readers are shared per file, so each pool counts once).
  ClusterPoolStats RefPoolStats() const;

 private:
  Status Register(TableInfo info);

  CatalogOptions options_;
  std::function<void(const std::string&)> on_invalidated_;
  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<TableEntry>> tables_;
  mutable std::mutex ref_mu_;
  std::map<std::string, std::shared_ptr<RefReader>> ref_readers_;  // by path
};

}  // namespace raw

#endif  // RAW_ENGINE_CATALOG_H_
