#ifndef RAW_ENGINE_RAW_ENGINE_H_
#define RAW_ENGINE_RAW_ENGINE_H_

#include <memory>
#include <string>

#include "engine/catalog.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "engine/shred_cache.h"
#include "jit/template_cache.h"

namespace raw {

/// Engine-wide configuration.
struct RawEngineOptions {
  PlannerOptions planner;  // per-query defaults
  CatalogOptions catalog;
  CcCompilerOptions jit_compiler;
  int64_t shred_cache_bytes = 1ll << 30;
};

/// RAW — the adaptive raw-data query engine. Register raw files once, then
/// query them with SQL; the engine adapts to each file format and query by
/// generating Just-In-Time access paths and materializing column shreds,
/// caching both for future queries.
///
///   RawEngine engine;
///   engine.RegisterCsv("t", "/data/t.csv", schema);
///   auto result = engine.Query("SELECT MAX(col11) FROM t WHERE col1 < 100");
class RawEngine {
 public:
  explicit RawEngine(RawEngineOptions options = RawEngineOptions());

  // --- registration ----------------------------------------------------------
  Status RegisterCsv(const std::string& name, const std::string& path,
                     Schema schema, CsvOptions csv = CsvOptions(),
                     int pmap_stride = 10) {
    return catalog_.RegisterCsv(name, path, std::move(schema), csv,
                                pmap_stride);
  }
  /// Registers a CSV file whose schema is *inferred* by sampling its rows —
  /// no description of the file needed at all.
  Status RegisterCsvInferred(const std::string& name, const std::string& path,
                             CsvOptions csv = CsvOptions(),
                             int pmap_stride = 10);
  Status RegisterBinary(const std::string& name, const std::string& path,
                        Schema schema) {
    return catalog_.RegisterBinary(name, path, std::move(schema));
  }
  Status RegisterRef(const std::string& prefix, const std::string& path) {
    return catalog_.RegisterRef(prefix, path);
  }

  // --- querying --------------------------------------------------------------
  /// Parses, binds, plans and executes `sql` with the engine's default
  /// planner options.
  StatusOr<QueryResult> Query(const std::string& sql);

  /// Same, with explicit per-query planner options (experiments sweep these).
  StatusOr<QueryResult> Query(const std::string& sql,
                              const PlannerOptions& options);

  /// Executes a programmatic logical query.
  StatusOr<QueryResult> Execute(const QuerySpec& spec,
                                const PlannerOptions& options);

  /// Parses + binds without executing (EXPLAIN-style tooling, tests).
  StatusOr<QuerySpec> ParseSql(const std::string& sql);

  // --- state inspection ------------------------------------------------------
  Catalog* catalog() { return &catalog_; }
  JitTemplateCache* jit_cache() { return &jit_; }
  ShredCache* shred_cache() { return &shreds_; }
  const RawEngineOptions& options() const { return options_; }

  /// Drops all adaptive state (shred pool + compiled-kernel cache + maps),
  /// reverting the engine to its freshly-started behaviour.
  void ResetAdaptiveState();

 private:
  RawEngineOptions options_;
  Catalog catalog_;
  JitTemplateCache jit_;
  ShredCache shreds_;
  Planner planner_;
};

}  // namespace raw

#endif  // RAW_ENGINE_RAW_ENGINE_H_
