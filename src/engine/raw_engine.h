#ifndef RAW_ENGINE_RAW_ENGINE_H_
#define RAW_ENGINE_RAW_ENGINE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "autotune/materializer.h"
#include "autotune/result_cache.h"
#include "engine/catalog.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "engine/session.h"
#include "engine/shred_cache.h"
#include "jit/template_cache.h"

namespace raw {

/// Engine-wide configuration.
struct RawEngineOptions {
  PlannerOptions planner;  // defaults inherited by new sessions
  CatalogOptions catalog;
  CcCompilerOptions jit_compiler;
  int64_t shred_cache_bytes = 1ll << 30;
  /// Lock shards of the shred cache (sessions touching different columns
  /// never contend); capacity splits evenly across shards.
  int shred_cache_shards = ShredCache::kDefaultNumShards;
  /// Background materializer knobs (off by default; the RAW_AUTOTUNE env
  /// knob overrides `autotune.enabled` at engine construction).
  autotune::MaterializerOptions autotune;
  /// Semantic result-cache budget; 0 disables the cache entirely. The
  /// RAW_RESULT_CACHE_BYTES env knob overrides at engine construction.
  int64_t result_cache_bytes = 0;
  /// Cost-aware result-cache admission: only results whose execution took at
  /// least this many microseconds are cached (0 = admit everything). Keeps
  /// sub-threshold queries — cheaper to recompute than to cache — from
  /// evicting expensive results. The RAW_RESULT_CACHE_MIN_US env knob
  /// overrides at engine construction.
  int64_t result_cache_min_us = 0;
};

/// Live admission-control counters a serving tier (rawd) maintains on its
/// engine. The server increments them; EngineStats snapshots them, so load
/// shedding is observable through the same introspection surface as the
/// caches.
struct AdmissionCounters {
  std::atomic<int64_t> admitted{0};   // requests accepted into the queue
  std::atomic<int64_t> executed{0};   // requests that ran to completion
  std::atomic<int64_t> shed{0};       // fast-failed with OVERLOADED
  std::atomic<int64_t> deadline_expired{0};  // expired before/while running
  /// Live gauges (not monotonic): requests waiting in the admission queue /
  /// currently executing. The background materializer reads them as part of
  /// its idle predicate.
  std::atomic<int64_t> queued{0};
  std::atomic<int64_t> running{0};
};

/// Point-in-time snapshot of AdmissionCounters.
struct AdmissionStats {
  int64_t admitted = 0;
  int64_t executed = 0;
  int64_t shed = 0;
  int64_t deadline_expired = 0;
  int64_t queued = 0;
  int64_t running = 0;
};

/// Read-only snapshot of the engine's shared state: cache counters, query
/// counters, and per-table adaptive state. This is the introspection surface
/// — tests and benchmarks read stats instead of poking mutable internals.
struct EngineStats {
  CacheStats shred_cache;
  JitCacheStats jit_cache;
  /// Decoded-cluster buffer pools of every open REF file, aggregated
  /// (hit/miss/eviction counters of the sharded ClusterBufferPool).
  ClusterPoolStats ref_pool;
  std::vector<TableStats> tables;

  int64_t sessions_opened = 0;
  /// Sessions whose handles have been destroyed; opened - closed = live.
  int64_t sessions_closed = 0;
  /// Serving-tier admission counters (all zero when no server runs).
  AdmissionStats admission;
  /// SQL statements parsed + bound (Prepare counts once; re-executing a
  /// PreparedQuery does not re-parse — that is the point).
  int64_t queries_parsed = 0;
  /// Physical plans built.
  int64_t queries_planned = 0;
  /// Plans executed (materialized or streamed).
  int64_t queries_executed = 0;
  /// Foreground queries currently holding a live plan (gauge).
  int64_t queries_inflight = 0;
  /// Semantic result cache (all zero when disabled).
  autotune::ResultCacheStats result_cache;
  /// Background materializer (all zero when disabled).
  autotune::MaterializerStats materializer;
  /// Plans that ran through a fused JIT pipeline vs. interpreted operators.
  int64_t plans_fused = 0;
  int64_t plans_interpreted = 0;
  /// Robustness totals across every query on this engine: rows dropped /
  /// zero-filled under tolerant malformed-row policies, typed I/O faults
  /// scans detected (truncation, corruption, injected errors), and fault
  /// injections actually fired (0 unless RAW_FAULT_INJECT is armed).
  int64_t rows_skipped = 0;
  int64_t rows_nulled = 0;
  int64_t io_faults = 0;
  int64_t faults_injected = 0;

  bool jit_compiler_available() const {
    return jit_cache.compiler_available;
  }

  /// Convenience lookup; null when the table is unknown.
  const TableStats* table(const std::string& name) const {
    for (const TableStats& t : tables) {
      if (t.name == name) return &t;
    }
    return nullptr;
  }

  int64_t sessions_active() const {
    return sessions_opened - sessions_closed;
  }
};

/// RAW — the adaptive raw-data query engine. Register raw files once, then
/// query them with SQL; the engine adapts to each file format and query by
/// generating Just-In-Time access paths and materializing column shreds,
/// caching both for future queries.
///
/// The engine core is thread-safe and server-shaped: one shared RawEngine
/// owns the catalog and every adaptive cache (sharded shred pool, JIT
/// template cache, positional maps) behind proper synchronization, while
/// per-client Sessions carry planner options, prepared statements and
/// streaming cursors. Any number of sessions may run queries concurrently;
/// warm state is shared across all of them.
///
///   RawEngine engine;
///   engine.RegisterCsv("t", "/data/t.csv", schema);
///   auto session = engine.OpenSession();
///   auto result = session->Query("SELECT MAX(col11) FROM t WHERE col1 < 100");
///
/// The classic one-shot surface (engine.Query(...)) remains as a thin shim
/// over an engine-owned default session.
class RawEngine {
 public:
  explicit RawEngine(RawEngineOptions options = RawEngineOptions());

  // --- registration (thread-safe) --------------------------------------------
  Status RegisterCsv(const std::string& name, const std::string& path,
                     Schema schema, CsvOptions csv = CsvOptions(),
                     int pmap_stride = 10) {
    return catalog_.RegisterCsv(name, path, std::move(schema), csv,
                                pmap_stride);
  }
  /// Registers a CSV file whose schema is *inferred* by sampling its rows —
  /// no description of the file needed at all. Inference and later scans
  /// share the same CsvOptions (including quoting), so the schema the
  /// sampler sees is exactly what queries will parse; a sampling failure
  /// surfaces as a Status annotated with the file, never a silent fallback.
  Status RegisterCsvInferred(const std::string& name, const std::string& path,
                             CsvOptions csv = CsvOptions(),
                             int pmap_stride = 10);
  Status RegisterBinary(const std::string& name, const std::string& path,
                        Schema schema) {
    return catalog_.RegisterBinary(name, path, std::move(schema));
  }
  Status RegisterRef(const std::string& prefix, const std::string& path) {
    return catalog_.RegisterRef(prefix, path);
  }
  /// Registers a line-delimited JSON file (one flat object per line).
  Status RegisterJsonl(const std::string& name, const std::string& path,
                       Schema schema, int pmap_stride = 10) {
    return catalog_.RegisterJsonl(name, path, std::move(schema), pmap_stride);
  }
  /// Registers a gzip-compressed CSV file (single- or multi-member).
  Status RegisterCsvGz(const std::string& name, const std::string& path,
                       Schema schema, CsvOptions csv = CsvOptions()) {
    return catalog_.RegisterCsvGz(name, path, std::move(schema), csv);
  }

  // --- sessions --------------------------------------------------------------
  /// Opens a client session with the engine's default planner options (or an
  /// explicit override). Sessions are cheap; open one per client thread.
  /// The returned handle must not outlive the engine.
  std::unique_ptr<Session> OpenSession();
  std::unique_ptr<Session> OpenSession(const PlannerOptions& options);

  // --- legacy one-shot surface (shims over the default session) --------------
  /// Parses, binds, plans and executes `sql` with the engine's default
  /// planner options.
  StatusOr<QueryResult> Query(const std::string& sql);

  /// Same, with explicit per-query planner options (experiments sweep these).
  StatusOr<QueryResult> Query(const std::string& sql,
                              const PlannerOptions& options);

  /// Executes a programmatic logical query.
  StatusOr<QueryResult> Execute(const QuerySpec& spec,
                                const PlannerOptions& options);

  /// Parses + binds without executing (EXPLAIN-style tooling, tests).
  StatusOr<QuerySpec> ParseSql(const std::string& sql);

  // --- introspection ---------------------------------------------------------
  /// Read-only snapshot of caches, counters and per-table adaptive state.
  EngineStats Stats() const;

  /// Deep read-only introspection: the published positional map of `table`
  /// (null when none). The snapshot is immutable and safe to keep.
  StatusOr<std::shared_ptr<const PositionalMap>> PositionalMapSnapshot(
      const std::string& table);

  /// Read-only introspection: true when the shred pool holds the complete
  /// `column` of `table` (no LRU refresh, no counter side effects).
  bool ShredCacheContainsFull(const std::string& table, int column) const {
    return shreds_.ContainsFull(table, column);
  }

  /// Best-effort OS page-cache drop for `table`'s file (cold-run benches).
  Status DropFilePageCache(const std::string& table);

  const RawEngineOptions& options() const { return options_; }

  /// Mutable admission counters for a serving tier running on this engine
  /// (rawd's AdmissionController increments them). Thread-safe.
  AdmissionCounters& admission_counters() { return admission_; }

  /// Foreground-activity signal: refreshes the idle clock and preempts any
  /// running background build. Session planning calls this automatically;
  /// serving tiers call it at request admission so a queued query preempts
  /// background work before it even plans.
  void NoteForegroundActivity();

  /// The background materializer (never null; inert unless enabled).
  autotune::BackgroundMaterializer* materializer() {
    return materializer_.get();
  }

  /// The semantic result cache, or null when disabled.
  autotune::ResultCache* result_cache() { return result_cache_.get(); }

  /// Drops all adaptive state (shred pool + compiled-kernel cache + maps +
  /// REF decoded-cluster caches), reverting the engine to its
  /// freshly-started behaviour. Safe against in-flight sessions: running
  /// queries hold immutable snapshots (and pinned cluster handles) and
  /// simply finish on the state they started with.
  void ResetAdaptiveState();

 private:
  friend class Session;
  friend class autotune::BackgroundMaterializer;

  /// Marks the start/end of a foreground query's plan lifetime (the inflight
  /// gauge the materializer's idle predicate watches). Begin also preempts
  /// background work; End restarts the idle clock.
  void BeginQuery();
  void EndQuery();

  /// Opens the materializer's session: single-threaded plans, excluded from
  /// query counters, access mining and the result cache.
  std::unique_ptr<Session> OpenInternalSession();

  /// Result-cache key: the spec's structural fingerprint plus each referenced
  /// table's staleness version (so a changed file can never serve old bytes,
  /// even if an invalidation sweep were missed).
  StatusOr<std::string> ResultCacheKey(const QuerySpec& spec);

  RawEngineOptions options_;
  Catalog catalog_;
  JitTemplateCache jit_;
  ShredCache shreds_;
  Planner planner_;

  std::atomic<int64_t> next_session_id_{1};
  std::atomic<int64_t> sessions_opened_{0};
  std::atomic<int64_t> sessions_closed_{0};
  AdmissionCounters admission_;
  std::atomic<int64_t> queries_parsed_{0};
  std::atomic<int64_t> queries_planned_{0};
  std::atomic<int64_t> queries_executed_{0};
  std::atomic<int64_t> queries_inflight_{0};
  /// Robustness accumulators (see EngineStats); sessions fold each query's
  /// ScanHealth in, including for queries that ultimately failed.
  std::atomic<int64_t> rows_skipped_{0};
  std::atomic<int64_t> rows_nulled_{0};
  std::atomic<int64_t> io_faults_{0};
  /// steady_clock ns of the last foreground activity (0 = never).
  std::atomic<int64_t> last_activity_ns_{0};

  std::unique_ptr<Session> default_session_;  // backs the legacy shims

  std::unique_ptr<autotune::ResultCache> result_cache_;  // null when disabled
  /// Declared last: destroyed first, joining the worker thread while every
  /// structure it touches (catalog, caches, sessions) is still alive.
  std::unique_ptr<autotune::BackgroundMaterializer> materializer_;
};

}  // namespace raw

#endif  // RAW_ENGINE_RAW_ENGINE_H_
