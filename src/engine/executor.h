#ifndef RAW_ENGINE_EXECUTOR_H_
#define RAW_ENGINE_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "columnar/batch.h"
#include "common/datum.h"
#include "common/deadline.h"
#include "common/thread_pool.h"
#include "csv/positional_map.h"
#include "engine/physical_plan.h"

namespace raw {

/// A fully materialized query result plus execution metadata.
struct QueryResult {
  ColumnBatch table;
  double execute_seconds = 0;  // drain time (excludes planning)
  double plan_seconds = 0;     // planning time (includes JIT compilation
                               // and, for the DBMS baseline, data loading)
  double compile_seconds = 0;  // JIT compilation charged to this query
  std::string plan_description;
  /// Robustness totals copied from the plan's ScanHealth after the drain:
  /// rows dropped / zero-filled under a tolerant malformed-row policy, and
  /// I/O faults (truncation, corruption) the scans detected and reported.
  int64_t rows_skipped = 0;
  int64_t rows_nulled = 0;
  int64_t io_faults = 0;

  int64_t num_rows() const { return table.num_rows(); }
  int num_columns() const { return table.num_columns(); }

  /// Value at (row, column); bounds-checked.
  StatusOr<Datum> ValueAt(int64_t row, int column) const;

  /// Single-value convenience for scalar aggregates.
  StatusOr<Datum> Scalar() const;

  double total_seconds() const { return plan_seconds + execute_seconds; }
};

/// Drains a physical plan into a QueryResult.
class Executor {
 public:
  static StatusOr<QueryResult> Run(PhysicalPlan plan);
};

/// The morsel-parallel table-scan driver: owns one pre-built scan operator
/// per morsel (all with the same output schema), drains them on the thread
/// pool — workers claim morsels from a shared atomic counter, so fast
/// workers steal the remaining work — and re-emits every batch in morsel
/// order. Downstream operators therefore observe exactly the serial row
/// order, which keeps parallel plans deterministic for any thread count.
class ParallelTableScanOperator : public Operator {
 public:
  struct Options {
    ThreadPool* pool = nullptr;  // defaults to ThreadPool::Shared()
    int num_threads = 1;
    /// Backpressure: workers stall before scanning a morsel more than this
    /// many positions ahead of the one being emitted, bounding buffered
    /// output to O(window × morsel) instead of the whole decoded table.
    /// 0 = auto (max(2 × num_threads, 4)).
    int64_t max_inflight_morsels = 0;
    /// CSV sequential morsels emit range-local row ids; rebase them by
    /// prefix sums of the morsel row counts so ids are file-global again.
    bool rebase_row_ids = false;
    /// When set, per-morsel partial positional maps (parallel to children)
    /// are appended into `merge_pmap_into` in morsel order, each just before
    /// its morsel's batches are emitted — so, as in the serial pipeline,
    /// every row handed downstream already has its map entry (late scans in
    /// the same query rely on this). Ignored if the target is non-empty.
    PositionalMap* merge_pmap_into = nullptr;
    std::vector<std::unique_ptr<PositionalMap>> partial_pmaps;
    /// Workers re-check this before claiming each morsel; once expired the
    /// scan stops producing and Next() returns ResourceExhausted.
    Deadline deadline;
  };

  ParallelTableScanOperator(Schema output_schema,
                            std::vector<OperatorPtr> children,
                            Options options);
  ~ParallelTableScanOperator() override;

  const Schema& output_schema() const override { return output_schema_; }
  Status Open() override;
  StatusOr<ColumnBatch> Next() override;
  Status Close() override;
  std::string name() const override { return "ParallelTableScan"; }

 private:
  struct MorselResult {
    std::vector<ColumnBatch> batches;
    Status status;
    bool done = false;
  };

  void StartWorkers();
  void WorkerLoop();
  void JoinWorkers();

  Schema output_schema_;
  std::vector<OperatorPtr> children_;
  Options options_;

  std::atomic<int64_t> next_morsel_{0};
  std::atomic<bool> cancel_{false};
  std::vector<std::future<void>> workers_;
  bool started_ = false;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<MorselResult> results_;
  int64_t emit_progress_ = 0;     // guarded by mu_; consumer's morsel index
  int64_t inflight_window_ = 1;  // fixed at StartWorkers()

  // Ordered-emission cursor (consumer side only).
  size_t emit_morsel_ = 0;
  size_t emit_batch_ = 0;
  size_t merged_pmaps_ = 0;
  bool merge_enabled_ = false;
  int64_t rows_emitted_ = 0;
  int64_t morsel_base_rows_ = 0;  // rows in fully emitted morsels (rebase)
  bool eof_ = false;
};

}  // namespace raw

#endif  // RAW_ENGINE_EXECUTOR_H_
