#ifndef RAW_ENGINE_EXECUTOR_H_
#define RAW_ENGINE_EXECUTOR_H_

#include <string>

#include "columnar/batch.h"
#include "common/datum.h"
#include "engine/physical_plan.h"

namespace raw {

/// A fully materialized query result plus execution metadata.
struct QueryResult {
  ColumnBatch table;
  double execute_seconds = 0;  // drain time (excludes planning)
  double plan_seconds = 0;     // planning time (includes JIT compilation
                               // and, for the DBMS baseline, data loading)
  double compile_seconds = 0;  // JIT compilation charged to this query
  std::string plan_description;

  int64_t num_rows() const { return table.num_rows(); }
  int num_columns() const { return table.num_columns(); }

  /// Value at (row, column); bounds-checked.
  StatusOr<Datum> ValueAt(int64_t row, int column) const;

  /// Single-value convenience for scalar aggregates.
  StatusOr<Datum> Scalar() const;

  double total_seconds() const { return plan_seconds + execute_seconds; }
};

/// Drains a physical plan into a QueryResult.
class Executor {
 public:
  static StatusOr<QueryResult> Run(PhysicalPlan plan);
};

}  // namespace raw

#endif  // RAW_ENGINE_EXECUTOR_H_
