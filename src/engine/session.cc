#include "engine/session.h"

#include "common/stopwatch.h"
#include "engine/raw_engine.h"
#include "engine/sql/binder.h"
#include "engine/sql/parser.h"

namespace raw {

namespace {

/// EXPLAIN results materialize as a one-row, one-column table.
ColumnBatch ExplainBatch(const std::string& description) {
  ColumnBatch table(Schema{{"plan", DataType::kString}});
  auto col = std::make_shared<Column>(DataType::kString);
  col->AppendString(description);
  table.AddColumn(std::move(col));
  table.SetNumRows(1);
  return table;
}

}  // namespace

// =============================================================================
// Cursor
// =============================================================================

Cursor::~Cursor() {
  Status ignored = Close();
  (void)ignored;
}

Cursor Cursor::FromBatch(ColumnBatch batch, std::string description,
                         double plan_seconds, double compile_seconds) {
  Cursor cursor;
  cursor.plan_.description = std::move(description);
  cursor.empty_schema_ = batch.schema();
  cursor.pending_ = std::make_unique<ColumnBatch>(std::move(batch));
  cursor.plan_seconds_ = plan_seconds;
  cursor.compile_seconds_ = compile_seconds;
  return cursor;
}

const Schema& Cursor::schema() const {
  if (plan_.root != nullptr) return plan_.root->output_schema();
  if (pending_ != nullptr) return pending_->schema();
  return empty_schema_;
}

Status Cursor::EnsureOpen() {
  if (opened_ || plan_.root == nullptr) return Status::OK();
  RAW_RETURN_NOT_OK(plan_.root->Open());
  opened_ = true;
  return Status::OK();
}

StatusOr<ColumnBatch> Cursor::Next() {
  if (pending_ != nullptr) {
    ColumnBatch batch = std::move(*pending_);
    pending_.reset();
    return batch;
  }
  if (eof_ || closed_ || plan_.root == nullptr) {
    if (plan_.root == nullptr) eof_ = true;
    return ColumnBatch(schema());
  }
  if (plan_.deadline.expired()) {
    return Status::ResourceExhausted("query deadline exceeded");
  }
  Stopwatch watch;
  RAW_RETURN_NOT_OK(EnsureOpen());
  // Zero-row data batches (a fully filtered morsel, say) are legal
  // mid-stream; only the EndOfStream sentinel terminates. Loop past the
  // former so clients keep the simple "empty batch == done" contract.
  StatusOr<ColumnBatch> batch = plan_.root->Next();
  while (batch.ok() && !batch->end_of_stream() && batch->empty()) {
    batch = plan_.root->Next();
  }
  execute_seconds_ += watch.ElapsedSeconds();
  if (batch.ok() && batch->end_of_stream()) {
    eof_ = true;
    // Close eagerly so end-of-stream side effects (shred-cache population,
    // positional-map publication) land without waiting for destruction.
    RAW_RETURN_NOT_OK(Close());
    return ColumnBatch(schema());
  }
  return batch;
}

StatusOr<QueryResult> Cursor::Consume() {
  std::vector<ColumnBatch> batches;
  Schema result_schema = schema();
  while (true) {
    RAW_ASSIGN_OR_RETURN(ColumnBatch batch, Next());
    if (batch.empty()) break;
    batches.push_back(std::move(batch));
  }
  QueryResult result;
  RAW_ASSIGN_OR_RETURN(result.table, ConcatBatches(result_schema, batches));
  result.plan_description = plan_.description + plan_.RuntimeDescription();
  result.plan_seconds = plan_seconds_;
  result.compile_seconds = compile_seconds_;
  result.execute_seconds = execute_seconds_;
  return result;
}

Status Cursor::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  if (plan_.root != nullptr && opened_) {
    return plan_.root->Close();
  }
  return Status::OK();
}

// =============================================================================
// PreparedQuery
// =============================================================================

StatusOr<QuerySpec> PreparedQuery::BindParams(
    const std::vector<Datum>& params) const {
  if (static_cast<int>(params.size()) != spec_.num_params) {
    return Status::InvalidArgument(
        "prepared query expects " + std::to_string(spec_.num_params) +
        " parameter(s), got " + std::to_string(params.size()));
  }
  QuerySpec bound = spec_;
  for (PredicateSpec& pred : bound.predicates) {
    if (!pred.is_parameter()) continue;
    // Coerce exactly like an inline literal of the column's type would.
    RAW_ASSIGN_OR_RETURN(
        pred.literal,
        params[static_cast<size_t>(pred.param_index)].CastTo(pred.param_type));
    pred.param_index = -1;
  }
  bound.num_params = 0;
  return bound;
}

StatusOr<QueryResult> PreparedQuery::Execute(
    const std::vector<Datum>& params) {
  RAW_ASSIGN_OR_RETURN(QuerySpec bound, BindParams(params));
  return session_->Execute(bound);
}

StatusOr<Cursor> PreparedQuery::ExecuteStream(
    const std::vector<Datum>& params) {
  RAW_ASSIGN_OR_RETURN(QuerySpec bound, BindParams(params));
  return session_->ExecuteStream(bound);
}

// =============================================================================
// Session
// =============================================================================

Session::~Session() {
  if (!internal_) {
    engine_->sessions_closed_.fetch_add(1, std::memory_order_relaxed);
  }
}

StatusOr<QuerySpec> Session::Parse(const std::string& sql) {
  RAW_ASSIGN_OR_RETURN(QuerySpec spec, sql::Parse(sql));
  RAW_RETURN_NOT_OK(sql::Bind(&engine_->catalog_, &spec));
  if (!internal_) {
    engine_->queries_parsed_.fetch_add(1, std::memory_order_relaxed);
  }
  return spec;
}

StatusOr<PreparedQuery> Session::Prepare(const std::string& sql) {
  RAW_ASSIGN_OR_RETURN(QuerySpec spec, Parse(sql));
  return PreparedQuery(this, std::move(spec));
}

StatusOr<PhysicalPlan> Session::PlanSpec(const QuerySpec& spec,
                                         const PlannerOptions& options,
                                         double* plan_seconds,
                                         double* compile_seconds) {
  // Foreground queries raise the inflight gauge for their plan's whole
  // lifetime (streaming cursors included): the guard rides in the plan's
  // resource list and lowers it when the plan is destroyed. Raising it also
  // preempts any background build before planning does real work.
  std::shared_ptr<const void> inflight_guard;
  if (!internal_) {
    RawEngine* engine = engine_;
    engine->BeginQuery();
    inflight_guard = std::shared_ptr<const void>(
        static_cast<const void*>(nullptr),
        [engine](const void*) { engine->EndQuery(); });
  }
  Stopwatch watch;
  const double compile_before = engine_->jit_.total_compile_seconds();
  RAW_ASSIGN_OR_RETURN(PhysicalPlan plan,
                       engine_->planner_.Plan(spec, options));
  *plan_seconds = watch.ElapsedSeconds();
  *compile_seconds = engine_->jit_.total_compile_seconds() - compile_before;
  if (!internal_) {
    engine_->queries_planned_.fetch_add(1, std::memory_order_relaxed);
    plan.resources.push_back(std::move(inflight_guard));
  }
  return plan;
}

StatusOr<QueryResult> Session::Query(const std::string& sql) {
  return Query(sql, options_);
}

StatusOr<QueryResult> Session::Query(const std::string& sql,
                                     const PlannerOptions& options) {
  RAW_ASSIGN_OR_RETURN(QuerySpec spec, Parse(sql));
  return Execute(spec, options);
}

StatusOr<QueryResult> Session::Execute(const QuerySpec& spec) {
  return Execute(spec, options_);
}

StatusOr<QueryResult> Session::Execute(const QuerySpec& spec,
                                       const PlannerOptions& options) {
  // Semantic result cache: a repeated materializing execution (typically a
  // re-bound PreparedQuery — BindParams folds the bound values into the
  // predicate literals, so they are part of the fingerprint) returns the
  // cached result without planning or executing anything.
  std::string cache_key;
  autotune::ResultCache* cache = engine_->result_cache_.get();
  const bool cacheable =
      cache != nullptr && !internal_ && !spec.explain && spec.num_params == 0;
  if (cacheable) {
    StatusOr<std::string> key = engine_->ResultCacheKey(spec);
    if (key.ok()) {
      cache_key = std::move(key).value();
      QueryResult cached;
      if (cache->Lookup(cache_key, &cached)) {
        // A hit is foreground activity (keeps the materializer polite) but
        // costs no planning or execution — report timings accordingly.
        engine_->NoteForegroundActivity();
        cached.plan_seconds = 0;
        cached.compile_seconds = 0;
        cached.execute_seconds = 0;
        cached.plan_description += " [result-cache hit]";
        return cached;
      }
    }
  }
  double plan_seconds = 0;
  double compile_seconds = 0;
  RAW_ASSIGN_OR_RETURN(
      PhysicalPlan plan,
      PlanSpec(spec, options, &plan_seconds, &compile_seconds));
  if (spec.explain) {
    // EXPLAIN: return the plan description as a one-row result.
    QueryResult result;
    result.plan_description = plan.description;
    result.plan_seconds = plan_seconds;
    result.compile_seconds = compile_seconds;
    result.table = ExplainBatch(plan.description);
    return result;
  }
  if (!internal_) {
    engine_->queries_executed_.fetch_add(1, std::memory_order_relaxed);
  }
  // Keep the health block alive past the move so its totals reach the
  // engine-wide counters even when the drain fails mid-stream (typed I/O
  // faults on failed queries still count).
  std::shared_ptr<ScanHealth> health = plan.health;
  StatusOr<QueryResult> run = Executor::Run(std::move(plan));
  if (health != nullptr) {
    engine_->rows_skipped_.fetch_add(
        health->rows_skipped.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    engine_->rows_nulled_.fetch_add(
        health->rows_nulled.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    engine_->io_faults_.fetch_add(
        health->io_faults.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  RAW_RETURN_NOT_OK(run.status());
  QueryResult result = std::move(run).value();
  result.plan_seconds = plan_seconds;
  result.compile_seconds = compile_seconds;
  // Cost-aware admission: caching a result that took microseconds to compute
  // just evicts results worth keeping. Below the configured floor the query
  // re-executes on its next arrival instead.
  const bool worth_caching =
      result.execute_seconds * 1e6 >=
      static_cast<double>(engine_->options_.result_cache_min_us);
  if (cacheable && worth_caching && !cache_key.empty()) {
    cache->Insert(cache_key, result, spec.tables);
  }
  return result;
}

StatusOr<Cursor> Session::Stream(const std::string& sql) {
  return Stream(sql, options_);
}

StatusOr<Cursor> Session::Stream(const std::string& sql,
                                 const PlannerOptions& options) {
  RAW_ASSIGN_OR_RETURN(QuerySpec spec, Parse(sql));
  return ExecuteStream(spec, options);
}

StatusOr<Cursor> Session::ExecuteStream(const QuerySpec& spec) {
  return ExecuteStream(spec, options_);
}

StatusOr<Cursor> Session::ExecuteStream(const QuerySpec& spec,
                                        const PlannerOptions& options) {
  double plan_seconds = 0;
  double compile_seconds = 0;
  RAW_ASSIGN_OR_RETURN(
      PhysicalPlan plan,
      PlanSpec(spec, options, &plan_seconds, &compile_seconds));
  if (spec.explain) {
    return Cursor::FromBatch(ExplainBatch(plan.description), plan.description,
                             plan_seconds, compile_seconds);
  }
  if (!internal_) {
    engine_->queries_executed_.fetch_add(1, std::memory_order_relaxed);
  }
  Cursor cursor(std::move(plan), plan_seconds, compile_seconds);
  RAW_RETURN_NOT_OK(cursor.EnsureOpen());
  return cursor;
}

}  // namespace raw
