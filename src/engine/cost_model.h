#ifndef RAW_ENGINE_COST_MODEL_H_
#define RAW_ENGINE_COST_MODEL_H_

#include <cstdint>

#include "engine/physical_plan.h"
#include "format/format.h"

namespace raw {

/// Per-value abstract costs of the raw-data access primitives. Units are
/// arbitrary (relative magnitudes drive every decision); defaults were
/// calibrated against this repository's microbenchmarks on CSV/binary files.
///
/// The paper lists "developing a comprehensive cost model for our methods to
/// enable their integration with existing query optimizers" as future work
/// (§8); this is that model, scoped to the decision the experiments show
/// matters most — *where to materialize a column* (full columns vs shreds vs
/// speculative multi-column shreds, §5).
struct CostParams {
  // CSV costs.
  double csv_parse_field = 1.0;      // tokenize+convert one field in sequence
  double csv_jump = 0.4;             // jump to a mapped byte position
  double csv_skip_field = 0.35;      // incremental-parse past one field
  // Binary costs.
  double bin_read_value = 0.15;      // computed-offset load
  double bin_random_penalty = 0.25;  // extra cost of a non-sequential access
  // Format-independent costs.
  double build_value = 0.2;          // append into a columnar buffer
  double ref_api_value = 0.5;        // one value through the REF I/O API
};

/// Inputs to one placement decision: a column that some upstream operator
/// needs, reachable either in the bottom scan (full column) or via a late
/// scan over the qualifying rows (shred).
struct ShredDecisionInput {
  FileFormat format = FileFormat::kCsv;
  int64_t table_rows = 0;
  /// Estimated fraction of rows that survive the operators below the
  /// materialization point.
  double selectivity = 1.0;
  /// CSV: fields between the positional-map anchor and the target column
  /// (0 = tracked exactly).
  int skip_distance = 0;
  /// True when the qualifying row ids arrive out of order (pipeline-breaking
  /// join side) — random access to the raw file.
  bool random_order = false;
  /// Number of columns that could be fetched together speculatively.
  int colocated_columns = 1;
};

/// Estimates materialization costs and picks a shred policy.
class CostModel {
 public:
  explicit CostModel(CostParams params = CostParams()) : params_(params) {}

  /// Cost of materializing the column for *all* rows in the bottom scan.
  double FullColumnCost(const ShredDecisionInput& in) const;

  /// Cost of fetching only qualifying rows via a pushed-up scan.
  double ShredCost(const ShredDecisionInput& in) const;

  /// Cost of a late scan that speculatively reads `colocated_columns`
  /// adjacent columns in one pass (multi-column shreds, §5.3.1). Returned
  /// per *decision*, i.e. the full pass cost.
  double MultiColumnShredCost(const ShredDecisionInput& in) const;

  /// Picks the cheapest policy for this input.
  ShredPolicy ChoosePolicy(const ShredDecisionInput& in) const;

  /// Selectivity below which shreds beat full columns (root of
  /// ShredCost == FullColumnCost in the selectivity variable).
  double ShredCrossover(const ShredDecisionInput& in) const;

  const CostParams& params() const { return params_; }

 private:
  double PerValueFetchCost(const ShredDecisionInput& in) const;

  CostParams params_;
};

}  // namespace raw

#endif  // RAW_ENGINE_COST_MODEL_H_
