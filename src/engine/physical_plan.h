#ifndef RAW_ENGINE_PHYSICAL_PLAN_H_
#define RAW_ENGINE_PHYSICAL_PLAN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "columnar/operator.h"
#include "common/deadline.h"
#include "common/scan_health.h"
#include "scan/access_path.h"

namespace raw {

/// Where newly needed columns get materialized (§5):
enum class ShredPolicy {
  /// "Full columns": every requested column is read by the bottom scan.
  kFullColumns,
  /// "Column shreds": scan operators pushed above filters; each column is
  /// fetched only for surviving rows, one late scan per predicate stage.
  kShreds,
  /// "Multi-column shreds" (§5.3.1): the first late scan speculatively also
  /// fetches the remaining needed nearby columns in the same pass.
  kMultiColumnShreds,
  /// Let the cost model decide per table, estimating predicate selectivity
  /// from cached columns (the paper's §8 future-work cost model).
  kAdaptive,
};

std::string_view ShredPolicyToString(ShredPolicy policy);

/// Placement of a join's projected column relative to the join (§5.3.2).
enum class JoinProjectionPlacement {
  kEarly,         // read with the base scan, before the join ("full columns")
  kIntermediate,  // after that side's filters, still before the join
  kLate,          // after the join (column shreds)
};

std::string_view JoinProjectionPlacementToString(JoinProjectionPlacement p);

/// Whether the planner may fuse whole scan→filter→project/aggregate
/// pipelines into one JIT-generated loop (RAW_JIT_FUSION).
enum class JitFusion {
  kOff,   // always interpreted operators
  kOn,    // fuse every eligible single-table pipeline
  kAuto,  // like kOn today; reserved for cost-model arbitration
};

std::string_view JitFusionToString(JitFusion fusion);

/// Knobs the experiments sweep.
struct PlannerOptions {
  AccessPathKind access_path = AccessPathKind::kJit;
  ShredPolicy shred_policy = ShredPolicy::kShreds;
  JoinProjectionPlacement join_placement = JoinProjectionPlacement::kLate;
  int64_t batch_rows = kDefaultBatchRows;
  /// Use cached shreds / cached full columns when they subsume the request.
  bool use_shred_cache = true;
  /// Populate the shred cache with columns materialized by this query.
  bool populate_shred_cache = true;
  /// Build a positional map during first CSV scans.
  bool build_positional_map = true;
  /// kMultiColumnShreds: fetch an upstream column together with the current
  /// one when their column distance is at most this window.
  int speculation_window = 1000000;  // effectively "all remaining"
  /// Worker threads for morsel-parallel table scans and group-by partials.
  /// 1 preserves the single-threaded plans bit-for-bit; 0 = auto, resolving
  /// to $RAW_NUM_THREADS when set, else std::thread::hardware_concurrency().
  /// Parallel plans return identical results for every thread count (morsels
  /// re-emit in file order; group-by partials partition rows by key).
  int num_threads = 0;
  /// Per-query execution deadline (default: never expires). Morsel workers
  /// and Cursor::Next() check it and fail the query with ResourceExhausted
  /// once it passes; the serving tier maps that onto its wire error.
  Deadline deadline;
  /// Record this query in the per-(table, column) access counters the
  /// background materializer mines. Off for engine-internal sessions so
  /// speculative builds never reinforce their own heat signal.
  bool count_accesses = true;
  /// Pipeline fusion: compile eligible single-table
  /// scan→filter→project/aggregate plans into one generated loop. Ineligible
  /// shapes (joins, group-by, string/bool predicates, formats without a
  /// fusion plug-in) always fall back to interpreted operators.
  JitFusion jit_fusion = JitFusion::kAuto;
  /// What scans do with rows whose raw bytes fail to parse or convert
  /// (RAW_MALFORMED_ROWS / per-query override). Tolerant policies (kSkip,
  /// kNullFill) force full-column interpreted scans and disable positional-
  /// map building, shred caching, and pipeline fusion — skipping compacts
  /// row ids, which late scans and cached shreds would misinterpret.
  MalformedRowPolicy malformed_row_policy = MalformedRowPolicy::kFail;
};

/// Resolves PlannerOptions::num_threads (see above); always >= 1.
int ResolveNumThreads(int requested);

/// The executable plan: an operator tree plus bookkeeping the executor needs
/// (JIT compile time for reporting, explain text).
struct PhysicalPlan {
  OperatorPtr root;
  std::string description;      // EXPLAIN-style summary
  double compile_seconds = 0;   // JIT compilation charged to this query
  Deadline deadline;            // propagated from PlannerOptions
  /// Immutable snapshots the operator tree references by raw pointer
  /// (positional maps, loaded tables). Holding them here pins them for the
  /// plan's whole lifetime — streaming cursors keep working even if
  /// RawEngine::ResetAdaptiveState() drops the engine's own references
  /// mid-stream.
  std::vector<std::shared_ptr<const void>> resources;

  /// Robustness counters scans of this plan update (rows skipped/null-filled
  /// under a tolerant malformed-row policy, I/O faults observed). Owned here
  /// so scan specs can hold a raw pointer for the plan's whole lifetime; the
  /// executor folds the totals into the query result.
  std::shared_ptr<ScanHealth> health;

  /// Describers invoked after the plan drains, appended to the reported
  /// plan description — for facts only known at execution time (hash-join
  /// build row/bucket stats, say). Each captures an operator owned by
  /// `root`, so they must not outlive the plan.
  std::vector<std::function<std::string()>> runtime_describers;

  /// Runs every runtime describer and concatenates the results.
  std::string RuntimeDescription() const {
    std::string out;
    for (const auto& fn : runtime_describers) out += fn();
    return out;
  }
};

}  // namespace raw

#endif  // RAW_ENGINE_PHYSICAL_PLAN_H_
