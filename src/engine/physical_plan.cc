#include "engine/physical_plan.h"

#include <algorithm>
#include <thread>

#include "common/env.h"

namespace raw {

int ResolveNumThreads(int requested) {
  if (requested > 0) return requested;
  // Strict parse: "4abc" or an overflowing value is a configuration error,
  // not a thread count — warn and fall back to auto instead of guessing.
  int v = GetEnvInt("RAW_NUM_THREADS", /*fallback=*/0, /*min=*/1,
                    /*max=*/4096);
  if (v > 0) return v;
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

std::string_view ShredPolicyToString(ShredPolicy policy) {
  switch (policy) {
    case ShredPolicy::kFullColumns:
      return "full_columns";
    case ShredPolicy::kShreds:
      return "shreds";
    case ShredPolicy::kMultiColumnShreds:
      return "multi_column_shreds";
    case ShredPolicy::kAdaptive:
      return "adaptive";
  }
  return "?";
}

std::string_view JitFusionToString(JitFusion fusion) {
  switch (fusion) {
    case JitFusion::kOff:
      return "off";
    case JitFusion::kOn:
      return "on";
    case JitFusion::kAuto:
      return "auto";
  }
  return "?";
}

std::string_view JoinProjectionPlacementToString(JoinProjectionPlacement p) {
  switch (p) {
    case JoinProjectionPlacement::kEarly:
      return "early";
    case JoinProjectionPlacement::kIntermediate:
      return "intermediate";
    case JoinProjectionPlacement::kLate:
      return "late";
  }
  return "?";
}

}  // namespace raw
