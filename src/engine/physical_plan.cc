#include "engine/physical_plan.h"

namespace raw {

std::string_view ShredPolicyToString(ShredPolicy policy) {
  switch (policy) {
    case ShredPolicy::kFullColumns:
      return "full_columns";
    case ShredPolicy::kShreds:
      return "shreds";
    case ShredPolicy::kMultiColumnShreds:
      return "multi_column_shreds";
    case ShredPolicy::kAdaptive:
      return "adaptive";
  }
  return "?";
}

std::string_view JoinProjectionPlacementToString(JoinProjectionPlacement p) {
  switch (p) {
    case JoinProjectionPlacement::kEarly:
      return "early";
    case JoinProjectionPlacement::kIntermediate:
      return "intermediate";
    case JoinProjectionPlacement::kLate:
      return "late";
  }
  return "?";
}

}  // namespace raw
